module disttrack

go 1.22
