package disttrack

import (
	"math"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestOneShotCountFacade(t *testing.T) {
	total, res := OneShotCount([]int64{1, 2, 3})
	if total != 6 || res.Words != 3 {
		t.Fatalf("OneShotCount = %d/%d", total, res.Words)
	}
}

func buildShards(k, n int, seed uint64) ([][]int64, [][]float64, map[int64]int64, []float64) {
	rng := stats.New(seed)
	items := workload.ZipfItems(100, 1.1, rng)
	values := workload.PermValues(n, rng.Split())
	is := make([][]int64, k)
	vs := make([][]float64, k)
	truth := map[int64]int64{}
	var all []float64
	for i := 0; i < n; i++ {
		j, v := items(i), values(i)
		truth[j]++
		all = append(all, v)
		is[i%k] = append(is[i%k], j)
		vs[i%k] = append(vs[i%k], v)
	}
	return is, vs, truth, all
}

func TestOneShotFrequenciesFacade(t *testing.T) {
	const k, n = 8, 20000
	const eps = 0.05
	is, _, truth, _ := buildShards(k, n, 42)
	est, res := OneShotFrequencies(is, eps, 7)
	if res.Words <= 0 {
		t.Fatal("no words accounted")
	}
	for _, j := range []int64{0, 1, 5} {
		if math.Abs(est(j)-float64(truth[j])) > 3*eps*float64(n) {
			t.Fatalf("item %d: est %v truth %d", j, est(j), truth[j])
		}
	}
	detEst, detRes := OneShotFrequenciesDeterministic(is, eps)
	for _, j := range []int64{0, 1, 5} {
		if math.Abs(float64(detEst(j))-float64(truth[j])) > eps*float64(n) {
			t.Fatalf("det item %d: est %v truth %d", j, detEst(j), truth[j])
		}
	}
	if detRes.Words <= 0 {
		t.Fatal("det words missing")
	}
}

func TestOneShotRanksFacade(t *testing.T) {
	const k, n = 8, 20000
	const eps = 0.05
	_, vs, _, all := buildShards(k, n, 43)
	trueRank := func(x float64) float64 {
		r := 0.0
		for _, v := range all {
			if v < x {
				r++
			}
		}
		return r
	}
	rank, res := OneShotRanks(vs, eps, 11)
	if res.Words <= 0 {
		t.Fatal("no words accounted")
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		x := q * float64(n)
		if math.Abs(rank(x)-trueRank(x)) > 3*eps*float64(n) {
			t.Fatalf("rank(%v) = %v, truth %v", x, rank(x), trueRank(x))
		}
	}
	detRank, _ := OneShotRanksDeterministic(vs, eps)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		x := q * float64(n)
		if math.Abs(float64(detRank(x))-trueRank(x)) > eps*float64(n) {
			t.Fatalf("det rank(%v) = %v, truth %v", x, detRank(x), trueRank(x))
		}
	}
}

func TestBoostedFrequencyFacade(t *testing.T) {
	const k, n = 4, 10000
	tr := NewFrequencyTracker(Options{K: k, Epsilon: 0.15, Copies: 5, Seed: 3})
	truth := map[int64]int64{}
	bad := 0
	checks := 0
	for i := 0; i < n; i++ {
		j := int64(i % 7)
		truth[j]++
		tr.Observe(i%k, j)
		if i%97 == 0 && i > 0 {
			checks++
			if math.Abs(tr.Estimate(3)-float64(truth[3])) > 0.15*float64(i+1) {
				bad++
			}
		}
	}
	if bad > 0 {
		t.Fatalf("boosted frequency failed %d/%d checks", bad, checks)
	}
}

func TestBoostedRankFacade(t *testing.T) {
	const k, n = 4, 10000
	values := workload.PermValues(n, stats.New(91))
	tr := NewRankTracker(Options{K: k, Epsilon: 0.15, Copies: 5, Seed: 5})
	var below float64
	q := float64(n) / 2
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		v := values(i)
		if v < q {
			below++
		}
		tr.Observe(i%k, v)
		if i%97 == 0 && i > 0 {
			checks++
			if math.Abs(tr.Rank(q)-below) > 0.15*float64(i+1) {
				bad++
			}
		}
	}
	if bad > 0 {
		t.Fatalf("boosted rank failed %d/%d checks", bad, checks)
	}
	if med := tr.Quantile(0.5, 0, n); math.Abs(med-q) > 0.3*float64(n) {
		t.Fatalf("boosted quantile %v far from %v", med, q)
	}
}
