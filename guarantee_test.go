package disttrack

// The statistical-guarantee suite: the paper's theorems, checked as
// statistics rather than as single seeded runs.
//
//   - ε/δ accuracy: across many independent seeds, the empirical
//     probability that a tracker's answer leaves the ±ε·n band at a fixed
//     time instant must stay under the protocol's failure budget δ
//     (randomized and sampling trackers: the paper's constant-probability
//     guarantee, δ = 0.1; deterministic trackers: δ = 0, the bound holds
//     always).
//   - communication scaling: total communication must grow ~O(log N) in
//     the stream length, stay sublinear in k for the randomized protocols
//     (Θ(√k) in the paper), scale ~linearly in k for the deterministic
//     baselines, and ~linearly in 1/ε for both.
//
// Everything runs on the sequential transport with generous slack; under
// -short the seed count shrinks so the matrix stays cheap in quick runs
// while tier-1 exercises the full ≥200 seeds per tracker×algorithm.

import (
	"math"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func guaranteeSeeds(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 200
}

// failBudget returns the maximum acceptable failures among s trials for a
// per-trial failure probability delta, with three binomial standard
// deviations of slack — loose enough to be seed-stable, tight enough that
// a broken estimator (systematic bias, wrong variance) trips it.
func failBudget(s int, delta float64) int {
	return int(delta*float64(s) + 3*math.Sqrt(float64(s)*delta*(1-delta)))
}

// guaranteeRun feeds one seeded stream and reports the absolute error at
// the two checked instants (n/2 and n), normalized by the ε·n bound at
// that instant: a value > 1 is a guarantee violation.
type guaranteeRun func(t *testing.T, alg Algorithm, seed uint64, k, n int, eps float64) [2]float64

func runCountGuarantee(t *testing.T, alg Algorithm, seed uint64, k, n int, eps float64) [2]float64 {
	return runCountGuaranteeOpt(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: seed}, n)
}

func runCountGuaranteeOpt(opt Options, n int) [2]float64 {
	k, eps := opt.K, opt.Epsilon
	tr := NewCountTracker(opt)
	defer tr.Close()
	var errs [2]float64
	for i := 0; i < n; i++ {
		tr.Observe(i % k)
		if i+1 == n/2 || i+1 == n {
			idx := 0
			if i+1 == n {
				idx = 1
			}
			truth := float64(i + 1)
			errs[idx] = math.Abs(tr.Estimate()-truth) / (eps * truth)
		}
	}
	return errs
}

func runFreqGuarantee(t *testing.T, alg Algorithm, seed uint64, k, n int, eps float64) [2]float64 {
	return runFreqGuaranteeOpt(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: seed}, n)
}

func runFreqGuaranteeOpt(opt Options, n int) [2]float64 {
	k, eps := opt.K, opt.Epsilon
	items := workload.ZipfItems(1000, 1.1, stats.New(opt.Seed^0xf00d))
	truth := map[int64]int64{}
	tr := NewFrequencyTracker(opt)
	defer tr.Close()
	var errs [2]float64
	for i := 0; i < n; i++ {
		j := items(i)
		truth[j]++
		tr.Observe(i%k, j)
		if i+1 == n/2 || i+1 == n {
			idx := 0
			if i+1 == n {
				idx = 1
			}
			// The guarantee is |f̂(j) − f(j)| ≤ ε·n for EVERY item; check
			// the head of the distribution plus an unseen item, taking the
			// worst normalized error.
			worst := 0.0
			for _, j := range []int64{0, 1, 5, 999} {
				e := math.Abs(tr.Estimate(j)-float64(truth[j])) / (eps * float64(i+1))
				if e > worst {
					worst = e
				}
			}
			errs[idx] = worst
		}
	}
	return errs
}

func runRankGuarantee(t *testing.T, alg Algorithm, seed uint64, k, n int, eps float64) [2]float64 {
	return runRankGuaranteeOpt(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: seed}, n)
}

func runRankGuaranteeOpt(opt Options, n int) [2]float64 {
	k, eps := opt.K, opt.Epsilon
	values := workload.PermValues(n, stats.New(opt.Seed^0xbeef))
	tr := NewRankTracker(opt)
	defer tr.Close()
	// Fixed query points; truth is maintained incrementally.
	qs := []float64{float64(n) / 4, float64(n) / 2, 3 * float64(n) / 4}
	below := make([]float64, len(qs))
	var errs [2]float64
	for i := 0; i < n; i++ {
		v := values(i)
		for qi, q := range qs {
			if v < q {
				below[qi]++
			}
		}
		tr.Observe(i%k, v)
		if i+1 == n/2 || i+1 == n {
			idx := 0
			if i+1 == n {
				idx = 1
			}
			worst := 0.0
			for qi, q := range qs {
				e := math.Abs(tr.Rank(q)-below[qi]) / (eps * float64(i+1))
				if e > worst {
					worst = e
				}
			}
			errs[idx] = worst
		}
	}
	return errs
}

// TestEpsilonDeltaGuarantee runs the full tracker × algorithm matrix over
// independent seeds and asserts the empirical failure rate of the ε-error
// bound stays within each algorithm's δ at both checked instants.
func TestEpsilonDeltaGuarantee(t *testing.T) {
	const (
		k   = 4
		n   = 2000
		eps = 0.1
	)
	problems := []struct {
		name string
		run  guaranteeRun
	}{
		{"count", runCountGuarantee},
		{"freq", runFreqGuarantee},
		{"rank", runRankGuarantee},
	}
	algorithms := []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling}
	seeds := guaranteeSeeds(t)
	for _, p := range problems {
		for _, alg := range algorithms {
			p, alg := p, alg
			t.Run(p.name+"/"+alg.String(), func(t *testing.T) {
				t.Parallel()
				var failures [2]int
				worst := 0.0
				for s := 0; s < seeds; s++ {
					errs := p.run(t, alg, uint64(1000+s*7919), k, n, eps)
					for idx, e := range errs {
						if e > 1 {
							failures[idx]++
						}
						if e > worst {
							worst = e
						}
					}
				}
				switch alg {
				case AlgorithmDeterministic:
					// Deterministic bounds hold always: δ = 0.
					if failures[0] != 0 || failures[1] != 0 {
						t.Errorf("deterministic ε bound violated in %d+%d of %d seeds (worst %.2f×ε·n)",
							failures[0], failures[1], seeds, worst)
					}
				default:
					// The paper's per-instant guarantee: failure
					// probability ≤ δ = 0.1 at any fixed instant (the
					// default Rescale=3 makes the true rate far lower; the
					// budget tests the guarantee, not the slack). The [9]
					// sampling baseline keeps only ~1/ε² elements — a
					// one-standard-deviation guarantee, so its honest
					// constant is δ = 1/3 (empirically ~0.25 here).
					delta := 0.1
					if alg == AlgorithmSampling {
						delta = 1.0 / 3
					}
					budget := failBudget(seeds, delta)
					for idx, f := range failures {
						if f > budget {
							t.Errorf("instant %d: ε bound violated in %d of %d seeds (budget %d, worst %.2f×ε·n)",
								idx, f, seeds, budget, worst)
						}
					}
				}
			})
		}
	}
	// The robust mode's oblivious row: on a non-adversarial stream
	// Options.Robust must keep the randomized δ = 0.1 guarantee. It gets
	// its own k and n so the run reaches the p < 1 sampled regime (the
	// boosted sampling rate keeps p = 1 exact until n̄ > 12·√k/(ε·ε_eff)).
	t.Run("count/robust", func(t *testing.T) {
		t.Parallel()
		var failures [2]int
		worst := 0.0
		for s := 0; s < seeds; s++ {
			opt := Options{K: 64, Epsilon: eps, Algorithm: AlgorithmRandomized,
				Robust: true, Seed: uint64(1000 + s*7919)}
			errs := runCountGuaranteeOpt(opt, 8000)
			for idx, e := range errs {
				if e > 1 {
					failures[idx]++
				}
				if e > worst {
					worst = e
				}
			}
		}
		budget := failBudget(seeds, 0.1)
		for idx, f := range failures {
			if f > budget {
				t.Errorf("instant %d: robust ε bound violated in %d of %d seeds (budget %d, worst %.2f×ε·n)",
					idx, f, seeds, budget, worst)
			}
		}
	})
}

// wordsForOpt runs one seeded count stream over opt and returns the total
// communication.
func wordsForOpt(opt Options, n int, seed uint64) float64 {
	return float64(metricsForOpt(opt, n, seed).Words)
}

// metricsForOpt runs one seeded count stream over opt (n arrivals spread
// evenly over the k sites as per-site batches) and returns the facade
// metrics.
func metricsForOpt(opt Options, n int, seed uint64) Metrics {
	opt.Seed = seed
	tr := NewCountTracker(opt)
	defer tr.Close()
	per := n / opt.K
	for s := 0; s < opt.K; s++ {
		tr.ObserveBatch(s, per)
	}
	return tr.Metrics()
}

// meanWordsOpt averages wordsForOpt over a few seeds.
func meanWordsOpt(opt Options, n int, seeds int) float64 {
	sum := 0.0
	for s := 0; s < seeds; s++ {
		sum += wordsForOpt(opt, n, uint64(31+s))
	}
	return sum / float64(seeds)
}

// meanWords averages words over a few seeds for a plain algorithm config.
func meanWords(alg Algorithm, k, n int, eps float64, seeds int) float64 {
	return meanWordsOpt(Options{K: k, Epsilon: eps, Algorithm: alg}, n, seeds)
}

// logFit least-squares-fits y ≈ a + b·log2(x) and returns the slope b and
// the coefficient of determination R².
func logFit(xs []int, ys []float64) (b, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		lx := math.Log2(float64(x))
		sx += lx
		sy += ys[i]
		sxx += lx * lx
		sxy += lx * ys[i]
	}
	b = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := (sy - b*sx) / n
	var ssRes, ssTot float64
	for i, x := range xs {
		pred := a + b*math.Log2(float64(x))
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - sy/n) * (ys[i] - sy/n)
	}
	if ssTot == 0 {
		return b, 1
	}
	return b, 1 - ssRes/ssTot
}

// TestCommunicationScalesLogarithmicallyInN regression-fits total
// communication against log N for every algorithm: the fit must be a good
// explanation (R² with generous slack), the slope positive, and the total
// strongly sublinear in N.
func TestCommunicationScalesLogarithmicallyInN(t *testing.T) {
	const (
		k    = 4
		eps  = 0.1
		runs = 3
	)
	ns := []int{1000, 4000, 16000, 64000, 256000}
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			ys := make([]float64, len(ns))
			for i, n := range ns {
				ys[i] = meanWords(alg, k, n, eps, runs)
			}
			slope, r2 := logFit(ns, ys)
			if slope <= 0 {
				t.Errorf("communication does not grow with log N: slope %.1f (words %v)", slope, ys)
			}
			if r2 < 0.7 {
				t.Errorf("poor log-N fit: R² = %.3f (words %v over N %v)", r2, ys, ns)
			}
			// N grew 256×; O(log N) growth is ~2.8× here. Anything close
			// to linear in N would blow far past the 12× slack.
			if ratio := ys[len(ys)-1] / ys[0]; ratio > 12 {
				t.Errorf("communication grew %.1f× while N grew 256×; not O(log N) (words %v)", ratio, ys)
			}
		})
	}
	t.Run("robust", func(t *testing.T) {
		t.Parallel()
		// The robust mode pays an exact (p = 1, every arrival reported)
		// prefix until n̄ > 12·√k/(ε·ε_eff) ≈ 3600 at this configuration,
		// so the log-N shape is asserted from beyond that threshold.
		rns := []int{4000, 16000, 64000, 256000}
		opt := Options{K: k, Epsilon: eps, Algorithm: AlgorithmRandomized, Robust: true}
		ys := make([]float64, len(rns))
		for i, n := range rns {
			ys[i] = meanWordsOpt(opt, n, runs)
		}
		slope, r2 := logFit(rns, ys)
		if slope <= 0 {
			t.Errorf("robust communication does not grow with log N: slope %.1f (words %v)", slope, ys)
		}
		if r2 < 0.7 {
			t.Errorf("robust: poor log-N fit: R² = %.3f (words %v over N %v)", r2, ys, rns)
		}
		// N grew 64×; O(log N) growth is small past the exact prefix.
		if ratio := ys[len(ys)-1] / ys[0]; ratio > 12 {
			t.Errorf("robust communication grew %.1f× while N grew 64×; not O(log N) (words %v)", ratio, ys)
		}
	})
}

// TestCommunicationScalesInKAndEpsilon pins the k and 1/ε shapes: the
// deterministic baseline is Θ(k/ε·logN) — linear in both — while the
// randomized protocol's k-dependence is Θ(√k), strictly sublinear.
func TestCommunicationScalesInKAndEpsilon(t *testing.T) {
	const (
		n    = 40000
		eps  = 0.1
		runs = 3
	)
	t.Run("k", func(t *testing.T) {
		t.Parallel()
		const lo, hi = 2, 32 // k grows 16×
		det := meanWords(AlgorithmDeterministic, hi, n, eps, runs) /
			meanWords(AlgorithmDeterministic, lo, n, eps, runs)
		if det < 4 || det > 40 {
			t.Errorf("deterministic words grew %.1f× for 16× more sites; want ~linear (generous 4–40×)", det)
		}
		rnd := meanWords(AlgorithmRandomized, hi, n, eps, runs) /
			meanWords(AlgorithmRandomized, lo, n, eps, runs)
		if rnd > det {
			t.Errorf("randomized k-scaling (%.1f×) worse than deterministic (%.1f×); want Θ(√k) vs Θ(k)", rnd, det)
		}
		if rnd > 12 {
			t.Errorf("randomized words grew %.1f× for 16× more sites; want ~√k (generous ≤12×)", rnd)
		}
		// The robust mode's report traffic is k-independent by design (the
		// sampling boost scales with √k, so reports stay ≈ 12/(ε·ε_eff) per
		// round) and only the per-round broadcast grows with k — strictly
		// sublinear overall.
		rob := meanWordsOpt(Options{K: hi, Epsilon: eps, Algorithm: AlgorithmRandomized, Robust: true}, n, runs) /
			meanWordsOpt(Options{K: lo, Epsilon: eps, Algorithm: AlgorithmRandomized, Robust: true}, n, runs)
		if rob > 12 {
			t.Errorf("robust words grew %.1f× for 16× more sites; want sublinear (generous ≤12×)", rob)
		}
	})
	t.Run("epsilon", func(t *testing.T) {
		t.Parallel()
		const k = 4
		for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic} {
			// ε shrinks 4×: linear 1/ε cost quadruples, with generous slack.
			ratio := meanWords(alg, k, n, eps/4, runs) / meanWords(alg, k, n, eps, runs)
			if ratio < 1.5 || ratio > 16 {
				t.Errorf("%v: words grew %.1f× for 4× smaller ε; want ~linear in 1/ε (generous 1.5–16×)", alg, ratio)
			}
		}
		// The robust mode's ε-dependence is ~1/ε² asymptotically (the
		// sampling boost scales with ε·ε_eff); at this n the smaller ε
		// mostly extends the exact p = 1 prefix, so the bounds are loose.
		robOpt := func(e float64) Options {
			return Options{K: k, Epsilon: e, Algorithm: AlgorithmRandomized, Robust: true}
		}
		ratio := meanWordsOpt(robOpt(eps/4), n, runs) / meanWordsOpt(robOpt(eps), n, runs)
		if ratio < 1.2 || ratio > 40 {
			t.Errorf("robust: words grew %.1f× for 4× smaller ε; want growth in 1/ε (generous 1.2–40×)", ratio)
		}
	})
}

// ---------------------------------------------------------------------------
// Hierarchical (tree) rows.

// TestEpsilonDeltaGuaranteeTree re-runs the ε/δ accuracy matrix over a
// 2-level coordinator tree at k = 256, fan-out 16 (16 aggregator shards of
// 16 leaves each). The randomized and deterministic assemblies split the
// error budget multiplicatively across levels ((1+ε_level)² = 1+ε), so the
// end-to-end band is the same ±ε·n as the flat star; the failure budgets:
//
//   - deterministic: δ = 0 — the aggregators feed their raw monotone
//     reported sums, so the always-bound survives re-aggregation exactly.
//   - randomized: δ = 0.1. The union bound over the 17 coordinators is
//     covered by the Rescale=3 default (per-coordinator empirical rate is
//     far below δ/17) plus the √G cancellation of the 16 shards'
//     independent zero-mean estimate errors at the root's input.
//   - sampling: the tree stacks two one-standard-deviation estimators
//     (both levels run at full ε; see sample.NewTreeProtocol), so the
//     combined σ is ~√2·ε·n and the honest constant is
//     δ = P(|N(0,√2)| > 1) ≈ 0.48 — budgeted as 1/2.
//
// Deterministic frequency/rank are absent by design: their summaries have
// no merge path and the facade rejects the combination (topology_test.go).
func TestEpsilonDeltaGuaranteeTree(t *testing.T) {
	const (
		k      = 256
		fanout = 16
		n      = 8000
		eps    = 0.1
	)
	problems := []struct {
		name string
		run  func(opt Options, n int) [2]float64
		algs []Algorithm
	}{
		{"count", runCountGuaranteeOpt, []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling}},
		{"freq", runFreqGuaranteeOpt, []Algorithm{AlgorithmRandomized, AlgorithmSampling}},
		{"rank", runRankGuaranteeOpt, []Algorithm{AlgorithmRandomized, AlgorithmSampling}},
	}
	seeds := guaranteeSeeds(t)
	for _, p := range problems {
		for _, alg := range p.algs {
			p, alg := p, alg
			t.Run(p.name+"/"+alg.String(), func(t *testing.T) {
				t.Parallel()
				var failures [2]int
				worst := 0.0
				for s := 0; s < seeds; s++ {
					opt := Options{
						K: k, Epsilon: eps, Algorithm: alg, Seed: uint64(2000 + s*7919),
						Topology: TopologyTree, Fanout: fanout,
					}
					errs := p.run(opt, n)
					for idx, e := range errs {
						if e > 1 {
							failures[idx]++
						}
						if e > worst {
							worst = e
						}
					}
				}
				switch alg {
				case AlgorithmDeterministic:
					if failures[0] != 0 || failures[1] != 0 {
						t.Errorf("deterministic tree ε bound violated in %d+%d of %d seeds (worst %.2f×ε·n)",
							failures[0], failures[1], seeds, worst)
					}
				default:
					delta := 0.1
					if alg == AlgorithmSampling {
						delta = 0.5
					}
					budget := failBudget(seeds, delta)
					for idx, f := range failures {
						if f > budget {
							t.Errorf("instant %d: tree ε bound violated in %d of %d seeds (budget %d, worst %.2f×ε·n)",
								idx, f, seeds, budget, worst)
						}
					}
				}
			})
		}
	}
}

// treeOptK builds the randomized tree count options used by the fan-in
// tests.
func treeOptK(k, fanout int, eps float64) Options {
	return Options{K: k, Epsilon: eps, Algorithm: AlgorithmRandomized,
		Topology: TopologyTree, Fanout: fanout}
}

// meanRootMessages averages the root-level fan-in message count over a few
// seeds.
func meanRootMessages(opt Options, n, seeds int) float64 {
	sum := 0.0
	for s := 0; s < seeds; s++ {
		sum += float64(metricsForOpt(opt, n, uint64(31+s)).LevelMessages[1])
	}
	return sum / float64(seeds)
}

// TestTreeRootFanInScaling pins the communication shape that justifies the
// tree: the root's fan-in traffic follows the per-level bound
// O(√f/ε·logN) (f children feeding it), not O(k). Square trees k = f²
// make the contrast sharp — k grows 16× from f=8 to f=32 while the
// per-level bound predicts ~√16 = 4× growth at the root.
func TestTreeRootFanInScaling(t *testing.T) {
	const (
		eps  = 0.1
		n    = 200000
		runs = 3
	)
	fanouts := []int{8, 16, 32}
	roots := make([]float64, len(fanouts))
	for i, f := range fanouts {
		roots[i] = meanRootMessages(treeOptK(f*f, f, eps), n, runs)
	}
	flatLo := float64(metricsForOpt(Options{K: fanouts[0] * fanouts[0], Epsilon: eps, Algorithm: AlgorithmRandomized}, n, 31).Messages)
	flatHi := float64(metricsForOpt(Options{K: fanouts[2] * fanouts[2], Epsilon: eps, Algorithm: AlgorithmRandomized}, n, 31).Messages)
	rootRatio := roots[2] / roots[0]
	flatRatio := flatHi / flatLo
	// ~√16 = 4× with 2× slack; anything O(k) would land near 16×.
	if rootRatio > 8 {
		t.Errorf("root fan-in grew %.1f× while k grew 16×; want ~√fanout growth ≤8× (root messages %v)", rootRatio, roots)
	}
	// The flat star's root pays Ω(k) per round (broadcasts alone); the tree
	// root must grow strictly slower.
	if 2*rootRatio > flatRatio {
		t.Errorf("tree root fan-in grew %.1f× vs flat star's %.1f× over the same k range; want at most half (root messages %v)",
			rootRatio, flatRatio, roots)
	}
}

// TestTreeRootFanInAcceptance is the PR's headline pin: a 2-level tree at
// k = 1024, fan-out 32 produces ε-correct answers on every transport while
// the root's fan-in message count stays at least 5× below the flat star's
// root at the same k.
func TestTreeRootFanInAcceptance(t *testing.T) {
	const (
		k      = 1024
		fanout = 32
		eps    = 0.1
		n      = 200000
		seed   = 42
	)
	flat := metricsForOpt(Options{K: k, Epsilon: eps, Algorithm: AlgorithmRandomized}, n, seed)
	transports := []Transport{TransportSequential, TransportGoroutine, TransportTCP}
	if testing.Short() {
		transports = transports[:1]
	}
	for _, tp := range transports {
		tp := tp
		t.Run(tp.String(), func(t *testing.T) {
			opt := treeOptK(k, fanout, eps)
			opt.Transport = tp
			opt.Seed = seed
			tr := NewCountTracker(opt)
			defer tr.Close()
			per := n / k
			for s := 0; s < k; s++ {
				tr.ObserveBatch(s, per)
			}
			truth := float64(per * k)
			if got := tr.Estimate(); math.Abs(got-truth) > eps*truth {
				t.Errorf("tree estimate %.0f outside ±ε·n of %.0f", got, truth)
			}
			m := tr.Metrics()
			if m.Depth != 2 {
				t.Fatalf("Depth = %d, want 2", m.Depth)
			}
			if 5*m.LevelMessages[1] > flat.Messages {
				t.Errorf("root fan-in %d messages is not ≥5× below the flat star's %d at k=%d",
					m.LevelMessages[1], flat.Messages, k)
			}
			t.Logf("root fan-in %d messages vs flat star %d (%.1f×)",
				m.LevelMessages[1], flat.Messages, float64(flat.Messages)/float64(m.LevelMessages[1]))
		})
	}
}
