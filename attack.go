package disttrack

import (
	"math"

	"disttrack/internal/stats"
)

// AttackStrategy selects the adaptive adversary's arrival policy (see
// Adversary).
type AttackStrategy int

const (
	// AttackBoundaryCamp exploits answer-change detection: a silent
	// arrival leaves the randomized tracker's answer bit-identical, while
	// a sampled report always moves it, so the adversary knows the exact
	// arrival on which its current victim site reported. It feeds one site
	// until the answer moves, then rotates to the next — parking every
	// site at n_i = n̄_i, where the estimator's unbiased −1 + 1/p
	// correction becomes a systematic k·(1/p − 1) ≈ √k·ε_eff·n̄
	// overestimate that holds at every instant.
	AttackBoundaryCamp AttackStrategy = iota
	// AttackThresholdLearn learns the typical silent-run length (≈ 1/p)
	// from observed answer changes and tries to freeze every site just
	// below its next report, ratcheting an undetected Θ(k/p) undercount.
	// Sites whose report fires early are re-fed and re-frozen.
	AttackThresholdLearn
)

// String names the strategy.
func (s AttackStrategy) String() string {
	switch s {
	case AttackBoundaryCamp:
		return "boundary-camp"
	case AttackThresholdLearn:
		return "threshold-learn"
	default:
		return "unknown"
	}
}

// Adversary is a query-driven arrival generator: an adaptive adversary
// that picks each arrival's site from the tracker's observed answers — the
// adaptive-stream threat model the robust mode (Options.Robust) defends
// against. It treats the tracker as a black box: its only input is the
// answer sequence.
type Adversary struct {
	strategy AttackStrategy
	k        int
	rng      *stats.RNG

	started bool
	last    float64 // last observed answer
	lastFed int     // site of the previous arrival
	cur     int     // boundary-camp: the current victim site

	// threshold-learn state: per-site silent-run counters plus the
	// running mean of observed report gaps.
	silent []int64
	gapSum float64
	gapN   int
}

// NewAdversary returns an adversary over k sites. The seed only breaks
// ties; the strategies are deterministic given the answer sequence.
func NewAdversary(strategy AttackStrategy, k int, seed uint64) *Adversary {
	if k <= 0 {
		panic("disttrack: NewAdversary needs k >= 1")
	}
	return &Adversary{
		strategy: strategy,
		k:        k,
		rng:      stats.New(seed),
		silent:   make([]int64, k),
	}
}

// Next consumes the tracker's current answer and returns the site of the
// next arrival. Call it before every Observe, passing the estimate taken
// after the previous arrival.
func (a *Adversary) Next(answer float64) int {
	if a.started && answer != a.last {
		a.noteChange()
	}
	a.last = answer
	a.started = true
	target := a.pick()
	a.lastFed = target
	a.silent[target]++
	return target
}

// noteChange records that the previous arrival moved the answer — on the
// non-robust tracker, proof that site lastFed just reported.
func (a *Adversary) noteChange() {
	switch a.strategy {
	case AttackBoundaryCamp:
		a.cur = (a.cur + 1) % a.k
	case AttackThresholdLearn:
		a.gapSum += float64(a.silent[a.lastFed])
		a.gapN++
		a.silent[a.lastFed] = 0
	}
}

// pick chooses the next victim site.
func (a *Adversary) pick() int {
	switch a.strategy {
	case AttackThresholdLearn:
		// Freeze sites whose silent run is close to the learned report
		// gap; keep feeding the least-advanced unfrozen site. Before any
		// gap is observed the cap is infinite and this degenerates to
		// round-robin by silent count.
		cap := math.Inf(1)
		if a.gapN > 0 {
			cap = 2 * a.gapSum / float64(a.gapN)
		}
		best, bestAny := -1, 0
		for i := 1; i < a.k; i++ {
			if a.silent[i] < a.silent[bestAny] {
				bestAny = i
			}
		}
		for i := 0; i < a.k; i++ {
			if float64(a.silent[i]) < cap && (best < 0 || a.silent[i] < a.silent[best]) {
				best = i
			}
		}
		if best < 0 {
			return bestAny // everything frozen: push the least-advanced
		}
		return best
	default:
		return a.cur
	}
}

// AttackOutcome reports one adversarial run's accuracy and cost.
type AttackOutcome struct {
	// Errs holds |estimate − n|/(ε·n) at the instants n/2 and n — the
	// guarantee-test normalization, > 1 means the ε bound is violated.
	Errs [2]float64
	// Checks and Violations count the periodic ε-band checkpoints and how
	// many of them were outside the band.
	Checks, Violations int
	// WorstErr is the largest normalized error seen at any checkpoint.
	WorstErr float64
	// Words and Messages are the run's total communication.
	Words, Messages int64
}

// ViolationRate is Violations/Checks (0 for an empty run).
func (o AttackOutcome) ViolationRate() float64 {
	if o.Checks == 0 {
		return 0
	}
	return float64(o.Violations) / float64(o.Checks)
}

// RunAttack drives an adaptive adversary against a count tracker built
// from opt: every arrival's site is chosen from the previous Estimate
// answer, and the estimate is checked against the true count at periodic
// checkpoints. Deterministic given (opt, strategy, seed). The tracker is
// closed before returning.
func RunAttack(opt Options, strategy AttackStrategy, n int, seed uint64) AttackOutcome {
	tr := NewCountTracker(opt)
	defer tr.Close()
	adv := NewAdversary(strategy, opt.K, seed)
	checkEvery := n / 64
	if checkEvery < 1 {
		checkEvery = 1
	}
	var out AttackOutcome
	ans := tr.Estimate()
	for i := 1; i <= n; i++ {
		tr.Observe(adv.Next(ans))
		ans = tr.Estimate()
		e := math.Abs(ans-float64(i)) / (opt.Epsilon * float64(i))
		if i == n/2 {
			out.Errs[0] = e
		}
		if i == n {
			out.Errs[1] = e
		}
		if i%checkEvery == 0 {
			out.Checks++
			if e > 1 {
				out.Violations++
			}
			if e > out.WorstErr {
				out.WorstErr = e
			}
		}
	}
	m := tr.Metrics()
	out.Words, out.Messages = m.Words, m.Messages
	return out
}
