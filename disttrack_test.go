package disttrack

import (
	"math"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestCountTrackerAllAlgorithms(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 30000
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		tr := NewCountTracker(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: 1})
		bad := 0
		for i := 0; i < n; i++ {
			tr.Observe(i % k)
			if i%37 == 0 {
				if stats.RelErr(tr.Estimate(), float64(i+1)) > 2*eps {
					bad++
				}
			}
		}
		if frac := float64(bad) / float64(n/37); frac > 0.1 {
			t.Errorf("%v: %.1f%% of checks failed", alg, 100*frac)
		}
		m := tr.Metrics()
		if m.Arrivals != n || m.Messages == 0 || m.Words == 0 {
			t.Errorf("%v: bad metrics %+v", alg, m)
		}
		tr.Close()
	}
}

func TestFrequencyTrackerAllAlgorithms(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 20000
	rng := stats.New(11)
	items := workload.ZipfItems(100, 1.1, rng)
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		tr := NewFrequencyTracker(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: 2})
		truth := map[int64]int64{}
		bad, checks := 0, 0
		for i := 0; i < n; i++ {
			j := items(i)
			truth[j]++
			tr.Observe(i%k, j)
			if i%103 == 0 && i > 0 {
				for _, q := range []int64{0, 1, 10, 99} {
					checks++
					if math.Abs(tr.Estimate(q)-float64(truth[q])) > 2*eps*float64(i+1) {
						bad++
					}
				}
			}
		}
		if frac := float64(bad) / float64(checks); frac > 0.1 {
			t.Errorf("%v: %.1f%% of frequency checks failed", alg, 100*frac)
		}
		tr.Close()
	}
}

func TestRankTrackerAllAlgorithms(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 20000
	values := workload.PermValues(n, stats.New(13))
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		tr := NewRankTracker(Options{K: k, Epsilon: eps, Algorithm: alg, Seed: 3})
		var seen []float64
		bad, checks := 0, 0
		for i := 0; i < n; i++ {
			v := values(i)
			seen = append(seen, v)
			tr.Observe(i%k, v)
			if i%211 == 0 && i > 0 {
				q := float64(n) / 2
				var truth float64
				for _, sv := range seen {
					if sv < q {
						truth++
					}
				}
				checks++
				if math.Abs(tr.Rank(q)-truth) > 2*eps*float64(i+1) {
					bad++
				}
			}
		}
		if frac := float64(bad) / float64(checks); frac > 0.1 {
			t.Errorf("%v: %.1f%% of rank checks failed", alg, 100*frac)
		}
		// Quantile round trip.
		med := tr.Quantile(0.5, 0, n)
		if math.Abs(med-float64(n)/2) > 3*eps*n {
			t.Errorf("%v: median %v far from %v", alg, med, n/2)
		}
		tr.Close()
	}
}

func TestMedianBoostedCountTracker(t *testing.T) {
	const k = 4
	const eps = 0.15
	const n = 10000
	tr := NewCountTracker(Options{K: k, Epsilon: eps, Copies: 7, Seed: 5})
	for i := 0; i < n; i++ {
		tr.Observe(i % k)
		if stats.RelErr(tr.Estimate(), float64(i+1)) > eps {
			t.Fatalf("boosted tracker out of band at %d", i+1)
		}
	}
}

// TestMedianBoostedFrequencyAndRankTrackers pins that Options.Copies is
// honored by the frequency and rank trackers too (via boost.Wrap), not just
// CountTracker as the Options doc used to claim: the boosted run stays in
// the ε band at every checkpoint, and the extra copies actually run —
// communication scales with the copy count.
func TestMedianBoostedFrequencyAndRankTrackers(t *testing.T) {
	const k = 4
	const eps = 0.15
	const n = 10000
	const copies = 5

	freqRun := func(copies int) (*FrequencyTracker, Metrics) {
		zipf := workload.ZipfItems(50, 1.2, stats.New(13))
		truth := map[int64]int64{}
		tr := NewFrequencyTracker(Options{K: k, Epsilon: eps, Copies: copies, Seed: 17})
		for i := 0; i < n; i++ {
			j := zipf(i)
			truth[j]++
			tr.Observe(i%k, j)
			if copies > 1 && i%59 == 0 && i > 0 {
				if math.Abs(tr.Estimate(0)-float64(truth[0])) > eps*float64(i+1) {
					t.Fatalf("boosted frequency tracker out of band at %d", i+1)
				}
			}
		}
		return tr, tr.Metrics()
	}
	_, boosted := freqRun(copies)
	_, single := freqRun(1)
	if boosted.Messages < 2*single.Messages {
		t.Errorf("freq: %d copies sent %d messages vs %d for one copy; the copies are not running",
			copies, boosted.Messages, single.Messages)
	}

	rankRun := func(copies int) (*RankTracker, Metrics) {
		values := workload.PermValues(n, stats.New(19))
		mid := float64(n) / 2
		var below float64
		tr := NewRankTracker(Options{K: k, Epsilon: eps, Copies: copies, Seed: 23})
		for i := 0; i < n; i++ {
			v := values(i)
			if v < mid {
				below++
			}
			tr.Observe(i%k, v)
			if copies > 1 && i%59 == 0 && i > 0 {
				if math.Abs(tr.Rank(mid)-below) > eps*float64(i+1) {
					t.Fatalf("boosted rank tracker out of band at %d", i+1)
				}
			}
		}
		return tr, tr.Metrics()
	}
	rt, boostedRank := rankRun(copies)
	_, singleRank := rankRun(1)
	if boostedRank.Messages < 2*singleRank.Messages {
		t.Errorf("rank: %d copies sent %d messages vs %d for one copy; the copies are not running",
			copies, boostedRank.Messages, singleRank.Messages)
	}
	// The boosted quantile path goes through the facade's bisect.
	if q := rt.Quantile(0.5, 0, n); math.Abs(q-float64(n)/2) > 2*eps*n {
		t.Errorf("boosted median %.0f too far from %.0f", q, float64(n)/2)
	}
}

func TestConcurrentRuntimeMatchesGuarantees(t *testing.T) {
	const k = 8
	const eps = 0.15
	const n = 5000
	tr := NewCountTracker(Options{K: k, Epsilon: eps, Seed: 7, Concurrent: true})
	defer tr.Close()
	bad := 0
	for i := 0; i < n; i++ {
		tr.Observe(i % k)
		if i%17 == 0 && stats.RelErr(tr.Estimate(), float64(i+1)) > eps {
			bad++
		}
	}
	if frac := float64(bad) / float64(n/17); frac > 0.12 {
		t.Fatalf("concurrent runtime: %.1f%% checks failed", 100*frac)
	}
	m := tr.Metrics()
	if m.Arrivals != n {
		t.Fatalf("concurrent metrics arrivals = %d", m.Arrivals)
	}
}

func TestDeterministicSeedsReproduce(t *testing.T) {
	run := func() (float64, Metrics) {
		tr := NewCountTracker(Options{K: 4, Epsilon: 0.1, Seed: 42})
		for i := 0; i < 5000; i++ {
			tr.Observe(i % 4)
		}
		return tr.Estimate(), tr.Metrics()
	}
	e1, m1 := run()
	e2, m2 := run()
	if e1 != e2 || m1 != m2 {
		t.Fatalf("same seed produced different results: %v/%v vs %v/%v", e1, m1, e2, m2)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{K: 0, Epsilon: 0.1},
		{K: 2, Epsilon: 0},
		{K: 2, Epsilon: 1},
		{K: 2, Epsilon: math.NaN()},
		{K: 2, Epsilon: 0.1, Copies: -1},
		{K: 2, Epsilon: 0.1, Rescale: -1},
		{K: 2, Epsilon: 0.1, Rescale: math.NaN()},
		{K: 2, Epsilon: 0.1, Transport: Transport(99)},
		{K: 2, Epsilon: 0.1, Transport: Transport(-1)},
		{K: 2, Epsilon: 0.1, SpaceProbeEvery: -5},
		{K: 2, Epsilon: 0.1, IngestBuffer: -1},
		{K: 2, Epsilon: 0.1, IngestPolicy: IngestPolicy(99)},
		{K: 2, Epsilon: 0.1, IngestPolicy: IngestPolicy(-1)},
	}
	for i, o := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("options %d (%+v) did not panic", i, o)
				}
			}()
			NewCountTracker(o)
		}()
	}
	// The boundary values that must stay valid.
	good := []Options{
		{K: 1, Epsilon: 0.5},
		{K: 2, Epsilon: 0.1, Rescale: 1},
		{K: 2, Epsilon: 0.1, Transport: TransportGoroutine},
		{K: 2, Epsilon: 0.1, ConcurrentIngest: true, IngestBuffer: 1, IngestPolicy: IngestDrop},
	}
	for i, o := range good {
		tr := NewCountTracker(o)
		tr.Observe(0)
		tr.Close()
		_ = i
	}
}

func TestTransportString(t *testing.T) {
	if TransportSequential.String() != "sequential" ||
		TransportGoroutine.String() != "goroutine" ||
		TransportTCP.String() != "tcp" ||
		Transport(99).String() != "unknown" {
		t.Fatal("Transport.String broken")
	}
}

// TestConcurrentTransportReportsSpace pins the satellite fix: the
// concurrent transports populate the space high-water marks via
// quiesce-time probes instead of silently leaving them zero.
func TestConcurrentTransportReportsSpace(t *testing.T) {
	for _, tr := range []Transport{TransportGoroutine, TransportTCP} {
		c := NewCountTracker(Options{K: 4, Epsilon: 0.1, Seed: 3, Transport: tr})
		for i := 0; i < 2000; i++ {
			c.Observe(i % 4)
		}
		m := c.Metrics()
		if m.MaxSiteSpace == 0 || m.MaxCoordSpace == 0 {
			t.Errorf("%v: space marks missing: %+v", tr, m)
		}
		c.Close()
	}
}

func TestObserveSiteRangeChecked(t *testing.T) {
	tr := NewCountTracker(Options{K: 2, Epsilon: 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range site did not panic")
		}
	}()
	tr.Observe(2)
}

func TestAlgorithmString(t *testing.T) {
	if AlgorithmRandomized.String() != "randomized" ||
		AlgorithmDeterministic.String() != "deterministic" ||
		AlgorithmSampling.String() != "sampling" ||
		Algorithm(99).String() != "unknown" {
		t.Fatal("Algorithm.String broken")
	}
}
