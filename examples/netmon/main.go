// Netmon: 16 frontend servers export request latencies; an operations
// dashboard needs live p50/p95/p99 across the whole fleet — the quantile
// (rank) tracking scenario of Section 4. The tracker answers quantile
// queries at any moment with rank error ±εn while communicating far less
// than shipping every latency sample.
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"math"
	"sort"

	"disttrack"
	"disttrack/internal/stats"
)

// latency draws a long-tailed request latency in milliseconds: log-normal
// body with an occasional slow outlier.
func latency(rng *stats.RNG) float64 {
	// Box-Muller from two uniforms.
	u1, u2 := rng.Float64(), rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	ms := math.Exp(3 + 0.6*z) // median ~20ms
	if rng.Bernoulli(0.01) {
		ms *= 10 // tail
	}
	return ms
}

func main() {
	const k = 16      // frontends
	const eps = 0.02  // rank error: ±2% of the number of requests
	const n = 200_000 // requests

	rng := stats.New(31)
	// Rescale 1 runs the protocol at the nominal ε (per-instant success
	// probability ~3/4 instead of 0.9); dashboards tolerate that for a
	// 3-5x communication saving.
	tr := disttrack.NewRankTracker(disttrack.Options{K: k, Epsilon: eps, Seed: 9, Rescale: 1})

	var all []float64 // oracle for the comparison printout
	fmt.Println("live fleet latency quantiles (tracker vs exact):")
	for i := 0; i < n; i++ {
		ms := latency(rng)
		all = append(all, ms)
		tr.Observe(rng.Intn(k), ms)

		if (i+1)%50_000 == 0 {
			sort.Float64s(all)
			fmt.Printf("\nafter %d requests:\n", i+1)
			for _, q := range []float64{0.50, 0.95, 0.99} {
				est := tr.Quantile(q, 0, 10_000)
				exact := all[int(q*float64(len(all)-1))]
				fmt.Printf("  p%02.0f  tracker %8.1f ms   exact %8.1f ms\n",
					q*100, est, exact)
			}
		}
	}

	m := tr.Metrics()
	fmt.Printf("\ncommunication: %d words for %d requests (%.3f words/request)\n",
		m.Words, m.Arrivals, float64(m.Words)/float64(m.Arrivals))
	fmt.Printf("shipping every sample would cost %d words — %.1fx more — and the\n"+
		"gap widens with N: the tracker pays O(√k/ε·logN), not O(N)\n",
		n, float64(n)/float64(m.Words))
}
