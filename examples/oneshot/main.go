// Oneshot: when you only need an answer once (say, a nightly report over k
// shards), the one-shot k-party protocols of paper §1.3 are dramatically
// cheaper than continuous tracking — and continuous tracking costs only a
// logN factor more than one-shot, which is the paper's punchline about the
// difficulty of the tracking model.
//
//	go run ./examples/oneshot
package main

import (
	"fmt"
	"math"
	"sort"

	"disttrack"
	"disttrack/internal/stats"
)

func main() {
	const k = 32
	const eps = 0.02
	const n = 400_000

	// k shards of a skewed numeric dataset (e.g. per-shard order values).
	rng := stats.New(2112)
	shards := make([][]float64, k)
	var all []float64
	for i := 0; i < n; i++ {
		v := math.Exp(4 + 1.2*normal(rng))
		s := rng.Intn(k)
		shards[s] = append(shards[s], v)
		all = append(all, v)
	}
	sort.Float64s(all)

	rank, cost := disttrack.OneShotRanks(shards, eps, 7)
	fmt.Printf("one-shot quantiles over %d values in %d shards (ε=%g):\n\n", n, k, eps)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		// Invert the rank oracle by bisection.
		lo, hi := all[0], all[len(all)-1]
		target := q * float64(n)
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if rank(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		exact := all[int(q*float64(len(all)-1))]
		fmt.Printf("  p%04.1f  one-shot %10.2f   exact %10.2f\n", q*100, (lo+hi)/2, exact)
	}
	fmt.Printf("\none-shot cost: %d words — O(√k/ε), independent of n's %d\n", cost.Words, n)

	det, detCost := disttrack.OneShotRanksDeterministic(shards, eps)
	_ = det
	fmt.Printf("deterministic merge (GK summaries): %d words — the Θ(k/ε·log) baseline\n", detCost.Words)

	fmt.Println("\nfor comparison, CONTINUOUS tracking of the same quantiles:")
	tr := disttrack.NewRankTracker(disttrack.Options{K: k, Epsilon: eps, Seed: 3, Rescale: 1})
	i := 0
	for site, shard := range shards {
		for _, v := range shard {
			tr.Observe(site, v)
			i++
		}
	}
	m := tr.Metrics()
	ratio := float64(m.Words) / float64(cost.Words)
	logN := math.Log2(float64(n))
	h := math.Log2(1 / (eps * math.Sqrt(k)))
	fmt.Printf("tracking cost: %d words ≈ one-shot × %.0f\n", m.Words, ratio)
	fmt.Printf("paper's predicted gap for ranks: logN · log^1.5(1/ε√k) ≈ %.1f · %.1f ≈ %.0f\n",
		logN, math.Pow(h, 1.5), logN*math.Pow(h, 1.5))
	fmt.Println("\nthe price of \"at all times\" over \"once\" is only polylogarithmic —")
	fmt.Println("the paper's Section 1.3 observation (for frequencies the gap is a")
	fmt.Println("clean Θ(logN); see EXPERIMENTS.md experiment E13).")
}

// normal draws a standard normal via Box-Muller.
func normal(rng *stats.RNG) float64 {
	u1, u2 := rng.Float64(), rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
