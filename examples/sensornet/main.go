// Sensornet: a wireless sensor network with 32 power-limited gateways
// monitors which device types generate the most readings. The coordinator
// keeps ε-accurate frequencies for every device type at all times — the
// heavy-hitters tracking scenario that motivates Section 3 of the paper
// (the protocols are "simple and extremely lightweight, thus can be easily
// implemented in power-limited distributed systems like wireless sensor
// networks").
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"sort"

	"disttrack"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func main() {
	const k = 32      // gateways
	const eps = 0.02  // frequency error: ±2% of the total reading count
	const n = 300_000 // readings
	const deviceTypes = 1000

	rng := stats.New(2026)
	// Reading volume per device type is heavy-tailed (Zipf), and gateways
	// see skewed load too: a few hot gateways receive most traffic.
	device := workload.ZipfItems(deviceTypes, 1.2, rng)
	gateway := workload.ZipfPlacement(k, 0.8, rng.Split())

	run := func(alg disttrack.Algorithm) (disttrack.Metrics, *disttrack.FrequencyTracker) {
		tr := disttrack.NewFrequencyTracker(disttrack.Options{
			K: k, Epsilon: eps, Algorithm: alg, Seed: 7,
		})
		truth := make(map[int64]int64)
		for i := 0; i < n; i++ {
			d := int64(device(i))
			truth[d]++
			tr.Observe(gateway(i), d)
		}
		return tr.Metrics(), tr
	}

	fmt.Println("tracking per-device-type reading counts across 32 gateways")
	fmt.Printf("n=%d readings, %d device types, ε=%.0f%% of n\n\n", n, deviceTypes, eps*100)

	mRand, tracker := run(disttrack.AlgorithmRandomized)
	mDet, _ := run(disttrack.AlgorithmDeterministic)

	// Report the top device types according to the tracker.
	type hh struct {
		dev int64
		est float64
	}
	var hot []hh
	for d := int64(0); d < deviceTypes; d++ {
		if est := tracker.Estimate(d); est > 2*eps*float64(n) {
			hot = append(hot, hh{d, est})
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].est > hot[j].est })
	fmt.Println("heavy hitters (estimate > 2εn):")
	for i, h := range hot {
		if i >= 8 {
			break
		}
		fmt.Printf("  device type %4d  ~%8.0f readings (%.1f%% of traffic)\n",
			h.dev, h.est, 100*h.est/float64(n))
	}

	fmt.Printf("\ncommunication (words): randomized %8d   deterministic %8d   (%.1fx saved)\n",
		mRand.Words, mDet.Words, float64(mDet.Words)/float64(mRand.Words))
	fmt.Printf("per-gateway space:     randomized %8d   deterministic %8d words\n",
		mRand.MaxSiteSpace, mDet.MaxSiteSpace)
	fmt.Println("\nthe randomized protocol is what Table 1 calls the new algorithm:")
	fmt.Println("O(√k/ε·logN) words and O(1/(ε√k)) space vs Θ(k/ε·logN) and O(1/ε).")
}
