// Adversarial: two demonstrations of adversarial inputs against the count
// trackers.
//
// Part 1 runs the hard input distribution µ from the paper's Theorem 2.2 —
// with probability 1/2 every element arrives at one random site, otherwise
// elements arrive round-robin — and shows why one-way deterministic
// algorithms are stuck at Θ(k/ε·logN) while the randomized two-way protocol
// escapes with O(√k/ε·logN).
//
// Part 2 upgrades the adversary from a hard-but-oblivious distribution to
// an ADAPTIVE one that chooses each arrival's site from the tracker's own
// answers. That breaks the randomized protocol outright — its guarantee
// only holds against oblivious streams — and shows the robust mode
// (Options.Robust) restoring the ε guarantee at a constant-factor
// communication overhead.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"

	"disttrack"
	"disttrack/internal/stats"
)

func main() {
	const k = 64
	const eps = 0.01
	const n = 300_000

	fmt.Printf("hard distribution µ (Theorem 2.2), k=%d, ε=%g, N=%d\n\n", k, eps, n)

	rng := stats.New(99)
	for trial := 0; trial < 4; trial++ {
		// Draw a branch of µ.
		singleSite := rng.Bernoulli(0.5)
		target := rng.Intn(k)
		placement := func(i int) int {
			if singleSite {
				return target
			}
			return i % k
		}

		det := disttrack.NewCountTracker(disttrack.Options{
			K: k, Epsilon: eps, Algorithm: disttrack.AlgorithmDeterministic,
		})
		rnd := disttrack.NewCountTracker(disttrack.Options{
			K: k, Epsilon: eps, Seed: rng.Uint64(), Rescale: 1,
		})
		badDet, badRnd := 0, 0
		for i := 0; i < n; i++ {
			s := placement(i)
			det.Observe(s)
			rnd.Observe(s)
			truth := float64(i + 1)
			if e := det.Estimate(); e < (1-eps)*truth || e > (1+eps)*truth {
				badDet++
			}
			if e := rnd.Estimate(); e < (1-2*eps)*truth || e > (1+2*eps)*truth {
				badRnd++
			}
		}
		branch := "round-robin"
		if singleSite {
			branch = fmt.Sprintf("all at site %d", target)
		}
		md, mr := det.Metrics(), rnd.Metrics()
		fmt.Printf("µ draw %d (%s):\n", trial+1, branch)
		fmt.Printf("  deterministic one-way: %7d msgs  (violations: %d)\n", md.Messages, badDet)
		fmt.Printf("  randomized two-way:    %7d msgs  (out of 2ε band: %.1f%%)\n",
			mr.Messages, 100*float64(badRnd)/float64(n))
		if !singleSite {
			fmt.Printf("  -> on this branch randomization saves %.1fx\n",
				float64(md.Messages)/float64(mr.Messages))
		} else {
			fmt.Println("  -> the single-site branch is what FORCES one-way algorithms")
			fmt.Println("     to keep dense thresholds at every site; the round-robin")
			fmt.Println("     branch then makes all of them fire (Theorem 2.2)")
		}
		fmt.Println()
	}

	adaptive()
}

// adaptive is part 2: the query-driven adversary against the plain
// randomized tracker and the robust mode, side by side.
func adaptive() {
	const k = 256
	const eps = 0.1
	const n = 20_000
	const trials = 4

	fmt.Printf("adaptive adversary (answer-driven arrivals), k=%d, ε=%g, n=%d\n\n", k, eps, n)
	for _, strategy := range []disttrack.AttackStrategy{
		disttrack.AttackBoundaryCamp, disttrack.AttackThresholdLearn,
	} {
		for _, robust := range []bool{false, true} {
			var rate, worst float64
			var words int64
			for t := 0; t < trials; t++ {
				out := disttrack.RunAttack(disttrack.Options{
					K: k, Epsilon: eps, Seed: uint64(t) + 1, Robust: robust,
				}, strategy, n, uint64(t)^0xa77ac)
				rate += out.ViolationRate()
				if out.WorstErr > worst {
					worst = out.WorstErr
				}
				words += out.Words
			}
			rate /= trials
			mode := "plain "
			if robust {
				mode = "robust"
			}
			fmt.Printf("  %s vs %s: ε-violation rate %.2f, worst error %.2f·ε·n, %d words/run\n",
				strategy, mode, rate, worst, words/trials)
		}
		fmt.Println()
	}
	fmt.Println("the plain tracker's randomness leaks through its answers: the adversary")
	fmt.Println("detects each report and parks sites at their report boundaries, turning")
	fmt.Println("the estimator's unbiased correction into a systematic error. the robust")
	fmt.Println("mode noises reports, gates releases behind a noisy threshold, and")
	fmt.Println("re-randomizes at round boundaries, collapsing the advantage back to δ.")
}
