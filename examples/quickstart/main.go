// Quickstart: track the total event count of 8 distributed sites within 5%
// at all times, and see how little communication it takes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"disttrack"
)

func main() {
	const k = 8       // sites
	const eps = 0.05  // target relative error
	const n = 200_000 // total events

	tracker := disttrack.NewCountTracker(disttrack.Options{
		K:       k,
		Epsilon: eps,
		Seed:    1,
	})

	// Elements arrive at sites in some arbitrary interleaving; here,
	// round-robin. The coordinator's estimate is valid after every single
	// arrival — that is the "continuous tracking" guarantee.
	for i := 0; i < n; i++ {
		tracker.Observe(i % k)
		if (i+1)%50_000 == 0 {
			fmt.Printf("after %7d events: estimate %9.0f (true %7d)\n",
				i+1, tracker.Estimate(), i+1)
		}
	}

	m := tracker.Metrics()
	fmt.Printf("\ncommunication: %d messages, %d words for %d events\n",
		m.Messages, m.Words, m.Arrivals)
	fmt.Printf("that is %.4f messages per event (the trivial deterministic\n"+
		"tracker would use ~%.0fx more at this k and ε)\n",
		float64(m.Messages)/float64(m.Arrivals), 8.0)
	fmt.Printf("per-site working space: %d words\n", m.MaxSiteSpace)

	// Bursty ingestion: when a site receives a run of events at once, feed
	// it as one batch — identical estimates and costs, but the simulator
	// only does work proportional to the messages the run triggers.
	burst := disttrack.NewCountTracker(disttrack.Options{K: k, Epsilon: eps, Seed: 1})
	for site := 0; site < k; site++ {
		burst.ObserveBatch(site, n/k)
	}
	bm := burst.Metrics()
	fmt.Printf("\nbatched bursts: estimate %.0f of %d true, %d words\n",
		burst.Estimate(), n, bm.Words)
}
