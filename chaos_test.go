package disttrack

// The chaos suite: every tracker runs under a seeded fault plan on the
// concurrent transports and must behave exactly as the fault model
// promises — masked faults (drop/duplicate/reorder under the reliability
// sublayer) are invisible except in the ledger, kills degrade coverage
// gracefully and recover, and cross-arrival delays never wedge a query.

import (
	"math"
	"testing"
	"time"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

const (
	chaosK    = 4
	chaosN    = 3000
	chaosEps  = 0.1
	chaosSeed = 11
)

// chaosResult is everything a faulted run must reproduce (or degrade
// predictably) against the fault-free baseline.
type chaosResult struct {
	answers []float64
	metrics Metrics
	faults  FaultStats
}

// chaosTracker abstracts the three trackers for the matrix.
type chaosTracker struct {
	name string
	run  func(t *testing.T, opt Options) chaosResult
}

var chaosTrackers = []chaosTracker{
	{"count", func(t *testing.T, opt Options) chaosResult {
		tr := NewCountTracker(opt)
		defer tr.Close()
		for i := 0; i < chaosN; i++ {
			tr.Observe(i % chaosK)
		}
		return chaosResult{[]float64{tr.Estimate()}, tr.Metrics(), tr.FaultStats()}
	}},
	{"freq", func(t *testing.T, opt Options) chaosResult {
		items := workload.ZipfItems(200, 1.1, stats.New(chaosSeed^0xf00d))
		tr := NewFrequencyTracker(opt)
		defer tr.Close()
		for i := 0; i < chaosN; i++ {
			tr.Observe(i%chaosK, items(i))
		}
		return chaosResult{
			[]float64{tr.Estimate(0), tr.Estimate(1), tr.Estimate(7), tr.Estimate(199)},
			tr.Metrics(), tr.FaultStats()}
	}},
	{"rank", func(t *testing.T, opt Options) chaosResult {
		values := workload.PermValues(chaosN, stats.New(chaosSeed^0xbeef))
		tr := NewRankTracker(opt)
		defer tr.Close()
		for i := 0; i < chaosN; i++ {
			tr.Observe(i%chaosK, values(i))
		}
		return chaosResult{
			[]float64{tr.Rank(chaosN / 4), tr.Rank(chaosN / 2), tr.Quantile(0.9, 0, chaosN)},
			tr.Metrics(), tr.FaultStats()}
	}},
}

// TestChaosEquivalence pins the reliability model across the full tracker ×
// algorithm matrix on both concurrent transports: under drop, duplicate,
// and reorder faults — each recovered by the retransmission/dedup sublayer
// — final query answers and arrival accounting are identical to the
// fault-free run, while the ledger records strictly more communication and
// the fault counters prove the schedule actually fired.
func TestChaosEquivalence(t *testing.T) {
	plan := &FaultPlan{Seed: 23, Drop: 0.04, Duplicate: 0.04, Reorder: 0.15}
	for _, tracker := range chaosTrackers {
		for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
			for _, transport := range []Transport{TransportGoroutine, TransportTCP} {
				tracker, alg, transport := tracker, alg, transport
				t.Run(tracker.name+"/"+alg.String()+"/"+transport.String(), func(t *testing.T) {
					t.Parallel()
					opt := Options{K: chaosK, Epsilon: chaosEps, Algorithm: alg,
						Seed: chaosSeed, Transport: transport}
					clean := tracker.run(t, opt)
					opt.FaultPlan = plan
					faulted := tracker.run(t, opt)

					for i := range clean.answers {
						if clean.answers[i] != faulted.answers[i] {
							t.Errorf("answer %d: fault-free %v, under masked faults %v",
								i, clean.answers[i], faulted.answers[i])
						}
					}
					if clean.metrics.Arrivals != faulted.metrics.Arrivals {
						t.Errorf("arrivals: fault-free %d, faulted %d",
							clean.metrics.Arrivals, faulted.metrics.Arrivals)
					}
					if faulted.metrics.LiveSites != chaosK {
						t.Errorf("LiveSites = %d, want %d (no kills in this plan)",
							faulted.metrics.LiveSites, chaosK)
					}
					f := faulted.faults
					if f.Dropped == 0 || f.Duplicated == 0 || f.Reordered == 0 {
						t.Fatalf("fault schedule fired nothing: %+v", f)
					}
					if faulted.metrics.Messages <= clean.metrics.Messages ||
						faulted.metrics.Words <= clean.metrics.Words {
						t.Errorf("recovery traffic not charged: messages %d vs %d, words %d vs %d",
							faulted.metrics.Messages, clean.metrics.Messages,
							faulted.metrics.Words, clean.metrics.Words)
					}
				})
			}
		}
	}
}

// TestChaosRobustEquivalence pins the robust mode's fault transparency:
// masked drop/duplicate/reorder faults under the reliability sublayer must
// leave the robust tracker's released answers bit-identical to a fault-free
// run on both concurrent transports. The stream runs deep enough that the
// sampling probability drops below 1, so the round-boundary
// re-randomization traffic (the defense's extra AdjustMsg frames) also
// rides through the fault layer.
func TestChaosRobustEquivalence(t *testing.T) {
	const robustN = 16000
	plan := &FaultPlan{Seed: 23, Drop: 0.04, Duplicate: 0.04, Reorder: 0.15}
	run := func(opt Options) chaosResult {
		tr := NewCountTracker(opt)
		defer tr.Close()
		var res chaosResult
		for i := 0; i < robustN; i++ {
			tr.Observe(i % chaosK)
			if (i+1)%2000 == 0 {
				res.answers = append(res.answers, tr.Estimate())
			}
		}
		res.answers = append(res.answers, tr.Estimate())
		res.metrics, res.faults = tr.Metrics(), tr.FaultStats()
		return res
	}
	for _, transport := range []Transport{TransportGoroutine, TransportTCP} {
		transport := transport
		t.Run(transport.String(), func(t *testing.T) {
			t.Parallel()
			opt := Options{K: chaosK, Epsilon: chaosEps, Seed: chaosSeed,
				Robust: true, Transport: transport}
			clean := run(opt)
			opt.FaultPlan = plan
			faulted := run(opt)

			for i := range clean.answers {
				if clean.answers[i] != faulted.answers[i] {
					t.Errorf("answer %d: fault-free %v, under masked faults %v",
						i, clean.answers[i], faulted.answers[i])
				}
			}
			if clean.metrics.Arrivals != faulted.metrics.Arrivals {
				t.Errorf("arrivals: fault-free %d, faulted %d",
					clean.metrics.Arrivals, faulted.metrics.Arrivals)
			}
			f := faulted.faults
			if f.Dropped == 0 || f.Duplicated == 0 || f.Reordered == 0 {
				t.Fatalf("fault schedule fired nothing: %+v", f)
			}
			if faulted.metrics.Messages <= clean.metrics.Messages {
				t.Errorf("recovery traffic not charged: messages %d vs %d",
					faulted.metrics.Messages, clean.metrics.Messages)
			}
		})
	}
}

// TestChaosRobustAttackKillRejoin runs the adaptive adversary against the
// robust tracker while a site is killed and later rejoins: the attack and
// the partition compound, and after the heal the trapped traffic drains and
// the final released answer must still land within ε of the true count.
func TestChaosRobustAttackKillRejoin(t *testing.T) {
	for _, strategy := range []AttackStrategy{AttackBoundaryCamp, AttackThresholdLearn} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			t.Parallel()
			opt := Options{K: chaosK, Epsilon: chaosEps, Seed: chaosSeed,
				Robust: true, Transport: TransportGoroutine,
				FaultPlan: &FaultPlan{Seed: 5,
					Kills: []SiteKill{{Site: 2, At: chaosN / 4, RejoinAt: chaosN / 2}}}}
			out := RunAttack(opt, strategy, chaosN, 77)
			if out.Errs[1] > 1 {
				t.Errorf("final error %.3f·ε·n after heal, want within ε despite attack + kill/rejoin",
					out.Errs[1])
			}
			if out.Checks == 0 {
				t.Fatal("attack run made no checkpoints")
			}
		})
	}
}

// TestChaosKillRejoin pins the facade-level partition lifecycle: a killed
// site drops out of Metrics.LiveSites and its traffic is trapped; after
// the scheduled rejoin the queries recover the ε guarantee over the full
// stream.
func TestChaosKillRejoin(t *testing.T) {
	opt := Options{K: chaosK, Epsilon: chaosEps, Seed: chaosSeed, Transport: TransportGoroutine,
		FaultPlan: &FaultPlan{Seed: 5, Kills: []SiteKill{{Site: 2, At: chaosN / 4, RejoinAt: chaosN / 2}}}}
	tr := NewCountTracker(opt)
	defer tr.Close()
	for i := 0; i < chaosN; i++ {
		tr.Observe(i % chaosK)
		if i == chaosN/3 {
			m := tr.Metrics()
			if m.LiveSites != chaosK-1 {
				t.Errorf("LiveSites during the kill window = %d, want %d", m.LiveSites, chaosK-1)
			}
			// The query must answer (degraded partial coverage), not hang.
			if est := tr.Estimate(); est <= 0 {
				t.Errorf("estimate during partition = %g, want > 0 (live sites still covered)", est)
			}
		}
	}
	m := tr.Metrics()
	if m.LiveSites != chaosK {
		t.Errorf("LiveSites after rejoin = %d, want %d", m.LiveSites, chaosK)
	}
	if tr.FaultStats().Partitioned == 0 {
		t.Error("no traffic was trapped behind the partition")
	}
	if err := math.Abs(tr.Estimate()-chaosN) / chaosN; err > chaosEps {
		t.Errorf("estimate after recovery = %.0f (rel err %.3f), want within ε = %g of %d",
			tr.Estimate(), err, chaosEps, chaosN)
	}
}

// TestChaosDelaySoak pins liveness and graceful degradation under
// cross-arrival delays on every tracker: mid-run queries settle the
// deliverable backlog instead of wedging, and the final answers — after
// everything has drained — recover the ε guarantee.
func TestChaosDelaySoak(t *testing.T) {
	plan := &FaultPlan{Seed: 7, Delay: 0.3, DelayArrivals: 32, Drop: 0.02, Duplicate: 0.02}
	t.Run("count", func(t *testing.T) {
		t.Parallel()
		tr := NewCountTracker(Options{K: chaosK, Epsilon: chaosEps, Seed: chaosSeed,
			Transport: TransportGoroutine, FaultPlan: plan})
		defer tr.Close()
		for i := 0; i < chaosN; i++ {
			tr.Observe(i % chaosK)
			if (i+1)%500 == 0 {
				tr.Estimate() // must settle and answer, never hang
			}
		}
		if err := math.Abs(tr.Estimate()-chaosN) / chaosN; err > chaosEps {
			t.Errorf("final estimate %.0f (rel err %.3f), want within ε after the backlog drains", tr.Estimate(), err)
		}
		if tr.FaultStats().Delayed == 0 {
			t.Error("nothing was delayed")
		}
	})
	t.Run("rank", func(t *testing.T) {
		t.Parallel()
		values := workload.PermValues(chaosN, stats.New(chaosSeed^0xbeef))
		var below float64
		tr := NewRankTracker(Options{K: chaosK, Epsilon: chaosEps, Seed: chaosSeed,
			Transport: TransportTCP, FaultPlan: plan})
		defer tr.Close()
		for i := 0; i < chaosN; i++ {
			v := values(i)
			if v < chaosN/2 {
				below++
			}
			tr.Observe(i%chaosK, v)
			if (i+1)%500 == 0 {
				tr.Rank(chaosN / 2)
			}
		}
		if err := math.Abs(tr.Rank(chaosN/2)-below) / chaosN; err > chaosEps {
			t.Errorf("final rank error %.3f·n, want within ε after the backlog drains", err)
		}
	})
}

// TestQueryAfterCloseWithHeldFrames is the regression test for a deadlock
// the code review caught: Close with frames still parked in the fault
// layer (a long delay, a never-healed partition) must leave queries
// usable — "queries remain valid after Close" — not re-inject the held
// frames into closed mailboxes nobody reads and hang the settle forever.
func TestQueryAfterCloseWithHeldFrames(t *testing.T) {
	tr := NewCountTracker(Options{K: 2, Epsilon: 0.1, Seed: 3, Transport: TransportGoroutine,
		FaultPlan: &FaultPlan{Seed: 1, Delay: 0.9, DelayArrivals: 1 << 40, MaxHeld: 1 << 20}})
	for i := 0; i < 200; i++ {
		tr.Observe(i % 2)
	}
	tr.Close()
	done := make(chan float64, 1)
	go func() { done <- tr.Estimate() }()
	select {
	case <-done: // the held residue stays held; the query reads state as of Close
	case <-time.After(5 * time.Second):
		t.Fatal("Estimate after Close hung on fault-layer residue")
	}
	tr.Metrics() // same path through Quiesce
}

// TestFaultPlanValidation pins the facade's rejection of meaningless
// plans: the sequential transport has no message layer to perturb, and
// malformed windows must fail loudly at construction.
func TestFaultPlanValidation(t *testing.T) {
	mustPanic := func(name string, opt Options) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewCountTracker accepted an invalid fault plan", name)
			}
		}()
		NewCountTracker(opt)
	}
	mustPanic("sequential transport", Options{K: 2, Epsilon: 0.1, FaultPlan: &FaultPlan{Drop: 0.1}})
	mustPanic("drop=1", Options{K: 2, Epsilon: 0.1, Transport: TransportGoroutine,
		FaultPlan: &FaultPlan{Drop: 1}})
	mustPanic("kill site out of range", Options{K: 2, Epsilon: 0.1, Transport: TransportGoroutine,
		FaultPlan: &FaultPlan{Kills: []SiteKill{{Site: 5, At: 10}}}})
	mustPanic("inverted kill window", Options{K: 2, Epsilon: 0.1, Transport: TransportGoroutine,
		FaultPlan: &FaultPlan{Kills: []SiteKill{{Site: 0, At: 10, RejoinAt: 5}}}})
}
