package disttrack

import (
	"disttrack/internal/boost"
	"disttrack/internal/freq"
	"disttrack/internal/proto"
	"disttrack/internal/sample"
	"disttrack/internal/stats"
)

// FrequencyTracker continuously tracks per-item frequencies with absolute
// error ±ε·n(t) — the heavy-hitters tracking problem (Section 3).
//
// Without Options.ConcurrentIngest, one goroutine at a time may use the
// tracker; with it, Observe/ObserveBatch and the query methods are safe
// from any number of goroutines. The embedded core provides Flush,
// Metrics, and Close.
type FrequencyTracker struct {
	opt Options
	k   int // == opt.K, hot-path copy on the same cache line as eng/fe
	core
	est func(item int64) float64
}

// NewFrequencyTracker builds a frequency tracker. It panics on invalid
// options.
func NewFrequencyTracker(opt Options) *FrequencyTracker {
	opt.validate()
	if opt.Robust {
		panic("disttrack: Options.Robust is only supported by CountTracker (robust frequency tracking is not implemented)")
	}
	t := &FrequencyTracker{opt: opt, k: opt.K}
	switch opt.Algorithm {
	case AlgorithmRandomized:
		cfg := freq.Config{K: opt.K, Eps: opt.Epsilon, Rescale: opt.Rescale}
		if opt.Copies > 1 {
			root := stats.New(opt.Seed)
			ps := make([]proto.Protocol, opt.Copies)
			coords := make([]*freq.Coordinator, opt.Copies)
			for i := range ps {
				ps[i], coords[i] = freq.NewProtocol(cfg, root.Uint64())
			}
			t.mountCore(opt, boost.Wrap(ps))
			t.est = func(item int64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Estimate(item)
				}
				return stats.Median(ests)
			}
			t.fe = frontend(opt, t.eng)
			return t
		}
		if opt.Topology == TopologyTree {
			tp, coord := freq.NewTreeProtocol(cfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.est = coord.Estimate
		} else {
			p, coord := freq.NewProtocol(cfg, opt.Seed)
			t.mountCore(opt, p)
			t.est = coord.Estimate
		}
	case AlgorithmDeterministic:
		if opt.Topology == TopologyTree {
			panic("disttrack: TopologyTree is incompatible with AlgorithmDeterministic frequency tracking (its SpaceSaving summaries have no merge path for re-aggregation); use AlgorithmRandomized, AlgorithmSampling, or TopologyFlat")
		}
		p, coord := freq.NewDetProtocol(opt.K, opt.Epsilon)
		t.mountCore(opt, p)
		t.est = coord.Estimate
	case AlgorithmSampling:
		scfg := sample.Config{K: opt.K, Eps: opt.Epsilon}
		if opt.Topology == TopologyTree {
			tp, coord := sample.NewTreeProtocol(scfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.est = coord.Freq
		} else {
			p, coord := sample.NewProtocol(scfg, opt.Seed)
			t.mountCore(opt, p)
			t.est = coord.Freq
		}
	default:
		panic("disttrack: unknown Algorithm")
	}
	t.fe = frontend(opt, t.eng)
	return t
}

// Observe records item arriving at the given site.
func (t *FrequencyTracker) Observe(site int, item int64) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if t.fe == nil {
		t.eng.Arrive(site, item, 0)
		return
	}
	t.fe.Observe(site, item, 0)
}

// ObserveBatch records count consecutive arrivals of item at the given
// site — a hot flow at one gateway. It is equivalent to count Observe
// calls — same estimates, same Metrics — but runs in time proportional to
// the messages the batch triggers, not its length.
func (t *FrequencyTracker) ObserveBatch(site int, item int64, count int) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if count < 0 {
		panic("disttrack: negative batch count")
	}
	if t.fe == nil {
		t.eng.ArriveBatch(site, item, 0, int64(count))
		return
	}
	t.fe.ObserveBatch(site, item, 0, int64(count))
}

// Estimate returns the current frequency estimate for item. Randomized
// estimates are unbiased and may be slightly negative for rare items; clamp
// at zero if presenting to users. With ConcurrentIngest it reads a
// quiescent snapshot: everything ingested up to some recent cascade
// boundary (call Flush first for an everything-observed-so-far barrier).
func (t *FrequencyTracker) Estimate(item int64) float64 {
	var v float64
	t.query(func() { v = t.est(item) })
	return v
}

// CrashRestartCoordinator simulates a coordinator crash and durable
// restart; see CountTracker.CrashRestartCoordinator. Requires
// Options.Persist; incompatible with ConcurrentIngest and FaultPlan.
func (t *FrequencyTracker) CrashRestartCoordinator() error {
	var est func(item int64) float64
	var fresh proto.Coordinator
	switch t.opt.Algorithm {
	case AlgorithmRandomized:
		cfg := freq.Config{K: t.opt.K, Eps: t.opt.Epsilon, Rescale: t.opt.Rescale}
		if t.opt.Copies > 1 {
			coords := make([]*freq.Coordinator, t.opt.Copies)
			inner := make([]proto.Coordinator, t.opt.Copies)
			for i := range coords {
				coords[i] = freq.NewCoordinator(cfg)
				inner[i] = coords[i]
			}
			fresh = boost.WrapCoordinators(inner)
			est = func(item int64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Estimate(item)
				}
				return stats.Median(ests)
			}
		} else {
			coord := freq.NewCoordinator(cfg)
			fresh, est = coord, coord.Estimate
		}
	case AlgorithmDeterministic:
		coord := freq.NewDetCoordinator(t.opt.K)
		fresh, est = coord, coord.Estimate
	case AlgorithmSampling:
		coord := sample.NewCoordinator(sample.Config{K: t.opt.K, Eps: t.opt.Epsilon})
		fresh, est = coord, coord.Freq
	default:
		panic("disttrack: unknown Algorithm")
	}
	if _, err := t.crashRestartCoordinator(func() proto.Coordinator { return fresh }); err != nil {
		return err
	}
	t.est = est
	return nil
}
