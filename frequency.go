package disttrack

import (
	"disttrack/internal/boost"
	"disttrack/internal/freq"
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/sample"
	"disttrack/internal/stats"
)

// FrequencyTracker continuously tracks per-item frequencies with absolute
// error ±ε·n(t) — the heavy-hitters tracking problem (Section 3).
type FrequencyTracker struct {
	opt Options
	eng *runtime.Runtime
	est func(item int64) float64
}

// NewFrequencyTracker builds a frequency tracker. It panics on invalid
// options.
func NewFrequencyTracker(opt Options) *FrequencyTracker {
	opt.validate()
	t := &FrequencyTracker{opt: opt}
	switch opt.Algorithm {
	case AlgorithmRandomized:
		cfg := freq.Config{K: opt.K, Eps: opt.Epsilon, Rescale: opt.Rescale}
		if opt.Copies > 1 {
			root := stats.New(opt.Seed)
			ps := make([]proto.Protocol, opt.Copies)
			coords := make([]*freq.Coordinator, opt.Copies)
			for i := range ps {
				ps[i], coords[i] = freq.NewProtocol(cfg, root.Uint64())
			}
			t.eng = mount(opt, boost.Wrap(ps))
			t.est = func(item int64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Estimate(item)
				}
				return stats.Median(ests)
			}
			return t
		}
		p, coord := freq.NewProtocol(cfg, opt.Seed)
		t.eng = mount(opt, p)
		t.est = coord.Estimate
	case AlgorithmDeterministic:
		p, coord := freq.NewDetProtocol(opt.K, opt.Epsilon)
		t.eng = mount(opt, p)
		t.est = coord.Estimate
	case AlgorithmSampling:
		p, coord := sample.NewProtocol(sample.Config{K: opt.K, Eps: opt.Epsilon}, opt.Seed)
		t.eng = mount(opt, p)
		t.est = coord.Freq
	default:
		panic("disttrack: unknown Algorithm")
	}
	return t
}

// Observe records item arriving at the given site.
func (t *FrequencyTracker) Observe(site int, item int64) {
	if site < 0 || site >= t.opt.K {
		panic("disttrack: site out of range")
	}
	t.eng.Arrive(site, item, 0)
}

// ObserveBatch records count consecutive arrivals of item at the given
// site — a hot flow at one gateway. It is equivalent to count Observe
// calls — same estimates, same Metrics — but runs in time proportional to
// the messages the batch triggers, not its length.
func (t *FrequencyTracker) ObserveBatch(site int, item int64, count int) {
	if site < 0 || site >= t.opt.K {
		panic("disttrack: site out of range")
	}
	if count < 0 {
		panic("disttrack: negative batch count")
	}
	t.eng.ArriveBatch(site, item, 0, int64(count))
}

// Estimate returns the current frequency estimate for item. Randomized
// estimates are unbiased and may be slightly negative for rare items; clamp
// at zero if presenting to users.
func (t *FrequencyTracker) Estimate(item int64) float64 { return t.est(item) }

// Metrics returns the accumulated communication and space costs.
func (t *FrequencyTracker) Metrics() Metrics { return metricsFrom(t.eng.Metrics()) }

// Close stops the concurrent runtime's goroutines (no-op otherwise).
func (t *FrequencyTracker) Close() { t.eng.Close() }
