package disttrack

// Tests for the concurrent multi-producer ingestion frontend
// (Options.ConcurrentIngest): the equivalence property — a concurrent run
// over a fixed workload keeps the serial run's ε guarantees and
// per-element communication profile — plus backpressure accounting and the
// quiesced-query contract. CI runs this file under -race.

import (
	"math"
	"sync"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

const (
	ingestK         = 16
	ingestEps       = 0.1
	ingestN         = 40000
	ingestProducers = 8
)

// feedStriped spawns producers goroutines; producer p feeds the elements
// with index ≡ p (mod producers), preserving each site's arrival subsequence
// (placement(i) = i mod k, so every producer owns whole sites).
func feedStriped(producers, n int, observe func(i int)) {
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < n; i += producers {
				observe(i)
			}
		}(p)
	}
	wg.Wait()
}

// costProfile returns messages per arrival, the per-element communication
// cost the paper's protocols promise independent of who feeds them.
func costProfile(t *testing.T, m Metrics) float64 {
	t.Helper()
	if m.Arrivals == 0 {
		t.Fatal("no arrivals recorded")
	}
	return float64(m.Messages) / float64(m.Arrivals)
}

// sameProfile asserts the concurrent run's per-element message cost is
// within a small constant factor of the serial run's: the interleaving
// across sites differs, but the protocol's communication scaling must not.
func sameProfile(t *testing.T, label string, serial, concurrent float64) {
	t.Helper()
	if concurrent > 3*serial || serial > 3*concurrent {
		t.Errorf("%s: messages/arrival diverged: serial %.4f vs concurrent %.4f",
			label, serial, concurrent)
	}
}

// TestConcurrentIngestCountEquivalence is the tentpole property test for
// the count tracker: 8 producers over a fixed workload produce an estimate
// inside the ε band with the serial run's communication profile, with
// nothing lost. Runs under -race in CI.
func TestConcurrentIngestCountEquivalence(t *testing.T) {
	serial := NewCountTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 5})
	for i := 0; i < ingestN; i++ {
		serial.Observe(i % ingestK)
	}
	sm := serial.Metrics()
	if stats.RelErr(serial.Estimate(), ingestN) > ingestEps {
		t.Fatalf("serial estimate %.0f outside the ε band", serial.Estimate())
	}
	serial.Close()

	conc := NewCountTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 5, ConcurrentIngest: true})
	defer conc.Close()
	feedStriped(ingestProducers, ingestN, func(i int) { conc.Observe(i % ingestK) })
	conc.Flush()
	cm := conc.Metrics()
	if cm.Arrivals != ingestN {
		t.Errorf("concurrent run ingested %d of %d arrivals", cm.Arrivals, ingestN)
	}
	if cm.Dropped != 0 {
		t.Errorf("Block policy dropped %d elements", cm.Dropped)
	}
	if got := conc.Estimate(); stats.RelErr(got, ingestN) > ingestEps {
		t.Errorf("concurrent estimate %.0f outside the ε band around %d", got, ingestN)
	}
	sameProfile(t, "count", costProfile(t, sm), costProfile(t, cm))
}

// TestConcurrentIngestFreqEquivalence pins the same property for the
// frequency tracker, including the hot-item coalescing path.
func TestConcurrentIngestFreqEquivalence(t *testing.T) {
	// ZipfItems draws statefully; materialize the stream once so producers
	// can read it concurrently and both runs see the same workload.
	zipf := workload.ZipfItems(200, 1.1, stats.New(21))
	items := make([]int64, ingestN)
	truth := map[int64]int64{}
	for i := range items {
		items[i] = zipf(i)
		truth[items[i]]++
	}

	run := func(concurrent bool) (*FrequencyTracker, Metrics) {
		tr := NewFrequencyTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 6,
			ConcurrentIngest: concurrent})
		if concurrent {
			feedStriped(ingestProducers, ingestN, func(i int) { tr.Observe(i%ingestK, items[i]) })
			tr.Flush()
		} else {
			for i := 0; i < ingestN; i++ {
				tr.Observe(i%ingestK, items[i])
			}
		}
		return tr, tr.Metrics()
	}
	serial, sm := run(false)
	defer serial.Close()
	conc, cm := run(true)
	defer conc.Close()

	if cm.Arrivals != ingestN || cm.Dropped != 0 {
		t.Errorf("concurrent run: arrivals %d dropped %d, want %d and 0", cm.Arrivals, cm.Dropped, ingestN)
	}
	for _, q := range []int64{0, 1, 5, 50} {
		want := float64(truth[q])
		if got := conc.Estimate(q); math.Abs(got-want) > ingestEps*ingestN {
			t.Errorf("item %d: concurrent estimate %.0f, truth %.0f (band ±%.0f)",
				q, got, want, ingestEps*ingestN)
		}
	}
	sameProfile(t, "freq", costProfile(t, sm), costProfile(t, cm))
}

// TestConcurrentIngestRankEquivalence pins the property for the rank
// tracker: concurrent ingestion keeps rank and quantile queries inside the
// ε band with the serial communication profile.
func TestConcurrentIngestRankEquivalence(t *testing.T) {
	const n = ingestN / 2
	values := workload.PermValues(n, stats.New(31))
	mid := float64(n) / 2
	var below float64
	for i := 0; i < n; i++ {
		if values(i) < mid {
			below++
		}
	}

	run := func(concurrent bool) (*RankTracker, Metrics) {
		tr := NewRankTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 7,
			ConcurrentIngest: concurrent})
		if concurrent {
			feedStriped(ingestProducers, n, func(i int) { tr.Observe(i%ingestK, values(i)) })
			tr.Flush()
		} else {
			for i := 0; i < n; i++ {
				tr.Observe(i%ingestK, values(i))
			}
		}
		return tr, tr.Metrics()
	}
	serial, sm := run(false)
	defer serial.Close()
	conc, cm := run(true)
	defer conc.Close()

	if cm.Arrivals != n || cm.Dropped != 0 {
		t.Errorf("concurrent run: arrivals %d dropped %d, want %d and 0", cm.Arrivals, cm.Dropped, n)
	}
	if got := conc.Rank(mid); math.Abs(got-below) > 2*ingestEps*float64(n) {
		t.Errorf("concurrent Rank(mid) = %.0f, truth %.0f (band ±%.0f)", got, below, 2*ingestEps*float64(n))
	}
	if q := conc.Quantile(0.5, 0, float64(n)); math.Abs(q-mid) > 2*ingestEps*float64(n) {
		t.Errorf("concurrent median %.0f too far from %.0f", q, mid)
	}
	sameProfile(t, "rank", costProfile(t, sm), costProfile(t, cm))
}

// TestConcurrentIngestAllTransports runs the concurrent frontend over every
// transport: the frontend sits above the runtime seam, so each fabric keeps
// its single-feeder contract while the public API accepts many producers.
func TestConcurrentIngestAllTransports(t *testing.T) {
	const n = 6000
	for _, tr := range []Transport{TransportSequential, TransportGoroutine, TransportTCP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			ct := NewCountTracker(Options{K: 4, Epsilon: ingestEps, Seed: 8,
				Transport: tr, ConcurrentIngest: true})
			defer ct.Close()
			// Query while producers stream: on the concurrent fabrics this
			// exercises the quiesced-snapshot read of protocol state that
			// lives on other goroutines (race detector coverage).
			queried := make(chan struct{})
			go func() {
				defer close(queried)
				for q := 0; q < 25; q++ {
					if est := ct.Estimate(); est < 0 || est > 1.5*float64(n) {
						t.Errorf("mid-load estimate %.0f implausible", est)
					}
				}
			}()
			feedStriped(4, n, func(i int) { ct.Observe(i % 4) })
			<-queried
			ct.Flush()
			if m := ct.Metrics(); m.Arrivals != n {
				t.Errorf("arrivals = %d, want %d", m.Arrivals, n)
			}
			if got := ct.Estimate(); stats.RelErr(got, n) > ingestEps {
				t.Errorf("estimate %.0f outside the ε band around %d", got, n)
			}
		})
	}
}

// TestConcurrentIngestQueriesDuringLoad hammers queries while producers are
// streaming: every answer must come from a quiescent snapshot, so estimates
// stay inside the ε band of SOME prefix of the stream (between what had
// quiesced and what was staged), and -race must stay silent.
func TestConcurrentIngestQueriesDuringLoad(t *testing.T) {
	const n = 20000
	tr := NewCountTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 9, ConcurrentIngest: true})
	defer tr.Close()
	var wg sync.WaitGroup
	for p := 0; p < ingestProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < n; i += ingestProducers {
				tr.Observe(i % ingestK)
			}
		}(p)
	}
	for q := 0; q < 100; q++ {
		est := tr.Estimate()
		// The per-instant guarantee allows ~10% of instants outside ±ε, so
		// only a grossly impossible answer (negative, or far beyond the
		// whole stream) indicates a torn snapshot.
		if est < 0 || est > 1.5*float64(n) {
			t.Errorf("mid-load estimate %.0f outside any plausible prefix of %d", est, n)
		}
		_ = tr.Metrics()
	}
	wg.Wait()
	tr.Flush()
	if got := tr.Estimate(); stats.RelErr(got, n) > ingestEps {
		t.Errorf("final estimate %.0f outside the ε band around %d", got, n)
	}
}

// TestConcurrentMetricsDuringIngest is the regression test for the
// query-path race fixed in the serving PR: Metrics() readers run flat out
// against live producers on a persisting tracker, so the Snapshots counter
// (previously a plain int64 in the WAL logger, torn under -race) and the
// message/word counters are read while the owning loop is mid-snapshot.
// Monotonicity of Arrivals and Snapshots across reads pins that every read
// sees a coherent quiescent instant, and -race must stay silent.
func TestConcurrentMetricsDuringIngest(t *testing.T) {
	const n = 20000
	tr := NewCountTracker(Options{K: ingestK, Epsilon: ingestEps, Seed: 12,
		ConcurrentIngest: true, Persist: NewMemStore(), SnapshotEvery: 3})
	defer tr.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastArrivals, lastSnapshots int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := tr.Metrics()
				if m.Arrivals < lastArrivals {
					t.Errorf("Arrivals went backwards: %d then %d", lastArrivals, m.Arrivals)
				}
				if m.Snapshots < lastSnapshots {
					t.Errorf("Snapshots went backwards: %d then %d", lastSnapshots, m.Snapshots)
				}
				lastArrivals, lastSnapshots = m.Arrivals, m.Snapshots
				if est := tr.Estimate(); est < 0 || est > 1.5*n {
					t.Errorf("mid-load estimate %.0f implausible", est)
				}
			}
		}()
	}
	feedStriped(ingestProducers, n, func(i int) { tr.Observe(i % ingestK) })
	close(stop)
	readers.Wait()

	tr.Flush()
	m := tr.Metrics()
	if m.Arrivals != n {
		t.Errorf("arrivals = %d, want %d", m.Arrivals, n)
	}
	if m.Snapshots == 0 {
		t.Error("persisting tracker recorded no snapshots")
	}
	if got := tr.Estimate(); stats.RelErr(got, n) > ingestEps {
		t.Errorf("final estimate %.0f outside the ε band around %d", got, n)
	}
}

// TestConcurrentIngestDropPolicy pins the IngestDrop accounting at the
// facade: with the drainer provably stalled (a query holds the feed mutex
// open for the duration of the observes), a tiny buffer must shed load, and
// Arrivals + Dropped equals exactly what was offered.
func TestConcurrentIngestDropPolicy(t *testing.T) {
	const offered = 500
	tr := NewFrequencyTracker(Options{K: 2, Epsilon: ingestEps, Seed: 10,
		ConcurrentIngest: true, IngestBuffer: 4, IngestPolicy: IngestDrop})
	defer tr.Close()
	held := make(chan struct{})
	release := make(chan struct{})
	queryDone := make(chan struct{})
	go func() {
		defer close(queryDone)
		tr.fe.Query(func() {
			close(held)
			<-release
		})
	}()
	<-held
	// Distinct items defeat coalescing; the staging buffer holds 4 runs and
	// the stalled drainer at most one taken sweep, so drops are certain.
	for i := 0; i < offered; i++ {
		tr.Observe(0, int64(i))
	}
	close(release)
	<-queryDone
	tr.Flush()
	m := tr.Metrics()
	if m.Dropped == 0 {
		t.Error("no drops despite a full buffer and a stalled drainer")
	}
	if m.Arrivals+m.Dropped != offered {
		t.Errorf("arrivals %d + dropped %d = %d, want %d",
			m.Arrivals, m.Dropped, m.Arrivals+m.Dropped, offered)
	}
}

// TestEmptyTrackerQueries pins query behavior before the first observation
// for all three trackers × three algorithms: counts, frequencies, and ranks
// are 0, and Quantile — which has no value of any rank to return — is NaN.
func TestEmptyTrackerQueries(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		opt := Options{K: 4, Epsilon: 0.1, Algorithm: alg, Seed: 1}
		ct := NewCountTracker(opt)
		if got := ct.Estimate(); got != 0 {
			t.Errorf("%v: empty count estimate = %v, want 0", alg, got)
		}
		ct.Close()
		ft := NewFrequencyTracker(opt)
		if got := ft.Estimate(42); got != 0 {
			t.Errorf("%v: empty frequency estimate = %v, want 0", alg, got)
		}
		ft.Close()
		rt := NewRankTracker(opt)
		if got := rt.Rank(123); got != 0 {
			t.Errorf("%v: empty rank = %v, want 0", alg, got)
		}
		if got := rt.Quantile(0.5, 0, 1000); !math.IsNaN(got) {
			t.Errorf("%v: empty Quantile = %v, want NaN", alg, got)
		}
		rt.Close()
	}
	// Boosted randomized trackers go through the facade's bisect; pin the
	// NaN contract there too.
	rt := NewRankTracker(Options{K: 4, Epsilon: 0.1, Seed: 1, Copies: 3})
	if got := rt.Quantile(0.25, 0, 1000); !math.IsNaN(got) {
		t.Errorf("boosted: empty Quantile = %v, want NaN", got)
	}
	rt.Close()
}
