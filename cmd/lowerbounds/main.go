// lowerbounds reproduces the experimental content of the paper's lower
// bounds:
//
//   - Figure 1 / Claim A.1 (Appendix A): the success probability of the
//     optimal distinguisher for the 1-bit problem as a function of the
//     number of probed sites z — Monte Carlo against the two-Gaussian
//     analytic curve. z = o(k) keeps success near 1/2, which forces Ω(k)
//     communication per subround and hence Theorem 2.4's Ω(√k/ε·logN).
//
//   - Theorem 2.2: one-way algorithms under the hard distribution µ.
//
//   - Theorem 2.4: the randomized tracker on the subround adversary.
//
//     go run ./cmd/lowerbounds [-k 1024] [-trials 20000]
package main

import (
	"flag"
	"fmt"

	"disttrack/internal/experiments"
	"disttrack/internal/lowerbound"
	"disttrack/internal/stats"
	"disttrack/internal/trace"
)

func main() {
	k := flag.Int("k", 1024, "sites for the 1-bit experiment")
	trials := flag.Int("trials", 20000, "Monte-Carlo trials per point")
	flag.Parse()

	fmt.Printf("== Figure 1 / Claim A.1: distinguishing s = k/2 ± √k with z probes (k=%d) ==\n\n", *k)
	rng := stats.New(20260610)
	tb := trace.NewTable("z", "z/k", "success (Monte Carlo)", "success (analytic)")
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0} {
		z := int(frac * float64(*k))
		if z < 1 {
			z = 1
		}
		mc := lowerbound.SuccessProbability(*k, z, *trials, rng)
		an := 1 - lowerbound.AnalyticFailure(*k, z)
		tb.AddRow(fmt.Sprintf("%d", z), fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%.3f", mc), fmt.Sprintf("%.3f", an))
	}
	fmt.Print(tb.String())
	fmt.Println("\nreading: success stays ≈0.5 + Θ(√(z/k)) — the coordinator must probe")
	fmt.Println("Ω(k) sites per subround, giving Theorem 2.4's Ω(√k/ε·logN) messages.")

	fmt.Println("\n== Theorem 2.2: hard distribution µ (k=64, ε=0.01, N=200000) ==")
	mu := experiments.RunMu(64, 0.01, 200000, 8)
	fmt.Printf("\n%d draws (%d single-site, %d round-robin)\n",
		mu.Draws, mu.SingleBranches, mu.Draws-mu.SingleBranches)
	fmt.Printf("expected messages:         one-way det %.0f   two-way rand %.0f\n",
		mu.AvgDetMsgs, mu.AvgRandMsgs)
	fmt.Printf("round-robin branch only:   one-way det %.0f   two-way rand %.0f  (%.1fx)\n",
		mu.RobinDetMsgs, mu.RobinRandMsgs, mu.RobinDetMsgs/mu.RobinRandMsgs)
	fmt.Printf("analytic one-way floor:    %.0f messages (k/2 per (1+ε)-round)\n",
		lowerbound.OneWayForcedMessages(64, 0.01, 200000))

	fmt.Println("\n== Theorem 2.4: subround adversary vs the randomized tracker ==")
	hb := trace.NewTable("k", "events", "subrounds", "messages", "msgs/(subround·k)", "bad subrounds")
	for _, kk := range []int{16, 64, 256} {
		r := lowerbound.RunHardInstance(kk, 0.1, 80000, 11)
		hb.AddRow(fmt.Sprintf("%d", kk), fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.Subrounds), fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.2f", float64(r.Messages)/float64(r.Subrounds*kk)),
			fmt.Sprintf("%d/%d", r.BadSubrounds, r.Subrounds))
	}
	fmt.Println()
	fmt.Print(hb.String())
	fmt.Println("\nreading: the tracker stays correct at the adversary's decision points")
	fmt.Println("while paying Θ(k) messages per subround, matching the lower bound's")
	fmt.Println("accounting (the bound says no correct algorithm can do better).")
}
