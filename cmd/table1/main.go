// table1 regenerates the paper's Table 1 empirically: for every
// (problem, algorithm) row it measures total communication (messages and
// words) and per-site space on a common workload, prints them next to the
// paper's asymptotic formulas, and then sweeps k to exhibit the scaling
// shapes (√k for the new randomized algorithms vs k for the deterministic
// baselines, and the sampling baseline's k-independence).
//
//	go run ./cmd/table1 [-n 200000] [-eps 0.05] [-k 64] [-csv]
package main

import (
	"flag"
	"fmt"
	"math"

	"disttrack/internal/experiments"
	"disttrack/internal/trace"
)

func main() {
	n := flag.Int("n", 200000, "stream length N")
	eps := flag.Float64("eps", 0.05, "error parameter ε")
	k := flag.Int("k", 64, "number of sites for the headline table")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	fmt.Printf("== Table 1 (measured), k=%d, ε=%g, N=%d ==\n\n", *k, *eps, *n)
	headline := trace.NewTable("problem", "algorithm", "space/site (words)",
		"messages", "words", "bad checks", "paper words-bound")
	rows := []experiments.RowConfig{
		{Problem: experiments.Count, Alg: experiments.Deterministic},
		{Problem: experiments.Count, Alg: experiments.Randomized},
		{Problem: experiments.Freq, Alg: experiments.Deterministic},
		{Problem: experiments.Freq, Alg: experiments.Randomized},
		{Problem: experiments.Rank, Alg: experiments.Deterministic},
		{Problem: experiments.Rank, Alg: experiments.Randomized},
		{Problem: experiments.Count, Alg: experiments.Sampling},
	}
	for _, rc := range rows {
		rc.K, rc.Eps, rc.N, rc.Seed, rc.Rescale = *k, *eps, *n, 1, 1
		res := experiments.Run(rc)
		bound := boundName(rc)
		headline.AddRow(string(rc.Problem), string(rc.Alg),
			fmt.Sprintf("%d", res.SiteSpace),
			fmt.Sprintf("%d", res.Messages),
			fmt.Sprintf("%d", res.Words),
			fmt.Sprintf("%d/%d", res.Bad, res.Checks),
			bound)
	}
	emit(headline, *csv)

	fmt.Printf("\n== scaling in k (words; ε=%g, N=%d) ==\n\n", *eps, *n)
	ks := []int{4, 16, 64, 256}
	sweep := trace.NewTable("k", "count det", "count rand", "freq det", "freq rand",
		"rank det", "rank rand", "sampling")
	type cell struct {
		p experiments.Problem
		a experiments.Alg
	}
	cells := []cell{
		{experiments.Count, experiments.Deterministic},
		{experiments.Count, experiments.Randomized},
		{experiments.Freq, experiments.Deterministic},
		{experiments.Freq, experiments.Randomized},
		{experiments.Rank, experiments.Deterministic},
		{experiments.Rank, experiments.Randomized},
		{experiments.Count, experiments.Sampling},
	}
	words := map[cell][]float64{}
	for _, kk := range ks {
		row := []string{fmt.Sprintf("%d", kk)}
		for _, c := range cells {
			rc := experiments.RowConfig{Problem: c.p, Alg: c.a, K: kk, Eps: *eps,
				N: *n, Seed: 1, Rescale: 1}
			res := experiments.Run(rc)
			words[c] = append(words[c], float64(res.Words))
			row = append(row, fmt.Sprintf("%d", res.Words))
		}
		sweep.AddRow(row...)
	}
	emit(sweep, *csv)

	fmt.Println("\nfitted growth exponents over the k sweep (words ~ k^α):")
	for i, c := range cells {
		w := words[c]
		alpha := math.Log(w[len(w)-1]/w[0]) / math.Log(float64(ks[len(ks)-1])/float64(ks[0]))
		expect := expectAlpha(cells[i])
		fmt.Printf("  %-18s α = %+.2f   (paper: %s)\n",
			fmt.Sprintf("%s/%s", c.p, c.a), alpha, expect)
	}
}

func boundName(rc experiments.RowConfig) string {
	switch {
	case rc.Alg == experiments.Sampling:
		return "O(1/ε²·logN)"
	case rc.Problem == experiments.Rank && rc.Alg == experiments.Deterministic:
		return "O(k/ε²·logN) [6]"
	case rc.Problem == experiments.Rank:
		return "O(√k/ε·logN·log^1.5)"
	case rc.Alg == experiments.Deterministic:
		return "Θ(k/ε·logN)"
	default:
		return "Θ(√k/ε·logN)"
	}
}

func expectAlpha(c struct {
	p experiments.Problem
	a experiments.Alg
}) string {
	switch {
	case c.a == experiments.Sampling:
		return "α ≈ 0 (+k·logN additive)"
	case c.a == experiments.Deterministic:
		return "α ≈ 1"
	default:
		return "α ≈ 0.5"
	}
}

func emit(t *trace.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}
