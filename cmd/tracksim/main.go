// tracksim runs the paper's tracking protocols, in one process or as a
// genuinely distributed system.
//
// Single-process mode runs one protocol on one workload and reports
// accuracy and cost in the paper's units, on any of the three transports:
//
//	go run ./cmd/tracksim -problem count -alg randomized -k 16 -eps 0.05 -n 100000 -transport tcp
//
// Problems: count, freq, rank. Algorithms: randomized, deterministic,
// sampling. Workloads: roundrobin, single, uniform, zipf. Transports:
// sequential, goroutine, tcp.
//
// The -producers N flag turns the run into a multi-producer load test: the
// stream is fed from N concurrent goroutines through the tracker's
// concurrent ingestion frontend (Options.ConcurrentIngest) and the report
// includes aggregate throughput:
//
//	go run ./cmd/tracksim -problem count -k 16 -n 1000000 -producers 8
//
// Distributed mode splits the system across processes, exchanging
// wire-encoded frames over real TCP. Start the coordinator, then one
// process per site (in separate terminals or machines):
//
//	go run ./cmd/tracksim serve   -addr :7077 -problem count -k 2 -eps 0.05
//	go run ./cmd/tracksim connect -addr localhost:7077 -site 0 -k 2 -problem count -eps 0.05 -n 50000
//	go run ./cmd/tracksim connect -addr localhost:7077 -site 1 -k 2 -problem count -eps 0.05 -n 50000
//
// The server prints running estimates as site traffic lands and a final
// cost report once every site has finished.
//
// With -topology tree the deployment becomes a two-level coordinator tree:
// the root serves one slot per aggregator shard, each aggregate process
// runs the coordinator protocol over its shard's leaves and the site
// protocol toward the root, and leaves connect to their shard's aggregator
// (-site is the leaf's local index within the shard):
//
//	go run ./cmd/tracksim serve     -topology tree -fanout 2 -k 4 -addr :7077
//	go run ./cmd/tracksim aggregate -topology tree -fanout 2 -k 4 -shard 0 -addr :7177 -parent localhost:7077
//	go run ./cmd/tracksim aggregate -topology tree -fanout 2 -k 4 -shard 1 -addr :7178 -parent localhost:7077
//	go run ./cmd/tracksim connect   -topology tree -fanout 2 -k 4 -shard 0 -site 0 -addr localhost:7177 -n 50000
//	...
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"disttrack"
	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/persist"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/robust"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/sample"
	"disttrack/internal/serve"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "connect":
			connectMain(os.Args[2:])
			return
		case "aggregate":
			aggregateMain(os.Args[2:])
			return
		case "chaos":
			chaosMain(os.Args[2:])
			return
		case "attack":
			attackMain(os.Args[2:])
			return
		case "loadgen":
			loadgenMain(os.Args[2:])
			return
		}
	}
	singleProcessMain()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func parseAlg(alg string) disttrack.Algorithm {
	switch alg {
	case "randomized":
		return disttrack.AlgorithmRandomized
	case "deterministic":
		return disttrack.AlgorithmDeterministic
	case "sampling":
		return disttrack.AlgorithmSampling
	}
	fatalf("unknown algorithm %q", alg)
	panic("unreachable")
}

func parseTransport(tr string) disttrack.Transport {
	switch tr {
	case "sequential":
		return disttrack.TransportSequential
	case "goroutine":
		return disttrack.TransportGoroutine
	case "tcp":
		return disttrack.TransportTCP
	}
	fatalf("unknown transport %q", tr)
	panic("unreachable")
}

func singleProcessMain() {
	problem := flag.String("problem", "count", "count | freq | rank")
	alg := flag.String("alg", "randomized", "randomized | deterministic | sampling")
	k := flag.Int("k", 16, "number of sites")
	eps := flag.Float64("eps", 0.05, "target relative error")
	n := flag.Int("n", 100000, "stream length")
	wl := flag.String("workload", "roundrobin", "roundrobin | single | uniform | zipf")
	seed := flag.Uint64("seed", 1, "RNG seed")
	rescale := flag.Float64("rescale", 0, "internal eps rescale (0 = paper default 3)")
	transport := flag.String("transport", "sequential", "sequential | goroutine | tcp")
	concurrent := flag.Bool("concurrent", false, "legacy alias for -transport goroutine")
	copies := flag.Int("copies", 0, "median-boost copies (randomized algorithms)")
	robustMode := flag.Bool("robust", false,
		"adversarially robust count tracking: noised reports + gated releases (count/randomized only)")
	producers := flag.Int("producers", 0,
		"feed the stream from N concurrent goroutines via the ingestion frontend (0 = serial)")
	ingestPolicy := flag.String("ingestpolicy", "block",
		"full-buffer policy with -producers: block | drop")
	faults := flag.String("faults", "",
		"fault-injection spec, e.g. drop=0.02,dup=0.01,reorder=0.1,delay=0.05@8,seed=7,kill=1@5000:+3000")
	topology := flag.String("topology", "flat", "flat | tree (two-level coordinator tree)")
	fanout := flag.Int("fanout", 16, "leaf sites per aggregator shard (with -topology tree)")
	flag.Parse()

	algorithm := parseAlg(*alg)
	tr := parseTransport(*transport)
	if *concurrent && tr == disttrack.TransportSequential {
		tr = disttrack.TransportGoroutine
	}
	if *robustMode && (*problem != "count" || algorithm != disttrack.AlgorithmRandomized || *copies > 0) {
		fatalf("-robust needs -problem count -alg randomized (and no -copies)")
	}

	var faultPlan *disttrack.FaultPlan
	if *faults != "" {
		var err error
		faultPlan, err = disttrack.ParseFaultPlan(*faults)
		if err != nil {
			fatalf("%v", err)
		}
		for _, kl := range faultPlan.Kills {
			// Range validation needs k, which the parser does not have; a
			// bad site must be a flag error here, not a panic mid-run.
			if kl.Site >= *k {
				fatalf("-faults: kill site %d out of range [0, %d)", kl.Site, *k)
			}
		}
		if tr == disttrack.TransportSequential {
			// The fault layer lives on the concurrent transports' message
			// fabric; the sequential simulator has none.
			fmt.Println("note: -faults needs a concurrent transport; switching to -transport goroutine")
			tr = disttrack.TransportGoroutine
		}
	}

	rng := stats.New(*seed ^ 0xabcdef)
	var placement workload.Placement
	switch *wl {
	case "roundrobin":
		placement = workload.RoundRobin(*k)
	case "single":
		placement = workload.SingleSite(0)
	case "uniform":
		placement = workload.UniformPlacement(*k, rng)
	case "zipf":
		placement = workload.ZipfPlacement(*k, 1.0, rng)
	default:
		fatalf("unknown workload %q", *wl)
	}

	opt := disttrack.Options{K: *k, Epsilon: *eps, Algorithm: algorithm, Seed: *seed,
		Rescale: *rescale, Transport: tr, Copies: *copies, Robust: *robustMode, FaultPlan: faultPlan}
	switch *topology {
	case "flat":
	case "tree":
		// Friendly flag errors for the combos Options.validate would reject.
		if *robustMode {
			fatalf("-robust is incompatible with -topology tree")
		}
		if *copies > 1 {
			fatalf("-copies is incompatible with -topology tree")
		}
		if *faults != "" {
			fatalf("-faults is incompatible with -topology tree (use `tracksim chaos -topology tree` for tree faults)")
		}
		if algorithm == disttrack.AlgorithmDeterministic && *problem != "count" {
			fatalf("-topology tree supports -alg deterministic for -problem count only")
		}
		if *fanout < 2 || *k <= *fanout {
			fatalf("-topology tree needs -fanout >= 2 and -k > -fanout (got k=%d fanout=%d)", *k, *fanout)
		}
		opt.Topology, opt.Fanout = disttrack.TopologyTree, *fanout
	default:
		fatalf("unknown topology %q", *topology)
	}
	fmt.Printf("problem=%s alg=%s k=%d eps=%g n=%d workload=%s transport=%s copies=%d robust=%t\n",
		*problem, algorithm, *k, *eps, *n, *wl, tr, *copies, *robustMode)
	if opt.Topology == disttrack.TopologyTree {
		fmt.Printf("topology=tree fanout=%d (%d aggregator shards)\n",
			*fanout, (*k+*fanout-1) / *fanout)
	}
	if faultPlan != nil {
		fmt.Printf("faults: %q\n", *faults)
	}
	fmt.Println()

	if *producers > 0 {
		opt.ConcurrentIngest = true
		switch *ingestPolicy {
		case "block":
			opt.IngestPolicy = disttrack.IngestBlock
		case "drop":
			opt.IngestPolicy = disttrack.IngestDrop
		default:
			fatalf("unknown ingest policy %q", *ingestPolicy)
		}
		producerRun(opt, *problem, *n, *producers, placement, rng)
		return
	}

	checkEvery := *n / 200
	if checkEvery < 1 {
		checkEvery = 1
	}
	bad, checks := 0, 0
	var metrics disttrack.Metrics
	var faultStats disttrack.FaultStats

	switch *problem {
	case "count":
		tr := disttrack.NewCountTracker(opt)
		defer tr.Close()
		for i := 0; i < *n; i++ {
			tr.Observe(placement(i))
			if (i+1)%checkEvery == 0 {
				checks++
				if stats.RelErr(tr.Estimate(), float64(i+1)) > *eps {
					bad++
				}
			}
		}
		metrics, faultStats = tr.Metrics(), tr.FaultStats()
		fmt.Printf("final estimate: %.0f (truth %d)\n", tr.Estimate(), *n)
	case "freq":
		items := workload.ZipfItems(1000, 1.1, rng.Split())
		truth := map[int64]int64{}
		tr := disttrack.NewFrequencyTracker(opt)
		defer tr.Close()
		for i := 0; i < *n; i++ {
			j := items(i)
			truth[j]++
			tr.Observe(placement(i), j)
			if (i+1)%checkEvery == 0 {
				checks++
				if math.Abs(tr.Estimate(0)-float64(truth[0])) > *eps*float64(i+1) {
					bad++
				}
			}
		}
		metrics, faultStats = tr.Metrics(), tr.FaultStats()
		fmt.Printf("hottest item: estimate %.0f (truth %d)\n", tr.Estimate(0), truth[0])
	case "rank":
		values := workload.PermValues(*n, rng.Split())
		tr := disttrack.NewRankTracker(opt)
		defer tr.Close()
		var below float64
		q := float64(*n) / 2
		for i := 0; i < *n; i++ {
			v := values(i)
			if v < q {
				below++
			}
			tr.Observe(placement(i), v)
			if (i+1)%checkEvery == 0 {
				checks++
				if math.Abs(tr.Rank(q)-below) > *eps*float64(i+1) {
					bad++
				}
			}
		}
		metrics, faultStats = tr.Metrics(), tr.FaultStats()
		fmt.Printf("rank(median value): estimate %.0f (truth %.0f)\n", tr.Rank(q), below)
	default:
		fatalf("unknown problem %q", *problem)
	}

	fmt.Printf("\naccuracy: %d/%d checkpoints outside the ε-band (%.1f%%)\n",
		bad, checks, 100*float64(bad)/float64(checks))
	fmt.Printf("messages:   %d\n", metrics.Messages)
	if metrics.Depth == 2 {
		fmt.Printf("per-level:  leaf %d msgs (%d words), root %d msgs (%d words)\n",
			metrics.LevelMessages[0], metrics.LevelWords[0],
			metrics.LevelMessages[1], metrics.LevelWords[1])
	}
	fmt.Printf("words:      %d\n", metrics.Words)
	fmt.Printf("broadcasts: %d\n", metrics.Broadcasts)
	fmt.Printf("site space: %d words (high-water)\n", metrics.MaxSiteSpace)
	if faultPlan != nil {
		fmt.Printf("live sites: %d of %d\n", metrics.LiveSites, *k)
		fmt.Printf("faults:     %d dropped (%d retransmits), %d duplicated, %d reordered, %d delayed, %d partition-trapped\n",
			faultStats.Dropped, faultStats.Retransmits, faultStats.Duplicated,
			faultStats.Reordered, faultStats.Delayed, faultStats.Partitioned)
	}
}

// producerRun is the multi-producer load-generator mode (-producers N):
// the stream is materialized up front, split striped across N goroutines
// that hammer the tracker's concurrent ingestion frontend, and the run
// reports aggregate throughput plus final accuracy. Mid-run ε checkpoints
// are a serial-feeder notion, so only the final estimate is checked.
func producerRun(opt disttrack.Options, problem string, n, producers int,
	placement workload.Placement, rng *stats.RNG) {
	sites := make([]int, n)
	for i := range sites {
		sites[i] = placement(i)
	}

	type flusher interface {
		Flush() error
		Metrics() disttrack.Metrics
		FaultStats() disttrack.FaultStats
		Close() error
	}
	var tr flusher
	var observe func(i int)
	var report func(m disttrack.Metrics)

	switch problem {
	case "count":
		t := disttrack.NewCountTracker(opt)
		tr, observe = t, func(i int) { t.Observe(sites[i]) }
		report = func(m disttrack.Metrics) {
			// Under IngestDrop the tracker only saw m.Arrivals elements,
			// so that — not the offered n — is the count it tracks.
			truth := float64(m.Arrivals)
			fmt.Printf("final estimate: %.0f (ingested %.0f of %d offered, rel err %.4f)\n",
				t.Estimate(), truth, n, stats.RelErr(t.Estimate(), truth))
		}
	case "freq":
		itemFn := workload.ZipfItems(1000, 1.1, rng.Split())
		items := make([]int64, n)
		truth := map[int64]int64{}
		for i := range items {
			items[i] = itemFn(i)
			truth[items[i]]++
		}
		t := disttrack.NewFrequencyTracker(opt)
		tr, observe = t, func(i int) { t.Observe(sites[i], items[i]) }
		report = func(m disttrack.Metrics) {
			fmt.Printf("hottest item: estimate %.0f (full-stream truth %d)\n", t.Estimate(0), truth[0])
			if m.Dropped > 0 {
				fmt.Printf("NOTE: %d of %d elements were shed (IngestDrop); the estimate reflects\n"+
					"only ingested elements, so the full-stream truth overstates its error.\n",
					m.Dropped, n)
			}
		}
	case "rank":
		values := workload.PermValues(n, rng.Split())
		var below float64
		q := float64(n) / 2
		for i := 0; i < n; i++ {
			if values(i) < q {
				below++
			}
		}
		t := disttrack.NewRankTracker(opt)
		tr, observe = t, func(i int) { t.Observe(sites[i], values(i)) }
		report = func(m disttrack.Metrics) {
			fmt.Printf("rank(median value): estimate %.0f (full-stream truth %.0f)\n", t.Rank(q), below)
			if m.Dropped > 0 {
				fmt.Printf("NOTE: %d of %d elements were shed (IngestDrop); the estimate reflects\n"+
					"only ingested elements, so the full-stream truth overstates its error.\n",
					m.Dropped, n)
			}
		}
	default:
		fatalf("unknown problem %q", problem)
	}
	defer func() {
		// A terminal transport failure surfaces through Close too; a load
		// test must not report success over shed data.
		if err := tr.Close(); err != nil {
			fatalf("close: %v", err)
		}
	}()

	fmt.Printf("feeding %d elements from %d producer goroutines (policy %s)\n",
		n, producers, opt.IngestPolicy)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < n; i += producers {
				observe(i)
			}
		}(p)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
	elapsed := time.Since(start)

	m := tr.Metrics()
	report(m)
	fmt.Printf("\nthroughput: %.2f Melem/s aggregate (%.0f ns/element, %v wall)\n",
		float64(m.Arrivals)/elapsed.Seconds()/1e6,
		float64(elapsed.Nanoseconds())/float64(max(m.Arrivals, 1)), elapsed.Round(time.Millisecond))
	fmt.Printf("arrivals:   %d\n", m.Arrivals)
	if m.Dropped > 0 {
		fmt.Printf("dropped:    %d (policy %s)\n", m.Dropped, opt.IngestPolicy)
	}
	fmt.Printf("messages:   %d\n", m.Messages)
	fmt.Printf("words:      %d\n", m.Words)
	fmt.Printf("broadcasts: %d\n", m.Broadcasts)
	fmt.Printf("site space: %d words (high-water)\n", m.MaxSiteSpace)
	if opt.FaultPlan != nil {
		fs := tr.FaultStats()
		fmt.Printf("live sites: %d of %d\n", m.LiveSites, opt.K)
		fmt.Printf("faults:     %d dropped (%d retransmits), %d duplicated, %d reordered, %d delayed, %d partition-trapped\n",
			fs.Dropped, fs.Retransmits, fs.Duplicated, fs.Reordered, fs.Delayed, fs.Partitioned)
	}
}

// attackMain runs the adaptive adversary side by side against the plain
// randomized count tracker and the robust mode, printing ε-violation rates
// and cost for both. With -check it exits non-zero unless the attack
// demonstrably breaks the plain tracker while the robust mode withstands
// it — the CI smoke for the adversarial-robustness contract.
//
//	go run ./cmd/tracksim attack -strategy boundary-camp -k 64 -n 20000
//	go run ./cmd/tracksim attack -strategy threshold-learn -trials 16 -check
func attackMain(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	strategyName := fs.String("strategy", "boundary-camp", "boundary-camp | threshold-learn")
	k := fs.Int("k", 256, "number of sites")
	eps := fs.Float64("eps", 0.1, "target relative error")
	delta := fs.Float64("delta", 0.1, "target ε-violation probability")
	n := fs.Int("n", 20000, "adversarial stream length")
	trials := fs.Int("trials", 8, "independent trials per mode")
	seed := fs.Uint64("seed", 1, "base RNG seed (trial t runs with seed+t)")
	check := fs.Bool("check", false,
		"exit non-zero unless the attack breaks plain mode (violation rate >= 5δ) while robust mode stays within δ at <= 4x the words")
	fs.Parse(args)

	var strategy disttrack.AttackStrategy
	switch *strategyName {
	case "boundary-camp":
		strategy = disttrack.AttackBoundaryCamp
	case "threshold-learn":
		strategy = disttrack.AttackThresholdLearn
	default:
		fatalf("unknown strategy %q", *strategyName)
	}

	type tally struct {
		rate, worst float64
		words       int64
	}
	run := func(robustMode bool) tally {
		var t tally
		for i := 0; i < *trials; i++ {
			opt := disttrack.Options{K: *k, Epsilon: *eps, Seed: *seed + uint64(i), Robust: robustMode}
			out := disttrack.RunAttack(opt, strategy, *n, *seed+uint64(i)^0xa77ac)
			t.rate += out.ViolationRate()
			t.worst = math.Max(t.worst, out.WorstErr)
			t.words += out.Words
		}
		t.rate /= float64(*trials)
		t.words /= int64(*trials)
		return t
	}

	fmt.Printf("adaptive adversary: strategy=%s k=%d eps=%g delta=%g n=%d trials=%d\n\n",
		strategy, *k, *eps, *delta, *n, *trials)
	plain := run(false)
	robustT := run(true)
	ratio := float64(robustT.words) / float64(max(plain.words, 1))
	fmt.Printf("%8s  %16s  %18s  %10s\n", "mode", "ε-violation rate", "worst err (·ε·n)", "words/run")
	fmt.Printf("%8s  %16.3f  %18.2f  %10d\n", "plain", plain.rate, plain.worst, plain.words)
	fmt.Printf("%8s  %16.3f  %18.2f  %10d  (%.2f× plain)\n", "robust", robustT.rate, robustT.worst, robustT.words, ratio)

	if *check {
		ok := true
		if plain.rate < 5**delta {
			fmt.Printf("\nCHECK FAIL: attack did not break plain mode (rate %.3f < 5δ = %.3f)\n", plain.rate, 5**delta)
			ok = false
		}
		if robustT.rate > *delta {
			fmt.Printf("\nCHECK FAIL: robust mode violated ε more often than δ (rate %.3f > %.3f)\n", robustT.rate, *delta)
			ok = false
		}
		if ratio > 4 {
			fmt.Printf("\nCHECK FAIL: robust communication overhead %.2f× exceeds the 4× budget\n", ratio)
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("\nATTACK CHECK OK")
	}
}

// distConfig is the protocol shape shared by serve, aggregate, and connect.
type distConfig struct {
	problem  string
	alg      string
	k        int
	eps      float64
	rescale  float64
	robust   bool
	topology string
	fanout   int
}

func distFlags(fs *flag.FlagSet) *distConfig {
	c := &distConfig{}
	fs.StringVar(&c.problem, "problem", "count", "count | freq | rank")
	fs.StringVar(&c.alg, "alg", "randomized", "randomized | deterministic | sampling")
	fs.IntVar(&c.k, "k", 2, "number of site processes (with -topology tree: total leaf sites)")
	fs.Float64Var(&c.eps, "eps", 0.05, "target relative error")
	fs.Float64Var(&c.rescale, "rescale", 0, "internal eps rescale (0 = paper default 3)")
	fs.BoolVar(&c.robust, "robust", false,
		"adversarially robust count tracking: noised reports + gated releases (count/randomized only)")
	fs.StringVar(&c.topology, "topology", "flat", "flat | tree (two-level coordinator tree)")
	fs.IntVar(&c.fanout, "fanout", 16, "leaf sites per aggregator shard (with -topology tree)")
	return c
}

// tree reports whether the deployment is the two-level coordinator tree.
func (c *distConfig) tree() bool {
	switch c.topology {
	case "", "flat":
		return false
	case "tree":
		return true
	}
	fatalf("unknown topology %q", c.topology)
	panic("unreachable")
}

// checkTree validates the tree shape and the problem/alg combos that have
// re-aggregation adapters, mirroring Options.validate on the facade.
func (c *distConfig) checkTree() {
	if !c.tree() {
		return
	}
	if c.robust {
		fatalf("-robust is incompatible with -topology tree")
	}
	if c.alg == "deterministic" && c.problem != "count" {
		fatalf("-topology tree supports -alg deterministic for -problem count only")
	}
	if c.fanout < 2 {
		fatalf("-fanout must be >= 2 (got %d)", c.fanout)
	}
	if c.groups() < 2 {
		fatalf("-topology tree needs -k > -fanout (k=%d fanout=%d leaves a single shard; use -topology flat)",
			c.k, c.fanout)
	}
}

// groups is the number of aggregator shards: ceil(k / fanout).
func (c *distConfig) groups() int { return (c.k + c.fanout - 1) / c.fanout }

// groupSize is the number of leaf sites in shard g (the last shard may be
// smaller).
func (c *distConfig) groupSize(g int) int {
	size := c.fanout
	if rem := c.k - g*c.fanout; rem < size {
		size = rem
	}
	return size
}

// levelEps is the per-level error budget: (1+ε)^(1/2)−1 for the threshold
// protocols so the two levels compose to ε exactly. Sampling runs both
// levels at the full ε — its error is driven by retained-sample size, and
// the resampled feed keeps the root's sample uniform over the whole stream.
func (c *distConfig) levelEps() float64 {
	if c.alg == "sampling" {
		return c.eps
	}
	return proto.SplitEps(c.eps, 2)
}

// groupConfig is the shape of shard g's child-facing protocol: the
// aggregator plays coordinator over groupSize(g) leaves at the per-level ε.
func (c *distConfig) groupConfig(g int) *distConfig {
	gc := *c
	gc.topology, gc.k, gc.eps = "flat", c.groupSize(g), c.levelEps()
	return &gc
}

// rootConfig is the shape of the top-level protocol: one site slot per
// aggregator shard.
func (c *distConfig) rootConfig() *distConfig {
	rc := *c
	rc.topology, rc.k, rc.eps = "flat", c.groups(), c.levelEps()
	return &rc
}

// fingerprintAt extends the flat fingerprint with the tree link identity:
// level 1 is the aggregator→root link, level 0 shard g the leaf→aggregator
// links of shard g. Hashing the link identity means a leaf pointed at the
// wrong aggregator (or an aggregator claiming a mismatched shard) is
// rejected at the handshake instead of silently mis-tracking.
func (c *distConfig) fingerprintAt(level, shard int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%g/%g/%t/tree/%d/L%d/S%d",
		c.problem, c.alg, c.k, c.eps, c.rescale, c.robust, c.fanout, level, shard)
	return h.Sum64()
}

// aggregator builds shard g's child-facing machine — a proto.Aggregator
// whose DrainFeed re-expresses absorbed leaf reports as virtual arrivals —
// plus a report closure safe to run on the serving loop.
func (c *distConfig) aggregator(g int) (proto.Aggregator, func()) {
	gc := c.groupConfig(g)
	switch c.problem + "/" + c.alg {
	case "count/randomized":
		a := count.NewAgg(count.NewCoordinator(count.Config{K: gc.k, Eps: gc.eps, Rescale: gc.rescale}))
		return a, func() {
			fmt.Printf("shard n̂ = %.0f (round %d, fed %d up)\n", a.Estimate(), a.Round(), a.Fed())
		}
	case "count/deterministic":
		a := count.NewDetAgg(count.NewDetCoordinator(gc.k, gc.eps))
		return a, func() { fmt.Printf("shard n̂ = %.0f\n", a.Estimate()) }
	case "freq/randomized":
		a := freq.NewAgg(freq.NewCoordinator(freq.Config{K: gc.k, Eps: gc.eps, Rescale: gc.rescale}))
		return a, func() { fmt.Printf("shard f̂(0) = %.0f (round %d)\n", a.Estimate(0), a.Round()) }
	case "rank/randomized":
		a := rank.NewAgg(rank.NewCoordinator(rank.Config{K: gc.k, Eps: gc.eps, Rescale: gc.rescale}))
		return a, func() { fmt.Printf("shard n̂ = rank(∞) = %.0f (round %d)\n", a.Rank(math.Inf(1)), a.Round()) }
	case "count/sampling", "freq/sampling", "rank/sampling":
		a := sample.NewAgg(sample.NewCoordinator(sample.Config{K: gc.k, Eps: gc.eps}))
		return a, func() {
			fmt.Printf("shard n̂ = %.0f, sample %d @ level %d\n", a.Count(), a.SampleLen(), a.Level())
		}
	}
	fatalf("-topology tree: no re-aggregation adapter for %s/%s", c.problem, c.alg)
	panic("unreachable")
}

// feedingCoord mounts a proto.Aggregator as a tcp.Server coordinator: each
// Receive on the serving loop is one delivered child frame, so its return
// is a quiescent instant — exactly when the Aggregator contract wants feed
// decisions evaluated. Whatever DrainFeed emits flows up the parent link
// as ordinary absolute-state arrivals.
type feedingCoord struct {
	agg  proto.Aggregator
	feed func(item int64, value float64, count int64)
}

func (f *feedingCoord) Receive(from int, m proto.Message,
	send func(to int, m proto.Message), broadcast func(proto.Message)) {
	f.agg.Receive(from, m, send, broadcast)
	f.agg.DrainFeed(f.feed)
}

func (f *feedingCoord) SpaceWords() int { return f.agg.SpaceWords() }

func (f *feedingCoord) Round() int {
	if rc, ok := f.agg.(interface{ Round() int }); ok {
		return rc.Round()
	}
	return 0
}

// resyncCoord additionally forwards the optional Resyncer capability. It is
// a distinct type built only when the inner aggregator actually has the
// capability: a blind delegation would make the serve loop's type assertion
// succeed on aggregators (count/deterministic) that cannot resync a
// rejoining leaf.
type resyncCoord struct {
	feedingCoord
	rs proto.Resyncer
}

func (f *resyncCoord) Resync(emit func(proto.Message)) { f.rs.Resync(emit) }

func newFeedingCoord(agg proto.Aggregator, feed func(item int64, value float64, count int64)) proto.Coordinator {
	fc := feedingCoord{agg: agg, feed: feed}
	if rs, ok := agg.(proto.Resyncer); ok {
		return &resyncCoord{feedingCoord: fc, rs: rs}
	}
	return &fc
}

// fingerprint hashes the protocol configuration; serve and connect must
// agree on it, so a mismatched deployment is rejected at the handshake
// instead of silently mis-tracking.
func (c *distConfig) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%g/%g/%t", c.problem, c.alg, c.k, c.eps, c.rescale, c.robust)
	return h.Sum64()
}

// robustConfig maps the shared flags onto the robust protocol's config.
// The zero Seed is fine for the coordinator role: the release-noise stream
// only has to be reproducible across a crash-restart of the same process,
// not secret from the sites.
func (c *distConfig) robustConfig() robust.Config {
	if c.problem != "count" || c.alg != "randomized" {
		fatalf("-robust needs -problem count -alg randomized")
	}
	return robust.Config{K: c.k, Eps: c.eps, Rescale: c.rescale}
}

// coordinator builds the coordinator machine plus a report closure that is
// safe to run on the serving loop.
func (c *distConfig) coordinator() (proto.Coordinator, func()) {
	if c.robust {
		co := robust.NewCoordinator(c.robustConfig())
		return co, func() { fmt.Printf("released n̂ = %.0f (round %d)\n", co.Estimate(), co.Round()) }
	}
	switch c.problem + "/" + c.alg {
	case "count/randomized":
		co := count.NewCoordinator(count.Config{K: c.k, Eps: c.eps, Rescale: c.rescale})
		return co, func() { fmt.Printf("estimate n̂ = %.0f (round %d)\n", co.Estimate(), co.Round()) }
	case "count/deterministic":
		co := count.NewDetCoordinator(c.k, c.eps)
		return co, func() { fmt.Printf("estimate n̂ = %.0f\n", co.Estimate()) }
	case "freq/randomized":
		co := freq.NewCoordinator(freq.Config{K: c.k, Eps: c.eps, Rescale: c.rescale})
		return co, func() { fmt.Printf("f̂(0) = %.0f (round %d)\n", co.Estimate(0), co.Round()) }
	case "freq/deterministic":
		co := freq.NewDetCoordinator(c.k)
		return co, func() { fmt.Printf("f̂(0) = %.0f\n", co.Estimate(0)) }
	case "rank/randomized":
		co := rank.NewCoordinator(rank.Config{K: c.k, Eps: c.eps, Rescale: c.rescale})
		return co, func() { fmt.Printf("n̂ = rank(∞) = %.0f (round %d)\n", co.Rank(math.Inf(1)), co.Round()) }
	case "rank/deterministic":
		co := rank.NewDetCoordinator(c.k)
		return co, func() { fmt.Printf("n̂ = rank(∞) = %.0f\n", co.Rank(math.Inf(1))) }
	case "count/sampling", "freq/sampling", "rank/sampling":
		co := sample.NewCoordinator(sample.Config{K: c.k, Eps: c.eps})
		return co, func() {
			fmt.Printf("n̂ = %.0f, sample %d @ level %d\n", co.Count(), co.SampleLen(), co.Level())
		}
	}
	fatalf("unknown problem/alg %s/%s", c.problem, c.alg)
	panic("unreachable")
}

// site builds one site machine.
func (c *distConfig) site(seed uint64) proto.Site {
	rng := stats.New(seed)
	if c.robust {
		return robust.NewSite(c.robustConfig(), rng, rng.Split())
	}
	switch c.problem + "/" + c.alg {
	case "count/randomized":
		return count.NewSite(count.Config{K: c.k, Eps: c.eps, Rescale: c.rescale}, rng)
	case "count/deterministic":
		return count.NewDetSite(c.eps)
	case "freq/randomized":
		return freq.NewSite(freq.Config{K: c.k, Eps: c.eps, Rescale: c.rescale}, rng)
	case "freq/deterministic":
		return freq.NewDetSite(c.k, c.eps)
	case "rank/randomized":
		return rank.NewSite(rank.Config{K: c.k, Eps: c.eps, Rescale: c.rescale}, rng)
	case "rank/deterministic":
		return rank.NewDetSite(c.k, c.eps)
	case "count/sampling", "freq/sampling", "rank/sampling":
		return sample.NewSite(rng)
	}
	fatalf("unknown problem/alg %s/%s", c.problem, c.alg)
	panic("unreachable")
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := distFlags(fs)
	addr := fs.String("addr", ":7077", "listen address")
	reportEvery := fs.Int64("report", 200, "print an estimate every N protocol messages (0 = never)")
	rejoinWait := fs.Duration("rejoinwait", 10*time.Second,
		"how long a crashed site's slot stays open for a rejoin before it is declared lost (0 = immediate loss)")
	walDir := fs.String("wal", "",
		"directory for durable coordinator state (write-ahead log + snapshots); empty = no persistence")
	snapEvery := fs.Int64("snapevery", 0,
		"snapshot cadence in logged coordinator frames (0 = default 4096; needs -wal)")
	resume := fs.Bool("resume", false,
		"recover coordinator state from -wal (snapshot + log replay) before accepting sites")
	httpAddr := fs.String("http", "",
		"serve the HTTP/JSON query API + Prometheus /metrics on this address (e.g. :8080); empty = off")
	local := fs.Bool("local", false,
		"host the tracker in this process (no site processes): ingest and queries both run over -http")
	transport := fs.String("transport", "goroutine",
		"in-process transport with -local: sequential | goroutine | tcp")
	seed := fs.Uint64("seed", 1, "site RNG seed with -local")
	quantLo := fs.Float64("quantlo", 0,
		"lower bound of the /v1/quantile bisection domain (rank deployments)")
	quantHi := fs.Float64("quanthi", 1e12,
		"upper bound of the /v1/quantile bisection domain (rank deployments)")
	fs.Parse(args)
	if *resume && *walDir == "" {
		fatalf("-resume needs -wal")
	}
	if *snapEvery < 0 {
		fatalf("-snapevery must be >= 0 (got %d; 0 = default cadence)", *snapEvery)
	}
	if *snapEvery != 0 && *walDir == "" {
		fatalf("-snapevery needs -wal")
	}
	cfg.checkTree()
	if *walDir != "" && cfg.tree() {
		// The root's WAL would capture aggregator estimate-deltas while a
		// crashed aggregator rejoins by replaying absolute state from zero —
		// a recovery would double-count every shard that outlived the crash.
		fatalf("-wal is incompatible with -topology tree: the subtree is the unit of recovery " +
			"(aggregators replay absolute state on rejoin; a root WAL would double-count it)")
	}
	if *local {
		if *resume {
			fatalf("-resume applies to distributed serve (-local builds a fresh tracker; point -wal at an empty directory)")
		}
		if *httpAddr == "" {
			fatalf("-local needs -http (the HTTP API is its only ingest and query surface)")
		}
		serveLocal(cfg, *httpAddr, *transport, *seed, *walDir, *snapEvery, *quantLo, *quantHi)
		return
	}

	// With -topology tree this process is the root: it serves one slot per
	// aggregator shard (each played by a tracksim aggregate process) at the
	// per-level ε, and cannot tell an aggregator from a busy site.
	shape, fingerprint := cfg, cfg.fingerprint()
	if cfg.tree() {
		shape, fingerprint = cfg.rootConfig(), cfg.fingerprintAt(1, 0)
	}
	coord, report := shape.coordinator()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	defer ln.Close()
	if cfg.tree() {
		fmt.Printf("root coordinator: problem=%s alg=%s k=%d fanout=%d eps=%g listening on %s for %d aggregator shards\n",
			cfg.problem, cfg.alg, cfg.k, cfg.fanout, cfg.eps, ln.Addr(), shape.k)
	} else {
		fmt.Printf("coordinator: problem=%s alg=%s k=%d eps=%g listening on %s\n",
			cfg.problem, cfg.alg, cfg.k, cfg.eps, ln.Addr())
	}

	srv := &tcp.Server{
		Coord:       coord,
		K:           shape.k,
		Config:      fingerprint,
		RejoinWait:  *rejoinWait,
		ReportEvery: *reportEvery,
		// Sites ship periodic Progress frames, so mid-run arrivals are live.
		Report: func(m runtime.Metrics) {
			fmt.Printf("[%d arrivals] ", m.Arrivals)
			report()
		},
	}
	if *walDir != "" {
		store, err := disttrack.OpenDiskStore(*walDir)
		if err != nil {
			fatalf("%v", err)
		}
		defer store.Close()
		srv.Persist, srv.SnapshotEvery, srv.Resume = store, *snapEvery, *resume
		if *resume {
			fmt.Printf("resuming coordinator state from %s\n", *walDir)
		}
	}

	// The serving surface: queries route onto the serve loop via Inspect,
	// so they read the coordinator at frame boundaries, concurrently with
	// live site ingestion.
	backend := &distBackend{srv: srv}
	if *httpAddr != "" {
		topo := "flat"
		if cfg.tree() {
			topo = "tree"
		}
		api := &serve.Server{
			Backend: distFuncs(shape, coord, backend, *quantLo, *quantHi),
			Info: serve.Info{Problem: cfg.problem, Algorithm: cfg.alg, Transport: "tcp",
				Topology: topo, K: cfg.k, Epsilon: cfg.eps},
		}
		hsrv := &http.Server{Addr: *httpAddr, Handler: api.Handler()}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "http: %v\n", err)
			}
		}()
		defer hsrv.Close()
		fmt.Printf("HTTP query API + /metrics on %s\n", *httpAddr)
	}

	// SIGINT/SIGTERM shut down gracefully: the serve loop drains what it
	// already received, writes a final snapshot, and syncs the WAL, so a
	// later serve -resume picks up exactly where this one stopped.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\nreceived %v; shutting down gracefully\n", sig)
		if !srv.Shutdown() {
			os.Exit(1)
		}
	}()

	m, err := srv.Serve(ln)
	backend.finish(m) // the loop is gone; queries now read the final state directly
	switch {
	case err == tcp.ErrShutdown:
		fmt.Printf("\nshut down before all sites finished; coordinator state sealed")
		if *walDir != "" {
			fmt.Printf(" (restart with -resume to continue)")
		}
		fmt.Println()
	case err != nil:
		// A handshake failure is fatal; lost sites still leave a partial
		// final state worth printing alongside the warning.
		if m.Arrivals == 0 && m.MessagesUp == 0 {
			fatalf("serve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		fmt.Printf("\nrun ended with lost sites; partial final state:\n")
	default:
		if cfg.tree() {
			fmt.Printf("\nall %d aggregator shards finished; final state:\n", shape.k)
		} else {
			fmt.Printf("\nall %d sites finished; final state:\n", cfg.k)
		}
	}
	report()
	if cfg.tree() {
		// Aggregators feed re-expressed (virtual) arrivals, so for the
		// threshold protocols this is an ε-accurate image of the leaf total,
		// not an exact ledger.
		fmt.Printf("virtual arrivals (from shard Done frames): %d\n", m.Arrivals)
	} else {
		fmt.Printf("arrivals (from site Done frames): %d\n", m.Arrivals)
	}
	fmt.Printf("messages:   %d\n", m.Messages())
	fmt.Printf("words:      %d\n", m.Words())
	fmt.Printf("broadcasts: %d\n", m.Broadcasts)
	fmt.Printf("live sites: %d of %d\n", m.LiveSites, shape.k)
	if *walDir != "" {
		fmt.Printf("durability: %d snapshots, %d WAL frames replayed on start, %d resyncs served\n",
			m.Snapshots, m.ReplayedFrames, m.Resyncs)
	}
	if srv.Rejoins > 0 {
		fmt.Printf("recovered %d crashed-site connection(s) via rejoin\n", srv.Rejoins)
	}
	if srv.Rejects > 0 {
		fmt.Printf("rejected %d stray connection(s) during handshake (garbage or silent dials)\n",
			srv.Rejects)
	}
}

// streamOne feeds element i of a site's workload: count streams identity,
// freq a zipf item, rank globally distinct values interleaved across sites.
func streamOne(cfg *distConfig, sc *tcp.SiteConn, site, i int, items func(int) int64) {
	switch cfg.problem {
	case "count":
		sc.Arrive(0, 0)
	case "freq":
		sc.Arrive(items(i), 0)
	case "rank":
		sc.Arrive(0, float64(i*cfg.k+site))
	default:
		fatalf("unknown problem %q", cfg.problem)
	}
}

func connectMain(args []string) {
	fs := flag.NewFlagSet("connect", flag.ExitOnError)
	cfg := distFlags(fs)
	addr := fs.String("addr", "localhost:7077", "coordinator address (with -topology tree: this shard's aggregator)")
	site := fs.Int("site", 0, "this process's site index in [0, k) (with -topology tree: local leaf index in [0, shard size))")
	shard := fs.Int("shard", 0, "aggregator shard this leaf belongs to (with -topology tree)")
	n := fs.Int("n", 100000, "elements to stream from this site")
	seed := fs.Uint64("seed", 0, "site RNG seed (default: site index + 1)")
	reconnect := fs.Bool("reconnect", true,
		"transparently redial the coordinator (rejoin handshake) if the connection drops mid-run")
	redialWait := fs.Duration("redialwait", tcp.DefaultRedialWait,
		"delay between reconnection attempts (with -reconnect)")
	redialAttempts := fs.Int("redialattempts", tcp.DefaultRedialAttempts,
		"reconnection attempts before giving up (with -reconnect); raise to ride out a coordinator restart")
	fs.Parse(args)
	cfg.checkTree()

	// The leaf's identity: who it dials, its slot there, the machine's shape,
	// and the globally distinct stream offset (rank values must not collide
	// across shards, so the stream is indexed by the global leaf number).
	slotK, fingerprint, global := cfg.k, cfg.fingerprint(), *site
	machineCfg := cfg
	if cfg.tree() {
		if *shard < 0 || *shard >= cfg.groups() {
			fatalf("shard %d out of range [0, %d)", *shard, cfg.groups())
		}
		if *site < 0 || *site >= cfg.groupSize(*shard) {
			fatalf("site %d out of range [0, %d) for shard %d", *site, cfg.groupSize(*shard), *shard)
		}
		machineCfg = cfg.groupConfig(*shard)
		slotK, fingerprint = machineCfg.k, cfg.fingerprintAt(0, *shard)
		global = *shard*cfg.fanout + *site
	} else if *site < 0 || *site >= cfg.k {
		fatalf("site %d out of range [0, %d)", *site, cfg.k)
	}
	if *seed == 0 {
		*seed = uint64(global) + 1
	}

	machine := machineCfg.site(*seed)
	sc, err := tcp.DialSite(*addr, *site, slotK, fingerprint, machine)
	if err != nil {
		fatalf("%v", err)
	}
	sc.AutoReconnect = *reconnect
	sc.RedialWait, sc.RedialAttempts = *redialWait, *redialAttempts
	if cfg.tree() {
		fmt.Printf("leaf %d (shard %d, slot %d): connected to %s, streaming %d elements\n",
			global, *shard, *site, *addr, *n)
	} else {
		fmt.Printf("site %d: connected to %s, streaming %d elements\n", *site, *addr, *n)
	}

	items := workload.ZipfItems(1000, 1.1, stats.New(*seed^0xfeed))
	for i := 0; i < *n; i++ {
		streamOne(cfg, sc, global, i, items)
	}
	if err := sc.Close(); err != nil {
		fatalf("site %d: %v", *site, err)
	}
	if r := sc.Rejoins(); r > 0 {
		fmt.Printf("site %d: survived %d connection drop(s) via rejoin\n", *site, r)
	}
	fmt.Printf("site %d: done, %d arrivals streamed\n", *site, sc.Arrivals())
}

// aggregateMain runs one interior tree node: the coordinator protocol over
// this shard's leaves (a child-facing tcp.Server) and the site protocol
// toward the root (a parent-facing tcp.SiteConn). Absorbed leaf reports are
// re-expressed at quiescent instants — after each delivered child frame —
// as ordinary absolute-state arrivals on the parent link, so the root
// cannot tell an aggregator from a busy site.
//
// A crashed aggregator is replaced by rerunning the same command with
// -rejoin: the replacement starts from fresh protocol state, reclaims the
// shard's root slot through the rejoin handshake, and its leaves redial and
// replay from 0. The protocols' absolute-state messages make the rebuilt
// subtree reconverge exactly at the root with no double counting — the
// subtree is the unit of recovery, which is also why aggregate has no -wal:
// an aggregator's state is cheaper to rebuild from its children than to
// persist.
//
//	go run ./cmd/tracksim aggregate -topology tree -fanout 2 -k 4 -shard 0 -addr :7177 -parent localhost:7077
func aggregateMain(args []string) {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	cfg := distFlags(fs)
	addr := fs.String("addr", ":7177", "listen address for this shard's leaves")
	parent := fs.String("parent", "localhost:7077", "root coordinator address")
	shard := fs.Int("shard", 0, "this aggregator's shard index in [0, ceil(k/fanout))")
	seed := fs.Uint64("seed", 0, "parent-facing site machine RNG seed (default: shard + 1)")
	reportEvery := fs.Int64("report", 200, "print a shard estimate every N child frames (0 = never)")
	rejoinWait := fs.Duration("rejoinwait", 10*time.Second,
		"how long a crashed leaf's slot stays open for a rejoin before it is declared lost (0 = immediate loss)")
	rejoin := fs.Bool("rejoin", false,
		"this process replaces a crashed aggregator: reclaim the shard's root slot via the rejoin handshake (the shard's leaves must redial and replay from 0)")
	reconnect := fs.Bool("reconnect", true,
		"transparently redial the root (rejoin handshake) if the parent link drops mid-run")
	redialWait := fs.Duration("redialwait", tcp.DefaultRedialWait,
		"delay between parent reconnection attempts (with -reconnect)")
	redialAttempts := fs.Int("redialattempts", tcp.DefaultRedialAttempts,
		"parent reconnection attempts before giving up (with -reconnect)")
	fs.Parse(args)
	cfg.topology = "tree" // aggregate is meaningless in a flat star
	cfg.checkTree()
	if *shard < 0 || *shard >= cfg.groups() {
		fatalf("shard %d out of range [0, %d)", *shard, cfg.groups())
	}
	if *seed == 0 {
		*seed = uint64(*shard) + 1
	}
	size := cfg.groupSize(*shard)
	agg, report := cfg.aggregator(*shard)

	// Parent link first: the shard must hold (or reclaim) its root slot
	// before absorbing leaf traffic it would have nowhere to feed.
	parentSite := func() proto.Site { return cfg.rootConfig().site(*seed) }
	var sc *tcp.SiteConn
	var err error
	if *rejoin {
		var acked int64
		sc, acked, err = rejoinLoop(*parent, *shard, cfg.groups(), cfg.fingerprintAt(1, 0), parentSite, *rejoinWait)
		if err == nil {
			fmt.Printf("aggregator %d: reclaimed root slot (root had acknowledged %d virtual arrivals); leaves must replay from 0\n",
				*shard, acked)
		}
	} else {
		sc, err = tcp.DialSite(*parent, *shard, cfg.groups(), cfg.fingerprintAt(1, 0), parentSite())
	}
	if err != nil {
		fatalf("aggregator %d: parent %s: %v", *shard, *parent, err)
	}
	sc.AutoReconnect = *reconnect
	sc.RedialWait, sc.RedialAttempts = *redialWait, *redialAttempts

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	defer ln.Close()
	fmt.Printf("aggregator: problem=%s alg=%s shard=%d of %d, listening on %s for %d leaves, feeding %s\n",
		cfg.problem, cfg.alg, *shard, cfg.groups(), ln.Addr(), size, *parent)

	srv := &tcp.Server{
		Coord:       newFeedingCoord(agg, sc.ArriveBatch),
		K:           size,
		Config:      cfg.fingerprintAt(0, *shard),
		RejoinWait:  *rejoinWait,
		ReportEvery: *reportEvery,
		Report: func(m runtime.Metrics) {
			fmt.Printf("[%d leaf arrivals, %d fed up] ", m.Arrivals, sc.Arrivals())
			report()
		},
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if sig, ok := <-sigc; ok {
			fmt.Fprintf(os.Stderr, "\nreceived %v; shutting down gracefully\n", sig)
			if !srv.Shutdown() {
				os.Exit(1)
			}
		}
	}()

	m, err := srv.Serve(ln)
	switch {
	case err == tcp.ErrShutdown:
		// Drop the root slot without a Done frame so a replacement
		// `aggregate -rejoin` can reclaim it within the root's rejoin window.
		sc.Abort()
		fmt.Println("\nshut down before all leaves finished; root slot left open for an `aggregate -rejoin` replacement")
		return
	case err != nil:
		sc.Abort()
		fatalf("aggregator %d: %v", *shard, err)
	}
	// All leaves are done: seal the shard's contribution upward. Close sends
	// Done with the fed virtual-arrival total and waits for the root's ack.
	if cerr := sc.Close(); cerr != nil {
		fatalf("aggregator %d: parent link: %v", *shard, cerr)
	}
	fmt.Printf("\nall %d leaves finished; shard final state:\n", size)
	report()
	fmt.Printf("leaf arrivals (from Done frames): %d\n", m.Arrivals)
	fmt.Printf("fed upward: %d virtual arrivals\n", sc.Arrivals())
	fmt.Printf("child messages: %d, words: %d\n", m.Messages(), m.Words())
	if r := sc.Rejoins(); r > 0 {
		fmt.Printf("parent link survived %d drop(s) via rejoin\n", r)
	}
	if srv.Rejoins > 0 {
		fmt.Printf("recovered %d crashed-leaf connection(s) via rejoin\n", srv.Rejoins)
	}
	if srv.Rejects > 0 {
		fmt.Printf("rejected %d stray connection(s) during handshake\n", srv.Rejects)
	}
}

// rejoinLoop retries the rejoin handshake until the parent accepts it or
// the window closes: a replacement dialing the instant after the crash can
// race the parent noticing the dead connection. Each attempt gets a fresh
// machine (a failed handshake may have partially resynced the previous
// one). Returns the parent's last acknowledged arrival count for the slot.
func rejoinLoop(addr string, slot, k int, config uint64, machine func() proto.Site,
	window time.Duration) (*tcp.SiteConn, int64, error) {
	deadline := time.Now().Add(window)
	for {
		sc, rsy, err := tcp.RejoinSite(addr, slot, k, config, 0, machine())
		if err == nil {
			return sc, rsy.Arrivals, nil
		}
		if time.Now().After(deadline) {
			return nil, 0, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosMain is the crash/rejoin soak: a full distributed deployment —
// coordinator plus k sites over real TCP on the loopback — driven by a
// seeded kill schedule. Killed sites crash mid-stream (no Done frame, site
// machine lost), rejoin through the recovery handshake, and replay their
// stream from 0; the protocols' absolute-state messages make the replay
// reconverge exactly, so the run must finish with every arrival accounted
// and (for count) the ε guarantee intact. Exits non-zero otherwise.
//
// With -coordkill the coordinator itself also crashes mid-run — abruptly,
// no final snapshot — and a replacement recovers its state from the durable
// store (snapshot + write-ahead-log replay) while every site rides the
// outage through its reconnection loop.
//
// With -topology tree the kill schedule targets aggregators instead of
// leaves, and the unit of recovery is the whole subtree (see chaosTree).
//
//	go run ./cmd/tracksim chaos -k 4 -n 50000 -kills 2 -seed 7
//	go run ./cmd/tracksim chaos -k 4 -n 50000 -kills 1 -coordkill
//	go run ./cmd/tracksim chaos -topology tree -fanout 4 -k 16 -n 20000 -kills 1
func chaosMain(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	cfg := distFlags(fs)
	n := fs.Int("n", 50000, "elements per site")
	kills := fs.Int("kills", 1, "how many sites crash and rejoin (at seeded points mid-stream)")
	seed := fs.Uint64("seed", 1, "chaos schedule seed")
	rejoinWait := fs.Duration("rejoinwait", 30*time.Second, "server-side rejoin window")
	coordKill := fs.Bool("coordkill", false,
		"also crash the coordinator mid-run (abrupt, no final snapshot) and resume it from its durable store")
	snapEvery := fs.Int64("snapevery", 32, "snapshot cadence in logged frames for the -coordkill store")
	fs.Parse(args)
	cfg.checkTree()
	if cfg.tree() {
		if *coordKill {
			fatalf("-coordkill is a flat-star drill (it exercises the durable store); the tree drill kills aggregators")
		}
		if *kills < 0 || *kills > cfg.groups() {
			fatalf("-kills %d out of range [0, %d] (tree kills target aggregator shards)", *kills, cfg.groups())
		}
		chaosTree(cfg, *n, *kills, *seed, *rejoinWait)
		return
	}
	if *kills < 0 || *kills > cfg.k {
		fatalf("-kills %d out of range [0, %d]", *kills, cfg.k)
	}

	coord, _ := cfg.coordinator()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &tcp.Server{Coord: coord, K: cfg.k, Config: cfg.fingerprint(), RejoinWait: *rejoinWait}
	truth := int64(cfg.k) * int64(*n)
	var store persist.Store
	if *coordKill {
		// The serve loop trips its own kill once a quarter of the stream
		// has landed (Report runs on the loop; Kill just posts an event).
		store = persist.NewMem()
		srv.Persist, srv.SnapshotEvery = store, *snapEvery
		tripped := false
		srv.ReportEvery = 64
		srv.Report = func(m runtime.Metrics) {
			if !tripped && m.Arrivals >= truth/4 {
				tripped = true
				srv.Kill()
			}
		}
	}
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()
	addr := ln.Addr().String()

	// The seeded schedule: sites 1..kills crash once, at a point in the
	// middle half of their stream.
	chaosRNG := stats.New(*seed ^ 0xc4405)
	killAt := make([]int, cfg.k) // 0 = never
	for s := 1; s <= *kills; s++ {
		killAt[s%cfg.k] = *n/4 + chaosRNG.Intn(*n/2)
	}

	fmt.Printf("chaos: problem=%s alg=%s k=%d eps=%g n=%d/site kills=%d seed=%d\n",
		cfg.problem, cfg.alg, cfg.k, cfg.eps, *n, *kills, *seed)
	start := time.Now()
	// harden tunes a site connection for the drill: tight progress frames,
	// and with -coordkill a redial budget wide enough to ride out the
	// coordinator's death and resumed restart.
	harden := func(sc *tcp.SiteConn) {
		sc.ProgressEvery = 1024
		if *coordKill {
			sc.AutoReconnect = true
			// ~45s of outage budget under the capped exponential backoff
			// (50ms doubling to the 500ms cap, ±25% jitter).
			sc.RedialAttempts = 100
		}
	}
	var wg sync.WaitGroup
	for site := 0; site < cfg.k; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			siteSeed := uint64(site) + 1
			items := workload.ZipfItems(1000, 1.1, stats.New(siteSeed^0xfeed))
			sc, err := tcp.DialSite(addr, site, cfg.k, cfg.fingerprint(), cfg.site(siteSeed))
			if err != nil {
				fatalf("site %d: %v", site, err)
			}
			harden(sc)
			// With -coordkill the sites pace themselves slightly so the
			// coordinator's serve loop keeps up — the kill must land while
			// they are still mid-stream, or the drill degenerates into a
			// resume of an already-finished run.
			throttle := func(i int) {
				if *coordKill && i%256 == 255 {
					time.Sleep(time.Millisecond)
				}
			}
			if killAt[site] > 0 {
				for i := 0; i < killAt[site]; i++ {
					streamOne(cfg, sc, site, i, items)
					throttle(i)
				}
				sc.Abort() // crash: no Done, machine state lost
				fmt.Printf("chaos: site %d crashed at %d/%d arrivals\n", site, killAt[site], *n)
				// The replacement process: fresh machine, same seed, full
				// replay (the stream source is replayable).
				deadline := time.Now().Add(*rejoinWait)
				for {
					sc, _, err = tcp.RejoinSite(addr, site, cfg.k, cfg.fingerprint(), 0, cfg.site(siteSeed))
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						fatalf("site %d: rejoin never accepted: %v", site, err)
					}
					time.Sleep(20 * time.Millisecond)
				}
				harden(sc)
				fmt.Printf("chaos: site %d rejoined (coordinator had acknowledged %d arrivals), replaying\n",
					site, sc.LastResync().Arrivals)
				items = workload.ZipfItems(1000, 1.1, stats.New(siteSeed^0xfeed))
			}
			for i := 0; i < *n; i++ {
				streamOne(cfg, sc, site, i, items)
				throttle(i)
			}
			if err := sc.Close(); err != nil {
				fatalf("site %d: %v", site, err)
			}
		}(site)
	}
	var priorRejoins int64
	if *coordKill {
		// The first Serve returns at the kill, while the sites are still
		// streaming (their sends stall in the redial loop). Restart on the
		// same address with a fresh coordinator machine recovered from the
		// store; every site rejoins through the assembly-time resync.
		sr := <-res
		if sr.err != tcp.ErrKilled {
			fatalf("chaos: expected the coordinator kill, got: %v", sr.err)
		}
		priorRejoins = srv.Rejoins
		fmt.Printf("chaos: coordinator killed at %d arrivals (%d snapshots taken); restarting with resume\n",
			sr.m.Arrivals, sr.m.Snapshots)
		ln.Close() // the old accept loop dies with the listener
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			fatalf("chaos: re-listen %s: %v", addr, err)
		}
		defer ln2.Close()
		coord, _ = cfg.coordinator() // fresh machine; recovery fills it from the store
		srv = &tcp.Server{Coord: coord, K: cfg.k, Config: cfg.fingerprint(),
			RejoinWait: *rejoinWait, Persist: store, SnapshotEvery: *snapEvery, Resume: true}
		go func() {
			m, err := srv.Serve(ln2)
			res <- served{m, err}
		}()
	}
	wg.Wait()
	sr := <-res
	if sr.err != nil {
		fatalf("chaos: serve: %v", sr.err)
	}

	totalRejoins := priorRejoins + srv.Rejoins
	fmt.Printf("\nchaos: run completed in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("arrivals:   %d (truth %d)\n", sr.m.Arrivals, truth)
	fmt.Printf("messages:   %d, words: %d\n", sr.m.Messages(), sr.m.Words())
	fmt.Printf("live sites: %d of %d, rejoins: %d\n", sr.m.LiveSites, cfg.k, totalRejoins)
	if *coordKill {
		fmt.Printf("durability: %d snapshots, %d WAL frames replayed on resume, %d resyncs served\n",
			sr.m.Snapshots, sr.m.ReplayedFrames, sr.m.Resyncs)
		if cfg.alg != "deterministic" && sr.m.Snapshots < 1 {
			fatalf("chaos: no snapshot was ever written")
		}
	}
	if sr.m.Arrivals != truth {
		fatalf("chaos: arrival accounting broken: %d != %d", sr.m.Arrivals, truth)
	}
	if sr.m.LiveSites != cfg.k {
		fatalf("chaos: %d sites still dark at run end", cfg.k-sr.m.LiveSites)
	}
	if totalRejoins < int64(*kills) {
		fatalf("chaos: only %d rejoins recorded for %d kills", totalRejoins, *kills)
	}
	if cfg.problem == "count" && cfg.alg == "randomized" {
		est := coord.(interface{ Estimate() float64 }).Estimate()
		rel := stats.RelErr(est, float64(truth))
		fmt.Printf("estimate:   %.0f (rel err %.4f, ε %g)\n", est, rel, cfg.eps)
		if rel > cfg.eps {
			fatalf("chaos: estimate left the ε band after recovery")
		}
	}
	fmt.Println("CHAOS OK")
}

// chaosTree is the tree variant of the chaos drill: a full two-level
// deployment over loopback TCP — root, one aggregator server per shard,
// fanout leaves each — where the seeded kill schedule targets aggregators.
// A killed aggregator dies abruptly (its leaves' links collapse mid-stream)
// and abandons its root slot without a Done; the replacement starts from
// fresh protocol state, reclaims the slot through the rejoin handshake, and
// the shard's leaves redial it and replay from 0. The protocols'
// absolute-state messages make the rebuilt subtree reconverge exactly at
// the root — the subtree is the unit of recovery — so the run must end with
// every shard live, every kill recovered, and (for count/randomized) the ε
// guarantee intact. Exits non-zero otherwise.
//
// The root's arrival ledger is NOT checked against the leaf truth: shards
// feed re-expressed virtual arrivals, which for the threshold protocols are
// an ε-accurate image of the leaf total, not an exact count.
func chaosTree(cfg *distConfig, n, kills int, seed uint64, rejoinWait time.Duration) {
	groups := cfg.groups()
	rootCfg := cfg.rootConfig()
	fpRoot := cfg.fingerprintAt(1, 0)
	truth := int64(cfg.k) * int64(n)

	coord, _ := rootCfg.coordinator()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	defer ln.Close()
	root := &tcp.Server{Coord: coord, K: groups, Config: fpRoot, RejoinWait: rejoinWait}
	type served struct {
		m   runtime.Metrics
		err error
	}
	rres := make(chan served, 1)
	go func() {
		m, err := root.Serve(ln)
		rres <- served{m, err}
	}()
	rootAddr := ln.Addr().String()

	// The seeded schedule: shards 1..kills crash once, when their total leaf
	// arrivals cross a point in the middle half of the shard's stream.
	chaosRNG := stats.New(seed ^ 0x7ee)
	killAt := make([]int64, groups) // 0 = never
	for s := 1; s <= kills; s++ {
		g := s % groups
		killAt[g] = int64(cfg.groupSize(g)) * int64(n/4+chaosRNG.Intn(n/2))
	}

	fmt.Printf("chaos: problem=%s alg=%s k=%d fanout=%d (%d shards) eps=%g n=%d/leaf kills=%d seed=%d\n",
		cfg.problem, cfg.alg, cfg.k, cfg.fanout, groups, cfg.eps, n, kills, seed)
	start := time.Now()

	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			size := cfg.groupSize(g)
			fpShard := cfg.fingerprintAt(0, g)
			leafCfg := cfg.groupConfig(g)
			for attempt := 1; ; attempt++ {
				agg, _ := cfg.aggregator(g)

				// Parent link first: dial on the first life, reclaim the
				// abandoned slot on a rebuild.
				var sc *tcp.SiteConn
				var err error
				freshSite := func() proto.Site { return rootCfg.site(uint64(g) + 1) }
				if attempt == 1 {
					sc, err = tcp.DialSite(rootAddr, g, groups, fpRoot, freshSite())
				} else {
					sc, _, err = rejoinLoop(rootAddr, g, groups, fpRoot, freshSite, rejoinWait)
				}
				if err != nil {
					fatalf("chaos: aggregator %d: parent link: %v", g, err)
				}
				sc.ProgressEvery = 256

				aln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					fatalf("chaos: aggregator %d: listen: %v", g, err)
				}
				asrv := &tcp.Server{
					Coord:      newFeedingCoord(agg, sc.ArriveBatch),
					K:          size,
					Config:     fpShard,
					RejoinWait: rejoinWait,
				}
				if killAt[g] > 0 && attempt == 1 {
					// The serve loop trips its own kill once the shard's leaf
					// arrivals cross the threshold (Report runs on the loop;
					// Kill just posts an event).
					trip, tripped := killAt[g], false
					asrv.ReportEvery = 1
					asrv.Report = func(m runtime.Metrics) {
						if !tripped && m.Arrivals >= trip {
							tripped = true
							asrv.Kill()
						}
					}
				}
				sres := make(chan served, 1)
				go func() {
					m, err := asrv.Serve(aln)
					sres <- served{m, err}
				}()
				aggAddr := aln.Addr().String()

				// dead flags this aggregator life as over; streaming leaves
				// abort so the whole subtree can restart together.
				dead := make(chan struct{})
				var lwg sync.WaitGroup
				for l := 0; l < size; l++ {
					lwg.Add(1)
					go func(l int) {
						defer lwg.Done()
						global := g*cfg.fanout + l
						leafSeed := uint64(global) + 1
						items := workload.ZipfItems(1000, 1.1, stats.New(leafSeed^0xfeed))
						lc, err := tcp.DialSite(aggAddr, l, size, fpShard, leafCfg.site(leafSeed))
						if err != nil {
							// The aggregator died during assembly; the rebuild
							// respawns this leaf.
							return
						}
						lc.ProgressEvery = 256
						for i := 0; i < n; i++ {
							select {
							case <-dead:
								lc.Abort()
								return
							default:
							}
							streamOne(cfg, lc, global, i, items)
							// Pace slightly so the aggregator's serve loop
							// keeps up — the kill trips from a Report on that
							// loop, and an unbounded frame backlog would push
							// the kill event past the end of the run (the
							// same reason the -coordkill drill throttles).
							if i%256 == 255 {
								time.Sleep(time.Millisecond)
							}
						}
						if err := lc.Close(); err != nil {
							// The aggregator died under us mid-close; the
							// rebuild replays this leaf from 0.
							lc.Abort()
						}
					}(l)
				}

				sr := <-sres
				close(dead)
				lwg.Wait()
				aln.Close()
				if sr.err == tcp.ErrKilled {
					// Crash: abandon the root slot without a Done so the
					// replacement can reclaim it, then rebuild the subtree
					// from scratch.
					sc.Abort()
					fmt.Printf("chaos: aggregator %d killed at %d leaf arrivals (life %d); rebuilding subtree\n",
						g, sr.m.Arrivals, attempt)
					continue
				}
				if sr.err != nil {
					fatalf("chaos: aggregator %d: serve: %v", g, sr.err)
				}
				// All leaves done: seal the shard upward.
				if err := sc.Close(); err != nil {
					fatalf("chaos: aggregator %d: parent link: %v", g, err)
				}
				return
			}
		}(g)
	}
	wg.Wait()
	sr := <-rres
	if sr.err != nil {
		fatalf("chaos: root serve: %v", sr.err)
	}

	fmt.Printf("\nchaos: run completed in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("virtual arrivals at root: %d (leaf truth %d)\n", sr.m.Arrivals, truth)
	fmt.Printf("root messages: %d, words: %d\n", sr.m.Messages(), sr.m.Words())
	fmt.Printf("live shards: %d of %d, aggregator rejoins: %d\n", sr.m.LiveSites, groups, root.Rejoins)
	if sr.m.LiveSites != groups {
		fatalf("chaos: %d shards still dark at run end", groups-sr.m.LiveSites)
	}
	if root.Rejoins < int64(kills) {
		fatalf("chaos: only %d aggregator rejoins recorded for %d kills", root.Rejoins, kills)
	}
	if cfg.problem == "count" && cfg.alg == "randomized" {
		est := coord.(interface{ Estimate() float64 }).Estimate()
		rel := stats.RelErr(est, float64(truth))
		fmt.Printf("estimate: %.0f (rel err %.4f, ε %g)\n", est, rel, cfg.eps)
		if rel > cfg.eps {
			fatalf("chaos: estimate left the ε band after subtree recovery")
		}
	}
	fmt.Println("CHAOS OK")
}
