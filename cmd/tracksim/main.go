// tracksim runs one tracking protocol on one workload and reports accuracy
// and cost, in the paper's units.
//
// Usage:
//
//	go run ./cmd/tracksim -problem count -alg randomized -k 16 -eps 0.05 -n 100000 -workload roundrobin
//
// Problems: count, freq, rank. Algorithms: randomized, deterministic,
// sampling. Workloads: roundrobin, single, uniform, zipf.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"disttrack"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func main() {
	problem := flag.String("problem", "count", "count | freq | rank")
	alg := flag.String("alg", "randomized", "randomized | deterministic | sampling")
	k := flag.Int("k", 16, "number of sites")
	eps := flag.Float64("eps", 0.05, "target relative error")
	n := flag.Int("n", 100000, "stream length")
	wl := flag.String("workload", "roundrobin", "roundrobin | single | uniform | zipf")
	seed := flag.Uint64("seed", 1, "RNG seed")
	rescale := flag.Float64("rescale", 0, "internal eps rescale (0 = paper default 3)")
	concurrent := flag.Bool("concurrent", false, "run sites as goroutines (netsim runtime)")
	copies := flag.Int("copies", 0, "median-boost copies (randomized algorithms)")
	flag.Parse()

	var algorithm disttrack.Algorithm
	switch *alg {
	case "randomized":
		algorithm = disttrack.AlgorithmRandomized
	case "deterministic":
		algorithm = disttrack.AlgorithmDeterministic
	case "sampling":
		algorithm = disttrack.AlgorithmSampling
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	rng := stats.New(*seed ^ 0xabcdef)
	var placement workload.Placement
	switch *wl {
	case "roundrobin":
		placement = workload.RoundRobin(*k)
	case "single":
		placement = workload.SingleSite(0)
	case "uniform":
		placement = workload.UniformPlacement(*k, rng)
	case "zipf":
		placement = workload.ZipfPlacement(*k, 1.0, rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	opt := disttrack.Options{K: *k, Epsilon: *eps, Algorithm: algorithm, Seed: *seed,
		Rescale: *rescale, Concurrent: *concurrent, Copies: *copies}
	fmt.Printf("problem=%s alg=%s k=%d eps=%g n=%d workload=%s concurrent=%v copies=%d\n\n",
		*problem, algorithm, *k, *eps, *n, *wl, *concurrent, *copies)

	checkEvery := *n / 200
	if checkEvery < 1 {
		checkEvery = 1
	}
	bad, checks := 0, 0
	var metrics disttrack.Metrics

	switch *problem {
	case "count":
		tr := disttrack.NewCountTracker(opt)
		for i := 0; i < *n; i++ {
			tr.Observe(placement(i))
			if (i+1)%checkEvery == 0 {
				checks++
				if stats.RelErr(tr.Estimate(), float64(i+1)) > *eps {
					bad++
				}
			}
		}
		metrics = tr.Metrics()
		fmt.Printf("final estimate: %.0f (truth %d)\n", tr.Estimate(), *n)
	case "freq":
		items := workload.ZipfItems(1000, 1.1, rng.Split())
		truth := map[int64]int64{}
		tr := disttrack.NewFrequencyTracker(opt)
		for i := 0; i < *n; i++ {
			j := items(i)
			truth[j]++
			tr.Observe(placement(i), j)
			if (i+1)%checkEvery == 0 {
				checks++
				if math.Abs(tr.Estimate(0)-float64(truth[0])) > *eps*float64(i+1) {
					bad++
				}
			}
		}
		metrics = tr.Metrics()
		fmt.Printf("hottest item: estimate %.0f (truth %d)\n", tr.Estimate(0), truth[0])
	case "rank":
		values := workload.PermValues(*n, rng.Split())
		tr := disttrack.NewRankTracker(opt)
		var below float64
		q := float64(*n) / 2
		for i := 0; i < *n; i++ {
			v := values(i)
			if v < q {
				below++
			}
			tr.Observe(placement(i), v)
			if (i+1)%checkEvery == 0 {
				checks++
				if math.Abs(tr.Rank(q)-below) > *eps*float64(i+1) {
					bad++
				}
			}
		}
		metrics = tr.Metrics()
		fmt.Printf("rank(median value): estimate %.0f (truth %.0f)\n", tr.Rank(q), below)
	default:
		fmt.Fprintf(os.Stderr, "unknown problem %q\n", *problem)
		os.Exit(2)
	}

	fmt.Printf("\naccuracy: %d/%d checkpoints outside the ε-band (%.1f%%)\n",
		bad, checks, 100*float64(bad)/float64(checks))
	fmt.Printf("messages:   %d\n", metrics.Messages)
	fmt.Printf("words:      %d\n", metrics.Words)
	fmt.Printf("broadcasts: %d\n", metrics.Broadcasts)
	fmt.Printf("site space: %d words (high-water)\n", metrics.MaxSiteSpace)
}
