// The serving surface: tracksim serve -http exposes the HTTP/JSON query
// API and Prometheus /metrics from internal/serve over either deployment
// shape — a distributed coordinator (queries routed onto the tcp serve
// loop via Inspect) or, with -local, an in-process tracker whose ingestion
// also runs over HTTP. tracksim loadgen drives mixed ingest+query traffic
// against either.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"disttrack"
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/serve"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// localSnapshot maps the facade's ledger onto the serving surface's
// neutral snapshot.
func localSnapshot(m disttrack.Metrics, fs disttrack.FaultStats) serve.Snapshot {
	return serve.Snapshot{
		Arrivals:       m.Arrivals,
		MessagesUp:     m.MessagesUp,
		MessagesDown:   m.MessagesDown,
		WordsUp:        m.WordsUp,
		WordsDown:      m.WordsDown,
		Broadcasts:     m.Broadcasts,
		Dropped:        m.Dropped,
		LiveSites:      m.LiveSites,
		MaxSiteSpace:   m.MaxSiteSpace,
		MaxCoordSpace:  m.MaxCoordSpace,
		Snapshots:      m.Snapshots,
		ReplayedFrames: m.ReplayedFrames,
		Resyncs:        m.Resyncs,
		Depth:          m.Depth,
		LevelMessages:  m.LevelMessages,
		LevelWords:     m.LevelWords,
		Faults: serve.FaultCounts{
			Dropped: fs.Dropped, Retransmits: fs.Retransmits, Duplicated: fs.Duplicated,
			Reordered: fs.Reordered, Delayed: fs.Delayed, Partitioned: fs.Partitioned,
		},
	}
}

// localTracker owns one in-process tracker facade wired into the serving
// surface: ObserveFn feeds the concurrent ingestion frontend, queries read
// quiesced snapshots, and close seals the store (final snapshot + sync).
type localTracker struct {
	backend serve.Funcs
	flush   func() error
	close   func() error
	metrics func() disttrack.Metrics
}

func newLocalTracker(cfg *distConfig, opt disttrack.Options, qlo, qhi float64) localTracker {
	switch cfg.problem {
	case "count":
		t := disttrack.NewCountTracker(opt)
		return localTracker{
			backend: serve.Funcs{
				CountFn: func() (float64, error) { return t.Estimate(), nil },
				ObserveFn: func(site int, _ int64, _ float64, n int64) error {
					t.ObserveBatch(site, int(n))
					return nil
				},
				FlushFn: t.Flush,
				SnapshotFn: func() (serve.Snapshot, error) {
					return localSnapshot(t.Metrics(), t.FaultStats()), nil
				},
			},
			flush: t.Flush, close: t.Close, metrics: t.Metrics,
		}
	case "freq":
		t := disttrack.NewFrequencyTracker(opt)
		return localTracker{
			backend: serve.Funcs{
				FreqFn: func(item int64) (float64, error) { return t.Estimate(item), nil },
				ObserveFn: func(site int, item int64, _ float64, n int64) error {
					t.ObserveBatch(site, item, int(n))
					return nil
				},
				FlushFn: t.Flush,
				SnapshotFn: func() (serve.Snapshot, error) {
					return localSnapshot(t.Metrics(), t.FaultStats()), nil
				},
			},
			flush: t.Flush, close: t.Close, metrics: t.Metrics,
		}
	case "rank":
		t := disttrack.NewRankTracker(opt)
		return localTracker{
			backend: serve.Funcs{
				RankFn: func(x float64) (float64, error) { return t.Rank(x), nil },
				QuantileFn: func(phi float64) (float64, error) {
					v := t.Quantile(phi, qlo, qhi)
					if math.IsNaN(v) {
						return 0, errors.New("no values observed yet")
					}
					return v, nil
				},
				// The total count is the rank of +∞ — free on a rank tracker.
				CountFn: func() (float64, error) { return t.Rank(math.Inf(1)), nil },
				ObserveFn: func(site int, _ int64, value float64, n int64) error {
					t.ObserveBatch(site, value, int(n))
					return nil
				},
				FlushFn: t.Flush,
				SnapshotFn: func() (serve.Snapshot, error) {
					return localSnapshot(t.Metrics(), t.FaultStats()), nil
				},
			},
			flush: t.Flush, close: t.Close, metrics: t.Metrics,
		}
	}
	fatalf("unknown problem %q", cfg.problem)
	panic("unreachable")
}

// serveLocal hosts the tracker in this process: ingest and queries both
// arrive over HTTP, the tracker runs with ConcurrentIngest on the chosen
// in-process transport, and SIGINT/SIGTERM drains the frontend and seals
// the store through the tracker's Close path.
func serveLocal(cfg *distConfig, httpAddr, transport string, seed uint64, walDir string, snapEvery int64, qlo, qhi float64) {
	opt := disttrack.Options{
		K: cfg.k, Epsilon: cfg.eps, Algorithm: parseAlg(cfg.alg), Seed: seed,
		Rescale: cfg.rescale, Robust: cfg.robust,
		Transport: parseTransport(transport), ConcurrentIngest: true,
	}
	topo := "flat"
	if cfg.tree() {
		opt.Topology, opt.Fanout = disttrack.TopologyTree, cfg.fanout
		topo = "tree"
	}
	if walDir != "" {
		store, err := disttrack.OpenDiskStore(walDir)
		if err != nil {
			fatalf("%v", err)
		}
		defer store.Close()
		opt.Persist, opt.SnapshotEvery = store, int(snapEvery)
	}
	lt := newLocalTracker(cfg, opt, qlo, qhi)
	api := &serve.Server{Backend: lt.backend, Info: serve.Info{
		Problem: cfg.problem, Algorithm: cfg.alg, Transport: transport,
		Topology: topo, K: cfg.k, Epsilon: cfg.eps,
	}}
	hs := &http.Server{Addr: httpAddr, Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	fmt.Printf("local tracker: problem=%s alg=%s k=%d eps=%g transport=%s topology=%s\n",
		cfg.problem, cfg.alg, cfg.k, cfg.eps, transport, topo)
	fmt.Printf("HTTP query API + /metrics on %s (SIGINT/SIGTERM drains and seals)\n", httpAddr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		fatalf("http: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "\nreceived %v; draining\n", sig)
	}
	// Stop admitting requests and wait out the in-flight handlers, then
	// drain the ingestion frontend and seal the store — Close writes the
	// final snapshot and syncs, so the WAL directory is a clean resume
	// point with nothing left to replay.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	if err := lt.flush(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: flush: %v\n", err)
	}
	if err := lt.close(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: close: %v\n", err)
	}
	m := lt.metrics()
	fmt.Printf("drained: %d arrivals (%d dropped), %d messages, %d words, %d broadcasts\n",
		m.Arrivals, m.Dropped, m.Messages, m.Words, m.Broadcasts)
	if walDir != "" {
		fmt.Printf("sealed %s: %d snapshots over the store's lifetime\n", walDir, m.Snapshots)
	}
}

// distBackend routes queries onto the tcp serve loop via Inspect, so they
// run at instants when no frame is mid-application and may read the
// coordinator coherently. Once Serve has returned the loop is gone and the
// coordinator quiescent, so the final state stays queryable by direct
// reads through drain and report.
type distBackend struct {
	srv   *tcp.Server
	mu    sync.Mutex
	done  bool
	final runtime.Metrics
}

var errAssembling = errors.New("coordinator has not finished assembling its sites")

func (b *distBackend) finish(m runtime.Metrics) {
	b.mu.Lock()
	b.done, b.final = true, m
	b.mu.Unlock()
}

func (b *distBackend) run(read func(m runtime.Metrics)) error {
	if b.srv.Inspect(read) {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.done {
		return errAssembling
	}
	read(b.final)
	return nil
}

func distSnapshot(m runtime.Metrics) serve.Snapshot {
	return serve.Snapshot{
		Arrivals:       m.Arrivals,
		MessagesUp:     m.MessagesUp,
		MessagesDown:   m.MessagesDown,
		WordsUp:        m.WordsUp,
		WordsDown:      m.WordsDown,
		Broadcasts:     m.Broadcasts,
		LiveSites:      m.LiveSites,
		MaxSiteSpace:   m.MaxSiteSpace,
		MaxCoordSpace:  m.MaxCoordSpace,
		Snapshots:      m.Snapshots,
		ReplayedFrames: m.ReplayedFrames,
		Resyncs:        m.Resyncs,
	}
}

// bisectQuantile mirrors the facade's quantile-by-bisection for
// coordinators that only answer rank queries (sampling). It runs inside
// one inspection, so every probe sees the same protocol state.
func bisectQuantile(rankFn func(float64) float64, q, lo, hi float64) float64 {
	total := rankFn(math.Inf(1))
	if total == 0 {
		return math.NaN()
	}
	target := q * total
	for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if rankFn(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// distFuncs wires the distributed coordinator's query capabilities into
// the serving surface. Only the deployment's own problem is exposed — a
// count coordinator asked for ranks answers 404, not garbage. There is no
// ObserveFn: ingestion happens on the site processes.
func distFuncs(shape *distConfig, coord proto.Coordinator, b *distBackend, qlo, qhi float64) serve.Funcs {
	f := serve.Funcs{
		SnapshotFn: func() (serve.Snapshot, error) {
			var s serve.Snapshot
			err := b.run(func(m runtime.Metrics) { s = distSnapshot(m) })
			return s, err
		},
	}
	query := func(fn func() float64) (float64, error) {
		var v float64
		if err := b.run(func(runtime.Metrics) { v = fn() }); err != nil {
			return 0, err
		}
		if math.IsNaN(v) {
			return 0, errors.New("no values observed yet")
		}
		return v, nil
	}
	switch shape.problem {
	case "count":
		switch co := coord.(type) {
		case interface{ Estimate() float64 }: // randomized, deterministic, robust
			f.CountFn = func() (float64, error) { return query(co.Estimate) }
		case interface{ Count() float64 }: // sampling
			f.CountFn = func() (float64, error) { return query(co.Count) }
		}
	case "freq":
		switch co := coord.(type) {
		case interface{ Estimate(int64) float64 }: // randomized, deterministic
			f.FreqFn = func(item int64) (float64, error) {
				return query(func() float64 { return co.Estimate(item) })
			}
		case interface{ Freq(int64) float64 }: // sampling
			f.FreqFn = func(item int64) (float64, error) {
				return query(func() float64 { return co.Freq(item) })
			}
		}
	case "rank":
		co, ok := coord.(interface{ Rank(float64) float64 })
		if !ok {
			break
		}
		f.RankFn = func(x float64) (float64, error) {
			return query(func() float64 { return co.Rank(x) })
		}
		f.CountFn = func() (float64, error) {
			return query(func() float64 { return co.Rank(math.Inf(1)) })
		}
		if qc, ok := coord.(interface {
			Quantile(q, lo, hi float64) float64
		}); ok { // randomized, deterministic
			f.QuantileFn = func(phi float64) (float64, error) {
				return query(func() float64 { return qc.Quantile(phi, qlo, qhi) })
			}
		} else { // sampling: bisect over the rank capability
			f.QuantileFn = func(phi float64) (float64, error) {
				return query(func() float64 { return bisectQuantile(co.Rank, phi, qlo, qhi) })
			}
		}
	}
	return f
}

// healthDoc is the subset of /v1/healthz loadgen bootstraps from.
type healthDoc struct {
	Status    string  `json:"status"`
	Problem   string  `json:"problem"`
	Algorithm string  `json:"algorithm"`
	K         int     `json:"k"`
	Epsilon   float64 `json:"epsilon"`
	Arrivals  int64   `json:"arrivals"`
}

func fetchHealth(client *http.Client, base string) (healthDoc, error) {
	var doc healthDoc
	resp, err := client.Get(base + "/v1/healthz")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// loadgenMain drives configurable mixed ingest+query traffic against a
// tracksim serve -http endpoint and reports achieved throughput and a
// client-side latency histogram. It bootstraps the deployment shape
// (problem, k, ε) from /v1/healthz, so pointing it at any serving tracker
// just works.
func loadgenMain(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of a tracksim serve -http API")
	dur := fs.Duration("duration", 5*time.Second, "how long to run")
	workers := fs.Int("workers", 8, "concurrent client goroutines")
	qps := fs.Float64("qps", 0, "target aggregate request rate (0 = unthrottled)")
	readRatio := fs.Float64("readratio", 0.5, "fraction of requests that are queries; the rest are /v1/observe writes")
	items := fs.Int("items", 1000, "item universe for freq traffic")
	zipfAlpha := fs.Float64("zipf", 1.1, "zipf exponent for item popularity")
	batch := fs.Int("batch", 1, "elements per observe request")
	seed := fs.Uint64("seed", 1, "workload RNG seed")
	check := fs.Bool("check", false,
		"after the run: flush, then exit non-zero unless /v1/count is within ε of the server's arrivals")
	fs.Parse(args)
	if *readRatio < 0 || *readRatio > 1 {
		fatalf("-readratio must be in [0,1] (got %g)", *readRatio)
	}
	if *workers < 1 || *batch < 1 || *items < 1 {
		fatalf("-workers, -batch, and -items must be >= 1")
	}
	if *qps < 0 {
		fatalf("-qps must be >= 0 (0 = unthrottled)")
	}

	base := strings.TrimRight(*addr, "/")
	// Accept a bare host:port the way curl does.
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}
	health, err := fetchHealth(client, base)
	if err != nil {
		fatalf("loadgen: cannot reach %s: %v", base, err)
	}
	if health.K <= 0 {
		fatalf("loadgen: %s/v1/healthz reports k=%d; not a tracksim serve endpoint?", base, health.K)
	}
	fmt.Printf("loadgen: %s — problem=%s alg=%s k=%d eps=%g (%s)\n",
		base, health.Problem, health.Algorithm, health.K, health.Epsilon, health.Status)
	fmt.Printf("traffic: %d workers, %v, readratio=%g, batch=%d, qps=%s\n",
		*workers, *dur, *readRatio, *batch, qpsLabel(*qps))

	var (
		reads, writes, httpErrs, written int64
		valueSeq                         int64 // globally distinct values for rank streams
	)
	// Per-worker pacing: each worker owns 1/workers of the target rate.
	var interval time.Duration
	if *qps > 0 {
		interval = time.Duration(float64(time.Second) * float64(*workers) / *qps)
	}
	perWorker := make([][]time.Duration, *workers)
	deadline := time.Now().Add(*dur)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.New(*seed + uint64(w)*0x9e3779b97f4a7c15)
			itemFn := workload.ZipfItems(*items, *zipfAlpha, rng.Split())
			lats := make([]time.Duration, 0, 4096)
			next := time.Now()
			for i := 0; time.Now().Before(deadline); i++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				isRead := rng.Float64() < *readRatio
				start := time.Now()
				var status int
				var err error
				if isRead {
					status, err = doRead(client, base, health.Problem, itemFn(i), rng)
				} else {
					v := float64(atomic.AddInt64(&valueSeq, int64(*batch)))
					body := fmt.Sprintf(`{"site":%d,"item":%d,"value":%g,"count":%d}`,
						rng.Intn(health.K), itemFn(i), v, *batch)
					status, err = doPost(client, base+"/v1/observe", body)
				}
				lats = append(lats, time.Since(start))
				switch {
				case err != nil || status >= 400:
					atomic.AddInt64(&httpErrs, 1)
				case isRead:
					atomic.AddInt64(&reads, 1)
				default:
					atomic.AddInt64(&writes, 1)
					atomic.AddInt64(&written, int64(*batch))
				}
			}
			perWorker[w] = lats
		}(w)
	}
	wg.Wait()

	var all []time.Duration
	for _, l := range perWorker {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := int64(len(all))
	fmt.Printf("\nrequests:  %d total (%d reads, %d writes, %d errors) — %.0f req/s achieved\n",
		total, reads, writes, httpErrs, float64(total)/dur.Seconds())
	fmt.Printf("ingested:  %d elements acknowledged\n", written)
	if total > 0 {
		fmt.Printf("latency:   p50 %v  p90 %v  p99 %v  max %v\n",
			percentile(all, 0.50), percentile(all, 0.90),
			percentile(all, 0.99), all[len(all)-1])
	}
	if httpErrs > 0 && total > 0 && httpErrs*5 > total {
		fatalf("loadgen: %d of %d requests failed", httpErrs, total)
	}
	if *check {
		checkCount(client, base, health.Epsilon)
	}
}

func qpsLabel(qps float64) string {
	if qps <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%g", qps)
}

// doRead issues one problem-appropriate query. Rank deployments alternate
// rank and quantile probes, driven by the rng.
func doRead(client *http.Client, base, problem string, item int64, rng *stats.RNG) (int, error) {
	var url string
	switch problem {
	case "freq":
		url = fmt.Sprintf("%s/v1/freq?item=%d", base, item)
	case "rank":
		if rng.Bernoulli(0.5) {
			url = fmt.Sprintf("%s/v1/quantile?phi=%.3f", base, rng.Float64())
		} else {
			url = fmt.Sprintf("%s/v1/rank?value=%g", base, rng.Float64()*1e6)
		}
	default:
		url = base + "/v1/count"
	}
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func doPost(client *http.Client, url, body string) (int, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// checkCount is loadgen's accuracy gate: flush (everything-observed
// barrier, where the deployment supports it), read the server's own
// arrival count as ground truth, and require /v1/count within ε of it.
func checkCount(client *http.Client, base string, eps float64) {
	// A 404 is fine: distributed deployments ingest on the site processes
	// and have no flush surface; their Done/Progress frames keep arrivals
	// current instead.
	if status, err := doPost(client, base+"/v1/flush", ""); err != nil {
		fatalf("check: flush: %v", err)
	} else if status != http.StatusOK && status != http.StatusNotFound {
		fatalf("check: flush: status %d", status)
	}
	health, err := fetchHealth(client, base)
	if err != nil {
		fatalf("check: %v", err)
	}
	if health.Arrivals == 0 {
		fatalf("check: server reports 0 arrivals — no traffic landed")
	}
	resp, err := client.Get(base + "/v1/count")
	if err != nil {
		fatalf("check: count: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Println("check: skipped (deployment has no count query)")
		return
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("check: count: status %d", resp.StatusCode)
	}
	var doc struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		fatalf("check: count: %v", err)
	}
	truth := float64(health.Arrivals)
	rel := math.Abs(doc.Estimate-truth) / truth
	if rel > eps {
		fatalf("CHECK FAIL: estimate %.0f vs %d arrivals — relative error %.4f > ε=%g",
			doc.Estimate, health.Arrivals, rel, eps)
	}
	fmt.Printf("LOADGEN CHECK OK: estimate %.0f vs %d arrivals (relative error %.4f <= ε=%g)\n",
		doc.Estimate, health.Arrivals, rel, eps)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
