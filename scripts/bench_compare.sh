#!/usr/bin/env sh
# bench_compare.sh — compare two BENCH_<stamp>.json snapshots (as written by
# scripts/bench.sh) benchmark by benchmark, benchstat-style, and gate on
# ingestion-throughput regressions.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [gate-regex] [threshold-pct]
#
# Prints old/new ns/op and the delta for every benchmark present in both
# snapshots. Exits non-zero when any benchmark matching gate-regex regresses
# by more than threshold-pct percent ns/op (default 10). The default gate
# covers the ingestion suites (Observe*/RankObserve*, including the
# ObserveTransport/ObserveBatchTransport cross-transport family), the
# concurrent-ingest path (MultiProducerIngest*), the merge-tree suite, and
# the wire codec round trip. Uses `benchstat` for the pretty report when it
# is installed; the gate itself has no dependencies beyond POSIX sh + awk.
set -eu

if [ "$#" -lt 2 ]; then
	echo "usage: $0 OLD.json NEW.json [gate-regex] [threshold-pct]" >&2
	exit 2
fi
OLD="$1"
NEW="$2"
GATE="${3:-^Benchmark(Observe|ObserveTransport|ObserveBatchTransport|RankObserve|MultiProducerIngest|Merge|WireRoundTrip|TreeFanIn)}"
THRESHOLD="${4:-10}"

# extract <file> — recover the raw `go test -bench` lines from the snapshot.
extract() {
	sed -n 's/^[[:space:]]*"\(Benchmark.*\)",\{0,1\}$/\1/p' "$1"
}

if command -v benchstat >/dev/null 2>&1; then
	OLDTXT="$(mktemp)" NEWTXT="$(mktemp)"
	trap 'rm -f "$OLDTXT" "$NEWTXT"' EXIT
	extract "$OLD" >"$OLDTXT"
	extract "$NEW" >"$NEWTXT"
	benchstat "$OLDTXT" "$NEWTXT" || true
fi

{ extract "$OLD" | sed 's/^/OLD /'; extract "$NEW" | sed 's/^/NEW /'; } | awk -v gate="$GATE" -v thr="$THRESHOLD" '
{
	which = $1
	name = $2
	ns = ""
	for (i = 3; i <= NF; i++) if ($i == "ns/op") { ns = $(i - 1); break }
	if (ns == "") next
	if (which == "OLD") old[name] = ns
	else new[name] = ns
}
END {
	worst = 0
	printf "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
	for (name in new) {
		if (!(name in old)) continue
		delta = (new[name] - old[name]) / old[name] * 100
		mark = ""
		if (name ~ gate) {
			mark = " [gated]"
			if (delta > worst) worst = delta
			if (delta > thr) mark = " [REGRESSION]"
		}
		printf "%-55s %14s %14s %+8.1f%%%s\n", name, old[name], new[name], delta, mark
	}
	printf "worst gated delta: %+.1f%% (threshold +%s%%)\n", worst, thr
	if (worst > thr) exit 1
}
' || { echo "bench_compare: ns/op regression above ${THRESHOLD}% in gated benchmarks" >&2; exit 1; }
