#!/bin/sh
# Real-process coordinator-crash drill: a distributed run (one serve
# process, two connect processes over loopback TCP) whose coordinator is
# SIGKILLed mid-stream — no shutdown hook, no final snapshot — and then
# resumed from its durable -wal store by a fresh serve -resume process.
# The sites ride the outage through their reconnection loops. Passes when
# the resumed coordinator reports every streamed element accounted for in
# the sites' Done frames.
#
#   sh scripts/coordcrash.sh [port]
#
# Exits non-zero on any divergence. Used by CI's chaos job; runnable
# locally anytime (needs only the go toolchain and a free loopback port).
set -eu

PORT="${1:-7177}"
ADDR="127.0.0.1:$PORT"
K=2
N=40000000 # per site; big enough that the kill below lands mid-stream
DIR="$(mktemp -d)"
BIN="$DIR/tracksim"
trap 'kill -9 $SRV_PID $C0_PID $C1_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT
SRV_PID=; C0_PID=; C1_PID=

go build -o "$BIN" ./cmd/tracksim

"$BIN" serve -addr "$ADDR" -k $K -report 0 -rejoinwait 10s \
    -wal "$DIR/wal" -snapevery 256 >"$DIR/s1.log" 2>&1 &
SRV_PID=$!
sleep 0.5

# -redialattempts 600 at the default 50ms spacing gives each site a ~30s
# redial budget, plenty to ride out the kill-to-resume gap.
"$BIN" connect -addr "$ADDR" -k $K -site 0 -n $N \
    -redialattempts 600 >"$DIR/c0.log" 2>&1 &
C0_PID=$!
"$BIN" connect -addr "$ADDR" -k $K -site 1 -n $N \
    -redialattempts 600 >"$DIR/c1.log" 2>&1 &
C1_PID=$!

sleep 1
# The crash: abrupt, nothing flushed beyond the WAL. If the kill misses
# (the run already finished), the drill proved nothing — fail loudly so
# the N above gets raised rather than silently passing.
kill -9 "$SRV_PID" 2>/dev/null || {
    echo "coordcrash: run finished before the kill; raise N" >&2
    exit 1
}
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=

"$BIN" serve -addr "$ADDR" -k $K -report 0 -rejoinwait 10s \
    -wal "$DIR/wal" -snapevery 256 -resume >"$DIR/s2.log" 2>&1 &
SRV_PID=$!

fail() {
    echo "coordcrash: $1" >&2
    echo "--- s1.log ---" >&2; cat "$DIR/s1.log" >&2
    echo "--- s2.log ---" >&2; cat "$DIR/s2.log" >&2
    echo "--- c0.log ---" >&2; cat "$DIR/c0.log" >&2
    echo "--- c1.log ---" >&2; cat "$DIR/c1.log" >&2
    exit 1
}

wait "$C0_PID" || fail "site 0 exited non-zero"
C0_PID=
wait "$C1_PID" || fail "site 1 exited non-zero"
C1_PID=
wait "$SRV_PID" || fail "resumed serve exited non-zero"
SRV_PID=

grep -q "all $K sites finished" "$DIR/s2.log" || fail "resumed run did not finish cleanly"
WANT=$((K * N))
grep -q "arrivals (from site Done frames): $WANT" "$DIR/s2.log" ||
    fail "resumed run lost arrivals (want $WANT)"
grep -q "^durability: " "$DIR/s2.log" || fail "no durability report"

echo "COORDCRASH OK: coordinator SIGKILLed mid-run, resumed from WAL, $WANT arrivals accounted"
