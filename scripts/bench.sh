#!/usr/bin/env sh
# bench.sh — run the benchmark suite and snapshot the results as JSON so the
# performance trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                 # full suite -> BENCH_<stamp>.json
#   scripts/bench.sh ObserveBatch    # filtered   -> BENCH_<stamp>.json
#
# The snapshot records the raw `go test -bench` lines (which carry both
# ns/op and the protocol-cost custom metrics) plus the environment. The
# suite includes the BenchmarkMultiProducerIngest* family (E17), so every
# snapshot tracks concurrent-frontend ingest throughput — serial baseline
# vs p=1/2/8 producer goroutines — across PRs. Compare
# two snapshots with e.g.:
#   diff <(jq -r .results[] BENCH_a.json) <(jq -r .results[] BENCH_b.json)
set -eu

cd "$(dirname "$0")/.."

FILTER="${1:-.}"
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
OUT="BENCH_${STAMP}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$FILTER" -benchmem -benchtime "${BENCHTIME:-1s}" . | tee "$RAW"

{
	printf '{\n'
	printf '  "stamp": "%s",\n' "$STAMP"
	printf '  "filter": "%s",\n' "$FILTER"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "results": [\n'
	grep '^Benchmark' "$RAW" | sed 's/\\/\\\\/g; s/"/\\"/g; s/.*/    "&"/' | sed '$!s/$/,/'
	printf '  ]\n'
	printf '}\n'
} >"$OUT"

echo "wrote $OUT"
