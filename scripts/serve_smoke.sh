#!/bin/sh
# Serving smoke drill: boot a single-process tracker-as-a-service
# (`tracksim serve -local`), point `tracksim loadgen` at it with a mixed
# read/write workload and -check (flush, then compare /v1/count against
# the acknowledged arrival total), curl every query endpoint asserting
# the documented status codes — unsupported queries must 404, never 500 —
# and require a parseable Prometheus exposition. Finishes with SIGINT and
# expects the graceful drain to exit cleanly.
#
#   sh scripts/serve_smoke.sh [port]
#
# Exits non-zero on any divergence. Used by CI's serve smoke step;
# runnable locally anytime (needs the go toolchain, curl, and a free
# loopback port).
set -eu

PORT="${1:-7981}"
ADDR="127.0.0.1:$PORT"
DIR="$(mktemp -d)"
BIN="$DIR/tracksim"
trap 'kill -9 $SRV_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT
SRV_PID=

go build -o "$BIN" ./cmd/tracksim

"$BIN" serve -local -http "$ADDR" -problem count -alg deterministic \
    -k 8 -eps 0.1 >"$DIR/serve.log" 2>&1 &
SRV_PID=$!

# Wait for the API to come up.
i=0
until curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve_smoke: server never became healthy" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Mixed traffic + correctness check (loadgen fails the run itself if the
# flushed estimate leaves the ε band around the acknowledged arrivals).
"$BIN" loadgen -addr "$ADDR" -duration 3s -workers 4 -qps 2000 \
    -readratio 0.3 -check

code() { # code METHOD PATH [BODY] -> HTTP status
    if [ "$1" = POST ] && [ $# -ge 3 ]; then
        curl -s -o /dev/null -w '%{http_code}' -X POST -d "$3" "http://$ADDR$2"
    elif [ "$1" = POST ]; then
        curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR$2"
    else
        curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$2"
    fi
}

expect() { # expect WANT GOT LABEL
    if [ "$2" != "$1" ]; then
        echo "serve_smoke: $3 returned $2, want $1" >&2
        exit 1
    fi
}

expect 200 "$(code GET /v1/healthz)" "healthz"
expect 200 "$(code GET /v1/count)" "count"
expect 200 "$(code GET /metrics)" "metrics"
expect 200 "$(code POST /v1/observe '{"site":0,"count":3}')" "observe"
expect 200 "$(code POST /v1/flush)" "flush"
# A count deployment has no freq/rank/quantile answers: 404, never 500.
expect 404 "$(code GET '/v1/freq?item=1')" "freq on count problem"
expect 404 "$(code GET '/v1/rank?value=1')" "rank on count problem"
expect 404 "$(code GET '/v1/quantile?phi=0.5')" "quantile on count problem"
# Malformed parameters are the caller's fault.
expect 400 "$(code POST /v1/observe '{"site":-1}')" "bad site"
expect 405 "$(code GET /v1/observe)" "GET observe"

# The exposition must carry our metric family and only parseable samples.
curl -fsS "http://$ADDR/metrics" >"$DIR/metrics.txt"
grep -q '^disttrack_up 1$' "$DIR/metrics.txt" || {
    echo "serve_smoke: disttrack_up 1 missing from /metrics" >&2
    exit 1
}
grep -q '^disttrack_arrivals_total ' "$DIR/metrics.txt" || {
    echo "serve_smoke: disttrack_arrivals_total missing from /metrics" >&2
    exit 1
}
if grep -v '^#' "$DIR/metrics.txt" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(e[+-][0-9]+)?$' | grep -q .; then
    echo "serve_smoke: unparseable sample line in /metrics:" >&2
    grep -v '^#' "$DIR/metrics.txt" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(e[+-][0-9]+)?$' >&2
    exit 1
fi

# Graceful drain: SIGINT must flush, seal, and exit zero. (The shutdown
# path is bounded — a 10s HTTP drain deadline plus the flush — so wait
# cannot hang; CI's step timeout is the backstop regardless.)
kill -INT "$SRV_PID"
wait "$SRV_PID" && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "serve_smoke: serve exited $RC after SIGINT" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
grep -q 'drained' "$DIR/serve.log" || {
    echo "serve_smoke: no drain line in serve log" >&2
    cat "$DIR/serve.log" >&2
    exit 1
}
SRV_PID=

echo "serve_smoke: OK"
