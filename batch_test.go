package disttrack

import (
	"math"
	"testing"
)

// The batch-ingestion fast path must be indistinguishable from
// element-at-a-time ingestion: sites skip-sample the gap to their next
// message and the runtime splits batches at every message and probe
// boundary, so protocol state, estimates, and the exact Metrics ledger all
// match. These tests feed the same block-structured stream (runs of
// identical (site, item, value) triples, the batch path's natural shape)
// through Observe and ObserveBatch and require identical results for every
// tracker × algorithm combination.

const (
	eqK     = 8
	eqBlock = 64
	eqN     = 32000 // multiple of eqBlock so both paths see the same stream
)

// eqAlgorithms lists every flavor the equivalence suite covers.
var eqAlgorithms = []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling}

func eqOptions(alg Algorithm) Options {
	return Options{K: eqK, Epsilon: 0.05, Algorithm: alg, Seed: 12345}
}

// blockSite returns the site receiving arrival i under block placement.
func blockSite(i int) int { return (i / eqBlock) % eqK }

// blockItem returns the item id of arrival i (runs of eqBlock equal items).
func blockItem(i int) int64 { return int64(i / (2 * eqBlock) % 97) }

// blockValue returns the value of arrival i (runs of eqBlock equal values).
func blockValue(i int) float64 { return float64(i/eqBlock) * 1.25 }

func requireSameMetrics(t *testing.T, seq, bat Metrics) {
	t.Helper()
	if seq != bat {
		t.Fatalf("metrics diverged:\n sequential %+v\n batched    %+v", seq, bat)
	}
}

func requireClose(t *testing.T, what string, a, b float64) {
	t.Helper()
	// Coordinator estimates sum over Go maps, so the float association
	// order can differ between two runs; allow only rounding noise.
	if diff := math.Abs(a - b); diff > 1e-6*(1+math.Abs(a)) {
		t.Fatalf("%s diverged: sequential %v, batched %v", what, a, b)
	}
}

func TestCountBatchEquivalence(t *testing.T) {
	for _, alg := range eqAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			seq := NewCountTracker(eqOptions(alg))
			for i := 0; i < eqN; i++ {
				seq.Observe(blockSite(i))
			}
			bat := NewCountTracker(eqOptions(alg))
			for i := 0; i < eqN; i += eqBlock {
				bat.ObserveBatch(blockSite(i), eqBlock)
			}
			requireClose(t, "estimate", seq.Estimate(), bat.Estimate())
			requireSameMetrics(t, seq.Metrics(), bat.Metrics())
		})
	}
}

func TestCountBatchEquivalenceBoosted(t *testing.T) {
	opt := eqOptions(AlgorithmRandomized)
	opt.Copies = 3
	seq := NewCountTracker(opt)
	for i := 0; i < eqN; i++ {
		seq.Observe(blockSite(i))
	}
	bat := NewCountTracker(opt)
	for i := 0; i < eqN; i += eqBlock {
		bat.ObserveBatch(blockSite(i), eqBlock)
	}
	requireClose(t, "estimate", seq.Estimate(), bat.Estimate())
	requireSameMetrics(t, seq.Metrics(), bat.Metrics())
}

func TestFrequencyBatchEquivalence(t *testing.T) {
	for _, alg := range eqAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			seq := NewFrequencyTracker(eqOptions(alg))
			for i := 0; i < eqN; i++ {
				seq.Observe(blockSite(i), blockItem(i))
			}
			bat := NewFrequencyTracker(eqOptions(alg))
			for i := 0; i < eqN; i += eqBlock {
				bat.ObserveBatch(blockSite(i), blockItem(i), eqBlock)
			}
			for item := int64(0); item < 97; item += 13 {
				requireClose(t, "estimate", seq.Estimate(item), bat.Estimate(item))
			}
			requireSameMetrics(t, seq.Metrics(), bat.Metrics())
		})
	}
}

func TestRankBatchEquivalence(t *testing.T) {
	for _, alg := range eqAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			seq := NewRankTracker(eqOptions(alg))
			for i := 0; i < eqN; i++ {
				seq.Observe(blockSite(i), blockValue(i))
			}
			bat := NewRankTracker(eqOptions(alg))
			for i := 0; i < eqN; i += eqBlock {
				bat.ObserveBatch(blockSite(i), blockValue(i), eqBlock)
			}
			for _, q := range []float64{10, 100, 250, 400} {
				requireClose(t, "rank", seq.Rank(q), bat.Rank(q))
			}
			requireSameMetrics(t, seq.Metrics(), bat.Metrics())
		})
	}
}

// TestBatchEquivalenceConcurrent drives the goroutine-per-site runtime's
// batch path and checks it against the sequential simulator: both host the
// same deterministic state machines under the instant-communication model,
// so message and word counts must agree exactly.
func TestBatchEquivalenceConcurrent(t *testing.T) {
	opt := eqOptions(AlgorithmRandomized)
	ref := NewCountTracker(opt)
	for i := 0; i < eqN; i += eqBlock {
		ref.ObserveBatch(blockSite(i), eqBlock)
	}
	opt.Concurrent = true
	conc := NewCountTracker(opt)
	defer conc.Close()
	for i := 0; i < eqN; i += eqBlock {
		conc.ObserveBatch(blockSite(i), eqBlock)
	}
	requireClose(t, "estimate", ref.Estimate(), conc.Estimate())
	rm, cm := ref.Metrics(), conc.Metrics()
	if rm.Messages != cm.Messages || rm.Words != cm.Words || rm.Arrivals != cm.Arrivals {
		t.Fatalf("concurrent batch diverged: sim %+v, netsim %+v", rm, cm)
	}
}

// TestRankBatchEquivalenceConcurrent drives the rank trackers' batch path
// on the goroutine-per-site runtime against the sequential simulator, for
// both the randomized tracker (pooled merge summaries) and the
// deterministic baseline (pooled GK snapshots crossing goroutines between
// sites and coordinator); run under -race this also proves the pools'
// hand-off is properly synchronized.
func TestRankBatchEquivalenceConcurrent(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic} {
		t.Run(alg.String(), func(t *testing.T) {
			opt := eqOptions(alg)
			ref := NewRankTracker(opt)
			for i := 0; i < eqN; i += eqBlock {
				ref.ObserveBatch(blockSite(i), blockValue(i), eqBlock)
			}
			opt.Concurrent = true
			conc := NewRankTracker(opt)
			defer conc.Close()
			for i := 0; i < eqN; i += eqBlock {
				conc.ObserveBatch(blockSite(i), blockValue(i), eqBlock)
			}
			for _, q := range []float64{10, 100, 250, 400} {
				requireClose(t, "rank", ref.Rank(q), conc.Rank(q))
			}
			rm, cm := ref.Metrics(), conc.Metrics()
			if rm.Messages != cm.Messages || rm.Words != cm.Words || rm.Arrivals != cm.Arrivals {
				t.Fatalf("concurrent rank batch diverged: sim %+v, netsim %+v", rm, cm)
			}
		})
	}
}

// TestObserveBatchMatchesLoopTail exercises ragged batch sizes (not aligned
// with probe boundaries or block structure) against single Observes.
func TestObserveBatchMatchesLoopTail(t *testing.T) {
	opt := eqOptions(AlgorithmRandomized)
	seq := NewCountTracker(opt)
	bat := NewCountTracker(opt)
	sizes := []int{1, 7, 1023, 1, 5000, 129, 0, 3}
	site := 0
	for _, sz := range sizes {
		for j := 0; j < sz; j++ {
			seq.Observe(site)
		}
		bat.ObserveBatch(site, sz)
		site = (site + 3) % eqK
	}
	requireClose(t, "estimate", seq.Estimate(), bat.Estimate())
	requireSameMetrics(t, seq.Metrics(), bat.Metrics())
}
