package disttrack

import (
	"math"
	"strings"
	"testing"
)

// mustPanic asserts that fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q; want it to contain %q", msg, want)
		}
	}()
	fn()
}

// TestTopologyOptionValidation pins the precise rejection messages for bad
// topology combinations.
func TestTopologyOptionValidation(t *testing.T) {
	base := Options{K: 8, Epsilon: 0.1}

	t.Run("fanout without tree", func(t *testing.T) {
		o := base
		o.Fanout = 4
		mustPanic(t, "Options.Fanout requires Options.Topology == TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("fanout too small", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout = TopologyTree, 1
		mustPanic(t, "Options.Fanout must be >= 2 with TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("fanout missing", func(t *testing.T) {
		o := base
		o.Topology = TopologyTree
		mustPanic(t, "Options.Fanout must be >= 2 with TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("depth inconsistent with k", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout = TopologyTree, 8 // one group: not a tree
		mustPanic(t, "K must exceed Fanout", func() { NewCountTracker(o) })
	})
	t.Run("unknown topology", func(t *testing.T) {
		o := base
		o.Topology = Topology(17)
		mustPanic(t, "unknown Options.Topology", func() { NewCountTracker(o) })
	})
	t.Run("robust x tree", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout, o.Robust = TopologyTree, 4, true
		mustPanic(t, "Options.Robust is incompatible with TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("copies x tree", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout, o.Copies = TopologyTree, 4, 3
		mustPanic(t, "Options.Copies > 1 is incompatible with TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("faultplan x tree", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout = TopologyTree, 4
		o.Transport = TransportGoroutine
		o.FaultPlan = &FaultPlan{Drop: 0.01}
		mustPanic(t, "Options.FaultPlan is incompatible with TopologyTree", func() { NewCountTracker(o) })
	})
	t.Run("deterministic frequency lacks merge path", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout = TopologyTree, 4
		o.Algorithm = AlgorithmDeterministic
		mustPanic(t, "TopologyTree is incompatible with AlgorithmDeterministic frequency tracking", func() { NewFrequencyTracker(o) })
	})
	t.Run("deterministic rank lacks merge path", func(t *testing.T) {
		o := base
		o.Topology, o.Fanout = TopologyTree, 4
		o.Algorithm = AlgorithmDeterministic
		mustPanic(t, "TopologyTree is incompatible with AlgorithmDeterministic rank tracking", func() { NewRankTracker(o) })
	})
}

// TestTopologyStrings pins the enum names (they appear in tracksim flags).
func TestTopologyStrings(t *testing.T) {
	for _, tc := range []struct {
		tp   Topology
		want string
	}{{TopologyFlat, "flat"}, {TopologyTree, "tree"}, {Topology(9), "unknown"}} {
		if got := tc.tp.String(); got != tc.want {
			t.Errorf("Topology(%d).String() = %q, want %q", int(tc.tp), got, tc.want)
		}
	}
}

// treeSmoke runs n round-robin arrivals through a small tree tracker and
// checks the count-style estimate stays within eps of the truth.
func TestTreeCountSmoke(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		t.Run(alg.String(), func(t *testing.T) {
			tr := NewCountTracker(Options{
				K: 16, Epsilon: 0.1, Algorithm: alg, Seed: 7,
				Topology: TopologyTree, Fanout: 4,
			})
			defer tr.Close()
			const n = 20000
			for i := 0; i < n; i++ {
				tr.Observe(i % 16)
			}
			got := tr.Estimate()
			if math.Abs(got-n) > 0.1*n {
				t.Fatalf("tree %s count estimate %.0f; want within 10%% of %d", alg, got, n)
			}
			m := tr.Metrics()
			if m.Arrivals != n {
				t.Fatalf("Arrivals = %d, want %d", m.Arrivals, n)
			}
			if m.Depth != 2 {
				t.Fatalf("Depth = %d, want 2", m.Depth)
			}
			if m.LevelMessages[0] == 0 || m.LevelMessages[1] == 0 {
				t.Fatalf("per-level messages = %v, want both levels nonzero", m.LevelMessages)
			}
			if m.Messages != m.LevelMessages[0]+m.LevelMessages[1] {
				t.Fatalf("Messages = %d, want sum of levels %v", m.Messages, m.LevelMessages)
			}
			if m.LiveSites != 16 {
				t.Fatalf("LiveSites = %d, want 16", m.LiveSites)
			}
		})
	}
}

// TestTreeDeterministicCountAlwaysBound verifies the deterministic tree
// keeps its δ=0 always-guarantee: the estimate is checked at every arrival.
func TestTreeDeterministicCountAlwaysBound(t *testing.T) {
	tr := NewCountTracker(Options{
		K: 12, Epsilon: 0.1, Algorithm: AlgorithmDeterministic,
		Topology: TopologyTree, Fanout: 4,
	})
	defer tr.Close()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Observe(i % 12)
		truth := float64(i + 1)
		if got := tr.Estimate(); math.Abs(got-truth) > 0.1*truth {
			t.Fatalf("at n=%d: estimate %.2f outside eps*n=%.2f", i+1, got, 0.1*truth)
		}
	}
}

// TestTreeFreqRankSmoke exercises the frequency and rank trees end to end.
func TestTreeFreqRankSmoke(t *testing.T) {
	const n = 20000
	t.Run("freq", func(t *testing.T) {
		tr := NewFrequencyTracker(Options{
			K: 16, Epsilon: 0.1, Seed: 11, Topology: TopologyTree, Fanout: 4,
		})
		defer tr.Close()
		// Item 1 gets half the stream, item 2 a quarter, the rest singletons.
		for i := 0; i < n; i++ {
			var item int64
			switch {
			case i%2 == 0:
				item = 1
			case i%4 == 1:
				item = 2
			default:
				item = int64(1000 + i)
			}
			tr.Observe(i%16, item)
		}
		if got := tr.Estimate(1); math.Abs(got-n/2) > 0.1*n {
			t.Fatalf("freq(1) = %.0f, want %d +- %d", got, n/2, n/10)
		}
		if got := tr.Estimate(2); math.Abs(got-n/4) > 0.1*n {
			t.Fatalf("freq(2) = %.0f, want %d +- %d", got, n/4, n/10)
		}
	})
	t.Run("rank", func(t *testing.T) {
		tr := NewRankTracker(Options{
			K: 16, Epsilon: 0.1, Seed: 13, Topology: TopologyTree, Fanout: 4,
		})
		defer tr.Close()
		rng := uint64(1)
		for i := 0; i < n; i++ {
			// xorshift values in (0,1); distinct with probability ~1.
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			v := float64(rng%1000003)/1000003 + float64(i)*1e-9
			tr.Observe(i%16, v)
		}
		if got := tr.Rank(0.5); math.Abs(got-n/2) > 0.1*n {
			t.Fatalf("rank(0.5) = %.0f, want %d +- %d", got, n/2, n/10)
		}
	})
}
