package disttrack

// The flush-boundary suite: the concurrent transports coalesce outbound
// frames (ring-mailbox batch delivery, buffered TCP encoders, vectored
// fan-out writes) and flush at batch edges. Coalescing is purely a wire
// optimization — this suite pins the contract that makes it invisible:
//
//   - per-link FIFO message sequences are bit-identical whether frames
//     travel one-per-write or many-per-write (digest equality across all
//     transports, queried at every single arrival, so any unflushed frame
//     at a query boundary would surface as a divergence);
//   - the fault middleware sees the same message stream either way, so a
//     seeded drop/duplicate/reorder/partition schedule makes identical
//     decisions on the goroutine transport (singleton mailbox puts) and
//     the TCP transport (coalesced frames);
//   - batched ingestion flushes at chunk edges exactly like singleton
//     arrivals flush at injection edges.
//
// Everything here runs under -race in CI (the root package is raced).

import (
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

const (
	flushK    = 4
	flushN    = 600
	flushEps  = 0.1
	flushSeed = 31
)

// runCountEveryArrival queries after every single arrival: a frame still
// sitting unflushed in a transport buffer at any query boundary would
// change the settled state the query observes and break digest equality.
func runCountEveryArrival(t *testing.T, tr Transport) runResult {
	t.Helper()
	c := NewCountTracker(Options{K: flushK, Epsilon: flushEps, Seed: flushSeed,
		Transport: tr})
	defer c.Close()
	tap := newDigestTap(flushK)
	c.eng.SetTap(tap)
	var res runResult
	for i := 0; i < flushN; i++ {
		c.Observe(i % flushK)
		res.answers = append(res.answers, c.Estimate())
	}
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runRankEveryArrival(t *testing.T, tr Transport) runResult {
	t.Helper()
	values := workload.PermValues(flushN, stats.New(flushSeed^0xabc))
	r := NewRankTracker(Options{K: flushK, Epsilon: flushEps, Seed: flushSeed,
		Transport: tr})
	defer r.Close()
	tap := newDigestTap(flushK)
	r.eng.SetTap(tap)
	var res runResult
	for i := 0; i < flushN; i++ {
		r.Observe(i%flushK, values(i))
		res.answers = append(res.answers, r.Rank(float64(flushN)/2))
	}
	res.metrics = r.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

// TestFlushBoundaryEveryArrival maximizes query density: a query after
// every arrival on all three transports. Digests, metrics, and every
// intermediate answer must be identical — the strongest observable form of
// "queries always see a settled backlog".
func TestFlushBoundaryEveryArrival(t *testing.T) {
	runs := []struct {
		name string
		run  func(*testing.T, Transport) runResult
	}{
		{"count", runCountEveryArrival},
		{"rank", runRankEveryArrival},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			compareTransports(t, func(tr Transport) runResult { return r.run(t, tr) })
		})
	}
}

// runCountFaulted runs the count tracker under a fault plan with a digest
// tap installed, capturing the post-middleware per-link sequences.
func runCountFaulted(t *testing.T, tr Transport, plan *FaultPlan, batched bool) (runResult, FaultStats) {
	t.Helper()
	c := NewCountTracker(Options{K: flushK, Epsilon: flushEps, Seed: flushSeed,
		Transport: tr, FaultPlan: plan})
	defer c.Close()
	tap := newDigestTap(flushK)
	c.eng.SetTap(tap)
	var res runResult
	if batched {
		for done := 0; done < flushN; done += 50 {
			c.ObserveBatch((done/50)%flushK, 50)
			res.answers = append(res.answers, c.Estimate())
		}
	} else {
		for i := 0; i < flushN; i++ {
			c.Observe(i % flushK)
			if i%40 == 0 {
				res.answers = append(res.answers, c.Estimate())
			}
		}
	}
	res.answers = append(res.answers, c.Estimate())
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res, c.FaultStats()
}

func runRankFaulted(t *testing.T, tr Transport, plan *FaultPlan) (runResult, FaultStats) {
	t.Helper()
	values := workload.PermValues(flushN, stats.New(flushSeed^0xabc))
	r := NewRankTracker(Options{K: flushK, Epsilon: flushEps, Seed: flushSeed,
		Transport: tr, FaultPlan: plan})
	defer r.Close()
	tap := newDigestTap(flushK)
	r.eng.SetTap(tap)
	var res runResult
	for i := 0; i < flushN; i++ {
		r.Observe(i%flushK, values(i))
		if i%40 == 0 {
			res.answers = append(res.answers, r.Rank(float64(flushN)/2))
		}
	}
	res.answers = append(res.answers, r.Rank(float64(flushN)/2))
	res.metrics = r.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res, r.FaultStats()
}

// compareFaulted runs the same faulted workload on both concurrent
// transports and demands identical digests, metrics, and answers: the
// fault middleware must make the same seeded decisions whether frames
// arrive as singleton mailbox puts (goroutine) or coalesced wire batches
// (TCP).
func compareFaulted(t *testing.T, run func(Transport) (runResult, FaultStats)) {
	t.Helper()
	base, baseStats := run(TransportGoroutine)
	other, otherStats := run(TransportTCP)
	if what, ok := equalResults(base, other); !ok {
		t.Errorf("faulted run diverged between goroutine and tcp: %s", what)
	}
	if baseStats != otherStats {
		t.Errorf("fault schedules diverged: goroutine %+v, tcp %+v", baseStats, otherStats)
	}
}

// TestFlushBoundaryFaultDigests pins the masked-fault stream equality:
// drop, duplicate, and reorder faults fire identically on coalesced and
// singleton delivery.
func TestFlushBoundaryFaultDigests(t *testing.T) {
	plan := &FaultPlan{Seed: 17, Drop: 0.05, Duplicate: 0.05, Reorder: 0.2}
	t.Run("count", func(t *testing.T) {
		t.Parallel()
		var fired FaultStats
		compareFaulted(t, func(tr Transport) (runResult, FaultStats) {
			res, st := runCountFaulted(t, tr, plan, false)
			fired = st
			return res, st
		})
		if fired.Dropped == 0 || fired.Duplicated == 0 || fired.Reordered == 0 {
			t.Fatalf("fault schedule fired nothing: %+v", fired)
		}
	})
	t.Run("rank", func(t *testing.T) {
		t.Parallel()
		var fired FaultStats
		compareFaulted(t, func(tr Transport) (runResult, FaultStats) {
			res, st := runRankFaulted(t, tr, plan)
			fired = st
			return res, st
		})
		if fired.Dropped == 0 || fired.Duplicated == 0 {
			t.Fatalf("fault schedule fired nothing: %+v", fired)
		}
	})
}

// TestFlushBoundaryPartition pins the partition path: a site is killed
// mid-stream and rejoins (dropping its traffic, then resyncing), and the
// full crash/resync message sequence must still be bit-identical between
// the two concurrent transports.
func TestFlushBoundaryPartition(t *testing.T) {
	plan := &FaultPlan{Seed: 19,
		Kills: []SiteKill{{Site: 1, At: flushN / 4, RejoinAt: flushN / 2}}}
	var fired FaultStats
	compareFaulted(t, func(tr Transport) (runResult, FaultStats) {
		res, st := runCountFaulted(t, tr, plan, false)
		fired = st
		return res, st
	})
	if fired.Partitioned == 0 {
		t.Fatalf("kill/rejoin schedule trapped nothing: %+v", fired)
	}
}

// TestFlushBoundaryBatchedFaults covers the chunk-edge flush: batched
// ingestion under masked faults must coalesce without changing the fault
// schedule's view of the stream.
func TestFlushBoundaryBatchedFaults(t *testing.T) {
	plan := &FaultPlan{Seed: 29, Drop: 0.05, Duplicate: 0.05, Reorder: 0.2}
	var fired FaultStats
	compareFaulted(t, func(tr Transport) (runResult, FaultStats) {
		res, st := runCountFaulted(t, tr, plan, true)
		fired = st
		return res, st
	})
	if fired.Dropped == 0 {
		t.Fatalf("fault schedule fired nothing: %+v", fired)
	}
}
