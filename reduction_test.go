package disttrack

import (
	"math"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestFrequencyViaRankReduction(t *testing.T) {
	// The Section 1.2 reduction: frequencies recovered from a rank tracker
	// must match the direct frequency tracker's guarantee (±2εn for a
	// ±εn rank tracker).
	const k = 8
	const eps = 0.1
	const n = 15000
	fr := NewFrequencyViaRank(Options{K: k, Epsilon: eps, Seed: 21}, n)
	rng := stats.New(303)
	items := workload.ZipfItems(40, 1.0, rng)
	truth := map[int64]int64{}
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		j := items(i)
		truth[j]++
		fr.Observe(i%k, j)
		if i%151 == 0 && i > 0 {
			for _, q := range []int64{0, 1, 7, 39} {
				checks++
				if math.Abs(fr.Estimate(q)-float64(truth[q])) > 2*eps*float64(i+1) {
					bad++
				}
			}
		}
	}
	if frac := float64(bad) / float64(checks); frac > 0.10 {
		t.Fatalf("reduction: %.1f%% of checks failed", 100*frac)
	}
}

func TestFrequencyViaRankDeterministicFlavor(t *testing.T) {
	// The reduction works for any rank tracker; with the deterministic one
	// the result is deterministic too.
	const k = 4
	const eps = 0.1
	const n = 5000
	fr := NewFrequencyViaRank(Options{K: k, Epsilon: eps,
		Algorithm: AlgorithmDeterministic}, n)
	truth := map[int64]int64{}
	for i := 0; i < n; i++ {
		j := int64(i % 5)
		truth[j]++
		fr.Observe(i%k, j)
		if i%97 == 0 && i > 0 {
			for q := int64(0); q < 5; q++ {
				if math.Abs(fr.Estimate(q)-float64(truth[q])) > 2*eps*float64(i+1)+float64(k) {
					t.Fatalf("det reduction off at %d for item %d", i, q)
				}
			}
		}
	}
}

func TestFrequencyViaRankValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero multiplicity did not panic")
			}
		}()
		NewFrequencyViaRank(Options{K: 2, Epsilon: 0.1}, 0)
	}()
	fr := NewFrequencyViaRank(Options{K: 2, Epsilon: 0.1}, 2)
	fr.Observe(0, 3)
	fr.Observe(0, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("multiplicity overflow did not panic")
			}
		}()
		fr.Observe(0, 3)
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("negative item did not panic")
		}
	}()
	fr.Observe(0, -1)
}

func TestFrequencyViaRankUnseenItem(t *testing.T) {
	fr := NewFrequencyViaRank(Options{K: 2, Epsilon: 0.2}, 100)
	for i := 0; i < 50; i++ {
		fr.Observe(i%2, 1)
	}
	if est := fr.Estimate(99); math.Abs(est) > 0.2*50+1 {
		t.Fatalf("unseen item estimate %v too large", est)
	}
}
