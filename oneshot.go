package disttrack

import (
	"disttrack/internal/oneshot"
	"disttrack/internal/stats"
)

// OneShotResult reports the communication cost of a one-shot computation in
// words (k-party communication model, Section 1.3 of the paper).
type OneShotResult struct {
	Words int64
}

// OneShotCount sums per-site counts: the trivial one-shot protocol
// (k words). It exists mostly as the reference point against which the
// paper's count-tracking cost is compared.
func OneShotCount(siteCounts []int64) (int64, OneShotResult) {
	total, res := oneshot.Count(siteCounts)
	return total, OneShotResult{Words: res.Words}
}

// OneShotFrequencies computes ε-approximate frequencies of the union of the
// given per-site multisets with the randomized O(√k/ε)-word protocol of
// [14] (probability-proportional-to-size reporting of exact local counts).
// The returned estimator is unbiased with standard deviation at most ε·n
// per queried item.
func OneShotFrequencies(streams [][]int64, eps float64, seed uint64) (func(item int64) float64, OneShotResult) {
	est, res := oneshot.FreqRand(streams, eps, stats.New(seed))
	return est, OneShotResult{Words: res.Words}
}

// OneShotFrequenciesDeterministic computes ε-approximate frequencies by
// merging per-site Misra–Gries summaries: Θ(k/ε) words, error at most ε·n
// always (underestimates only).
func OneShotFrequenciesDeterministic(streams [][]int64, eps float64) (func(item int64) int64, OneShotResult) {
	est, res := oneshot.FreqDet(streams, eps)
	return est, OneShotResult{Words: res.Words}
}

// OneShotRanks computes an ε-approximate rank oracle over the union of the
// given per-site value sets with the randomized O(√k/ε)-word protocol of
// [13] (random-shift systematic sampling of each site's sorted data).
// Unbiased; standard deviation at most ε·n/2.
func OneShotRanks(streams [][]float64, eps float64, seed uint64) (func(x float64) float64, OneShotResult) {
	rank, res := oneshot.RankRand(streams, eps, stats.New(seed))
	return rank, OneShotResult{Words: res.Words}
}

// OneShotRanksDeterministic merges per-site Greenwald–Khanna summaries:
// O(k/ε·log(εn)) words, rank error at most ε·n always.
func OneShotRanksDeterministic(streams [][]float64, eps float64) (func(x float64) int64, OneShotResult) {
	rank, res := oneshot.RankDet(streams, eps)
	return rank, OneShotResult{Words: res.Words}
}
