// Package disttrack is a library for continuous tracking of aggregates over
// distributed data streams, implementing the randomized algorithms of
//
//	Zengfeng Huang, Ke Yi, Qin Zhang.
//	"Randomized Algorithms for Tracking Distributed Count, Frequencies,
//	and Ranks." PODS 2012 (arXiv:1108.3413).
//
// The model: k sites each receive a stream of elements; a coordinator must
// maintain, at ALL times, an ε-approximation of an aggregate of the union of
// the streams, while minimizing communication. The package provides three
// trackers:
//
//   - CountTracker  — n(t) = total number of elements (Section 2);
//   - FrequencyTracker — per-item frequencies with ±εn error (Section 3);
//   - RankTracker   — ranks/quantiles with ±εn error (Section 4);
//
// each in three interchangeable flavors (AlgorithmRandomized — the paper's
// O(√k/ε·logN) protocols; AlgorithmDeterministic — the optimal deterministic
// Θ(k/ε·logN) baselines; AlgorithmSampling — the continuous-sampling
// baseline [9] with O(1/ε²·logN) cost), plus exact communication accounting
// in the paper's message/word units.
//
// Randomized trackers guarantee, at any single time instant, an error of at
// most ε·n with probability at least 0.9; CountTracker additionally offers
// median boosting (Options.Copies) for an all-instants guarantee.
// Deterministic trackers guarantee ε·n always.
//
// # Quick start
//
//	tr := disttrack.NewCountTracker(disttrack.Options{K: 8, Epsilon: 0.05})
//	for i := 0; i < 100000; i++ {
//		tr.Observe(i % 8) // element arrives at site i%8
//	}
//	fmt.Println(tr.Estimate(), tr.Metrics().Messages)
//
// # Transports
//
// A tracker mounts its protocol on one of three interchangeable transports
// (Options.Transport). All three enforce the paper's instant-communication
// model — Observe returns only after the triggered message cascade has
// fully quiesced — so for a fixed seed they produce identical message
// sequences, Metrics, and query answers:
//
//   - TransportSequential (default): everything runs inline on the calling
//     goroutine with exact, deterministic cost accounting;
//   - TransportGoroutine: one goroutine per site plus one for the
//     coordinator, connected by mailboxes;
//   - TransportTCP: one loopback TCP connection per site; every protocol
//     message crosses the kernel as a length-prefixed frame carrying its
//     binary wire encoding (internal/wire).
//
// Call Close when done to release a concurrent transport's goroutines and
// sockets. For genuinely distributed deployments — a coordinator process
// and k site processes exchanging the same wire frames over a real
// network — see cmd/tracksim's serve and connect modes.
package disttrack

import (
	"fmt"
	"math"

	"disttrack/internal/ingest"
	"disttrack/internal/netsim"
	"disttrack/internal/persist"
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/faulty"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/sim"
)

// Algorithm selects a protocol flavor.
type Algorithm int

const (
	// AlgorithmRandomized is the paper's randomized protocol:
	// O(√k/ε·logN) communication, per-instant 0.9 success probability.
	AlgorithmRandomized Algorithm = iota
	// AlgorithmDeterministic is the optimal deterministic baseline:
	// Θ(k/ε·logN) communication, errors bounded always.
	AlgorithmDeterministic
	// AlgorithmSampling is continuous distributed sampling [9]:
	// O(1/ε²·logN) communication independent of k; one sample answers
	// count, frequency, and rank queries.
	AlgorithmSampling
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmRandomized:
		return "randomized"
	case AlgorithmDeterministic:
		return "deterministic"
	case AlgorithmSampling:
		return "sampling"
	default:
		return "unknown"
	}
}

// Transport selects the message fabric a tracker's protocol runs on. All
// transports preserve the paper's instant-communication model and produce
// identical results for a fixed seed; they differ in how messages move.
type Transport int

const (
	// TransportSequential runs everything inline on the calling goroutine:
	// the deterministic exact-accounting reference (internal/sim).
	TransportSequential Transport = iota
	// TransportGoroutine runs each site and the coordinator as goroutines
	// connected by mailboxes (internal/netsim).
	TransportGoroutine
	// TransportTCP connects each site to the coordinator over a loopback
	// TCP socket carrying wire-encoded message frames (internal/runtime).
	TransportTCP
)

// String names the transport.
func (t Transport) String() string {
	switch t {
	case TransportSequential:
		return "sequential"
	case TransportGoroutine:
		return "goroutine"
	case TransportTCP:
		return "tcp"
	default:
		return "unknown"
	}
}

// Topology selects the coordination structure between the K sites and the
// query-answering coordinator.
type Topology int

const (
	// TopologyFlat is the paper's star: every site talks directly to the
	// coordinator. The zero value, and zero-cost — nothing changes on the
	// flat path.
	TopologyFlat Topology = iota
	// TopologyTree shards the K sites into ⌈K/Fanout⌉ groups, each run by
	// an aggregator that plays the coordinator-side protocol against its
	// group and the site-side protocol against the root, re-expressing the
	// absorbed reports as virtual arrivals. Queries are answered by the
	// root; each level runs at the split error budget (1+ε)^(1/2)−1, so the
	// compounded error stays within ε. The root's fan-in then scales with
	// the number of groups instead of K — the hierarchy that takes k from
	// dozens to thousands of sites. Requires Fanout >= 2 and K > Fanout,
	// and a tracker/algorithm whose summaries re-aggregate (the randomized
	// trackers, the sampling baseline, and the deterministic count
	// baseline; the deterministic frequency/rank baselines have no merge
	// path and are rejected).
	TopologyTree
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopologyFlat:
		return "flat"
	case TopologyTree:
		return "tree"
	default:
		return "unknown"
	}
}

// Options configures a tracker.
type Options struct {
	// K is the number of sites (required, >= 1).
	K int
	// Epsilon is the target relative error (required, in (0,1)).
	Epsilon float64
	// Algorithm selects the protocol; zero value is AlgorithmRandomized.
	Algorithm Algorithm
	// Seed makes randomized protocols reproducible; 0 is a valid seed.
	Seed uint64
	// Copies enables median boosting for the randomized algorithm of every
	// tracker (count, frequency, and rank): that many independent protocol
	// copies run side by side and queries return the median answer,
	// upgrading the per-instant guarantee to all instants (Section 1.2).
	// 0 or 1 means no boosting. Ignored by the deterministic and sampling
	// algorithms, whose guarantees already hold at all instants.
	Copies int
	// Robust switches CountTracker to the adversarially robust variant of
	// the randomized protocol (internal/robust, after arXiv 2311.00346):
	// every communicated counter carries calibrated site-side noise and
	// answers are published through a sparse-vector-style released
	// estimate, so the ε guarantee survives an adaptive adversary that
	// chooses arrivals after observing answers (see RunAttack for the
	// attack this defends against). Communication stays within a constant
	// factor of the oblivious √k/ε·logN bound. Requires
	// AlgorithmRandomized and Copies <= 1; only CountTracker supports it.
	Robust bool
	// Rescale divides Epsilon inside randomized protocols to sharpen the
	// success probability at proportional communication cost; 0 means the
	// paper's constant (3). Set 1 for shape benchmarks where both
	// algorithm families should run at the same nominal ε.
	Rescale float64
	// Transport selects the message fabric; zero value is
	// TransportSequential.
	Transport Transport
	// Topology selects the coordination structure; zero value is
	// TopologyFlat (the paper's star). TopologyTree shards the sites under
	// ⌈K/Fanout⌉ aggregators and answers queries at the root of the
	// resulting two-level tree; every level runs on the transport selected
	// above. See Topology for the compatibility rules.
	Topology Topology
	// Fanout is the number of sites per aggregator group; required (>= 2,
	// < K) with TopologyTree and rejected otherwise.
	Fanout int
	// Concurrent is the legacy switch for TransportGoroutine, kept for
	// compatibility. It applies whenever Transport holds its zero value
	// (TransportSequential is the zero value, so Transport cannot override
	// Concurrent back to sequential — clear Concurrent instead); any other
	// Transport wins over it.
	Concurrent bool
	// SpaceProbeEvery controls how often per-site space is sampled at
	// quiescent instants (0 = default 1024 arrivals).
	SpaceProbeEvery int
	// ConcurrentIngest makes the tracker safe for concurrent use: any
	// number of goroutines may call Observe/ObserveBatch and the query
	// methods simultaneously, on any transport. Producers stage arrivals
	// into per-site buffers that coalesce consecutive same-item arrivals
	// into runs; a single drainer goroutine feeds the transport through the
	// batch fast path, and queries run at quiescent instants between
	// cascades. Estimates keep the ε guarantees of a serial run (the
	// interleaving across sites follows the producers' schedule, exactly as
	// the paper's k independent streams would); call Flush for an
	// everything-staged-so-far barrier before a query. Close drains the
	// buffers before shutting the transport down.
	ConcurrentIngest bool
	// IngestBuffer bounds each site's staging buffer in coalesced runs
	// (0 = default 256). Only meaningful with ConcurrentIngest.
	IngestBuffer int
	// IngestPolicy selects what a full staging buffer does to a producer:
	// IngestBlock (default) applies backpressure, IngestDrop sheds load and
	// counts the discarded elements in Metrics.Dropped. Only meaningful
	// with ConcurrentIngest.
	IngestPolicy IngestPolicy
	// FaultPlan injects seeded, deterministic network faults — drops,
	// duplicates, reorders, delays, site kill/rejoin partitions — into the
	// transport's message layer (internal/runtime/faulty). It requires a
	// concurrent transport (TransportGoroutine or TransportTCP): the
	// sequential simulator has no message layer to perturb. See FaultPlan
	// for the fault model and its guarantees.
	FaultPlan *FaultPlan
	// Persist, when non-nil, makes the coordinator's state durable: every
	// coordinator-bound protocol message is appended to the store's
	// write-ahead log before the coordinator applies it, and the log is
	// periodically compacted into a snapshot of the coordinator's state —
	// so a crashed coordinator rebuilds bit-identical state by loading the
	// snapshot and replaying the log tail (all protocol randomness lives
	// site-side, making the coordinator a deterministic function of the
	// logged delivery sequence). Use NewMemStore for in-memory durability
	// drills or OpenDiskStore for a directory that survives process
	// crashes. The tracker wires the store but does not own it: Close
	// leaves it loadable; a write failure mid-run panics (continuing would
	// silently void the durability contract). Works on every transport.
	// When disabled (nil), the observation hot path is untouched.
	Persist PersistStore
	// SnapshotEvery is the snapshot cadence in logged coordinator-bound
	// frames (0 = the persistence layer's default, 4096). Smaller values
	// bound crash-recovery replay tighter at more serialization cost.
	// Requires Persist.
	SnapshotEvery int
}

// PersistStore is the pluggable durability backend for Options.Persist: an
// append-only write-ahead log of coordinator-bound frames plus an
// atomically installed coordinator-state snapshot (internal/persist.Store).
type PersistStore = persist.Store

// NewMemStore returns an in-memory PersistStore: durable across an
// in-process coordinator restart, gone with the process. Meant for tests
// and crash drills.
func NewMemStore() PersistStore { return persist.NewMem() }

// OpenDiskStore opens (creating it if needed) a directory-backed
// PersistStore whose contents survive process crashes: an append-only WAL
// file plus generation-numbered, atomically installed snapshot files. The
// error reports a missing, unusable, or unwritable directory.
func OpenDiskStore(dir string) (PersistStore, error) { return persist.OpenDisk(dir) }

// FaultPlan is a seeded, deterministic fault schedule for the transport's
// message layer. The model is a lossy, delaying network under a
// reliability sublayer (ARQ): drops and duplicates are masked exactly-once
// in-order and only cost communication (retransmissions and discarded
// copies are charged to Metrics); reorders perturb delivery within a
// cascade; delays hold frames across whole arrivals; kills partition a
// site for a window of the run, during which Metrics.LiveSites drops and
// queries cover only the live sites' data. Queries always observe a
// settled state: reading a tracker forces the reliability layer to deliver
// everything deliverable first.
type FaultPlan struct {
	// Seed makes the schedule reproducible; equal plans replay bit-for-bit.
	Seed uint64
	// Drop is the per-message loss probability (each loss is recovered by
	// a charged retransmission; in [0,1)).
	Drop float64
	// Duplicate is the per-message duplication probability (the extra copy
	// is charged and discarded by the receiver).
	Duplicate float64
	// Reorder is the per-message probability of holding a frame to the end
	// of its cascade, letting other links' traffic overtake it.
	Reorder float64
	// Delay is the per-message probability of holding a frame for
	// DelayArrivals whole arrivals.
	Delay float64
	// DelayArrivals is the delay length in arrivals (0 means 1).
	DelayArrivals int64
	// MaxHeld bounds each link's hold queue (0 means 8).
	MaxHeld int
	// Kills is the site crash/rejoin schedule.
	Kills []SiteKill
}

// SiteKill cuts one site off for a window of the run (see faulty.Kill).
type SiteKill struct {
	// Site is the site index to cut off.
	Site int
	// At is the global arrival count at which the site dies (> 0).
	At int64
	// RejoinAt is the global arrival count at which it rejoins (> At);
	// 0 means never.
	RejoinAt int64
}

// ParseFaultPlan parses cmd/tracksim's compact -faults spec, e.g.
//
//	drop=0.02,dup=0.01,reorder=0.05,delay=0.1@4,seed=7,kill=1@5000:+3000
//
// into a FaultPlan (see internal/runtime/faulty.ParsePlan for the full
// syntax).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p, err := faulty.ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	fp := &FaultPlan{Seed: p.Seed, Drop: p.Drop, Duplicate: p.Duplicate,
		Reorder: p.Reorder, Delay: p.Delay, DelayArrivals: p.DelayArrivals,
		MaxHeld: p.MaxHeld}
	for _, kl := range p.Kills {
		fp.Kills = append(fp.Kills, SiteKill(kl))
	}
	return fp, nil
}

// plan converts the public form to the injector's.
func (fp *FaultPlan) plan() faulty.Plan {
	p := faulty.Plan{Seed: fp.Seed, Drop: fp.Drop, Duplicate: fp.Duplicate,
		Reorder: fp.Reorder, Delay: fp.Delay, DelayArrivals: fp.DelayArrivals,
		MaxHeld: fp.MaxHeld}
	for _, kl := range fp.Kills {
		p.Kills = append(p.Kills, faulty.Kill(kl))
	}
	return p
}

// FaultStats counts the fault events a tracker's FaultPlan injected so far
// (all zero without a plan).
type FaultStats struct {
	// Dropped frames, each recovered by a Retransmits entry.
	Dropped     int64
	Retransmits int64
	// Duplicated frames, charged and discarded.
	Duplicated int64
	// Reordered frames (held to the end of their cascade).
	Reordered int64
	// Delayed frames (held across arrivals).
	Delayed int64
	// Partitioned frames (trapped behind a killed site).
	Partitioned int64
}

// IngestPolicy selects the backpressure behavior of the concurrent
// ingestion frontend (Options.ConcurrentIngest) when a site's staging
// buffer is full.
type IngestPolicy int

const (
	// IngestBlock makes the producer wait until the drainer frees a slot:
	// lossless backpressure, the default.
	IngestBlock IngestPolicy = iota
	// IngestDrop discards the observation and counts it in
	// Metrics.Dropped: load shedding for callers that prefer latency over
	// completeness.
	IngestDrop
)

// String names the policy.
func (p IngestPolicy) String() string {
	switch p {
	case IngestBlock:
		return "block"
	case IngestDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// transport resolves the effective transport from the new field and the
// legacy Concurrent switch.
func (o Options) transport() Transport {
	if o.Transport == TransportSequential && o.Concurrent {
		return TransportGoroutine
	}
	return o.Transport
}

func (o Options) validate() {
	if o.K <= 0 {
		panic("disttrack: Options.K must be >= 1")
	}
	// The negated form also rejects NaN, which every ordered comparison
	// excludes.
	if !(o.Epsilon > 0 && o.Epsilon < 1) {
		panic("disttrack: Options.Epsilon must be in (0,1)")
	}
	if o.Copies < 0 {
		panic("disttrack: negative Options.Copies")
	}
	if o.Rescale < 0 || math.IsNaN(o.Rescale) {
		panic("disttrack: Options.Rescale must be >= 0 (0 = paper default)")
	}
	if o.Transport < TransportSequential || o.Transport > TransportTCP {
		panic("disttrack: unknown Options.Transport")
	}
	if o.Topology < TopologyFlat || o.Topology > TopologyTree {
		panic("disttrack: unknown Options.Topology")
	}
	if o.Topology == TopologyFlat && o.Fanout != 0 {
		panic("disttrack: Options.Fanout requires Options.Topology == TopologyTree")
	}
	if o.Topology == TopologyTree {
		if o.Fanout < 2 {
			panic("disttrack: Options.Fanout must be >= 2 with TopologyTree (each aggregator needs a real group)")
		}
		if (o.K+o.Fanout-1)/o.Fanout < 2 {
			panic(fmt.Sprintf("disttrack: TopologyTree depth is inconsistent with K: K=%d, Fanout=%d yields a single aggregator group — K must exceed Fanout (use TopologyFlat)", o.K, o.Fanout))
		}
		if o.Robust {
			panic("disttrack: Options.Robust is incompatible with TopologyTree (the robust release calibrates noise against direct site reports; aggregated virtual arrivals would double-count it)")
		}
		if o.Copies > 1 {
			panic("disttrack: Options.Copies > 1 is incompatible with TopologyTree (median boosting multiplexes one flat fabric; run boosted copies as separate trackers)")
		}
		if o.FaultPlan != nil {
			panic("disttrack: Options.FaultPlan is incompatible with TopologyTree (in-process fault injection addresses flat-star links; use cmd/tracksim's distributed chaos mode for tree faults)")
		}
	}
	if o.Robust && o.Algorithm != AlgorithmRandomized {
		panic("disttrack: Options.Robust requires AlgorithmRandomized (the deterministic and sampling baselines have no site-side sampling randomness for the robust mode to protect)")
	}
	if o.Robust && o.Copies > 1 {
		panic("disttrack: Options.Robust is incompatible with Options.Copies > 1 (the robust tracker answers through its own noised release, not a median of copies)")
	}
	if o.SpaceProbeEvery < 0 {
		panic("disttrack: negative Options.SpaceProbeEvery")
	}
	if o.IngestBuffer < 0 {
		panic("disttrack: negative Options.IngestBuffer")
	}
	if o.IngestPolicy < IngestBlock || o.IngestPolicy > IngestDrop {
		panic("disttrack: unknown Options.IngestPolicy")
	}
	// Probability ranges and kill windows are validated by the single
	// authority, faulty.New, when mount installs the plan — still at
	// tracker-construction time. Only the transport constraint is
	// facade-level knowledge.
	if o.FaultPlan != nil && o.transport() == TransportSequential {
		panic("disttrack: Options.FaultPlan requires TransportGoroutine or TransportTCP (the sequential simulator has no message layer to perturb)")
	}
	if o.SnapshotEvery < 0 {
		panic("disttrack: negative Options.SnapshotEvery")
	}
	if o.SnapshotEvery > 0 && o.Persist == nil {
		panic("disttrack: Options.SnapshotEvery requires Options.Persist")
	}
}

// Metrics reports a tracker's accumulated cost in the paper's units.
type Metrics struct {
	// Messages is the total number of messages exchanged (a broadcast
	// counts as K messages).
	Messages int64
	// Words is the total communication volume in words (any integer < N or
	// one element = one word).
	Words int64
	// MessagesUp and MessagesDown split Messages by direction: up is
	// site → coordinator report traffic, down the coordinator's round
	// announcements and broadcast legs back to the sites.
	MessagesUp, MessagesDown int64
	// WordsUp and WordsDown split Words the same way.
	WordsUp, WordsDown int64
	// Broadcasts counts coordinator broadcast operations.
	Broadcasts int64
	// Arrivals is the number of elements observed.
	Arrivals int64
	// MaxSiteSpace is the high-water mark of per-site working space in
	// words, sampled at quiescent instants on every transport (the
	// sequential transport probes every SpaceProbeEvery arrivals; the
	// concurrent transports probe on the same cadence after cascades
	// quiesce, and always when Metrics is read).
	MaxSiteSpace int
	// MaxCoordSpace is the coordinator's high-water space in words.
	MaxCoordSpace int
	// Dropped is the number of elements discarded by the concurrent
	// ingestion frontend under IngestDrop (always 0 otherwise; after a
	// terminal transport failure it also counts the shed residue). Dropped
	// elements never reach the protocol, so they are not part of Arrivals.
	Dropped int64
	// LiveSites is the number of sites currently reachable: K on a healthy
	// run, fewer while an Options.FaultPlan has sites killed. Queries made
	// while LiveSites < K cover only the live sites' recent data (the
	// documented partial-coverage degradation); they recover once the
	// fault plan rejoins the site.
	LiveSites int
	// Snapshots is the number of coordinator-state snapshots written to
	// Options.Persist over the store's lifetime (0 without a store).
	Snapshots int64
	// ReplayedFrames is the number of write-ahead-log frames replayed by
	// the most recent coordinator recovery (0 when no recovery happened).
	ReplayedFrames int64
	// Resyncs counts the site resync replays served: rejoining sites
	// brought to the coordinator's current round by replayed state.
	Resyncs int64
	// Depth is the coordination tree depth: 0 for the flat star, 2 for
	// TopologyTree (sites → aggregators → root).
	Depth int
	// LevelMessages breaks Messages down per tree level with TopologyTree
	// (all zero on the flat star): index 0 is the leaf level (site ↔
	// aggregator traffic, summed over every group), index 1 the root level
	// (aggregator ↔ root traffic — the root's fan-in, the quantity the
	// hierarchy exists to shrink).
	LevelMessages [2]int64
	// LevelWords is the word-count breakdown matching LevelMessages.
	LevelWords [2]int64
}

// metricsFrom converts the runtime seam's ledger into the public form.
func metricsFrom(m runtime.Metrics) Metrics {
	return Metrics{
		Messages:       m.Messages(),
		Words:          m.Words(),
		MessagesUp:     m.MessagesUp,
		MessagesDown:   m.MessagesDown,
		WordsUp:        m.WordsUp,
		WordsDown:      m.WordsDown,
		Broadcasts:     m.Broadcasts,
		Arrivals:       m.Arrivals,
		MaxSiteSpace:   m.MaxSiteSpace,
		MaxCoordSpace:  m.MaxCoordSpace,
		LiveSites:      m.LiveSites,
		Snapshots:      m.Snapshots,
		ReplayedFrames: m.ReplayedFrames,
		Resyncs:        m.Resyncs,
	}
}

// mounted is what mount hands back to the core: the runtime plus the
// optional fault injector and write-ahead logger, and the transport's
// ledger-seeding hook (a concrete method on each fabric, not part of the
// runtime.Transport interface — only coordinator crash-restarts need it).
type mounted struct {
	eng  *runtime.Runtime
	inj  *faulty.Injector
	log  *persist.Logger
	seed func(runtime.Metrics)
}

// mount places a protocol on the transport selected by the options. Every
// transport sits behind the same runtime seam (internal/runtime), so the
// trackers never see which fabric carries their messages. With an
// Options.FaultPlan, the fault-injection middleware is installed on the
// concurrent transport's fabric before any message flows; with an
// Options.Persist, the write-ahead logger is hooked into the transport's
// coordinator-delivery path before any message flows.
func mount(o Options, p proto.Protocol) mounted {
	var t runtime.Transport
	var fab *runtime.Fabric
	var setLog func(func(from int, m proto.Message))
	var seed func(runtime.Metrics)
	switch o.transport() {
	case TransportGoroutine:
		c := netsim.Start(p)
		if o.SpaceProbeEvery > 0 {
			c.SpaceProbeEvery = o.SpaceProbeEvery
		}
		t, fab = c, c.Fabric
		setLog, seed = c.Fabric.SetCoordLog, c.Fabric.SeedLedger
	case TransportTCP:
		c, err := tcp.StartLoopback(p)
		if err != nil {
			panic(fmt.Sprintf("disttrack: mounting TCP transport: %v", err))
		}
		if o.SpaceProbeEvery > 0 {
			c.SpaceProbeEvery = o.SpaceProbeEvery
		}
		t, fab = c, c.Fabric
		setLog, seed = c.Fabric.SetCoordLog, c.Fabric.SeedLedger
	default:
		h := sim.New(p)
		if o.SpaceProbeEvery > 0 {
			h.SpaceProbeEvery = o.SpaceProbeEvery
		}
		t = h
		setLog, seed = h.SetCoordLog, h.SeedLedger
	}
	m := mounted{seed: seed}
	if o.Persist != nil {
		m.log = persist.NewLogger(o.Persist, p.Coord, int64(o.SnapshotEvery), nil)
		setLog(func(from int, msg proto.Message) {
			if err := m.log.Log(from, msg); err != nil {
				panic(fmt.Sprintf("disttrack: write-ahead log: %v", err))
			}
		})
	}
	if o.FaultPlan != nil && fab != nil {
		m.inj = faulty.New(fab, o.FaultPlan.plan())
		fab.SetMiddleware(m.inj)
	}
	m.eng = runtime.New(t)
	return m
}

// mountTree places a proto.Tree on per-level fabrics of the selected
// transport kind (runtime.NewTree). Persistence attaches to the root
// fabric: the root coordinator is a pure function of its delivered
// (from, msg) sequence whether the senders are real sites or aggregators,
// so the flat star's WAL/snapshot machinery carries over unchanged.
func mountTree(o Options, tp proto.Tree) mounted {
	mk := func(p proto.Protocol) (runtime.Transport, error) {
		switch o.transport() {
		case TransportGoroutine:
			c := netsim.Start(p)
			if o.SpaceProbeEvery > 0 {
				c.SpaceProbeEvery = o.SpaceProbeEvery
			}
			return c, nil
		case TransportTCP:
			c, err := tcp.StartLoopback(p)
			if err != nil {
				return nil, err
			}
			if o.SpaceProbeEvery > 0 {
				c.SpaceProbeEvery = o.SpaceProbeEvery
			}
			return c, nil
		default:
			h := sim.New(p)
			if o.SpaceProbeEvery > 0 {
				h.SpaceProbeEvery = o.SpaceProbeEvery
			}
			return h, nil
		}
	}
	tr, err := runtime.NewTree(tp, mk)
	if err != nil {
		panic(fmt.Sprintf("disttrack: mounting tree topology: %v", err))
	}
	m := mounted{}
	if o.Persist != nil {
		m.log = persist.NewLogger(o.Persist, tp.Root.Coord, int64(o.SnapshotEvery), nil)
		tr.SetCoordLog(func(from int, msg proto.Message) {
			if err := m.log.Log(from, msg); err != nil {
				panic(fmt.Sprintf("disttrack: write-ahead log: %v", err))
			}
		})
	}
	m.eng = runtime.New(tr)
	return m
}

// frontend starts the concurrent ingestion frontend over a mounted runtime
// when the options ask for one; nil means the tracker stays single-feeder.
func frontend(o Options, eng *runtime.Runtime) *ingest.Frontend {
	if !o.ConcurrentIngest {
		return nil
	}
	pol := ingest.Block
	if o.IngestPolicy == IngestDrop {
		pol = ingest.Drop
	}
	return ingest.New(eng, o.K, ingest.Options{BufferRuns: o.IngestBuffer, Policy: pol})
}

// core is the engine half shared by all three trackers: the mounted runtime
// plus the optional concurrent ingestion frontend (fe, non-nil iff
// Options.ConcurrentIngest), with the fe-guarded choreography — quiesced
// query snapshots, the Flush barrier, Dropped surfacing, drain-then-close —
// implemented once. The per-element Observe/ObserveBatch branches stay in
// each tracker to keep the serial hot path a straight-line call.
type core struct {
	eng *runtime.Runtime
	fe  *ingest.Frontend
	inj *faulty.Injector // non-nil iff Options.FaultPlan

	// Durability state (zero without Options.Persist): the write-ahead
	// logger, the options and protocol retained so a coordinator
	// crash-restart can remount, the transport's ledger-seeding hook, and
	// the recovery counters surfaced through Metrics.
	log      *persist.Logger
	opt      Options
	prot     proto.Protocol
	seed     func(runtime.Metrics)
	replayed int64
}

// mountCore mounts the protocol and wires the engine half into the core.
func (c *core) mountCore(o Options, p proto.Protocol) {
	c.opt, c.prot = o, p
	m := mount(o, p)
	c.eng, c.inj, c.log, c.seed = m.eng, m.inj, m.log, m.seed
}

// mountCoreTree mounts a tree assembly (TopologyTree) into the core.
func (c *core) mountCoreTree(o Options, tp proto.Tree) {
	c.opt = o
	m := mountTree(o, tp)
	c.eng, c.log = m.eng, m.log
}

// crashRestartCoordinator simulates a coordinator crash and durable restart
// without losing the site machines (the in-process recovery drill, used by
// the chaos tests; cmd/tracksim's serve -resume is the cross-process
// equivalent): the transport is torn down, a freshly constructed
// coordinator — built by newCoord exactly as at the start of the run —
// recovers from Options.Persist (snapshot restore plus write-ahead-log
// replay), and the protocol remounts over the same sites on a fresh
// transport of the same kind, carrying the live cost ledger across. The
// rebuilt coordinator is bit-identical to the crashed one at its last
// logged frame; arrival accounting is exact because the in-process drill
// quiesces before crashing (a real crash instead loses only the in-flight
// window, which replay bounds by SnapshotEvery). Incompatible with
// ConcurrentIngest and FaultPlan — their goroutines hold the transport.
func (c *core) crashRestartCoordinator(newCoord func() proto.Coordinator) (persist.Result, error) {
	if c.opt.Persist == nil {
		return persist.Result{}, fmt.Errorf("disttrack: coordinator crash-restart needs Options.Persist")
	}
	if c.fe != nil || c.inj != nil {
		return persist.Result{}, fmt.Errorf("disttrack: coordinator crash-restart is incompatible with ConcurrentIngest and FaultPlan")
	}
	if c.opt.Topology == TopologyTree {
		return persist.Result{}, fmt.Errorf("disttrack: in-process coordinator crash-restart supports the flat star only; for trees, restart the root as its own process (cmd/tracksim aggregate/serve -resume)")
	}
	ledger := c.eng.Metrics() // quiesces first: the drill crashes at a clean instant
	c.eng.Close()
	fresh := newCoord()
	res, err := persist.Recover(c.opt.Persist, fresh, nil)
	if err != nil {
		return res, err
	}
	c.mountCore(c.opt, proto.Protocol{Coord: fresh, Sites: c.prot.Sites})
	c.log.SeedSnapshots(res.Meta.Snapshots)
	c.seed(ledger)
	c.replayed = res.ReplayedFrames
	return res, nil
}

// FaultStats returns the fault events injected so far by Options.FaultPlan
// (all zero without a plan). Safe to call anytime.
func (c *core) FaultStats() FaultStats {
	if c.inj == nil {
		return FaultStats{}
	}
	return FaultStats(c.inj.Stats())
}

// HealFaults force-opens every FaultPlan partition — including a kill that
// never rejoins — so trapped traffic drains on the next query. Use it to
// end a what-if window early or to recover full coverage before a final
// read. No-op without a plan.
func (c *core) HealFaults() {
	if c.inj != nil {
		c.inj.Heal()
	}
}

// query runs fn against a consistent protocol state: under the frontend's
// quiescent snapshot when concurrent ingestion is on, directly otherwise.
// With a FaultPlan installed it first settles the fault layer's
// deliverable backlog (delayed frames that have not come due), so a query
// always observes everything the faulted network could have delivered —
// only partition-trapped traffic stays out.
func (c *core) query(fn func()) {
	if c.fe != nil {
		c.fe.Query(func() { c.settleFaults(); fn() })
		return
	}
	c.settleFaults()
	fn()
}

// settleFaults forces the fault middleware to deliver everything
// deliverable (Transport.Quiesce's full barrier); no-op without a plan.
func (c *core) settleFaults() {
	if c.inj != nil {
		c.eng.Transport().Quiesce()
	}
}

// Flush blocks until every element staged by Observe/ObserveBatch calls
// that have returned is fully ingested and its message cascade has
// quiesced. Without Options.ConcurrentIngest ingestion is synchronous and
// Flush is a no-op. A non-nil error is terminal: the transport failed
// underneath the concurrent frontend (closed out from under it mid-run),
// staged elements were shed, and the tracker accepts no further
// observations.
func (c *core) Flush() error {
	if c.fe != nil {
		return c.fe.Flush()
	}
	return nil
}

// Metrics returns the accumulated communication and space costs.
func (c *core) Metrics() Metrics {
	var pm Metrics
	read := func() {
		pm = metricsFrom(c.eng.Metrics())
		// Per-level breakdown when the transport is a tree (the eng.Metrics
		// call above has already quiesced it, so the per-fabric reads are
		// consistent).
		if tt, ok := c.eng.Transport().(*runtime.Tree); ok {
			leaf, root := tt.LevelMetrics()
			pm.Depth = 2
			pm.LevelMessages = [2]int64{leaf.Messages(), root.Messages()}
			pm.LevelWords = [2]int64{leaf.Words(), root.Words()}
		}
		// The in-process transports don't track durability themselves; the
		// counter lives on the core's logger. Read it inside the quiescent
		// window so the snapshot count is coherent with the ledger it
		// describes (outside it, the drainer may be mid-snapshot and the
		// count would describe a different instant than the arrivals).
		if c.log != nil {
			pm.Snapshots = c.log.Snapshots()
		}
	}
	if c.fe != nil {
		c.fe.Query(read)
		pm.Dropped = c.fe.Dropped()
	} else {
		read()
	}
	pm.ReplayedFrames = c.replayed
	return pm
}

// Close drains the concurrent ingestion frontend (when enabled) and stops
// the transport's goroutines. Queries remain valid afterwards; Observe
// does not. The returned error is the concurrent frontend's terminal
// error, if the transport failed underneath it mid-run (always nil
// without Options.ConcurrentIngest).
func (c *core) Close() error {
	var err error
	if c.fe != nil {
		err = c.fe.Close()
	}
	c.eng.Close()
	if c.log != nil {
		// Seal the store: a final snapshot and sync make it a clean resume
		// point with nothing left to replay. The transport is down, so the
		// coordinator is quiescent and safe to serialize.
		serr := c.log.Snapshot()
		if serr == nil {
			serr = c.log.Sync()
		}
		if err == nil {
			err = serr
		}
	}
	return err
}
