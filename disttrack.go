// Package disttrack is a library for continuous tracking of aggregates over
// distributed data streams, implementing the randomized algorithms of
//
//	Zengfeng Huang, Ke Yi, Qin Zhang.
//	"Randomized Algorithms for Tracking Distributed Count, Frequencies,
//	and Ranks." PODS 2012 (arXiv:1108.3413).
//
// The model: k sites each receive a stream of elements; a coordinator must
// maintain, at ALL times, an ε-approximation of an aggregate of the union of
// the streams, while minimizing communication. The package provides three
// trackers:
//
//   - CountTracker  — n(t) = total number of elements (Section 2);
//   - FrequencyTracker — per-item frequencies with ±εn error (Section 3);
//   - RankTracker   — ranks/quantiles with ±εn error (Section 4);
//
// each in three interchangeable flavors (AlgorithmRandomized — the paper's
// O(√k/ε·logN) protocols; AlgorithmDeterministic — the optimal deterministic
// Θ(k/ε·logN) baselines; AlgorithmSampling — the continuous-sampling
// baseline [9] with O(1/ε²·logN) cost), plus exact communication accounting
// in the paper's message/word units.
//
// Randomized trackers guarantee, at any single time instant, an error of at
// most ε·n with probability at least 0.9; CountTracker additionally offers
// median boosting (Options.Copies) for an all-instants guarantee.
// Deterministic trackers guarantee ε·n always.
//
// # Quick start
//
//	tr := disttrack.NewCountTracker(disttrack.Options{K: 8, Epsilon: 0.05})
//	for i := 0; i < 100000; i++ {
//		tr.Observe(i % 8) // element arrives at site i%8
//	}
//	fmt.Println(tr.Estimate(), tr.Metrics().Messages)
//
// By default trackers run on a deterministic sequential runtime with exact
// cost accounting. Set Options.Concurrent to run each site as its own
// goroutine connected by channels (Observe then blocks until the message
// cascade quiesces, matching the paper's instant-communication model); call
// Close when done to stop the goroutines.
package disttrack

import (
	"disttrack/internal/netsim"
	"disttrack/internal/proto"
	"disttrack/internal/sim"
)

// Algorithm selects a protocol flavor.
type Algorithm int

const (
	// AlgorithmRandomized is the paper's randomized protocol:
	// O(√k/ε·logN) communication, per-instant 0.9 success probability.
	AlgorithmRandomized Algorithm = iota
	// AlgorithmDeterministic is the optimal deterministic baseline:
	// Θ(k/ε·logN) communication, errors bounded always.
	AlgorithmDeterministic
	// AlgorithmSampling is continuous distributed sampling [9]:
	// O(1/ε²·logN) communication independent of k; one sample answers
	// count, frequency, and rank queries.
	AlgorithmSampling
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmRandomized:
		return "randomized"
	case AlgorithmDeterministic:
		return "deterministic"
	case AlgorithmSampling:
		return "sampling"
	default:
		return "unknown"
	}
}

// Options configures a tracker.
type Options struct {
	// K is the number of sites (required, >= 1).
	K int
	// Epsilon is the target relative error (required, in (0,1)).
	Epsilon float64
	// Algorithm selects the protocol; zero value is AlgorithmRandomized.
	Algorithm Algorithm
	// Seed makes randomized protocols reproducible; 0 is a valid seed.
	Seed uint64
	// Copies enables median boosting for CountTracker: that many
	// independent protocol copies run side by side and queries return the
	// median, upgrading the per-instant guarantee to all instants
	// (Section 1.2). 0 or 1 means no boosting. Ignored by other trackers.
	Copies int
	// Rescale divides Epsilon inside randomized protocols to sharpen the
	// success probability at proportional communication cost; 0 means the
	// paper's constant (3). Set 1 for shape benchmarks where both
	// algorithm families should run at the same nominal ε.
	Rescale float64
	// Concurrent mounts the protocol on the goroutine-per-site runtime
	// instead of the sequential simulator.
	Concurrent bool
	// SpaceProbeEvery controls how often per-site space is sampled by the
	// sequential runtime (0 = default 1024 arrivals; ignored when
	// Concurrent).
	SpaceProbeEvery int
}

func (o Options) validate() {
	if o.K <= 0 {
		panic("disttrack: Options.K must be >= 1")
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		panic("disttrack: Options.Epsilon must be in (0,1)")
	}
	if o.Copies < 0 {
		panic("disttrack: negative Options.Copies")
	}
}

// Metrics reports a tracker's accumulated cost in the paper's units.
type Metrics struct {
	// Messages is the total number of messages exchanged (a broadcast
	// counts as K messages).
	Messages int64
	// Words is the total communication volume in words (any integer < N or
	// one element = one word).
	Words int64
	// Broadcasts counts coordinator broadcast operations.
	Broadcasts int64
	// Arrivals is the number of elements observed.
	Arrivals int64
	// MaxSiteSpace is the high-water mark of per-site working space in
	// words (sequential runtime only; 0 when Concurrent).
	MaxSiteSpace int
	// MaxCoordSpace is the coordinator's high-water space in words
	// (sequential runtime only).
	MaxCoordSpace int
}

// engine abstracts the two runtimes behind the facade.
type engine interface {
	arrive(site int, item int64, value float64)
	arriveBatch(site int, item int64, value float64, count int64)
	metrics() Metrics
	close()
}

type simEngine struct{ h *sim.Harness }

func (e simEngine) arrive(site int, item int64, value float64) { e.h.Arrive(site, item, value) }
func (e simEngine) arriveBatch(site int, item int64, value float64, count int64) {
	e.h.ArriveBatch(site, item, value, count)
}
func (e simEngine) close() {}
func (e simEngine) metrics() Metrics {
	e.h.Probe()
	m := e.h.Metrics()
	return Metrics{
		Messages:      m.Messages(),
		Words:         m.Words(),
		Broadcasts:    m.Broadcasts,
		Arrivals:      m.Arrivals,
		MaxSiteSpace:  m.MaxSiteSpace,
		MaxCoordSpace: m.MaxCoordSpace,
	}
}

type netEngine struct{ c *netsim.Cluster }

func (e netEngine) arrive(site int, item int64, value float64) { e.c.Arrive(site, item, value) }
func (e netEngine) arriveBatch(site int, item int64, value float64, count int64) {
	e.c.ArriveBatch(site, item, value, count)
}
func (e netEngine) close() { e.c.Stop() }
func (e netEngine) metrics() Metrics {
	e.c.Quiesce()
	m := e.c.Metrics()
	return Metrics{
		Messages:   m.Messages(),
		Words:      m.Words(),
		Broadcasts: m.Broadcasts,
		Arrivals:   m.Arrivals,
	}
}

// mount places a protocol on the runtime selected by the options.
func mount(o Options, p proto.Protocol) engine {
	if o.Concurrent {
		return netEngine{c: netsim.Start(p)}
	}
	h := sim.New(p)
	if o.SpaceProbeEvery > 0 {
		h.SpaceProbeEvery = o.SpaceProbeEvery
	}
	return simEngine{h: h}
}
