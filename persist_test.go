package disttrack

// The durability suite: a tracker running with Options.Persist must
// survive a coordinator crash bit-exactly. The drill kills the
// coordinator mid-stream, rebuilds a fresh one from the store (snapshot
// restore + write-ahead-log replay), and finishes the run — every query
// answer and the cost ledger must match an uninterrupted baseline run
// exactly, on every transport. A WAL whose final record was torn by the
// crash must recover to the last complete frame.

import (
	"os"
	"path/filepath"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/persist"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

const (
	durK    = 4
	durEps  = 0.1
	durN    = 4000
	durSeed = 7
)

// stripDurability zeroes the counters that legitimately differ between a
// baseline run and a crash-restarted one, leaving everything the recovery
// must preserve exactly: communication, arrivals, liveness. The durability
// counters differ because the drill snapshots and replays while the
// baseline never does; the space high-water marks differ because the
// drill's quiescent probe at the crash instant samples a transient the
// baseline's probe cadence can miss.
func stripDurability(m Metrics) Metrics {
	m.Snapshots, m.ReplayedFrames, m.Resyncs = 0, 0, 0
	m.MaxSiteSpace, m.MaxCoordSpace = 0, 0
	return m
}

// crashRun drives feed over a tracker in two halves with a coordinator
// crash-restart between them when crash is set, collecting query answers
// along the way.
type durTracker interface {
	CrashRestartCoordinator() error
	Metrics() Metrics
	Close() error
}

func crashRun(t *testing.T, tr durTracker, crash bool, feed func(lo, hi int)) {
	t.Helper()
	feed(0, durN/2)
	if crash {
		if err := tr.CrashRestartCoordinator(); err != nil {
			t.Fatalf("crash-restart: %v", err)
		}
	}
	feed(durN/2, durN)
}

func TestCoordinatorCrashRestartResume(t *testing.T) {
	transports := []Transport{TransportSequential, TransportGoroutine, TransportTCP}
	type result struct {
		answers []float64
		metrics Metrics
	}
	problems := []struct {
		name string
		run  func(tr Transport, crash bool) result
	}{
		{"count", func(trp Transport, crash bool) result {
			tr := NewCountTracker(Options{K: durK, Epsilon: durEps, Seed: durSeed,
				Transport: trp, Persist: NewMemStore(), SnapshotEvery: 32})
			defer tr.Close()
			var res result
			crashRun(t, tr, crash, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					tr.Observe(i % durK)
					if i%500 == 0 {
						res.answers = append(res.answers, tr.Estimate())
					}
				}
			})
			res.answers = append(res.answers, tr.Estimate())
			res.metrics = tr.Metrics()
			return res
		}},
		{"count-robust", func(trp Transport, crash bool) result {
			// The robust wrapper layers seeded noise (site report noise,
			// coordinator release gate + release noise) over the randomized
			// tracker; recovery must restore every RNG stream and the gate
			// state bit-exactly or the released answers drift.
			tr := NewCountTracker(Options{K: durK, Epsilon: durEps, Seed: durSeed,
				Robust: true, Transport: trp, Persist: NewMemStore(), SnapshotEvery: 32})
			defer tr.Close()
			var res result
			crashRun(t, tr, crash, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					tr.Observe(i % durK)
					if i%500 == 0 {
						res.answers = append(res.answers, tr.Estimate())
					}
				}
			})
			res.answers = append(res.answers, tr.Estimate())
			res.metrics = tr.Metrics()
			return res
		}},
		{"freq", func(trp Transport, crash bool) result {
			tr := NewFrequencyTracker(Options{K: durK, Epsilon: durEps, Seed: durSeed,
				Transport: trp, Persist: NewMemStore(), SnapshotEvery: 32})
			defer tr.Close()
			items := workload.ZipfItems(100, 1.2, stats.New(31))
			var res result
			crashRun(t, tr, crash, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					tr.Observe(i%durK, items(i))
					if i%500 == 0 {
						res.answers = append(res.answers, tr.Estimate(0))
					}
				}
			})
			for _, j := range []int64{0, 3, 17, 99} {
				res.answers = append(res.answers, tr.Estimate(j))
			}
			res.metrics = tr.Metrics()
			return res
		}},
		{"rank", func(trp Transport, crash bool) result {
			tr := NewRankTracker(Options{K: durK, Epsilon: durEps, Seed: durSeed,
				Transport: trp, Persist: NewMemStore(), SnapshotEvery: 32})
			defer tr.Close()
			values := workload.PermValues(durN, stats.New(13))
			var res result
			crashRun(t, tr, crash, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					tr.Observe(i%durK, values(i))
					if i%500 == 0 {
						res.answers = append(res.answers, tr.Rank(durN/2))
					}
				}
			})
			for _, q := range []float64{0.25, 0.5, 0.75} {
				res.answers = append(res.answers, tr.Rank(q*durN))
			}
			res.metrics = tr.Metrics()
			return res
		}},
	}
	for _, p := range problems {
		for _, trp := range transports {
			t.Run(p.name+"/"+trp.String(), func(t *testing.T) {
				base := p.run(trp, false)
				crashed := p.run(trp, true)
				if len(base.answers) != len(crashed.answers) {
					t.Fatalf("answer count: baseline %d, crashed %d",
						len(base.answers), len(crashed.answers))
				}
				for i := range base.answers {
					if base.answers[i] != crashed.answers[i] {
						t.Fatalf("answer %d diverged after crash-restart: baseline %v, crashed %v",
							i, base.answers[i], crashed.answers[i])
					}
				}
				if got, want := stripDurability(crashed.metrics), stripDurability(base.metrics); got != want {
					t.Fatalf("metrics diverged after crash-restart:\nbaseline %+v\ncrashed  %+v", want, got)
				}
				if crashed.metrics.Snapshots < 1 {
					t.Fatalf("crashed run took %d snapshots, want >= 1 (cadence 32 over %d arrivals)",
						crashed.metrics.Snapshots, durN)
				}
			})
		}
	}
}

// TestCrashRestartAllConfigs sweeps the remaining tracker configurations —
// deterministic and sampling algorithms, boosted (Copies > 1) randomized —
// through the same bit-exact crash-restart contract on the sequential
// transport.
func TestCrashRestartAllConfigs(t *testing.T) {
	type cfg struct {
		name string
		opt  Options
	}
	mk := func(name string, alg Algorithm, copies int) cfg {
		return cfg{name, Options{K: durK, Epsilon: durEps, Seed: durSeed,
			Algorithm: alg, Copies: copies, Persist: NewMemStore(), SnapshotEvery: 16}}
	}
	cfgs := []cfg{
		mk("deterministic", AlgorithmDeterministic, 0),
		mk("sampling", AlgorithmSampling, 0),
		mk("boosted", AlgorithmRandomized, 3),
	}
	for _, c := range cfgs {
		opt := c.opt // each tracker needs its own store
		t.Run("count/"+c.name, func(t *testing.T) {
			run := func(crash bool) (ans []float64, m Metrics) {
				o := opt
				o.Persist = NewMemStore()
				tr := NewCountTracker(o)
				defer tr.Close()
				crashRun(t, tr, crash, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						tr.Observe(i % durK)
					}
				})
				return []float64{tr.Estimate()}, tr.Metrics()
			}
			baseA, baseM := run(false)
			gotA, gotM := run(true)
			if baseA[0] != gotA[0] {
				t.Fatalf("estimate diverged: baseline %v, crashed %v", baseA[0], gotA[0])
			}
			if stripDurability(gotM) != stripDurability(baseM) {
				t.Fatalf("metrics diverged:\nbaseline %+v\ncrashed  %+v", baseM, gotM)
			}
		})
		t.Run("freq/"+c.name, func(t *testing.T) {
			run := func(crash bool) (ans []float64, m Metrics) {
				o := opt
				o.Persist = NewMemStore()
				tr := NewFrequencyTracker(o)
				defer tr.Close()
				items := workload.ZipfItems(100, 1.2, stats.New(31))
				crashRun(t, tr, crash, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						tr.Observe(i%durK, items(i))
					}
				})
				return []float64{tr.Estimate(0), tr.Estimate(7)}, tr.Metrics()
			}
			baseA, baseM := run(false)
			gotA, gotM := run(true)
			for i := range baseA {
				if baseA[i] != gotA[i] {
					t.Fatalf("estimate %d diverged: baseline %v, crashed %v", i, baseA[i], gotA[i])
				}
			}
			if stripDurability(gotM) != stripDurability(baseM) {
				t.Fatalf("metrics diverged:\nbaseline %+v\ncrashed  %+v", baseM, gotM)
			}
		})
		t.Run("rank/"+c.name, func(t *testing.T) {
			run := func(crash bool) (ans []float64, m Metrics) {
				o := opt
				o.Persist = NewMemStore()
				tr := NewRankTracker(o)
				defer tr.Close()
				values := workload.PermValues(durN, stats.New(13))
				crashRun(t, tr, crash, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						tr.Observe(i%durK, values(i))
					}
				})
				return []float64{tr.Rank(durN / 4), tr.Rank(durN / 2)}, tr.Metrics()
			}
			baseA, baseM := run(false)
			gotA, gotM := run(true)
			for i := range baseA {
				if baseA[i] != gotA[i] {
					t.Fatalf("rank %d diverged: baseline %v, crashed %v", i, baseA[i], gotA[i])
				}
			}
			if stripDurability(gotM) != stripDurability(baseM) {
				t.Fatalf("metrics diverged:\nbaseline %+v\ncrashed  %+v", baseM, gotM)
			}
		})
	}
}

// TestDiskStoreTornTailRecovery crashes "mid-write": the WAL's final
// record is truncated, and recovery must stop cleanly at the last
// complete frame instead of failing. The deterministic count coordinator
// cannot snapshot, so the store runs WAL-only and every logged frame is
// still in the log at the end — the frame arithmetic is exact.
func TestDiskStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountTracker(Options{K: durK, Epsilon: durEps, Seed: durSeed,
		Algorithm: AlgorithmDeterministic, Persist: store})
	for i := 0; i < durN; i++ {
		tr.Observe(i % durK)
	}
	want := tr.Estimate()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// An intact store first: full replay, bit-identical estimate.
	intact := count.NewDetCoordinator(durK, durEps)
	res, err := persist.Recover(store, intact, nil)
	if err != nil {
		t.Fatalf("intact recover: %v", err)
	}
	if res.HasSnapshot {
		t.Fatal("deterministic coordinator cannot snapshot, but the store holds one")
	}
	if res.TornTail {
		t.Fatal("intact WAL reported a torn tail")
	}
	if res.ReplayedFrames == 0 {
		t.Fatal("intact recover replayed 0 frames")
	}
	if got := intact.Estimate(); got != want {
		t.Fatalf("recovered estimate %v, want %v", got, want)
	}

	// Tear the tail: drop the WAL's last 3 bytes, as a crash mid-append
	// would. Recovery must succeed with exactly one frame lost.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("WAL files: %v (err %v)", wals, err)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	torn := count.NewDetCoordinator(durK, durEps)
	tornStore, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tornStore.Close()
	tres, err := persist.Recover(tornStore, torn, nil)
	if err != nil {
		t.Fatalf("torn recover: %v", err)
	}
	if !tres.TornTail {
		t.Fatal("truncated WAL not reported as torn")
	}
	if tres.ReplayedFrames != res.ReplayedFrames-1 {
		t.Fatalf("torn recover replayed %d frames, want %d (intact %d minus the torn one)",
			tres.ReplayedFrames, res.ReplayedFrames-1, res.ReplayedFrames)
	}
}

func TestPersistOptionValidation(t *testing.T) {
	mustPanic := func(name string, opt Options) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		NewCountTracker(opt)
	}
	mustPanic("negative SnapshotEvery",
		Options{K: 2, Epsilon: 0.1, Persist: NewMemStore(), SnapshotEvery: -1})
	mustPanic("SnapshotEvery without Persist",
		Options{K: 2, Epsilon: 0.1, SnapshotEvery: 64})

	// A store path that is a regular file must surface as an error, not a
	// panic.
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(f); err == nil {
		t.Fatal("OpenDiskStore on a regular file succeeded")
	}
}

func TestCrashRestartRequiresPersist(t *testing.T) {
	tr := NewCountTracker(Options{K: 2, Epsilon: 0.1})
	defer tr.Close()
	tr.Observe(0)
	if err := tr.CrashRestartCoordinator(); err == nil {
		t.Fatal("crash-restart without Options.Persist succeeded")
	}

	ci := NewCountTracker(Options{K: 2, Epsilon: 0.1, Transport: TransportGoroutine,
		ConcurrentIngest: true, Persist: NewMemStore()})
	defer ci.Close()
	ci.Observe(0)
	if err := ci.CrashRestartCoordinator(); err == nil {
		t.Fatal("crash-restart under ConcurrentIngest succeeded")
	}
}
