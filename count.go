package disttrack

import (
	"disttrack/internal/count"
	"disttrack/internal/proto"
	"disttrack/internal/robust"
	"disttrack/internal/sample"
)

// robustConfig maps the facade options onto the robust protocol's config.
// The seed rides along so a crash-restarted coordinator rebuilds the same
// release-noise stream (robust.Config.Seed).
func robustConfig(o Options) robust.Config {
	return robust.Config{K: o.K, Eps: o.Epsilon, Rescale: o.Rescale, Seed: o.Seed}
}

// CountTracker continuously tracks n(t), the total number of elements
// received across all sites (the paper's count-tracking problem, Section 2).
//
// Without Options.ConcurrentIngest, one goroutine at a time may use the
// tracker; with it, Observe/ObserveBatch and the query methods are safe
// from any number of goroutines. The embedded core provides Flush,
// Metrics, and Close.
type CountTracker struct {
	opt Options
	k   int // == opt.K, hot-path copy on the same cache line as eng/fe
	core
	est func() float64
}

// NewCountTracker builds a count tracker. It panics on invalid options.
func NewCountTracker(opt Options) *CountTracker {
	opt.validate()
	t := &CountTracker{opt: opt, k: opt.K}
	switch opt.Algorithm {
	case AlgorithmRandomized:
		cfg := count.Config{K: opt.K, Eps: opt.Epsilon, Rescale: opt.Rescale}
		if opt.Topology == TopologyTree {
			// Robust and Copies > 1 are rejected by Options.validate.
			tp, coord := count.NewTreeProtocol(cfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.est = coord.Estimate
		} else if opt.Robust {
			p, coord := robust.NewProtocol(robustConfig(opt))
			t.mountCore(opt, p)
			t.est = coord.Estimate
		} else if opt.Copies > 1 {
			p, coord := count.NewMedianProtocol(cfg, opt.Copies, opt.Seed)
			t.mountCore(opt, p)
			t.est = coord.Estimate
		} else {
			p, coord := count.NewProtocol(cfg, opt.Seed)
			t.mountCore(opt, p)
			t.est = coord.Estimate
		}
	case AlgorithmDeterministic:
		if opt.Topology == TopologyTree {
			// The deterministic count reports merge by summation, so this
			// baseline keeps its δ=0 guarantee through re-aggregation.
			tp, coord := count.NewDetTreeProtocol(opt.K, opt.Epsilon, opt.Fanout)
			t.mountCoreTree(opt, tp)
			t.est = coord.Estimate
		} else {
			p, coord := count.NewDetProtocol(opt.K, opt.Epsilon)
			t.mountCore(opt, p)
			t.est = coord.Estimate
		}
	case AlgorithmSampling:
		scfg := sample.Config{K: opt.K, Eps: opt.Epsilon}
		if opt.Topology == TopologyTree {
			tp, coord := sample.NewTreeProtocol(scfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.est = coord.Count
		} else {
			p, coord := sample.NewProtocol(scfg, opt.Seed)
			t.mountCore(opt, p)
			t.est = coord.Count
		}
	default:
		panic("disttrack: unknown Algorithm")
	}
	t.fe = frontend(opt, t.eng)
	return t
}

// Observe records one element arriving at the given site (0-based).
func (t *CountTracker) Observe(site int) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if t.fe == nil {
		t.eng.Arrive(site, 0, 0)
		return
	}
	t.fe.Observe(site, 0, 0)
}

// ObserveBatch records count elements arriving at the given site. It is
// equivalent to count Observe calls — same estimates, same Metrics — but
// runs in time proportional to the messages the batch triggers, not its
// length (the site skip-samples the gap to its next report).
func (t *CountTracker) ObserveBatch(site int, count int) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if count < 0 {
		panic("disttrack: negative batch count")
	}
	if t.fe == nil {
		t.eng.ArriveBatch(site, 0, 0, int64(count))
		return
	}
	t.fe.ObserveBatch(site, 0, 0, int64(count))
}

// Estimate returns the coordinator's current estimate of n. With
// ConcurrentIngest it reads a quiescent snapshot: everything ingested up to
// some recent cascade boundary (call Flush first for an
// everything-observed-so-far barrier).
func (t *CountTracker) Estimate() float64 {
	var v float64
	t.query(func() { v = t.est() })
	return v
}

// CrashRestartCoordinator simulates a coordinator crash and durable
// restart: the live coordinator is discarded and a freshly built one
// recovers from Options.Persist (snapshot restore plus write-ahead-log
// replay), remounting over the same site machines. The recovered
// coordinator is bit-identical to the crashed one at its last logged
// frame, so estimates and Metrics carry on exactly. Requires
// Options.Persist; incompatible with ConcurrentIngest and FaultPlan.
func (t *CountTracker) CrashRestartCoordinator() error {
	var est func() float64
	var fresh proto.Coordinator
	switch t.opt.Algorithm {
	case AlgorithmRandomized:
		cfg := count.Config{K: t.opt.K, Eps: t.opt.Epsilon, Rescale: t.opt.Rescale}
		if t.opt.Robust {
			coord := robust.NewCoordinator(robustConfig(t.opt))
			fresh, est = coord, coord.Estimate
		} else if t.opt.Copies > 1 {
			coord := count.NewMedianCoordinator(cfg, t.opt.Copies)
			fresh, est = coord, coord.Estimate
		} else {
			coord := count.NewCoordinator(cfg)
			fresh, est = coord, coord.Estimate
		}
	case AlgorithmDeterministic:
		coord := count.NewDetCoordinator(t.opt.K, t.opt.Epsilon)
		fresh, est = coord, coord.Estimate
	case AlgorithmSampling:
		coord := sample.NewCoordinator(sample.Config{K: t.opt.K, Eps: t.opt.Epsilon})
		fresh, est = coord, coord.Count
	default:
		panic("disttrack: unknown Algorithm")
	}
	if _, err := t.crashRestartCoordinator(func() proto.Coordinator { return fresh }); err != nil {
		return err
	}
	t.est = est
	return nil
}
