package disttrack

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"disttrack/internal/serve"
	"disttrack/internal/stats"
)

// countAPI wires a CountTracker behind the serving surface exactly the way
// cmd/tracksim's -local mode does.
func countAPI(t *testing.T, opt Options) (*CountTracker, *httptest.Server) {
	t.Helper()
	tr := NewCountTracker(opt)
	t.Cleanup(func() { tr.Close() })
	api := &serve.Server{
		Backend: serve.Funcs{
			CountFn: func() (float64, error) { return tr.Estimate(), nil },
			ObserveFn: func(site int, _ int64, _ float64, n int64) error {
				tr.ObserveBatch(site, int(n))
				return nil
			},
			FlushFn: tr.Flush,
			SnapshotFn: func() (serve.Snapshot, error) {
				m := tr.Metrics()
				return serve.Snapshot{Arrivals: m.Arrivals, MessagesUp: m.MessagesUp,
					WordsUp: m.WordsUp, LiveSites: m.LiveSites, Snapshots: m.Snapshots}, nil
			},
		},
		Info: serve.Info{Problem: "count", K: opt.K, Epsilon: opt.Epsilon},
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return tr, ts
}

func httpGetDoc(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return doc
}

func httpPostOK(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
}

// scrapeArrivals pulls one /metrics exposition and returns the arrivals
// sample, checking every line is parseable Prometheus text along the way.
func scrapeArrivals(t *testing.T, base string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals float64
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if line[:sp] == "disttrack_arrivals_total" {
			arrivals, _ = strconv.ParseFloat(line[sp+1:], 64)
		}
	}
	return arrivals
}

// TestHTTPServeCountUnderLoad is the end-to-end serving test: an HTTP API
// over a live tracker takes concurrent mixed ingest+query traffic on every
// transport and both topologies, every answer stays within ε of the
// acknowledged total after a flush barrier, and /metrics arrivals are
// monotone across scrapes. The root package's race CI lane runs this under
// -race, which is the airtightness check for queries racing ingestion.
func TestHTTPServeCountUnderLoad(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"sequential-flat", Options{K: 8, Epsilon: 0.1, Seed: 7, Transport: TransportSequential, ConcurrentIngest: true}},
		{"goroutine-flat", Options{K: 8, Epsilon: 0.1, Seed: 7, Transport: TransportGoroutine, ConcurrentIngest: true}},
		{"tcp-flat", Options{K: 8, Epsilon: 0.1, Seed: 7, Transport: TransportTCP, ConcurrentIngest: true}},
		{"goroutine-tree", Options{K: 8, Epsilon: 0.1, Seed: 7, Transport: TransportGoroutine,
			Topology: TopologyTree, Fanout: 2, ConcurrentIngest: true}},
		{"tcp-tree", Options{K: 8, Epsilon: 0.1, Seed: 7, Transport: TransportTCP,
			Topology: TopologyTree, Fanout: 2, ConcurrentIngest: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, ts := countAPI(t, tc.opt)
			const (
				writers   = 4
				readers   = 2
				perWriter = 150
				batch     = 5
			)
			var written int64
			var wWG, rWG sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				rWG.Add(1)
				go func() {
					defer rWG.Done()
					var lastScrape float64
					for {
						select {
						case <-stop:
							return
						default:
						}
						doc := httpGetDoc(t, ts.URL+"/v1/count")
						if est := doc["estimate"].(float64); est < 0 {
							t.Errorf("negative estimate %g", est)
						}
						if a := scrapeArrivals(t, ts.URL); a < lastScrape {
							t.Errorf("arrivals not monotone: %g then %g", lastScrape, a)
						} else {
							lastScrape = a
						}
					}
				}()
			}
			for w := 0; w < writers; w++ {
				wWG.Add(1)
				go func(w int) {
					defer wWG.Done()
					for i := 0; i < perWriter; i++ {
						httpPostOK(t, ts.URL+"/v1/observe",
							fmt.Sprintf(`{"site":%d,"count":%d}`, (w+i)%tc.opt.K, batch))
						atomic.AddInt64(&written, batch)
					}
				}(w)
			}
			// Writers finish first; then the readers stop so the final
			// flush+assert below sees no in-flight traffic.
			wWG.Wait()
			close(stop)
			rWG.Wait()

			httpPostOK(t, ts.URL+"/v1/flush", "")
			total := float64(atomic.LoadInt64(&written))
			doc := httpGetDoc(t, ts.URL+"/v1/count")
			est := doc["estimate"].(float64)
			if math.Abs(est-total) > tc.opt.Epsilon*total {
				t.Errorf("estimate %g outside ε band around %g", est, total)
			}
			if a := scrapeArrivals(t, ts.URL); a != total {
				t.Errorf("arrivals_total = %g after flush, want %g", a, total)
			}
		})
	}
}

// TestHTTPServeRankAndFreq covers the remaining query surface end to end:
// rank and quantile answers against a rank tracker, and frequency answers
// against a freq tracker, all through HTTP with concurrent ingestion.
func TestHTTPServeRankAndFreq(t *testing.T) {
	t.Run("rank", func(t *testing.T) {
		const n = 4000
		opt := Options{K: 4, Epsilon: 0.1, Seed: 3, Transport: TransportGoroutine, ConcurrentIngest: true}
		tr := NewRankTracker(opt)
		defer tr.Close()
		api := &serve.Server{
			Backend: serve.Funcs{
				RankFn: func(x float64) (float64, error) { return tr.Rank(x), nil },
				QuantileFn: func(phi float64) (float64, error) {
					v := tr.Quantile(phi, 0, n)
					if math.IsNaN(v) {
						return 0, fmt.Errorf("empty")
					}
					return v, nil
				},
				ObserveFn: func(site int, _ int64, value float64, _ int64) error {
					tr.Observe(site, value)
					return nil
				},
				FlushFn: tr.Flush,
			},
			Info: serve.Info{Problem: "rank", K: opt.K, Epsilon: opt.Epsilon},
		}
		ts := httptest.NewServer(api.Handler())
		defer ts.Close()

		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += 4 {
					httpPostOK(t, ts.URL+"/v1/observe",
						fmt.Sprintf(`{"site":%d,"value":%d}`, i%opt.K, i))
				}
			}(w)
		}
		wg.Wait()
		httpPostOK(t, ts.URL+"/v1/flush", "")

		doc := httpGetDoc(t, fmt.Sprintf("%s/v1/rank?value=%d", ts.URL, n/2))
		if r := doc["rank"].(float64); math.Abs(r-n/2) > opt.Epsilon*n {
			t.Errorf("rank(%d) = %g, want within ε·n of %d", n/2, r, n/2)
		}
		doc = httpGetDoc(t, ts.URL+"/v1/quantile?phi=0.5")
		// A value whose rank is n/2 must itself sit within ε·n of the median
		// value, since values here are 0..n-1 with rank(v) = v.
		if v := doc["value"].(float64); math.Abs(v-n/2) > 2*opt.Epsilon*n {
			t.Errorf("quantile(0.5) = %g, want near %d", v, n/2)
		}
	})
	t.Run("freq", func(t *testing.T) {
		const n = 4000
		opt := Options{K: 4, Epsilon: 0.1, Seed: 3, Transport: TransportGoroutine, ConcurrentIngest: true}
		tr := NewFrequencyTracker(opt)
		defer tr.Close()
		api := &serve.Server{
			Backend: serve.Funcs{
				FreqFn: func(item int64) (float64, error) { return tr.Estimate(item), nil },
				ObserveFn: func(site int, item int64, _ float64, c int64) error {
					tr.ObserveBatch(site, item, int(c))
					return nil
				},
				FlushFn: tr.Flush,
			},
			Info: serve.Info{Problem: "freq", K: opt.K, Epsilon: opt.Epsilon},
		}
		ts := httptest.NewServer(api.Handler())
		defer ts.Close()

		// Item 0 takes half the stream; the rest spreads over 50 items.
		truth0 := 0
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := stats.New(uint64(w) + 11)
				local0 := 0
				for i := w; i < n; i += 4 {
					item := int64(0)
					if rng.Bernoulli(0.5) {
						item = int64(rng.Intn(50)) + 1
					} else {
						local0++
					}
					httpPostOK(t, ts.URL+"/v1/observe",
						fmt.Sprintf(`{"site":%d,"item":%d}`, i%opt.K, item))
				}
				mu.Lock()
				truth0 += local0
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		httpPostOK(t, ts.URL+"/v1/flush", "")

		doc := httpGetDoc(t, ts.URL+"/v1/freq?item=0")
		if f := doc["estimate"].(float64); math.Abs(f-float64(truth0)) > opt.Epsilon*n {
			t.Errorf("freq(0) = %g, want within ε·n of %d", f, truth0)
		}
	})
}
