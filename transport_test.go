package disttrack

// The transport-independence suite: every tracker runs the same seeded
// workload on the sequential simulator, the goroutine runtime, and the TCP
// loopback transport, and must produce identical per-link message
// sequences, identical cost Metrics, and identical query answers. This is
// the contract that makes the sequential transport's exact accounting
// meaningful for the distributed deployments: the fabric carries the
// protocol, it never changes it.

import (
	"hash/fnv"
	"math"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/stats"
	"disttrack/internal/wire"
	"disttrack/internal/workload"
)

var allTransports = []Transport{TransportSequential, TransportGoroutine, TransportTCP}

// linkDigest accumulates an order-sensitive hash of one direction of one
// site's coordinator link. Each slot is written by exactly one goroutine;
// the transports' quiescence barriers order those writes before the test's
// reads.
type linkDigest struct {
	hash uint64
	n    int
	buf  []byte
}

func (d *linkDigest) add(m proto.Message) {
	var err error
	d.buf, err = wire.Append(d.buf[:0], m)
	if err != nil {
		panic(err)
	}
	h := fnv.New64a()
	var word [8]byte
	word[0] = byte(d.hash)
	word[1] = byte(d.hash >> 8)
	word[2] = byte(d.hash >> 16)
	word[3] = byte(d.hash >> 24)
	word[4] = byte(d.hash >> 32)
	word[5] = byte(d.hash >> 40)
	word[6] = byte(d.hash >> 48)
	word[7] = byte(d.hash >> 56)
	h.Write(word[:])
	h.Write(d.buf)
	d.hash = h.Sum64()
	d.n++
}

// digestTap implements runtime.Tap with one digest per (site, direction).
type digestTap struct {
	up   []linkDigest
	down []linkDigest
}

func newDigestTap(k int) *digestTap {
	return &digestTap{up: make([]linkDigest, k), down: make([]linkDigest, k)}
}

func (t *digestTap) Up(from int, m proto.Message) { t.up[from].add(m) }
func (t *digestTap) Down(to int, m proto.Message) { t.down[to].add(m) }
func (t *digestTap) signature() (sig []uint64, ns []int) {
	for i := range t.up {
		sig = append(sig, t.up[i].hash, t.down[i].hash)
		ns = append(ns, t.up[i].n, t.down[i].n)
	}
	return sig, ns
}

// runResult is everything one run of one tracker must reproduce exactly.
type runResult struct {
	answers  []float64
	metrics  Metrics
	linkSig  []uint64
	linkMsgs []int
}

func equalResults(a, b runResult) (string, bool) {
	if len(a.answers) != len(b.answers) {
		return "answer count", false
	}
	for i := range a.answers {
		if a.answers[i] != b.answers[i] {
			return "query answers", false
		}
	}
	if a.metrics != b.metrics {
		return "metrics", false
	}
	for i := range a.linkSig {
		if a.linkSig[i] != b.linkSig[i] || a.linkMsgs[i] != b.linkMsgs[i] {
			return "per-link message sequences", false
		}
	}
	return "", true
}

const (
	indepK    = 5
	indepEps  = 0.1
	indepN    = 4000
	indepSeed = 42
)

func runCount(t *testing.T, tr Transport, copies int, batched bool) runResult {
	t.Helper()
	c := NewCountTracker(Options{K: indepK, Epsilon: indepEps, Seed: indepSeed,
		Transport: tr, Copies: copies})
	defer c.Close()
	tap := newDigestTap(indepK)
	c.eng.SetTap(tap)
	var res runResult
	if batched {
		for done := 0; done < indepN; done += 100 {
			c.ObserveBatch((done/100)%indepK, 100)
			res.answers = append(res.answers, c.Estimate())
		}
	} else {
		for i := 0; i < indepN; i++ {
			c.Observe(i % indepK)
			if i%500 == 0 {
				res.answers = append(res.answers, c.Estimate())
			}
		}
	}
	res.answers = append(res.answers, c.Estimate())
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runFreq(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	f := NewFrequencyTracker(Options{K: indepK, Epsilon: indepEps, Seed: indepSeed,
		Algorithm: alg, Transport: tr})
	defer f.Close()
	tap := newDigestTap(indepK)
	f.eng.SetTap(tap)
	items := workload.ZipfItems(200, 1.2, stats.New(99))
	var res runResult
	for i := 0; i < indepN; i++ {
		f.Observe(i%indepK, items(i))
		if i%777 == 0 {
			res.answers = append(res.answers, f.Estimate(0))
		}
	}
	for _, j := range []int64{0, 1, 7, 50, 199} {
		res.answers = append(res.answers, f.Estimate(j))
	}
	res.metrics = f.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runRank(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	r := NewRankTracker(Options{K: indepK, Epsilon: indepEps, Seed: indepSeed,
		Algorithm: alg, Transport: tr})
	defer r.Close()
	tap := newDigestTap(indepK)
	r.eng.SetTap(tap)
	values := workload.PermValues(indepN, stats.New(17))
	var res runResult
	for i := 0; i < indepN; i++ {
		r.Observe(i%indepK, values(i))
		if i%777 == 0 {
			res.answers = append(res.answers, r.Rank(float64(indepN)/2))
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		res.answers = append(res.answers, r.Rank(q*indepN))
	}
	res.answers = append(res.answers, r.Quantile(0.5, 0, indepN))
	res.metrics = r.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runCountAlg(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	c := NewCountTracker(Options{K: indepK, Epsilon: indepEps, Seed: indepSeed,
		Algorithm: alg, Transport: tr})
	defer c.Close()
	tap := newDigestTap(indepK)
	c.eng.SetTap(tap)
	var res runResult
	for i := 0; i < indepN; i++ {
		c.Observe(i % indepK)
		if i%777 == 0 {
			res.answers = append(res.answers, c.Estimate())
		}
	}
	res.answers = append(res.answers, c.Estimate())
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runCountRobust(t *testing.T, tr Transport) runResult {
	t.Helper()
	c := NewCountTracker(Options{K: indepK, Epsilon: indepEps, Seed: indepSeed,
		Robust: true, Transport: tr})
	defer c.Close()
	tap := newDigestTap(indepK)
	c.eng.SetTap(tap)
	var res runResult
	for i := 0; i < indepN; i++ {
		c.Observe(i % indepK)
		if i%777 == 0 {
			res.answers = append(res.answers, c.Estimate())
		}
	}
	res.answers = append(res.answers, c.Estimate())
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

// TestTransportIndependence pins the tentpole contract: all three trackers
// times all three algorithms behave bit-identically on all three
// transports — same query answers at every checkpoint, same message/word/
// broadcast/space accounting, same per-link message sequences.
func TestTransportIndependence(t *testing.T) {
	algs := []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling}
	for _, alg := range algs {
		alg := alg
		t.Run("count/"+alg.String(), func(t *testing.T) {
			compareTransports(t, func(tr Transport) runResult { return runCountAlg(t, alg, tr) })
		})
		t.Run("freq/"+alg.String(), func(t *testing.T) {
			compareTransports(t, func(tr Transport) runResult { return runFreq(t, alg, tr) })
		})
		t.Run("rank/"+alg.String(), func(t *testing.T) {
			compareTransports(t, func(tr Transport) runResult { return runRank(t, alg, tr) })
		})
	}
}

// Tree-topology independence: a 2-level tree mounts one fabric per group
// plus one for the root, all of the selected transport kind. The tree link
// space is leaves 0..k-1 then root links k..k+groups-1 (see
// runtime.Tree.SetTap), so the digest tap covers every edge of the tree —
// the virtual-arrival re-aggregation must replay bit-identically on every
// fabric, level by level.
const (
	treeK      = 8
	treeFanout = 4
	treeGroups = (treeK + treeFanout - 1) / treeFanout
)

func treeOpts(alg Algorithm, tr Transport) Options {
	return Options{K: treeK, Epsilon: indepEps, Seed: indepSeed, Algorithm: alg,
		Transport: tr, Topology: TopologyTree, Fanout: treeFanout}
}

func runTreeCount(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	c := NewCountTracker(treeOpts(alg, tr))
	defer c.Close()
	tap := newDigestTap(treeK + treeGroups)
	c.eng.SetTap(tap)
	var res runResult
	for i := 0; i < indepN; i++ {
		c.Observe(i % treeK)
		if i%777 == 0 {
			res.answers = append(res.answers, c.Estimate())
		}
	}
	res.answers = append(res.answers, c.Estimate())
	res.metrics = c.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runTreeFreq(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	f := NewFrequencyTracker(treeOpts(alg, tr))
	defer f.Close()
	tap := newDigestTap(treeK + treeGroups)
	f.eng.SetTap(tap)
	items := workload.ZipfItems(200, 1.2, stats.New(99))
	var res runResult
	for i := 0; i < indepN; i++ {
		f.Observe(i%treeK, items(i))
		if i%777 == 0 {
			res.answers = append(res.answers, f.Estimate(0))
		}
	}
	for _, j := range []int64{0, 1, 7, 50, 199} {
		res.answers = append(res.answers, f.Estimate(j))
	}
	res.metrics = f.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

func runTreeRank(t *testing.T, alg Algorithm, tr Transport) runResult {
	t.Helper()
	r := NewRankTracker(treeOpts(alg, tr))
	defer r.Close()
	tap := newDigestTap(treeK + treeGroups)
	r.eng.SetTap(tap)
	values := workload.PermValues(indepN, stats.New(17))
	var res runResult
	for i := 0; i < indepN; i++ {
		r.Observe(i%treeK, values(i))
		if i%777 == 0 {
			res.answers = append(res.answers, r.Rank(float64(indepN)/2))
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		res.answers = append(res.answers, r.Rank(q*indepN))
	}
	res.answers = append(res.answers, r.Quantile(0.5, 0, indepN))
	res.metrics = r.Metrics()
	res.linkSig, res.linkMsgs = tap.signature()
	return res
}

// compareTransportsTree is compareTransports minus the coordinator-space
// high-water mark: the root fabric is fed through the batch path (virtual
// arrivals arrive as runs), whose probe instants legitimately differ
// between the sequential and concurrent fabrics — the same documented
// cadence difference TestTransportIndependenceBatched excludes. Everything
// else — per-link sequences, per-level counters, answers — must match
// exactly.
func compareTransportsTree(t *testing.T, run func(Transport) runResult) {
	t.Helper()
	base := run(TransportSequential)
	if base.metrics.Messages == 0 || base.metrics.Arrivals == 0 {
		t.Fatal("baseline run exchanged no messages")
	}
	for _, tr := range allTransports[1:] {
		got := run(tr)
		b, g := base, got
		b.metrics.MaxCoordSpace, g.metrics.MaxCoordSpace = 0, 0
		if what, ok := equalResults(b, g); !ok {
			t.Errorf("transport %v diverged from sequential in %s:\nseq: %+v\ngot: %+v",
				tr, what, base.metrics, got.metrics)
		}
	}
}

// TestTransportIndependenceTree extends the tentpole contract to the
// 2-level tree topology: identical per-link FNV message sequences on every
// edge (site↔aggregator and aggregator↔root), identical Metrics including
// the per-level counters, and identical query answers across
// sequential/goroutine/tcp.
func TestTransportIndependenceTree(t *testing.T) {
	t.Run("count/randomized", func(t *testing.T) {
		compareTransportsTree(t, func(tr Transport) runResult { return runTreeCount(t, AlgorithmRandomized, tr) })
	})
	t.Run("count/deterministic", func(t *testing.T) {
		compareTransportsTree(t, func(tr Transport) runResult { return runTreeCount(t, AlgorithmDeterministic, tr) })
	})
	t.Run("count/sampling", func(t *testing.T) {
		compareTransportsTree(t, func(tr Transport) runResult { return runTreeCount(t, AlgorithmSampling, tr) })
	})
	t.Run("freq/randomized", func(t *testing.T) {
		compareTransportsTree(t, func(tr Transport) runResult { return runTreeFreq(t, AlgorithmRandomized, tr) })
	})
	t.Run("rank/randomized", func(t *testing.T) {
		compareTransportsTree(t, func(tr Transport) runResult { return runTreeRank(t, AlgorithmRandomized, tr) })
	})
}

// TestTransportIndependenceRobust pins the robust mode across transports:
// every noise draw is seeded (per-site report noise, coordinator release
// noise), so the noised message sequences, released answers, and Metrics
// must be bit-identical on all three fabrics.
func TestTransportIndependenceRobust(t *testing.T) {
	compareTransports(t, func(tr Transport) runResult { return runCountRobust(t, tr) })
}

// TestTransportIndependenceBoosted covers the median-boosted multiplexer
// (CopyMsg routing) across transports.
func TestTransportIndependenceBoosted(t *testing.T) {
	compareTransports(t, func(tr Transport) runResult { return runCount(t, tr, 3, false) })
}

// TestTransportIndependenceBatched covers the ObserveBatch fast path: the
// chunked injection must behave identically on every fabric. Space
// high-water marks are probed at different instants on the batch path
// (the sequential transport splits chunks at probe boundaries; the
// concurrent ones probe after quiescence), so they are excluded here.
func TestTransportIndependenceBatched(t *testing.T) {
	base := runCount(t, TransportSequential, 0, true)
	for _, tr := range allTransports[1:] {
		got := runCount(t, tr, 0, true)
		b, g := base, got
		b.metrics.MaxSiteSpace, g.metrics.MaxSiteSpace = 0, 0
		b.metrics.MaxCoordSpace, g.metrics.MaxCoordSpace = 0, 0
		if what, ok := equalResults(b, g); !ok {
			t.Errorf("transport %v diverged from sequential in %s", tr, what)
		}
	}
}

func compareTransports(t *testing.T, run func(Transport) runResult) {
	t.Helper()
	base := run(TransportSequential)
	if base.metrics.Messages == 0 || base.metrics.Arrivals == 0 {
		t.Fatal("baseline run exchanged no messages")
	}
	for _, ans := range base.answers {
		if math.IsNaN(ans) {
			t.Fatal("baseline produced NaN answer")
		}
	}
	for _, tr := range allTransports[1:] {
		got := run(tr)
		if what, ok := equalResults(base, got); !ok {
			t.Errorf("transport %v diverged from sequential in %s:\nseq: %+v\ngot: %+v",
				tr, what, base.metrics, got.metrics)
		}
	}
}
