package disttrack

// The adversarial-robustness suite: statistical pins for the adaptive
// attack harness (attack.go) and the robust mode (Options.Robust).
//
//   - Against the plain randomized tracker, both adaptive strategies must
//     push the ε-band violation rate far above the protocol's δ = 0.1 —
//     the attack is required to demonstrably break the oblivious
//     guarantee (≥ 5× δ), otherwise the defense below is pinned against
//     a strawman.
//   - Against Options.Robust, the same attacks must collapse back to the
//     oblivious failure budget: per-instant violations within the usual
//     failBudget(seeds, δ), at a bounded constant-factor communication
//     overhead over the plain oblivious protocol.
//
// The configuration (k = 256, n = 20000, ε = 0.1) sits in the regime
// where the parking bias k·(1/p − 1) ≈ √k·ε_eff·n̄ is several times the
// ε·n band, so a broken defense fails loudly, not marginally.

import (
	"testing"
)

const (
	attackK     = 256
	attackN     = 20000
	attackEps   = 0.1
	attackDelta = 0.1 // the randomized protocol's per-instant failure budget
)

func attackSeeds(t *testing.T) int {
	if testing.Short() {
		return 12
	}
	return 30
}

func attackOptions(robust bool, seed uint64) Options {
	return Options{
		K:         attackK,
		Epsilon:   attackEps,
		Algorithm: AlgorithmRandomized,
		Robust:    robust,
		Seed:      seed,
	}
}

var attackStrategies = []AttackStrategy{AttackBoundaryCamp, AttackThresholdLearn}

// TestAdaptiveAttackBreaksPlainTracker pins the attack's potency: on the
// non-robust tracker both strategies must hold the answer outside the
// ±ε·n band at well over 5× the oblivious failure budget. (Empirically
// the rate is ≈ 0.9 — nearly every checkpoint violated — versus δ = 0.1.)
func TestAdaptiveAttackBreaksPlainTracker(t *testing.T) {
	for _, strat := range attackStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			seeds := attackSeeds(t)
			rateSum := 0.0
			for s := 0; s < seeds; s++ {
				seed := uint64(1000 + s*7919)
				out := RunAttack(attackOptions(false, seed), strat, attackN, seed)
				rateSum += out.ViolationRate()
			}
			meanRate := rateSum / float64(seeds)
			if meanRate < 5*attackDelta {
				t.Errorf("%v: mean ε-violation rate %.2f under attack; want ≥ %.1f (5×δ) — the attack no longer breaks the plain tracker",
					strat, meanRate, 5*attackDelta)
			}
		})
	}
}

// TestRobustModeWithstandsAttack pins the defense: the same adaptive
// strategies against Options.Robust must leave the answer inside the
// ε band within the oblivious failure budget δ at both checked instants,
// and the robust run's communication must stay a small constant factor
// over the plain oblivious protocol's.
func TestRobustModeWithstandsAttack(t *testing.T) {
	// Plain oblivious baseline words at the same configuration, for the
	// communication-overhead bound.
	baseWords := meanWordsOpt(attackOptions(false, 0), attackN, 3)
	for _, strat := range attackStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			seeds := attackSeeds(t)
			var failures [2]int
			worst := 0.0
			wordSum := 0.0
			for s := 0; s < seeds; s++ {
				seed := uint64(1000 + s*7919)
				out := RunAttack(attackOptions(true, seed), strat, attackN, seed)
				for idx, e := range out.Errs {
					if e > 1 {
						failures[idx]++
					}
				}
				if out.WorstErr > worst {
					worst = out.WorstErr
				}
				wordSum += float64(out.Words)
			}
			budget := failBudget(seeds, attackDelta)
			for idx, f := range failures {
				if f > budget {
					t.Errorf("instant %d: robust mode violated ε in %d of %d attacked seeds (budget %d, worst %.2f×ε·n)",
						idx, f, seeds, budget, worst)
				}
			}
			// Constant-factor communication: the boosted sampling rate and
			// the per-round re-randomization together cost ≈ 2.2× here.
			if ratio := wordSum / float64(seeds) / baseWords; ratio > 4 {
				t.Errorf("robust attacked run used %.1f× the plain oblivious words; want ≤ 4×", ratio)
			}
		})
	}
}

// TestRobustOptionValidation pins the facade's rejection of unsupported
// robust combinations and acceptance of the supported one.
func TestRobustOptionValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: did not panic", name)
			}
		}()
		f()
	}
	base := Options{K: 2, Epsilon: 0.1, Robust: true}
	for _, tc := range []struct {
		name  string
		build func()
	}{
		{"robust+deterministic", func() {
			o := base
			o.Algorithm = AlgorithmDeterministic
			NewCountTracker(o)
		}},
		{"robust+sampling", func() {
			o := base
			o.Algorithm = AlgorithmSampling
			NewCountTracker(o)
		}},
		{"robust+copies", func() {
			o := base
			o.Copies = 3
			NewCountTracker(o)
		}},
		{"robust+frequency", func() {
			NewFrequencyTracker(base)
		}},
		{"robust+rank", func() {
			NewRankTracker(base)
		}},
	} {
		mustPanic(tc.name, tc.build)
	}
	tr := NewCountTracker(base) // robust + randomized count: the supported mode
	tr.Observe(0)
	tr.Close()
}

// TestAdversaryDeterminism pins the harness itself: the same strategy,
// seed, and answer sequence must reproduce the same arrival sequence, so
// attack pins are replayable.
func TestAdversaryDeterminism(t *testing.T) {
	for _, strat := range attackStrategies {
		a := NewAdversary(strat, 8, 42)
		b := NewAdversary(strat, 8, 42)
		ans := 0.0
		for i := 0; i < 5000; i++ {
			if a.Next(ans) != b.Next(ans) {
				t.Fatalf("%v: diverged at step %d", strat, i)
			}
			if i%37 == 0 {
				ans += 1.5 // periodic answer changes exercise noteChange
			}
		}
	}
}
