package disttrack

import (
	"math"

	"disttrack/internal/boost"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/sample"
	"disttrack/internal/stats"
)

// RankTracker continuously tracks ranks over a totally ordered domain with
// absolute error ±ε·n(t), which also answers quantile queries — the paper's
// rank-tracking problem (Section 4).
//
// Without Options.ConcurrentIngest, one goroutine at a time may use the
// tracker; with it, Observe/ObserveBatch and the query methods are safe
// from any number of goroutines. The embedded core provides Flush,
// Metrics, and Close.
type RankTracker struct {
	opt Options
	k   int // == opt.K, hot-path copy on the same cache line as eng/fe
	core
	rankFn   func(x float64) float64
	quantile func(q, lo, hi float64) float64
}

// NewRankTracker builds a rank tracker. It panics on invalid options.
func NewRankTracker(opt Options) *RankTracker {
	opt.validate()
	if opt.Robust {
		panic("disttrack: Options.Robust is only supported by CountTracker (robust rank tracking is not implemented)")
	}
	t := &RankTracker{opt: opt, k: opt.K}
	switch opt.Algorithm {
	case AlgorithmRandomized:
		cfg := rank.Config{K: opt.K, Eps: opt.Epsilon, Rescale: opt.Rescale}
		if opt.Copies > 1 {
			root := stats.New(opt.Seed)
			ps := make([]proto.Protocol, opt.Copies)
			coords := make([]*rank.Coordinator, opt.Copies)
			for i := range ps {
				ps[i], coords[i] = rank.NewProtocol(cfg, root.Uint64())
			}
			t.mountCore(opt, boost.Wrap(ps))
			t.rankFn = func(x float64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Rank(x)
				}
				return stats.Median(ests)
			}
			t.quantile = bisect(t.rankFn)
			t.fe = frontend(opt, t.eng)
			return t
		}
		if opt.Topology == TopologyTree {
			tp, coord := rank.NewTreeProtocol(cfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.rankFn = coord.Rank
			t.quantile = coord.Quantile
		} else {
			p, coord := rank.NewProtocol(cfg, opt.Seed)
			t.mountCore(opt, p)
			t.rankFn = coord.Rank
			t.quantile = coord.Quantile
		}
	case AlgorithmDeterministic:
		if opt.Topology == TopologyTree {
			panic("disttrack: TopologyTree is incompatible with AlgorithmDeterministic rank tracking (its Greenwald-Khanna snapshots have no merge path for re-aggregation); use AlgorithmRandomized, AlgorithmSampling, or TopologyFlat")
		}
		p, coord := rank.NewDetProtocol(opt.K, opt.Epsilon)
		t.mountCore(opt, p)
		t.rankFn = coord.Rank
		t.quantile = coord.Quantile
	case AlgorithmSampling:
		scfg := sample.Config{K: opt.K, Eps: opt.Epsilon}
		if opt.Topology == TopologyTree {
			tp, coord := sample.NewTreeProtocol(scfg, opt.Fanout, opt.Seed)
			t.mountCoreTree(opt, tp)
			t.rankFn = coord.Rank
			t.quantile = bisect(coord.Rank)
		} else {
			p, coord := sample.NewProtocol(scfg, opt.Seed)
			t.mountCore(opt, p)
			t.rankFn = coord.Rank
			t.quantile = bisect(coord.Rank)
		}
	default:
		panic("disttrack: unknown Algorithm")
	}
	t.fe = frontend(opt, t.eng)
	return t
}

// bisect turns a rank function into a quantile function: it locates, by
// binary search over [lo, hi], a value whose estimated rank is q·n̂. On an
// empty tracker (n̂ = 0) there is no value of any rank, so it returns NaN.
func bisect(rankFn func(float64) float64) func(q, lo, hi float64) float64 {
	return func(q, lo, hi float64) float64 {
		total := rankFn(math.Inf(1))
		if total == 0 {
			return math.NaN()
		}
		target := q * total
		for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
			mid := (lo + hi) / 2
			if rankFn(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
}

// Observe records value arriving at the given site. The paper assumes
// distinct values; callers with duplicate values can break ties by adding a
// unique small offset.
func (t *RankTracker) Observe(site int, value float64) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if t.fe == nil {
		t.eng.Arrive(site, 0, value)
		return
	}
	t.fe.Observe(site, 0, value)
}

// ObserveBatch records count consecutive arrivals of value at the given
// site. It is equivalent to count Observe calls — same estimates, same
// Metrics, bit-identical protocol state. The randomized tracker ingests the
// run through the merge summaries' closed-form InsertRun (a run is already
// sorted, so full buffers skip the sort and same-value merges skip the
// element work), jumping between summary-emission, residual-sample, and
// report boundaries; note the paper's distinct-values assumption applies
// across the stream as a whole.
func (t *RankTracker) ObserveBatch(site int, value float64, count int) {
	if site < 0 || site >= t.k {
		panic("disttrack: site out of range")
	}
	if count < 0 {
		panic("disttrack: negative batch count")
	}
	if t.fe == nil {
		t.eng.ArriveBatch(site, 0, value, int64(count))
		return
	}
	t.fe.ObserveBatch(site, 0, value, int64(count))
}

// Rank returns the estimated number of observed values strictly smaller
// than x. With ConcurrentIngest it reads a quiescent snapshot: everything
// ingested up to some recent cascade boundary (call Flush first for an
// everything-observed-so-far barrier).
func (t *RankTracker) Rank(x float64) float64 {
	var v float64
	t.query(func() { v = t.rankFn(x) })
	return v
}

// Quantile returns a value whose estimated rank is q·n, located by bisection
// over the domain interval [lo, hi]. On an empty tracker (nothing observed
// yet) it returns NaN — there is no value of any rank. With ConcurrentIngest
// the whole bisection runs inside one quiescent snapshot, so every probe
// sees the same protocol state.
func (t *RankTracker) Quantile(q, lo, hi float64) float64 {
	var v float64
	t.query(func() { v = t.quantile(q, lo, hi) })
	return v
}

// CrashRestartCoordinator simulates a coordinator crash and durable
// restart; see CountTracker.CrashRestartCoordinator. Requires
// Options.Persist; incompatible with ConcurrentIngest and FaultPlan.
func (t *RankTracker) CrashRestartCoordinator() error {
	var rankFn func(x float64) float64
	var quantile func(q, lo, hi float64) float64
	var fresh proto.Coordinator
	switch t.opt.Algorithm {
	case AlgorithmRandomized:
		cfg := rank.Config{K: t.opt.K, Eps: t.opt.Epsilon, Rescale: t.opt.Rescale}
		if t.opt.Copies > 1 {
			coords := make([]*rank.Coordinator, t.opt.Copies)
			inner := make([]proto.Coordinator, t.opt.Copies)
			for i := range coords {
				coords[i] = rank.NewCoordinator(cfg)
				inner[i] = coords[i]
			}
			fresh = boost.WrapCoordinators(inner)
			rankFn = func(x float64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Rank(x)
				}
				return stats.Median(ests)
			}
			quantile = bisect(rankFn)
		} else {
			coord := rank.NewCoordinator(cfg)
			fresh, rankFn, quantile = coord, coord.Rank, coord.Quantile
		}
	case AlgorithmDeterministic:
		coord := rank.NewDetCoordinator(t.opt.K)
		fresh, rankFn, quantile = coord, coord.Rank, coord.Quantile
	case AlgorithmSampling:
		coord := sample.NewCoordinator(sample.Config{K: t.opt.K, Eps: t.opt.Epsilon})
		fresh, rankFn, quantile = coord, coord.Rank, bisect(coord.Rank)
	default:
		panic("disttrack: unknown Algorithm")
	}
	if _, err := t.crashRestartCoordinator(func() proto.Coordinator { return fresh }); err != nil {
		return err
	}
	t.rankFn, t.quantile = rankFn, quantile
	return nil
}
