package disttrack

import (
	"math"

	"disttrack/internal/boost"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/runtime"
	"disttrack/internal/sample"
	"disttrack/internal/stats"
)

// RankTracker continuously tracks ranks over a totally ordered domain with
// absolute error ±ε·n(t), which also answers quantile queries — the paper's
// rank-tracking problem (Section 4).
type RankTracker struct {
	opt      Options
	eng      *runtime.Runtime
	rankFn   func(x float64) float64
	quantile func(q, lo, hi float64) float64
}

// NewRankTracker builds a rank tracker. It panics on invalid options.
func NewRankTracker(opt Options) *RankTracker {
	opt.validate()
	t := &RankTracker{opt: opt}
	switch opt.Algorithm {
	case AlgorithmRandomized:
		cfg := rank.Config{K: opt.K, Eps: opt.Epsilon, Rescale: opt.Rescale}
		if opt.Copies > 1 {
			root := stats.New(opt.Seed)
			ps := make([]proto.Protocol, opt.Copies)
			coords := make([]*rank.Coordinator, opt.Copies)
			for i := range ps {
				ps[i], coords[i] = rank.NewProtocol(cfg, root.Uint64())
			}
			t.eng = mount(opt, boost.Wrap(ps))
			t.rankFn = func(x float64) float64 {
				ests := make([]float64, len(coords))
				for i, c := range coords {
					ests[i] = c.Rank(x)
				}
				return stats.Median(ests)
			}
			t.quantile = bisect(t.rankFn)
			return t
		}
		p, coord := rank.NewProtocol(cfg, opt.Seed)
		t.eng = mount(opt, p)
		t.rankFn = coord.Rank
		t.quantile = coord.Quantile
	case AlgorithmDeterministic:
		p, coord := rank.NewDetProtocol(opt.K, opt.Epsilon)
		t.eng = mount(opt, p)
		t.rankFn = coord.Rank
		t.quantile = coord.Quantile
	case AlgorithmSampling:
		p, coord := sample.NewProtocol(sample.Config{K: opt.K, Eps: opt.Epsilon}, opt.Seed)
		t.eng = mount(opt, p)
		t.rankFn = coord.Rank
		t.quantile = bisect(coord.Rank)
	default:
		panic("disttrack: unknown Algorithm")
	}
	return t
}

// bisect turns a rank function into a quantile function: it locates, by
// binary search over [lo, hi], a value whose estimated rank is q·n̂.
func bisect(rankFn func(float64) float64) func(q, lo, hi float64) float64 {
	return func(q, lo, hi float64) float64 {
		total := rankFn(math.Inf(1))
		target := q * total
		for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
			mid := (lo + hi) / 2
			if rankFn(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
}

// Observe records value arriving at the given site. The paper assumes
// distinct values; callers with duplicate values can break ties by adding a
// unique small offset.
func (t *RankTracker) Observe(site int, value float64) {
	if site < 0 || site >= t.opt.K {
		panic("disttrack: site out of range")
	}
	t.eng.Arrive(site, 0, value)
}

// ObserveBatch records count consecutive arrivals of value at the given
// site. It is equivalent to count Observe calls — same estimates, same
// Metrics, bit-identical protocol state. The randomized tracker ingests the
// run through the merge summaries' closed-form InsertRun (a run is already
// sorted, so full buffers skip the sort and same-value merges skip the
// element work), jumping between summary-emission, residual-sample, and
// report boundaries; note the paper's distinct-values assumption applies
// across the stream as a whole.
func (t *RankTracker) ObserveBatch(site int, value float64, count int) {
	if site < 0 || site >= t.opt.K {
		panic("disttrack: site out of range")
	}
	if count < 0 {
		panic("disttrack: negative batch count")
	}
	t.eng.ArriveBatch(site, 0, value, int64(count))
}

// Rank returns the estimated number of observed values strictly smaller
// than x.
func (t *RankTracker) Rank(x float64) float64 { return t.rankFn(x) }

// Quantile returns a value whose estimated rank is q·n, located by bisection
// over the domain interval [lo, hi].
func (t *RankTracker) Quantile(q, lo, hi float64) float64 { return t.quantile(q, lo, hi) }

// Metrics returns the accumulated communication and space costs.
func (t *RankTracker) Metrics() Metrics { return metricsFrom(t.eng.Metrics()) }

// Close stops the concurrent runtime's goroutines (no-op otherwise).
func (t *RankTracker) Close() { t.eng.Close() }
