package disttrack

// FrequencyViaRank adapts a RankTracker into a frequency tracker, following
// the reduction in Section 1.2 of the paper: each occurrence of item x is
// mapped to the pair (x, y) for a fresh tie-breaker y — encoded here as the
// single value x + y/(maxMultiplicity+1) ∈ [x, x+1) — and the frequency of
// x is recovered as rank(x+1) − rank(x).
//
// The reduction shows rank tracking is the harder problem: any rank-tracking
// guarantee of ±εn yields a frequency guarantee of ±2εn. Construct the
// underlying tracker with Epsilon/2 to get ±εn frequencies.
//
// FrequencyViaRank is single-feeder even when opt.ConcurrentIngest is set:
// its per-item tie-breaker map is not synchronized, so one goroutine at a
// time may call Observe (queries still benefit from the inner tracker's
// quiesced snapshots).
type FrequencyViaRank struct {
	rt   *RankTracker
	next map[int64]int64 // per-item tie-breaker counter
	cap  int64           // maximum multiplicity the encoding supports
}

// NewFrequencyViaRank wraps a rank tracker built from opt. maxMultiplicity
// bounds how many occurrences of one item can be encoded (tie-breakers are
// packed into the unit interval); it panics if not positive.
func NewFrequencyViaRank(opt Options, maxMultiplicity int64) *FrequencyViaRank {
	if maxMultiplicity <= 0 {
		panic("disttrack: maxMultiplicity must be positive")
	}
	return &FrequencyViaRank{
		rt:   NewRankTracker(opt),
		next: make(map[int64]int64),
		cap:  maxMultiplicity,
	}
}

// Observe records one occurrence of item at site. Items must be
// non-negative. It panics if an item exceeds the configured multiplicity.
func (f *FrequencyViaRank) Observe(site int, item int64) {
	if item < 0 {
		panic("disttrack: FrequencyViaRank requires non-negative items")
	}
	y := f.next[item]
	if y >= f.cap {
		panic("disttrack: item multiplicity exceeds maxMultiplicity")
	}
	f.next[item] = y + 1
	value := float64(item) + float64(y)/float64(f.cap+1)
	f.rt.Observe(site, value)
}

// Estimate returns the frequency estimate for item:
// rank((item,∞)) − rank((item,0)).
func (f *FrequencyViaRank) Estimate(item int64) float64 {
	return f.rt.Rank(float64(item)+1) - f.rt.Rank(float64(item))
}

// Metrics returns the underlying rank tracker's cost ledger.
func (f *FrequencyViaRank) Metrics() Metrics { return f.rt.Metrics() }

// Flush forwards the underlying tracker's ingestion barrier; the returned
// error is terminal (the transport failed under concurrent ingestion).
func (f *FrequencyViaRank) Flush() error { return f.rt.Flush() }

// Close stops the underlying tracker's concurrent runtime, if any,
// returning its terminal error (nil when the run was healthy).
func (f *FrequencyViaRank) Close() error { return f.rt.Close() }
