package disttrack

// The benchmark harness regenerates every evaluation artifact of the paper
// (the experiment index E1–E14 is documented in README.md; E1–E13 are the
// paper's artifacts, E14 is the ingestion-throughput suite). Each benchmark
// runs one full tracking experiment per iteration and reports the paper's
// cost measures as custom metrics:
//
//	words/op      total communication volume (paper's word unit)
//	msgs/op       total messages (a broadcast costs k)
//	sitewords     high-water per-site space in words
//	coverage      fraction of checkpoints inside the ε-band
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-independent (they are protocol costs, not
// wall-clock); ns/op only reflects the simulator's speed.

import (
	"math"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/experiments"
	"disttrack/internal/freq"
	"disttrack/internal/lowerbound"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/rounds"
	"disttrack/internal/sample"
	"disttrack/internal/stats"
	"disttrack/internal/summary/merge"
	"disttrack/internal/wire"
)

const (
	benchN   = 100000
	benchEps = 0.05
	benchK   = 64
)

// reportRow runs one Table 1 row per iteration and reports its costs.
func reportRow(b *testing.B, rc experiments.RowConfig) {
	b.Helper()
	var res experiments.RowResult
	for i := 0; i < b.N; i++ {
		rc.Seed = uint64(i + 1)
		res = experiments.Run(rc)
	}
	b.ReportMetric(float64(res.Words), "words/op")
	b.ReportMetric(float64(res.Messages), "msgs/op")
	b.ReportMetric(float64(res.SiteSpace), "sitewords")
	b.ReportMetric(1-res.BadFrac, "coverage")
}

// --- E1: Table 1, count rows ---

func BenchmarkTable1CountDeterministic(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Count,
		Alg: experiments.Deterministic, K: benchK, Eps: benchEps, N: benchN, Rescale: 1})
}

func BenchmarkTable1CountRandomized(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Count,
		Alg: experiments.Randomized, K: benchK, Eps: benchEps, N: benchN, Rescale: 1})
}

// --- E3: Table 1, frequency rows ---

func BenchmarkTable1FreqDeterministic(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Freq,
		Alg: experiments.Deterministic, K: benchK, Eps: benchEps, N: benchN, Rescale: 1})
}

func BenchmarkTable1FreqRandomized(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Freq,
		Alg: experiments.Randomized, K: benchK, Eps: benchEps, N: benchN, Rescale: 1})
}

// --- E4: Table 1, rank rows ---

func BenchmarkTable1RankDeterministic(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Rank,
		Alg: experiments.Deterministic, K: benchK, Eps: benchEps, N: benchN / 2, Rescale: 1})
}

func BenchmarkTable1RankRandomized(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Rank,
		Alg: experiments.Randomized, K: benchK, Eps: benchEps, N: benchN / 2, Rescale: 1})
}

// --- E5: Table 1, sampling row + crossover ---

func BenchmarkTable1Sampling(b *testing.B) {
	reportRow(b, experiments.RowConfig{Problem: experiments.Count,
		Alg: experiments.Sampling, K: benchK, Eps: benchEps, N: benchN, Rescale: 1})
}

func BenchmarkSamplingCrossover(b *testing.B) {
	// ε = 0.1 so 1/ε² = 100; k sweeps across the crossover.
	for _, k := range []int{16, 100, 400} {
		k := k
		b.Run(bname("k", k), func(b *testing.B) {
			var rand, samp experiments.RowResult
			for i := 0; i < b.N; i++ {
				rand = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Randomized, K: k, Eps: 0.1, N: benchN, Seed: uint64(i + 1), Rescale: 1})
				samp = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Sampling, K: k, Eps: 0.1, N: benchN, Seed: uint64(i + 1), Rescale: 1})
			}
			b.ReportMetric(float64(rand.Words), "randwords")
			b.ReportMetric(float64(samp.Words), "sampwords")
		})
	}
}

// --- E2: scaling shapes ---

func BenchmarkCountScalingK(b *testing.B) {
	for _, k := range []int{4, 16, 64, 256} {
		k := k
		b.Run(bname("k", k), func(b *testing.B) {
			var det, rnd experiments.RowResult
			for i := 0; i < b.N; i++ {
				det = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Deterministic, K: k, Eps: benchEps, N: benchN, Seed: uint64(i + 1)})
				rnd = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Randomized, K: k, Eps: benchEps, N: benchN, Seed: uint64(i + 1), Rescale: 1})
			}
			b.ReportMetric(float64(det.Words), "detwords")
			b.ReportMetric(float64(rnd.Words), "randwords")
			b.ReportMetric(float64(det.Words)/float64(rnd.Words), "det/rand")
		})
	}
}

func BenchmarkCountScalingEps(b *testing.B) {
	for _, eps := range []float64{0.1, 0.05, 0.025} {
		eps := eps
		b.Run(bnamef("eps", eps), func(b *testing.B) {
			var rnd experiments.RowResult
			for i := 0; i < b.N; i++ {
				rnd = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Randomized, K: benchK, Eps: eps, N: benchN, Seed: uint64(i + 1), Rescale: 1})
			}
			b.ReportMetric(float64(rnd.Words), "words")
			b.ReportMetric(float64(rnd.Words)*eps, "words*eps")
		})
	}
}

func BenchmarkCountScalingN(b *testing.B) {
	for _, n := range []int{benchN / 4, benchN, benchN * 4} {
		n := n
		b.Run(bname("n", n), func(b *testing.B) {
			var rnd experiments.RowResult
			for i := 0; i < b.N; i++ {
				rnd = experiments.Run(experiments.RowConfig{Problem: experiments.Count,
					Alg: experiments.Randomized, K: benchK, Eps: benchEps, N: n, Seed: uint64(i + 1), Rescale: 1})
			}
			b.ReportMetric(float64(rnd.Words), "words")
			b.ReportMetric(float64(rnd.Words)/math.Log2(float64(n)), "words/logN")
		})
	}
}

// --- E6: accuracy at the calibrated (paper-default) constants ---

func BenchmarkAccuracy(b *testing.B) {
	for _, p := range []experiments.Problem{experiments.Count, experiments.Freq, experiments.Rank} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var res experiments.RowResult
			for i := 0; i < b.N; i++ {
				res = experiments.Run(experiments.RowConfig{Problem: p,
					Alg: experiments.Randomized, K: 16, Eps: 0.1, N: benchN / 2, Seed: uint64(i + 1)})
			}
			b.ReportMetric(1-res.BadFrac, "coverage")
		})
	}
}

// --- E7: Theorem 2.2 hard distribution µ ---

func BenchmarkOneWayHard(b *testing.B) {
	var mu experiments.MuSummary
	for i := 0; i < b.N; i++ {
		mu = experiments.RunMu(benchK, 0.01, benchN, 4)
	}
	b.ReportMetric(mu.RobinDetMsgs, "detmsgs")
	b.ReportMetric(mu.RobinRandMsgs, "randmsgs")
}

// --- E8: Theorem 2.4 subround adversary ---

func BenchmarkTwoWayHard(b *testing.B) {
	var res lowerbound.HardRunResult
	for i := 0; i < b.N; i++ {
		res = lowerbound.RunHardInstance(benchK, 0.1, benchN/2, uint64(i+1))
	}
	b.ReportMetric(float64(res.Messages), "msgs/op")
	b.ReportMetric(float64(res.Messages)/float64(res.Subrounds*res.K), "msgs/subround/k")
	b.ReportMetric(1-float64(res.BadSubrounds)/float64(res.Subrounds), "coverage")
}

// --- E9: Figure 1 / Claim A.1 ---

func BenchmarkOneBit(b *testing.B) {
	for _, z := range []int{16, 128, 1024} {
		z := z
		b.Run(bname("z", z), func(b *testing.B) {
			rng := stats.New(42)
			var success float64
			for i := 0; i < b.N; i++ {
				success = lowerbound.SuccessProbability(1024, z, 2000, rng)
			}
			b.ReportMetric(success, "success")
			b.ReportMetric(1-lowerbound.AnalyticFailure(1024, z), "analytic")
		})
	}
}

// --- E10: Theorem 3.2 space-communication trade-off ---

func BenchmarkSpaceCommTradeoff(b *testing.B) {
	for _, alg := range []experiments.Alg{experiments.Randomized, experiments.Deterministic, experiments.Sampling} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			var res experiments.RowResult
			for i := 0; i < b.N; i++ {
				res = experiments.Run(experiments.RowConfig{Problem: experiments.Freq,
					Alg: alg, K: benchK, Eps: benchEps, N: benchN / 2, Seed: uint64(i + 1), Rescale: 1})
			}
			b.ReportMetric(float64(res.Words), "words")
			b.ReportMetric(float64(res.SiteSpace), "sitewords")
			b.ReportMetric(float64(res.Words)*float64(res.SiteSpace), "C*M")
		})
	}
}

// --- E11: estimator (2) vs (4) bias ablation ---

func BenchmarkEstimatorBias(b *testing.B) {
	var biased, unbiased float64
	for i := 0; i < b.N; i++ {
		biased, unbiased = experiments.BiasAblation(16, 20000, 50, 20, 0.1)
	}
	b.ReportMetric(biased, "eq2bias")
	b.ReportMetric(unbiased, "eq4bias")
}

// --- E12: p-halving adjustment ablation ---

func BenchmarkAdjustmentAblation(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, without = experiments.AdjustmentAblation(9, 10000, 40, 0.02)
	}
	b.ReportMetric(with, "adjusted")
	b.ReportMetric(without, "unadjusted")
}

// --- E13: tracking vs one-shot (paper §1.3) ---

func BenchmarkTrackingVsOneShot(b *testing.B) {
	for _, p := range []experiments.Problem{experiments.Count, experiments.Freq, experiments.Rank} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var c experiments.OneShotComparison
			for i := 0; i < b.N; i++ {
				c = experiments.TrackingVsOneShot(p, benchK, benchEps, benchN/2, uint64(i+1))
			}
			b.ReportMetric(float64(c.TrackingWords), "trackwords")
			b.ReportMetric(float64(c.OneShotWords), "oneshotwords")
			b.ReportMetric(c.RatioPerLogN, "ratio/logN")
		})
	}
}

// --- E14: end-to-end ingestion throughput of the public API (not a paper
// artifact, but what a downstream user will ask first). ObserveThroughput
// drives the per-element path; ObserveBatch drives the skip-sampling batch
// path with block-structured streams and reports ns per *element*. ---

func BenchmarkObserveThroughput(b *testing.B) {
	for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			tr := NewCountTracker(Options{K: 16, Epsilon: 0.05, Algorithm: alg, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Observe(i % 16)
			}
		})
	}
}

func BenchmarkObserveBatch(b *testing.B) {
	const block = 1024
	for _, k := range []int{16, 64} {
		k := k
		for _, alg := range []Algorithm{AlgorithmRandomized, AlgorithmDeterministic, AlgorithmSampling} {
			alg := alg
			b.Run(alg.String()+"/"+bname("k", k), func(b *testing.B) {
				tr := NewCountTracker(Options{K: k, Epsilon: 0.05, Algorithm: alg, Seed: 1})
				b.ResetTimer()
				for done := 0; done < b.N; done += block {
					n := block
					if rest := b.N - done; rest < n {
						n = rest
					}
					tr.ObserveBatch(done/block%k, n)
				}
			})
		}
	}
}

func BenchmarkObserveBatchFreq(b *testing.B) {
	// A hot flow: runs of the same item at one gateway, the frequency
	// tracker's natural batch shape.
	const block = 1024
	tr := NewFrequencyTracker(Options{K: 16, Epsilon: 0.05, Seed: 1})
	b.ResetTimer()
	for done := 0; done < b.N; done += block {
		n := block
		if rest := b.N - done; rest < n {
			n = rest
		}
		tr.ObserveBatch(done/block%16, int64(done/block%257), n)
	}
}

// --- E15: summary-engine microbenchmarks (not a paper artifact): the
// merge-summary hot path that dominates the randomized rank tracker, and the
// rank batch ingestion path built on InsertRun. ---

func BenchmarkMergeInsert(b *testing.B) {
	for _, s := range []int{8, 64} {
		s := s
		b.Run(bname("s", s), func(b *testing.B) {
			pool := merge.NewPool()
			sum := pool.NewSummary(s, stats.New(1))
			rng := stats.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum.Insert(rng.Float64())
			}
		})
	}
}

func BenchmarkMergeInsertRun(b *testing.B) {
	// Runs of identical values, the shape rank.ArriveBatch feeds; ns/op is
	// per element.
	const runLen = 1024
	for _, s := range []int{8, 64} {
		s := s
		b.Run(bname("s", s), func(b *testing.B) {
			pool := merge.NewPool()
			sum := pool.NewSummary(s, stats.New(1))
			rng := stats.New(2)
			b.ResetTimer()
			for done := 0; done < b.N; done += runLen {
				n := runLen
				if rest := b.N - done; rest < n {
					n = rest
				}
				sum.InsertRun(rng.Float64(), int64(n))
			}
		})
	}
}

func BenchmarkMergeNodeLifecycle(b *testing.B) {
	// One full tree-node lifecycle per op: draw from the pool, ingest a
	// block, snapshot, release — the per-block cost of the rank site.
	const block = 512
	pool := merge.NewPool()
	rng := stats.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := pool.NewSummary(16, rng)
		sum.InsertRun(float64(i), block)
		snap := sum.Snapshot()
		_ = snap.Words()
		sum.Release()
	}
}

func BenchmarkRankObserveBatch(b *testing.B) {
	// The public rank batch path with block-structured runs (ns per
	// element); contrast with BenchmarkObserveThroughput/randomized-style
	// per-element feeding in BenchmarkRankObserveSerial.
	const block = 1024
	tr := NewRankTracker(Options{K: 16, Epsilon: 0.05, Seed: 1})
	b.ResetTimer()
	for done := 0; done < b.N; done += block {
		n := block
		if rest := b.N - done; rest < n {
			n = rest
		}
		tr.ObserveBatch(done/block%16, float64(done/block), n)
	}
}

func BenchmarkRankObserveSerial(b *testing.B) {
	tr := NewRankTracker(Options{K: 16, Epsilon: 0.05, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(i%16, float64(i))
	}
}

// --- E16: wire codec + transport microbenchmarks (not a paper artifact):
// the cost of putting the protocols on a real wire. BenchmarkWireEncode and
// BenchmarkWireRoundTrip price one message; the ObserveTransport pair shows
// the ingest hot path end to end on all three transports — steady-state
// encode/decode adds 0 allocs/op (messages amortize geometrically under
// skip-sampling, and wire.Append itself never allocates). ---

var wireHotMsgs = []proto.Message{
	rounds.UpMsg{N: 123456},
	count.UpdateMsg{N: 99},
	freq.CounterMsg{Item: 7, Count: 3},
	rank.SampleMsg{Chunk: 1, Index: 2, Value: 3.5},
	sample.ElementMsg{Item: 1, Value: 2, Level: 3},
}

func BenchmarkWireEncode(b *testing.B) {
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := wireHotMsgs[i%len(wireHotMsgs)]
		var err error
		buf, err = wire.Append(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	buf := make([]byte, 0, 256)
	var dec wire.Decoder // pooled scratch: decode is 0 allocs/op steady-state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := wireHotMsgs[i%len(wireHotMsgs)]
		var err error
		buf, err = wire.Append(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err = dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserveTransport(b *testing.B) {
	for _, tr := range []Transport{TransportSequential, TransportGoroutine, TransportTCP} {
		tr := tr
		b.Run(tr.String(), func(b *testing.B) {
			t := NewCountTracker(Options{K: 16, Epsilon: 0.05, Seed: 1, Transport: tr})
			defer t.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Observe(i % 16)
			}
		})
	}
}

func BenchmarkObserveBatchTransport(b *testing.B) {
	// The acceptance benchmark for the wire layer: the batch ingest path
	// over the socket transport must stay at 0 allocs/op, i.e. framing,
	// encoding, and decoding the protocol's messages costs nothing per
	// element in steady state.
	const block = 1024
	for _, tr := range []Transport{TransportSequential, TransportGoroutine, TransportTCP} {
		tr := tr
		b.Run(tr.String(), func(b *testing.B) {
			t := NewCountTracker(Options{K: 16, Epsilon: 0.05, Seed: 1, Transport: tr})
			defer t.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += block {
				n := block
				if rest := b.N - done; rest < n {
					n = rest
				}
				t.ObserveBatch(done/block%16, n)
			}
		})
	}
}

// --- E17: multi-producer ingestion throughput (not a paper artifact): the
// concurrent frontend (Options.ConcurrentIngest) fed by N producer
// goroutines, against the single-goroutine serial baseline. ns/op is
// aggregate wall-clock per element across all producers. The "serial" row
// is the plain tracker (no frontend) fed by the benchmark goroutine — the
// number the p=N rows must beat on multicore hardware; on a single-core
// runner the staging mutex is pure overhead and p=N can only tie at best,
// so compare rows within one machine's snapshot. ---

// benchProducers drives the staging path from `producers` goroutines over
// the SAME striped global stream regardless of producer count (producer p
// handles global indices g ≡ p (mod producers), the feedStriped partition
// from ingest_test.go), so every row — including the serial baseline run
// with the same indexing — ingests an identical multiset of (site, item)
// arrivals and only the feeding concurrency varies.
func benchProducers(b *testing.B, producers int, observe func(g int), flush func() error) {
	b.Helper()
	feedStriped(producers, b.N, observe)
	if err := flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMultiProducerIngest(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		tr := NewCountTracker(Options{K: 16, Epsilon: 0.05, Seed: 1})
		defer tr.Close()
		b.ResetTimer()
		for g := 0; g < b.N; g++ {
			tr.Observe(g % 16)
		}
	})
	for _, producers := range []int{1, 2, 8} {
		producers := producers
		b.Run(bname("p", producers), func(b *testing.B) {
			tr := NewCountTracker(Options{K: 16, Epsilon: 0.05, Seed: 1, ConcurrentIngest: true})
			defer tr.Close()
			b.ResetTimer()
			benchProducers(b, producers,
				func(g int) { tr.Observe(g % 16) },
				tr.Flush)
		})
	}
}

func BenchmarkMultiProducerIngestFreq(b *testing.B) {
	// The same block-structured item stream (runs of a hot item rotating
	// through a small set) on every row; only the producer count varies.
	item := func(g int) int64 { return int64(g / 64 % 31) }
	b.Run("serial", func(b *testing.B) {
		tr := NewFrequencyTracker(Options{K: 16, Epsilon: 0.05, Seed: 1})
		defer tr.Close()
		b.ResetTimer()
		for g := 0; g < b.N; g++ {
			tr.Observe(g%16, item(g))
		}
	})
	for _, producers := range []int{1, 8} {
		producers := producers
		b.Run(bname("p", producers), func(b *testing.B) {
			tr := NewFrequencyTracker(Options{K: 16, Epsilon: 0.05, Seed: 1, ConcurrentIngest: true})
			defer tr.Close()
			b.ResetTimer()
			benchProducers(b, producers,
				func(g int) { tr.Observe(g%16, item(g)) },
				tr.Flush)
		})
	}
}

// --- E18: hierarchical fan-in (not a paper artifact): why the coordinator
// tree exists. Per iteration one flat star and one square 2-level tree
// (fan-out √k) ingest the same batch stream; rootmsgs is the tree root's
// fan-in message count against the flat star's flatmsgs at the same k, and
// fanin is their ratio. The flat root pays Ω(k) per round for broadcasts
// alone, the tree root O(√k) children — the ratio widens with k (the ≥5×
// margin at k=1024 is pinned in guarantee_test.go). ---

func BenchmarkTreeFanIn(b *testing.B) {
	// Same ε and N as the TestTreeRootFanInAcceptance pin, so the k=1024
	// row here is the pinned ≥5× claim measured as a benchmark artifact.
	const (
		fanInEps = 0.1
		fanInN   = 2 * benchN
	)
	for _, cfg := range []struct{ k, fanout int }{
		{64, 8}, {256, 16}, {1024, 32}, {4096, 64},
	} {
		cfg := cfg
		b.Run(bname("k", cfg.k), func(b *testing.B) {
			var flat, tree Metrics
			for i := 0; i < b.N; i++ {
				seed := uint64(i + 1)
				flat = metricsForOpt(Options{K: cfg.k, Epsilon: fanInEps,
					Algorithm: AlgorithmRandomized}, fanInN, seed)
				tree = metricsForOpt(Options{K: cfg.k, Epsilon: fanInEps,
					Algorithm: AlgorithmRandomized, Topology: TopologyTree, Fanout: cfg.fanout}, fanInN, seed)
			}
			b.ReportMetric(float64(flat.Messages), "flatmsgs")
			b.ReportMetric(float64(tree.LevelMessages[1]), "rootmsgs")
			b.ReportMetric(float64(flat.Messages)/float64(tree.LevelMessages[1]), "fanin")
		})
	}
}

func bname(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func bnamef(prefix string, v float64) string {
	switch v {
	case 0.1:
		return prefix + "=0.1"
	case 0.05:
		return prefix + "=0.05"
	case 0.025:
		return prefix + "=0.025"
	}
	return prefix
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
