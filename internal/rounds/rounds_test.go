package rounds

import (
	"math"
	"testing"

	"disttrack/internal/proto"
)

func TestSiteDoublingReports(t *testing.T) {
	s := NewSite()
	var reports []int64
	out := func(m proto.Message) { reports = append(reports, m.(UpMsg).N) }
	for i := 0; i < 1000; i++ {
		s.Arrive(out)
	}
	want := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	if len(reports) != len(want) {
		t.Fatalf("got %d reports %v, want %v", len(reports), reports, want)
	}
	for i := range want {
		if reports[i] != want[i] {
			t.Fatalf("report %d = %d, want %d", i, reports[i], want[i])
		}
	}
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSiteReportCountLogarithmic(t *testing.T) {
	s := NewSite()
	count := 0
	out := func(proto.Message) { count++ }
	const n = 1 << 20
	for i := 0; i < n; i++ {
		s.Arrive(out)
	}
	if count != 21 { // 1, 2, ..., 2^20
		t.Fatalf("report count = %d, want 21", count)
	}
}

func TestGapSkipMatchesArrives(t *testing.T) {
	// Interleaving Skip(g <= Gap()) with single Arrives must leave the site
	// in exactly the state that per-element Arrives produce, with the same
	// doubling reports.
	ref, fast := NewSite(), NewSite()
	var refReports, fastReports []int64
	refOut := func(m proto.Message) { refReports = append(refReports, m.(UpMsg).N) }
	fastOut := func(m proto.Message) { fastReports = append(fastReports, m.(UpMsg).N) }

	total := int64(0)
	for total < 100000 {
		g := fast.Gap()
		fast.Skip(g)
		fast.Arrive(fastOut) // the arrival that crosses the threshold
		for i := int64(0); i <= g; i++ {
			ref.Arrive(refOut)
		}
		total += g + 1
	}
	if ref.N() != fast.N() || ref.Gap() != fast.Gap() {
		t.Fatalf("state diverged: ref n=%d gap=%d, fast n=%d gap=%d",
			ref.N(), ref.Gap(), fast.N(), fast.Gap())
	}
	if len(refReports) != len(fastReports) {
		t.Fatalf("report counts diverged: %d vs %d", len(refReports), len(fastReports))
	}
	for i := range refReports {
		if refReports[i] != fastReports[i] {
			t.Fatalf("report %d diverged: %d vs %d", i, refReports[i], fastReports[i])
		}
	}
}

func TestSkipPanicsPastThreshold(t *testing.T) {
	s := NewSite()
	defer func() {
		if recover() == nil {
			t.Fatal("Skip past Gap() did not panic")
		}
	}()
	s.Skip(s.Gap() + 1)
}

func TestCoordinatorBroadcastFactor(t *testing.T) {
	c := NewCoordinator(2)
	var broadcasts []int64
	bc := func(m proto.Message) { broadcasts = append(broadcasts, m.(BroadcastMsg).NBar) }

	feed := func(from int, n int64) bool { return c.Deliver(from, UpMsg{N: n}, bc) }

	if !feed(0, 1) {
		t.Fatal("first report should trigger the first broadcast")
	}
	// Doubling reports from both sites; n̄ must grow by factor >= 2 each time.
	for _, step := range []struct {
		from int
		n    int64
	}{{1, 1}, {0, 2}, {1, 2}, {0, 4}, {1, 4}, {0, 8}, {1, 8}} {
		feed(step.from, step.n)
	}
	for i := 1; i < len(broadcasts); i++ {
		ratio := float64(broadcasts[i]) / float64(broadcasts[i-1])
		if ratio < 2 || ratio > 4 {
			t.Fatalf("broadcast ratio %v out of [2,4): %v", ratio, broadcasts)
		}
	}
	if c.Round() != len(broadcasts) {
		t.Fatalf("Round() = %d, broadcasts %d", c.Round(), len(broadcasts))
	}
}

func TestNBarConstantFactorOfN(t *testing.T) {
	// Simulate k sites with the real doubling reports and verify that n̄
	// stays within a constant factor of the true n at all times once the
	// first broadcast happened.
	const k = 5
	c := NewCoordinator(k)
	sites := make([]*Site, k)
	for i := range sites {
		sites[i] = NewSite()
	}
	var nBarSeen int64
	bcast := func(m proto.Message) {
		nBarSeen = m.(BroadcastMsg).NBar
		for _, s := range sites {
			s.Deliver(m)
		}
	}
	trueN := int64(0)
	for i := 0; i < 100000; i++ {
		site := i % k
		trueN++
		sites[site].Arrive(func(m proto.Message) {
			c.Deliver(site, m, bcast)
		})
		if nBarSeen > 0 {
			ratio := float64(trueN) / float64(nBarSeen)
			if ratio < 0.25 || ratio > 8 {
				t.Fatalf("n=%d n̄=%d ratio %v out of constant-factor band",
					trueN, nBarSeen, ratio)
			}
		}
	}
	if nBarSeen == 0 {
		t.Fatal("no broadcast ever happened")
	}
}

func TestDeliverIgnoresOtherMessages(t *testing.T) {
	s := NewSite()
	if s.Deliver(UpMsg{N: 3}) {
		t.Fatal("site treated UpMsg as a round broadcast")
	}
	c := NewCoordinator(1)
	if c.Deliver(0, BroadcastMsg{NBar: 3}, func(proto.Message) {}) {
		t.Fatal("coordinator treated BroadcastMsg as a doubling report")
	}
}

func TestPSchedule(t *testing.T) {
	const k = 16
	const eps = 0.1
	// While n̄ <= √k/ε = 40, p must be 1.
	for _, n := range []int64{0, 1, 10, 40} {
		if p := P(n, k, eps); p != 1 {
			t.Fatalf("P(%d) = %v, want 1", n, p)
		}
	}
	// Beyond: p = 1/⌊εn̄/√k⌋₂.
	cases := []struct {
		n    int64
		want float64
	}{
		{80, 0.5},        // εn̄/√k = 2
		{100, 0.5},       // 2.5 -> floor2 = 2
		{160, 0.25},      // 4
		{1000, 1.0 / 16}, // 25 -> 16
	}
	for _, c := range cases {
		if p := P(c.n, k, eps); math.Abs(p-c.want) > 1e-12 {
			t.Fatalf("P(%d) = %v, want %v", c.n, p, c.want)
		}
	}
}

func TestPMonotoneNonIncreasing(t *testing.T) {
	const k = 9
	const eps = 0.05
	prev := 1.0
	for n := int64(1); n < 1e7; n *= 2 {
		p := P(n, k, eps)
		if p > prev {
			t.Fatalf("p increased: %v -> %v at n=%d", prev, p, n)
		}
		prev = p
	}
}

func TestPIsInverseOfPowerOfTwo(t *testing.T) {
	const k = 25
	const eps = 0.03
	for n := int64(1); n < 1e8; n = n*3 + 1 {
		p := P(n, k, eps)
		inv := 1 / p
		if math.Abs(inv-math.Round(inv)) > 1e-9 {
			t.Fatalf("1/p = %v not an integer at n=%d", inv, n)
		}
		ri := int64(math.Round(inv))
		if ri&(ri-1) != 0 {
			t.Fatalf("1/p = %d not a power of two at n=%d", ri, n)
		}
	}
}

func TestHalvingSteps(t *testing.T) {
	cases := []struct {
		old, new float64
		want     int
	}{
		{1, 1, 0},
		{1, 0.5, 1},
		{0.5, 0.125, 2},
		{1.0 / 4, 1.0 / 64, 4},
		{0.5, 0.5, 0},
		{0.25, 0.5, 0}, // p never increases; defensive
	}
	for _, c := range cases {
		if got := HalvingSteps(c.old, c.new); got != c.want {
			t.Fatalf("HalvingSteps(%v, %v) = %d, want %d", c.old, c.new, got, c.want)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCoordinator(0) did not panic")
		}
	}()
	NewCoordinator(0)
}

func TestSpaceWords(t *testing.T) {
	if NewSite().SpaceWords() != 3 {
		t.Fatal("site space")
	}
	if NewCoordinator(7).SpaceWords() != 10 {
		t.Fatal("coordinator space")
	}
}

func TestMessageWords(t *testing.T) {
	if (UpMsg{}).Words() != 1 || (BroadcastMsg{}).Words() != 1 {
		t.Fatal("round messages must cost one word")
	}
}
