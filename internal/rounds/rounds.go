// Package rounds implements the constant-factor tracking of the global count
// n that all three protocols of the paper share (Section 2.1, "Dealing with
// a decreasing p"):
//
//   - every site reports when its local counter doubles (1, 2, 4, ...);
//   - the coordinator maintains n′ = Σ n′_i over the last reports and
//     broadcasts n′ when it has grown by a factor in [2, 4) since the last
//     broadcast, defining rounds;
//   - n̄, the last broadcast value, is always a constant-factor
//     approximation of the true n within a round.
//
// The package also provides the paper's sampling-probability schedule
// p = 1 for n̄ ≤ √k/ε and p = 1/⌊εn̄/√k⌋₂ afterwards, which halves (or
// quarters) across round boundaries.
//
// Total cost: O(k·logN) messages — each site reports O(logN) times and the
// coordinator broadcasts O(logN) times at k messages each.
package rounds

import (
	"math"

	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// UpMsg is a site's doubling report carrying its local counter (1 word).
type UpMsg struct {
	N int64
}

// Words implements proto.Message.
func (UpMsg) Words() int { return 1 }

// BroadcastMsg announces a new round with the coordinator's n′ (1 word).
type BroadcastMsg struct {
	NBar int64
}

// Words implements proto.Message.
func (BroadcastMsg) Words() int { return 1 }

// Site is the per-site half of the round machinery. Embed (or hold) one per
// protocol site and call its hooks from the protocol's Arrive/Receive.
type Site struct {
	n          int64 // local arrivals
	nextReport int64 // next doubling threshold
	nBar       int64 // last broadcast heard (0 before the first)
}

// NewSite returns a fresh site component.
func NewSite() *Site { return &Site{nextReport: 1} }

// Arrive counts one local arrival, emitting a doubling report when due.
func (s *Site) Arrive(out func(proto.Message)) {
	s.n++
	if s.n >= s.nextReport {
		out(UpMsg{N: s.n})
		for s.nextReport <= s.n {
			s.nextReport *= 2
		}
	}
}

// Gap returns how many further arrivals are guaranteed not to trigger a
// doubling report: the next report fires on the arrival that brings n to
// nextReport, so the nextReport-n-1 arrivals before it are silent.
func (s *Site) Gap() int64 {
	g := s.nextReport - s.n - 1
	if g < 0 {
		g = 0
	}
	return g
}

// Skip counts count arrivals at once without emitting anything. The caller
// must keep count within Gap(); Skip panics otherwise, since silently
// swallowing a doubling report would corrupt the coordinator's n′.
func (s *Site) Skip(count int64) {
	s.n += count
	if s.n >= s.nextReport {
		panic("rounds: Skip crossed a doubling threshold")
	}
}

// Deliver inspects a coordinator message; if it is a round broadcast it
// records n̄ and reports true. Other messages are ignored (false).
func (s *Site) Deliver(m proto.Message) (newRound bool) {
	b, ok := m.(BroadcastMsg)
	if !ok {
		return false
	}
	s.nBar = b.NBar
	return true
}

// N returns the site's local arrival count.
func (s *Site) N() int64 { return s.n }

// NBar returns the last broadcast n̄ observed by this site (0 before any).
func (s *Site) NBar() int64 { return s.nBar }

// SpaceWords reports the component's space (three words).
func (s *Site) SpaceWords() int { return 3 }

// Coordinator is the central half of the round machinery.
type Coordinator struct {
	nPrime []int64 // last doubling report per site
	sum    int64   // Σ nPrime
	nBar   int64   // last broadcast value (0 before the first)
	round  int     // number of broadcasts so far
}

// NewCoordinator returns the component for k sites.
func NewCoordinator(k int) *Coordinator {
	if k <= 0 {
		panic("rounds: k must be positive")
	}
	return &Coordinator{nPrime: make([]int64, k)}
}

// Deliver inspects a site message; if it is a doubling report it updates n′
// and, when n′ has at least doubled since the last broadcast, emits the
// round broadcast and reports true.
func (c *Coordinator) Deliver(from int, m proto.Message, broadcast func(proto.Message)) (newRound bool) {
	up, ok := m.(UpMsg)
	if !ok {
		return false
	}
	c.sum += up.N - c.nPrime[from]
	c.nPrime[from] = up.N
	if c.sum > 0 && c.sum >= 2*c.nBar {
		c.nBar = c.sum
		c.round++
		broadcast(BroadcastMsg{NBar: c.nBar})
		return true
	}
	return false
}

// Resync emits the current round broadcast for a freshly created site
// machine (crash/rejoin recovery): the newcomer learns n̄ — and with it the
// protocol's current sampling probability — immediately instead of running
// at round 0 until the next natural broadcast. Nothing is emitted before
// the first round.
func (c *Coordinator) Resync(emit func(proto.Message)) {
	if c.nBar > 0 {
		emit(BroadcastMsg{NBar: c.nBar})
	}
}

// Snapshot-record keys. Every protocol coordinator embedding this
// component forwards unrecognized state records here, so the key range
// [stateMeta, stateNPrime] is reserved across all coordinator packages
// (freq uses 10+, rank 20+, sample 30+).
const (
	stateMeta   = 1 // A = n̄, B = round
	stateNPrime = 2 // from = site, A = its last doubling report
)

// SnapshotState implements half of proto.Snapshotter: the component's
// state as one global record plus one record per site that has reported.
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	emit(-1, proto.StateMsg{Key: stateMeta, A: c.nBar, B: int64(c.round)})
	for i, np := range c.nPrime {
		if np != 0 {
			emit(i, proto.StateMsg{Key: stateNPrime, A: np})
		}
	}
}

// RestoreState applies one snapshot record, reporting whether it was one
// of this component's (embedding coordinators forward records here first
// and handle their own on false). n′'s sum is maintained incrementally, so
// record order doesn't matter within the component.
func (c *Coordinator) RestoreState(from int, m proto.Message) bool {
	sm, ok := m.(proto.StateMsg)
	if !ok {
		return false
	}
	switch sm.Key {
	case stateMeta:
		c.nBar, c.round = sm.A, int(sm.B)
	case stateNPrime:
		if from < 0 || from >= len(c.nPrime) {
			return true // corrupt site index: drop the record
		}
		c.sum += sm.A - c.nPrime[from]
		c.nPrime[from] = sm.A
	default:
		return false
	}
	return true
}

// NBar returns the last broadcast value (the coordinator's n̄).
func (c *Coordinator) NBar() int64 { return c.nBar }

// Round returns the number of rounds started so far.
func (c *Coordinator) Round() int { return c.round }

// NPrimeSum returns the coordinator's n′ (a constant-factor approximation of
// n from below, within a factor of 2 per site).
func (c *Coordinator) NPrimeSum() int64 { return c.sum }

// SpaceWords reports the component's space (k + 3 words).
func (c *Coordinator) SpaceWords() int { return len(c.nPrime) + 3 }

// P returns the paper's sampling probability for a given n̄:
// p = 1 while n̄ ≤ √k/ε, else p = 1/⌊εn̄/√k⌋₂.
func P(nBar int64, k int, eps float64) float64 {
	if nBar <= 0 {
		return 1
	}
	sqrtK := math.Sqrt(float64(k))
	if float64(nBar) <= sqrtK/eps {
		return 1
	}
	return 1 / stats.FloorPow2(eps*float64(nBar)/sqrtK)
}

// HalvingSteps returns how many times p halves going from pOld to pNew
// (0 if equal; the schedule only ever decreases p by powers of two).
func HalvingSteps(pOld, pNew float64) int {
	if pNew >= pOld {
		return 0
	}
	steps := 0
	for pNew < pOld {
		pOld /= 2
		steps++
		if steps > 62 {
			break
		}
	}
	return steps
}
