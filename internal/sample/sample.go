// Package sample implements continuous random sampling from distributed
// streams (Cormode, Muthukrishnan, Yi, Zhang [9] — Table 1's "sampling"
// row): the coordinator maintains a uniform sample of size Θ(1/ε²) of the
// union of all streams at all times, with O((1/ε² + k)·logN) communication.
//
// Every element independently draws a geometric level ℓ (the number of
// leading heads in fair coin flips, so P[ℓ >= L] = 2^−L). Sites forward
// exactly the elements with ℓ >= L, where L is the coordinator's current
// level; when the retained set grows past twice the target size the
// coordinator increments L, discards the elements below the new level, and
// broadcasts the new L.
//
// One sample answers all three tracking problems with εn error and constant
// probability: n̂ = |S|·2^L, f̂_j = |S_j|·2^L, rank(x) = |S_{<x}|·2^L. This
// is the baseline that beats the specialized trackers once k = Ω(1/ε²).
package sample

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// ElementMsg forwards one element with its level (item, value, level = 3
// words; the paper counts an element as one word — we charge the level tag
// too, which only inflates the baseline's constant).
type ElementMsg struct {
	Item  int64
	Value float64
	Level int
}

// Words implements proto.Message.
func (ElementMsg) Words() int { return 3 }

// LevelMsg broadcasts the coordinator's new level (1 word).
type LevelMsg struct {
	Level int
}

// Words implements proto.Message.
func (LevelMsg) Words() int { return 1 }

// Config parameterizes the sampler.
type Config struct {
	K   int
	Eps float64
	// SampleSize overrides the default target ⌈1/ε²⌉ (0 = default).
	SampleSize int
}

func (c Config) target() int {
	if c.SampleSize > 0 {
		return c.SampleSize
	}
	return int(1/(c.Eps*c.Eps)) + 1
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("sample: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("sample: Eps out of (0,1)")
	}
	if c.SampleSize < 0 {
		panic("sample: negative SampleSize")
	}
}

// Site is the per-site half of the sampler: O(1) state (the current level
// plus the skip-sampled gap to the next forwarded element).
//
// An element is forwarded iff its geometric level reaches the coordinator's
// current L, which happens with probability 2^-L, so the gap between
// forwarded elements is Geometric(2^-L) — drawn once per forward
// (stats.RNG.SkipLevel) instead of one level draw per arrival. A forwarded
// element's level, conditioned on reaching L, is L plus a fresh
// GeometricLevel (the level distribution is memoryless in its leading
// flips), so the coordinator sees the same message distribution as with
// per-arrival draws.
type Site struct {
	rng   *stats.RNG
	level int
	skip  int64 // silent arrivals remaining before the next forward
}

// NewSite returns a sampler site.
func NewSite(rng *stats.RNG) *Site { return &Site{rng: rng} }

// Arrive implements proto.Site.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	if s.skip > 0 {
		s.skip--
		return
	}
	out(ElementMsg{Item: item, Value: value, Level: s.level + s.rng.GeometricLevel()})
	s.skip = s.rng.SkipLevel(s.level)
}

// ArriveBatch implements proto.BatchSite: the gap to the next forwarded
// element is explicit state, so everything before it is one subtraction.
func (s *Site) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	if s.skip >= count {
		s.skip -= count
		return count
	}
	quiet := s.skip
	s.skip = 0
	s.Arrive(item, value, out)
	return quiet + 1
}

// Receive implements proto.Site.
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	if lm, ok := m.(LevelMsg); ok {
		s.level = lm.Level
		// The residual gap was drawn at the old level; redraw at the new
		// one (memoryless, distribution-preserving).
		s.skip = s.rng.SkipLevel(s.level)
	}
}

// SpaceWords implements proto.Site.
func (s *Site) SpaceWords() int { return 1 }

// element is a retained sample element.
type element struct {
	item  int64
	value float64
	level int
}

// Coordinator retains the elements at or above the current level and
// answers count, frequency, and rank queries. Per-item counts of the
// retained sample are maintained incrementally on insert and compaction, so
// Freq is a map lookup instead of a scan of the whole sample.
type Coordinator struct {
	cfg    Config
	level  int
	sample []element
	counts map[int64]int // retained-sample multiplicity per item
}

// NewCoordinator returns the sampler coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	return &Coordinator{cfg: cfg, counts: make(map[int64]int)}
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	em, ok := m.(ElementMsg)
	if !ok {
		return
	}
	if em.Level < c.level {
		return // stale: the site had not yet heard the new level
	}
	c.sample = append(c.sample, element{item: em.Item, value: em.Value, level: em.Level})
	c.counts[em.Item]++
	for len(c.sample) > 2*c.cfg.target() {
		c.level++
		kept := c.sample[:0]
		for _, e := range c.sample {
			if e.level >= c.level {
				kept = append(kept, e)
			} else if c.counts[e.item] == 1 {
				delete(c.counts, e.item)
			} else {
				c.counts[e.item]--
			}
		}
		c.sample = kept
		broadcast(LevelMsg{Level: c.level})
	}
}

// scale returns 2^level, the inverse sampling probability.
func (c *Coordinator) scale() float64 {
	return float64(int64(1) << uint(c.level))
}

// Count estimates n.
func (c *Coordinator) Count() float64 {
	return float64(len(c.sample)) * c.scale()
}

// Freq estimates the frequency of item j from the incremental count map.
func (c *Coordinator) Freq(j int64) float64 {
	return float64(c.counts[j]) * c.scale()
}

// Rank estimates |{elements < x}|.
func (c *Coordinator) Rank(x float64) float64 {
	count := 0
	for _, e := range c.sample {
		if e.value < x {
			count++
		}
	}
	return float64(count) * c.scale()
}

// Level returns the current sampling level.
func (c *Coordinator) Level() int { return c.level }

// Resync implements proto.Resyncer: a rejoining site learns the current
// sampling level from the replayed level announcement, so it samples at
// 2^-level immediately instead of flooding the coordinator at level 0.
func (c *Coordinator) Resync(emit func(proto.Message)) {
	if c.level > 0 {
		emit(LevelMsg{Level: c.level})
	}
}

// stateLevel is the coordinator's snapshot-record key (range 30+; see
// rounds.Coordinator.SnapshotState for the reservation scheme): A = the
// current sampling level.
const stateLevel = 30

// SnapshotState implements proto.Snapshotter: the level, then every
// retained element as the protocol's own ElementMsg.
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	emit(-1, proto.StateMsg{Key: stateLevel, A: int64(c.level)})
	for _, e := range c.sample {
		emit(-1, ElementMsg{Item: e.item, Value: e.value, Level: e.level})
	}
}

// RestoreState implements proto.Snapshotter. Unlike Receive, restored
// elements never trigger compaction (the snapshotted sample is already
// within budget) and the level record never broadcasts.
func (c *Coordinator) RestoreState(from int, m proto.Message) {
	switch msg := m.(type) {
	case proto.StateMsg:
		if msg.Key == stateLevel {
			c.level = int(msg.A)
		}
	case ElementMsg:
		c.sample = append(c.sample, element{item: msg.Item, value: msg.Value, level: msg.Level})
		c.counts[msg.Item]++
	}
}

// SampleLen returns the current retained-sample size.
func (c *Coordinator) SampleLen() int { return len(c.sample) }

// SpaceWords implements proto.Coordinator: three words per retained element
// plus one for the level. The incremental count map is a query-time index
// derived from the sample, not protocol state, so it is not charged (same
// policy as the rank coordinator's flattened index).
func (c *Coordinator) SpaceWords() int { return 3*len(c.sample) + 1 }

// NewProtocol assembles the sampling tracker.
func NewProtocol(cfg Config, seed uint64) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewSite(root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
