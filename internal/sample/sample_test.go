package sample

import (
	"math"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestExactBeforeFirstLevelIncrease(t *testing.T) {
	// While the sample is below 2·target, L = 0 and every element is
	// retained: all answers are exact.
	cfg := Config{K: 4, Eps: 0.5, SampleSize: 1000}
	p, coord := NewProtocol(cfg, 1)
	h := sim.New(p)
	for i := 0; i < 100; i++ {
		h.Arrive(i%4, int64(i%5), float64(i))
	}
	if coord.Level() != 0 {
		t.Fatalf("level rose early: %d", coord.Level())
	}
	if coord.Count() != 100 {
		t.Fatalf("Count = %v, want 100", coord.Count())
	}
	if coord.Freq(3) != 20 {
		t.Fatalf("Freq(3) = %v, want 20", coord.Freq(3))
	}
	if coord.Rank(50) != 50 {
		t.Fatalf("Rank(50) = %v, want 50", coord.Rank(50))
	}
}

func TestSampleSizeBounded(t *testing.T) {
	cfg := Config{K: 8, Eps: 0.1} // target 101
	p, coord := NewProtocol(cfg, 3)
	h := sim.New(p)
	for i := 0; i < 100000; i++ {
		h.Arrive(i%8, 0, 0)
		if coord.SampleLen() > 2*cfg.target()+1 {
			t.Fatalf("sample size %d exceeded bound at arrival %d", coord.SampleLen(), i)
		}
	}
	if coord.Level() == 0 {
		t.Fatal("level never increased over 100k arrivals")
	}
}

func TestCountUnbiasedAndWithinEps(t *testing.T) {
	cfg := Config{K: 4, Eps: 0.1}
	const n = 50000
	const trials = 120
	ests := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		p, coord := NewProtocol(cfg, uint64(100+tr))
		h := sim.New(p)
		for i := 0; i < n; i++ {
			h.Arrive(i%4, 0, 0)
		}
		ests[tr] = coord.Count()
	}
	mean := stats.Mean(ests)
	se := stats.StdDev(ests)/math.Sqrt(trials) + 1e-9
	if math.Abs(mean-n) > 5*se+10 {
		t.Fatalf("Count mean %v, want %d (se %v)", mean, n, se)
	}
	// Chebyshev-style: most estimates within ~3 eps n.
	bad := 0
	for _, e := range ests {
		if math.Abs(e-n) > 3*cfg.Eps*n {
			bad++
		}
	}
	if float64(bad)/trials > 0.15 {
		t.Fatalf("%d/%d estimates outside 3εn", bad, trials)
	}
}

func TestFreqAndRankCoverage(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 40000
	cfg := Config{K: k, Eps: eps}
	rng := stats.New(505)
	itemF := workload.ZipfItems(100, 1.1, rng)
	valueF := workload.PermValues(n, rng.Split())
	p, coord := NewProtocol(cfg, 7)
	h := sim.New(p)
	truth := map[int64]int64{}
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		item := itemF(i)
		truth[item]++
		h.Arrive(i%k, item, valueF(i))
		if i%211 != 0 || i == 0 {
			continue
		}
		for _, q := range []int64{0, 1, 5, 50} {
			checks++
			if math.Abs(coord.Freq(q)-float64(truth[q])) > 3*eps*float64(i+1) {
				bad++
			}
		}
		checks++
		// Values are a permutation of [0,n): rank of x among first i+1
		// arrivals is unknown without an oracle; use total-count check via
		// Rank(+inf) instead.
		if math.Abs(coord.Rank(math.Inf(1))-float64(i+1)) > 3*eps*float64(i+1) {
			bad++
		}
	}
	if frac := float64(bad) / float64(checks); frac > 0.10 {
		t.Fatalf("%.1f%% of sampling checks failed", 100*frac)
	}
}

func TestCommunicationFlatInK(t *testing.T) {
	// The sampler's word cost is O((1/ε² + k)·logN): for k << 1/ε² doubling
	// k should barely move it (unlike the trackers whose cost scales with
	// √k or k).
	const eps = 0.05 // target ~400
	const n = 60000
	words := func(k int) float64 {
		p, _ := NewProtocol(Config{K: k, Eps: eps}, 11)
		h := sim.New(p)
		h.Run(workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events(), nil)
		return float64(h.Metrics().Words())
	}
	w4 := words(4)
	w64 := words(64)
	if w64/w4 > 3 {
		t.Fatalf("sampling cost grew %vx from k=4 to k=64; should be ~flat", w64/w4)
	}
}

func TestLevelMonotone(t *testing.T) {
	cfg := Config{K: 2, Eps: 0.2}
	p, coord := NewProtocol(cfg, 13)
	h := sim.New(p)
	prev := 0
	for i := 0; i < 30000; i++ {
		h.Arrive(i%2, 0, 0)
		if coord.Level() < prev {
			t.Fatal("level decreased")
		}
		prev = coord.Level()
	}
}

func TestStaleElementsDropped(t *testing.T) {
	// An element with level below the coordinator's current level must be
	// ignored (models a site that has not yet heard the broadcast; in the
	// quiescent runtimes it can only happen transiently inside a cascade).
	cfg := Config{K: 1, Eps: 0.5, SampleSize: 2}
	coord := NewCoordinator(cfg)
	send := func(int, proto.Message) {}
	bcast := func(proto.Message) {}
	// Fill past threshold to raise the level.
	for i := 0; i < 6; i++ {
		coord.Receive(0, ElementMsg{Level: 10}, send, bcast)
	}
	if coord.Level() == 0 {
		t.Fatal("level did not rise")
	}
	before := coord.SampleLen()
	coord.Receive(0, ElementMsg{Level: 0}, send, bcast)
	if coord.SampleLen() != before {
		t.Fatal("stale element was retained")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Eps: 0.1},
		{K: 2, Eps: 0},
		{K: 2, Eps: 1},
		{K: 2, Eps: 0.1, SampleSize: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestMessageWords(t *testing.T) {
	if (ElementMsg{}).Words() != 3 || (LevelMsg{}).Words() != 1 {
		t.Fatal("sampler message word sizes changed")
	}
}
