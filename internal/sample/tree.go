package sample

// Hierarchical (tree) assembly of the sampling tracker. Every element the
// child-facing coordinator accepts into its retained sample was kept with
// probability 2^−L (L = the coordinator's level at accept time), so feeding
// it upward as 2^L identical virtual arrivals is an unbiased re-expression
// of the shard's stream: the parent-facing site then subsamples that stream
// exactly as it would subsample real arrivals. Weighting by the element's
// own geometric level instead would bias the feed upward — the level tag is
// conditioned on having reached L, not on the acceptance probability.

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

type pendingElem struct {
	item   int64
	value  float64
	weight int64
}

// Agg is the sampler's aggregator: the child-facing Coordinator plus the
// accepted-element feed buffer. Pending elements are captured in Receive
// and released at the next quiescent instant; between two drains only one
// leaf arrives (the hosting topology's single-feeder contract), so the
// captured order follows a single FIFO child link and is deterministic
// across transports.
type Agg struct {
	*Coordinator
	pending []pendingElem
}

// NewAgg wraps a child-facing coordinator as an aggregator.
func NewAgg(c *Coordinator) *Agg { return &Agg{Coordinator: c} }

// Receive implements proto.Coordinator, capturing accepted elements at
// their accept-time weight.
func (a *Agg) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	levelBefore := a.level
	a.Coordinator.Receive(from, m, send, broadcast)
	if em, ok := m.(ElementMsg); ok && em.Level >= levelBefore {
		a.pending = append(a.pending, pendingElem{
			item: em.Item, value: em.Value, weight: int64(1) << uint(levelBefore),
		})
	}
}

// DrainFeed implements proto.Aggregator.
func (a *Agg) DrainFeed(feed func(item int64, value float64, count int64)) {
	for _, e := range a.pending {
		feed(e.item, e.value, e.weight)
	}
	a.pending = a.pending[:0]
}

// SeedFed primes the aggregator after a coordinator recovery: restored
// elements were fed before the crash, so the buffer starts empty.
func (a *Agg) SeedFed() { a.pending = a.pending[:0] }

// NewTreeProtocol assembles the sampling tracker as a two-level tree. The
// sample baseline's error is driven by the retained-sample size, not a
// per-level ε, so both levels run at the full ε budget and the root's
// sample (of the aggregators' unbiased virtual streams) keeps the flat
// star's guarantee up to the feed-quantization noise of the shard levels.
func NewTreeProtocol(cfg Config, fanout int, seed uint64) (proto.Tree, *Coordinator) {
	cfg.validate()
	if fanout < 2 {
		panic("sample: tree fanout must be >= 2")
	}
	groups := (cfg.K + fanout - 1) / fanout
	if groups < 2 {
		panic("sample: tree needs at least two groups (k must exceed fanout)")
	}
	root := stats.New(seed)
	tr := proto.Tree{Fanout: fanout}
	for g := 0; g < groups; g++ {
		size := fanout
		if rem := cfg.K - g*fanout; rem < size {
			size = rem
		}
		gcfg := Config{K: size, Eps: cfg.Eps, SampleSize: cfg.SampleSize}
		sites := make([]proto.Site, size)
		for i := range sites {
			sites[i] = NewSite(root.Split())
		}
		tr.Groups = append(tr.Groups, proto.Protocol{Coord: NewAgg(NewCoordinator(gcfg)), Sites: sites})
	}
	rcfg := Config{K: groups, Eps: cfg.Eps, SampleSize: cfg.SampleSize}
	rootCoord := NewCoordinator(rcfg)
	rsites := make([]proto.Site, groups)
	for i := range rsites {
		rsites[i] = NewSite(root.Split())
	}
	tr.Root = proto.Protocol{Coord: rootCoord, Sites: rsites}
	return tr, rootCoord
}
