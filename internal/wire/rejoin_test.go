package wire_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/wire"
)

// TestRejoinResyncFrames pins the crash-recovery control frames: framed
// round trips, Words() size cross-checks, and bounds behavior on truncated
// input. The generic property and fuzz harnesses cover these types too
// (they enumerate wire.Registered()); this test keeps the recovery frames'
// contract explicit.
func TestRejoinResyncFrames(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		for _, m := range []proto.Message{
			wire.Rejoin{Site: r.Intn(1 << 16), K: r.Intn(1 << 16), Config: r.Uint64(), Arrivals: r.Int63()},
			wire.Resync{Round: r.Int63n(1 << 40), Arrivals: r.Int63()},
		} {
			frame, err := wire.AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("%T: %v", m, err)
			}
			// Length prefix (4) + tag (1) + one machine word per field:
			// these control frames carry no structural overhead, so the
			// wire size is exactly the Words() accounting.
			if want := 4 + 1 + 8*m.Words(); len(frame) != want {
				t.Fatalf("%T: frame is %d bytes, want %d", m, len(frame), want)
			}
			got, _, err := wire.ReadFrame(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatalf("%T: ReadFrame: %v", m, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%T: framed round trip changed the message: %#v -> %#v", m, m, got)
			}

			// Every truncation of the payload must fail cleanly with
			// ErrShort — a torn rejoin handshake is corruption, not a
			// partial message.
			enc := frame[4:]
			for cut := 1; cut < len(enc); cut++ {
				if _, _, err := wire.Decode(enc[:cut]); !errors.Is(err, wire.ErrShort) {
					t.Fatalf("%T truncated to %d bytes: err = %v, want ErrShort", m, cut, err)
				}
			}
		}
	}
}
