// Package wire gives every protocol message a binary wire form, so the
// paper's protocols — defined as messages between sites and a coordinator —
// can cross a real network instead of hopping between Go structs in one
// process.
//
// Every concrete proto.Message type is registered once with a stable
// one-byte tag and an encode/decode pair. The encoding is canonical and
// fixed-width: one tag byte followed by the payload, every integer and
// float as 8 little-endian bytes (one machine word — the same unit as the
// paper's word-based accounting, which the codec tests cross-check against
// Words()). Variable-size payloads (rank summaries) carry explicit counts,
// validated against the remaining input before any allocation.
//
// Append is zero-alloc: it appends to a caller-owned buffer. Decode
// allocates only the returned message value (and fresh slices for
// summaries); it never aliases the input, so frame buffers can be reused.
//
// Frames: the socket transports (internal/runtime) ship each encoded
// message as a length-prefixed frame via AppendFrame/ReadFrame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"

	"disttrack/internal/proto"
)

// ErrShort reports a truncated wire form.
var ErrShort = errors.New("wire: truncated message")

// ErrUnknownTag reports a tag with no registered codec.
var ErrUnknownTag = errors.New("wire: unknown message tag")

// ErrUnregistered reports an Append of a message type with no codec.
var ErrUnregistered = errors.New("wire: unregistered message type")

type entry struct {
	tag       byte
	prototype proto.Message
	enc       func(buf []byte, m proto.Message) []byte
	dec       func(b []byte) (proto.Message, []byte, error)
	// reuse, when registered, decodes into prev (a pointer-form message this
	// hook previously returned for the same tag, or nil) instead of boxing a
	// fresh value — the Decoder scratch path.
	reuse func(b []byte, prev proto.Message) (proto.Message, []byte, error)
}

var (
	byTag  [256]*entry
	byType = map[reflect.Type]*entry{}
)

// Register binds a message type (identified by prototype's concrete type)
// to a tag and its codec. Tags are part of the wire format: never reuse or
// renumber one. Register panics on duplicates; it is meant to be called
// from init.
func Register(tag byte, prototype proto.Message,
	enc func(buf []byte, m proto.Message) []byte,
	dec func(b []byte) (proto.Message, []byte, error)) {
	if byTag[tag] != nil {
		panic(fmt.Sprintf("wire: tag %d registered twice", tag))
	}
	t := reflect.TypeOf(prototype)
	if _, dup := byType[t]; dup {
		panic(fmt.Sprintf("wire: type %v registered twice", t))
	}
	e := &entry{tag: tag, prototype: prototype, enc: enc, dec: dec}
	byTag[tag] = e
	byType[t] = e
}

// Append appends m's wire form (tag byte plus payload) to buf and returns
// the extended buffer. It performs no allocation beyond growing buf.
func Append(buf []byte, m proto.Message) ([]byte, error) {
	e := byType[reflect.TypeOf(m)]
	if e == nil {
		return buf, fmt.Errorf("%w: %T", ErrUnregistered, m)
	}
	buf = append(buf, e.tag)
	return e.enc(buf, m), nil
}

// Decode decodes one message from the front of b, returning the message and
// the unconsumed remainder. The returned message never aliases b.
func Decode(b []byte) (proto.Message, []byte, error) {
	if len(b) == 0 {
		return nil, b, ErrShort
	}
	e := byTag[b[0]]
	if e == nil {
		return nil, b, fmt.Errorf("%w: %d", ErrUnknownTag, b[0])
	}
	return e.dec(b[1:])
}

// RegisterScratch binds an optional scratch decoder to an already
// registered tag: reuse decodes one message, writing into prev — a
// pointer-form message the hook previously returned for this tag, or nil
// on the first call — instead of boxing a fresh value. Called from init,
// after the tag's Register.
func RegisterScratch(tag byte,
	reuse func(b []byte, prev proto.Message) (proto.Message, []byte, error)) {
	e := byTag[tag]
	if e == nil {
		panic(fmt.Sprintf("wire: scratch decoder for unregistered tag %d", tag))
	}
	if e.reuse != nil {
		panic(fmt.Sprintf("wire: scratch decoder for tag %d registered twice", tag))
	}
	e.reuse = reuse
}

// Decoder is Decode with a pooled scratch: for message types with a
// scratch decoder (the fixed-width hot-path messages), it returns a
// pointer-form message decoded into a per-tag reusable box, so a steady
// decode stream performs zero allocations.
//
// The returned message is BORROWED: it is valid only until the next Decode
// of the same tag on this Decoder. Use it on immediate-consumption paths —
// decode, read the fields, move on. Paths that retain decoded messages
// (the transport readers, whose mailboxes hold them until a loop drains
// them) must keep using the plain Decode.
//
// Message types without a scratch decoder fall back to the plain decode of
// a fresh (owned, value-form) message, so a Decoder is always safe to
// point at a mixed frame stream. A Decoder is not safe for concurrent use.
type Decoder struct {
	scratch [256]proto.Message
}

// Decode decodes one message from the front of b; see Decoder for the
// borrowed-result contract.
func (d *Decoder) Decode(b []byte) (proto.Message, []byte, error) {
	if len(b) == 0 {
		return nil, b, ErrShort
	}
	e := byTag[b[0]]
	if e == nil {
		return nil, b, fmt.Errorf("%w: %d", ErrUnknownTag, b[0])
	}
	if e.reuse == nil {
		return e.dec(b[1:])
	}
	m, rest, err := e.reuse(b[1:], d.scratch[e.tag])
	if err != nil {
		return nil, rest, err
	}
	d.scratch[e.tag] = m
	return m, rest, nil
}

// Registered returns one prototype per registered message type, in tag
// order. Tests use it to enumerate the full wire vocabulary.
func Registered() []proto.Message {
	var ms []proto.Message
	for _, e := range byTag {
		if e != nil {
			ms = append(ms, e.prototype)
		}
	}
	return ms
}

// --- primitives ---

// AppendInt appends one machine word holding a signed integer.
func AppendInt(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendFloat appends one machine word holding a float64.
func AppendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ReadInt consumes one signed-integer word.
func ReadInt(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShort
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ReadFloat consumes one float64 word.
func ReadFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShort
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ReadCount consumes one word holding a non-negative element count and
// validates that b still holds at least count*width bytes, so decoders can
// size allocations from untrusted input safely.
func ReadCount(b []byte, width int) (int, []byte, error) {
	n, b, err := ReadInt(b)
	if err != nil {
		return 0, b, err
	}
	if n < 0 || n > int64(len(b)/width) {
		return 0, b, fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrShort, n, len(b))
	}
	return int(n), b, nil
}

// --- framing ---

// MaxFrame bounds a frame payload (16 MiB); a longer length prefix is
// treated as corruption.
const MaxFrame = 16 << 20

// AppendFrame appends a length-prefixed frame carrying m's wire form and
// returns the extended buffer. The caller writes the result to the
// connection in one call, so a frame is never interleaved.
func AppendFrame(buf []byte, m proto.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := Append(buf, m)
	if err != nil {
		return buf[:start], err
	}
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// ReadFrame reads one frame from r into buf (grown as needed) and decodes
// its message. It returns the possibly-grown buffer for reuse. A cleanly
// closed connection (stream end on a frame boundary) returns io.EOF; a
// stream ending mid-frame is a torn frame and surfaces as
// io.ErrUnexpectedEOF, which callers must treat as corruption, not
// shutdown.
func ReadFrame(r io.Reader, buf []byte) (proto.Message, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, fmt.Errorf("wire: frame length %d exceeds MaxFrame", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	m, rest, err := Decode(buf)
	if err != nil {
		return nil, buf, err
	}
	if len(rest) != 0 {
		return nil, buf, fmt.Errorf("wire: %d trailing bytes in frame", len(rest))
	}
	return m, buf, nil
}
