package wire_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"disttrack/internal/boost"
	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/robust"
	"disttrack/internal/rounds"
	"disttrack/internal/sample"
	"disttrack/internal/summary/gk"
	"disttrack/internal/summary/merge"
	"disttrack/internal/wire"
)

// genInner builds a random non-wrapper message (CopyMsg and boost.Msg wrap
// exactly these in the real protocols).
func genInner(r *rand.Rand) proto.Message {
	switch r.Intn(4) {
	case 0:
		return rounds.UpMsg{N: r.Int63()}
	case 1:
		return rounds.BroadcastMsg{NBar: r.Int63()}
	case 2:
		return count.UpdateMsg{N: r.Int63()}
	default:
		return count.AdjustMsg{NBar: r.Int63()}
	}
}

func genMergeSnapshot(r *rand.Rand) merge.Snapshot {
	sn := merge.Snapshot{N: r.Int63n(1 << 40)}
	nb := r.Intn(4)
	for i := 0; i < nb; i++ {
		vals := make([]float64, r.Intn(5))
		for j := range vals {
			vals[j] = r.NormFloat64()
		}
		sn.Buffers = append(sn.Buffers, merge.WeightedBuffer{
			Weight: 1 << uint(r.Intn(10)),
			Values: vals,
		})
	}
	return sn
}

func genGKSnapshot(r *rand.Rand) gk.Snapshot {
	sn := gk.Snapshot{N: r.Int63n(1 << 40), Eps: r.Float64()}
	nt := r.Intn(6)
	for i := 0; i < nt; i++ {
		sn.Tuples = append(sn.Tuples, gk.SnapshotTuple{
			V: r.NormFloat64(), G: r.Int63n(100), D: r.Int63n(100),
		})
	}
	return sn
}

// gen builds a random instance of the same concrete type as prototype.
func gen(r *rand.Rand, prototype proto.Message) proto.Message {
	switch prototype.(type) {
	case rounds.UpMsg:
		return rounds.UpMsg{N: r.Int63()}
	case rounds.BroadcastMsg:
		return rounds.BroadcastMsg{NBar: r.Int63()}
	case count.UpdateMsg:
		return count.UpdateMsg{N: r.Int63()}
	case count.AdjustMsg:
		return count.AdjustMsg{NBar: r.Int63()}
	case robust.ReportMsg:
		return robust.ReportMsg{N: r.Int63() - r.Int63()} // noised counts go negative
	case robust.AdjustMsg:
		return robust.AdjustMsg{NBar: r.Int63() - r.Int63()}
	case count.DetReportMsg:
		return count.DetReportMsg{N: r.Int63()}
	case count.CopyMsg:
		return count.CopyMsg{Copy: r.Intn(64), Inner: genInner(r)}
	case freq.CounterMsg:
		return freq.CounterMsg{Item: r.Int63(), Count: r.Int63n(1 << 30)}
	case freq.SampleMsg:
		return freq.SampleMsg{Item: r.Int63()}
	case freq.ResetMsg:
		return freq.ResetMsg{}
	case *freq.DetReportMsg:
		return &freq.DetReportMsg{Slot: r.Intn(1 << 16), Item: r.Int63(), Count: r.Int63n(1 << 30)}
	case rank.SummaryMsg:
		return rank.SummaryMsg{Chunk: r.Int63n(1 << 30), Level: r.Intn(32),
			Pos: r.Intn(1 << 20), Snap: genMergeSnapshot(r)}
	case rank.SampleMsg:
		return rank.SampleMsg{Chunk: r.Int63n(1 << 30), Index: r.Int63n(1 << 40), Value: r.NormFloat64()}
	case *rank.DetSnapshotMsg:
		return &rank.DetSnapshotMsg{Snap: genGKSnapshot(r)}
	case sample.ElementMsg:
		return sample.ElementMsg{Item: r.Int63(), Value: r.NormFloat64(), Level: r.Intn(60)}
	case sample.LevelMsg:
		return sample.LevelMsg{Level: r.Intn(60)}
	case boost.Msg:
		return boost.Msg{Copy: r.Intn(64), Inner: genInner(r)}
	case wire.Hello:
		return wire.Hello{Site: r.Intn(1 << 20), K: r.Intn(1 << 20), Config: r.Uint64()}
	case wire.Done:
		return wire.Done{Arrivals: r.Int63()}
	case wire.Progress:
		return wire.Progress{Arrivals: r.Int63()}
	case wire.Rejoin:
		return wire.Rejoin{Site: r.Intn(1 << 20), K: r.Intn(1 << 20),
			Config: r.Uint64(), Arrivals: r.Int63()}
	case wire.Resync:
		return wire.Resync{Round: r.Int63n(1 << 40), Arrivals: r.Int63()}
	case proto.StateMsg:
		return proto.StateMsg{Key: r.Int63n(64), A: r.Int63(), B: r.Int63(), F: r.NormFloat64()}
	case wire.Logged:
		inner := genInner(r)
		if r.Intn(3) == 0 { // logged frames wrap multiplexer messages too
			inner = boost.Msg{Copy: r.Intn(64), Inner: inner}
		}
		return wire.Logged{From: r.Intn(1<<20) - 1, Msg: inner}
	case wire.SnapMeta:
		m := wire.SnapMeta{Config: r.Uint64(), MessagesUp: r.Int63(), MessagesDown: r.Int63(),
			WordsUp: r.Int63(), WordsDown: r.Int63(), Broadcasts: r.Int63(),
			Snapshots: r.Int63n(1 << 30), Resyncs: r.Int63n(1 << 30)}
		if n := r.Intn(5); n > 0 {
			m.SiteArrivals = make([]int64, n)
			for i := range m.SiteArrivals {
				m.SiteArrivals[i] = r.Int63()
			}
		}
		if n := r.Intn(5); n > 0 {
			m.Finished = make([]bool, n)
			for i := range m.Finished {
				m.Finished[i] = r.Intn(2) == 1
			}
		}
		return m
	default:
		panic("no generator for registered message type " + reflect.TypeOf(prototype).String())
	}
}

// overheadBytes returns how many payload bytes beyond 8*Words() the wire
// form of m carries. Words() is the paper's accounting — it charges
// protocol information only — while the wire form also needs structural
// fields the accounting treats as free: routing tags (copy indices, and a
// nested message's type byte), slice lengths, and the deterministic rank
// snapshot's ε. ResetMsg goes the other way: the accounting charges one
// word for a notification whose wire payload is empty.
func overheadBytes(m proto.Message) int {
	switch msg := m.(type) {
	case freq.ResetMsg:
		return -8
	case count.CopyMsg:
		return 8 + 1 + overheadBytes(msg.Inner) // copy index + inner tag
	case boost.Msg:
		return 8 + 1 + overheadBytes(msg.Inner)
	case rank.SummaryMsg:
		return 8 // buffer count
	case *rank.DetSnapshotMsg:
		return 16 // ε + tuple count
	case wire.Logged:
		return 1 + overheadBytes(msg.Msg) // inner tag
	case wire.SnapMeta:
		return 16 // site-arrivals count + finished count
	default:
		return 0
	}
}

// TestRoundTripAllTypes encodes and decodes random instances of every
// registered message type: Decode(Encode(m)) must be identical to m, the
// full input must be consumed, and the encoded size must match the paper's
// word accounting (Words() cross-check).
func TestRoundTripAllTypes(t *testing.T) {
	protos := wire.Registered()
	if len(protos) < 16 {
		t.Fatalf("only %d registered message types; the six protocol packages define 16", len(protos))
	}
	r := rand.New(rand.NewSource(7))
	for _, p := range protos {
		name := reflect.TypeOf(p).String()
		for trial := 0; trial < 200; trial++ {
			m := gen(r, p)
			buf, err := wire.Append(nil, m)
			if err != nil {
				t.Fatalf("%s: Append: %v", name, err)
			}
			if want := 1 + 8*m.Words() + overheadBytes(m); len(buf) != want {
				t.Fatalf("%s: encoded to %d bytes, want %d (Words=%d, overhead=%d): %#v",
					name, len(buf), want, m.Words(), overheadBytes(m), m)
			}
			got, rest, err := wire.Decode(buf)
			if err != nil {
				t.Fatalf("%s: Decode: %v", name, err)
			}
			if len(rest) != 0 {
				t.Fatalf("%s: %d bytes left undecoded", name, len(rest))
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("%s: round trip changed the message:\n in: %#v\nout: %#v", name, m, got)
			}
			if got.Words() != m.Words() {
				t.Fatalf("%s: Words changed across the wire: %d -> %d", name, m.Words(), got.Words())
			}
		}
	}
}

// TestDecodeNeverAliases ensures a decoded message survives reuse of the
// input buffer (the frame readers recycle theirs).
func TestDecodeNeverAliases(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := rank.SummaryMsg{Chunk: 1, Level: 2, Pos: 3, Snap: genMergeSnapshot(r)}
	for len(m.Snap.Buffers) == 0 || len(m.Snap.Buffers[0].Values) == 0 {
		m.Snap = genMergeSnapshot(r)
	}
	buf, err := wire.Append(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := wire.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xff
	}
	if !reflect.DeepEqual(got, proto.Message(m)) {
		t.Fatal("decoded message aliased the input buffer")
	}
}

// TestDecodeRejectsCorruption spot-checks the error paths decoders must
// take instead of panicking or over-allocating.
func TestDecodeRejectsCorruption(t *testing.T) {
	if _, _, err := wire.Decode(nil); err == nil {
		t.Error("empty input did not error")
	}
	if _, _, err := wire.Decode([]byte{0xee}); err == nil {
		t.Error("unknown tag did not error")
	}
	// A summary message whose buffer count claims more data than present.
	buf, err := wire.Append(nil, rank.SummaryMsg{Chunk: 1, Snap: merge.Snapshot{N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-8] = 0xff // buffer count word -> huge
	if _, _, err := wire.Decode(buf); err == nil {
		t.Error("oversized buffer count did not error")
	}
	// Truncations of every prefix length must error, not panic.
	full, err := wire.Append(nil, &freq.DetReportMsg{Slot: 1, Item: 2, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := wire.Decode(full[:cut]); err == nil {
			t.Errorf("truncation to %d bytes did not error", cut)
		}
	}
	// A wrapper nested inside a wrapper is not a protocol message.
	double, err := wire.Append(nil,
		boost.Msg{Inner: boost.Msg{Inner: count.UpdateMsg{N: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.Decode(double); err == nil {
		t.Error("nested multiplexer message did not error")
	}
	// A persistence record nested inside another is corruption too.
	rec, err := wire.Append(nil,
		wire.Logged{From: 0, Msg: wire.Logged{From: 1, Msg: count.UpdateMsg{N: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.Decode(rec); err == nil {
		t.Error("nested Logged record did not error")
	}
}

// TestAppendZeroAlloc pins the encoder's zero-allocation contract on the
// hot-path message types: with a reused buffer, Append never touches the
// heap.
func TestAppendZeroAlloc(t *testing.T) {
	msgs := []proto.Message{
		rounds.UpMsg{N: 12345},
		count.UpdateMsg{N: 99},
		freq.CounterMsg{Item: 7, Count: 3},
		freq.SampleMsg{Item: 7},
		rank.SampleMsg{Chunk: 1, Index: 2, Value: 3.5},
		sample.ElementMsg{Item: 1, Value: 2, Level: 3},
	}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		for _, m := range msgs {
			var err error
			buf, err = wire.Append(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocated %.1f times per run; want 0", allocs)
	}
}

// TestDecoderScratchRoundTrip pins the scratch decoder's semantics: hot
// messages decode into per-tag borrowed boxes (the pointee equals what was
// encoded; a later decode of the same tag overwrites the earlier box), and
// types without a scratch hook fall back to a fresh owned decode identical
// to plain Decode.
func TestDecoderScratchRoundTrip(t *testing.T) {
	var dec wire.Decoder

	buf, err := wire.Append(nil, rounds.UpMsg{N: 41})
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, ok := m1.(*rounds.UpMsg)
	if !ok {
		t.Fatalf("scratch decode returned %T; want *rounds.UpMsg", m1)
	}
	if p1.N != 41 {
		t.Fatalf("decoded N = %d, want 41", p1.N)
	}

	// Same tag again: the borrowed box is overwritten in place.
	buf, err = wire.Append(buf[:0], rounds.UpMsg{N: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.(*rounds.UpMsg) != p1 {
		t.Fatal("second decode of the same tag did not reuse the scratch box")
	}
	if p1.N != 42 {
		t.Fatalf("scratch box holds N = %d after overwrite, want 42", p1.N)
	}

	// A type with no scratch hook falls back to the plain owned decode.
	buf, err = wire.Append(buf[:0], wire.Done{Arrivals: 7})
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := wire.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m3, want) {
		t.Fatalf("fallback decode = %#v, want %#v", m3, want)
	}
}

// TestDecoderZeroAlloc pins the scratch decoder's zero-allocation contract
// on the hot-path message types: after the first pass warms the per-tag
// boxes, a steady encode+decode stream never touches the heap.
func TestDecoderZeroAlloc(t *testing.T) {
	msgs := []proto.Message{
		rounds.UpMsg{N: 12345},
		rounds.BroadcastMsg{NBar: 500},
		count.UpdateMsg{N: 99},
		count.AdjustMsg{NBar: 200},
		freq.CounterMsg{Item: 7, Count: 3},
		freq.SampleMsg{Item: 7},
		rank.SampleMsg{Chunk: 1, Index: 2, Value: 3.5},
		sample.ElementMsg{Item: 1, Value: 2, Level: 3},
		sample.LevelMsg{Level: 4},
	}
	buf := make([]byte, 0, 256)
	var dec wire.Decoder
	for _, m := range msgs { // warm the scratch boxes
		b, err := wire.Append(buf[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := dec.Decode(b); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, m := range msgs {
			var err error
			buf, err = wire.Append(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := dec.Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Words() != m.Words() {
				t.Fatalf("decoded %T words mismatch", m)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Decoder round trip allocated %.1f times per run; want 0", allocs)
	}
}

// TestFrameRoundTrip pushes every registered type through the framing layer
// (AppendFrame -> ReadFrame) as the socket transports do.
func TestFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var stream []byte
	var sent []proto.Message
	for _, p := range wire.Registered() {
		for trial := 0; trial < 20; trial++ {
			m := gen(r, p)
			var err error
			stream, err = wire.AppendFrame(stream, m)
			if err != nil {
				t.Fatal(err)
			}
			sent = append(sent, m)
		}
	}
	rd := bytes.NewReader(stream)
	var buf []byte
	for i, want := range sent {
		m, b, err := wire.ReadFrame(rd, buf)
		buf = b
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("frame %d: got %#v want %#v", i, m, want)
		}
	}
	if _, _, err := wire.ReadFrame(rd, buf); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}
