package wire_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"disttrack/internal/wire"
)

// FuzzDecode feeds arbitrary bytes to the decoder. Whatever the input, the
// decoder must return cleanly — no panic, no over-allocation — and any
// message it does accept must re-encode to exactly the bytes it consumed
// (the encoding is canonical).
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	for _, p := range wire.Registered() {
		for i := 0; i < 2; i++ {
			if b, err := wire.Append(nil, gen(r, p)); err == nil {
				f.Add(b)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, rest, err := wire.Decode(b)
		if err != nil {
			return
		}
		consumed := b[:len(b)-len(rest)]
		re, err := wire.Append(nil, m)
		if err != nil {
			t.Fatalf("decoded %#v but cannot re-encode: %v", m, err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("decode/encode not canonical for %#v:\nconsumed %x\nreencode %x", m, consumed, re)
		}
	})
}

// FuzzRoundTrip drives the random-instance generator from fuzzed seeds and
// checks Encode -> Decode identity plus the Words() size cross-check for
// every registered type.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(424242))
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		var buf []byte
		for _, p := range wire.Registered() {
			m := gen(r, p)
			var err error
			buf, err = wire.Append(buf[:0], m)
			if err != nil {
				t.Fatal(err)
			}
			if want := 1 + 8*m.Words() + overheadBytes(m); len(buf) != want {
				t.Fatalf("%T: encoded to %d bytes, want %d", m, len(buf), want)
			}
			got, rest, err := wire.Decode(buf)
			if err != nil {
				t.Fatalf("%T: %v", m, err)
			}
			if len(rest) != 0 || !reflect.DeepEqual(got, m) {
				t.Fatalf("%T: round trip changed the message", m)
			}
		}
	})
}
