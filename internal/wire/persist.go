package wire

import (
	"fmt"

	"disttrack/internal/proto"
)

// Durability-layer tags (internal/persist). Stable, never renumber.
const (
	tagState    byte = 22
	tagLogged   byte = 23
	tagSnapMeta byte = 24
)

// Logged is the record wrapper the durability layer writes: one
// coordinator-bound message together with the site it came from (-1 for
// global snapshot records). It wraps any registered message — including the
// multiplexer wrappers — but never another Logged, which bounds decode
// recursion on corrupt input. Words follows the accounting convention so
// the type can ride the shared codec machinery; Logged frames live in logs
// and snapshots only and are never charged to the protocol's cost ledger.
type Logged struct {
	From int
	Msg  proto.Message
}

// Words implements proto.Message.
func (l Logged) Words() int { return 1 + l.Msg.Words() }

// MaxSites bounds the site index a decoded Logged record may carry.
// Deployments run k in the hundreds at most, so anything near this limit
// is corruption; rejecting it here keeps a decoded index from reaching
// per-site state arrays wildly out of range.
const MaxSites = 1 << 24

// SnapMeta is the header record of a snapshot: the deployment fingerprint
// (0 when the host keeps none) and the cost ledger at the instant the
// snapshot was taken, including the per-site acknowledged arrival counts
// the distributed server resumes its Resync bookkeeping from (len(
// SiteArrivals) == k; empty for hosts that don't track it). Finished marks
// the sites whose Done frame the coordinator had durably applied — a
// resumed server must not wait for those sites to dial back in. It appears
// exactly once, first, in every snapshot blob.
type SnapMeta struct {
	Config       uint64
	MessagesUp   int64
	MessagesDown int64
	WordsUp      int64
	WordsDown    int64
	Broadcasts   int64
	Snapshots    int64
	Resyncs      int64
	SiteArrivals []int64
	Finished     []bool
}

// Words implements proto.Message.
func (m SnapMeta) Words() int { return 8 + len(m.SiteArrivals) + len(m.Finished) }

func init() {
	Register(tagState, proto.StateMsg{},
		func(b []byte, m proto.Message) []byte {
			s := m.(proto.StateMsg)
			return AppendFloat(AppendInt(AppendInt(AppendInt(b, s.Key), s.A), s.B), s.F)
		},
		func(b []byte) (proto.Message, []byte, error) {
			key, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			a, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			bb, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			f, b, err := ReadFloat(b)
			return proto.StateMsg{Key: key, A: a, B: bb, F: f}, b, err
		})

	Register(tagLogged, Logged{},
		func(b []byte, m proto.Message) []byte {
			l := m.(Logged)
			b = AppendInt(b, int64(l.From))
			b, err := Append(b, l.Msg)
			if err != nil {
				panic(err) // a Logged can only wrap registered messages
			}
			return b
		},
		func(b []byte) (proto.Message, []byte, error) {
			from, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			if from < -1 || from >= MaxSites {
				return nil, b, fmt.Errorf("wire: logged site index %d out of range", from)
			}
			inner, b, err := Decode(b)
			if err != nil {
				return nil, b, err
			}
			switch inner.(type) {
			case Logged, SnapMeta:
				return nil, b, fmt.Errorf("wire: nested persistence record %T", inner)
			}
			return Logged{From: int(from), Msg: inner}, b, nil
		})

	Register(tagSnapMeta, SnapMeta{},
		func(b []byte, m proto.Message) []byte {
			s := m.(SnapMeta)
			b = AppendInt(b, int64(s.Config))
			b = AppendInt(AppendInt(b, s.MessagesUp), s.MessagesDown)
			b = AppendInt(AppendInt(b, s.WordsUp), s.WordsDown)
			b = AppendInt(AppendInt(AppendInt(b, s.Broadcasts), s.Snapshots), s.Resyncs)
			b = AppendInt(b, int64(len(s.SiteArrivals)))
			for _, a := range s.SiteArrivals {
				b = AppendInt(b, a)
			}
			b = AppendInt(b, int64(len(s.Finished)))
			for _, f := range s.Finished {
				var v int64
				if f {
					v = 1
				}
				b = AppendInt(b, v)
			}
			return b
		},
		func(b []byte) (proto.Message, []byte, error) {
			var m SnapMeta
			cfg, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			m.Config = uint64(cfg)
			for _, dst := range []*int64{
				&m.MessagesUp, &m.MessagesDown, &m.WordsUp, &m.WordsDown,
				&m.Broadcasts, &m.Snapshots, &m.Resyncs,
			} {
				if *dst, b, err = ReadInt(b); err != nil {
					return nil, b, err
				}
			}
			n, b, err := ReadCount(b, 8)
			if err != nil {
				return nil, b, err
			}
			if n > 0 {
				m.SiteArrivals = make([]int64, n)
				for i := range m.SiteArrivals {
					if m.SiteArrivals[i], b, err = ReadInt(b); err != nil {
						return nil, b, err
					}
				}
			}
			nf, b, err := ReadCount(b, 8)
			if err != nil {
				return nil, b, err
			}
			if nf > 0 {
				m.Finished = make([]bool, nf)
				for i := range m.Finished {
					v, rest, err := ReadInt(b)
					if err != nil {
						return nil, rest, err
					}
					if v != 0 && v != 1 {
						return nil, rest, fmt.Errorf("wire: snapshot finished flag %d", v)
					}
					m.Finished[i] = v == 1
					b = rest
				}
			}
			return m, b, nil
		})
}
