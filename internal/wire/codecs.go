package wire

import (
	"fmt"

	"disttrack/internal/boost"
	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/robust"
	"disttrack/internal/rounds"
	"disttrack/internal/sample"
	"disttrack/internal/summary/gk"
	"disttrack/internal/summary/merge"
)

// Stable wire tags, one per concrete message type. Never renumber.
const (
	tagRoundsUp        byte = 1
	tagRoundsBroadcast byte = 2
	tagCountUpdate     byte = 3
	tagCountAdjust     byte = 4
	tagCountDetReport  byte = 5
	tagCountCopy       byte = 6
	tagFreqCounter     byte = 7
	tagFreqSample      byte = 8
	tagFreqReset       byte = 9
	tagFreqDetReport   byte = 10
	tagRankSummary     byte = 11
	tagRankSample      byte = 12
	tagRankDetSnapshot byte = 13
	tagSampleElement   byte = 14
	tagSampleLevel     byte = 15
	tagBoost           byte = 16
	tagHello           byte = 17
	tagDone            byte = 18
	tagProgress        byte = 19
	tagRejoin          byte = 20
	tagResync          byte = 21
	// 22–24 are the persistence frames (persist.go: tagState, tagLogged,
	// tagSnapMeta).
	tagRobustReport byte = 25
	tagRobustAdjust byte = 26
)

// Hello is the handshake frame a site sends when its connection to the
// coordinator opens (socket transports only — control traffic, never
// charged to the protocol's cost ledger). Config is an optional
// fingerprint of the protocol configuration (problem, algorithm, ε, ...);
// the distributed server refuses sites whose fingerprint differs from its
// own, so a mismatched deployment fails loudly instead of silently
// dropping every protocol message. Words follows the accounting convention
// anyway so the type can ride the shared codec machinery.
type Hello struct {
	Site   int
	K      int
	Config uint64
}

// Words implements proto.Message.
func (Hello) Words() int { return 3 }

// Done signals the orderly end of a site's stream in the distributed mode,
// carrying the site's local arrival count (control traffic).
type Done struct {
	Arrivals int64
}

// Words implements proto.Message.
func (Done) Words() int { return 1 }

// Progress is a periodic control frame a site sends mid-stream in the
// distributed mode, carrying its running arrival count so the
// coordinator's mid-run reports can show arrivals before any Done frame
// lands (control traffic, never charged to the protocol's cost ledger).
type Progress struct {
	Arrivals int64
}

// Words implements proto.Message.
func (Progress) Words() int { return 1 }

// Rejoin is the handshake frame a previously connected site sends instead
// of Hello when it reconnects after a crash or a dropped connection
// (control traffic). Site, K, and Config are validated exactly like
// Hello's; Arrivals carries the site's local arrival count at reconnect
// time (0 after a crash that lost local state), so the coordinator can
// log how much of the stream the site believes it has delivered.
type Rejoin struct {
	Site     int
	K        int
	Config   uint64
	Arrivals int64
}

// Words implements proto.Message.
func (Rejoin) Words() int { return 4 }

// Resync is the coordinator's acceptance of a Rejoin (control traffic). It
// carries the coordinator's current protocol round (0 when the protocol
// has no round structure) and the site's last coordinator-acknowledged
// arrival count — the recovery point: a crashed site whose stream source
// is replayable replays from 0 (the protocols' absolute-state messages
// make that reconverge exactly); one that cannot replay resumes from its
// own position and the coordinator keeps the pre-crash contribution it
// last acknowledged. Ordinary protocol frames that bring the fresh site
// machine to the current round (the coordinator's Resync replay, see
// proto.Resyncer) follow immediately after this frame.
type Resync struct {
	Round    int64
	Arrivals int64
}

// ResyncComplete in Resync.Round marks a completion acknowledgment rather
// than a rejoin acceptance: the run is over (or this site's part of it is),
// and everything up to Arrivals is durably applied. The server sends it to
// every connected site before an orderly hangup, and to a finished site
// that redials a resumed coordinator — the signal SiteConn.Close uses to
// tell an orderly end from a coordinator crash.
const ResyncComplete int64 = -1

// Words implements proto.Message.
func (Resync) Words() int { return 2 }

func init() {
	Register(tagRoundsUp, rounds.UpMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(rounds.UpMsg).N)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return rounds.UpMsg{N: n}, b, err
		})

	Register(tagRoundsBroadcast, rounds.BroadcastMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(rounds.BroadcastMsg).NBar)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return rounds.BroadcastMsg{NBar: n}, b, err
		})

	Register(tagCountUpdate, count.UpdateMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(count.UpdateMsg).N)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return count.UpdateMsg{N: n}, b, err
		})

	Register(tagCountAdjust, count.AdjustMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(count.AdjustMsg).NBar)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return count.AdjustMsg{NBar: n}, b, err
		})

	Register(tagCountDetReport, count.DetReportMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(count.DetReportMsg).N)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return count.DetReportMsg{N: n}, b, err
		})

	Register(tagCountCopy, count.CopyMsg{},
		func(b []byte, m proto.Message) []byte {
			cm := m.(count.CopyMsg)
			b = AppendInt(b, int64(cm.Copy))
			b, err := Append(b, cm.Inner)
			if err != nil {
				panic(err) // a CopyMsg can only wrap registered count messages
			}
			return b
		},
		func(b []byte) (proto.Message, []byte, error) {
			idx, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			if err := checkCopy(idx); err != nil {
				return nil, b, err
			}
			inner, b, err := Decode(b)
			if err != nil {
				return nil, b, err
			}
			if err := checkInner(inner); err != nil {
				return nil, b, err
			}
			return count.CopyMsg{Copy: int(idx), Inner: inner}, b, nil
		})

	Register(tagFreqCounter, freq.CounterMsg{},
		func(b []byte, m proto.Message) []byte {
			cm := m.(freq.CounterMsg)
			return AppendInt(AppendInt(b, cm.Item), cm.Count)
		},
		func(b []byte) (proto.Message, []byte, error) {
			item, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			cnt, b, err := ReadInt(b)
			return freq.CounterMsg{Item: item, Count: cnt}, b, err
		})

	Register(tagFreqSample, freq.SampleMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(freq.SampleMsg).Item)
		},
		func(b []byte) (proto.Message, []byte, error) {
			item, b, err := ReadInt(b)
			return freq.SampleMsg{Item: item}, b, err
		})

	Register(tagFreqReset, freq.ResetMsg{},
		func(b []byte, m proto.Message) []byte { return b },
		func(b []byte) (proto.Message, []byte, error) {
			return freq.ResetMsg{}, b, nil
		})

	// Pooled pointer message: encode accepts *DetReportMsg (the form the
	// protocol ships) and decode draws from the same shell pool the sites
	// use, so a decoded frame's shell is recycled by the coordinator.
	Register(tagFreqDetReport, &freq.DetReportMsg{},
		func(b []byte, m proto.Message) []byte {
			dm := m.(*freq.DetReportMsg)
			return AppendInt(AppendInt(AppendInt(b, int64(dm.Slot)), dm.Item), dm.Count)
		},
		func(b []byte) (proto.Message, []byte, error) {
			slot, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			item, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			cnt, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			return freq.NewDetReport(int(slot), item, cnt), b, nil
		})

	Register(tagRankSummary, rank.SummaryMsg{},
		func(b []byte, m proto.Message) []byte {
			sm := m.(rank.SummaryMsg)
			b = AppendInt(b, sm.Chunk)
			b = AppendInt(b, int64(sm.Level))
			b = AppendInt(b, int64(sm.Pos))
			return appendMergeSnapshot(b, sm.Snap)
		},
		func(b []byte) (proto.Message, []byte, error) {
			chunk, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			level, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			pos, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			snap, b, err := readMergeSnapshot(b)
			if err != nil {
				return nil, b, err
			}
			return rank.SummaryMsg{Chunk: chunk, Level: int(level), Pos: int(pos), Snap: snap}, b, nil
		})

	Register(tagRankSample, rank.SampleMsg{},
		func(b []byte, m proto.Message) []byte {
			sm := m.(rank.SampleMsg)
			return AppendFloat(AppendInt(AppendInt(b, sm.Chunk), sm.Index), sm.Value)
		},
		func(b []byte) (proto.Message, []byte, error) {
			chunk, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			idx, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			v, b, err := ReadFloat(b)
			return rank.SampleMsg{Chunk: chunk, Index: idx, Value: v}, b, err
		})

	// Pooled pointer message, like tagFreqDetReport above.
	Register(tagRankDetSnapshot, &rank.DetSnapshotMsg{},
		func(b []byte, m proto.Message) []byte {
			sn := m.(*rank.DetSnapshotMsg).Snap
			b = AppendInt(b, sn.N)
			b = AppendFloat(b, sn.Eps)
			b = AppendInt(b, int64(len(sn.Tuples)))
			for _, t := range sn.Tuples {
				b = AppendFloat(b, t.V)
				b = AppendInt(b, t.G)
				b = AppendInt(b, t.D)
			}
			return b
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			eps, b, err := ReadFloat(b)
			if err != nil {
				return nil, b, err
			}
			nt, b, err := ReadCount(b, 24)
			if err != nil {
				return nil, b, err
			}
			var tuples []gk.SnapshotTuple
			if nt > 0 {
				tuples = make([]gk.SnapshotTuple, nt)
				for i := range tuples {
					tuples[i].V, b, _ = ReadFloat(b)
					tuples[i].G, b, _ = ReadInt(b)
					tuples[i].D, b, err = ReadInt(b)
					if err != nil {
						return nil, b, err
					}
				}
			}
			return rank.NewDetSnapshot(gk.Snapshot{N: n, Eps: eps, Tuples: tuples}), b, nil
		})

	Register(tagSampleElement, sample.ElementMsg{},
		func(b []byte, m proto.Message) []byte {
			em := m.(sample.ElementMsg)
			return AppendInt(AppendFloat(AppendInt(b, em.Item), em.Value), int64(em.Level))
		},
		func(b []byte) (proto.Message, []byte, error) {
			item, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			v, b, err := ReadFloat(b)
			if err != nil {
				return nil, b, err
			}
			lvl, b, err := ReadInt(b)
			return sample.ElementMsg{Item: item, Value: v, Level: int(lvl)}, b, err
		})

	Register(tagSampleLevel, sample.LevelMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, int64(m.(sample.LevelMsg).Level))
		},
		func(b []byte) (proto.Message, []byte, error) {
			lvl, b, err := ReadInt(b)
			return sample.LevelMsg{Level: int(lvl)}, b, err
		})

	Register(tagBoost, boost.Msg{},
		func(b []byte, m proto.Message) []byte {
			bm := m.(boost.Msg)
			b = AppendInt(b, int64(bm.Copy))
			b, err := Append(b, bm.Inner)
			if err != nil {
				panic(err) // a boost.Msg can only wrap registered protocol messages
			}
			return b
		},
		func(b []byte) (proto.Message, []byte, error) {
			idx, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			if err := checkCopy(idx); err != nil {
				return nil, b, err
			}
			inner, b, err := Decode(b)
			if err != nil {
				return nil, b, err
			}
			if err := checkInner(inner); err != nil {
				return nil, b, err
			}
			return boost.Msg{Copy: int(idx), Inner: inner}, b, nil
		})

	Register(tagHello, Hello{},
		func(b []byte, m proto.Message) []byte {
			h := m.(Hello)
			return AppendInt(AppendInt(AppendInt(b, int64(h.Site)), int64(h.K)), int64(h.Config))
		},
		func(b []byte) (proto.Message, []byte, error) {
			site, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			k, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			cfg, b, err := ReadInt(b)
			return Hello{Site: int(site), K: int(k), Config: uint64(cfg)}, b, err
		})

	Register(tagProgress, Progress{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(Progress).Arrivals)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return Progress{Arrivals: n}, b, err
		})
	Register(tagDone, Done{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(Done).Arrivals)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return Done{Arrivals: n}, b, err
		})

	Register(tagRejoin, Rejoin{},
		func(b []byte, m proto.Message) []byte {
			r := m.(Rejoin)
			b = AppendInt(AppendInt(b, int64(r.Site)), int64(r.K))
			return AppendInt(AppendInt(b, int64(r.Config)), r.Arrivals)
		},
		func(b []byte) (proto.Message, []byte, error) {
			site, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			k, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			cfg, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			n, b, err := ReadInt(b)
			return Rejoin{Site: int(site), K: int(k), Config: uint64(cfg), Arrivals: n}, b, err
		})

	Register(tagRobustReport, robust.ReportMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(robust.ReportMsg).N)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return robust.ReportMsg{N: n}, b, err
		})

	Register(tagRobustAdjust, robust.AdjustMsg{},
		func(b []byte, m proto.Message) []byte {
			return AppendInt(b, m.(robust.AdjustMsg).NBar)
		},
		func(b []byte) (proto.Message, []byte, error) {
			n, b, err := ReadInt(b)
			return robust.AdjustMsg{NBar: n}, b, err
		})

	Register(tagResync, Resync{},
		func(b []byte, m proto.Message) []byte {
			r := m.(Resync)
			return AppendInt(AppendInt(b, r.Round), r.Arrivals)
		},
		func(b []byte) (proto.Message, []byte, error) {
			round, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			n, b, err := ReadInt(b)
			return Resync{Round: round, Arrivals: n}, b, err
		})

	// Scratch decoders (wire.Decoder) for the fixed-width hot-path
	// messages: decode into a reusable pointer box instead of boxing a
	// fresh value per frame. All of them share the shape "reuse prev or
	// allocate once, overwrite every field".
	RegisterScratch(tagRoundsUp,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*rounds.UpMsg)
			if p == nil {
				p = new(rounds.UpMsg)
			}
			var err error
			p.N, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagRoundsBroadcast,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*rounds.BroadcastMsg)
			if p == nil {
				p = new(rounds.BroadcastMsg)
			}
			var err error
			p.NBar, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagCountUpdate,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*count.UpdateMsg)
			if p == nil {
				p = new(count.UpdateMsg)
			}
			var err error
			p.N, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagCountAdjust,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*count.AdjustMsg)
			if p == nil {
				p = new(count.AdjustMsg)
			}
			var err error
			p.NBar, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagFreqCounter,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*freq.CounterMsg)
			if p == nil {
				p = new(freq.CounterMsg)
			}
			var err error
			p.Item, b, err = ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			p.Count, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagFreqSample,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*freq.SampleMsg)
			if p == nil {
				p = new(freq.SampleMsg)
			}
			var err error
			p.Item, b, err = ReadInt(b)
			return p, b, err
		})
	RegisterScratch(tagRankSample,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*rank.SampleMsg)
			if p == nil {
				p = new(rank.SampleMsg)
			}
			var err error
			p.Chunk, b, err = ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			p.Index, b, err = ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			p.Value, b, err = ReadFloat(b)
			return p, b, err
		})
	RegisterScratch(tagSampleElement,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*sample.ElementMsg)
			if p == nil {
				p = new(sample.ElementMsg)
			}
			item, b, err := ReadInt(b)
			if err != nil {
				return nil, b, err
			}
			v, b, err := ReadFloat(b)
			if err != nil {
				return nil, b, err
			}
			lvl, b, err := ReadInt(b)
			p.Item, p.Value, p.Level = item, v, int(lvl)
			return p, b, err
		})
	RegisterScratch(tagSampleLevel,
		func(b []byte, prev proto.Message) (proto.Message, []byte, error) {
			p, _ := prev.(*sample.LevelMsg)
			if p == nil {
				p = new(sample.LevelMsg)
			}
			lvl, b, err := ReadInt(b)
			p.Level = int(lvl)
			return p, b, err
		})
}

// MaxCopies bounds the copy index a decoded multiplexer message may carry.
// Real deployments run O(log(logN/δε)) copies — a handful — so anything
// near this limit is corruption, and rejecting it here keeps a decoded
// index from reaching the multiplexers' copy arrays wildly out of range.
const MaxCopies = 1 << 16

// checkCopy validates a decoded multiplexer copy index.
func checkCopy(idx int64) error {
	if idx < 0 || idx >= MaxCopies {
		return fmt.Errorf("wire: copy index %d out of range", idx)
	}
	return nil
}

// checkInner rejects a multiplexer wrapper nested inside another wrapper,
// and persistence records (Logged, SnapMeta) nested inside a multiplexer.
// The protocols never produce either (boost and median wrap base messages
// only; persistence records wrap, they are never wrapped), and refusing
// them bounds decode recursion on corrupt input.
func checkInner(inner proto.Message) error {
	switch inner.(type) {
	case count.CopyMsg, boost.Msg, Logged, SnapMeta:
		return fmt.Errorf("wire: nested multiplexer message %T", inner)
	}
	return nil
}

// appendMergeSnapshot encodes a merge.Snapshot: N, buffer count, then per
// buffer its weight, length, and values.
func appendMergeSnapshot(b []byte, sn merge.Snapshot) []byte {
	b = AppendInt(b, sn.N)
	b = AppendInt(b, int64(len(sn.Buffers)))
	for _, buf := range sn.Buffers {
		b = AppendInt(b, buf.Weight)
		b = AppendInt(b, int64(len(buf.Values)))
		for _, v := range buf.Values {
			b = AppendFloat(b, v)
		}
	}
	return b
}

// readMergeSnapshot decodes a merge.Snapshot into fresh storage.
func readMergeSnapshot(b []byte) (merge.Snapshot, []byte, error) {
	n, b, err := ReadInt(b)
	if err != nil {
		return merge.Snapshot{}, b, err
	}
	// Each buffer occupies at least two words (weight + length).
	nb, b, err := ReadCount(b, 16)
	if err != nil {
		return merge.Snapshot{}, b, err
	}
	var bufs []merge.WeightedBuffer
	if nb > 0 {
		bufs = make([]merge.WeightedBuffer, nb)
		for i := range bufs {
			var w int64
			w, b, err = ReadInt(b)
			if err != nil {
				return merge.Snapshot{}, b, err
			}
			var nv int
			nv, b, err = ReadCount(b, 8)
			if err != nil {
				return merge.Snapshot{}, b, err
			}
			vals := make([]float64, nv)
			for j := range vals {
				vals[j], b, _ = ReadFloat(b)
			}
			bufs[i] = merge.WeightedBuffer{Weight: w, Values: vals}
		}
	}
	return merge.Snapshot{N: n, Buffers: bufs}, b, nil
}
