package lowerbound

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

func TestOneBitInstanceShape(t *testing.T) {
	rng := stats.New(901)
	const k = 100
	plusSeen, minusSeen := false, false
	for i := 0; i < 50; i++ {
		inst := NewOneBitInstance(k, rng)
		ones := 0
		for _, b := range inst.Bits {
			if b {
				ones++
			}
		}
		if ones != inst.Freed {
			t.Fatalf("bit count %d != declared s %d", ones, inst.Freed)
		}
		if inst.Plus {
			plusSeen = true
			if ones != k/2+10 {
				t.Fatalf("plus instance has %d ones", ones)
			}
		} else {
			minusSeen = true
			if ones != k/2-10 {
				t.Fatalf("minus instance has %d ones", ones)
			}
		}
	}
	if !plusSeen || !minusSeen {
		t.Fatal("both hypotheses should appear over 50 draws")
	}
}

func TestProbeBounds(t *testing.T) {
	rng := stats.New(907)
	inst := NewOneBitInstance(64, rng)
	pr := inst.Probe(16, rng)
	if pr.Ones < 0 || pr.Ones > 16 {
		t.Fatalf("probe ones out of range: %d", pr.Ones)
	}
	full := inst.Probe(64, rng)
	if full.Ones != inst.Freed {
		t.Fatalf("full probe found %d ones, want %d", full.Ones, inst.Freed)
	}
}

func TestFullProbeAlwaysSucceeds(t *testing.T) {
	rng := stats.New(911)
	const k = 64
	for i := 0; i < 200; i++ {
		inst := NewOneBitInstance(k, rng)
		pr := inst.Probe(k, rng)
		if DecidePlus(k, pr) != inst.Plus {
			t.Fatal("full probe misclassified")
		}
	}
}

// TestClaimA1SmallProbesFail is the heart of Figure 1: with z = o(k) probes
// the optimal distinguisher's success probability is close to 1/2, while
// z = k succeeds almost always.
func TestClaimA1SmallProbesFail(t *testing.T) {
	rng := stats.New(913)
	const k = 1024
	const trials = 4000
	small := SuccessProbability(k, 16, trials, rng) // z = k/64
	large := SuccessProbability(k, k, trials, rng)
	if small > 0.65 {
		t.Fatalf("z=o(k) success %v; Claim A.1 predicts ~0.5", small)
	}
	if large < 0.95 {
		t.Fatalf("z=k success %v; should be near certain", large)
	}
	// Monotonicity in z (coarse).
	mid := SuccessProbability(k, 256, trials, rng)
	if !(small-0.05 <= mid && mid <= large+0.05) {
		t.Fatalf("success not increasing: %v, %v, %v", small, mid, large)
	}
}

func TestAnalyticFailureMatchesMonteCarlo(t *testing.T) {
	rng := stats.New(917)
	const k = 1024
	const trials = 6000
	for _, z := range []int{32, 128, 512} {
		mc := 1 - SuccessProbability(k, z, trials, rng)
		an := AnalyticFailure(k, z)
		// The normal approximation plus hypergeometric finiteness: allow a
		// few percentage points.
		if math.Abs(mc-an) > 0.05 {
			t.Fatalf("z=%d: Monte-Carlo failure %v vs analytic %v", z, mc, an)
		}
	}
}

func TestAnalyticFailureLimits(t *testing.T) {
	if AnalyticFailure(1024, 0) != 0.5 {
		t.Fatal("zero probes should fail half the time")
	}
	if f := AnalyticFailure(1024, 1024); f > 0.05 {
		t.Fatalf("full probe analytic failure %v too high", f)
	}
	// Failure decreases with z.
	prev := 0.51
	for _, z := range []int{1, 4, 16, 64, 256, 1024} {
		f := AnalyticFailure(1024, z)
		if f > prev {
			t.Fatalf("failure not decreasing at z=%d: %v > %v", z, f, prev)
		}
		prev = f
	}
}

func TestCompareUnderMu(t *testing.T) {
	// Theorem 2.2's story: a one-way algorithm must keep dense reporting
	// thresholds to survive the single-site branch, which the round-robin
	// branch then exploits at cost Ω(k/ε·logN); the randomized two-way
	// tracker escapes with ~√k/ε·logN. So on round-robin draws the
	// randomized tracker must be cheaper, while on single-site draws the
	// one-way tracker is legitimately cheap (one site does all reporting).
	const k = 64
	const eps = 0.1
	const n = 60000
	singles, robins := 0, 0
	for seed := uint64(0); seed < 10 && (singles == 0 || robins == 0); seed++ {
		res := CompareUnderMu(k, eps, n, seed)
		if res.DetMaxErr > eps {
			t.Fatalf("deterministic tracker violated its guarantee: %v", res.DetMaxErr)
		}
		if res.RandBadFrac > 0.15 {
			t.Fatalf("randomized tracker failed %v of instants under µ", res.RandBadFrac)
		}
		if res.SingleSiteBranch {
			singles++
			continue
		}
		robins++
		if res.RandMessages >= res.DetMessages {
			t.Fatalf("round-robin branch: randomized (%d) not cheaper than one-way deterministic (%d)",
				res.RandMessages, res.DetMessages)
		}
	}
	if robins == 0 {
		t.Fatal("round-robin branch never drawn over 10 seeds")
	}
}

func TestRunHardInstanceCorrectAndCostly(t *testing.T) {
	const k = 64
	const eps = 0.1
	res := RunHardInstance(k, eps, 60000, 5)
	if res.Subrounds == 0 {
		t.Fatal("no subrounds completed")
	}
	// The tracker must stay correct at the adversary's decision points for
	// most subrounds (0.9 guarantee per instant).
	if frac := float64(res.BadSubrounds) / float64(res.Subrounds); frac > 0.15 {
		t.Fatalf("tracker failed %.0f%% of subround decisions", 100*frac)
	}
	if res.Messages == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestOneWayForcedMessages(t *testing.T) {
	f := OneWayForcedMessages(16, 0.1, 1<<20)
	if f <= 0 {
		t.Fatal("forced messages should be positive")
	}
	// Grows with N.
	if OneWayForcedMessages(16, 0.1, 1<<22) <= f {
		t.Fatal("forced messages should grow with N")
	}
	// Grows as 1/eps.
	if OneWayForcedMessages(16, 0.05, 1<<20) <= f {
		t.Fatal("forced messages should grow as eps shrinks")
	}
	if OneWayForcedMessages(16, 0.1, 8) != 0 {
		t.Fatal("tiny n should force nothing")
	}
}

func TestNewOneBitInstanceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=2 did not panic")
		}
	}()
	NewOneBitInstance(2, stats.New(1))
}

func TestSuccessProbabilityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad z did not panic")
		}
	}()
	SuccessProbability(16, 17, 10, stats.New(1))
}
