// Package lowerbound implements the experimental side of the paper's lower
// bounds (Section 2.2 and Appendix A): the 1-bit problem of Definition 2.1,
// the sampling problem of Claim A.1 whose geometry Figure 1 illustrates, the
// one-way threshold-player model of Theorem 2.2, and drivers that feed the
// adversarial instances to the real trackers.
package lowerbound

import (
	"math"

	"disttrack/internal/stats"
)

// OneBitInstance is one draw of the 1-bit problem: s = k/2 ± √k of the k
// sites hold bit 1, with the sign chosen uniformly.
type OneBitInstance struct {
	K     int
	Plus  bool // true: s = k/2 + √k
	Bits  []bool
	Freed int // number of bits = 1 (the true s)
}

// NewOneBitInstance draws an instance.
func NewOneBitInstance(k int, rng *stats.RNG) *OneBitInstance {
	if k < 4 {
		panic("lowerbound: k must be >= 4")
	}
	sq := int(math.Sqrt(float64(k)))
	plus := rng.Bernoulli(0.5)
	s := k/2 - sq
	if plus {
		s = k/2 + sq
	}
	bits := make([]bool, k)
	for _, i := range rng.SampleK(k, s) {
		bits[i] = true
	}
	return &OneBitInstance{K: k, Plus: plus, Bits: bits, Freed: s}
}

// ProbeResult is the outcome of probing z sites of an instance.
type ProbeResult struct {
	Z    int
	Ones int
}

// Probe samples z sites uniformly without replacement and counts ones.
func (inst *OneBitInstance) Probe(z int, rng *stats.RNG) ProbeResult {
	ones := 0
	for _, i := range rng.SampleK(inst.K, z) {
		if inst.Bits[i] {
			ones++
		}
	}
	return ProbeResult{Z: z, Ones: ones}
}

// DecidePlus is the optimal likelihood decision rule for the probe: declare
// "s = k/2 + √k" when the hypergeometric likelihood under the plus
// hypothesis exceeds the minus one (Figure 1's threshold x₀ between the two
// laws; for these symmetric parameters it reduces to comparing the observed
// fraction of ones with 1/2, but we evaluate the exact likelihoods).
func DecidePlus(k int, pr ProbeResult) bool {
	sq := int(math.Sqrt(float64(k)))
	lPlus := stats.HypergeometricLogPMF(k, k/2+sq, pr.Z, pr.Ones)
	lMinus := stats.HypergeometricLogPMF(k, k/2-sq, pr.Z, pr.Ones)
	return lPlus >= lMinus
}

// SuccessProbability estimates, by nTrials Monte-Carlo draws, the success
// probability of the optimal distinguisher when probing z of k sites. The
// paper's Claim A.1 shows it is 1/2 + o(1) whenever z = o(k), which forces
// the Ω(k) communication per 1-bit instance.
func SuccessProbability(k, z, nTrials int, rng *stats.RNG) float64 {
	if z < 0 || z > k {
		panic("lowerbound: z out of range")
	}
	wins := 0
	for t := 0; t < nTrials; t++ {
		inst := NewOneBitInstance(k, rng)
		pr := inst.Probe(z, rng)
		if DecidePlus(k, pr) == inst.Plus {
			wins++
		}
	}
	return float64(wins) / float64(nTrials)
}

// AnalyticFailure returns the analytic failure probability of the optimal
// distinguisher from the paper's Appendix A normal approximation:
// ½(Φ(−ℓ₁/σ₁) + Φ(−ℓ₂/σ₂)) with µ = z·p ± z·α, p = 1/2, α = 1/√k
// (Figure 1's two-Gaussian picture). The paper takes σ² ≈ z·p(1−p) because
// it only needs z = o(k); we include the hypergeometric finite-population
// correction (k−z)/(k−1) so the curve is accurate for all z up to k.
func AnalyticFailure(k, z int) float64 {
	if z == 0 {
		return 0.5
	}
	if z >= k {
		return 0
	}
	p := 0.5
	alpha := 1 / math.Sqrt(float64(k))
	fpc := float64(k-z) / float64(k-1)
	sigma := math.Sqrt(float64(z) * p * (1 - p) * fpc)
	half := alpha * float64(z) // distance from each mean to the midpoint x0
	return stats.NormalCDF(-half / sigma)
}
