package lowerbound

import (
	"disttrack/internal/count"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// MuComparison is the outcome of running the deterministic one-way tracker
// and the randomized two-way tracker on the same draw of the hard
// distribution µ (Theorem 2.2).
type MuComparison struct {
	SingleSiteBranch bool // which branch of µ was drawn
	DetMessages      int64
	RandMessages     int64
	DetMaxErr        float64 // max relative error over all instants
	// RandBadFrac is the fraction of instants where the randomized tracker
	// missed the 2ε band. At Rescale 1 the ε-band is one standard
	// deviation, so 2ε is the meaningful Chebyshev check here.
	RandBadFrac float64
}

// CompareUnderMu draws one µ instance and runs both trackers on it.
// Theorem 2.2 says any one-way algorithm pays Ω(k/ε·logN) under µ; the
// deterministic tracker is exactly such an algorithm, while the randomized
// two-way tracker escapes with O(√k/ε·logN).
func CompareUnderMu(k int, eps float64, n int, seed uint64) MuComparison {
	rng := stats.New(seed)
	placement := workload.HardMu(k, rng)
	events := workload.Config{N: n, Placement: placement}.Events()
	single := true
	for i := 1; i < k && i < n; i++ {
		if events[i].Site != events[0].Site {
			single = false
			break
		}
	}

	var out MuComparison
	out.SingleSiteBranch = single

	dp, dcoord := count.NewDetProtocol(k, eps)
	dh := sim.New(dp)
	dh.Run(events, func(arrived int64) {
		if e := stats.RelErr(dcoord.Estimate(), float64(arrived)); e > out.DetMaxErr {
			out.DetMaxErr = e
		}
	})
	out.DetMessages = dh.Metrics().Messages()

	// Rescale 1: the comparison is between the message-count shapes of the
	// two algorithms at the same ε parameter, as in Table 1.
	rp, rcoord := count.NewProtocol(count.Config{K: k, Eps: eps, Rescale: 1}, rng.Uint64())
	rh := sim.New(rp)
	bad := 0
	rh.Run(events, func(arrived int64) {
		if stats.RelErr(rcoord.Estimate(), float64(arrived)) > 2*eps {
			bad++
		}
	})
	out.RandMessages = rh.Metrics().Messages()
	out.RandBadFrac = float64(bad) / float64(n)
	return out
}

// HardRunResult is the outcome of running the randomized tracker on the
// Theorem 2.4 adversarial instance.
type HardRunResult struct {
	K         int
	Eps       float64
	N         int
	Subrounds int   // number of completed subrounds (1-bit decision points)
	Messages  int64 // total messages exchanged
	// BadSubrounds counts decision points where the estimate missed εn —
	// the tracker is allowed a constant fraction of these.
	BadSubrounds int
}

// RunHardInstance feeds the subround adversary to the randomized tracker
// and checks it at exactly the instants the lower-bound proof interrogates.
// Any correct tracker must spend Ω(k) messages per subround there, i.e.
// Ω(√k/ε·logN) in total.
func RunHardInstance(k int, eps float64, maxEvents int, seed uint64) HardRunResult {
	rng := stats.New(seed)
	inst := workload.NewHardCountInstance(k, eps, maxEvents, rng)
	p, coord := count.NewProtocol(count.Config{K: k, Eps: eps}, rng.Uint64())
	h := sim.New(p)

	res := HardRunResult{K: k, Eps: eps, N: inst.N()}
	next := 0
	for i, e := range inst.Events {
		h.Arrive(e.Site, e.Item, e.Value)
		if next < len(inst.SubroundEnds) && i+1 == inst.SubroundEnds[next] {
			res.Subrounds++
			if stats.RelErr(coord.Estimate(), float64(i+1)) > eps {
				res.BadSubrounds++
			}
			next++
		}
	}
	res.Messages = h.Metrics().Messages()
	return res
}

// OneWayForcedMessages returns the analytic floor of Theorem 2.2 for a
// deterministic one-way algorithm under µ: k/2 messages per (1+ε)-growth
// round over 1/ε·log(εN/k) rounds.
func OneWayForcedMessages(k int, eps float64, n int) float64 {
	if n <= k {
		return 0
	}
	rounds := 0.0
	w := float64(k) / eps
	for w < float64(n) {
		w *= 1 + eps
		rounds++
	}
	return rounds * float64(k) / 2
}
