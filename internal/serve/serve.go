// Package serve is the tracker-as-a-service surface: an HTTP/JSON query
// API (count, frequency, rank, quantile) plus a Prometheus-format /metrics
// endpoint, served over any tracking deployment through a small Backend
// interface. The package is deliberately dependency-neutral — it imports
// only the standard library, so both the disttrack facade (single-process
// trackers) and cmd/tracksim's distributed coordinator can sit behind it
// without import cycles.
//
// Endpoints:
//
//	GET  /v1/count             → {"estimate": n̂}
//	GET  /v1/freq?item=N       → {"item": N, "estimate": f̂}
//	GET  /v1/rank?value=X      → {"value": X, "rank": r̂}
//	GET  /v1/quantile?phi=Q    → {"phi": Q, "value": v}
//	POST /v1/observe           ← {"site": S, "item": N, "value": X, "count": C}
//	POST /v1/flush             → {"ok": true}   (everything-observed barrier)
//	GET  /v1/healthz           → deployment info + arrivals + live sites
//	GET  /metrics              → Prometheus text exposition
//
// Queries a deployment cannot answer (a count tracker asked for a rank, a
// distributed coordinator asked to Observe) return 404 with a JSON error —
// the endpoint is absent for this deployment, not broken. A backend that
// is temporarily unable to answer (still assembling its sites) returns
// 503. Malformed parameters return 400. /metrics and /v1/healthz never
// fail: when the backend cannot produce a snapshot they degrade — the
// exposition carries disttrack_up 0 and the health document reports the
// error — so probes and scrapes keep working through outages.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrUnsupported marks a query the deployment behind the Backend cannot
// answer at all (as opposed to a transient failure): a frequency query
// against a count tracker, an Observe against a distributed coordinator
// whose ingest runs on remote site processes. The handler maps it to 404.
var ErrUnsupported = errors.New("serve: not supported by this deployment")

// FaultCounts mirrors the tracker's fault-injection counters (all zero
// without a fault plan).
type FaultCounts struct {
	Dropped     int64
	Retransmits int64
	Duplicated  int64
	Reordered   int64
	Delayed     int64
	Partitioned int64
}

// Snapshot is a consistent reading of a deployment's cost and health
// ledger, the neutral image of disttrack.Metrics / runtime.Metrics that
// /metrics and /v1/healthz export.
type Snapshot struct {
	Arrivals      int64
	MessagesUp    int64
	MessagesDown  int64
	WordsUp       int64
	WordsDown     int64
	Broadcasts    int64
	Dropped       int64
	LiveSites     int
	MaxSiteSpace  int
	MaxCoordSpace int
	Snapshots     int64
	ReplayedFrames int64
	Resyncs       int64
	Depth         int
	LevelMessages [2]int64
	LevelWords    [2]int64
	Faults        FaultCounts
}

// Info describes the deployment: static facts the server reports in
// /v1/healthz and as labels on the disttrack_info metric.
type Info struct {
	Problem   string
	Algorithm string
	Transport string
	Topology  string
	K         int
	Epsilon   float64
}

// Backend answers queries against a live tracking deployment. Estimates
// must be internally consistent reads (the callers behind disttrack run
// them at quiescent instants); methods are called concurrently from HTTP
// handler goroutines and must be safe for that. A method that the
// deployment cannot ever answer returns ErrUnsupported; any other error is
// treated as transient (503).
type Backend interface {
	Count() (float64, error)
	Freq(item int64) (float64, error)
	Rank(value float64) (float64, error)
	Quantile(phi float64) (float64, error)
	Observe(site int, item int64, value float64, count int64) error
	Flush() error
	Snapshot() (Snapshot, error)
}

// Funcs adapts closures to the Backend interface; a nil field answers
// ErrUnsupported. This is how the facade trackers and the distributed
// coordinator wire themselves in without this package importing them.
type Funcs struct {
	CountFn    func() (float64, error)
	FreqFn     func(item int64) (float64, error)
	RankFn     func(value float64) (float64, error)
	QuantileFn func(phi float64) (float64, error)
	ObserveFn  func(site int, item int64, value float64, count int64) error
	FlushFn    func() error
	SnapshotFn func() (Snapshot, error)
}

func (f Funcs) Count() (float64, error) {
	if f.CountFn == nil {
		return 0, ErrUnsupported
	}
	return f.CountFn()
}

func (f Funcs) Freq(item int64) (float64, error) {
	if f.FreqFn == nil {
		return 0, ErrUnsupported
	}
	return f.FreqFn(item)
}

func (f Funcs) Rank(value float64) (float64, error) {
	if f.RankFn == nil {
		return 0, ErrUnsupported
	}
	return f.RankFn(value)
}

func (f Funcs) Quantile(phi float64) (float64, error) {
	if f.QuantileFn == nil {
		return 0, ErrUnsupported
	}
	return f.QuantileFn(phi)
}

func (f Funcs) Observe(site int, item int64, value float64, count int64) error {
	if f.ObserveFn == nil {
		return ErrUnsupported
	}
	return f.ObserveFn(site, item, value, count)
}

func (f Funcs) Flush() error {
	if f.FlushFn == nil {
		return ErrUnsupported
	}
	return f.FlushFn()
}

func (f Funcs) Snapshot() (Snapshot, error) {
	if f.SnapshotFn == nil {
		return Snapshot{}, ErrUnsupported
	}
	return f.SnapshotFn()
}

// endpoint indexes the per-endpoint HTTP request counters exported as
// disttrack_http_requests_total{path=...}.
type endpoint int

const (
	epCount endpoint = iota
	epFreq
	epRank
	epQuantile
	epObserve
	epFlush
	epHealthz
	epMetrics
	epCounters // len marker
)

var endpointPath = [epCounters]string{
	"/v1/count", "/v1/freq", "/v1/rank", "/v1/quantile",
	"/v1/observe", "/v1/flush", "/v1/healthz", "/metrics",
}

// Server serves the HTTP/JSON query API and the Prometheus exposition over
// one Backend. The zero value with a Backend is ready; Handler builds the
// mux lazily and is safe for concurrent use.
type Server struct {
	Backend Backend
	Info    Info

	once sync.Once
	mux  *http.ServeMux
	reqs [epCounters]atomic.Int64
	errs atomic.Int64
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	s.once.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc(endpointPath[epCount], s.handleCount)
		mux.HandleFunc(endpointPath[epFreq], s.handleFreq)
		mux.HandleFunc(endpointPath[epRank], s.handleRank)
		mux.HandleFunc(endpointPath[epQuantile], s.handleQuantile)
		mux.HandleFunc(endpointPath[epObserve], s.handleObserve)
		mux.HandleFunc(endpointPath[epFlush], s.handleFlush)
		mux.HandleFunc(endpointPath[epHealthz], s.handleHealthz)
		mux.HandleFunc(endpointPath[epMetrics], s.handleMetrics)
		s.mux = mux
	})
	return s.mux
}

// writeJSON emits one JSON document; the encoder cannot fail on the maps
// and structs this package builds, so errors are not rechecked.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail maps a backend error onto the endpoint contract: ErrUnsupported is
// 404 (this deployment has no such query), anything else 503 (transient).
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errs.Add(1)
	status := http.StatusServiceUnavailable
	if errors.Is(err, ErrUnsupported) {
		status = http.StatusNotFound
	}
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.errs.Add(1)
	s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// guard counts the request and enforces the endpoint's method; it reports
// whether the handler should proceed.
func (s *Server) guard(w http.ResponseWriter, r *http.Request, ep endpoint, method string) bool {
	s.reqs[ep].Add(1)
	if r.Method != method {
		s.errs.Add(1)
		w.Header().Set("Allow", method)
		s.writeJSON(w, http.StatusMethodNotAllowed,
			map[string]string{"error": method + " only"})
		return false
	}
	return true
}

// queryFloat parses a required float query parameter.
func queryFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing ?%s=", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epCount, http.MethodGet) {
		return
	}
	est, err := s.Backend.Count()
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"estimate": est})
}

func (s *Server) handleFreq(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epFreq, http.MethodGet) {
		return
	}
	raw := r.URL.Query().Get("item")
	if raw == "" {
		s.badRequest(w, "missing ?item=")
		return
	}
	item, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		s.badRequest(w, "bad item %q", raw)
		return
	}
	est, err := s.Backend.Freq(item)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"item": item, "estimate": est})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epRank, http.MethodGet) {
		return
	}
	value, err := queryFloat(r, "value")
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	rank, err := s.Backend.Rank(value)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"value": value, "rank": rank})
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epQuantile, http.MethodGet) {
		return
	}
	phi, err := queryFloat(r, "phi")
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	if phi < 0 || phi > 1 {
		s.badRequest(w, "phi %g outside [0,1]", phi)
		return
	}
	v, err := s.Backend.Quantile(phi)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"phi": phi, "value": v})
}

// observeReq is the /v1/observe body. Count defaults to 1 when omitted.
type observeReq struct {
	Site  int     `json:"site"`
	Item  int64   `json:"item"`
	Value float64 `json:"value"`
	Count int64   `json:"count"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epObserve, http.MethodPost) {
		return
	}
	var req observeReq
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, "bad body: %v", err)
		return
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 {
		s.badRequest(w, "negative count %d", req.Count)
		return
	}
	if req.Site < 0 || (s.Info.K > 0 && req.Site >= s.Info.K) {
		s.badRequest(w, "site %d out of range [0, %d)", req.Site, s.Info.K)
		return
	}
	if err := s.Backend.Observe(req.Site, req.Item, req.Value, req.Count); err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epFlush, http.MethodPost) {
		return
	}
	if err := s.Backend.Flush(); err != nil {
		s.fail(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epHealthz, http.MethodGet) {
		return
	}
	doc := map[string]any{
		"status":    "ok",
		"problem":   s.Info.Problem,
		"algorithm": s.Info.Algorithm,
		"transport": s.Info.Transport,
		"topology":  s.Info.Topology,
		"k":         s.Info.K,
		"epsilon":   s.Info.Epsilon,
	}
	if snap, err := s.Backend.Snapshot(); err != nil {
		// Degraded, not down: the probe keeps answering 200 so orchestrators
		// do not kill a coordinator that is merely assembling its sites.
		doc["status"] = "degraded"
		doc["error"] = err.Error()
	} else {
		doc["arrivals"] = snap.Arrivals
		doc["live_sites"] = snap.LiveSites
	}
	s.writeJSON(w, http.StatusOK, doc)
}

// promEscape escapes a Prometheus label value.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promWriter accumulates Prometheus text exposition lines.
type promWriter struct{ b strings.Builder }

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) val(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&p.b, "%s%s %g\n", name, labels, v)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.header(name, help, "counter")
	p.val(name, "", float64(v))
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.val(name, "", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.guard(w, r, epMetrics, http.MethodGet) {
		return
	}
	var p promWriter
	p.header("disttrack_info", "Deployment shape (always 1; facts ride the labels).", "gauge")
	p.val("disttrack_info", fmt.Sprintf(
		`problem="%s",algorithm="%s",transport="%s",topology="%s"`,
		promEscape(s.Info.Problem), promEscape(s.Info.Algorithm),
		promEscape(s.Info.Transport), promEscape(s.Info.Topology)), 1)
	p.gauge("disttrack_sites", "Configured number of sites (k).", float64(s.Info.K))
	p.gauge("disttrack_epsilon", "Target relative error.", s.Info.Epsilon)

	p.header("disttrack_http_requests_total", "HTTP requests served, by path.", "counter")
	for ep := endpoint(0); ep < epCounters; ep++ {
		p.val("disttrack_http_requests_total",
			fmt.Sprintf(`path="%s"`, endpointPath[ep]), float64(s.reqs[ep].Load()))
	}
	p.counter("disttrack_http_errors_total",
		"HTTP requests answered with a non-2xx status.", s.errs.Load())

	snap, err := s.Backend.Snapshot()
	if err != nil {
		// Scrapes must survive a backend outage: export liveness 0 and stop.
		p.gauge("disttrack_up", "Whether the tracker ledger is readable (1) or not (0).", 0)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, p.b.String())
		return
	}
	p.gauge("disttrack_up", "Whether the tracker ledger is readable (1) or not (0).", 1)
	p.counter("disttrack_arrivals_total", "Elements observed across all sites.", snap.Arrivals)
	p.header("disttrack_messages_total",
		"Protocol messages exchanged, by direction (up = site to coordinator).", "counter")
	p.val("disttrack_messages_total", `direction="up"`, float64(snap.MessagesUp))
	p.val("disttrack_messages_total", `direction="down"`, float64(snap.MessagesDown))
	p.header("disttrack_words_total",
		"Communication volume in the paper's word units, by direction.", "counter")
	p.val("disttrack_words_total", `direction="up"`, float64(snap.WordsUp))
	p.val("disttrack_words_total", `direction="down"`, float64(snap.WordsDown))
	p.counter("disttrack_broadcasts_total", "Coordinator broadcast operations.", snap.Broadcasts)
	p.counter("disttrack_dropped_total",
		"Elements shed by the ingestion frontend (IngestDrop or terminal failure).", snap.Dropped)
	p.gauge("disttrack_live_sites", "Sites currently reachable.", float64(snap.LiveSites))
	p.gauge("disttrack_site_space_words_max",
		"High-water per-site working space in words.", float64(snap.MaxSiteSpace))
	p.gauge("disttrack_coord_space_words_max",
		"High-water coordinator working space in words.", float64(snap.MaxCoordSpace))
	p.counter("disttrack_snapshots_total",
		"Coordinator-state snapshots written to the durable store.", snap.Snapshots)
	p.gauge("disttrack_replayed_frames",
		"WAL frames replayed by the most recent coordinator recovery.", float64(snap.ReplayedFrames))
	p.counter("disttrack_resyncs_total", "Site resync replays served to rejoining sites.", snap.Resyncs)
	if snap.Depth > 0 {
		p.gauge("disttrack_tree_depth", "Coordination tree depth (0 = flat star).", float64(snap.Depth))
		p.header("disttrack_level_messages_total",
			"Messages per tree level (0 = leaf, 1 = root fan-in).", "counter")
		p.val("disttrack_level_messages_total", `level="0"`, float64(snap.LevelMessages[0]))
		p.val("disttrack_level_messages_total", `level="1"`, float64(snap.LevelMessages[1]))
		p.header("disttrack_level_words_total", "Words per tree level.", "counter")
		p.val("disttrack_level_words_total", `level="0"`, float64(snap.LevelWords[0]))
		p.val("disttrack_level_words_total", `level="1"`, float64(snap.LevelWords[1]))
	}
	f := snap.Faults
	if f != (FaultCounts{}) {
		p.header("disttrack_faults_total", "Injected fault events, by kind.", "counter")
		p.val("disttrack_faults_total", `kind="dropped"`, float64(f.Dropped))
		p.val("disttrack_faults_total", `kind="retransmits"`, float64(f.Retransmits))
		p.val("disttrack_faults_total", `kind="duplicated"`, float64(f.Duplicated))
		p.val("disttrack_faults_total", `kind="reordered"`, float64(f.Reordered))
		p.val("disttrack_faults_total", `kind="delayed"`, float64(f.Delayed))
		p.val("disttrack_faults_total", `kind="partitioned"`, float64(f.Partitioned))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}
