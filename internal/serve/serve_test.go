package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// testServer wires a Funcs backend over an httptest server.
func testServer(t *testing.T, b Backend, info Info) (*Server, *httptest.Server) {
	t.Helper()
	s := &Server{Backend: b, Info: info}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return doc
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return doc
}

func TestQueryEndpoints(t *testing.T) {
	var observed []observeReq
	backend := Funcs{
		CountFn:    func() (float64, error) { return 42.5, nil },
		FreqFn:     func(item int64) (float64, error) { return float64(item) * 2, nil },
		RankFn:     func(v float64) (float64, error) { return v + 1, nil },
		QuantileFn: func(phi float64) (float64, error) { return phi * 100, nil },
		ObserveFn: func(site int, item int64, value float64, count int64) error {
			observed = append(observed, observeReq{site, item, value, count})
			return nil
		},
		FlushFn:    func() error { return nil },
		SnapshotFn: func() (Snapshot, error) { return Snapshot{Arrivals: 7, LiveSites: 3}, nil },
	}
	_, ts := testServer(t, backend, Info{Problem: "count", Algorithm: "randomized",
		Transport: "tcp", Topology: "flat", K: 8, Epsilon: 0.1})

	if doc := getJSON(t, ts.URL+"/v1/count", 200); doc["estimate"] != 42.5 {
		t.Errorf("count estimate = %v, want 42.5", doc["estimate"])
	}
	if doc := getJSON(t, ts.URL+"/v1/freq?item=21", 200); doc["estimate"] != 42.0 {
		t.Errorf("freq estimate = %v, want 42", doc["estimate"])
	}
	if doc := getJSON(t, ts.URL+"/v1/rank?value=2.5", 200); doc["rank"] != 3.5 {
		t.Errorf("rank = %v, want 3.5", doc["rank"])
	}
	if doc := getJSON(t, ts.URL+"/v1/quantile?phi=0.5", 200); doc["value"] != 50.0 {
		t.Errorf("quantile value = %v, want 50", doc["value"])
	}
	postJSON(t, ts.URL+"/v1/observe", `{"site":2,"item":9,"value":1.5,"count":4}`, 200)
	postJSON(t, ts.URL+"/v1/observe", `{"site":1}`, 200) // count defaults to 1
	if len(observed) != 2 || observed[0] != (observeReq{2, 9, 1.5, 4}) || observed[1].Count != 1 {
		t.Errorf("observed = %+v", observed)
	}
	postJSON(t, ts.URL+"/v1/flush", ``, 200)

	doc := getJSON(t, ts.URL+"/v1/healthz", 200)
	if doc["status"] != "ok" || doc["problem"] != "count" || doc["k"] != 8.0 ||
		doc["arrivals"] != 7.0 || doc["live_sites"] != 3.0 {
		t.Errorf("healthz = %v", doc)
	}
}

func TestBadParams(t *testing.T) {
	backend := Funcs{
		FreqFn:     func(int64) (float64, error) { return 0, nil },
		RankFn:     func(float64) (float64, error) { return 0, nil },
		QuantileFn: func(float64) (float64, error) { return 0, nil },
		ObserveFn:  func(int, int64, float64, int64) error { return nil },
	}
	_, ts := testServer(t, backend, Info{K: 4})

	getJSON(t, ts.URL+"/v1/freq", 400)               // missing item
	getJSON(t, ts.URL+"/v1/freq?item=zebra", 400)    // unparseable
	getJSON(t, ts.URL+"/v1/rank", 400)               // missing value
	getJSON(t, ts.URL+"/v1/rank?value=NaN", 400)     // NaN rejected
	getJSON(t, ts.URL+"/v1/quantile?phi=1.5", 400)   // outside [0,1]
	getJSON(t, ts.URL+"/v1/quantile?phi=oops", 400)  // unparseable
	postJSON(t, ts.URL+"/v1/observe", `{"site":9}`, 400)  // site >= k
	postJSON(t, ts.URL+"/v1/observe", `{"site":-1}`, 400) // negative site
	postJSON(t, ts.URL+"/v1/observe", `{"count":-2}`, 400)
	postJSON(t, ts.URL+"/v1/observe", `{"sight":1}`, 400) // unknown field
	postJSON(t, ts.URL+"/v1/observe", `not json`, 400)
}

func TestErrorMapping(t *testing.T) {
	boom := errors.New("coordinator assembling")
	backend := Funcs{
		CountFn: func() (float64, error) { return 0, boom },
		// FreqFn nil → ErrUnsupported
	}
	_, ts := testServer(t, backend, Info{K: 4})

	getJSON(t, ts.URL+"/v1/count", 503)        // transient backend error
	getJSON(t, ts.URL+"/v1/freq?item=1", 404)  // unsupported for deployment
	getJSON(t, ts.URL+"/v1/rank?value=1", 404) // unsupported
	postJSON(t, ts.URL+"/v1/observe", `{"site":0}`, 404)
	postJSON(t, ts.URL+"/v1/flush", ``, 404)

	// Method enforcement.
	resp, err := http.Post(ts.URL+"/v1/count", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/count: status %d, want 405", resp.StatusCode)
	}
}

// parsePromText checks Prometheus exposition syntax line by line and
// returns the sample values keyed by "name{labels}".
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		key, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[key] = v
	}
	return samples
}

func TestMetricsExposition(t *testing.T) {
	snap := Snapshot{
		Arrivals: 1000, MessagesUp: 40, MessagesDown: 12, WordsUp: 80, WordsDown: 24,
		Broadcasts: 3, Dropped: 5, LiveSites: 7, MaxSiteSpace: 9, MaxCoordSpace: 11,
		Snapshots: 2, ReplayedFrames: 13, Resyncs: 1,
		Depth: 2, LevelMessages: [2]int64{30, 10}, LevelWords: [2]int64{60, 20},
		Faults: FaultCounts{Dropped: 4, Retransmits: 6},
	}
	backend := Funcs{SnapshotFn: func() (Snapshot, error) { return snap, nil }}
	_, ts := testServer(t, backend, Info{Problem: "freq", Algorithm: "deterministic",
		Transport: "goroutine", Topology: "tree", K: 16, Epsilon: 0.05})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	samples := parsePromText(t, body)

	want := map[string]float64{
		`disttrack_up`:                                1,
		`disttrack_sites`:                             16,
		`disttrack_epsilon`:                           0.05,
		`disttrack_arrivals_total`:                    1000,
		`disttrack_messages_total{direction="up"}`:    40,
		`disttrack_messages_total{direction="down"}`:  12,
		`disttrack_words_total{direction="up"}`:       80,
		`disttrack_words_total{direction="down"}`:     24,
		`disttrack_broadcasts_total`:                  3,
		`disttrack_dropped_total`:                     5,
		`disttrack_live_sites`:                        7,
		`disttrack_site_space_words_max`:              9,
		`disttrack_coord_space_words_max`:             11,
		`disttrack_snapshots_total`:                   2,
		`disttrack_replayed_frames`:                   13,
		`disttrack_resyncs_total`:                     1,
		`disttrack_tree_depth`:                        2,
		`disttrack_level_messages_total{level="0"}`:   30,
		`disttrack_level_messages_total{level="1"}`:   10,
		`disttrack_level_words_total{level="0"}`:      60,
		`disttrack_level_words_total{level="1"}`:      20,
		`disttrack_faults_total{kind="dropped"}`:      4,
		`disttrack_faults_total{kind="retransmits"}`:  6,
		`disttrack_info{problem="freq",algorithm="deterministic",transport="goroutine",topology="tree"}`: 1,
	}
	for key, v := range want {
		if got, ok := samples[key]; !ok {
			t.Errorf("missing sample %s", key)
		} else if got != v {
			t.Errorf("%s = %g, want %g", key, got, v)
		}
	}

	// Request counters are monotone across scrapes.
	first := samples[`disttrack_http_requests_total{path="/metrics"}`]
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	again := parsePromText(t, readAll(t, resp2))
	if second := again[`disttrack_http_requests_total{path="/metrics"}`]; second <= first {
		t.Errorf("scrape counter not monotone: %g then %g", first, second)
	}
}

func TestMetricsDegradedBackend(t *testing.T) {
	backend := Funcs{SnapshotFn: func() (Snapshot, error) {
		return Snapshot{}, fmt.Errorf("still assembling")
	}}
	_, ts := testServer(t, backend, Info{K: 4})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d during backend outage, want 200", resp.StatusCode)
	}
	samples := parsePromText(t, readAll(t, resp))
	if samples[`disttrack_up`] != 0 {
		t.Errorf("disttrack_up = %g during outage, want 0", samples[`disttrack_up`])
	}
	if _, leaked := samples[`disttrack_arrivals_total`]; leaked {
		t.Error("arrivals exported despite snapshot failure")
	}

	doc := getJSON(t, ts.URL+"/v1/healthz", 200)
	if doc["status"] != "degraded" {
		t.Errorf("healthz status = %v, want degraded", doc["status"])
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
