package count

// Hierarchical (tree) assemblies of the count trackers. An interior node
// runs a full child-facing Coordinator over its shard of sites and feeds
// the shard's running count upward as virtual arrivals, so the root-level
// protocol tracks the tree's total exactly as it would track k real
// streams. Every protocol message stays absolute-state, so the root remains
// a pure function of its delivered (from, msg) sequence and the
// persistence/Resync machinery applies unchanged at every level.

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// Agg is the randomized tracker's aggregator: the child-facing Coordinator
// plus a monotone feed ledger. The shard's true count is nondecreasing, so
// the running maximum of the (ε-accurate at every quiescent instant)
// estimate is itself ε-accurate — clamping to it is what makes an
// estimate-driven feed sound under the no-retraction rule.
type Agg struct {
	*Coordinator
	fed int64
}

// NewAgg wraps a child-facing coordinator as an aggregator.
func NewAgg(c *Coordinator) *Agg { return &Agg{Coordinator: c} }

// DrainFeed implements proto.Aggregator.
func (a *Agg) DrainFeed(feed func(item int64, value float64, count int64)) {
	if est := int64(a.Estimate()); est > a.fed {
		feed(0, 0, est-a.fed)
		a.fed = est
	}
}

// Fed reports the virtual arrivals pushed upward so far (tests, recovery).
func (a *Agg) Fed() int64 { return a.fed }

// SeedFed primes the feed ledger after a coordinator recovery: everything
// up to the recovered estimate has already been fed to the parent.
func (a *Agg) SeedFed() { a.fed = int64(a.Estimate()) }

// DetAgg is the deterministic tracker's aggregator. It feeds the raw
// reported sum Σ n̄_i — a monotone integer that undercounts the shard by at
// most a (1+ε_level) factor and never overcounts — so the deterministic
// always-bound survives re-aggregation: the root's reported sum stays in
// [n/Π(1+ε_level), n] and its midpoint correction keeps |est − n| ≤ εn.
type DetAgg struct {
	*DetCoordinator
	fed int64
}

// NewDetAgg wraps a child-facing deterministic coordinator as an aggregator.
func NewDetAgg(c *DetCoordinator) *DetAgg { return &DetAgg{DetCoordinator: c} }

// DrainFeed implements proto.Aggregator.
func (a *DetAgg) DrainFeed(feed func(item int64, value float64, count int64)) {
	if a.sum > a.fed {
		feed(0, 0, a.sum-a.fed)
		a.fed = a.sum
	}
}

// SeedFed primes the feed ledger after a coordinator recovery.
func (a *DetAgg) SeedFed() { a.fed = a.sum }

// treeShape returns the group count for k leaves at the given fanout.
func treeShape(k, fanout int) int {
	if fanout < 2 {
		panic("count: tree fanout must be >= 2")
	}
	groups := (k + fanout - 1) / fanout
	if groups < 2 {
		panic("count: tree needs at least two groups (k must exceed fanout)")
	}
	return groups
}

// NewTreeProtocol assembles the randomized count tracker as a two-level
// tree: k leaf sites sharded fanout-per-aggregator, each level running at
// the split error budget proto.SplitEps(eps, 2). Returns the assembly and
// the root coordinator (the query surface).
func NewTreeProtocol(cfg Config, fanout int, seed uint64) (proto.Tree, *Coordinator) {
	cfg.validate()
	groups := treeShape(cfg.K, fanout)
	eps := proto.SplitEps(cfg.Eps, 2)
	root := stats.New(seed)
	tr := proto.Tree{Fanout: fanout}
	for g := 0; g < groups; g++ {
		size := fanout
		if rem := cfg.K - g*fanout; rem < size {
			size = rem
		}
		gcfg := Config{K: size, Eps: eps, Rescale: cfg.Rescale, DisableAdjustment: cfg.DisableAdjustment}
		sites := make([]proto.Site, size)
		for i := range sites {
			sites[i] = NewSite(gcfg, root.Split())
		}
		tr.Groups = append(tr.Groups, proto.Protocol{Coord: NewAgg(NewCoordinator(gcfg)), Sites: sites})
	}
	rcfg := Config{K: groups, Eps: eps, Rescale: cfg.Rescale, DisableAdjustment: cfg.DisableAdjustment}
	rootCoord := NewCoordinator(rcfg)
	rsites := make([]proto.Site, groups)
	for i := range rsites {
		rsites[i] = NewSite(rcfg, root.Split())
	}
	tr.Root = proto.Protocol{Coord: rootCoord, Sites: rsites}
	return tr, rootCoord
}

// NewDetTreeProtocol assembles the deterministic count tracker as a
// two-level tree. The deterministic baseline's reports merge by summation,
// so it keeps its δ = 0 guarantee through re-aggregation (unlike the
// frequency/rank deterministic baselines, whose summaries have no merge
// path).
func NewDetTreeProtocol(k int, eps float64, fanout int) (proto.Tree, *DetCoordinator) {
	groups := treeShape(k, fanout)
	leps := proto.SplitEps(eps, 2)
	tr := proto.Tree{Fanout: fanout}
	for g := 0; g < groups; g++ {
		size := fanout
		if rem := k - g*fanout; rem < size {
			size = rem
		}
		sites := make([]proto.Site, size)
		for i := range sites {
			sites[i] = NewDetSite(leps)
		}
		tr.Groups = append(tr.Groups, proto.Protocol{Coord: NewDetAgg(NewDetCoordinator(size, leps)), Sites: sites})
	}
	rootCoord := NewDetCoordinator(groups, leps)
	rsites := make([]proto.Site, groups)
	for i := range rsites {
		rsites[i] = NewDetSite(leps)
	}
	tr.Root = proto.Protocol{Coord: rootCoord, Sites: rsites}
	return tr, rootCoord
}
