package count

import (
	"math"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
)

// fabricate a site that has sent an update, then deliver broadcasts that
// halve or quarter p and inspect the adjustment behaviour directly.

// driveSite feeds arrivals into a bare site, capturing outgoing messages.
func driveSite(s *Site, arrivals int) (updates []int64) {
	for i := 0; i < arrivals; i++ {
		s.Arrive(0, 0, func(m proto.Message) {
			if u, ok := m.(UpdateMsg); ok {
				updates = append(updates, u.N)
			}
		})
	}
	return updates
}

func TestQuarteringAppliesTwoAdjustments(t *testing.T) {
	// Force p to drop by a factor 4 in one broadcast and verify the site
	// lands exactly on the scheduled p (two halving steps internally).
	cfg := Config{K: 16, Eps: 0.4, Rescale: 1} // √k/ε = 10
	const trials = 2000
	rng := stats.New(314)
	adjustMsgs := 0
	for tr := 0; tr < trials; tr++ {
		s := NewSite(cfg, rng.Split())
		driveSite(s, 50) // p = 1 while no broadcast seen
		if s.P() != 1 {
			t.Fatal("p changed before any broadcast")
		}
		// n̄ = 400: p = 1/⌊0.4·400/4⌋₂ = 1/32... choose n̄ to force two steps
		// from a previous p. First broadcast: n̄ = 100 -> εn̄/√k = 10 -> p=1/8.
		s.Receive(rounds.BroadcastMsg{NBar: 100}, func(m proto.Message) {
			if _, ok := m.(AdjustMsg); ok {
				adjustMsgs++
			}
		})
		if got := s.P(); got != 1.0/8 {
			t.Fatalf("after first broadcast p = %v, want 1/8", got)
		}
		// Second broadcast: n̄ = 400 -> p = 1/32: a quartering (two steps).
		s.Receive(rounds.BroadcastMsg{NBar: 400}, func(m proto.Message) {
			if _, ok := m.(AdjustMsg); ok {
				adjustMsgs++
			}
		})
		if got := s.P(); got != 1.0/32 {
			t.Fatalf("after quartering p = %v, want 1/32", got)
		}
	}
	if adjustMsgs == 0 {
		t.Fatal("no adjustment messages over many trials")
	}
}

func TestAdjustmentKeepsEstimatorUnbiasedAcrossQuartering(t *testing.T) {
	// Distributional check across the same quartering scenario: the
	// coordinator-style estimate n̄_site − 1 + 1/p must average to the true
	// count.
	cfg := Config{K: 16, Eps: 0.4, Rescale: 1}
	const arrivals = 200
	const trials = 30000
	rng := stats.New(278)
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		s := NewSite(cfg, rng.Split())
		var lastUpdate int64
		out := func(m proto.Message) {
			switch msg := m.(type) {
			case UpdateMsg:
				lastUpdate = msg.N
			case AdjustMsg:
				lastUpdate = msg.NBar
			}
		}
		for i := 0; i < arrivals; i++ {
			s.Arrive(0, 0, out)
		}
		s.Receive(rounds.BroadcastMsg{NBar: 400}, out) // p: 1 -> 1/32 (5 halvings)
		if lastUpdate > 0 {
			sum += float64(lastUpdate) - 1 + 1/s.P()
		}
	}
	mean := sum / trials
	// σ per trial ≈ 1/p = 32; standard error ≈ 32/√trials ≈ 0.18.
	if math.Abs(mean-arrivals) > 1.5 {
		t.Fatalf("post-quartering estimator mean %v, want %v", mean, arrivals)
	}
}

func TestAdjustMessageOnlySentWhenValueChanges(t *testing.T) {
	// If the thinning coin keeps n̄_i, no message is emitted.
	cfg := Config{K: 4, Eps: 0.5, Rescale: 1}
	rng := stats.New(999)
	kept, changed, total := 0, 0, 0
	for tr := 0; tr < 4000; tr++ {
		s := NewSite(cfg, rng.Split())
		driveSite(s, 100)
		before := s.lastSent
		if before == 0 {
			continue
		}
		total++
		gotMsg := false
		// n̄ = 8: εn̄/√k = 2, so p = 1/2 — exactly one halving step.
		s.Receive(rounds.BroadcastMsg{NBar: 8}, func(m proto.Message) {
			if _, ok := m.(AdjustMsg); ok {
				gotMsg = true
			}
		})
		if gotMsg {
			changed++
			if s.lastSent == before {
				// A re-randomization may land on the same value only by
				// walking back to it; with a single halving step this is
				// impossible (it starts at before-1).
				t.Fatal("adjust message sent but value unchanged")
			}
		} else {
			kept++
			if s.lastSent != before {
				t.Fatal("value changed silently")
			}
		}
	}
	if total == 0 {
		t.Fatal("no trials with an existing update")
	}
	keepRate := float64(kept) / float64(total)
	// One halving step keeps with probability 1/2.
	if math.Abs(keepRate-0.5) > 0.05 {
		t.Fatalf("keep rate %v, want ~0.5 (kept=%d changed=%d)", keepRate, kept, changed)
	}
}

func TestDisableAdjustmentSkipsMessages(t *testing.T) {
	cfg := Config{K: 4, Eps: 0.5, Rescale: 1, DisableAdjustment: true}
	rng := stats.New(1001)
	for tr := 0; tr < 200; tr++ {
		s := NewSite(cfg, rng.Split())
		driveSite(s, 100)
		s.Receive(rounds.BroadcastMsg{NBar: 64}, func(m proto.Message) {
			if _, ok := m.(AdjustMsg); ok {
				t.Fatal("adjustment message sent despite DisableAdjustment")
			}
		})
		// p must still follow the schedule.
		if s.P() >= 1 {
			t.Fatal("p did not decrease")
		}
	}
}
