package count

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// CopyMsg wraps an inner protocol message with the index of the independent
// copy it belongs to. The copy index is routing information (a port number),
// so Words is the inner message's size — consistent with the paper, which
// accounts the O(log(logN/(δε))) copies as a multiplicative factor on
// communication, not per-message overhead.
type CopyMsg struct {
	Copy  int
	Inner proto.Message
}

// Words implements proto.Message.
func (m CopyMsg) Words() int { return m.Inner.Words() }

// MedianSite runs c independent copies of the randomized site and
// multiplexes their messages (paper Section 1.2: running O(log(logN/δε))
// copies and taking the median makes the tracker correct at all time
// instances with probability 1−δ).
type MedianSite struct {
	copies []*Site
	outs   []func(proto.Message) // prebuilt per-copy wrappers writing to cur
	cur    func(proto.Message)
}

// NewMedianSite builds a site with c independent copies.
func NewMedianSite(cfg Config, c int, rng *stats.RNG) *MedianSite {
	if c < 1 {
		panic("count: need at least one copy")
	}
	ms := &MedianSite{copies: make([]*Site, c), outs: make([]func(proto.Message), c)}
	for i := range ms.copies {
		ms.copies[i] = NewSite(cfg, rng.Split())
		ms.outs[i] = func(m proto.Message) { ms.cur(CopyMsg{Copy: i, Inner: m}) }
	}
	return ms
}

// Arrive implements proto.Site.
func (s *MedianSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.cur = out
	for i, cp := range s.copies {
		cp.Arrive(item, value, s.outs[i])
	}
	s.cur = nil
}

// ArriveBatch implements proto.BatchSite, keeping the copies in lockstep:
// the batch absorbs the minimum quiet gap across copies in O(copies), then
// feeds one element the normal way.
func (s *MedianSite) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	quiet := count
	for _, cp := range s.copies {
		if g := cp.QuietGap(); g < quiet {
			quiet = g
		}
	}
	for _, cp := range s.copies {
		cp.SkipQuiet(quiet)
	}
	if quiet == count {
		return count
	}
	s.Arrive(item, value, out)
	return quiet + 1
}

// Receive implements proto.Site. A copy index outside the configured range
// (possible only on a wire transport fed corrupt frames) is dropped like
// any other unexpected message.
func (s *MedianSite) Receive(m proto.Message, out func(proto.Message)) {
	cm, ok := m.(CopyMsg)
	if !ok || cm.Copy < 0 || cm.Copy >= len(s.copies) {
		return
	}
	s.cur = out
	s.copies[cm.Copy].Receive(cm.Inner, s.outs[cm.Copy])
	s.cur = nil
}

// SpaceWords implements proto.Site.
func (s *MedianSite) SpaceWords() int {
	w := 0
	for _, cp := range s.copies {
		w += cp.SpaceWords()
	}
	return w
}

// MedianCoordinator runs the matching coordinator copies and answers with
// the median of their estimates.
type MedianCoordinator struct {
	copies []*Coordinator
}

// NewMedianCoordinator builds the coordinator with c copies.
func NewMedianCoordinator(cfg Config, c int) *MedianCoordinator {
	if c < 1 {
		panic("count: need at least one copy")
	}
	mc := &MedianCoordinator{copies: make([]*Coordinator, c)}
	for i := range mc.copies {
		mc.copies[i] = NewCoordinator(cfg)
	}
	return mc
}

// Receive implements proto.Coordinator. Out-of-range copy indices are
// dropped (see MedianSite.Receive).
func (c *MedianCoordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	cm, ok := m.(CopyMsg)
	if !ok || cm.Copy < 0 || cm.Copy >= len(c.copies) {
		return
	}
	idx := cm.Copy
	c.copies[idx].Receive(from, cm.Inner,
		func(to int, inner proto.Message) { send(to, CopyMsg{Copy: idx, Inner: inner}) },
		func(inner proto.Message) { broadcast(CopyMsg{Copy: idx, Inner: inner}) })
}

// Resync implements proto.Resyncer: each copy's round broadcast is
// replayed under its copy index (crash/rejoin recovery).
func (c *MedianCoordinator) Resync(emit func(proto.Message)) {
	for idx, cp := range c.copies {
		cp.Resync(func(inner proto.Message) { emit(CopyMsg{Copy: idx, Inner: inner}) })
	}
}

// SnapshotState implements proto.Snapshotter: each copy's records, wrapped
// with its copy index exactly like live traffic.
func (c *MedianCoordinator) SnapshotState(emit func(from int, m proto.Message)) {
	for idx, cp := range c.copies {
		cp.SnapshotState(func(from int, inner proto.Message) {
			emit(from, CopyMsg{Copy: idx, Inner: inner})
		})
	}
}

// RestoreState implements proto.Snapshotter.
func (c *MedianCoordinator) RestoreState(from int, m proto.Message) {
	if cm, ok := m.(CopyMsg); ok && cm.Copy >= 0 && cm.Copy < len(c.copies) {
		c.copies[cm.Copy].RestoreState(from, cm.Inner)
	}
}

// Estimate returns the median of the copies' estimates.
func (c *MedianCoordinator) Estimate() float64 {
	ests := make([]float64, len(c.copies))
	for i, cp := range c.copies {
		ests[i] = cp.Estimate()
	}
	return stats.Median(ests)
}

// SpaceWords implements proto.Coordinator.
func (c *MedianCoordinator) SpaceWords() int {
	w := 0
	for _, cp := range c.copies {
		w += cp.SpaceWords()
	}
	return w
}

// NewMedianProtocol assembles the boosted tracker with c copies.
func NewMedianProtocol(cfg Config, c int, seed uint64) (proto.Protocol, *MedianCoordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewMedianCoordinator(cfg, c)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewMedianSite(cfg, c, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
