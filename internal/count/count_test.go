package count

import (
	"math"
	"testing"

	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func runRandomized(t *testing.T, cfg Config, seed uint64, events []workload.Event,
	check func(arrived int64, est float64)) sim.Metrics {
	t.Helper()
	p, coord := NewProtocol(cfg, seed)
	h := sim.New(p)
	h.Run(events, func(arrived int64) {
		if check != nil {
			check(arrived, coord.Estimate())
		}
	})
	return h.Metrics()
}

func TestExactWhilePIsOne(t *testing.T) {
	// While n̄ <= √k/ε the protocol reports every arrival, so the estimate
	// is exact... up to the n̄-tracking lag: with p = 1 every n_i is fully
	// reported, hence the estimate equals n exactly.
	cfg := Config{K: 4, Eps: 0.1, Rescale: 1} // √k/ε = 20
	events := workload.Config{N: 18, Placement: workload.RoundRobin(4)}.Events()
	runRandomized(t, cfg, 1, events, func(arrived int64, est float64) {
		if est != float64(arrived) {
			t.Fatalf("p=1 phase: estimate %v at n=%d", est, arrived)
		}
	})
}

func TestEndToEndUnbiased(t *testing.T) {
	// At a fixed time instant (chosen independently of the randomness), the
	// estimate is unbiased across independent runs — including runs whose p
	// halved several times, exercising the adjustment procedure.
	cfg := Config{K: 9, Eps: 0.1, Rescale: 1}
	const n = 20000
	events := workload.Config{N: n, Placement: workload.RoundRobin(9)}.Events()
	const trials = 250
	ests := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		p, coord := NewProtocol(cfg, uint64(5000+tr))
		h := sim.New(p)
		h.Run(events, nil)
		ests[tr] = coord.Estimate()
	}
	mean := stats.Mean(ests)
	sd := stats.StdDev(ests)
	se := sd / math.Sqrt(trials)
	if math.Abs(mean-n) > 5*se+1 {
		t.Fatalf("estimate mean %v, want %d (se %v, sd %v)", mean, n, se, sd)
	}
	// Variance sanity: sd should be on the order of eps*n or below.
	if sd > cfg.Eps*n {
		t.Fatalf("std-dev %v exceeds eps*n = %v", sd, cfg.Eps*n)
	}
}

func TestCoverageAtAllInstants(t *testing.T) {
	// With the default rescale (3), at least ~90% of time instants must have
	// |n̂ - n| <= eps*n. We check every arrival on several workloads.
	const k = 16
	const eps = 0.1
	const n = 40000
	rng := stats.New(2001)
	placements := map[string]workload.Placement{
		"roundrobin": workload.RoundRobin(k),
		"single":     workload.SingleSite(3),
		"uniform":    workload.UniformPlacement(k, rng),
	}
	for name, pl := range placements {
		events := workload.Config{N: n, Placement: pl}.Events()
		bad := 0
		runRandomized(t, Config{K: k, Eps: eps}, 42, events, func(arrived int64, est float64) {
			if stats.RelErr(est, float64(arrived)) > eps {
				bad++
			}
		})
		frac := float64(bad) / float64(n)
		if frac > 0.10 {
			t.Errorf("%s: %.1f%% of instants outside eps-band (budget 10%%)", name, 100*frac)
		}
	}
}

func TestAdjustmentPreservesDistribution(t *testing.T) {
	// Statistical check of the "as if it had always been running with the
	// new p" claim: immediately after a round boundary that halved p, the
	// gap n_i - n̄_i must be distributed like a Geometric(p_new) truncated at
	// n_i. We compare its mean against 1/p - 1 within tolerance.
	cfg := Config{K: 4, Eps: 0.02, Rescale: 1}
	const trials = 400
	var gaps []float64
	var pSeen float64
	for tr := 0; tr < trials; tr++ {
		p, coord := NewProtocol(cfg, uint64(9000+tr))
		h := sim.New(p)
		// Feed one site only, long enough for several halvings.
		const n = 6000
		for i := 0; i < n; i++ {
			h.Arrive(0, 0, 0)
		}
		site := p.Sites[0].(*Site)
		if site.P() >= 1 {
			t.Fatal("p never decreased; test not exercising adjustment")
		}
		pSeen = site.P()
		// The coordinator estimate implies n̄_0; recover the gap.
		est := coord.Estimate()
		nBar := est + 1 - 1/site.P() // n̄_0 (0-case: est = 0)
		if est == 0 {
			nBar = 0
		}
		gaps = append(gaps, float64(n)-nBar)
	}
	mean := stats.Mean(gaps)
	want := 1/pSeen - 1 // E[geometric failures] at the final p
	// Generous tolerance: mixture across trials with slightly different
	// final p is possible, plus sampling noise.
	if math.Abs(mean-want) > 0.25*want+3 {
		t.Fatalf("post-adjustment gap mean %v, want ~%v (p=%v)", mean, want, pSeen)
	}
}

func TestCommunicationScalesAsSqrtK(t *testing.T) {
	// Messages(randomized) should grow ~√k while Messages(deterministic)
	// grows ~k (for fixed eps, N). Verify the ratio between k=4 and k=64
	// is much closer to √16=4... i.e. rand(64)/rand(4) << det(64)/det(4).
	const eps = 0.05
	const n = 60000
	msgs := func(k int) (randomized, deterministic float64) {
		events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
		p, _ := NewProtocol(Config{K: k, Eps: eps}, 7)
		h := sim.New(p)
		h.Run(events, nil)
		randomized = float64(h.Metrics().Messages())

		dp, _ := NewDetProtocol(k, eps)
		dh := sim.New(dp)
		dh.Run(events, nil)
		deterministic = float64(dh.Metrics().Messages())
		return
	}
	r4, d4 := msgs(4)
	r64, d64 := msgs(64)
	randGrowth := r64 / r4
	detGrowth := d64 / d4
	// √(64/4) = 4; allow up to 8 for the randomized growth (the k·logN
	// additive term inflates it at small n), while deterministic growth
	// should be near 16.
	if randGrowth > 8 {
		t.Errorf("randomized growth %v too steep for √k scaling", randGrowth)
	}
	if detGrowth < 8 {
		t.Errorf("deterministic growth %v too shallow for k scaling", detGrowth)
	}
	if randGrowth >= detGrowth {
		t.Errorf("randomized (%v) should grow slower than deterministic (%v)", randGrowth, detGrowth)
	}
}

func TestCommunicationScalesWithLogN(t *testing.T) {
	const k = 16
	const eps = 0.1
	msgsAt := func(n int) float64 {
		events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
		p, _ := NewProtocol(Config{K: k, Eps: eps}, 11)
		h := sim.New(p)
		h.Run(events, nil)
		return float64(h.Metrics().Messages())
	}
	m1 := msgsAt(20000)
	m2 := msgsAt(160000) // 8x the data
	// logN scaling: cost grows by an additive ~3 rounds' worth, i.e. far
	// less than 8x. Allow 2.5x.
	if m2/m1 > 2.5 {
		t.Fatalf("messages grew %vx over an 8x stream; not logarithmic", m2/m1)
	}
}

func TestDeterministicAlwaysWithinEps(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 30000
	p, coord := NewDetProtocol(k, eps)
	h := sim.New(p)
	events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
	h.Run(events, func(arrived int64) {
		if stats.RelErr(coord.Estimate(), float64(arrived)) > eps {
			t.Fatalf("deterministic error %v > eps at n=%d",
				stats.RelErr(coord.Estimate(), float64(arrived)), arrived)
		}
	})
}

func TestDeterministicMessageBound(t *testing.T) {
	// Each site sends at most log_{1+eps}(n_i) + 2 messages.
	const k = 4
	const eps = 0.1
	const n = 40000
	p, _ := NewDetProtocol(k, eps)
	h := sim.New(p)
	h.Run(workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events(), nil)
	m := h.Metrics()
	perSite := float64(n) / k
	bound := float64(k) * (math.Log(perSite)/math.Log(1+eps) + 2)
	if float64(m.MessagesUp) > bound {
		t.Fatalf("deterministic sent %d messages, bound %v", m.MessagesUp, bound)
	}
	if m.MessagesDown != 0 {
		t.Fatal("deterministic tracker must be one-way")
	}
}

func TestRandomizedBeatsDeterministicAtLargeK(t *testing.T) {
	// Same ε in both bounds (the comparison Table 1 makes: Θ(k/ε·logN)
	// vs Θ(√k/ε·logN)); Rescale=1 keeps the constants comparable.
	const eps = 0.02
	const k = 64
	const n = 100000
	events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()

	p, _ := NewProtocol(Config{K: k, Eps: eps, Rescale: 1}, 13)
	h := sim.New(p)
	h.Run(events, nil)
	randMsgs := h.Metrics().Messages()

	dp, _ := NewDetProtocol(k, eps)
	dh := sim.New(dp)
	dh.Run(events, nil)
	detMsgs := dh.Metrics().Messages()

	if randMsgs >= detMsgs {
		t.Fatalf("randomized (%d msgs) did not beat deterministic (%d msgs)", randMsgs, detMsgs)
	}
}

func TestSiteSpaceConstant(t *testing.T) {
	cfg := Config{K: 8, Eps: 0.05}
	p, _ := NewProtocol(cfg, 17)
	h := sim.New(p)
	h.SpaceProbeEvery = 100
	h.Run(workload.Config{N: 50000, Placement: workload.RoundRobin(8)}.Events(), nil)
	if sp := h.Metrics().MaxSiteSpace; sp > 10 {
		t.Fatalf("site space %d words; must be O(1)", sp)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Eps: 0.1},
		{K: 4, Eps: 0},
		{K: 4, Eps: 1},
		{K: 4, Eps: 0.1, Rescale: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestProtocolMessagesHaveUnitWords(t *testing.T) {
	if (UpdateMsg{}).Words() != 1 || (AdjustMsg{}).Words() != 1 || (DetReportMsg{}).Words() != 1 {
		t.Fatal("count messages must cost one word each")
	}
}
