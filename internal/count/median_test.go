package count

import (
	"testing"

	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestMedianBoosterAllInstants(t *testing.T) {
	// With enough copies, EVERY instant must be within eps (this is the
	// 1-δ guarantee; failure here would be a once-in-many-runs event).
	const k = 8
	const eps = 0.15
	const n = 20000
	cfg := Config{K: k, Eps: eps}
	copies := 9
	p, coord := NewMedianProtocol(cfg, copies, 23)
	h := sim.New(p)
	events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
	bad := 0
	h.Run(events, func(arrived int64) {
		if stats.RelErr(coord.Estimate(), float64(arrived)) > eps {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("median-boosted tracker out of eps-band at %d/%d instants", bad, n)
	}
}

func TestMedianCostScalesWithCopies(t *testing.T) {
	const k = 4
	const eps = 0.1
	const n = 10000
	events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
	run := func(copies int) int64 {
		p, _ := NewMedianProtocol(Config{K: k, Eps: eps}, copies, 29)
		h := sim.New(p)
		h.Run(events, nil)
		return h.Metrics().Messages()
	}
	m1 := run(1)
	m5 := run(5)
	ratio := float64(m5) / float64(m1)
	if ratio < 3 || ratio > 7 {
		t.Fatalf("5-copy cost ratio %v, want ~5", ratio)
	}
}

func TestMedianSingleCopyMatchesBase(t *testing.T) {
	// One copy must behave exactly like the base protocol under the same
	// seeds... we can at least check estimates stay sane and equal at p=1.
	cfg := Config{K: 2, Eps: 0.5, Rescale: 1}
	p, coord := NewMedianProtocol(cfg, 1, 31)
	h := sim.New(p)
	for i := 1; i <= 5; i++ { // √2/0.5 ≈ 2.8 so p=1 only briefly; use tiny n
		h.Arrive(i%2, 0, 0)
	}
	if est := coord.Estimate(); est <= 0 {
		t.Fatalf("single-copy estimate %v", est)
	}
}

func TestMedianValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero copies did not panic")
		}
	}()
	NewMedianCoordinator(Config{K: 2, Eps: 0.1}, 0)
}

func TestMedianCopiesHelperIntegration(t *testing.T) {
	c := stats.MedianCopies(1e5, 0.01)
	if c < 3 {
		t.Fatalf("MedianCopies = %d", c)
	}
	// Just assemble a protocol with that many copies to ensure it scales.
	p, _ := NewMedianProtocol(Config{K: 2, Eps: 0.2}, c, 37)
	if p.K() != 2 {
		t.Fatal("protocol K wrong")
	}
}

func TestCopyMsgWords(t *testing.T) {
	m := CopyMsg{Copy: 3, Inner: UpdateMsg{N: 5}}
	if m.Words() != 1 {
		t.Fatalf("CopyMsg words = %d, want inner size 1", m.Words())
	}
}
