package count

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

// TestLemma21Moments verifies E[n̂_i] = n_i and Var[n̂_i] <= 1/p² for the
// fixed-p estimator (paper Lemma 2.1), for n_i both large and small relative
// to 1/p.
func TestLemma21Moments(t *testing.T) {
	root := stats.New(1001)
	for _, tc := range []struct {
		p  float64
		ni int
	}{
		{0.05, 1000}, // n_i >> 1/p
		{0.05, 20},   // n_i == 1/p: the case split in eq. (1) matters
		{0.05, 5},    // n_i << 1/p: updates usually absent
		{0.5, 100},
		{1.0, 17}, // degenerate: exact
	} {
		const trials = 30000
		ests := make([]float64, trials)
		for tr := 0; tr < trials; tr++ {
			f := NewFixedP(tc.p, root.Split())
			for i := 0; i < tc.ni; i++ {
				f.Increment()
			}
			ests[tr] = f.Estimate()
		}
		mean := stats.Mean(ests)
		sd := stats.StdDev(ests)
		// Mean within 5 standard errors of n_i.
		se := sd/math.Sqrt(trials) + 1e-9
		if math.Abs(mean-float64(tc.ni)) > 5*se+0.05 {
			t.Errorf("p=%v n=%d: mean %v, want %d (se %v)", tc.p, tc.ni, mean, tc.ni, se)
		}
		if bound := 1 / tc.p; sd > 1.1*bound {
			t.Errorf("p=%v n=%d: std-dev %v exceeds 1/p = %v", tc.p, tc.ni, sd, bound)
		}
	}
}

// TestBiasedAlternativeWouldFail demonstrates why the case split in eq. (1)
// matters: the naive estimator that always adds 1/p−1 even when no update
// exists is biased by Θ(1/p) when n_i is small.
func TestBiasedAlternativeWouldFail(t *testing.T) {
	const p = 0.05
	const ni = 5 // << 1/p = 20
	root := stats.New(1003)
	const trials = 30000
	var naive, correct float64
	for tr := 0; tr < trials; tr++ {
		f := NewFixedP(p, root.Split())
		for i := 0; i < ni; i++ {
			f.Increment()
		}
		correct += f.Estimate()
		// naive: pretend n̄_i = 0 still contributes -1 + 1/p.
		if f.NBar() == 0 {
			naive += 0 - 1 + 1/p
		} else {
			naive += f.Estimate()
		}
	}
	naiveMean := naive / trials
	correctMean := correct / trials
	if math.Abs(correctMean-ni) > 0.5 {
		t.Fatalf("correct estimator biased: mean %v", correctMean)
	}
	// The naive estimator should be visibly biased upward (by roughly
	// (1-p)^ni * (1/p - 1) ≈ 14.7 here).
	if naiveMean-ni < 5 {
		t.Fatalf("expected naive estimator to show large bias, got mean %v", naiveMean)
	}
}

func TestFixedPExactWhenPIsOne(t *testing.T) {
	f := NewFixedP(1, stats.New(7))
	for i := 1; i <= 100; i++ {
		send, v := f.Increment()
		if !send || v != int64(i) {
			t.Fatalf("p=1 increment %d: send=%v v=%d", i, send, v)
		}
		if f.Estimate() != float64(i) {
			t.Fatalf("p=1 estimate %v at n=%d", f.Estimate(), i)
		}
	}
}

func TestFixedPZeroBeforeAnyUpdate(t *testing.T) {
	f := NewFixedP(0.5, stats.New(11))
	if f.Estimate() != 0 {
		t.Fatal("estimate before any arrival must be 0")
	}
}

func TestFixedPValidation(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewFixedP(%v) did not panic", p)
				}
			}()
			NewFixedP(p, stats.New(1))
		}()
	}
}

// TestMessageRate checks that the expected number of update messages is p·n.
func TestMessageRate(t *testing.T) {
	const p = 0.1
	const n = 100000
	f := NewFixedP(p, stats.New(13))
	sent := 0
	for i := 0; i < n; i++ {
		if ok, _ := f.Increment(); ok {
			sent++
		}
	}
	want := p * n
	if math.Abs(float64(sent)-want) > 6*math.Sqrt(want) {
		t.Fatalf("sent %d updates, want ~%v", sent, want)
	}
}
