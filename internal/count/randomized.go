package count

import (
	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
)

// UpdateMsg is a randomized counter report carrying the site's current n_i
// (1 word).
type UpdateMsg struct {
	N int64
}

// Words implements proto.Message.
func (UpdateMsg) Words() int { return 1 }

// AdjustMsg carries a site's re-randomized n̄_i after p halved at a round
// boundary (1 word). Zero means "treat as if no update was ever sent".
type AdjustMsg struct {
	NBar int64
}

// Words implements proto.Message.
func (AdjustMsg) Words() int { return 1 }

// Config carries the protocol parameters shared by site and coordinator.
type Config struct {
	K   int     // number of sites
	Eps float64 // target relative error
	// Rescale divides Eps internally so that Chebyshev at the smaller error
	// parameter yields P[error > Eps·n] <= 1/Rescale². The paper's "rescale
	// ε and p by a constant" step; 3 gives the 0.9 guarantee. Zero means 3.
	Rescale float64
	// DisableAdjustment is an ablation switch: skip the paper's
	// re-randomization of n̄_i when p halves. The estimator then uses the
	// new 1/p against reports generated at the old p, biasing it upward by
	// up to k·(1/p_new − 1/p_old) right after each round boundary.
	DisableAdjustment bool
}

// effEps returns the internal (rescaled) error parameter.
func (c Config) effEps() float64 {
	r := c.Rescale
	if r == 0 {
		r = 3
	}
	return c.Eps / r
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("count: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("count: Eps out of (0,1)")
	}
	if c.Rescale < 0 {
		panic("count: negative Rescale")
	}
}

// Site is the per-site state machine of the randomized count-tracking
// protocol (Theorem 2.1). O(1) words of state.
//
// The per-arrival Bernoulli(p) coin of the paper is realized by
// skip-sampling: the site draws the geometric gap to its next sampled
// report once per report (stats.RNG.SkipGeometric) and counts plain
// arrivals down in between. The sequence of reporting arrivals has exactly
// the same distribution — the gaps between successes of i.i.d. Bernoulli(p)
// coins are Geometric(p) — but the RNG work is O(messages), not O(n).
type Site struct {
	cfg      Config
	rs       *rounds.Site
	rng      *stats.RNG
	p        float64
	skip     int64 // silent arrivals remaining before the next sampled report
	lastSent int64 // the site's copy of the coordinator's n̄_i (0 = none)
}

// NewSite returns site index i's state machine.
func NewSite(cfg Config, rng *stats.RNG) *Site {
	cfg.validate()
	return &Site{cfg: cfg, rs: rounds.NewSite(), rng: rng, p: 1}
}

// Arrive implements proto.Site.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	s.rs.Arrive(out)
	if s.skip > 0 {
		s.skip--
		return
	}
	s.lastSent = s.rs.N()
	out(UpdateMsg{N: s.lastSent})
	s.skip = s.rng.SkipGeometric(s.p)
}

// QuietGap returns how many further arrivals are guaranteed not to emit a
// message: the minimum of the skip-sampling gap and the doubling-report gap.
func (s *Site) QuietGap() int64 {
	g := s.skip
	if r := s.rs.Gap(); r < g {
		g = r
	}
	return g
}

// SkipQuiet absorbs count silent arrivals in O(1); count must not exceed
// QuietGap().
func (s *Site) SkipQuiet(count int64) {
	s.rs.Skip(count)
	s.skip -= count
}

// ArriveBatch implements proto.BatchSite: the gap to the next sampled
// report and the gap to the next doubling report are both known in closed
// form, so the arrivals in between are absorbed with two integer updates.
func (s *Site) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	quiet := s.QuietGap()
	if quiet >= count {
		s.SkipQuiet(count)
		return count
	}
	s.SkipQuiet(quiet)
	s.Arrive(item, value, out)
	return quiet + 1
}

// Receive implements proto.Site. On a round broadcast the site recomputes p
// and, for every halving step, re-randomizes its n̄_i so the system is
// distributed exactly as if it had always run at the new p: the previous
// report survives thinning with probability 1/2; otherwise the site walks
// backward from n̄_i − 1 flipping coins at the new p (one geometric draw)
// until a success or zero, then informs the coordinator.
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	if !s.rs.Deliver(m) {
		return
	}
	pNew := rounds.P(s.rs.NBar(), s.cfg.K, s.cfg.effEps())
	if !s.cfg.DisableAdjustment {
		steps := rounds.HalvingSteps(s.p, pNew)
		for step := 0; step < steps; step++ {
			s.p /= 2
			s.adjust(out)
		}
	}
	if pNew < 1 {
		// The residual skip was drawn at the old p; future coins are i.i.d.
		// at the new p, so the memoryless gap is redrawn fresh.
		s.skip = s.rng.SkipGeometric(pNew)
	}
	s.p = pNew // exact, in case of float drift
}

// adjust performs one halving-step re-randomization at the current
// (already-halved) s.p.
func (s *Site) adjust(out func(proto.Message)) {
	if s.lastSent == 0 {
		return // no update exists; nothing to re-randomize
	}
	if s.rng.Bernoulli(0.5) {
		return // previous success survives thinning; nothing changes
	}
	// Fresh coins at the new p for positions lastSent-1, lastSent-2, ..., 1.
	g := int64(s.rng.Geometric(s.p)) // failures before first success
	newVal := s.lastSent - 1 - g
	if newVal < 0 {
		newVal = 0
	}
	s.lastSent = newVal
	out(AdjustMsg{NBar: newVal})
}

// SpaceWords implements proto.Site: O(1) words.
func (s *Site) SpaceWords() int { return s.rs.SpaceWords() + 2 }

// P exposes the site's current sampling probability (tests, ablations).
func (s *Site) P() float64 { return s.p }

// LocalN returns the site's true local count (test oracle).
func (s *Site) LocalN() int64 { return s.rs.N() }

// Coordinator is the central state machine; it maintains the last reported
// n̄_i per site and answers Estimate() at any quiescent instant.
type Coordinator struct {
	cfg  Config
	rc   *rounds.Coordinator
	nBar []int64 // last reported value per site (0 = none)
	p    float64
}

// NewCoordinator returns the coordinator state machine.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	return &Coordinator{
		cfg:  cfg,
		rc:   rounds.NewCoordinator(cfg.K),
		nBar: make([]int64, cfg.K),
		p:    1,
	}
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		return
	}
	switch msg := m.(type) {
	case UpdateMsg:
		c.nBar[from] = msg.N
	case AdjustMsg:
		c.nBar[from] = msg.NBar
	}
}

// Estimate returns n̂ = Σ_i n̂_i with n̂_i = n̄_i − 1 + 1/p (0 when n̄_i does
// not exist). Unbiased with variance at most k/p² <= (ε_eff·n)².
func (c *Coordinator) Estimate() float64 {
	est := 0.0
	for _, nb := range c.nBar {
		if nb > 0 {
			est += float64(nb) - 1 + 1/c.p
		}
	}
	return est
}

// P exposes the coordinator's current sampling probability.
func (c *Coordinator) P() float64 { return c.p }

// Round returns the current round number.
func (c *Coordinator) Round() int { return c.rc.Round() }

// Resync implements proto.Resyncer: a rejoining site is brought straight to
// the current round (and sampling probability) by replaying the round
// broadcast.
func (c *Coordinator) Resync(emit func(proto.Message)) { c.rc.Resync(emit) }

// SnapshotState implements proto.Snapshotter: the round component's
// records, then each site's last report as the protocol's own UpdateMsg
// (absolute state, so no AdjustMsg distinction survives — none is needed).
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	c.rc.SnapshotState(emit)
	for i, nb := range c.nBar {
		if nb != 0 {
			emit(i, UpdateMsg{N: nb})
		}
	}
}

// RestoreState implements proto.Snapshotter. Unlike Receive, a restored
// round record triggers no broadcast; p is recomputed from the restored n̄.
func (c *Coordinator) RestoreState(from int, m proto.Message) {
	if c.rc.RestoreState(from, m) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		return
	}
	if msg, ok := m.(UpdateMsg); ok && from >= 0 && from < len(c.nBar) {
		c.nBar[from] = msg.N
	}
}

// SpaceWords implements proto.Coordinator: O(k) words.
func (c *Coordinator) SpaceWords() int { return c.rc.SpaceWords() + len(c.nBar) + 1 }

// NewProtocol assembles the full randomized protocol with per-site RNGs
// split from seed.
func NewProtocol(cfg Config, seed uint64) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewSite(cfg, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
