package count

import (
	"math"

	"disttrack/internal/proto"
)

// DetReportMsg is the deterministic tracker's counter report (1 word).
type DetReportMsg struct {
	N int64
}

// Words implements proto.Message.
func (DetReportMsg) Words() int { return 1 }

// DetSite is the per-site half of the trivial deterministic tracker
// (paper introduction, used in [16] and optimal among deterministic
// algorithms [29]): the site reports n_i whenever it has grown by a factor
// 1+ε since the last report. O(1/ε·logN) messages per site, one-way only.
type DetSite struct {
	eps  float64
	n    int64
	next int64 // next reporting threshold
}

// NewDetSite returns a deterministic site with error parameter eps.
func NewDetSite(eps float64) *DetSite {
	if eps <= 0 || eps >= 1 {
		panic("count: eps out of (0,1)")
	}
	return &DetSite{eps: eps, next: 1}
}

// Arrive implements proto.Site.
func (s *DetSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.n++
	if s.n >= s.next {
		out(DetReportMsg{N: s.n})
		next := int64(math.Ceil(float64(s.n) * (1 + s.eps)))
		if next <= s.n {
			next = s.n + 1
		}
		s.next = next
	}
}

// ArriveBatch implements proto.BatchSite: the next reporting threshold is
// explicit state, so the arrivals below it collapse to one addition.
func (s *DetSite) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	quiet := s.next - s.n - 1
	if quiet < 0 {
		quiet = 0
	}
	if quiet >= count {
		s.n += count
		return count
	}
	s.n += quiet
	s.Arrive(item, value, out)
	return quiet + 1
}

// Receive implements proto.Site; the deterministic protocol is one-way, so
// coordinator messages never arrive.
func (s *DetSite) Receive(m proto.Message, out func(proto.Message)) {}

// SpaceWords implements proto.Site.
func (s *DetSite) SpaceWords() int { return 2 }

// DetCoordinator sums the last reports; the truth lies in
// [Σ reports, (1+ε)·Σ reports], so the midpoint estimate has relative error
// at most ε/2.
type DetCoordinator struct {
	eps     float64
	reports []int64
	sum     int64
}

// NewDetCoordinator returns the deterministic coordinator for k sites.
func NewDetCoordinator(k int, eps float64) *DetCoordinator {
	if k <= 0 {
		panic("count: K must be positive")
	}
	return &DetCoordinator{eps: eps, reports: make([]int64, k)}
}

// Receive implements proto.Coordinator.
func (c *DetCoordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if r, ok := m.(DetReportMsg); ok {
		c.sum += r.N - c.reports[from]
		c.reports[from] = r.N
	}
}

// Estimate returns the midpoint estimate (1+ε/2)·Σ n̄_i.
func (c *DetCoordinator) Estimate() float64 {
	return float64(c.sum) * (1 + c.eps/2)
}

// SpaceWords implements proto.Coordinator.
func (c *DetCoordinator) SpaceWords() int { return len(c.reports) + 1 }

// NewDetProtocol assembles the deterministic tracker for k sites.
func NewDetProtocol(k int, eps float64) (proto.Protocol, *DetCoordinator) {
	coord := NewDetCoordinator(k, eps)
	sites := make([]proto.Site, k)
	for i := range sites {
		sites[i] = NewDetSite(eps)
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
