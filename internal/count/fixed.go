// Package count implements the count-tracking protocols of Section 2 of the
// paper: the randomized O(√k/ε·logN) algorithm (the paper's headline
// result), the deterministic Θ(k/ε·logN) baseline it improves on, and the
// median booster that turns the constant-probability guarantee into 1−δ for
// all time instances.
package count

import "disttrack/internal/stats"

// FixedP is the single-site core of the randomized algorithm with a fixed
// sampling probability p (paper Section 2.1, "The algorithm with a fixed
// p"): every increment is reported with probability p, and the estimator
//
//	n̂_i = n̄_i − 1 + 1/p   (n̄_i = last reported value; 0 if none)
//
// is unbiased with variance at most 1/p² (Lemma 2.1). The type exists so
// Lemma 2.1 can be tested in isolation; the full protocol embeds the same
// logic per site.
type FixedP struct {
	p    float64
	rng  *stats.RNG
	n    int64 // true local count
	nBar int64 // last value reported (0 = never)
}

// NewFixedP returns a fixed-probability estimator core. It panics if p is
// outside (0, 1].
func NewFixedP(p float64, rng *stats.RNG) *FixedP {
	if p <= 0 || p > 1 {
		panic("count: p out of (0,1]")
	}
	return &FixedP{p: p, rng: rng}
}

// Increment records one arrival; it reports whether an update message would
// be sent, and if so the reported value.
func (f *FixedP) Increment() (send bool, value int64) {
	f.n++
	if f.rng.Bernoulli(f.p) {
		f.nBar = f.n
		return true, f.n
	}
	return false, 0
}

// Estimate returns the coordinator-side estimator n̂_i given the updates
// reported so far: n̄_i − 1 + 1/p, or 0 when no update was ever sent
// (equation (1) of the paper — the case split is what keeps the estimator
// unbiased when n_i = Θ(εn/√k)).
func (f *FixedP) Estimate() float64 {
	if f.nBar == 0 {
		return 0
	}
	return float64(f.nBar) - 1 + 1/f.p
}

// N returns the true local count (test oracle).
func (f *FixedP) N() int64 { return f.n }

// NBar returns the last reported value (0 if none).
func (f *FixedP) NBar() int64 { return f.nBar }
