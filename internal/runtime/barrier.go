package runtime

import "sync/atomic"

// Barrier realizes the instant-communication quiescence barrier shared by
// the concurrent transports, with fault-middleware awareness.
//
// A token is one unit of in-flight work: an injected arrival or an
// undelivered message. Tokens are either active (moving through mailboxes,
// sockets, and handlers) or parked (held inside the fault middleware — a
// delayed frame, a partitioned link's queue). Settle blocks until no active
// token remains; what happens to parked tokens then depends on the settle
// mode:
//
//   - Settle(false) — the per-arrival barrier. Once active work drains, the
//     middleware's onIdle hook is offered the chance to release held
//     traffic that has come due (release makes those tokens active again,
//     and settling resumes). Traffic that is not yet due — a frame delayed
//     across arrivals, a partitioned site's queue — stays parked, and
//     Settle returns around it: the system is as quiet as the fault plan
//     allows.
//   - Settle(true) — the full barrier behind Transport.Quiesce. onIdle is
//     asked to release everything except partition-held traffic, so
//     queries and metrics reads observe a state where every deliverable
//     message has been delivered. Partitioned links still stay parked:
//     that is precisely the degraded partial-coverage view a partition
//     inflicts.
//
// Without middleware there are no parked tokens and both modes degenerate
// to the plain in-flight wait the transports always had — and the
// implementation keeps that path on sync.WaitGroup economics: Add, Done,
// Park, and Unpark are single atomic adds; only the settling goroutine
// ever blocks, on a one-slot signal channel fed by zero transitions.
type Barrier struct {
	active atomic.Int64
	parked atomic.Int64

	// sem receives one (coalesced) signal per active-count zero
	// transition; Settle re-checks the count after every wake, so a stale
	// or coalesced signal is harmless.
	sem chan struct{}

	// onIdle, installed by the fault middleware, releases held traffic:
	// everything deliverable when full, only due traffic otherwise. It
	// reports whether it unparked anything (progress). Called from the
	// settling goroutine only, at a no-active-work instant.
	onIdle func(full bool) bool
}

func (b *Barrier) init() {
	if b.sem == nil {
		b.sem = make(chan struct{}, 1)
	}
}

// signalIfZero wakes the settler after a transition to zero active tokens.
func (b *Barrier) signalIfZero(n int64) {
	switch {
	case n == 0:
		select {
		case b.sem <- struct{}{}:
		default: // a wake-up is already pending; one is enough
		}
	case n < 0:
		panic("runtime: barrier token retired twice")
	}
}

// Add registers n new active tokens. Like sync.WaitGroup, concurrent Add
// is safe here because a handler's own token is still active while it Adds
// for the messages it emits, so the count cannot be observed at zero
// mid-cascade.
func (b *Barrier) Add(n int) { b.active.Add(int64(n)) }

// Done retires one active token.
func (b *Barrier) Done() { b.signalIfZero(b.active.Add(-1)) }

// Park moves one token from active to parked: its message is now held
// inside the fault middleware instead of moving through the transport.
func (b *Barrier) Park() {
	b.parked.Add(1)
	b.signalIfZero(b.active.Add(-1))
}

// Unpark moves one token back from parked to active: its held message is
// being released into the transport.
func (b *Barrier) Unpark() {
	b.active.Add(1)
	if b.parked.Add(-1) < 0 {
		panic("runtime: barrier unparked more tokens than were parked")
	}
}

// SetOnIdle installs the middleware release hook. Install before the first
// arrival.
func (b *Barrier) SetOnIdle(fn func(full bool) bool) { b.onIdle = fn }

// Settle blocks until the system is quiescent in the requested mode (see
// the type comment). Only the single injecting goroutine calls Settle, so
// there is exactly one waiter: a one-slot channel cannot lose its wake-up
// (Done's send happens after the count it signals is visible, and Settle
// re-checks the count after every receive).
func (b *Barrier) Settle(full bool) {
	for {
		for b.active.Load() != 0 {
			<-b.sem
		}
		if b.parked.Load() == 0 || b.onIdle == nil {
			return
		}
		if !b.onIdle(full) {
			// Nothing releasable: the remaining tokens are held by the
			// fault plan (not yet due, or partitioned). Quiescent for now.
			return
		}
	}
}

// Wait is Settle(true): the full quiescence barrier.
func (b *Barrier) Wait() { b.Settle(true) }
