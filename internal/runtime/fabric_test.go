package runtime

import (
	"sync"
	"testing"
)

func TestMailboxManyProducers(t *testing.T) {
	mb := NewMailbox()
	const producers = 8
	const perProducer = 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				mb.Put(i)
			}
		}()
	}
	done := make(chan int)
	go func() {
		got := 0
		for {
			_, ok := mb.Get()
			if !ok {
				done <- got
				return
			}
			got++
		}
	}()
	wg.Wait()
	mb.Close()
	if got := <-done; got != producers*perProducer {
		t.Fatalf("mailbox delivered %d, want %d", got, producers*perProducer)
	}
}

func TestMailboxFIFO(t *testing.T) {
	mb := NewMailbox()
	// Interleave puts and gets so the head-indexed queue exercises both its
	// reset-on-drain and compaction paths.
	next, want := 0, 0
	for round := 0; round < 300; round++ {
		for i := 0; i < 7; i++ {
			mb.Put(next)
			next++
		}
		for i := 0; i < 5; i++ {
			v, ok := mb.Get()
			if !ok || v.(int) != want {
				t.Fatalf("got %v (ok=%v), want %d", v, ok, want)
			}
			want++
		}
	}
	mb.Close()
	for {
		v, ok := mb.Get()
		if !ok {
			break
		}
		if v.(int) != want {
			t.Fatalf("drain got %v, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d values, want %d", want, next)
	}
}
