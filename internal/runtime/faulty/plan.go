package faulty

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the compact fault-spec syntax used by cmd/tracksim's
// -faults flag into a Plan:
//
//		drop=0.02,dup=0.01,reorder=0.05,delay=0.1@4,maxheld=8,seed=7,kill=1@5000:9000,kill=2@8000
//
//	  - drop, dup, reorder: per-message probabilities;
//	  - delay=P@D: probability P of holding a frame for D arrivals (plain
//	    delay=P means D=1);
//	  - maxheld: per-link hold-queue bound;
//	  - seed: the dice seed;
//	  - kill=SITE@AT[:REJOIN]: cut site SITE off at global arrival AT,
//	    rejoining at REJOIN (absolute, or +DUR for AT+DUR; omitted = never).
//
// Repeated kill clauses accumulate; everything else last-wins.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("faulty: %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			if p.Drop, err = parseProb(val); err == nil && p.Drop >= 1 {
				// drop=1 would retransmit forever; New rejects it too.
				err = fmt.Errorf("drop probability must be < 1")
			}
		case "dup":
			p.Duplicate, err = parseProb(val)
		case "reorder":
			p.Reorder, err = parseProb(val)
		case "delay":
			prob, dur, cut := strings.Cut(val, "@")
			if p.Delay, err = parseProb(prob); err == nil && cut {
				p.DelayArrivals, err = strconv.ParseInt(dur, 10, 64)
			}
		case "maxheld":
			var v int64
			v, err = strconv.ParseInt(val, 10, 32)
			p.MaxHeld = int(v)
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "kill":
			var kl Kill
			kl, err = parseKill(val)
			p.Kills = append(p.Kills, kl)
		default:
			return p, fmt.Errorf("faulty: unknown fault key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("faulty: bad %s clause %q: %w", key, val, err)
		}
	}
	return p, nil
}

// parseProb accepts the same domain New does for dup/reorder/delay: [0,1].
// The drop clause tightens its own bound to < 1 above.
func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", v)
	}
	return v, nil
}

func parseKill(s string) (Kill, error) {
	site, window, ok := strings.Cut(s, "@")
	if !ok {
		return Kill{}, fmt.Errorf("want SITE@AT[:REJOIN]")
	}
	var kl Kill
	v, err := strconv.ParseInt(site, 10, 32)
	if err != nil {
		return Kill{}, err
	}
	kl.Site = int(v)
	at, rejoin, hasRejoin := strings.Cut(window, ":")
	if kl.At, err = strconv.ParseInt(at, 10, 64); err != nil {
		return Kill{}, err
	}
	if hasRejoin {
		rel := strings.HasPrefix(rejoin, "+")
		if kl.RejoinAt, err = strconv.ParseInt(strings.TrimPrefix(rejoin, "+"), 10, 64); err != nil {
			return Kill{}, err
		}
		if rel {
			kl.RejoinAt += kl.At
		}
	}
	// Everything k-independent is validated here so a bad spec is a parse
	// error, not a panic later at New; the site range needs k and stays
	// New's (or the CLI's) job.
	if kl.Site < 0 {
		return Kill{}, fmt.Errorf("negative kill site")
	}
	if kl.At <= 0 || (kl.RejoinAt != 0 && kl.RejoinAt <= kl.At) {
		return Kill{}, fmt.Errorf("kill window must satisfy 0 < AT < REJOIN")
	}
	return kl, nil
}
