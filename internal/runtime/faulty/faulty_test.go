package faulty_test

import (
	"reflect"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/netsim"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/faulty"
	"disttrack/internal/stats"
)

const (
	k    = 4
	eps  = 0.1
	n    = 6000
	seed = 7
)

// run feeds n round-robin elements into a count protocol on the goroutine
// transport, optionally under a fault plan, and returns the coordinator's
// final estimate, the metrics, and the fault stats.
func run(t *testing.T, plan *faulty.Plan) (float64, runtime.Metrics, faulty.Stats) {
	t.Helper()
	p, coord := count.NewProtocol(count.Config{K: k, Eps: eps}, seed)
	c := netsim.Start(p)
	var inj *faulty.Injector
	if plan != nil {
		inj = faulty.New(c.Fabric, *plan)
		c.SetMiddleware(inj)
	}
	for i := 0; i < n; i++ {
		c.Arrive(i%k, 0, 0)
	}
	c.Quiesce()
	est := coord.Estimate()
	m := c.Metrics()
	var st faulty.Stats
	if inj != nil {
		st = inj.Stats()
	}
	c.Close()
	return est, m, st
}

// TestMaskedFaultsAreEquivalent pins the reliability model: drops,
// duplicates, and within-cascade reorders are fully masked by the ARQ
// sublayer, so the protocol's answers and arrival accounting are
// bit-identical to the fault-free run while the ledger records the
// recovery traffic.
func TestMaskedFaultsAreEquivalent(t *testing.T) {
	cleanEst, cleanM, _ := run(t, nil)
	plan := faulty.Plan{Seed: 3, Drop: 0.05, Duplicate: 0.05, Reorder: 0.2}
	est, m, st := run(t, &plan)

	if est != cleanEst {
		t.Errorf("estimate under masked faults = %g, fault-free = %g", est, cleanEst)
	}
	if m.Arrivals != cleanM.Arrivals {
		t.Errorf("arrivals = %d, want %d", m.Arrivals, cleanM.Arrivals)
	}
	if m.LiveSites != k {
		t.Errorf("LiveSites = %d, want %d", m.LiveSites, k)
	}
	if st.Dropped == 0 || st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("fault schedule fired nothing: %+v", st)
	}
	wantMsgs := cleanM.Messages() + st.Retransmits + st.Duplicated + st.Dropped // NACK per drop
	if m.Messages() != wantMsgs {
		t.Errorf("messages = %d, want fault-free %d + recovery traffic %d",
			m.Messages(), cleanM.Messages(), wantMsgs-cleanM.Messages())
	}
	if m.Words() <= cleanM.Words() {
		t.Errorf("words = %d, want > fault-free %d (recovery traffic is charged)", m.Words(), cleanM.Words())
	}
}

// TestDeterministicSchedule pins reproducibility: the same plan and seed
// give bit-identical estimates, metrics, and fault counters.
func TestDeterministicSchedule(t *testing.T) {
	plan := faulty.Plan{Seed: 11, Drop: 0.03, Duplicate: 0.02, Reorder: 0.1, Delay: 0.05, DelayArrivals: 3}
	est1, m1, st1 := run(t, &plan)
	est2, m2, st2 := run(t, &plan)
	if est1 != est2 || m1 != m2 || !reflect.DeepEqual(st1, st2) {
		t.Errorf("two runs of the same seeded plan diverged:\n%g %+v %+v\n%g %+v %+v",
			est1, m1, st1, est2, m2, st2)
	}
}

// TestDelaySpansArrivals pins that a delayed frame genuinely outlives its
// cascade: with every up message delayed by many arrivals, the coordinator
// knows nothing until a query's full settle delivers the held traffic.
func TestDelaySpansArrivals(t *testing.T) {
	p, coord := count.NewProtocol(count.Config{K: 1, Eps: eps}, seed)
	c := netsim.Start(p)
	inj := faulty.New(c.Fabric, faulty.Plan{Seed: 1, Delay: 0.999999999, DelayArrivals: 1 << 40, MaxHeld: 1 << 30})
	c.SetMiddleware(inj)
	defer c.Close()

	for i := 0; i < 100; i++ {
		c.Arrive(0, 0, 0)
	}
	if est := coord.Estimate(); est != 0 {
		t.Fatalf("estimate before any settle = %g, want 0 (all reports held)", est)
	}
	if st := inj.Stats(); st.Delayed == 0 {
		t.Fatal("nothing was delayed")
	}
	c.Quiesce() // the full barrier releases everything deliverable
	if est := coord.Estimate(); est == 0 {
		t.Fatal("estimate still 0 after Quiesce; held traffic was not settled")
	}
}

// TestKillAndRejoin pins the partition lifecycle: while a site is dead its
// traffic is trapped and LiveSites drops; after the scheduled rejoin the
// trapped traffic drains and the final estimate recovers the ε guarantee
// over the full stream.
func TestKillAndRejoin(t *testing.T) {
	plan := faulty.Plan{Seed: 5, Kills: []faulty.Kill{{Site: 1, At: n / 4, RejoinAt: n / 2}}}
	p, coord := count.NewProtocol(count.Config{K: k, Eps: eps}, seed)
	c := netsim.Start(p)
	inj := faulty.New(c.Fabric, plan)
	c.SetMiddleware(inj)
	defer c.Close()

	sawDead := false
	for i := 0; i < n; i++ {
		c.Arrive(i%k, 0, 0)
		if i == n/3 {
			c.Quiesce()
			if live := c.Metrics().LiveSites; live != k-1 {
				t.Errorf("LiveSites during kill window = %d, want %d", live, k-1)
			}
			sawDead = true
		}
	}
	c.Quiesce()
	if live := c.Metrics().LiveSites; live != k {
		t.Errorf("LiveSites after rejoin = %d, want %d", live, k)
	}
	if !sawDead {
		t.Fatal("kill window never observed")
	}
	if st := inj.Stats(); st.Partitioned == 0 {
		t.Error("no traffic was trapped behind the partition")
	}
	if err := stats.RelErr(coord.Estimate(), float64(n)); err > eps {
		t.Errorf("final estimate %g is %.3f relative from %d, want <= %g after recovery",
			coord.Estimate(), err, n, eps)
	}
}

// TestNeverRejoiningKillDegrades pins partial coverage: a site that dies
// and never rejoins keeps its post-kill traffic trapped, the estimate
// excludes it, and Heal releases it for a final settle.
func TestNeverRejoiningKillDegrades(t *testing.T) {
	plan := faulty.Plan{Seed: 9, Kills: []faulty.Kill{{Site: 0, At: 1}}}
	p, coord := count.NewProtocol(count.Config{K: 2, Eps: eps}, seed)
	c := netsim.Start(p)
	inj := faulty.New(c.Fabric, plan)
	c.SetMiddleware(inj)
	defer c.Close()

	// Everything lands on the dead site: the coordinator must see nothing.
	for i := 0; i < 1000; i++ {
		c.Arrive(0, 0, 0)
	}
	c.Quiesce()
	if est := coord.Estimate(); est != 0 {
		t.Errorf("estimate with the only reporting site dead = %g, want 0", est)
	}
	if live := c.Metrics().LiveSites; live != 1 {
		t.Errorf("LiveSites = %d, want 1", live)
	}
	inj.Heal()
	c.Quiesce()
	if est := coord.Estimate(); est == 0 {
		t.Error("estimate still 0 after Heal + Quiesce")
	}
	if live := c.Metrics().LiveSites; live != 2 {
		t.Errorf("LiveSites after Heal = %d, want 2", live)
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := faulty.ParsePlan("drop=0.02, dup=0.01,reorder=0.05,delay=0.1@4,maxheld=16,seed=7,kill=1@5000:+3000,kill=2@8000")
	if err != nil {
		t.Fatal(err)
	}
	want := faulty.Plan{
		Seed: 7, Drop: 0.02, Duplicate: 0.01, Reorder: 0.05, Delay: 0.1,
		DelayArrivals: 4, MaxHeld: 16,
		Kills: []faulty.Kill{{Site: 1, At: 5000, RejoinAt: 8000}, {Site: 2, At: 8000}},
	}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("ParsePlan = %+v, want %+v", plan, want)
	}
	if p, err := faulty.ParsePlan(""); err != nil || !reflect.DeepEqual(p, faulty.Plan{}) {
		t.Errorf("empty spec = %+v, %v; want zero plan", p, err)
	}
	for _, bad := range []string{
		"drop", "drop=1.5", "drop=1", "drop=-0.1", "dup=1.01", "delay=0.1@x",
		"kill=1", "kill=x@5", "kill=1@5:4x", "kill=1@0", "kill=1@5:4",
		"kill=-1@5", "wat=1", "maxheld=abc",
	} {
		if _, err := faulty.ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}
