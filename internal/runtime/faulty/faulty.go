// Package faulty is the fault-injection middleware of the tracking
// runtime: it sits on the runtime.Middleware seam inside a concurrent
// transport's Fabric and perturbs every protocol message under a seeded,
// deterministic schedule — drops, duplicates, delays, reorders, and
// per-site partitions/kills.
//
// # Fault model
//
// The layer models a lossy, delaying network *under a reliability
// sublayer* (sequence numbers, acknowledgements, retransmission — the
// ARQ every real deployment runs, TCP itself for the socket transports):
//
//   - a dropped frame is recovered by retransmission: the protocol message
//     still arrives, exactly once and in per-link FIFO order, but the
//     ledger is charged for the lost copy's retransmission and the
//     receiver's NACK — communication degrades, correctness does not;
//   - a duplicated frame is discarded by the receiver's sequence check:
//     the ledger is charged for the extra copy, the machine sees it once;
//   - a delayed frame is genuinely held inside this layer and delivered
//     later — after the current cascade (reorder), or whole arrivals later
//     (delay) — still in per-link FIFO order. Held frames keep their
//     in-flight token parked in the fabric's Barrier, so the quiescence
//     choreography stays truthful: Transport.Quiesce (behind every query
//     and metrics read) settles all deliverable traffic first;
//   - a partitioned (killed) site keeps ingesting locally, but traffic in
//     both directions is trapped in this layer until the partition heals;
//     queries meanwhile see documented partial coverage
//     (Metrics.LiveSites < k) and reconverge once held traffic drains.
//
// Because drops and duplicates are fully masked by the reliability model
// and reorders never escape a cascade, a run under {drop, duplicate,
// reorder} faults produces bit-identical answers and arrival accounting to
// the fault-free run (the chaos-equivalence test in the root package pins
// this); cross-arrival delays and partitions genuinely perturb protocol
// timing and degrade accuracy, which is the point.
//
// All randomness flows through per-link stats.RNG streams split from
// Plan.Seed, and the kill schedule is keyed to the fabric's arrival
// counter, so a fault schedule is reproducible bit-for-bit.
package faulty

import (
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/stats"
)

// Kill cuts one site off from the coordinator for a window of the run.
// While dead, the site's traffic (both directions) is trapped in the fault
// layer and Metrics.LiveSites drops by one; at RejoinAt the partition
// heals and the trapped traffic is delivered, in order.
type Kill struct {
	// Site is the site index to cut off.
	Site int
	// At is the global arrival count at which the site dies.
	At int64
	// RejoinAt is the global arrival count at which it rejoins; 0 means it
	// never does (trapped traffic is released only by Heal, e.g. at Close).
	RejoinAt int64
}

// Plan is a seeded, deterministic fault schedule. The zero value injects
// nothing.
type Plan struct {
	// Seed derives every per-link dice stream; runs with equal plans are
	// bit-identical.
	Seed uint64
	// Drop is the per-message probability that a frame is lost and
	// retransmitted (possibly repeatedly — each retry redraws).
	Drop float64
	// Duplicate is the per-message probability that an extra copy crosses
	// the wire and is discarded by the receiver.
	Duplicate float64
	// Reorder is the per-message probability that a frame is held to the
	// end of the current cascade, letting later traffic overtake it.
	Reorder float64
	// Delay is the per-message probability that a frame is held for
	// DelayArrivals whole arrivals before delivery.
	Delay float64
	// DelayArrivals is how many arrivals a delayed frame is held for
	// (default 1). Queries settle delayed traffic early (Quiesce releases
	// everything deliverable), so delays perturb protocol timing, not
	// query consistency.
	DelayArrivals int64
	// MaxHeld bounds each link's hold queue (default 8); when it
	// overflows, the oldest held frame is delivered immediately.
	MaxHeld int
	// Kills is the site crash/rejoin schedule.
	Kills []Kill
}

// Stats counts fault events. All fields are cumulative.
type Stats struct {
	Dropped     int64 // frames lost (each recovered by a retransmission)
	Retransmits int64 // recovery retransmissions charged to the ledger
	Duplicated  int64 // duplicate frames charged and discarded
	Reordered   int64 // frames held to the end of their cascade
	Delayed     int64 // frames held across arrivals
	Partitioned int64 // frames trapped behind a dead site's partition
}

// held is one frame waiting inside the fault layer.
type held struct {
	m     proto.Message
	dueAt int64 // deliverable once the fabric's arrival clock reaches this
	part  bool  // trapped behind a partition: exempt from full settles
}

// link is one direction of one site's coordinator connection.
type link struct {
	mu   sync.Mutex
	rng  *stats.RNG
	q    []held
	head int
}

func (l *link) len() int { return len(l.q) - l.head }

func (l *link) push(h held) {
	if l.head > 0 && l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	}
	l.q = append(l.q, h)
}

func (l *link) pop() held {
	h := l.q[l.head]
	l.q[l.head].m = nil
	l.head++
	return h
}

// Injector implements runtime.Middleware for one mounted transport.
// Construct with New, install with Fabric.SetMiddleware before the first
// arrival.
type Injector struct {
	plan Plan
	f    *runtime.Fabric
	k    int
	up   []link // site -> coordinator, by site
	down []link // coordinator -> site, by site

	dropped, retransmits, duplicated int64
	reordered, delayed, partitioned  int64

	healed atomic.Bool // Heal called: every partition is forced open
}

// New builds an injector for the fabric's protocol. The plan is validated
// (probabilities in [0,1), sites in range) and defaulted in place.
func New(f *runtime.Fabric, plan Plan) *Injector {
	k := f.Protocol().K()
	if plan.Drop < 0 || plan.Drop >= 1 ||
		plan.Duplicate < 0 || plan.Duplicate > 1 ||
		plan.Reorder < 0 || plan.Reorder > 1 ||
		plan.Delay < 0 || plan.Delay > 1 {
		panic("faulty: fault probabilities must be in [0,1) for Drop, [0,1] otherwise")
	}
	if plan.DelayArrivals < 0 {
		panic("faulty: negative Plan.DelayArrivals")
	}
	if plan.DelayArrivals == 0 {
		plan.DelayArrivals = 1
	}
	if plan.MaxHeld < 0 {
		panic("faulty: negative Plan.MaxHeld")
	}
	if plan.MaxHeld == 0 {
		plan.MaxHeld = 8
	}
	for _, kl := range plan.Kills {
		if kl.Site < 0 || kl.Site >= k {
			panic("faulty: Kill.Site out of range")
		}
		if kl.At <= 0 || (kl.RejoinAt != 0 && kl.RejoinAt <= kl.At) {
			panic("faulty: Kill window must satisfy 0 < At < RejoinAt")
		}
	}
	inj := &Injector{plan: plan, f: f, k: k, up: make([]link, k), down: make([]link, k)}
	root := stats.New(plan.Seed ^ 0xfa017) // distinct from every protocol stream
	for i := 0; i < k; i++ {
		inj.up[i].rng = root.Split()
		inj.down[i].rng = root.Split()
	}
	return inj
}

// Plan returns the validated, defaulted plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// deadAt reports whether site is inside a kill window at arrival clock n.
func (inj *Injector) deadAt(site int, n int64) bool {
	if inj.healed.Load() {
		return false
	}
	for _, kl := range inj.plan.Kills {
		if kl.Site == site && n >= kl.At && (kl.RejoinAt == 0 || n < kl.RejoinAt) {
			return true
		}
	}
	return false
}

// intercept is the shared Up/Down body. site identifies the link's site
// end (sender for up, receiver for down).
func (inj *Injector) intercept(l *link, site int, up bool, m proto.Message, deliver func(proto.Message)) {
	n := inj.f.Arrivals()
	words := int64(m.Words())
	charge := inj.f.ChargeUp
	nack := inj.f.ChargeDown
	if !up {
		charge, nack = nack, charge
	}

	l.mu.Lock()
	// Losses first: each lost copy is recovered by one NACK on the reverse
	// path (one word) and one retransmission; the retry redraws, so a
	// burst of losses charges a geometric number of round trips.
	for inj.plan.Drop > 0 && l.rng.Bernoulli(inj.plan.Drop) {
		atomic.AddInt64(&inj.dropped, 1)
		atomic.AddInt64(&inj.retransmits, 1)
		nack(1, 1)
		charge(1, words)
	}
	if inj.plan.Duplicate > 0 && l.rng.Bernoulli(inj.plan.Duplicate) {
		// The duplicate crosses the wire and fails the receiver's sequence
		// check: charged, never delivered to the machine.
		atomic.AddInt64(&inj.duplicated, 1)
		charge(1, words)
	}

	h := held{m: m, dueAt: n}
	hold := false
	switch {
	case inj.deadAt(site, n):
		h.part = true
		hold = true
		atomic.AddInt64(&inj.partitioned, 1)
	case inj.plan.Delay > 0 && l.rng.Bernoulli(inj.plan.Delay):
		h.dueAt = n + inj.plan.DelayArrivals
		hold = true
		atomic.AddInt64(&inj.delayed, 1)
	case inj.plan.Reorder > 0 && l.rng.Bernoulli(inj.plan.Reorder):
		// Due immediately but parked: delivered at the cascade's settle,
		// after everything still actively moving.
		hold = true
		atomic.AddInt64(&inj.reordered, 1)
	case l.len() > 0:
		// The link has held traffic; FIFO means this frame queues behind
		// it (the reliability sublayer never reorders within a link).
		hold = true
	}
	if !hold {
		l.mu.Unlock()
		deliver(m)
		return
	}
	l.push(h)
	inj.f.Inflight.Park()
	// Bound the queue: overflow delivers the oldest deliverable frame now.
	// We are on the owning loop's goroutine, so direct delivery is safe.
	var evict proto.Message
	if l.len() > inj.plan.MaxHeld && !l.q[l.head].part {
		evict = l.pop().m
	}
	l.mu.Unlock()
	if evict != nil {
		inj.f.Inflight.Unpark()
		deliver(evict)
	}
}

// Up implements runtime.Middleware.
func (inj *Injector) Up(from int, m proto.Message, deliver func(proto.Message)) {
	inj.intercept(&inj.up[from], from, true, m, deliver)
}

// Down implements runtime.Middleware.
func (inj *Injector) Down(to int, m proto.Message, deliver func(proto.Message)) {
	inj.intercept(&inj.down[to], to, false, m, deliver)
}

// releaseLink re-injects one link's head frame through the owning loop if
// it is deliverable. Only the head is considered: FIFO within a link is
// the reliability sublayer's promise, so a due frame never jumps a held
// earlier one.
func (inj *Injector) releaseLink(l *link, site int, up bool, full bool) bool {
	if inj.f.Closed() {
		// The loops are gone; a released frame would be re-injected into a
		// closed mailbox nobody reads and its token would never retire,
		// hanging every later Quiesce. Held residue stays held — queries
		// after Close read the state as of Close.
		return false
	}
	n := inj.f.Arrivals()
	l.mu.Lock()
	if l.len() == 0 {
		l.mu.Unlock()
		return false
	}
	h := l.q[l.head]
	ok := false
	switch {
	case h.part:
		// Partition-trapped: deliverable only once the kill window is
		// over (or the injector was healed outright).
		ok = inj.healed.Load() || !inj.deadAt(site, n)
	case full:
		ok = true
	default:
		ok = h.dueAt <= n
	}
	if !ok {
		l.mu.Unlock()
		return false
	}
	l.pop()
	l.mu.Unlock()
	inj.f.Inflight.Unpark()
	if up {
		inj.f.ReleaseUp(site, h.m)
	} else {
		inj.f.ReleaseDown(site, h.m)
	}
	return true
}

// Release implements runtime.Middleware: the barrier's idle hook. It
// releases at most ONE frame per call; the barrier then settles that
// frame's whole cascade before asking again. One at a time is what keeps
// per-link FIFO airtight: a release happens at a no-active-work instant,
// so the owning loop's mailbox holds nothing but the released frame and
// delivers it before processing anything the cascade adds later — a
// cascade reply on the same link can therefore never overtake it.
func (inj *Injector) Release(full bool) bool {
	for i := 0; i < inj.k; i++ {
		if inj.releaseLink(&inj.up[i], i, true, full) {
			return true
		}
		if inj.releaseLink(&inj.down[i], i, false, full) {
			return true
		}
	}
	return false
}

// LiveSites implements runtime.Middleware.
func (inj *Injector) LiveSites() int {
	n := inj.f.Arrivals()
	live := inj.k
	for i := 0; i < inj.k; i++ {
		if inj.deadAt(i, n) {
			live--
		}
	}
	return live
}

// Heal force-opens every partition (a never-rejoining kill included) so
// trapped traffic can drain: call before tearing the transport down when a
// plan ends the run with a site still dead, or to end a what-if window
// early. The next Quiesce delivers everything.
func (inj *Injector) Heal() { inj.healed.Store(true) }

// Stats returns a snapshot of the fault counters. Safe to call anytime.
func (inj *Injector) Stats() Stats {
	return Stats{
		Dropped:     atomic.LoadInt64(&inj.dropped),
		Retransmits: atomic.LoadInt64(&inj.retransmits),
		Duplicated:  atomic.LoadInt64(&inj.duplicated),
		Reordered:   atomic.LoadInt64(&inj.reordered),
		Delayed:     atomic.LoadInt64(&inj.delayed),
		Partitioned: atomic.LoadInt64(&inj.partitioned),
	}
}
