package runtime

import (
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
)

// Mailbox is an unbounded FIFO usable from multiple producers with one
// consumer loop. Like the sequential harness's queue it is head-indexed:
// popping advances head instead of re-slicing (which would strand the
// backing array's prefix and re-allocate on every append/pop cycle), the
// dead prefix is compacted when it dominates, and the offsets reset when
// the queue drains.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []any
	head   int
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// Put enqueues v.
func (mb *Mailbox) Put(v any) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, v)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// Get blocks until a value is available or the mailbox is closed.
func (mb *Mailbox) Get() (any, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.head == len(mb.queue) && !mb.closed {
		mb.cond.Wait()
	}
	if mb.head == len(mb.queue) {
		return nil, false
	}
	v := mb.queue[mb.head]
	mb.queue[mb.head] = nil // drop the reference for the GC
	mb.head++
	switch {
	case mb.head == len(mb.queue):
		mb.queue = mb.queue[:0]
		mb.head = 0
	case mb.head >= 64 && mb.head*2 >= len(mb.queue):
		n := copy(mb.queue, mb.queue[mb.head:])
		mb.queue = mb.queue[:n]
		mb.head = 0
	}
	return v, true
}

// Close wakes all blocked consumers; Get drains the remaining queue and
// then reports false.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Arrival asks a site loop to feed one element to its machine.
type Arrival struct {
	Item  int64
	Value float64
}

// Chunk asks a site loop to absorb up to Count identical arrivals via the
// proto.BatchSite fast path, reporting how many it consumed on Done.
type Chunk struct {
	Item  int64
	Value float64
	Count int64
	Done  chan int64
}

// FromMsg is a site->coordinator protocol message with its sender.
type FromMsg struct {
	From int
	Msg  proto.Message
}

// HeldUp asks site From's loop to deliver a message the fault middleware
// held and has now released. The loop delivers it without re-counting cost
// (the original send was already charged) and without retiring a token:
// the message's token, unparked by the middleware, stays active until the
// coordinator loop processes the delivery.
type HeldUp struct {
	Msg proto.Message
}

// HeldDown asks the coordinator loop to deliver a held coordinator->site
// message the fault middleware released (see HeldUp).
type HeldDown struct {
	To  int
	Msg proto.Message
}

// Middleware intercepts every protocol message a Fabric-based transport
// carries, between cost accounting and delivery. The fault-injection layer
// (internal/runtime/faulty) is the only implementation; a nil middleware
// means direct delivery.
//
// Up/Down run on the sending loop's goroutine (site i's loop for Up(i,...),
// the coordinator loop for Down) — per-link calls are serial. To deliver
// immediately the middleware calls deliver; to hold the message it queues
// the frame internally and parks its in-flight token (Fabric.Inflight.Park),
// then releases later from Release (the barrier's idle hook) by unparking
// the token and re-injecting through the owning loop's mailbox
// (Fabric.ReleaseUp/ReleaseDown). Once the fabric is Closed, nothing may be
// released — the loops that would carry it are gone (check Fabric.Closed).
type Middleware interface {
	// Up intercepts a site->coordinator message already charged to the
	// ledger; deliver carries it to the coordinator.
	Up(from int, m proto.Message, deliver func(m proto.Message))
	// Down intercepts a coordinator->site message already charged to the
	// ledger; deliver carries it to site to.
	Down(to int, m proto.Message, deliver func(m proto.Message))
	// Release is the barrier's idle hook: release held traffic (everything
	// deliverable when full, only due traffic otherwise) and report whether
	// anything was released. Runs on the injecting goroutine at a
	// no-active-work instant.
	Release(full bool) bool
	// LiveSites reports how many sites are currently reachable (not killed
	// or partitioned by the fault plan).
	LiveSites() int
}

// Fabric is the shared core of the concurrent transports (goroutine
// mailboxes, TCP loopback): per-site injection mailboxes, the in-flight
// counter that realizes the instant-communication quiescence barrier, the
// cost ledger, and quiesce-time space probing. A transport embeds *Fabric,
// launches its own delivery goroutines, and brackets every message it
// carries with CountUp/CountDown so Arrive's barrier covers it.
type Fabric struct {
	p proto.Protocol

	// SpaceProbeEvery controls how often space is sampled at quiescent
	// instants (0 disables periodic probing; Probe still samples on
	// demand). Probes happen after an injection quiesces, so they read
	// protocol state race-free (the in-flight WaitGroup orders them after
	// every handler).
	SpaceProbeEvery int

	// SiteBoxes[i] feeds site i's loop: *Arrival, *Chunk, or a
	// proto.Message from the coordinator. CoordBox feeds the coordinator
	// loop with FromMsg values.
	SiteBoxes []*Mailbox
	CoordBox  *Mailbox

	// Inflight counts injected arrivals and undelivered messages;
	// transports' loops call Inflight.Done() after handling each. Messages
	// held inside the fault middleware park their token instead (see
	// Barrier).
	Inflight Barrier

	tap Tap
	mw  Middleware

	// coordLog, when set, observes every coordinator-bound protocol
	// message on the coordinator loop immediately before the coordinator
	// applies it — the durability layer's write-ahead hook (it must panic
	// or abort on failure; a frame applied but not logged would be lost by
	// recovery). Nil costs one predictable branch on the delivery path.
	coordLog func(from int, m proto.Message)

	// closed flips when CloseBoxes runs, turning use-after-Close from a
	// silent in-flight-accounting deadlock into a loud panic (which the
	// ingest frontend converts into a terminal error).
	closed atomic.Bool

	// arr and chunk are reusable injection boxes: the injector has at most
	// one arrival (or chunk) outstanding — it waits for quiescence before
	// the next — so the same heap value is recycled instead of boxing a
	// fresh one per element. The mailbox handoff and the done channel
	// order the field accesses.
	arr       Arrival
	chunk     Chunk
	chunkDone chan int64

	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts, arrivals     int64

	// Space high-water marks, written only at quiescent instants from the
	// injecting goroutine (see Probe).
	maxSiteSpace, maxCoordSpace int
}

// NewFabric validates the protocol and builds the shared core.
func NewFabric(p proto.Protocol) *Fabric {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("runtime: protocol needs a coordinator and at least one site")
	}
	f := &Fabric{
		p:               p,
		SpaceProbeEvery: 1024,
		SiteBoxes:       make([]*Mailbox, len(p.Sites)),
		CoordBox:        NewMailbox(),
		chunkDone:       make(chan int64, 1),
	}
	for i := range f.SiteBoxes {
		f.SiteBoxes[i] = NewMailbox()
	}
	f.Inflight.init()
	f.chunk.Done = f.chunkDone
	return f
}

// Protocol returns the mounted protocol.
func (f *Fabric) Protocol() proto.Protocol { return f.p }

// SetMiddleware installs the fault-injection middleware and hooks it into
// the quiescence barrier. Install before the first arrival; a nil
// middleware restores direct delivery.
func (f *Fabric) SetMiddleware(mw Middleware) {
	f.mw = mw
	if mw == nil {
		f.Inflight.SetOnIdle(nil)
		return
	}
	f.Inflight.SetOnIdle(mw.Release)
}

// Middleware returns the installed fault middleware (nil when none).
func (f *Fabric) Middleware() Middleware { return f.mw }

// ChargeUp adds fault-layer overhead traffic — duplicates the receiver
// discarded, retransmissions of lost frames — to the site->coordinator
// ledger without delivering anything.
func (f *Fabric) ChargeUp(msgs, words int64) {
	atomic.AddInt64(&f.messagesUp, msgs)
	atomic.AddInt64(&f.wordsUp, words)
}

// ChargeDown is ChargeUp for the coordinator->site direction.
func (f *Fabric) ChargeDown(msgs, words int64) {
	atomic.AddInt64(&f.messagesDown, msgs)
	atomic.AddInt64(&f.wordsDown, words)
}

// ReleaseUp re-injects a held site->coordinator message through site from's
// loop, which will deliver it on its own goroutine (so the loop's delivery
// resources are never shared across goroutines). The caller must have
// unparked the message's token first.
func (f *Fabric) ReleaseUp(from int, m proto.Message) {
	f.SiteBoxes[from].Put(&HeldUp{Msg: m})
}

// ReleaseDown re-injects a held coordinator->site message through the
// coordinator loop (see ReleaseUp).
func (f *Fabric) ReleaseDown(to int, m proto.Message) {
	f.CoordBox.Put(&HeldDown{To: to, Msg: m})
}

// Arrivals returns the number of arrivals injected so far (the fault
// plan's clock).
func (f *Fabric) Arrivals() int64 { return atomic.LoadInt64(&f.arrivals) }

// Closed reports whether CloseBoxes has run: the loops are gone, so held
// traffic can no longer be released (the middleware must stop releasing,
// or the re-injected tokens would never retire and Quiesce would hang).
func (f *Fabric) Closed() bool { return f.closed.Load() }

// CountUp brackets one site->coordinator message: in-flight token, ledger,
// tap. The transport delivers the message after calling it.
func (f *Fabric) CountUp(from int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesUp, 1)
	atomic.AddInt64(&f.wordsUp, int64(m.Words()))
	if f.tap != nil {
		f.tap.Up(from, m)
	}
}

// CountDown brackets one coordinator->site message.
func (f *Fabric) CountDown(to int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesDown, 1)
	atomic.AddInt64(&f.wordsDown, int64(m.Words()))
	if f.tap != nil {
		f.tap.Down(to, m)
	}
}

// CountBroadcast records one broadcast operation (the per-site sends are
// still counted individually via CountDown).
func (f *Fabric) CountBroadcast() {
	atomic.AddInt64(&f.broadcasts, 1)
}

// Arrive implements Transport: it injects one element at site and blocks
// until the whole system is quiescent again, matching the paper's model
// where no element arrives while messages are outstanding. Under fault
// middleware, "quiescent" means as quiet as the fault plan allows: frames
// delayed across arrivals or trapped behind a partition stay in flight
// inside the fault layer (Settle(false)); the full barrier behind Quiesce
// settles them.
func (f *Fabric) Arrive(site int, item int64, value float64) {
	if f.closed.Load() {
		panic("runtime: transport used after Close")
	}
	n := atomic.AddInt64(&f.arrivals, 1)
	f.Inflight.Add(1)
	f.arr.Item, f.arr.Value = item, value
	f.SiteBoxes[site].Put(&f.arr)
	f.Inflight.Settle(false)
	if f.SpaceProbeEvery > 0 && n%int64(f.SpaceProbeEvery) == 0 {
		f.Probe()
	}
}

// ArriveBatch implements Transport: each chunk is absorbed up to the
// site's next message via the proto.BatchSite fast path, then the
// resulting cascade runs to quiescence before the rest of the run is fed —
// so round broadcasts land between arrivals exactly as they would
// element-at-a-time.
func (f *Fabric) ArriveBatch(site int, item int64, value float64, count int64) {
	if f.closed.Load() {
		panic("runtime: transport used after Close")
	}
	every := int64(f.SpaceProbeEvery)
	for count > 0 {
		f.Inflight.Add(1)
		f.chunk.Item, f.chunk.Value, f.chunk.Count = item, value, count
		f.SiteBoxes[site].Put(&f.chunk)
		consumed := <-f.chunkDone
		f.Inflight.Settle(false)
		n := atomic.AddInt64(&f.arrivals, consumed)
		count -= consumed
		if every > 0 && n%every < consumed {
			f.Probe()
		}
	}
}

// RunSiteLoop runs site i's machine on the calling goroutine until the
// site's mailbox closes: it consumes injected arrivals (*Arrival, *Chunk)
// and coordinator messages (proto.Message), brackets every emitted message
// with CountUp, and hands it to deliver — the only transport-specific step
// (enqueue on the coordinator mailbox, write a frame to a socket, ...).
func (f *Fabric) RunSiteLoop(i int, deliver func(m proto.Message)) {
	site := f.p.Sites[i]
	box := f.SiteBoxes[i]
	out := func(m proto.Message) {
		f.CountUp(i, m)
		if f.mw != nil {
			f.mw.Up(i, m, deliver)
			return
		}
		deliver(m)
	}
	for {
		v, ok := box.Get()
		if !ok {
			return
		}
		switch msg := v.(type) {
		case *Arrival:
			site.Arrive(msg.Item, msg.Value, out)
		case *Chunk:
			msg.Done <- proto.ArriveChunk(site, msg.Item, msg.Value, msg.Count, out)
		case *HeldUp:
			// A fault-released message: already charged, token already
			// unparked and traveling with the delivery — the receiving loop
			// retires it, not this one.
			deliver(msg.Msg)
			continue
		case proto.Message:
			site.Receive(msg, out)
		}
		f.Inflight.Done()
	}
}

// RunCoordLoop runs the coordinator machine on the calling goroutine until
// the coordinator mailbox closes, consuming FromMsg values. Sends and
// broadcasts are bracketed with CountDown/CountBroadcast; deliver carries
// one message to one site.
func (f *Fabric) RunCoordLoop(deliver func(to int, m proto.Message)) {
	send := func(to int, m proto.Message) {
		f.CountDown(to, m)
		if f.mw != nil {
			f.mw.Down(to, m, func(m proto.Message) { deliver(to, m) })
			return
		}
		deliver(to, m)
	}
	broadcast := func(m proto.Message) {
		f.CountBroadcast()
		for s := range f.p.Sites {
			send(s, m)
		}
	}
	for {
		v, ok := f.CoordBox.Get()
		if !ok {
			return
		}
		switch cm := v.(type) {
		case *HeldDown:
			// A fault-released message; see RunSiteLoop's *HeldUp case.
			deliver(cm.To, cm.Msg)
			continue
		case FromMsg:
			if f.coordLog != nil {
				f.coordLog(cm.From, cm.Msg)
			}
			f.p.Coord.Receive(cm.From, cm.Msg, send, broadcast)
		}
		f.Inflight.Done()
	}
}

// Quiesce implements Transport: the full barrier. Under fault middleware it
// also settles delayed traffic that has not yet come due — a query forces
// the reliability layer to deliver everything it can — while traffic held
// behind a live partition stays in flight (the degraded view a partition
// inflicts).
func (f *Fabric) Quiesce() { f.Inflight.Settle(true) }

// Probe implements Transport. The fabric must be quiescent: the in-flight
// WaitGroup then orders this read after every handler that touched
// protocol state, so it is race-free even though the machines live on
// other goroutines.
func (f *Fabric) Probe() {
	for _, s := range f.p.Sites {
		if w := s.SpaceWords(); w > f.maxSiteSpace {
			f.maxSiteSpace = w
		}
	}
	if w := f.p.Coord.SpaceWords(); w > f.maxCoordSpace {
		f.maxCoordSpace = w
	}
}

// SetTap implements Transport: tap observes every message at send time
// (per-link order matches delivery order; different links may call it
// concurrently). Install before the first arrival.
func (f *Fabric) SetTap(t Tap) { f.tap = t }

// SetCoordLog installs the durability layer's write-ahead hook: fn runs on
// the coordinator loop for every coordinator-bound protocol message, just
// before the coordinator applies it. Install before the first arrival; a
// nil fn removes it.
func (f *Fabric) SetCoordLog(fn func(from int, m proto.Message)) { f.coordLog = fn }

// SeedLedger pre-loads the cost ledger — a replacement fabric mounted
// after a coordinator crash carries the crashed run's counters forward, so
// Metrics span the whole logical run. Call before the first arrival.
func (f *Fabric) SeedLedger(m Metrics) {
	atomic.StoreInt64(&f.messagesUp, m.MessagesUp)
	atomic.StoreInt64(&f.messagesDown, m.MessagesDown)
	atomic.StoreInt64(&f.wordsUp, m.WordsUp)
	atomic.StoreInt64(&f.wordsDown, m.WordsDown)
	atomic.StoreInt64(&f.broadcasts, m.Broadcasts)
	atomic.StoreInt64(&f.arrivals, m.Arrivals)
	f.maxSiteSpace = m.MaxSiteSpace
	f.maxCoordSpace = m.MaxCoordSpace
}

// Metrics implements Transport. Call after Quiesce for a consistent view.
func (f *Fabric) Metrics() Metrics {
	live := len(f.p.Sites)
	if f.mw != nil {
		live = f.mw.LiveSites()
	}
	return Metrics{
		MessagesUp:    atomic.LoadInt64(&f.messagesUp),
		MessagesDown:  atomic.LoadInt64(&f.messagesDown),
		WordsUp:       atomic.LoadInt64(&f.wordsUp),
		WordsDown:     atomic.LoadInt64(&f.wordsDown),
		Broadcasts:    atomic.LoadInt64(&f.broadcasts),
		Arrivals:      atomic.LoadInt64(&f.arrivals),
		MaxSiteSpace:  f.maxSiteSpace,
		MaxCoordSpace: f.maxCoordSpace,
		LiveSites:     live,
	}
}

// CloseBoxes closes every mailbox, releasing the transport's loops, and
// marks the fabric closed so later injections panic instead of hanging on
// in-flight accounting no loop will ever retire.
func (f *Fabric) CloseBoxes() {
	f.closed.Store(true)
	for _, mb := range f.SiteBoxes {
		mb.Close()
	}
	f.CoordBox.Close()
}
