package runtime

import (
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
)

// Mailbox is an unbounded FIFO usable from multiple producers with one
// consumer loop. Storage is a power-of-two ring: Put and Get are O(1) with
// no compaction copies, the ring grows by doubling when full, and a drained
// consumer can take every queued value in one critical section (GetBatch),
// so a loop pays one lock/wakeup per run of traffic instead of one per
// message.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []any  // power-of-two capacity
	head   uint64 // absolute pop counter; index = head & (len(ring)-1)
	tail   uint64 // absolute push counter
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// grow doubles the ring (initially to 64 slots), re-packing live entries
// from the head. Caller holds mu.
func (mb *Mailbox) grow() {
	n := len(mb.ring) * 2
	if n == 0 {
		n = 64
	}
	next := make([]any, n)
	live := mb.tail - mb.head
	mask := uint64(len(mb.ring) - 1)
	for i := uint64(0); i < live; i++ {
		next[i] = mb.ring[(mb.head+i)&mask]
	}
	mb.ring = next
	mb.head, mb.tail = 0, live
}

// Put enqueues v.
func (mb *Mailbox) Put(v any) {
	mb.mu.Lock()
	if mb.tail-mb.head == uint64(len(mb.ring)) {
		mb.grow()
	}
	mb.ring[mb.tail&uint64(len(mb.ring)-1)] = v
	mb.tail++
	mb.mu.Unlock()
	mb.cond.Signal()
}

// PutAll enqueues every value of vs under one lock with one wakeup.
func (mb *Mailbox) PutAll(vs []any) {
	if len(vs) == 0 {
		return
	}
	mb.mu.Lock()
	for _, v := range vs {
		if mb.tail-mb.head == uint64(len(mb.ring)) {
			mb.grow()
		}
		mb.ring[mb.tail&uint64(len(mb.ring)-1)] = v
		mb.tail++
	}
	mb.mu.Unlock()
	mb.cond.Signal()
}

// Get blocks until a value is available or the mailbox is closed (a closed
// mailbox still drains its queue before reporting false).
func (mb *Mailbox) Get() (any, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.head == mb.tail && !mb.closed {
		mb.cond.Wait()
	}
	if mb.head == mb.tail {
		return nil, false
	}
	i := mb.head & uint64(len(mb.ring)-1)
	v := mb.ring[i]
	mb.ring[i] = nil // drop the reference for the GC
	mb.head++
	return v, true
}

// GetBatch blocks like Get, then drains every queued value into buf
// (appended) in FIFO order — the batch-delivery path: one wakeup and one
// lock round trip per run of traffic. It returns false only when the
// mailbox is closed and empty.
func (mb *Mailbox) GetBatch(buf []any) ([]any, bool) {
	mb.mu.Lock()
	for mb.head == mb.tail && !mb.closed {
		mb.cond.Wait()
	}
	if mb.head == mb.tail {
		mb.mu.Unlock()
		return buf, false
	}
	mask := uint64(len(mb.ring) - 1)
	for mb.head != mb.tail {
		i := mb.head & mask
		buf = append(buf, mb.ring[i])
		mb.ring[i] = nil
		mb.head++
	}
	mb.mu.Unlock()
	return buf, true
}

// Close wakes all blocked consumers; Get/GetBatch drain the remaining queue
// and then report false.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// FromMsg is a site->coordinator protocol message with its sender.
type FromMsg struct {
	From int
	Msg  proto.Message
}

// HeldUp asks site From's loop to deliver a message the fault middleware
// held and has now released. The loop delivers it without re-counting cost
// (the original send was already charged) and without retiring a token:
// the message's token, unparked by the middleware, stays active until the
// coordinator loop processes the delivery.
type HeldUp struct {
	Msg proto.Message
}

// HeldDown asks the coordinator loop to deliver a held coordinator->site
// message the fault middleware released (see HeldUp).
type HeldDown struct {
	To  int
	Msg proto.Message
}

// Middleware intercepts every protocol message a Fabric-based transport
// carries, between cost accounting and delivery. The fault-injection layer
// (internal/runtime/faulty) is the only implementation; a nil middleware
// means direct delivery.
//
// Per-link calls are serial: Up(i, ...) runs under site i's injection mutex
// (the injecting goroutine for arrival-triggered sends, site i's loop for
// receive-triggered ones — never both at once), Down always on the
// coordinator loop. To deliver immediately the middleware calls deliver; to
// hold the message it queues the frame internally and parks its in-flight
// token (Fabric.Inflight.Park), then releases later from Release (the
// barrier's idle hook) by unparking the token and re-injecting through the
// owning loop's mailbox (Fabric.ReleaseUp/ReleaseDown). Once the fabric is
// Closed, nothing may be released — the loops that would carry it are gone
// (check Fabric.Closed).
type Middleware interface {
	// Up intercepts a site->coordinator message already charged to the
	// ledger; deliver carries it to the coordinator.
	Up(from int, m proto.Message, deliver func(m proto.Message))
	// Down intercepts a coordinator->site message already charged to the
	// ledger; deliver carries it to site to.
	Down(to int, m proto.Message, deliver func(m proto.Message))
	// Release is the barrier's idle hook: release held traffic (everything
	// deliverable when full, only due traffic otherwise) and report whether
	// anything was released. Runs on the injecting goroutine at a
	// no-active-work instant.
	Release(full bool) bool
	// LiveSites reports how many sites are currently reachable (not killed
	// or partitioned by the fault plan).
	LiveSites() int
}

// Fabric is the shared core of the concurrent transports (goroutine
// mailboxes, TCP loopback): inline arrival injection, per-site delivery
// mailboxes, the in-flight counter that realizes the instant-communication
// quiescence barrier, the cost ledger, and quiesce-time space probing. A
// transport embeds *Fabric, registers its per-site and coordinator delivery
// (and optional flush) hooks with BindSite/BindCoord, launches its own
// loops (RunSiteLoop/RunCoordLoop), and brackets every message it carries
// with CountUp/CountDown so Arrive's barrier covers it.
//
// Arrivals take the zero-hop fast path: Arrive runs the site machine on the
// injecting goroutine under that site's mutex, so a message-free arrival —
// the overwhelmingly common case under the paper's protocols — costs a
// mutex round trip and the barrier's atomics instead of two goroutine
// wakeups. Site loops take the same mutex around delivery, which both
// serializes access to the site machine (the socket transports have no
// other happens-before edge between the injector and the site loop) and
// keeps per-link middleware/tap calls serial.
type Fabric struct {
	p proto.Protocol

	// SpaceProbeEvery controls how often space is sampled at quiescent
	// instants (0 disables periodic probing; Probe still samples on
	// demand). Probes happen after an injection quiesces, so they read
	// protocol state race-free (the in-flight barrier orders them after
	// every handler).
	SpaceProbeEvery int

	// SiteBoxes[i] feeds site i's loop: a proto.Message from the
	// coordinator or a fault-released *HeldUp. CoordBox feeds the
	// coordinator loop with FromMsg values and fault-released *HeldDown.
	SiteBoxes []*Mailbox
	CoordBox  *Mailbox

	// Inflight counts injected arrivals and undelivered messages;
	// transports' loops call Inflight.Done() after handling each. Messages
	// held inside the fault middleware park their token instead (see
	// Barrier).
	Inflight Barrier

	tap Tap
	mw  Middleware

	// siteMu[i] serializes site i's machine, its pending send buffer, and
	// its middleware link between the injecting goroutine (inline Arrive)
	// and the site's delivery loop.
	siteMu []sync.Mutex

	// Per-site send path, built by BindSite: siteOut brackets an emitted
	// message with CountUp and routes it through the middleware to
	// siteDeliver; siteFlush (optional) is the transport's coalescing
	// boundary, called under siteMu after an injection or a delivered
	// batch.
	siteOut     []func(m proto.Message)
	siteDeliver []func(m proto.Message)
	siteFlush   []func()

	// Coordinator send path, built by BindCoord (used by RunCoordLoop
	// only — the coordinator machine never runs inline).
	coordSend      func(to int, m proto.Message)
	coordCast      func(m proto.Message)
	coordDeliverTo []func(m proto.Message)
	coordFlush     func()

	// coordLog, when set, observes every coordinator-bound protocol
	// message on the coordinator loop immediately before the coordinator
	// applies it — the durability layer's write-ahead hook (it must panic
	// or abort on failure; a frame applied but not logged would be lost by
	// recovery). Nil costs one predictable branch on the delivery path.
	coordLog func(from int, m proto.Message)

	// closed flips when CloseBoxes runs, turning use-after-Close from a
	// silent in-flight-accounting deadlock into a loud panic (which the
	// ingest frontend converts into a terminal error).
	closed atomic.Bool

	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts, arrivals     int64

	// Space high-water marks, written only at quiescent instants from the
	// injecting goroutine (see Probe).
	maxSiteSpace, maxCoordSpace int
}

// NewFabric validates the protocol and builds the shared core. The
// transport must BindSite (for every site) and BindCoord before the first
// arrival.
func NewFabric(p proto.Protocol) *Fabric {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("runtime: protocol needs a coordinator and at least one site")
	}
	k := len(p.Sites)
	f := &Fabric{
		p:               p,
		SpaceProbeEvery: 1024,
		SiteBoxes:       make([]*Mailbox, k),
		CoordBox:        NewMailbox(),
		siteMu:          make([]sync.Mutex, k),
		siteOut:         make([]func(m proto.Message), k),
		siteDeliver:     make([]func(m proto.Message), k),
		siteFlush:       make([]func(), k),
	}
	for i := range f.SiteBoxes {
		f.SiteBoxes[i] = NewMailbox()
	}
	f.Inflight.init()
	return f
}

// Protocol returns the mounted protocol.
func (f *Fabric) Protocol() proto.Protocol { return f.p }

// BindSite registers site i's transport delivery hook (carry one emitted
// message to the coordinator: enqueue on the coordinator mailbox, encode a
// frame, ...) and an optional flush hook marking the transport's coalescing
// boundary — flush runs under site i's mutex after every inline injection
// and after every delivered mailbox batch, so buffered frames are always on
// the wire before the fabric settles or the loop blocks. Bind before the
// first arrival.
func (f *Fabric) BindSite(i int, deliver func(m proto.Message), flush func()) {
	f.siteDeliver[i] = deliver
	f.siteFlush[i] = flush
	f.siteOut[i] = func(m proto.Message) {
		f.CountUp(i, m)
		if f.mw != nil {
			f.mw.Up(i, m, deliver)
			return
		}
		deliver(m)
	}
}

// BindCoord registers the coordinator's transport delivery hook (carry one
// message to one site) and an optional flush hook, called on the
// coordinator loop after every delivered batch. Bind before the first
// arrival.
func (f *Fabric) BindCoord(deliver func(to int, m proto.Message), flush func()) {
	f.coordFlush = flush
	// One bound closure per destination, so the middleware path doesn't
	// allocate a fresh capture per send.
	f.coordDeliverTo = make([]func(m proto.Message), len(f.p.Sites))
	for to := range f.coordDeliverTo {
		to := to
		f.coordDeliverTo[to] = func(m proto.Message) { deliver(to, m) }
	}
	f.coordSend = func(to int, m proto.Message) {
		f.CountDown(to, m)
		if f.mw != nil {
			f.mw.Down(to, m, f.coordDeliverTo[to])
			return
		}
		deliver(to, m)
	}
	f.coordCast = func(m proto.Message) {
		f.CountBroadcast()
		for s := range f.p.Sites {
			f.coordSend(s, m)
		}
	}
}

// SetMiddleware installs the fault-injection middleware and hooks it into
// the quiescence barrier. Install before the first arrival; a nil
// middleware restores direct delivery.
func (f *Fabric) SetMiddleware(mw Middleware) {
	f.mw = mw
	if mw == nil {
		f.Inflight.SetOnIdle(nil)
		return
	}
	f.Inflight.SetOnIdle(mw.Release)
}

// Middleware returns the installed fault middleware (nil when none).
func (f *Fabric) Middleware() Middleware { return f.mw }

// ChargeUp adds fault-layer overhead traffic — duplicates the receiver
// discarded, retransmissions of lost frames — to the site->coordinator
// ledger without delivering anything.
func (f *Fabric) ChargeUp(msgs, words int64) {
	atomic.AddInt64(&f.messagesUp, msgs)
	atomic.AddInt64(&f.wordsUp, words)
}

// ChargeDown is ChargeUp for the coordinator->site direction.
func (f *Fabric) ChargeDown(msgs, words int64) {
	atomic.AddInt64(&f.messagesDown, msgs)
	atomic.AddInt64(&f.wordsDown, words)
}

// ReleaseUp re-injects a held site->coordinator message through site from's
// loop, which will deliver it under the site's mutex (so the link's
// delivery resources stay serialized). The caller must have unparked the
// message's token first.
func (f *Fabric) ReleaseUp(from int, m proto.Message) {
	f.SiteBoxes[from].Put(&HeldUp{Msg: m})
}

// ReleaseDown re-injects a held coordinator->site message through the
// coordinator loop (see ReleaseUp).
func (f *Fabric) ReleaseDown(to int, m proto.Message) {
	f.CoordBox.Put(&HeldDown{To: to, Msg: m})
}

// Arrivals returns the number of arrivals injected so far (the fault
// plan's clock).
func (f *Fabric) Arrivals() int64 { return atomic.LoadInt64(&f.arrivals) }

// Closed reports whether CloseBoxes has run: the loops are gone, so held
// traffic can no longer be released (the middleware must stop releasing,
// or the re-injected tokens would never retire and Quiesce would hang).
func (f *Fabric) Closed() bool { return f.closed.Load() }

// CountUp brackets one site->coordinator message: in-flight token, ledger,
// tap. The transport delivers the message after calling it.
func (f *Fabric) CountUp(from int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesUp, 1)
	atomic.AddInt64(&f.wordsUp, int64(m.Words()))
	if f.tap != nil {
		f.tap.Up(from, m)
	}
}

// CountDown brackets one coordinator->site message.
func (f *Fabric) CountDown(to int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesDown, 1)
	atomic.AddInt64(&f.wordsDown, int64(m.Words()))
	if f.tap != nil {
		f.tap.Down(to, m)
	}
}

// CountBroadcast records one broadcast operation (the per-site sends are
// still counted individually via CountDown).
func (f *Fabric) CountBroadcast() {
	atomic.AddInt64(&f.broadcasts, 1)
}

// inject runs site machine work on the injecting goroutine under the
// site's mutex, flushing the transport's pending frames before the lock is
// released so the cascade the work triggered is actually on the wire when
// the barrier starts settling it.
func (f *Fabric) inject(site int, work func(out func(proto.Message)) int64) int64 {
	mu := &f.siteMu[site]
	mu.Lock()
	n := work(f.siteOut[site])
	if fl := f.siteFlush[site]; fl != nil {
		fl()
	}
	mu.Unlock()
	return n
}

// Arrive implements Transport: it injects one element at site — running the
// site machine inline on the calling goroutine (the zero-hop fast path) —
// and blocks until the whole system is quiescent again, matching the
// paper's model where no element arrives while messages are outstanding.
// Under fault middleware, "quiescent" means as quiet as the fault plan
// allows: frames delayed across arrivals or trapped behind a partition stay
// in flight inside the fault layer (Settle(false)); the full barrier behind
// Quiesce settles them.
func (f *Fabric) Arrive(site int, item int64, value float64) {
	if f.closed.Load() {
		panic("runtime: transport used after Close")
	}
	n := atomic.AddInt64(&f.arrivals, 1)
	f.Inflight.Add(1)
	f.inject(site, func(out func(proto.Message)) int64 {
		f.p.Sites[site].Arrive(item, value, out)
		return 1
	})
	f.Inflight.Done()
	f.Inflight.Settle(false)
	if f.SpaceProbeEvery > 0 && n%int64(f.SpaceProbeEvery) == 0 {
		f.Probe()
	}
}

// ArriveBatch implements Transport: each chunk is absorbed up to the
// site's next message via the proto.BatchSite fast path (inline, like
// Arrive), then the resulting cascade runs to quiescence before the rest of
// the run is fed — so round broadcasts land between arrivals exactly as
// they would element-at-a-time.
func (f *Fabric) ArriveBatch(site int, item int64, value float64, count int64) {
	if f.closed.Load() {
		panic("runtime: transport used after Close")
	}
	every := int64(f.SpaceProbeEvery)
	s := f.p.Sites[site]
	for count > 0 {
		f.Inflight.Add(1)
		consumed := f.inject(site, func(out func(proto.Message)) int64 {
			return proto.ArriveChunk(s, item, value, count, out)
		})
		f.Inflight.Done()
		f.Inflight.Settle(false)
		n := atomic.AddInt64(&f.arrivals, consumed)
		count -= consumed
		if every > 0 && n%every < consumed {
			f.Probe()
		}
	}
}

// RunSiteLoop runs site i's delivery loop on the calling goroutine until
// the site's mailbox closes: it drains coordinator messages and
// fault-released frames in batches (one wakeup per run), handles each under
// the site's mutex, and flushes the transport's pending frames at the
// batch edge — the coalescing boundary — before blocking again.
func (f *Fabric) RunSiteLoop(i int) {
	site := f.p.Sites[i]
	box := f.SiteBoxes[i]
	out := f.siteOut[i]
	deliver := f.siteDeliver[i]
	flush := f.siteFlush[i]
	mu := &f.siteMu[i]
	var batch []any
	for {
		var ok bool
		batch, ok = box.GetBatch(batch[:0])
		if !ok {
			return
		}
		mu.Lock()
		for j, v := range batch {
			batch[j] = nil // drop the reference for the GC
			switch msg := v.(type) {
			case *HeldUp:
				// A fault-released message: already charged, token already
				// unparked and traveling with the delivery — the receiving
				// loop retires it, not this one.
				deliver(msg.Msg)
				continue
			case proto.Message:
				site.Receive(msg, out)
			}
			f.Inflight.Done()
		}
		if flush != nil {
			flush()
		}
		mu.Unlock()
	}
}

// RunCoordLoop runs the coordinator machine on the calling goroutine until
// the coordinator mailbox closes, draining FromMsg values in batches.
// Sends and broadcasts are bracketed with CountDown/CountBroadcast and
// routed through the BindCoord delivery hook; the flush hook runs at every
// batch edge.
func (f *Fabric) RunCoordLoop() {
	var batch []any
	for {
		var ok bool
		batch, ok = f.CoordBox.GetBatch(batch[:0])
		if !ok {
			return
		}
		for j, v := range batch {
			batch[j] = nil // drop the reference for the GC
			switch cm := v.(type) {
			case *HeldDown:
				// A fault-released message; see RunSiteLoop's *HeldUp case.
				f.coordDeliverTo[cm.To](cm.Msg)
				continue
			case FromMsg:
				if f.coordLog != nil {
					f.coordLog(cm.From, cm.Msg)
				}
				f.p.Coord.Receive(cm.From, cm.Msg, f.coordSend, f.coordCast)
			}
			f.Inflight.Done()
		}
		if f.coordFlush != nil {
			f.coordFlush()
		}
	}
}

// Quiesce implements Transport: the full barrier. Under fault middleware it
// also settles delayed traffic that has not yet come due — a query forces
// the reliability layer to deliver everything it can — while traffic held
// behind a live partition stays in flight (the degraded view a partition
// inflicts).
func (f *Fabric) Quiesce() { f.Inflight.Settle(true) }

// Probe implements Transport. The fabric must be quiescent: the in-flight
// barrier then orders this read after every handler that touched protocol
// state, so it is race-free even though the machines live on other
// goroutines.
func (f *Fabric) Probe() {
	for _, s := range f.p.Sites {
		if w := s.SpaceWords(); w > f.maxSiteSpace {
			f.maxSiteSpace = w
		}
	}
	if w := f.p.Coord.SpaceWords(); w > f.maxCoordSpace {
		f.maxCoordSpace = w
	}
}

// SetTap implements Transport: tap observes every message at send time
// (per-link order matches delivery order; different links may call it
// concurrently). Install before the first arrival.
func (f *Fabric) SetTap(t Tap) { f.tap = t }

// SetCoordLog installs the durability layer's write-ahead hook: fn runs on
// the coordinator loop for every coordinator-bound protocol message, just
// before the coordinator applies it. Install before the first arrival; a
// nil fn removes it.
func (f *Fabric) SetCoordLog(fn func(from int, m proto.Message)) { f.coordLog = fn }

// SeedLedger pre-loads the cost ledger — a replacement fabric mounted
// after a coordinator crash carries the crashed run's counters forward, so
// Metrics span the whole logical run. Call before the first arrival.
func (f *Fabric) SeedLedger(m Metrics) {
	atomic.StoreInt64(&f.messagesUp, m.MessagesUp)
	atomic.StoreInt64(&f.messagesDown, m.MessagesDown)
	atomic.StoreInt64(&f.wordsUp, m.WordsUp)
	atomic.StoreInt64(&f.wordsDown, m.WordsDown)
	atomic.StoreInt64(&f.broadcasts, m.Broadcasts)
	atomic.StoreInt64(&f.arrivals, m.Arrivals)
	f.maxSiteSpace = m.MaxSiteSpace
	f.maxCoordSpace = m.MaxCoordSpace
}

// Metrics implements Transport. Call after Quiesce for a consistent view.
func (f *Fabric) Metrics() Metrics {
	live := len(f.p.Sites)
	if f.mw != nil {
		live = f.mw.LiveSites()
	}
	return Metrics{
		MessagesUp:    atomic.LoadInt64(&f.messagesUp),
		MessagesDown:  atomic.LoadInt64(&f.messagesDown),
		WordsUp:       atomic.LoadInt64(&f.wordsUp),
		WordsDown:     atomic.LoadInt64(&f.wordsDown),
		Broadcasts:    atomic.LoadInt64(&f.broadcasts),
		Arrivals:      atomic.LoadInt64(&f.arrivals),
		MaxSiteSpace:  f.maxSiteSpace,
		MaxCoordSpace: f.maxCoordSpace,
		LiveSites:     live,
	}
}

// CloseBoxes closes every mailbox, releasing the transport's loops, and
// marks the fabric closed so later injections panic instead of hanging on
// in-flight accounting no loop will ever retire.
func (f *Fabric) CloseBoxes() {
	f.closed.Store(true)
	for _, mb := range f.SiteBoxes {
		mb.Close()
	}
	f.CoordBox.Close()
}
