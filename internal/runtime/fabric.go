package runtime

import (
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
)

// Mailbox is an unbounded FIFO usable from multiple producers with one
// consumer loop. Like the sequential harness's queue it is head-indexed:
// popping advances head instead of re-slicing (which would strand the
// backing array's prefix and re-allocate on every append/pop cycle), the
// dead prefix is compacted when it dominates, and the offsets reset when
// the queue drains.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []any
	head   int
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// Put enqueues v.
func (mb *Mailbox) Put(v any) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, v)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// Get blocks until a value is available or the mailbox is closed.
func (mb *Mailbox) Get() (any, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.head == len(mb.queue) && !mb.closed {
		mb.cond.Wait()
	}
	if mb.head == len(mb.queue) {
		return nil, false
	}
	v := mb.queue[mb.head]
	mb.queue[mb.head] = nil // drop the reference for the GC
	mb.head++
	switch {
	case mb.head == len(mb.queue):
		mb.queue = mb.queue[:0]
		mb.head = 0
	case mb.head >= 64 && mb.head*2 >= len(mb.queue):
		n := copy(mb.queue, mb.queue[mb.head:])
		mb.queue = mb.queue[:n]
		mb.head = 0
	}
	return v, true
}

// Close wakes all blocked consumers; Get drains the remaining queue and
// then reports false.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Arrival asks a site loop to feed one element to its machine.
type Arrival struct {
	Item  int64
	Value float64
}

// Chunk asks a site loop to absorb up to Count identical arrivals via the
// proto.BatchSite fast path, reporting how many it consumed on Done.
type Chunk struct {
	Item  int64
	Value float64
	Count int64
	Done  chan int64
}

// FromMsg is a site->coordinator protocol message with its sender.
type FromMsg struct {
	From int
	Msg  proto.Message
}

// Fabric is the shared core of the concurrent transports (goroutine
// mailboxes, TCP loopback): per-site injection mailboxes, the in-flight
// counter that realizes the instant-communication quiescence barrier, the
// cost ledger, and quiesce-time space probing. A transport embeds *Fabric,
// launches its own delivery goroutines, and brackets every message it
// carries with CountUp/CountDown so Arrive's barrier covers it.
type Fabric struct {
	p proto.Protocol

	// SpaceProbeEvery controls how often space is sampled at quiescent
	// instants (0 disables periodic probing; Probe still samples on
	// demand). Probes happen after an injection quiesces, so they read
	// protocol state race-free (the in-flight WaitGroup orders them after
	// every handler).
	SpaceProbeEvery int

	// SiteBoxes[i] feeds site i's loop: *Arrival, *Chunk, or a
	// proto.Message from the coordinator. CoordBox feeds the coordinator
	// loop with FromMsg values.
	SiteBoxes []*Mailbox
	CoordBox  *Mailbox

	// Inflight counts injected arrivals and undelivered messages;
	// transports' loops call Inflight.Done() after handling each.
	Inflight sync.WaitGroup

	tap Tap

	// arr and chunk are reusable injection boxes: the injector has at most
	// one arrival (or chunk) outstanding — it waits for quiescence before
	// the next — so the same heap value is recycled instead of boxing a
	// fresh one per element. The mailbox handoff and the done channel
	// order the field accesses.
	arr       Arrival
	chunk     Chunk
	chunkDone chan int64

	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts, arrivals     int64

	// Space high-water marks, written only at quiescent instants from the
	// injecting goroutine (see Probe).
	maxSiteSpace, maxCoordSpace int
}

// NewFabric validates the protocol and builds the shared core.
func NewFabric(p proto.Protocol) *Fabric {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("runtime: protocol needs a coordinator and at least one site")
	}
	f := &Fabric{
		p:               p,
		SpaceProbeEvery: 1024,
		SiteBoxes:       make([]*Mailbox, len(p.Sites)),
		CoordBox:        NewMailbox(),
		chunkDone:       make(chan int64, 1),
	}
	for i := range f.SiteBoxes {
		f.SiteBoxes[i] = NewMailbox()
	}
	f.chunk.Done = f.chunkDone
	return f
}

// Protocol returns the mounted protocol.
func (f *Fabric) Protocol() proto.Protocol { return f.p }

// CountUp brackets one site->coordinator message: in-flight token, ledger,
// tap. The transport delivers the message after calling it.
func (f *Fabric) CountUp(from int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesUp, 1)
	atomic.AddInt64(&f.wordsUp, int64(m.Words()))
	if f.tap != nil {
		f.tap.Up(from, m)
	}
}

// CountDown brackets one coordinator->site message.
func (f *Fabric) CountDown(to int, m proto.Message) {
	f.Inflight.Add(1)
	atomic.AddInt64(&f.messagesDown, 1)
	atomic.AddInt64(&f.wordsDown, int64(m.Words()))
	if f.tap != nil {
		f.tap.Down(to, m)
	}
}

// CountBroadcast records one broadcast operation (the per-site sends are
// still counted individually via CountDown).
func (f *Fabric) CountBroadcast() {
	atomic.AddInt64(&f.broadcasts, 1)
}

// Arrive implements Transport: it injects one element at site and blocks
// until the whole system is quiescent again, matching the paper's model
// where no element arrives while messages are outstanding.
func (f *Fabric) Arrive(site int, item int64, value float64) {
	n := atomic.AddInt64(&f.arrivals, 1)
	f.Inflight.Add(1)
	f.arr.Item, f.arr.Value = item, value
	f.SiteBoxes[site].Put(&f.arr)
	f.Inflight.Wait()
	if f.SpaceProbeEvery > 0 && n%int64(f.SpaceProbeEvery) == 0 {
		f.Probe()
	}
}

// ArriveBatch implements Transport: each chunk is absorbed up to the
// site's next message via the proto.BatchSite fast path, then the
// resulting cascade runs to quiescence before the rest of the run is fed —
// so round broadcasts land between arrivals exactly as they would
// element-at-a-time.
func (f *Fabric) ArriveBatch(site int, item int64, value float64, count int64) {
	every := int64(f.SpaceProbeEvery)
	for count > 0 {
		f.Inflight.Add(1)
		f.chunk.Item, f.chunk.Value, f.chunk.Count = item, value, count
		f.SiteBoxes[site].Put(&f.chunk)
		consumed := <-f.chunkDone
		f.Inflight.Wait()
		n := atomic.AddInt64(&f.arrivals, consumed)
		count -= consumed
		if every > 0 && n%every < consumed {
			f.Probe()
		}
	}
}

// RunSiteLoop runs site i's machine on the calling goroutine until the
// site's mailbox closes: it consumes injected arrivals (*Arrival, *Chunk)
// and coordinator messages (proto.Message), brackets every emitted message
// with CountUp, and hands it to deliver — the only transport-specific step
// (enqueue on the coordinator mailbox, write a frame to a socket, ...).
func (f *Fabric) RunSiteLoop(i int, deliver func(m proto.Message)) {
	site := f.p.Sites[i]
	box := f.SiteBoxes[i]
	out := func(m proto.Message) {
		f.CountUp(i, m)
		deliver(m)
	}
	for {
		v, ok := box.Get()
		if !ok {
			return
		}
		switch msg := v.(type) {
		case *Arrival:
			site.Arrive(msg.Item, msg.Value, out)
		case *Chunk:
			msg.Done <- proto.ArriveChunk(site, msg.Item, msg.Value, msg.Count, out)
		case proto.Message:
			site.Receive(msg, out)
		}
		f.Inflight.Done()
	}
}

// RunCoordLoop runs the coordinator machine on the calling goroutine until
// the coordinator mailbox closes, consuming FromMsg values. Sends and
// broadcasts are bracketed with CountDown/CountBroadcast; deliver carries
// one message to one site.
func (f *Fabric) RunCoordLoop(deliver func(to int, m proto.Message)) {
	send := func(to int, m proto.Message) {
		f.CountDown(to, m)
		deliver(to, m)
	}
	broadcast := func(m proto.Message) {
		f.CountBroadcast()
		for s := range f.p.Sites {
			send(s, m)
		}
	}
	for {
		v, ok := f.CoordBox.Get()
		if !ok {
			return
		}
		cm := v.(FromMsg)
		f.p.Coord.Receive(cm.From, cm.Msg, send, broadcast)
		f.Inflight.Done()
	}
}

// Quiesce implements Transport.
func (f *Fabric) Quiesce() { f.Inflight.Wait() }

// Probe implements Transport. The fabric must be quiescent: the in-flight
// WaitGroup then orders this read after every handler that touched
// protocol state, so it is race-free even though the machines live on
// other goroutines.
func (f *Fabric) Probe() {
	for _, s := range f.p.Sites {
		if w := s.SpaceWords(); w > f.maxSiteSpace {
			f.maxSiteSpace = w
		}
	}
	if w := f.p.Coord.SpaceWords(); w > f.maxCoordSpace {
		f.maxCoordSpace = w
	}
}

// SetTap implements Transport: tap observes every message at send time
// (per-link order matches delivery order; different links may call it
// concurrently). Install before the first arrival.
func (f *Fabric) SetTap(t Tap) { f.tap = t }

// Metrics implements Transport. Call after Quiesce for a consistent view.
func (f *Fabric) Metrics() Metrics {
	return Metrics{
		MessagesUp:    atomic.LoadInt64(&f.messagesUp),
		MessagesDown:  atomic.LoadInt64(&f.messagesDown),
		WordsUp:       atomic.LoadInt64(&f.wordsUp),
		WordsDown:     atomic.LoadInt64(&f.wordsDown),
		Broadcasts:    atomic.LoadInt64(&f.broadcasts),
		Arrivals:      atomic.LoadInt64(&f.arrivals),
		MaxSiteSpace:  f.maxSiteSpace,
		MaxCoordSpace: f.maxCoordSpace,
	}
}

// CloseBoxes closes every mailbox, releasing the transport's loops.
func (f *Fabric) CloseBoxes() {
	for _, mb := range f.SiteBoxes {
		mb.Close()
	}
	f.CoordBox.Close()
}
