// Package tcp hosts the socket-backed transports: the in-process TCP
// loopback fabric (Loopback, mounted via disttrack.TransportTCP) and the
// genuinely distributed coordinator/site hosts (Server, SiteConn) used by
// cmd/tracksim serve / connect. Both ship every protocol message as a
// length-prefixed frame carrying its internal/wire encoding.
package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/wire"
)

// Loopback hosts one protocol over real sockets: one goroutine per site
// machine plus one for the coordinator, each site connected to the
// coordinator by its own TCP connection on the loopback interface. Every
// protocol message crosses the kernel as a length-prefixed frame carrying
// its wire encoding (internal/wire), so this transport exercises the full
// encode -> socket -> decode path while still enforcing the paper's
// instant-communication model: the embedded runtime.Fabric brackets every
// frame from send to handler completion with its in-flight counter, and
// Arrive blocks until the cascade has quiesced.
//
// For a fixed seed the protocol behaves identically to the sequential and
// goroutine transports — same per-link message sequences, same Metrics,
// same query answers (the transport-independence test in the root package
// pins this).
type Loopback struct {
	*runtime.Fabric

	siteConns  []net.Conn // site-side (dialed) connection per site
	coordConns []net.Conn // coordinator-side (accepted) connection per site

	// Pending outbound frames, encoded back-to-back and written in one
	// syscall at each flush boundary. sitePend[i] is guarded by the
	// fabric's per-site injection mutex (appended by the inline injector
	// or site i's loop, flushed by the fabric's flush hook under the same
	// mutex); coordPend/coordDirty are only touched by the coordinator
	// loop.
	sitePend   [][]byte
	coordPend  [][]byte
	coordDirty []int

	wg     sync.WaitGroup
	closed atomic.Bool
}

// StartLoopback mounts the protocol on a fresh loopback TCP fabric: it
// listens on an ephemeral 127.0.0.1 port, dials one connection per site,
// completes the Hello handshake on each, and launches the site and
// coordinator loops.
func StartLoopback(p proto.Protocol) (*Loopback, error) {
	k := p.K()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tcp: transport listen: %w", err)
	}
	defer ln.Close()

	c := &Loopback{
		Fabric:     runtime.NewFabric(p),
		siteConns:  make([]net.Conn, k),
		coordConns: make([]net.Conn, k),
		sitePend:   make([][]byte, k),
		coordPend:  make([][]byte, k),
	}

	// Dial the site ends concurrently with accepting the coordinator ends;
	// each dialed connection introduces itself with a Hello frame. A dial
	// failure closes the listener so the accept loop below unblocks instead
	// of waiting forever for connections that will never come.
	dialErr := make(chan error, 1)
	go func() {
		var buf []byte
		for i := 0; i < k; i++ {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				ln.Close()
				dialErr <- err
				return
			}
			c.siteConns[i] = conn
			buf, err = wire.AppendFrame(buf[:0], wire.Hello{Site: i, K: k})
			if err == nil {
				_, err = conn.Write(buf)
			}
			if err != nil {
				ln.Close()
				dialErr <- err
				return
			}
		}
		dialErr <- nil
	}()
	acceptErr := func() error {
		var buf []byte
		for accepted := 0; accepted < k; accepted++ {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			var m proto.Message
			m, buf, err = wire.ReadFrame(conn, buf)
			if err != nil {
				conn.Close()
				return err
			}
			hello, ok := m.(wire.Hello)
			if !ok || hello.Site < 0 || hello.Site >= k || c.coordConns[hello.Site] != nil {
				conn.Close()
				return fmt.Errorf("bad handshake %#v", m)
			}
			c.coordConns[hello.Site] = conn
		}
		return nil
	}()
	if err := <-dialErr; err != nil || acceptErr != nil {
		c.closeConns()
		if err == nil {
			err = acceptErr
		}
		return nil, fmt.Errorf("tcp: transport handshake: %w", err)
	}

	for i := 0; i < k; i++ {
		i := i
		conn := c.siteConns[i]
		// Site sends append frames to the connection's pending buffer; the
		// fabric's flush hook — end of an inline injection or a delivered
		// batch, always under the site mutex — puts them on the wire in one
		// syscall.
		c.BindSite(i,
			func(m proto.Message) {
				var err error
				c.sitePend[i], err = wire.AppendFrame(c.sitePend[i], m)
				if err != nil {
					c.fail("site encode", err)
				}
			},
			func() {
				if len(c.sitePend[i]) == 0 {
					return
				}
				if _, err := conn.Write(c.sitePend[i]); err != nil {
					c.fail("site send", err)
				}
				c.sitePend[i] = c.sitePend[i][:0]
			})
	}
	// Coordinator sends coalesce per destination connection; the flush hook
	// runs at the coordinator loop's batch edges and walks only the dirty
	// connections.
	c.BindCoord(
		func(to int, m proto.Message) {
			if len(c.coordPend[to]) == 0 {
				c.coordDirty = append(c.coordDirty, to)
			}
			var err error
			c.coordPend[to], err = wire.AppendFrame(c.coordPend[to], m)
			if err != nil {
				c.fail("coord encode", err)
			}
		},
		func() {
			for _, to := range c.coordDirty {
				if _, err := c.coordConns[to].Write(c.coordPend[to]); err != nil {
					c.fail("coord send", err)
				}
				c.coordPend[to] = c.coordPend[to][:0]
			}
			c.coordDirty = c.coordDirty[:0]
		})

	for i := 0; i < k; i++ {
		c.wg.Add(3)
		go c.siteLoop(i)
		go c.siteReader(i)
		go c.coordReader(i)
	}
	c.wg.Add(1)
	go c.coordLoop()
	return c, nil
}

// fail aborts on an unexpected transport error. Loopback sockets between
// two ends of one healthy process do not fail; anything else is a bug, and
// swallowing it would deadlock the in-flight accounting.
func (c *Loopback) fail(op string, err error) {
	if c.closed.Load() {
		return
	}
	panic(fmt.Sprintf("tcp: transport %s: %v", op, err))
}

// siteLoop runs site i's delivery loop via the shared fabric loop; emitted
// frames coalesce in the connection's pending buffer until the batch-edge
// flush (see StartLoopback's BindSite hooks).
func (c *Loopback) siteLoop(i int) {
	defer c.wg.Done()
	c.RunSiteLoop(i)
}

// siteReader decodes coordinator->site frames into site i's mailbox.
func (c *Loopback) siteReader(i int) {
	defer c.wg.Done()
	conn := c.siteConns[i]
	var buf []byte
	for {
		m, b, err := wire.ReadFrame(conn, buf)
		buf = b
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || c.closed.Load() {
				return
			}
			c.fail("site read", err)
			return
		}
		c.SiteBoxes[i].Put(m)
	}
}

// coordReader decodes site i's frames into the coordinator mailbox.
func (c *Loopback) coordReader(i int) {
	defer c.wg.Done()
	conn := c.coordConns[i]
	var buf []byte
	for {
		m, b, err := wire.ReadFrame(conn, buf)
		buf = b
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || c.closed.Load() {
				return
			}
			c.fail("coord read", err)
			return
		}
		c.CoordBox.Put(runtime.FromMsg{From: i, Msg: m})
	}
}

// coordLoop runs the coordinator machine via the shared fabric loop;
// outbound frames coalesce per destination until the batch-edge flush (see
// StartLoopback's BindCoord hooks).
func (c *Loopback) coordLoop() {
	defer c.wg.Done()
	c.RunCoordLoop()
}

func (c *Loopback) closeConns() {
	for _, conn := range c.siteConns {
		if conn != nil {
			conn.Close()
		}
	}
	for _, conn := range c.coordConns {
		if conn != nil {
			conn.Close()
		}
	}
}

// Close implements runtime.Transport: it shuts down all goroutines and
// closes the sockets. The transport must be quiescent.
func (c *Loopback) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.CloseBoxes()
	c.closeConns()
	c.wg.Wait()
}
