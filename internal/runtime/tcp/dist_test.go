package tcp_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"disttrack/internal/count"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/stats"
	"disttrack/internal/wire"
)

// TestServeSurvivesStrayConnections pins the handshake hardening: a
// port-scanner-style dial that never speaks, and a client that sends
// garbage, are each rejected while the run continues and finishes cleanly
// with the real site. Before the fix, either stray connection aborted the
// whole coordinator.
func TestServeSurvivesStrayConnections(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	coord := count.NewCoordinator(cfg)
	srv := &tcp.Server{Coord: coord, K: 1, HandshakeTimeout: 200 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	// A client speaking the wrong protocol: the frame header decodes as an
	// absurd length and is treated as corruption.
	garbage, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer garbage.Close()
	if _, err := garbage.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	// A port scanner: connects, never sends a byte. The handshake read
	// deadline must reject it instead of hanging the accept loop forever.
	scanner, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()

	const n = 500
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 0, count.NewSite(cfg, stats.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("site close: %v", err)
	}
	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve failed despite stray connections: %v", sr.err)
	}
	if sr.m.Arrivals != n {
		t.Errorf("arrivals = %d, want %d", sr.m.Arrivals, n)
	}
	if srv.Rejects != 2 {
		t.Errorf("Rejects = %d, want 2 (garbage + silent scanner)", srv.Rejects)
	}
}

// TestServeHandshakesConcurrently pins that handshakes do not serialize
// behind a stray: a silent dialer that connected first must not delay a
// legitimate site's handshake by its (long) read deadline — the run
// completes orders of magnitude sooner than the stray's timeout.
func TestServeHandshakesConcurrently(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: 1, HandshakeTimeout: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	res := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		res <- err
	}()

	// The stray dials first; with serial handshakes the real site would
	// wait out the stray's full 5s deadline.
	scanner, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer scanner.Close()

	start := time.Now()
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 0, count.NewSite(cfg, stats.New(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("run took %v; the stray's handshake deadline is serializing the accept path", elapsed)
	}
	if srv.Rejects != 1 {
		t.Errorf("Rejects = %d, want 1 (the aborted silent dialer)", srv.Rejects)
	}
}

// TestServeIgnoresDuplicateDone pins the per-site Done accounting: a
// misbehaving site repeating its Done frame must not end the run while a
// healthy site is still streaming. Before the fix, the duplicate
// decremented remaining twice, the server hung up early, and the healthy
// site's data was lost.
func TestServeIgnoresDuplicateDone(t *testing.T) {
	const k = 2
	const n = 5000
	cfg := count.Config{K: k, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: k}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	// Site 0 misbehaves: a raw connection that handshakes correctly, then
	// immediately reports Done twice. It stays open (draining nothing) so
	// the only way the run can end early is the duplicate-Done bug.
	rogue, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	var frame []byte
	for _, m := range []wire.Hello{{Site: 0, K: k}} {
		frame, err = wire.AppendFrame(frame[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rogue.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		frame, err = wire.AppendFrame(frame[:0], wire.Done{Arrivals: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rogue.Write(frame); err != nil {
			t.Fatal(err)
		}
	}

	// Site 1 is healthy and streams a real share, pausing mid-stream so the
	// rogue's buffered Done frames are guaranteed to be processed while
	// this site is still unfinished — the exact window the duplicate-Done
	// bug ends the run in.
	sc, err := tcp.DialSite(ln.Addr().String(), 1, k, 0, count.NewSite(cfg, stats.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == n/2 {
			time.Sleep(100 * time.Millisecond)
		}
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("healthy site close: %v", err)
	}
	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	if sr.m.Arrivals != n+7 {
		t.Errorf("arrivals = %d, want %d (healthy site's stream must be complete)", sr.m.Arrivals, n+7)
	}
}

// TestServeReportsRunningArrivals pins the mid-run metrics fix: with
// Progress frames flowing, ReportEvery callbacks see a growing Arrivals
// count during the run instead of 0 until the Done frames land.
func TestServeReportsRunningArrivals(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	var mu sync.Mutex
	var midRun []int64
	srv := &tcp.Server{
		Coord:       count.NewCoordinator(cfg),
		K:           1,
		ReportEvery: 1,
		Report: func(m runtime.Metrics) {
			mu.Lock()
			midRun = append(midRun, m.Arrivals)
			mu.Unlock()
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	const n = 2000
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 0, count.NewSite(cfg, stats.New(3)))
	if err != nil {
		t.Fatal(err)
	}
	sc.ProgressEvery = 64
	for i := 0; i < n; i++ {
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	if sr.m.Arrivals != n {
		t.Errorf("final arrivals = %d, want %d", sr.m.Arrivals, n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(midRun) == 0 {
		t.Fatal("ReportEvery=1 produced no reports")
	}
	var maxMid int64
	for _, a := range midRun {
		if a > maxMid {
			maxMid = a
		}
	}
	if maxMid == 0 {
		t.Errorf("every mid-run report saw Arrivals = 0; Progress frames are not reaching the ledger")
	}
}

// TestInspectDuringServe pins the serving surface's query seam: Inspect
// runs its closure on the serve loop concurrently with live ingestion (so
// it may query the coordinator coherently), the ledger it hands over is
// monotone, and once Serve has returned Inspect refuses — at which point
// the coordinator is quiescent and direct reads are safe.
func TestInspectDuringServe(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	coord := count.NewCoordinator(cfg)
	srv := &tcp.Server{Coord: coord, K: 1}
	if srv.Inspect(func(runtime.Metrics) {}) {
		t.Fatal("Inspect succeeded before Serve started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	const n = 5000
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 0, count.NewSite(cfg, stats.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	sc.ProgressEvery = 64

	// Inspectors hammer the loop while the site streams: arrivals must be
	// monotone and the coordinator must answer estimates without tearing.
	stop := make(chan struct{})
	var ig sync.WaitGroup
	for g := 0; g < 3; g++ {
		ig.Add(1)
		go func() {
			defer ig.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok := srv.Inspect(func(m runtime.Metrics) {
					if m.Arrivals < last {
						t.Errorf("arrivals went backwards: %d then %d", last, m.Arrivals)
					}
					last = m.Arrivals
					if est := coord.Estimate(); est < 0 {
						t.Errorf("negative estimate %g", est)
					}
				})
				if !ok {
					return // loop gone; the run is over
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	sr := <-res
	close(stop)
	ig.Wait()
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	if sr.m.Arrivals != n {
		t.Errorf("final arrivals = %d, want %d", sr.m.Arrivals, n)
	}
	if srv.Inspect(func(runtime.Metrics) {}) {
		t.Error("Inspect succeeded after Serve returned")
	}
	// With the loop gone, direct reads are the documented fallback.
	if est := coord.Estimate(); est < (1-3*cfg.Eps)*n || est > (1+3*cfg.Eps)*n {
		t.Errorf("final estimate %g outside the 3ε band around %d", est, n)
	}
}
