package tcp_test

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"disttrack/internal/count"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/stats"
	"disttrack/internal/wire"
)

// rejoinWithRetry dials RejoinSite until the server has noticed the crash
// and opened the slot (a rejoin racing the server's loss detection is
// rejected and must simply be retried — exactly what SiteConn's own
// reconnection loop does).
func rejoinWithRetry(t *testing.T, addr string, site, k int, config uint64, s *count.Site) (*tcp.SiteConn, wire.Resync) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sc, rs, err := tcp.RejoinSite(addr, site, k, config, 0, s)
		if err == nil {
			return sc, rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoin never accepted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashAndRejoin pins the recovery protocol end to end: a site process
// crashes mid-stream (no Done frame), the run continues degraded, a
// replacement process rejoins with a fresh machine and replays its stream
// from 0, and the run completes with exact arrival accounting, full live
// coverage, and the ε guarantee intact — the protocols' absolute-state
// messages make a full replay reconverge exactly.
func TestCrashAndRejoin(t *testing.T) {
	const (
		k   = 2
		n0  = 6000
		n1  = 4000
		eps = 0.1
	)
	cfg := count.Config{K: k, Eps: eps}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: k, RejoinWait: 5 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // site 0: healthy, streams everything
		defer wg.Done()
		sc, err := tcp.DialSite(addr, 0, k, 0, count.NewSite(cfg, stats.New(1)))
		if err != nil {
			t.Errorf("site 0: %v", err)
			return
		}
		for i := 0; i < n0; i++ {
			sc.Arrive(0, 0)
		}
		if err := sc.Close(); err != nil {
			t.Errorf("site 0 close: %v", err)
		}
	}()
	go func() { // site 1: crashes halfway, replacement replays from 0
		defer wg.Done()
		sc, err := tcp.DialSite(addr, 1, k, 0, count.NewSite(cfg, stats.New(2)))
		if err != nil {
			t.Errorf("site 1: %v", err)
			return
		}
		sc.ProgressEvery = 256 // so the coordinator acknowledges pre-crash progress
		for i := 0; i < n1/2; i++ {
			sc.Arrive(0, 0)
		}
		sc.Abort() // crash: no Done frame, local machine state lost

		// The replacement process: fresh machine (same seed — a replayable
		// source), full replay. The Resync's acknowledged-arrival count is
		// advisory only: the crash usually leaves the last Progress frame
		// acknowledged, but an RST (unread broadcasts in the dying site's
		// receive buffer at close) can legitimately destroy the buffered
		// Progress frames in flight, so 0 is a valid acknowledgment too —
		// replay-from-0 is correct either way.
		sc2, rs := rejoinWithRetry(t, addr, 1, k, 0, count.NewSite(cfg, stats.New(2)))
		t.Logf("Resync acknowledged %d arrivals (site streamed %d before crashing)", rs.Arrivals, n1/2)
		for i := 0; i < n1; i++ {
			sc2.Arrive(0, 0)
		}
		if err := sc2.Close(); err != nil {
			t.Errorf("site 1 rejoin close: %v", err)
		}
	}()
	wg.Wait()

	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	if sr.m.Arrivals != n0+n1 {
		t.Errorf("arrivals = %d, want %d (full replay must supersede the crashed stream)", sr.m.Arrivals, n0+n1)
	}
	if sr.m.LiveSites != k {
		t.Errorf("final LiveSites = %d, want %d", sr.m.LiveSites, k)
	}
	if srv.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", srv.Rejoins)
	}
	est := srv.Coord.(*count.Coordinator).Estimate()
	if relErr := stats.RelErr(est, float64(n0+n1)); relErr > 2*eps {
		t.Errorf("estimate after recovery = %.0f (rel err %.3f from %d), want within %g",
			est, relErr, n0+n1, 2*eps)
	}
}

// TestRejoinWaitExpires pins graceful degradation when a crashed site never
// returns: the run completes on the surviving sites, Serve reports the
// partial coverage as an error, and the metrics carry the reduced live-site
// count.
func TestRejoinWaitExpires(t *testing.T) {
	const k = 2
	cfg := count.Config{K: k, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: k, RejoinWait: 100 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()
	addr := ln.Addr().String()

	ghost, err := tcp.DialSite(addr, 1, k, 0, count.NewSite(cfg, stats.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := tcp.DialSite(addr, 0, k, 0, count.NewSite(cfg, stats.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ghost.Arrive(0, 0)
	}
	ghost.Abort() // dies and never comes back

	const n = 3000
	for i := 0; i < n; i++ {
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("healthy site close: %v", err)
	}
	sr := <-res
	if sr.err == nil || !strings.Contains(sr.err.Error(), "1 of 2 sites disconnected") {
		t.Fatalf("serve error = %v, want a 1-of-2-sites-lost report", sr.err)
	}
	if sr.m.LiveSites != k-1 {
		t.Errorf("LiveSites = %d, want %d", sr.m.LiveSites, k-1)
	}
	if sr.m.Arrivals != n+100 {
		// The ghost's 100 pre-crash arrivals were acknowledged via
		// Progress/Done? No Done was sent; they count only if a Progress
		// frame landed, which 100 arrivals at the default cadence does not
		// trigger — the healthy site's stream must be complete regardless.
		if sr.m.Arrivals != n {
			t.Errorf("arrivals = %d, want %d (healthy stream) or %d", sr.m.Arrivals, n, n+100)
		}
	}
}

// flakyProxy forwards TCP connections to a backend and can sever every
// live pairing on demand, simulating a network blip between a site and the
// coordinator without killing either process.
type flakyProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend}
	go p.accept()
	return p
}

func (p *flakyProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, b)
		p.mu.Unlock()
		go func() { io.Copy(b, c); b.Close(); c.Close() }()
		go func() { io.Copy(c, b); b.Close(); c.Close() }()
	}
}

// sever kills every live pairing; later dials pass through again.
func (p *flakyProxy) sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = p.conns[:0]
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }
func (p *flakyProxy) close()       { p.ln.Close(); p.sever() }

// TestAutoReconnect pins SiteConn's reconnection loop: a mid-run network
// blip (connection severed, processes alive) is healed by the next failed
// send's Rejoin handshake, and the run completes with exact accounting —
// the site machine's state survived, so nothing is even replayed.
func TestAutoReconnect(t *testing.T) {
	const (
		k = 1
		n = 20000
	)
	cfg := count.Config{K: k, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: k, RejoinWait: 10 * time.Second}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	proxy := newFlakyProxy(t, ln.Addr().String())
	defer proxy.close()

	sc, err := tcp.DialSite(proxy.addr(), 0, k, 0, count.NewSite(cfg, stats.New(3)))
	if err != nil {
		t.Fatal(err)
	}
	sc.AutoReconnect = true
	for i := 0; i < n; i++ {
		if i == n/3 || i == 2*n/3 {
			proxy.sever() // two blips mid-run
		}
		sc.Arrive(0, 0)
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("close after blips: %v", err)
	}
	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	if sr.m.Arrivals != n {
		t.Errorf("arrivals = %d, want %d", sr.m.Arrivals, n)
	}
	if sc.Rejoins() < 1 {
		t.Error("the connection never rejoined; the blips were not exercised")
	}
	if srv.Rejoins < 1 {
		t.Error("server recorded no rejoins")
	}
	est := srv.Coord.(*count.Coordinator).Estimate()
	if relErr := stats.RelErr(est, n); relErr > 0.2 {
		t.Errorf("estimate = %.0f (rel err %.3f), want within 0.2 of %d", est, relErr, n)
	}
}
