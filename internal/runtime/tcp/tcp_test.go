package tcp_test

import (
	"net"
	"sync"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/runtime/tcp"
	"disttrack/internal/stats"
)

// TestLoopbackTransportCountRandomized drives the in-process loopback
// transport directly through the runtime seam and checks the paper's
// guarantees survive the encode -> socket -> decode path.
func TestLoopbackTransportCountRandomized(t *testing.T) {
	const k, n = 4, 3000
	cfg := count.Config{K: k, Eps: 0.1}
	p, coord := count.NewProtocol(cfg, 7)
	tr, err := tcp.StartLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	r := runtime.New(tr)
	defer r.Close()
	bad := 0
	for i := 0; i < n; i++ {
		r.Arrive(i%k, 0, 0)
		if i%13 == 0 {
			if est := coord.Estimate(); stats.RelErr(est, float64(i+1)) > 0.2 {
				bad++
			}
		}
	}
	if frac := float64(bad) / float64(n/13); frac > 0.1 {
		t.Errorf("%.1f%% of checks outside the band", 100*frac)
	}
	m := r.Metrics()
	if m.Arrivals != n {
		t.Errorf("arrivals = %d, want %d", m.Arrivals, n)
	}
	if m.Messages() == 0 || m.Words() == 0 || m.Broadcasts == 0 {
		t.Errorf("no traffic crossed the sockets: %+v", m)
	}
	if m.MaxSiteSpace == 0 || m.MaxCoordSpace == 0 {
		t.Errorf("space probes missing: %+v", m)
	}
}

// TestServeRejectsMismatchedConfig pins the handshake guard: a site dialing
// with a different configuration fingerprint is refused instead of having
// all its protocol messages silently ignored.
func TestServeRejectsMismatchedConfig(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: 1, Config: 111}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	res := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		res <- err
	}()
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 222, count.NewSite(cfg, stats.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-res; err == nil {
		t.Error("serve accepted a site with a mismatched configuration fingerprint")
	}
	sc.Close()
}

// TestServeReportsLostSite pins that a site vanishing before its Done frame
// surfaces as an error rather than a clean "all sites finished".
func TestServeReportsLostSite(t *testing.T) {
	cfg := count.Config{K: 1, Eps: 0.1}
	srv := &tcp.Server{Coord: count.NewCoordinator(cfg), K: 1}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	res := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		res <- err
	}()
	sc, err := tcp.DialSite(ln.Addr().String(), 0, 1, 0, count.NewSite(cfg, stats.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sc.Arrive(0, 0)
	}
	// Vanish without a Done frame.
	sc.Abort()
	if err := <-res; err == nil {
		t.Error("serve reported a clean finish despite a lost site")
	}
}

// TestServeConnectDistributed runs the genuinely distributed mode inside
// one test process: a Server hosting the coordinator, k concurrent
// SiteConn "processes" streaming their shares over real TCP connections.
func TestServeConnectDistributed(t *testing.T) {
	const k = 3
	const perSite = 2000
	cfg := count.Config{K: k, Eps: 0.1}
	coord := count.NewCoordinator(cfg)
	srv := &tcp.Server{Coord: coord, K: k}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type served struct {
		m   runtime.Metrics
		err error
	}
	res := make(chan served, 1)
	go func() {
		m, err := srv.Serve(ln)
		res <- served{m, err}
	}()

	var wg sync.WaitGroup
	root := stats.New(11)
	for i := 0; i < k; i++ {
		site := count.NewSite(cfg, root.Split())
		wg.Add(1)
		go func(i int, s proto.Site) {
			defer wg.Done()
			sc, err := tcp.DialSite(ln.Addr().String(), i, k, 0, s)
			if err != nil {
				t.Errorf("site %d: %v", i, err)
				return
			}
			for j := 0; j < perSite; j++ {
				sc.Arrive(0, 0)
			}
			// Half the stream again through the batch fast path.
			sc.ArriveBatch(0, 0, perSite)
			if got := sc.Arrivals(); got != 2*perSite {
				t.Errorf("site %d: arrivals = %d, want %d", i, got, 2*perSite)
			}
			if err := sc.Close(); err != nil {
				t.Errorf("site %d close: %v", i, err)
			}
		}(i, site)
	}
	wg.Wait()
	sr := <-res
	if sr.err != nil {
		t.Fatalf("serve: %v", sr.err)
	}
	total := float64(2 * perSite * k)
	if sr.m.Arrivals != int64(total) {
		t.Errorf("server saw %d arrivals in Done frames, want %.0f", sr.m.Arrivals, total)
	}
	if sr.m.MessagesUp == 0 || sr.m.Broadcasts == 0 {
		t.Errorf("no protocol traffic reached the server: %+v", sr.m)
	}
	// The network was quiescent when the sites closed, so the estimate must
	// be inside the (generous) band.
	if est := coord.Estimate(); stats.RelErr(est, total) > 0.25 {
		t.Errorf("distributed estimate %.0f too far from %.0f", est, total)
	}
}
