package tcp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"disttrack/internal/persist"
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/stats"
	"disttrack/internal/wire"
)

// This file is the genuinely distributed mode: a coordinator process
// (Server) and k site processes (SiteConn) running the paper's protocols
// over real TCP connections, exchanging the same wire frames as the
// in-process TCPLoopback transport. cmd/tracksim's serve and connect
// subcommands are thin wrappers around these two types.
//
// Unlike the three in-process transports, the distributed mode cannot
// enforce the paper's instant-communication idealization — a real network
// has latency, so elements keep arriving while messages are in flight. The
// protocols tolerate this (their state machines are asynchronous by
// construction); the accounting and estimates simply reflect whatever
// interleaving the network produced.

// outSeg is one pending run of encoded frames for a site connection,
// referencing either the fanout's shared broadcast arena or the site's own
// unicast arena by offsets (offsets, not slices, because the arenas may
// reallocate while segments are pending).
type outSeg struct {
	shared     bool
	start, end int
}

// fanoutWriter coalesces the serve loop's outbound frames: point-to-point
// sends encode into a per-site arena, broadcasts encode once into a shared
// arena that every live site's segment list references, and flush — called
// at the serve loop's event edges — ships each dirty connection's pending
// run in one syscall (a plain write when the run is contiguous, a vectored
// net.Buffers write when broadcast and unicast segments interleave). The
// serve loop is the only writer, so none of this needs a lock.
type fanoutWriter struct {
	conns  []net.Conn
	shared []byte
	uni    [][]byte
	segs   [][]outSeg
	dirty  []int
	vec    net.Buffers
}

func newFanoutWriter(conns []net.Conn) *fanoutWriter {
	return &fanoutWriter{
		conns: conns,
		uni:   make([][]byte, len(conns)),
		segs:  make([][]outSeg, len(conns)),
	}
}

func (w *fanoutWriter) frameOf(to int, sg outSeg) []byte {
	if sg.shared {
		return w.shared[sg.start:sg.end]
	}
	return w.uni[to][sg.start:sg.end]
}

// add records a pending segment for site to, merging contiguous runs from
// the same arena so a burst of same-destination frames (a resync replay)
// flushes as a single write.
func (w *fanoutWriter) add(to int, sg outSeg) {
	segs := w.segs[to]
	if len(segs) == 0 {
		w.dirty = append(w.dirty, to)
	} else if last := &segs[len(segs)-1]; last.shared == sg.shared && last.end == sg.start {
		last.end = sg.end
		return
	}
	w.segs[to] = append(segs, sg)
}

// unicast encodes one frame for site to into its arena. Encoding failures
// are ignored like the old per-message path ignored them: a message that
// cannot be encoded cannot be helped, and the site's reader will report any
// real connection trouble.
func (w *fanoutWriter) unicast(to int, m proto.Message) {
	start := len(w.uni[to])
	buf, err := wire.AppendFrame(w.uni[to], m)
	if err != nil {
		return
	}
	w.uni[to] = buf
	w.add(to, outSeg{start: start, end: len(buf)})
}

// flush ships every dirty connection's pending frames and resets the
// arenas. Write errors are deliberately dropped, as the per-message sends
// always were: a vanished site cannot be helped, and its reader reports the
// loss to the serve loop.
func (w *fanoutWriter) flush() {
	for _, to := range w.dirty {
		conn, segs := w.conns[to], w.segs[to]
		if conn != nil {
			if len(segs) == 1 {
				conn.Write(w.frameOf(to, segs[0]))
			} else {
				w.vec = w.vec[:0]
				for _, sg := range segs {
					w.vec = append(w.vec, w.frameOf(to, sg))
				}
				w.vec.WriteTo(conn)
			}
		}
		w.segs[to] = segs[:0]
		w.uni[to] = w.uni[to][:0]
	}
	w.dirty = w.dirty[:0]
	w.shared = w.shared[:0]
}

// Server hosts a protocol's coordinator half for k remote site processes.
type Server struct {
	// Coord is the coordinator state machine (required).
	Coord proto.Coordinator
	// K is the number of site processes to expect (required, >= 1).
	K int
	// Config is an optional fingerprint of the protocol configuration
	// (problem, algorithm, ε, rescale, ...). Sites must dial with the same
	// value in their Hello frame; a mismatch rejects the site, so a
	// mis-deployed pair fails loudly instead of silently dropping every
	// protocol message. Zero on both sides matches.
	Config uint64
	// ReportEvery, when positive, invokes Report after every ReportEvery
	// processed protocol messages. Report runs on the coordinator loop, so
	// it may safely query the coordinator machine. The Arrivals field of
	// the reported metrics carries the sites' running counts (from their
	// periodic Progress frames, see SiteConn.ProgressEvery), so mid-run
	// reports show real ingestion progress rather than 0 until Done.
	ReportEvery int64
	Report      func(m runtime.Metrics)

	// HandshakeTimeout bounds how long an accepted connection may take to
	// deliver its Hello frame before it is rejected (0 = default 10s). A
	// connection that sends garbage, or nothing at all — a port scan, a
	// health check — is dropped and accepting continues; it cannot stall
	// the run forever or abort it.
	HandshakeTimeout time.Duration

	// RejoinWait is how long a crashed site's slot stays open for a Rejoin
	// dial before the site is declared lost. While a site is dead the run
	// continues on the remaining sites (Metrics.LiveSites reflects the
	// degraded coverage); a site that rejoins in time resumes its slot
	// with a Resync handshake. 0 preserves the legacy behavior: a dropped
	// connection is an immediate loss.
	RejoinWait time.Duration

	// Persist, when non-nil, is the durability seam: every coordinator-bound
	// frame — protocol messages plus the Done/Progress control frames that
	// carry the sites' arrival counts — is appended to its write-ahead log
	// before the coordinator applies it, and the log is compacted into a
	// coordinator-state snapshot every SnapshotEvery logged frames (0 =
	// persist.DefaultEvery). The caller owns the store: Serve seals it with
	// a final snapshot and sync on any exit except Kill, but never closes
	// it.
	Persist       persist.Store
	SnapshotEvery int64

	// Resume recovers the coordinator from Persist before accepting sites:
	// the latest snapshot is restored, the write-ahead-log tail is replayed
	// (re-deriving the cost ledger and per-site arrival counts), and the
	// server then waits for its K sites to reconnect — a site dialing with
	// a Rejoin handshake is resynced into the recovered round during
	// assembly, exactly as a mid-run rejoin would be. Resume targets
	// mid-stream coordinator crashes; a run whose sites all finished has
	// nothing left to serve.
	Resume bool

	// Rejects counts connections dropped during the handshake (garbage
	// frames, non-Hello traffic, timeouts, dialers aborted when the K
	// sites finished assembling without them, and Rejoin dials for slots
	// that are not open). Every counted connection settles before the
	// message loop starts or is settled by the serve loop, so the field is
	// final once Serve returns; plain reads are safe then.
	Rejects int64

	// Rejoins counts crashed-site slots successfully resumed by a Rejoin
	// handshake. Final once Serve returns.
	Rejoins int64

	// Cost counters; only the Serve goroutine touches them (sends,
	// dispatch, and the Report callback all run there), so they are plain
	// fields — unlike runtime.Fabric, no cross-goroutine sharing exists.
	// (Assembly-time rejoin replays also touch them, but strictly before
	// the serve loop starts, under assemble's handshake mutex.)
	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts               int64
	siteArrivals             []int64 // running counts from Progress frames, final from Done
	liveCount                int     // sites currently connected or cleanly finished
	// finished marks sites whose Done frame was durably applied (directly,
	// or recovered from the store). A resumed server does not wait for
	// these sites during assembly, and a finished site that redials —
	// because the previous coordinator crashed before acknowledging its
	// Done — is answered with an acknowledging Resync and hung up.
	// ackDelivered records which of those completion acks were written
	// without error, so the post-run linger knows when every
	// recovered-finished site has been told its work is durable.
	finished     []bool
	ackDelivered []bool

	// Durability state: the write-ahead logger over Persist, the number of
	// WAL frames the last recovery replayed, and the number of site resync
	// replays served (assembly-time and mid-run rejoins).
	log      *persist.Logger
	replayed int64
	resyncs  int64

	// box is the serve loop's mailbox, published before serving flips true
	// so Shutdown and Kill can signal the loop from other goroutines.
	box *runtime.Mailbox

	// loopDone is closed when Serve returns, after the post-run drain has
	// applied every queued frame. Inspect selects on it so an inspectReq
	// stranded by teardown (posted after the drain emptied the box) fails
	// over instead of blocking forever.
	loopDone chan struct{}

	// serving gates rejoin handoffs from handshake goroutines into the
	// serve loop's mailbox, so a Rejoin landing during teardown is closed
	// instead of stranded.
	serving atomic.Bool

	// Post-assembly (rejoin-candidate) handshakes run on their own
	// goroutines; hsConns tracks their connections so Serve's teardown can
	// abort the reads, and hsWG joins them before Serve returns — keeping
	// the "Rejects/Rejoins are final once Serve returns" contract honest.
	// Both are guarded by hsMu; a nil hsConns means no more may start.
	hsMu    sync.Mutex
	hsConns map[net.Conn]struct{}
	hsWG    sync.WaitGroup
}

// rejoinReq hands a completed post-assembly Rejoin handshake to the serve
// loop, which decides whether the slot is open.
type rejoinReq struct {
	site     int
	arrivals int64
	conn     net.Conn
}

// rejoinTimeout declares a dead site lost if it has not rejoined by the
// time the timer fired. epoch guards against a slot that died, rejoined,
// and died again since the timer was armed.
type rejoinTimeout struct {
	site  int
	epoch int
}

// lingerTimeout closes the post-run linger window in which a resumed
// server keeps answering finished sites' redials with completion acks.
type lingerTimeout struct{}

// shutdownReq asks the serve loop to stop gracefully (drain, final
// snapshot, sync); killReq asks it to stop abruptly (simulated crash).
type (
	shutdownReq struct{}
	killReq     struct{}
)

// inspectReq asks the serve loop to run fn on the loop goroutine — the
// serving surface's way to query the coordinator and read the cost ledger
// at an instant when no frame is mid-application. done is closed after fn
// returns.
type inspectReq struct {
	fn   func(runtime.Metrics)
	done chan struct{}
}

// ErrShutdown is returned by Serve when Shutdown stopped it before every
// site finished; ErrKilled likewise for Kill.
var (
	ErrShutdown = errors.New("tcp: server shut down before the sites finished")
	ErrKilled   = errors.New("tcp: server killed")
)

// Shutdown asks a running Serve to stop gracefully: the loop stops
// dispatching new traffic, frames already queued are drained into the
// coordinator (and the write-ahead log), a final snapshot is written, and
// the store is synced — so a later Serve with Resume picks up exactly
// where this one stopped. Serve returns ErrShutdown. Reports whether a
// running serve loop was signaled. Safe to call from any goroutine (signal
// handlers in particular).
func (s *Server) Shutdown() bool { return s.signal(shutdownReq{}) }

// Kill asks a running Serve to stop abruptly: no drain, no final snapshot,
// no sync — the write-ahead log keeps exactly what was appended before the
// kill, simulating a coordinator crash for chaos drills. Serve returns
// ErrKilled.
func (s *Server) Kill() bool { return s.signal(killReq{}) }

// Inspect runs fn on the serve loop at an instant when no frame is
// mid-application, handing it the server's cost ledger; fn may also safely
// query s.Coord (exactly like Report callbacks). It blocks until fn has
// run and reports true, or reports false without running fn when no serve
// loop is available (before Serve is serving, or once the loop has shut
// down and drained — after which the coordinator is no longer mutated, so
// callers may read it directly). Safe to call from any goroutine.
func (s *Server) Inspect(fn func(runtime.Metrics)) bool {
	if !s.serving.Load() {
		return false
	}
	// serving was set after box and loopDone, so the load above ordered
	// both reads.
	req := inspectReq{fn: fn, done: make(chan struct{})}
	s.box.Put(req)
	select {
	case <-req.done:
		return true
	case <-s.loopDone:
		// Teardown raced the Put: the drain already emptied the box, nobody
		// will run fn. The loop is gone, which is exactly what false means.
		return false
	}
}

func (s *Server) signal(ev any) bool {
	if !s.serving.Load() {
		return false
	}
	// serving was set after box, so the load above ordered this read; a
	// teardown racing the Put is benign (the drain discards unknown events).
	s.box.Put(ev)
	return true
}

// coordRound reports the coordinator's current round when it exposes one
// (the rounds-framework trackers do); deterministic baselines report 0.
func (s *Server) coordRound() int64 {
	if rc, ok := s.Coord.(interface{ Round() int }); ok {
		return int64(rc.Round())
	}
	return 0
}

// snapMeta captures the server's cost ledger for a snapshot header; the
// Logger fills the Snapshots field itself. Called from the serve loop (and
// from recovery/teardown on the Serve goroutine), never concurrently.
func (s *Server) snapMeta() wire.SnapMeta {
	return wire.SnapMeta{
		Config:       s.Config,
		MessagesUp:   s.messagesUp,
		MessagesDown: s.messagesDown,
		WordsUp:      s.wordsUp,
		WordsDown:    s.wordsDown,
		Broadcasts:   s.broadcasts,
		Resyncs:      s.resyncs,
		SiteArrivals: append([]int64(nil), s.siteArrivals...),
		Finished:     append([]bool(nil), s.finished...),
	}
}

// recover rebuilds the coordinator from the store before any site
// connects: snapshot first, then the write-ahead-log tail. Protocol frames
// re-apply through the coordinator with sends counted but not transmitted
// (no site is connected yet; each reconnecting site is resynced instead),
// so the ledger re-derives exactly. Done and Progress records only update
// the per-site arrival counts.
func (s *Server) recover() error {
	countSend := func(to int, m proto.Message) {
		s.messagesDown++
		s.wordsDown += int64(m.Words())
	}
	countCast := func(m proto.Message) {
		s.broadcasts++
		for i := 0; i < s.K; i++ {
			countSend(i, m)
		}
	}
	res, err := persist.Recover(s.Persist, s.Coord, func(from int, m proto.Message) {
		switch msg := m.(type) {
		case wire.Done:
			if from >= 0 && from < s.K {
				s.siteArrivals[from] = msg.Arrivals
				s.finished[from] = true
			}
		case wire.Progress:
			if from >= 0 && from < s.K {
				s.siteArrivals[from] = msg.Arrivals
			}
		default:
			s.messagesUp++
			s.wordsUp += int64(m.Words())
			s.Coord.Receive(from, m, countSend, countCast)
		}
	})
	if err != nil {
		return err
	}
	if res.HasSnapshot {
		meta := res.Meta
		if s.Config != 0 && meta.Config != 0 && meta.Config != s.Config {
			return fmt.Errorf(
				"tcp: resume: store was written by configuration fingerprint %#x, server has %#x (mismatched problem/algorithm/ε?)",
				meta.Config, s.Config)
		}
		// The header's ledger covers everything up to the snapshot; the
		// replay above re-counted the tail. Arrival counts take the larger
		// of the two (the WAL tail's Progress/Done records supersede the
		// header's values when present).
		s.messagesUp += meta.MessagesUp
		s.messagesDown += meta.MessagesDown
		s.wordsUp += meta.WordsUp
		s.wordsDown += meta.WordsDown
		s.broadcasts += meta.Broadcasts
		s.resyncs += meta.Resyncs
		if len(meta.SiteArrivals) == s.K {
			for i, a := range meta.SiteArrivals {
				if a > s.siteArrivals[i] {
					s.siteArrivals[i] = a
				}
			}
		}
		if len(meta.Finished) == s.K {
			for i, f := range meta.Finished {
				if f {
					s.finished[i] = true
				}
			}
		}
		s.log.SeedSnapshots(meta.Snapshots)
	}
	s.replayed = res.ReplayedFrames
	return nil
}

// assemble accepts connections on ln until all s.K sites have completed
// their Hello handshake, filling conns. Each accepted connection is
// handshaken on its own goroutine with a read deadline, so a stray
// connection — a port scanner, a health check, a client speaking another
// protocol, a dialer that never speaks — costs nothing serially: it is
// rejected (and counted in Rejects) while legitimate sites assemble past
// it. Only a well-formed Hello that contradicts the deployment (bad or
// duplicate site index, k or fingerprint mismatch) is a loud, fatal
// error. Accepting continues in the background until the caller closes
// ln; post-assembly dials are handshaken as Rejoin candidates — a valid
// Rejoin for this deployment is handed to the serve loop via rejoin,
// anything else is rejected.
func (s *Server) assemble(ln net.Listener, conns []net.Conn, rejoin func(wire.Rejoin, net.Conn)) error {
	timeout := s.HandshakeTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	var (
		mu         sync.Mutex
		registered int
		fatalErr   error
		done       bool
		inflight   = map[net.Conn]bool{}
		hsWG       sync.WaitGroup
		// rejoinedSlot marks slots filled by a Rejoin during assembly: a
		// Hello colliding with such a slot is the crashed predecessor's
		// stale handshake surfacing late, not a misdeployed duplicate
		// site, and must not abort the run.
		rejoinedSlot = make([]bool, s.K)
	)
	// Sites whose Done a resumed coordinator recovered from its store are
	// not expected back: assembly completes when the unfinished sites are
	// present. (On a fresh server every slot is unfinished and target == K.)
	target := 0
	for i := 0; i < s.K; i++ {
		if !s.finished[i] {
			target++
		}
	}
	assembled := make(chan struct{})
	// finish, called with mu held, ends assembly (success or fatal) and
	// aborts the handshakes still in flight — a connection that has not
	// produced its Hello by the time all K sites are present is not one of
	// them, so it is rejected (and counted) right here; closing it
	// unblocks its reader immediately.
	finish := func() {
		if done {
			return
		}
		done = true
		for conn := range inflight {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
		}
		close(assembled)
	}

	handshake := func(conn net.Conn) {
		defer hsWG.Done()
		conn.SetReadDeadline(time.Now().Add(timeout))
		m, _, err := wire.ReadFrame(conn, nil)
		mu.Lock()
		defer mu.Unlock()
		delete(inflight, conn)
		if done {
			// Assembly ended while this handshake was in flight; finish
			// already closed and counted the connection.
			conn.Close()
			return
		}
		if err != nil {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		// A Rejoin during assembly is a site whose Hello the server never
		// registered — its first connection died (with the Hello possibly
		// still in a network buffer) and it redialed before assembly
		// completed. It registers like a Hello, but mismatches are
		// rejected non-fatally (the dialer retries; once assembly ends the
		// serve loop arbitrates rejoins properly).
		site, hk, hcfg := -1, 0, uint64(0)
		isRejoin := false
		switch h := m.(type) {
		case wire.Hello:
			site, hk, hcfg = h.Site, h.K, h.Config
		case wire.Rejoin:
			site, hk, hcfg, isRejoin = h.Site, h.K, h.Config, true
		default:
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		switch {
		case site >= 0 && site < s.K && s.finished[site]:
			// The site's Done is already durable — it is dialing back only
			// because the previous coordinator crashed before acknowledging
			// it. Acknowledge with a Resync carrying its final arrival count
			// and hang up; the slot stays out of the assembly count.
			if frame, err := wire.AppendFrame(nil, wire.Resync{
				Round: wire.ResyncComplete, Arrivals: s.siteArrivals[site]}); err == nil {
				if _, werr := conn.Write(frame); werr == nil {
					s.ackDelivered[site] = true
				}
			}
			conn.Close()
			return
		case site >= 0 && site < s.K && conns[site] != nil && rejoinedSlot[site] && !isRejoin:
			// The slot was resumed by a replacement process while this —
			// the crashed predecessor's — Hello was still in flight.
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		case site < 0 || site >= s.K || conns[site] != nil:
			fatalErr = fmt.Errorf("tcp: serve handshake: unexpected %#v", m)
		case hk != s.K:
			fatalErr = fmt.Errorf("tcp: site %d dialed with k=%d, server has k=%d",
				site, hk, s.K)
		case hcfg != s.Config:
			fatalErr = fmt.Errorf(
				"tcp: site %d dialed with configuration fingerprint %#x, server has %#x (mismatched problem/algorithm/ε?)",
				site, hcfg, s.Config)
		default:
			if isRejoin {
				// Acknowledge so the dialer's rejoin handshake completes. On
				// a resumed server the coordinator already carries recovered
				// state, so the Resync reports the real round and this slot's
				// last logged arrival count, and the fresh site machine is
				// replayed into the current round — exactly as a mid-run
				// rejoin would be. On a fresh server all of that is zero and
				// the replay emits nothing. Counters are safe here: the serve
				// loop starts only after assemble joins every handshake.
				if frame, err := wire.AppendFrame(nil, wire.Resync{
					Round: s.coordRound(), Arrivals: s.siteArrivals[site]}); err == nil {
					conn.Write(frame)
				}
				if rs, ok := s.Coord.(proto.Resyncer); ok {
					var frame []byte
					rs.Resync(func(m proto.Message) {
						s.messagesDown++
						s.wordsDown += int64(m.Words())
						var err error
						frame, err = wire.AppendFrame(frame[:0], m)
						if err == nil {
							conn.Write(frame)
						}
					})
					s.resyncs++
				}
				atomic.AddInt64(&s.Rejoins, 1)
				rejoinedSlot[site] = true
			}
			conn.SetReadDeadline(time.Time{})
			conns[site] = conn
			registered++
			if registered == target {
				finish()
			}
			return
		}
		if isRejoin {
			// A mis-shaped rejoin must not abort a healthy assembly.
			fatalErr = nil
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		conn.Close()
		finish()
	}

	// rejoinHandshake vets a post-assembly dial: only a well-formed Rejoin
	// frame matching this deployment reaches the serve loop; everything
	// else — garbage, silent dials, mismatched shapes — is rejected, never
	// fatal (a running system must shrug off strays).
	rejoinHandshake := func(conn net.Conn) {
		defer s.hsWG.Done()
		conn.SetReadDeadline(time.Now().Add(timeout))
		m, _, err := wire.ReadFrame(conn, nil)
		s.hsMu.Lock()
		delete(s.hsConns, conn)
		s.hsMu.Unlock()
		if err == nil {
			if rj, ok := m.(wire.Rejoin); ok &&
				rj.Site >= 0 && rj.Site < s.K && rj.K == s.K && rj.Config == s.Config {
				conn.SetReadDeadline(time.Time{})
				rejoin(rj, conn)
				return
			}
		}
		conn.Close()
		atomic.AddInt64(&s.Rejects, 1)
	}

	if target == 0 {
		// Every site already finished (a resume of a completed run): there
		// is nothing to assemble; dials from here on are rejoin candidates.
		mu.Lock()
		finish()
		mu.Unlock()
	}

	go func() {
		for {
			conn, err := ln.Accept()
			mu.Lock()
			if err != nil {
				if !done {
					fatalErr = fmt.Errorf("tcp: serve accept: %w", err)
					finish()
				}
				mu.Unlock()
				return
			}
			if done {
				mu.Unlock()
				// Register under hsMu so Serve's teardown (which nils the
				// map, closes the registered conns, and joins hsWG) can
				// never race a late handshake spawn.
				s.hsMu.Lock()
				if s.hsConns == nil {
					s.hsMu.Unlock()
					conn.Close() // the run is over; post-run strays just go away
					continue
				}
				s.hsConns[conn] = struct{}{}
				s.hsWG.Add(1)
				s.hsMu.Unlock()
				go rejoinHandshake(conn)
				continue
			}
			inflight[conn] = true
			hsWG.Add(1)
			mu.Unlock()
			go handshake(conn)
		}
	}()

	<-assembled
	// Every pre-assembly connection settles before the message loop starts
	// (aborted handshakes return promptly — finish closed their conns).
	hsWG.Wait()
	mu.Lock()
	defer mu.Unlock()
	return fatalErr
}

// Serve accepts s.K site connections on ln, runs the coordinator until
// every site has sent its Done frame, closes the connections, and returns
// the final cost ledger. The caller owns ln.
func (s *Server) Serve(ln net.Listener) (runtime.Metrics, error) {
	if s.Coord == nil || s.K < 1 {
		return runtime.Metrics{}, fmt.Errorf("tcp: server needs a coordinator and K >= 1")
	}
	conns := make([]net.Conn, s.K)
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
	}()

	s.siteArrivals = make([]int64, s.K)
	s.finished = make([]bool, s.K)
	s.ackDelivered = make([]bool, s.K)
	s.liveCount = s.K
	if s.Resume && s.Persist == nil {
		return runtime.Metrics{}, fmt.Errorf("tcp: Resume needs a Persist store")
	}
	if s.Persist != nil {
		s.log = persist.NewLogger(s.Persist, s.Coord, s.SnapshotEvery, s.snapMeta)
		if s.Resume {
			if err := s.recover(); err != nil {
				return runtime.Metrics{}, err
			}
		}
	}
	box := runtime.NewMailbox()
	s.box = box
	s.loopDone = make(chan struct{})
	defer close(s.loopDone) // after the final drain: no more Coord mutations
	s.hsConns = map[net.Conn]struct{}{}
	s.serving.Store(true)
	defer s.serving.Store(false)
	rejoinHandoff := func(rj wire.Rejoin, conn net.Conn) {
		if !s.serving.Load() {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		box.Put(rejoinReq{site: rj.Site, arrivals: rj.Arrivals, conn: conn})
	}
	// stopHandshakes aborts and joins the post-assembly handshake probes;
	// after it, no goroutine touches Rejects/Rejoins again.
	stopHandshakes := func() {
		s.hsMu.Lock()
		for conn := range s.hsConns {
			conn.Close()
		}
		s.hsConns = nil
		s.hsMu.Unlock()
		s.hsWG.Wait()
	}
	if err := s.assemble(ln, conns, rejoinHandoff); err != nil {
		stopHandshakes()
		return runtime.Metrics{}, err
	}

	// Per-site readers feed one coordinator loop; writes to the sites all
	// happen on that loop, so each connection has a single reader and a
	// single writer. A reader keeps draining past the site's Done frame: a
	// finished site still answers round broadcasts triggered by the other
	// sites' traffic (e.g. the count tracker's AdjustMsg re-randomization),
	// and those protocol messages must reach the coordinator. Readers exit
	// only when their connection ends — the site crashed (its slot then
	// waits RejoinWait for a Rejoin dial) or Serve hung up at run end.
	var rg sync.WaitGroup
	startReader := func(i int, conn net.Conn) {
		rg.Add(1)
		go func() {
			defer rg.Done()
			doneSeen := false
			var buf []byte
			for {
				m, b, err := wire.ReadFrame(conn, buf)
				buf = b
				if err != nil {
					if !doneSeen {
						box.Put(runtime.FromMsg{From: i, Msg: nil}) // site lost
					}
					return
				}
				if _, done := m.(wire.Done); done {
					doneSeen = true
				}
				box.Put(runtime.FromMsg{From: i, Msg: m})
			}
		}()
	}
	for i := range conns {
		if conns[i] != nil { // nil = recovered-finished slot, nobody dialed
			startReader(i, conns[i])
		}
	}

	// Outbound frames coalesce in the fanout writer and go on the wire at
	// the serve loop's event edges (recv flushes before blocking for the
	// next event): one Receive's cascade — replies, a round broadcast, a
	// resync replay — rides one write per destination instead of one per
	// message, and a broadcast is encoded once however many sites it
	// reaches.
	var frame []byte
	w := newFanoutWriter(conns)
	send := func(to int, m proto.Message) {
		s.messagesDown++
		s.wordsDown += int64(m.Words())
		if conns[to] == nil {
			return // recovered-finished slot: charged (ledger parity) but gone
		}
		w.unicast(to, m)
	}
	broadcast := func(m proto.Message) {
		s.broadcasts++
		start := len(w.shared)
		buf, encErr := wire.AppendFrame(w.shared, m)
		if encErr == nil {
			w.shared = buf
		}
		sg := outSeg{shared: true, start: start, end: len(w.shared)}
		for to := range conns {
			s.messagesDown++
			s.wordsDown += int64(m.Words())
			if conns[to] == nil || encErr != nil {
				continue
			}
			w.add(to, sg)
		}
	}
	recv := func() any {
		w.flush()
		v, _ := box.Get()
		return v
	}

	// finished settles a slot (Done applied, or declared lost); s.finished
	// additionally marks the Done-applied subset, which snapshots persist
	// and redials are acknowledged from. Slots the recovery already settled
	// never count toward remaining, and have no connection.
	remaining, lost := 0, 0
	finished := make([]bool, s.K) // per-site Done/lost bookkeeping
	live := make([]bool, s.K)     // per-site connection state
	epoch := make([]int, s.K)     // guards stale rejoin timers
	for i := range live {
		finished[i] = s.finished[i]
		live[i] = conns[i] != nil
		if !finished[i] {
			remaining++
		}
	}
	declareLost := func(site int) {
		finished[site] = true
		remaining--
		lost++
	}
	var processed int64
	var stopErr error // set when Shutdown, Kill, or a store failure ends the loop early
serve:
	for remaining > 0 {
		v := recv()
		switch ev := v.(type) {
		case shutdownReq:
			stopErr = ErrShutdown
			break serve
		case killReq:
			stopErr = ErrKilled
			break serve
		case rejoinReq:
			if s.finished[ev.site] {
				// The site's Done is already durable; it is redialing only
				// because a previous coordinator crashed before
				// acknowledging it. Acknowledge and hang up.
				var err error
				frame, err = wire.AppendFrame(frame[:0], wire.Resync{
					Round: wire.ResyncComplete, Arrivals: s.siteArrivals[ev.site]})
				if err == nil {
					if _, werr := ev.conn.Write(frame); werr == nil {
						s.ackDelivered[ev.site] = true
					}
				}
				ev.conn.Close()
				continue
			}
			if finished[ev.site] || live[ev.site] {
				// The slot is not open: the site finished, was declared
				// lost, or a previous connection is still considered live
				// (its reader has not reported the loss yet — the dialer
				// retries and will land once it has).
				ev.conn.Close()
				atomic.AddInt64(&s.Rejects, 1)
				continue
			}
			// Resume the slot: acknowledge with a Resync carrying the
			// coordinator's round and the site's last acknowledged arrival
			// count (control traffic, not charged), then replay the
			// protocol messages that bring a fresh site machine to the
			// current round (charged — recovery has a real communication
			// cost).
			epoch[ev.site]++
			conns[ev.site] = ev.conn
			live[ev.site] = true
			s.liveCount++
			atomic.AddInt64(&s.Rejoins, 1)
			var err error
			frame, err = wire.AppendFrame(frame[:0], wire.Resync{
				Round: s.coordRound(), Arrivals: s.siteArrivals[ev.site]})
			if err == nil {
				_, err = ev.conn.Write(frame)
			}
			_ = err // a re-crash is caught by the new reader
			if rs, ok := s.Coord.(proto.Resyncer); ok {
				rs.Resync(func(m proto.Message) { send(ev.site, m) })
				s.resyncs++
			}
			startReader(ev.site, ev.conn)
			continue
		case rejoinTimeout:
			if !finished[ev.site] && !live[ev.site] && epoch[ev.site] == ev.epoch {
				declareLost(ev.site)
			}
			continue
		case inspectReq:
			// On the loop: no frame is mid-application, so fn may query the
			// coordinator and the ledger coherently.
			ev.fn(s.metrics())
			close(ev.done)
			continue
		}
		cm := v.(runtime.FromMsg)
		if s.log != nil && cm.Msg != nil {
			// Write-ahead: durably log the frame before anything observes
			// it. Rejoin frames are connection control and never logged;
			// Done and Progress are logged so a recovery re-derives the
			// per-site arrival counts. A store failure aborts the run —
			// carrying on would silently void the durability contract.
			if _, ctl := cm.Msg.(wire.Rejoin); !ctl {
				if err := s.log.Log(cm.From, cm.Msg); err != nil {
					stopErr = err
					break serve
				}
			}
		}
		switch m := cm.Msg.(type) {
		case nil:
			if finished[cm.From] || !live[cm.From] {
				break // stale loss report for an already-settled slot
			}
			// Connection lost before Done: the slot goes dark. With a
			// rejoin window the run continues degraded and the slot waits;
			// without one the site is lost immediately (legacy behavior).
			conns[cm.From].Close() // release the dead descriptor now
			live[cm.From] = false
			s.liveCount--
			epoch[cm.From]++
			if s.RejoinWait <= 0 {
				declareLost(cm.From)
				break
			}
			site, e := cm.From, epoch[cm.From]
			time.AfterFunc(s.RejoinWait, func() {
				if s.serving.Load() {
					box.Put(rejoinTimeout{site: site, epoch: e})
				}
			})
		case wire.Done:
			// A misbehaving site repeating its Done frame must not
			// decrement remaining twice — that would end the run while a
			// healthy site is still streaming. First Done wins.
			if !finished[cm.From] {
				finished[cm.From] = true
				s.finished[cm.From] = true
				s.siteArrivals[cm.From] = m.Arrivals
				remaining--
			}
		case wire.Progress:
			// Control traffic: running arrival count for mid-run reports,
			// never charged to the protocol ledger.
			if !finished[cm.From] {
				s.siteArrivals[cm.From] = m.Arrivals
			}
		case wire.Rejoin:
			// A Rejoin frame on an established connection is protocol
			// abuse; drop it (the handshake path is the only way in).
		default:
			s.messagesUp++
			s.wordsUp += int64(cm.Msg.Words())
			s.Coord.Receive(cm.From, cm.Msg, send, broadcast)
			processed++
			if s.ReportEvery > 0 && processed%s.ReportEvery == 0 && s.Report != nil {
				s.Report(s.metrics())
			}
		}
	}
	w.flush() // ship whatever the final event left pending
	// A resumed run can end before a recovered-finished site redials: its
	// Done is durable from a previous incarnation, the crash ate its
	// completion ack, and its slot has no connection for the teardown ack
	// below to reach it on. Linger within the rejoin window answering those
	// redials, so every such site learns its work is durable instead of
	// exhausting its redial budget against a server that has already gone —
	// ending early once all have been told.
	if stopErr == nil && lost == 0 && s.RejoinWait > 0 {
		pending := 0
		for i := 0; i < s.K; i++ {
			if s.finished[i] && conns[i] == nil && !s.ackDelivered[i] {
				pending++
			}
		}
		if pending > 0 {
			timer := time.AfterFunc(s.RejoinWait, func() {
				if s.serving.Load() {
					box.Put(lingerTimeout{})
				}
			})
		linger:
			for pending > 0 {
				v := recv()
				switch ev := v.(type) {
				case lingerTimeout, shutdownReq:
					break linger
				case killReq:
					stopErr = ErrKilled
					break linger
				case inspectReq:
					ev.fn(s.metrics())
					close(ev.done)
				case rejoinReq:
					if !s.finished[ev.site] {
						ev.conn.Close()
						atomic.AddInt64(&s.Rejects, 1)
						continue
					}
					var err error
					frame, err = wire.AppendFrame(frame[:0], wire.Resync{
						Round: wire.ResyncComplete, Arrivals: s.siteArrivals[ev.site]})
					if err == nil {
						_, err = ev.conn.Write(frame)
					}
					ev.conn.Close()
					if err == nil && !s.ackDelivered[ev.site] {
						s.ackDelivered[ev.site] = true
						pending--
					}
				case runtime.FromMsg:
					// Late protocol frames from the still-draining readers
					// belong to the run; handle them exactly as the post-run
					// drain below would.
					switch ev.Msg.(type) {
					case nil, wire.Done, wire.Progress, wire.Rejoin:
					default:
						if s.log != nil {
							if err := s.log.Log(ev.From, ev.Msg); err != nil {
								stopErr = err
								break linger
							}
						}
						s.messagesUp++
						s.wordsUp += int64(ev.Msg.Words())
						s.Coord.Receive(ev.From, ev.Msg, send, broadcast)
					}
				}
			}
			timer.Stop()
			w.flush()
		}
	}
	// Every site has finished (or a stop event landed): stop accepting
	// rejoins, abort and join the handshakes still probing (so
	// Rejects/Rejoins really are final when Serve returns), and hang up so
	// the (still-draining) readers see EOF and exit, then collect them.
	s.serving.Store(false)
	stopHandshakes()
	// On any orderly exit, acknowledge each connected site with a final
	// Resync carrying its last applied arrival count before hanging up —
	// the durable-completion ack a reconnecting site's Close waits for.
	// With persistence the write-ahead log is synced first, so the ack
	// never promises more than the store holds. A kill sends nothing: the
	// missing ack is exactly what makes the sites redial the resumed
	// coordinator.
	if stopErr != ErrKilled {
		acked := s.log == nil
		if s.log != nil {
			if err := s.log.Sync(); err != nil {
				if stopErr == nil {
					stopErr = err
				}
			} else {
				acked = true
			}
		}
		if acked {
			for i, conn := range conns {
				if conn == nil {
					continue
				}
				var err error
				frame, err = wire.AppendFrame(frame[:0], wire.Resync{
					Round: wire.ResyncComplete, Arrivals: s.siteArrivals[i]})
				if err == nil {
					conn.Write(frame)
				}
			}
		}
	}
	for _, conn := range conns {
		if conn != nil {
			conn.Close()
		}
	}
	rg.Wait()
	// Protocol messages that were already received but queued behind the
	// final Done (e.g. a finished site's AdjustMsg reply to a late round
	// broadcast) still belong to the run — feed them to the coordinator so
	// the final state reflects everything the sites sent. The readers have
	// exited, so closing the box lets Get drain without blocking; sends
	// during the drain hit closed connections and are dropped, which is
	// fine — the sites are gone.
	box.Close()
	for {
		v, ok := box.Get()
		if !ok {
			break
		}
		cm, ok := v.(runtime.FromMsg)
		if !ok {
			if rj, isRejoin := v.(rejoinReq); isRejoin {
				rj.conn.Close() // a rejoin that raced run end
				atomic.AddInt64(&s.Rejects, 1)
			}
			if iq, isInspect := v.(inspectReq); isInspect {
				// An inspection that raced run end still gets an answer; the
				// frames drained so far are applied, the rest follow before
				// loopDone closes.
				iq.fn(s.metrics())
				close(iq.done)
			}
			continue
		}
		if stopErr == ErrKilled {
			continue // a killed coordinator loses its in-flight queue
		}
		switch cm.Msg.(type) {
		case nil, wire.Done, wire.Progress, wire.Rejoin: // control events, already accounted
		default:
			if s.log != nil {
				if err := s.log.Log(cm.From, cm.Msg); err != nil {
					if stopErr == nil {
						stopErr = err
					}
					continue // unloggable frames must not be applied
				}
			}
			s.messagesUp++
			s.wordsUp += int64(cm.Msg.Words())
			s.Coord.Receive(cm.From, cm.Msg, send, broadcast)
		}
	}
	// Seal the store on every exit except a simulated crash: a final
	// snapshot and sync make it a clean resume point (and bound a future
	// replay to zero frames). A kill leaves exactly the appended log, which
	// is the point of the drill.
	if s.log != nil && stopErr != ErrKilled {
		if err := s.log.Snapshot(); err != nil {
			if stopErr == nil {
				stopErr = err
			}
		} else if err := s.log.Sync(); err != nil && stopErr == nil {
			stopErr = err
		}
	}
	if stopErr != nil {
		return s.metrics(), stopErr
	}
	if lost > 0 {
		return s.metrics(), fmt.Errorf(
			"tcp: %d of %d sites disconnected before finishing; the final state is missing their data", lost, s.K)
	}
	return s.metrics(), nil
}

func (s *Server) metrics() runtime.Metrics {
	var arrivals int64
	for _, a := range s.siteArrivals {
		arrivals += a
	}
	m := runtime.Metrics{
		MessagesUp:     s.messagesUp,
		MessagesDown:   s.messagesDown,
		WordsUp:        s.wordsUp,
		WordsDown:      s.wordsDown,
		Broadcasts:     s.broadcasts,
		Arrivals:       arrivals,
		LiveSites:      s.liveCount,
		ReplayedFrames: s.replayed,
		Resyncs:        s.resyncs,
	}
	if s.log != nil {
		m.Snapshots = s.log.Snapshots()
	}
	return m
}

// SiteConn drives one protocol site machine in a site process, connected to
// a Server over TCP. Feed it with Arrive/ArriveBatch and Close it to send
// the Done frame. A background reader applies coordinator broadcasts to the
// site machine as they land; a mutex serializes the machine between the
// feeding goroutine and the reader.
//
// With AutoReconnect set, a connection that dies under the site (a network
// blip, a coordinator-side drop) is transparently re-established: the next
// failed send dials the server again with a Rejoin handshake, waits for
// its Resync, and retransmits — the protocols' absolute-state messages
// make the blip invisible beyond its communication cost. A site process
// that itself crashed uses RejoinSite from the replacement process instead.
type SiteConn struct {
	site   int
	k      int
	config uint64
	addr   string
	s      proto.Site

	// ProgressEvery makes the site ship a Progress control frame with its
	// running arrival count every that many arrivals, so the server's
	// mid-run reports show real ingestion progress instead of 0 until
	// Done. DialSite sets the default (DefaultProgressEvery); override —
	// or disable with a negative value — before the first Arrive.
	ProgressEvery int64

	// AutoReconnect turns on the reconnection loop: a failed send redials
	// the server with a Rejoin handshake (up to RedialAttempts tries) and
	// retransmits. Consecutive failed dials back off exponentially from
	// RedialWait up to RedialMaxWait, each wait jittered by a seeded
	// ±25% factor so sites dropped by one coordinator crash do not redial
	// in lockstep; a successful dial resets the schedule. The failure
	// streak persists across reconnect calls, so Close's Done re-send
	// loop continues the schedule instead of hammering a dead server.
	// Set before the first Arrive.
	AutoReconnect  bool
	RedialWait     time.Duration // backoff base; default DefaultRedialWait
	RedialMaxWait  time.Duration // backoff cap; default DefaultRedialMaxWait
	RedialAttempts int           // default DefaultRedialAttempts

	mu       sync.Mutex // guards s, frame, pend, conn, and conn writes
	conn     net.Conn
	frame    []byte
	pend     []byte // outbound frames coalesced until the section-end flush
	pendDone bool   // pend contains the Done frame (full recovery on failure)
	arrivals int64
	sendErr  error
	rejoins  int64
	resync   wire.Resync // last Resync received (rejoin handshakes)
	// redialTry is the consecutive-failed-dial streak driving the backoff
	// schedule; jitter is the seeded RNG behind the ±25% spread.
	redialTry int
	jitter    *stats.RNG

	// closing flips once Close has sent the Done frame. From then on a
	// failed reply to a late broadcast is best-effort (the server may
	// legitimately have hung up already) and neither reconnects nor sets
	// sendErr — Close's ack-wait loop owns recovery of the Done itself.
	closing bool

	readers sync.WaitGroup
}

// DefaultProgressEvery is the Progress-frame cadence DialSite installs.
const DefaultProgressEvery = 4096

// Reconnection-loop defaults: up to 40 redials, exponentially backed off
// from 50ms to a 500ms cap (roughly 18s of outage budget, most of it at
// the cap).
const (
	DefaultRedialWait     = 50 * time.Millisecond
	DefaultRedialMaxWait  = 500 * time.Millisecond
	DefaultRedialAttempts = 40
)

// DialSite connects site machine s with index site to the server at addr.
// config must match the server's configuration fingerprint (see
// Server.Config); pass 0 when neither side fingerprints.
func DialSite(addr string, site, k int, config uint64, s proto.Site) (*SiteConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	sc := newSiteConn(addr, site, k, config, s, conn)
	sc.frame, err = wire.AppendFrame(sc.frame[:0], wire.Hello{Site: site, K: k, Config: config})
	if err == nil {
		_, err = conn.Write(sc.frame)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: handshake: %w", err)
	}
	sc.startReader(conn)
	return sc, nil
}

// RejoinSite reconnects a crashed site's replacement process: it dials the
// server with a Rejoin handshake and returns once the server's Resync
// lands. s is a freshly built site machine (the crash lost the old one);
// the Resync replay brings it to the coordinator's current round, and the
// returned Resync carries the server's last acknowledged arrival count for
// this slot — a replayable stream source replays from 0 (the protocols'
// absolute-state messages make that reconverge exactly), a non-replayable
// one resumes and accepts the documented gap. arrivals is this process's
// local count (0 after a full crash).
func RejoinSite(addr string, site, k int, config uint64, arrivals int64, s proto.Site) (*SiteConn, wire.Resync, error) {
	conn, rs, err := dialRejoin(addr, site, k, config, arrivals)
	if err != nil {
		return nil, wire.Resync{}, err
	}
	sc := newSiteConn(addr, site, k, config, s, conn)
	sc.resync, sc.rejoins = rs, 1
	sc.startReader(conn)
	return sc, rs, nil
}

func newSiteConn(addr string, site, k int, config uint64, s proto.Site, conn net.Conn) *SiteConn {
	return &SiteConn{site: site, k: k, config: config, addr: addr, s: s, conn: conn,
		ProgressEvery:  DefaultProgressEvery,
		RedialWait:     DefaultRedialWait,
		RedialMaxWait:  DefaultRedialMaxWait,
		RedialAttempts: DefaultRedialAttempts,
		// Deterministic per-slot jitter stream: reproducible schedules in
		// tests, decorrelated across the fleet's (site, config) pairs.
		jitter: stats.New(uint64(site)*0x9e3779b97f4a7c15 ^ config ^ 0x72656469616c),
	}
}

// redialDelay is the wait before a redial whose consecutive-failure streak
// is try (0-based): exponential backoff from base, capped at max, scaled
// by a jitter factor in [0.75, 1.25) derived from the uniform draw in
// [0, 1). A non-positive base disables waiting (tests that hammer a local
// listener on purpose).
func redialDelay(base, max time.Duration, try int, jitter float64) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < try; i++ {
		d *= 2
		if max > 0 && d >= max {
			break
		}
	}
	if max > 0 && d > max {
		d = max
	}
	return time.Duration((0.75 + jitter/2) * float64(d))
}

// dialRejoin performs one Rejoin handshake: dial, send the Rejoin frame,
// wait for the server's Resync. A server that rejects (slot not open, run
// over) just closes the connection, which surfaces here as a read error.
func dialRejoin(addr string, site, k int, config uint64, arrivals int64) (net.Conn, wire.Resync, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, wire.Resync{}, fmt.Errorf("tcp: rejoin dial %s: %w", addr, err)
	}
	frame, err := wire.AppendFrame(nil, wire.Rejoin{Site: site, K: k, Config: config, Arrivals: arrivals})
	if err == nil {
		_, err = conn.Write(frame)
	}
	if err != nil {
		conn.Close()
		return nil, wire.Resync{}, fmt.Errorf("tcp: rejoin handshake: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, _, err := wire.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, wire.Resync{}, fmt.Errorf("tcp: rejoin rejected: %w", err)
	}
	rs, ok := m.(wire.Resync)
	if !ok {
		conn.Close()
		return nil, wire.Resync{}, fmt.Errorf("tcp: rejoin handshake: unexpected %#v", m)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, rs, nil
}

// pendFlushCap bounds how many encoded bytes coalesce before out forces an
// early flush mid-section.
const pendFlushCap = 64 << 10

// out queues one site message in the pending buffer; the section-end flush
// (end of an Arrive/ArriveBatch call, end of one received broadcast's
// handling) ships the whole run in one write. The Done frame flushes
// immediately — Close's ack protocol needs it on the wire, not in a buffer.
// Callers hold sc.mu.
func (sc *SiteConn) out(m proto.Message) {
	var err error
	sc.pend, err = wire.AppendFrame(sc.pend, m)
	if err != nil {
		if sc.sendErr == nil {
			sc.sendErr = err
		}
		return
	}
	if _, isDone := m.(wire.Done); isDone {
		sc.pendDone = true
		sc.flush()
		return
	}
	if len(sc.pend) >= pendFlushCap {
		sc.flush()
	}
}

// flush ships the pending frames, driving the reconnection loop on
// failure: a rejoin re-establishes the connection and the whole pending
// run is retransmitted (the protocols' absolute-state messages make a
// possible duplicate prefix harmless, exactly as the old per-message
// retransmit did). Once closing, a failed run without the Done frame is
// best-effort — the server may legitimately have hung up already — and
// neither reconnects nor sets sendErr. Callers hold sc.mu.
func (sc *SiteConn) flush() {
	if len(sc.pend) == 0 {
		return
	}
	_, err := sc.conn.Write(sc.pend)
	if err != nil && sc.closing && !sc.pendDone {
		sc.pend = sc.pend[:0]
		return
	}
	if err != nil && sc.AutoReconnect {
		if err = sc.reconnect(); err == nil {
			_, err = sc.conn.Write(sc.pend) // retransmit on the fresh connection
		}
	}
	if err != nil && sc.sendErr == nil {
		sc.sendErr = err
	}
	sc.pend = sc.pend[:0]
	sc.pendDone = false
}

// reconnect re-establishes the connection with a Rejoin handshake; callers
// hold sc.mu. The old reader exits on its own once the dead connection is
// closed. The first dial of a fresh failure streak is immediate; each
// failure then advances the persistent backoff schedule (see redialDelay),
// which a successful dial resets.
func (sc *SiteConn) reconnect() error {
	sc.conn.Close()
	attempts := sc.RedialAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if sc.redialTry > 0 {
			if d := redialDelay(sc.RedialWait, sc.RedialMaxWait, sc.redialTry-1, sc.jitter.Float64()); d > 0 {
				time.Sleep(d)
			}
		}
		conn, rs, err := dialRejoin(sc.addr, sc.site, sc.k, sc.config, sc.arrivals)
		if err != nil {
			sc.redialTry++
			lastErr = err
			continue
		}
		sc.redialTry = 0
		sc.conn = conn
		sc.resync = rs
		sc.rejoins++
		sc.startReader(conn)
		return nil
	}
	return fmt.Errorf("tcp: site %d could not rejoin after %d attempts: %w", sc.site, attempts, lastErr)
}

// startReader launches a reader for one connection generation. It applies
// coordinator messages to the site machine as they arrive and exits when
// its connection dies (a reconnect starts a successor for the new one).
func (sc *SiteConn) startReader(conn net.Conn) {
	sc.readers.Add(1)
	go func() {
		defer sc.readers.Done()
		var buf []byte
		for {
			m, b, err := wire.ReadFrame(conn, buf)
			buf = b
			if err != nil {
				return
			}
			if rs, ctl := m.(wire.Resync); ctl {
				// Control traffic; handshakes consume theirs synchronously.
				// Mid-stream, a Resync is the server's completion ack —
				// record it so Close can tell an orderly hangup from a
				// coordinator crash.
				sc.mu.Lock()
				sc.resync = rs
				sc.mu.Unlock()
				continue
			}
			sc.mu.Lock()
			sc.s.Receive(m, sc.out)
			sc.flush()
			sc.mu.Unlock()
		}
	}()
}

// Rejoins returns how many times this connection re-established itself (or
// was created by RejoinSite).
func (sc *SiteConn) Rejoins() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.rejoins
}

// LastResync returns the most recent Resync handshake received (zero if
// the connection never rejoined).
func (sc *SiteConn) LastResync() wire.Resync {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.resync
}

// maybeProgress ships a Progress frame when the arrival count crossed a
// ProgressEvery boundary since prev; callers hold sc.mu.
func (sc *SiteConn) maybeProgress(prev int64) {
	if pe := sc.ProgressEvery; pe > 0 && prev/pe != sc.arrivals/pe {
		sc.out(wire.Progress{Arrivals: sc.arrivals})
	}
}

// Arrive feeds one element to the site machine.
func (sc *SiteConn) Arrive(item int64, value float64) {
	sc.mu.Lock()
	prev := sc.arrivals
	sc.arrivals++
	sc.s.Arrive(item, value, sc.out)
	sc.maybeProgress(prev)
	sc.flush()
	sc.mu.Unlock()
}

// ArriveBatch feeds count identical elements through the proto.BatchSite
// fast path.
func (sc *SiteConn) ArriveBatch(item int64, value float64, count int64) {
	sc.mu.Lock()
	prev := sc.arrivals
	for count > 0 {
		done := proto.ArriveChunk(sc.s, item, value, count, sc.out)
		sc.arrivals += done
		count -= done
	}
	sc.maybeProgress(prev)
	sc.flush()
	sc.mu.Unlock()
}

// Arrivals returns the number of elements fed so far.
func (sc *SiteConn) Arrivals() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.arrivals
}

// Abort drops the connection without a Done frame, simulating a site
// process dying mid-stream (tests and chaos harnesses; a real crash has
// the same effect). It never reconnects, whatever AutoReconnect says.
func (sc *SiteConn) Abort() {
	sc.mu.Lock()
	sc.AutoReconnect = false
	conn := sc.conn
	sc.mu.Unlock()
	conn.Close()
	sc.readers.Wait()
}

// Close sends the Done frame, waits for the server to hang up, and closes
// the connection. The server hangs up only after every site has sent Done,
// so Close blocks until the whole distributed run finishes — keeping this
// site's machine responsive to round broadcasts (and their reply messages)
// triggered by the other sites' remaining traffic. It returns the first
// send error seen, if any.
//
// The server acknowledges an orderly hangup with a final Resync covering
// this site's arrival count. With AutoReconnect set, a hangup without that
// ack means the coordinator may have crashed before the Done was durably
// applied: Close redials (riding the same rejoin loop as mid-stream
// failures) and repeats the Done until a resumed coordinator acknowledges
// it, or the redial budget decides nobody is coming back.
func (sc *SiteConn) Close() error {
	sc.mu.Lock()
	sc.closing = true
	sc.out(wire.Done{Arrivals: sc.arrivals})
	sc.mu.Unlock()
	acked := func() bool {
		return sc.resync.Round == wire.ResyncComplete && sc.resync.Arrivals >= sc.arrivals
	}
	for {
		sc.readers.Wait() // the connection ended: orderly hangup or a crash
		sc.mu.Lock()
		if acked() || !sc.AutoReconnect || sc.sendErr != nil {
			break
		}
		if err := sc.reconnect(); err != nil {
			sc.sendErr = err // the coordinator never came back
			break
		}
		if acked() {
			break // the rejoin handshake already acknowledged our Done
		}
		sc.out(wire.Done{Arrivals: sc.arrivals})
		sc.mu.Unlock()
	}
	sc.conn.Close()
	err := sc.sendErr
	sc.mu.Unlock()
	return err
}
