package tcp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/wire"
)

// This file is the genuinely distributed mode: a coordinator process
// (Server) and k site processes (SiteConn) running the paper's protocols
// over real TCP connections, exchanging the same wire frames as the
// in-process TCPLoopback transport. cmd/tracksim's serve and connect
// subcommands are thin wrappers around these two types.
//
// Unlike the three in-process transports, the distributed mode cannot
// enforce the paper's instant-communication idealization — a real network
// has latency, so elements keep arriving while messages are in flight. The
// protocols tolerate this (their state machines are asynchronous by
// construction); the accounting and estimates simply reflect whatever
// interleaving the network produced.

// Server hosts a protocol's coordinator half for k remote site processes.
type Server struct {
	// Coord is the coordinator state machine (required).
	Coord proto.Coordinator
	// K is the number of site processes to expect (required, >= 1).
	K int
	// Config is an optional fingerprint of the protocol configuration
	// (problem, algorithm, ε, rescale, ...). Sites must dial with the same
	// value in their Hello frame; a mismatch rejects the site, so a
	// mis-deployed pair fails loudly instead of silently dropping every
	// protocol message. Zero on both sides matches.
	Config uint64
	// ReportEvery, when positive, invokes Report after every ReportEvery
	// processed protocol messages. Report runs on the coordinator loop, so
	// it may safely query the coordinator machine. The Arrivals field of
	// the reported metrics carries the sites' running counts (from their
	// periodic Progress frames, see SiteConn.ProgressEvery), so mid-run
	// reports show real ingestion progress rather than 0 until Done.
	ReportEvery int64
	Report      func(m runtime.Metrics)

	// HandshakeTimeout bounds how long an accepted connection may take to
	// deliver its Hello frame before it is rejected (0 = default 10s). A
	// connection that sends garbage, or nothing at all — a port scan, a
	// health check — is dropped and accepting continues; it cannot stall
	// the run forever or abort it.
	HandshakeTimeout time.Duration

	// Rejects counts connections dropped during the handshake (garbage
	// frames, non-Hello traffic, timeouts, dialers aborted when the K
	// sites finished assembling without them). Every counted connection
	// settles before the message loop starts, and connections accepted
	// after assembly are closed without being counted, so the field is
	// final once Serve returns; plain reads are safe then.
	Rejects int64

	// Cost counters; only the Serve goroutine touches them (sends,
	// dispatch, and the Report callback all run there), so they are plain
	// fields — unlike runtime.Fabric, no cross-goroutine sharing exists.
	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts               int64
	siteArrivals             []int64 // running counts from Progress frames, final from Done
}

// assemble accepts connections on ln until all s.K sites have completed
// their Hello handshake, filling conns. Each accepted connection is
// handshaken on its own goroutine with a read deadline, so a stray
// connection — a port scanner, a health check, a client speaking another
// protocol, a dialer that never speaks — costs nothing serially: it is
// rejected (and counted in Rejects) while legitimate sites assemble past
// it. Only a well-formed Hello that contradicts the deployment (bad or
// duplicate site index, k or fingerprint mismatch) is a loud, fatal
// error. Accepting continues in the background until the caller closes
// ln; post-assembly dials are closed immediately.
func (s *Server) assemble(ln net.Listener, conns []net.Conn) error {
	timeout := s.HandshakeTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	var (
		mu         sync.Mutex
		registered int
		fatalErr   error
		done       bool
		inflight   = map[net.Conn]bool{}
		hsWG       sync.WaitGroup
	)
	assembled := make(chan struct{})
	// finish, called with mu held, ends assembly (success or fatal) and
	// aborts the handshakes still in flight — a connection that has not
	// produced its Hello by the time all K sites are present is not one of
	// them, so it is rejected (and counted) right here; closing it
	// unblocks its reader immediately.
	finish := func() {
		if done {
			return
		}
		done = true
		for conn := range inflight {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
		}
		close(assembled)
	}

	handshake := func(conn net.Conn) {
		defer hsWG.Done()
		conn.SetReadDeadline(time.Now().Add(timeout))
		m, _, err := wire.ReadFrame(conn, nil)
		mu.Lock()
		defer mu.Unlock()
		delete(inflight, conn)
		if done {
			// Assembly ended while this handshake was in flight; finish
			// already closed and counted the connection.
			conn.Close()
			return
		}
		if err != nil {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		hello, ok := m.(wire.Hello)
		if !ok {
			conn.Close()
			atomic.AddInt64(&s.Rejects, 1)
			return
		}
		switch {
		case hello.Site < 0 || hello.Site >= s.K || conns[hello.Site] != nil:
			fatalErr = fmt.Errorf("tcp: serve handshake: unexpected %#v", m)
		case hello.K != s.K:
			fatalErr = fmt.Errorf("tcp: site %d dialed with k=%d, server has k=%d",
				hello.Site, hello.K, s.K)
		case hello.Config != s.Config:
			fatalErr = fmt.Errorf(
				"tcp: site %d dialed with configuration fingerprint %#x, server has %#x (mismatched problem/algorithm/ε?)",
				hello.Site, hello.Config, s.Config)
		default:
			conn.SetReadDeadline(time.Time{})
			conns[hello.Site] = conn
			registered++
			if registered == s.K {
				finish()
			}
			return
		}
		conn.Close()
		finish()
	}

	go func() {
		for {
			conn, err := ln.Accept()
			mu.Lock()
			if err != nil {
				if !done {
					fatalErr = fmt.Errorf("tcp: serve accept: %w", err)
					finish()
				}
				mu.Unlock()
				return
			}
			if done {
				mu.Unlock()
				conn.Close()
				continue
			}
			inflight[conn] = true
			hsWG.Add(1)
			mu.Unlock()
			go handshake(conn)
		}
	}()

	<-assembled
	// Every pre-assembly connection settles before the message loop starts
	// (aborted handshakes return promptly — finish closed their conns).
	hsWG.Wait()
	mu.Lock()
	defer mu.Unlock()
	return fatalErr
}

// Serve accepts s.K site connections on ln, runs the coordinator until
// every site has sent its Done frame, closes the connections, and returns
// the final cost ledger. The caller owns ln.
func (s *Server) Serve(ln net.Listener) (runtime.Metrics, error) {
	if s.Coord == nil || s.K < 1 {
		return runtime.Metrics{}, fmt.Errorf("tcp: server needs a coordinator and K >= 1")
	}
	conns := make([]net.Conn, s.K)
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
	}()

	s.siteArrivals = make([]int64, s.K)
	if err := s.assemble(ln, conns); err != nil {
		return runtime.Metrics{}, err
	}

	// Per-site readers feed one coordinator loop; writes to the sites all
	// happen on that loop, so each connection has a single reader and a
	// single writer. A reader keeps draining past the site's Done frame: a
	// finished site still answers round broadcasts triggered by the other
	// sites' traffic (e.g. the count tracker's AdjustMsg re-randomization),
	// and those protocol messages must reach the coordinator. Readers exit
	// only when their connection ends — which Serve forces by closing every
	// connection once all k sites have reported Done.
	box := runtime.NewMailbox()
	var rg sync.WaitGroup
	for i := range conns {
		rg.Add(1)
		go func(i int) {
			defer rg.Done()
			doneSeen := false
			var buf []byte
			for {
				m, b, err := wire.ReadFrame(conns[i], buf)
				buf = b
				if err != nil {
					if !doneSeen {
						box.Put(runtime.FromMsg{From: i, Msg: nil}) // site lost
					}
					return
				}
				if _, done := m.(wire.Done); done {
					doneSeen = true
				}
				box.Put(runtime.FromMsg{From: i, Msg: m})
			}
		}(i)
	}

	var frame []byte
	send := func(to int, m proto.Message) {
		s.messagesDown++
		s.wordsDown += int64(m.Words())
		var err error
		frame, err = wire.AppendFrame(frame[:0], m)
		if err == nil {
			_, err = conns[to].Write(frame)
		}
		_ = err // a vanished site cannot be helped; its reader reports it
	}
	broadcast := func(m proto.Message) {
		s.broadcasts++
		for to := range conns {
			send(to, m)
		}
	}

	remaining, lost := s.K, 0
	finished := make([]bool, s.K) // per-site Done/lost bookkeeping
	var processed int64
	for remaining > 0 {
		v, _ := box.Get()
		cm := v.(runtime.FromMsg)
		switch m := cm.Msg.(type) {
		case nil:
			if !finished[cm.From] { // connection lost before Done
				finished[cm.From] = true
				remaining--
				lost++
			}
		case wire.Done:
			// A misbehaving site repeating its Done frame must not
			// decrement remaining twice — that would end the run while a
			// healthy site is still streaming. First Done wins.
			if !finished[cm.From] {
				finished[cm.From] = true
				s.siteArrivals[cm.From] = m.Arrivals
				remaining--
			}
		case wire.Progress:
			// Control traffic: running arrival count for mid-run reports,
			// never charged to the protocol ledger.
			if !finished[cm.From] {
				s.siteArrivals[cm.From] = m.Arrivals
			}
		default:
			s.messagesUp++
			s.wordsUp += int64(cm.Msg.Words())
			s.Coord.Receive(cm.From, cm.Msg, send, broadcast)
			processed++
			if s.ReportEvery > 0 && processed%s.ReportEvery == 0 && s.Report != nil {
				s.Report(s.metrics())
			}
		}
	}
	// Every site has finished: hang up so the (still-draining) readers see
	// EOF and exit, then collect them.
	for _, conn := range conns {
		conn.Close()
	}
	rg.Wait()
	// Protocol messages that were already received but queued behind the
	// final Done (e.g. a finished site's AdjustMsg reply to a late round
	// broadcast) still belong to the run — feed them to the coordinator so
	// the final state reflects everything the sites sent. The readers have
	// exited, so closing the box lets Get drain without blocking; sends
	// during the drain hit closed connections and are dropped, which is
	// fine — the sites are gone.
	box.Close()
	for {
		v, ok := box.Get()
		if !ok {
			break
		}
		cm := v.(runtime.FromMsg)
		switch cm.Msg.(type) {
		case nil, wire.Done, wire.Progress: // control events, already accounted
		default:
			s.messagesUp++
			s.wordsUp += int64(cm.Msg.Words())
			s.Coord.Receive(cm.From, cm.Msg, send, broadcast)
		}
	}
	if lost > 0 {
		return s.metrics(), fmt.Errorf(
			"tcp: %d of %d sites disconnected before finishing; the final state is missing their data", lost, s.K)
	}
	return s.metrics(), nil
}

func (s *Server) metrics() runtime.Metrics {
	var arrivals int64
	for _, a := range s.siteArrivals {
		arrivals += a
	}
	return runtime.Metrics{
		MessagesUp:   s.messagesUp,
		MessagesDown: s.messagesDown,
		WordsUp:      s.wordsUp,
		WordsDown:    s.wordsDown,
		Broadcasts:   s.broadcasts,
		Arrivals:     arrivals,
	}
}

// SiteConn drives one protocol site machine in a site process, connected to
// a Server over TCP. Feed it with Arrive/ArriveBatch and Close it to send
// the Done frame. A background reader applies coordinator broadcasts to the
// site machine as they land; a mutex serializes the machine between the
// feeding goroutine and the reader.
type SiteConn struct {
	site int
	s    proto.Site
	conn net.Conn

	// ProgressEvery makes the site ship a Progress control frame with its
	// running arrival count every that many arrivals, so the server's
	// mid-run reports show real ingestion progress instead of 0 until
	// Done. DialSite sets the default (DefaultProgressEvery); override —
	// or disable with a negative value — before the first Arrive.
	ProgressEvery int64

	mu       sync.Mutex // guards s, frame, and conn writes
	frame    []byte
	arrivals int64
	sendErr  error

	readerDone chan struct{}
}

// DefaultProgressEvery is the Progress-frame cadence DialSite installs.
const DefaultProgressEvery = 4096

// DialSite connects site machine s with index site to the server at addr.
// config must match the server's configuration fingerprint (see
// Server.Config); pass 0 when neither side fingerprints.
func DialSite(addr string, site, k int, config uint64, s proto.Site) (*SiteConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	sc := &SiteConn{site: site, s: s, conn: conn,
		ProgressEvery: DefaultProgressEvery, readerDone: make(chan struct{})}
	sc.frame, err = wire.AppendFrame(sc.frame[:0], wire.Hello{Site: site, K: k, Config: config})
	if err == nil {
		_, err = conn.Write(sc.frame)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcp: handshake: %w", err)
	}
	go sc.reader()
	return sc, nil
}

// out ships one site message; callers hold sc.mu.
func (sc *SiteConn) out(m proto.Message) {
	var err error
	sc.frame, err = wire.AppendFrame(sc.frame[:0], m)
	if err == nil {
		_, err = sc.conn.Write(sc.frame)
	}
	if err != nil && sc.sendErr == nil {
		sc.sendErr = err
	}
}

// reader applies coordinator messages to the site machine as they arrive.
func (sc *SiteConn) reader() {
	defer close(sc.readerDone)
	var buf []byte
	for {
		m, b, err := wire.ReadFrame(sc.conn, buf)
		buf = b
		if err != nil {
			return
		}
		sc.mu.Lock()
		sc.s.Receive(m, sc.out)
		sc.mu.Unlock()
	}
}

// maybeProgress ships a Progress frame when the arrival count crossed a
// ProgressEvery boundary since prev; callers hold sc.mu.
func (sc *SiteConn) maybeProgress(prev int64) {
	if pe := sc.ProgressEvery; pe > 0 && prev/pe != sc.arrivals/pe {
		sc.out(wire.Progress{Arrivals: sc.arrivals})
	}
}

// Arrive feeds one element to the site machine.
func (sc *SiteConn) Arrive(item int64, value float64) {
	sc.mu.Lock()
	prev := sc.arrivals
	sc.arrivals++
	sc.s.Arrive(item, value, sc.out)
	sc.maybeProgress(prev)
	sc.mu.Unlock()
}

// ArriveBatch feeds count identical elements through the proto.BatchSite
// fast path.
func (sc *SiteConn) ArriveBatch(item int64, value float64, count int64) {
	sc.mu.Lock()
	prev := sc.arrivals
	for count > 0 {
		done := proto.ArriveChunk(sc.s, item, value, count, sc.out)
		sc.arrivals += done
		count -= done
	}
	sc.maybeProgress(prev)
	sc.mu.Unlock()
}

// Arrivals returns the number of elements fed so far.
func (sc *SiteConn) Arrivals() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.arrivals
}

// Abort drops the connection without a Done frame, simulating a site
// process dying mid-stream (tests; a real crash has the same effect).
func (sc *SiteConn) Abort() {
	sc.conn.Close()
	<-sc.readerDone
}

// Close sends the Done frame, waits for the server to hang up, and closes
// the connection. The server hangs up only after every site has sent Done,
// so Close blocks until the whole distributed run finishes — keeping this
// site's machine responsive to round broadcasts (and their reply messages)
// triggered by the other sites' remaining traffic. It returns the first
// send error seen, if any.
func (sc *SiteConn) Close() error {
	sc.mu.Lock()
	sc.out(wire.Done{Arrivals: sc.arrivals})
	err := sc.sendErr
	sc.mu.Unlock()
	<-sc.readerDone
	sc.conn.Close()
	return err
}
