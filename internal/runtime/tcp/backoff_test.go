package tcp

import (
	"testing"
	"time"
)

// TestRedialDelaySchedule pins the deterministic backoff shape: with the
// jitter draw at its midpoint (factor exactly 1.0) the schedule doubles
// from the base and parks at the cap.
func TestRedialDelaySchedule(t *testing.T) {
	const base, max = 50 * time.Millisecond, 500 * time.Millisecond
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // 800ms clamped to the cap
		500 * time.Millisecond, // parked
		500 * time.Millisecond,
	}
	for try, w := range want {
		if got := redialDelay(base, max, try, 0.5); got != w {
			t.Errorf("try %d: delay %v, want %v", try, got, w)
		}
	}
}

func TestRedialDelayJitterBounds(t *testing.T) {
	const base, max = 50 * time.Millisecond, 500 * time.Millisecond
	for try := 0; try < 8; try++ {
		raw := redialDelay(base, max, try, 0.5)
		lo := redialDelay(base, max, try, 0)
		hi := redialDelay(base, max, try, 1-1e-12)
		if lo != time.Duration(0.75*float64(raw)) {
			t.Errorf("try %d: jitter floor %v, want 0.75×%v", try, lo, raw)
		}
		if hi < raw || hi >= time.Duration(1.25*float64(raw))+1 {
			t.Errorf("try %d: jitter ceiling %v outside [%v, 1.25×%v)", try, hi, raw, raw)
		}
	}
}

func TestRedialDelayEdgeCases(t *testing.T) {
	if d := redialDelay(0, time.Second, 3, 0.5); d != 0 {
		t.Errorf("zero base: delay %v, want 0", d)
	}
	if d := redialDelay(-time.Second, time.Second, 3, 0.5); d != 0 {
		t.Errorf("negative base: delay %v, want 0", d)
	}
	// No cap: pure doubling.
	if d := redialDelay(50*time.Millisecond, 0, 10, 0.5); d != 51200*time.Millisecond {
		t.Errorf("uncapped try 10: delay %v, want 51.2s", d)
	}
	// Cap below base clamps immediately.
	if d := redialDelay(time.Second, 100*time.Millisecond, 0, 0.5); d != 100*time.Millisecond {
		t.Errorf("cap below base: delay %v, want the cap", d)
	}
	// Monotone non-decreasing in the failure streak for a fixed draw.
	prev := time.Duration(0)
	for try := 0; try < 20; try++ {
		d := redialDelay(50*time.Millisecond, 500*time.Millisecond, try, 0.25)
		if d < prev {
			t.Fatalf("schedule regressed at try %d: %v after %v", try, d, prev)
		}
		prev = d
	}
}
