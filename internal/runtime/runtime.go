// Package runtime is the seam between the tracking protocols and the
// message fabrics that host them.
//
// A protocol (internal/proto) is a set of passive state machines; a
// Transport is the fabric that carries their messages and injects arrivals:
//
//   - the sequential exact-accounting simulator (internal/sim);
//   - the goroutine-per-site concurrent runtime (internal/netsim);
//   - the TCP-loopback transport (internal/runtime/tcp), which frames
//     wire-encoded messages (internal/wire) over real sockets.
//
// All three preserve the paper's instant-communication model the same way:
// an arrival is injected only after the previous cascade has fully
// quiesced, so for a fixed seed the per-link message sequences, the cost
// Metrics, and every query answer are identical on every transport (the
// transport-independence test in the root package enforces this).
//
// The Runtime wrapper owns the choreography the facade needs — quiesce
// before reading metrics, probe space high-water marks at quiescent
// instants — so disttrack.Options can switch fabrics without the facade
// knowing any transport's private protocol.
//
// The tcp subpackage also hosts the genuinely distributed mode: a
// coordinator process (tcp.Server) and k site processes (tcp.SiteConn)
// exchanging the same wire frames over real TCP connections, used by
// cmd/tracksim serve / connect.
package runtime

import "disttrack/internal/proto"

// Metrics is the cost ledger of one run, in the paper's units. It is shared
// by every transport (internal/sim and internal/netsim alias it).
type Metrics struct {
	MessagesUp   int64 // site -> coordinator messages
	MessagesDown int64 // coordinator -> site messages (a broadcast counts k)
	WordsUp      int64
	WordsDown    int64
	Broadcasts   int64 // broadcast operations (before the k factor)
	Arrivals     int64

	// MaxSiteSpace is the high-water mark of the maximum per-site space
	// observed at probe instants; MaxCoordSpace likewise for the
	// coordinator. The sequential transport probes every SpaceProbeEvery
	// arrivals; the concurrent transports probe at quiescent instants on
	// the same cadence (and always when metrics are read), so the marks are
	// meaningful on every transport.
	MaxSiteSpace  int
	MaxCoordSpace int

	// LiveSites is the number of sites currently reachable from the
	// coordinator: k on a healthy transport, fewer while a fault plan has
	// sites killed or partitioned (in-process fault middleware) or while
	// crashed site processes have not rejoined (distributed mode). Queries
	// made while LiveSites < k cover only the live sites' recent data —
	// the documented partial-coverage degradation.
	LiveSites int

	// Durability counters (internal/persist), zero when persistence is
	// off: Snapshots is the number of coordinator-state snapshots taken
	// over the store's lifetime, ReplayedFrames the write-ahead-log frames
	// replayed by the most recent recovery, and Resyncs the site resync
	// replays served (rejoins answered with state replay — distributed
	// mode and in-process coordinator restarts).
	Snapshots      int64
	ReplayedFrames int64
	Resyncs        int64
}

// Messages returns the total message count.
func (m Metrics) Messages() int64 { return m.MessagesUp + m.MessagesDown }

// Words returns the total word count.
func (m Metrics) Words() int64 { return m.WordsUp + m.WordsDown }

// Tap observes every protocol message a transport carries, in delivery
// order per link. A link is one site's duplex connection to the
// coordinator: calls for one (site, direction) pair are ordered and never
// concurrent, but calls for different links may be concurrent on the
// concurrent transports. Transport control traffic (handshakes, frames'
// envelopes) is not reported. Install with Transport.SetTap before the
// first arrival.
type Tap interface {
	// Up observes a site -> coordinator message.
	Up(from int, m proto.Message)
	// Down observes a coordinator -> site message (one call per receiving
	// site for a broadcast).
	Down(to int, m proto.Message)
}

// Transport hosts one mounted protocol: it injects arrivals into site
// machines, carries site <-> coordinator messages, enforces the
// instant-communication model (Arrive returns only after the cascade has
// quiesced), and keeps the cost ledger.
//
// Calls are not safe for concurrent use: one goroutine feeds a transport.
// Callers that need many feeding goroutines put internal/ingest's Frontend
// in front — it stages concurrent arrivals and drains them through a
// single goroutine, keeping this contract intact.
type Transport interface {
	// Arrive injects one element at site and returns after the resulting
	// message cascade has fully quiesced.
	Arrive(site int, item int64, value float64)

	// ArriveBatch injects count identical elements at site, equivalent to
	// count Arrive calls but with work proportional to the messages the
	// batch triggers (proto.BatchSite fast path).
	ArriveBatch(site int, item int64, value float64, count int64)

	// Quiesce blocks until no message is in flight. Arrive already
	// quiesces; this is exposed for callers reading protocol state.
	Quiesce()

	// Probe samples per-site and coordinator space into the Metrics
	// high-water marks. The transport must be quiescent.
	Probe()

	// Metrics returns a snapshot of the cost ledger. Call after Quiesce
	// for a consistent view.
	Metrics() Metrics

	// SetTap installs a message observer. Must be called before the first
	// arrival; a nil tap removes it.
	SetTap(Tap)

	// Close releases the transport's resources (goroutines, sockets). The
	// transport must be quiescent and must not be used afterwards.
	Close()
}

// Runtime hosts one protocol on one transport and owns the choreography the
// public facade relies on: metrics reads quiesce and probe first, so space
// high-water marks are populated on every transport.
type Runtime struct {
	t Transport
}

// New wraps a transport carrying an already-mounted protocol.
func New(t Transport) *Runtime { return &Runtime{t: t} }

// Transport returns the underlying transport.
func (r *Runtime) Transport() Transport { return r.t }

// Arrive injects one element at site.
func (r *Runtime) Arrive(site int, item int64, value float64) {
	r.t.Arrive(site, item, value)
}

// ArriveBatch injects count identical elements at site.
func (r *Runtime) ArriveBatch(site int, item int64, value float64, count int64) {
	r.t.ArriveBatch(site, item, value, count)
}

// Metrics quiesces, probes space at the quiescent instant, and returns the
// ledger.
func (r *Runtime) Metrics() Metrics {
	r.t.Quiesce()
	r.t.Probe()
	return r.t.Metrics()
}

// SetTap installs a message observer on the transport (before any arrival).
func (r *Runtime) SetTap(t Tap) { r.t.SetTap(t) }

// Close shuts the transport down.
func (r *Runtime) Close() { r.t.Close() }
