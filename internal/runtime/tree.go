package runtime

// Tree is the hierarchical topology: leaf sites are sharded across
// independent group fabrics whose coordinators are proto.Aggregators, and a
// root fabric hosts the top-level protocol whose "sites" are the
// aggregators' parent-facing halves. Each level is an ordinary Transport —
// any of the three fabrics, chosen by the factory — so per-link FIFO, the
// quiescence barrier, cost accounting, and the fault middleware seam all
// come for free at every level.
//
// The topology preserves the instant-communication model level by level:
// an Arrive first runs the leaf's cascade to quiescence inside its group,
// then drains the group's aggregator (proto.Aggregator.DrainFeed) into the
// root fabric as virtual arrivals, each of which again runs to quiescence.
// Draining only at these quiescent instants is what keeps a tree
// deterministic across transports: the aggregator's state is then a pure
// function of the set of messages its group delivered, independent of their
// interleaving across child links.

import (
	"fmt"

	"disttrack/internal/proto"
)

// Tree mounts a proto.Tree on per-level transports and presents the whole
// assembly as one Transport addressed by global leaf index.
type Tree struct {
	tp     proto.Tree
	groups []Transport
	root   Transport
	aggs   []proto.Aggregator
	feeds  []func(item int64, value float64, count int64)
}

// NewTree builds one transport per group plus one for the root via mk (the
// per-level fabric factory: sim, netsim, or tcp loopback). Every group
// coordinator must implement proto.Aggregator.
func NewTree(tp proto.Tree, mk func(p proto.Protocol) (Transport, error)) (*Tree, error) {
	if len(tp.Groups) < 2 {
		return nil, fmt.Errorf("runtime: tree needs at least two groups, got %d", len(tp.Groups))
	}
	if tp.Root.K() != len(tp.Groups) {
		return nil, fmt.Errorf("runtime: root has %d sites for %d groups", tp.Root.K(), len(tp.Groups))
	}
	t := &Tree{tp: tp}
	for g, gp := range tp.Groups {
		agg, ok := gp.Coord.(proto.Aggregator)
		if !ok {
			closeAll(t.groups)
			return nil, fmt.Errorf("runtime: group %d coordinator (%T) does not implement proto.Aggregator", g, gp.Coord)
		}
		tr, err := mk(gp)
		if err != nil {
			closeAll(t.groups)
			return nil, fmt.Errorf("runtime: mounting group %d: %w", g, err)
		}
		t.groups = append(t.groups, tr)
		t.aggs = append(t.aggs, agg)
	}
	rt, err := mk(tp.Root)
	if err != nil {
		closeAll(t.groups)
		return nil, fmt.Errorf("runtime: mounting root: %w", err)
	}
	t.root = rt
	t.feeds = make([]func(item int64, value float64, count int64), len(tp.Groups))
	for g := range t.feeds {
		g := g
		t.feeds[g] = func(item int64, value float64, count int64) {
			t.root.ArriveBatch(g, item, value, count)
		}
	}
	return t, nil
}

func closeAll(ts []Transport) {
	for _, tr := range ts {
		tr.Quiesce()
		tr.Close()
	}
}

// drain releases group g's aggregator feed into the root fabric. The group
// must be quiescent (its last Arrive has returned), which also gives this
// goroutine a happens-before edge over the group coordinator's state — the
// same barrier argument that makes Fabric.Probe race-free.
func (t *Tree) drain(g int) {
	t.aggs[g].DrainFeed(t.feeds[g])
}

// Arrive implements Transport: site is the global leaf index.
func (t *Tree) Arrive(site int, item int64, value float64) {
	g, idx := t.tp.GroupOf(site)
	t.groups[g].Arrive(idx, item, value)
	t.drain(g)
}

// ArriveBatch implements Transport. The whole batch is absorbed by the leaf
// level (with its own per-chunk quiescence choreography) before the
// aggregator drains once: a batch is one quiescent window, so the feed is
// coarser than element-at-a-time draining but happens at an equally valid
// quiescent instant — both schedules keep every level's guarantee, and a
// fixed call pattern replays identically on every transport.
func (t *Tree) ArriveBatch(site int, item int64, value float64, count int64) {
	g, idx := t.tp.GroupOf(site)
	t.groups[g].ArriveBatch(idx, item, value, count)
	t.drain(g)
}

// Quiesce implements Transport, settling level by level: each group's full
// barrier, then its residual feed, then the root's barrier.
func (t *Tree) Quiesce() {
	for g, tr := range t.groups {
		tr.Quiesce()
		t.drain(g)
	}
	t.root.Quiesce()
}

// Probe implements Transport (the tree must be quiescent).
func (t *Tree) Probe() {
	for _, tr := range t.groups {
		tr.Probe()
	}
	t.root.Probe()
}

// Metrics implements Transport, composing the per-level ledgers into one
// tree-wide view: message/word/broadcast counts sum across every fabric,
// Arrivals counts real (leaf) arrivals only, MaxSiteSpace is the leaf
// high-water mark, and MaxCoordSpace is the largest single coordinator
// state in the tree (interior or root — the aggregators' parent-facing site
// state is folded in as interior-node memory). Durability counters come
// from the root fabric, where the persistence hook attaches.
func (t *Tree) Metrics() Metrics {
	leaf, root := t.LevelMetrics()
	m := Metrics{
		MessagesUp:     leaf.MessagesUp + root.MessagesUp,
		MessagesDown:   leaf.MessagesDown + root.MessagesDown,
		WordsUp:        leaf.WordsUp + root.WordsUp,
		WordsDown:      leaf.WordsDown + root.WordsDown,
		Broadcasts:     leaf.Broadcasts + root.Broadcasts,
		Arrivals:       leaf.Arrivals,
		MaxSiteSpace:   leaf.MaxSiteSpace,
		MaxCoordSpace:  leaf.MaxCoordSpace,
		LiveSites:      leaf.LiveSites,
		Snapshots:      root.Snapshots,
		ReplayedFrames: root.ReplayedFrames,
		Resyncs:        root.Resyncs,
	}
	if s := root.MaxCoordSpace + root.MaxSiteSpace; s > m.MaxCoordSpace {
		m.MaxCoordSpace = s
	}
	return m
}

// LevelMetrics returns the per-level ledgers: leaf is the sum over the
// group fabrics (real arrivals, site↔aggregator traffic), root the top
// fabric alone (virtual arrivals, aggregator↔root traffic — the root
// coordinator's fan-in, the quantity hierarchy exists to shrink).
func (t *Tree) LevelMetrics() (leaf, root Metrics) {
	for _, tr := range t.groups {
		gm := tr.Metrics()
		leaf.MessagesUp += gm.MessagesUp
		leaf.MessagesDown += gm.MessagesDown
		leaf.WordsUp += gm.WordsUp
		leaf.WordsDown += gm.WordsDown
		leaf.Broadcasts += gm.Broadcasts
		leaf.Arrivals += gm.Arrivals
		leaf.LiveSites += gm.LiveSites
		if gm.MaxSiteSpace > leaf.MaxSiteSpace {
			leaf.MaxSiteSpace = gm.MaxSiteSpace
		}
		if gm.MaxCoordSpace > leaf.MaxCoordSpace {
			leaf.MaxCoordSpace = gm.MaxCoordSpace
		}
	}
	root = t.root.Metrics()
	return leaf, root
}

// shiftTap renumbers one fabric's links into the tree-wide link space.
type shiftTap struct {
	tap  Tap
	base int
}

func (s shiftTap) Up(from int, m proto.Message) { s.tap.Up(s.base+from, m) }
func (s shiftTap) Down(to int, m proto.Message) { s.tap.Down(s.base+to, m) }

// SetTap implements Transport. The tree-wide link space is: links 0..L-1
// are the leaf links in global leaf order, links L..L+G-1 the root links of
// groups 0..G-1 (L = leaves, G = groups). Install before the first arrival.
func (t *Tree) SetTap(tap Tap) {
	leaves := t.tp.Leaves()
	for g, tr := range t.groups {
		if tap == nil {
			tr.SetTap(nil)
			continue
		}
		tr.SetTap(shiftTap{tap: tap, base: g * t.tp.Fanout})
	}
	if tap == nil {
		t.root.SetTap(nil)
		return
	}
	t.root.SetTap(shiftTap{tap: tap, base: leaves})
}

// coordLogger is the concrete hook every fabric exposes for the durability
// layer (not part of the Transport interface).
type coordLogger interface {
	SetCoordLog(fn func(from int, m proto.Message))
}

// SetCoordLog installs the durability layer's write-ahead hook on the root
// fabric: the root coordinator — the tree's query surface — is a pure
// function of its delivered (from, msg) sequence whether those messages
// come from real sites or aggregators, so the flat star's WAL/snapshot
// machinery applies to it unchanged. Panics if the root fabric doesn't
// expose the hook.
func (t *Tree) SetCoordLog(fn func(from int, m proto.Message)) {
	cl, ok := t.root.(coordLogger)
	if !ok {
		panic(fmt.Sprintf("runtime: root transport %T has no coordinator log hook", t.root))
	}
	cl.SetCoordLog(fn)
}

// Group exposes level-0 fabric g (tests, per-edge middleware installation).
func (t *Tree) Group(g int) Transport { return t.groups[g] }

// Root exposes the top-level fabric.
func (t *Tree) Root() Transport { return t.root }

// Groups returns the number of aggregators.
func (t *Tree) Groups() int { return len(t.groups) }

// Close implements Transport, tearing down leaves first so no residual
// group traffic wants a root that is already gone.
func (t *Tree) Close() {
	for _, tr := range t.groups {
		tr.Close()
	}
	t.root.Close()
}
