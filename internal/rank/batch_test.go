package rank

import (
	"math"
	"reflect"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// TestArriveBatchBitIdenticalToSerial drives one randomized site directly —
// no harness — through the same block-structured stream, element-at-a-time
// on one copy and in ragged batches on the other, and requires the exact
// same message sequence and site state. This pins the closed-form boundary
// arithmetic of ArriveBatch (summary emissions, residual samples, doubling
// reports, chunk rollovers) to the serial semantics.
func TestArriveBatchBitIdenticalToSerial(t *testing.T) {
	cfg := Config{K: 4, Eps: 0.1, Rescale: 1}
	serial := NewSite(cfg, stats.New(7))
	batched := NewSite(cfg, stats.New(7))

	var serialMsgs, batchMsgs []proto.Message
	serialOut := func(m proto.Message) { serialMsgs = append(serialMsgs, m) }
	batchOut := func(m proto.Message) { batchMsgs = append(batchMsgs, m) }

	vrng := stats.New(99)
	runLens := []int64{1, 3, 200, 64, 1, 999, 17, 128, 5000, 2, 777}
	for step := 0; step < 40; step++ {
		run := runLens[step%len(runLens)]
		v := vrng.Float64() * 1000
		for i := int64(0); i < run; i++ {
			serial.Arrive(0, v, serialOut)
		}
		var done int64
		for done < run {
			done += batched.ArriveBatch(0, v, run-done, batchOut)
		}
		if len(serialMsgs) != len(batchMsgs) {
			t.Fatalf("step %d: %d serial messages vs %d batched", step, len(serialMsgs), len(batchMsgs))
		}
	}
	if !reflect.DeepEqual(serialMsgs, batchMsgs) {
		for i := range serialMsgs {
			if !reflect.DeepEqual(serialMsgs[i], batchMsgs[i]) {
				t.Fatalf("message %d diverged:\n serial  %+v\n batched %+v", i, serialMsgs[i], batchMsgs[i])
			}
		}
		t.Fatal("message sequences diverged")
	}
	if serial.skip != batched.skip || serial.P() != batched.P() {
		t.Fatalf("site state diverged: skip %d vs %d, p %v vs %v",
			serial.skip, batched.skip, serial.P(), batched.P())
	}
	if (serial.cur == nil) != (batched.cur == nil) {
		t.Fatal("chunk liveness diverged")
	}
	if serial.cur != nil && (serial.cur.arrived != batched.cur.arrived || serial.cur.id != batched.cur.id) {
		t.Fatalf("chunk state diverged: arrived %d vs %d, id %d vs %d",
			serial.cur.arrived, batched.cur.arrived, serial.cur.id, batched.cur.id)
	}
}

// TestProtocolBatchMatchesSerial runs the full randomized protocol under the
// simulator, once per-element and once through the batch fast path, and
// requires identical Metrics and bit-identical Rank/Quantile answers (the
// coordinator's flattened per-chunk indexes are deterministic, so even the
// float association order matches).
func TestProtocolBatchMatchesSerial(t *testing.T) {
	const k = 8
	const n = 30000
	const block = 125
	cfg := Config{K: k, Eps: 0.1, Rescale: 1}

	value := func(i int) float64 { return float64(i/block) * 3.5 }
	site := func(i int) int { return (i / block) % k }

	ps, serialCoord := NewProtocol(cfg, 123)
	hs := sim.New(ps)
	for i := 0; i < n; i++ {
		hs.Arrive(site(i), 0, value(i))
	}

	pb, batchCoord := NewProtocol(cfg, 123)
	hb := sim.New(pb)
	for i := 0; i < n; i += block {
		hb.ArriveBatch(site(i), 0, value(i), block)
	}

	if hs.Metrics() != hb.Metrics() {
		t.Fatalf("metrics diverged:\n serial  %+v\n batched %+v", hs.Metrics(), hb.Metrics())
	}
	for _, q := range []float64{0, 10, 100.25, 400, 900, math.Inf(1)} {
		if sr, br := serialCoord.Rank(q), batchCoord.Rank(q); sr != br {
			t.Fatalf("Rank(%v) diverged: serial %v, batched %v", q, sr, br)
		}
	}
	if sq, bq := serialCoord.Quantile(0.5, 0, 1000), batchCoord.Quantile(0.5, 0, 1000); sq != bq {
		t.Fatalf("Quantile diverged: serial %v, batched %v", sq, bq)
	}
}

// TestBatchAccuracyUnderRuns checks that duplicate-heavy batched streams
// stay inside the tracker's error band (the paper assumes distinct values;
// runs are the worst case the batch API invites).
func TestBatchAccuracyUnderRuns(t *testing.T) {
	const k = 8
	const n = 24000
	const block = 48
	cfg := Config{K: k, Eps: 0.15}
	p, coord := NewProtocol(cfg, 17)
	h := sim.New(p)
	perm := workload.PermValues(n/block, stats.New(5))
	bad, checks := 0, 0
	truth := &oracle{}
	for i := 0; i < n; i += block {
		v := perm(i / block)
		h.ArriveBatch((i/block)%k, 0, v, block)
		for j := 0; j < block; j++ {
			truth.add(v)
		}
		if (i/block)%13 != 0 || i == 0 {
			continue
		}
		checks++
		q := float64(n/block) / 2
		if math.Abs(coord.Rank(q)-truth.rank(q)) > cfg.Eps*float64(i+block) {
			bad++
		}
	}
	if frac := float64(bad) / float64(checks); frac > 0.12 {
		t.Fatalf("batched runs: %.1f%% of checks outside eps band", 100*frac)
	}
}
