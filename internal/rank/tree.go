package rank

// Hierarchical (tree) assembly of the randomized rank tracker. The
// aggregator re-expresses its shard's stream through the residual samples
// alone: each SampleMsg covers the gap of arrivals since the previous
// sample of its chunk (gaps are geometric with mean 1/p), so feeding the
// sampled value gap-many times upward reproduces the shard's mass with a
// per-gap rank perturbation of at most the gap length — a lower-order term
// against the level's εn̄/√k' block size. Summaries are still absorbed into
// the child-facing coordinator (they answer nothing here, but keep the
// protocol's wire behaviour identical to the flat star, and the extra state
// is what Resync/persistence already handle).
//
// The deterministic baseline (periodic GK snapshots) has no tree assembly:
// its snapshots admit no merge path, which the facade's topology validation
// pins.

import (
	"disttrack/internal/proto"
	"disttrack/internal/stats"
)

// chunkKey identifies one site's chunk inside a group.
type chunkKey struct {
	site  int
	chunk int64
}

type feedEvent struct {
	value float64
	count int64
}

// Agg is the rank aggregator: the child-facing Coordinator plus the
// gap-weighted feed ledger. Pending events are captured in Receive and
// released at the next quiescent instant; between two drains only one leaf
// arrives (the hosting topology's single-feeder contract), so every pending
// event comes from a single FIFO child link and the captured order is
// deterministic across transports.
type Agg struct {
	*Coordinator
	fedIdx  map[chunkKey]int64
	pending []feedEvent
}

// NewAgg wraps a child-facing coordinator as an aggregator.
func NewAgg(c *Coordinator) *Agg {
	return &Agg{Coordinator: c, fedIdx: make(map[chunkKey]int64)}
}

// Receive implements proto.Coordinator, turning each residual sample into a
// gap-weighted virtual run.
func (a *Agg) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	a.Coordinator.Receive(from, m, send, broadcast)
	if msg, ok := m.(SampleMsg); ok {
		k := chunkKey{site: from, chunk: msg.Chunk}
		if gap := msg.Index - a.fedIdx[k]; gap > 0 {
			a.pending = append(a.pending, feedEvent{value: msg.Value, count: gap})
			a.fedIdx[k] = msg.Index
		}
	}
}

// DrainFeed implements proto.Aggregator.
func (a *Agg) DrainFeed(feed func(item int64, value float64, count int64)) {
	for _, ev := range a.pending {
		feed(0, ev.value, ev.count)
	}
	a.pending = a.pending[:0]
}

// SeedFed primes the feed ledger after a coordinator recovery: every
// restored sample's gap counts as already fed.
func (a *Agg) SeedFed() {
	a.pending = a.pending[:0]
	for site, siteChunks := range a.chunks {
		for id, v := range siteChunks {
			if v == nil || len(v.samples) == 0 {
				continue
			}
			k := chunkKey{site: site, chunk: int64(id)}
			if last := v.samples[len(v.samples)-1].index; last > a.fedIdx[k] {
				a.fedIdx[k] = last
			}
		}
	}
}

// NewTreeProtocol assembles the randomized rank tracker as a two-level
// tree (see count.NewTreeProtocol for the shape): each level runs at the
// split budget proto.SplitEps(eps, 2), and the root coordinator answers
// Rank/Quantile queries for the whole tree.
func NewTreeProtocol(cfg Config, fanout int, seed uint64) (proto.Tree, *Coordinator) {
	cfg.validate()
	if fanout < 2 {
		panic("rank: tree fanout must be >= 2")
	}
	groups := (cfg.K + fanout - 1) / fanout
	if groups < 2 {
		panic("rank: tree needs at least two groups (k must exceed fanout)")
	}
	eps := proto.SplitEps(cfg.Eps, 2)
	root := stats.New(seed)
	tr := proto.Tree{Fanout: fanout}
	for g := 0; g < groups; g++ {
		size := fanout
		if rem := cfg.K - g*fanout; rem < size {
			size = rem
		}
		gcfg := Config{K: size, Eps: eps, Rescale: cfg.Rescale}
		sites := make([]proto.Site, size)
		for i := range sites {
			sites[i] = NewSite(gcfg, root.Split())
		}
		tr.Groups = append(tr.Groups, proto.Protocol{Coord: NewAgg(NewCoordinator(gcfg)), Sites: sites})
	}
	rcfg := Config{K: groups, Eps: eps, Rescale: cfg.Rescale}
	rootCoord := NewCoordinator(rcfg)
	rsites := make([]proto.Site, groups)
	for i := range rsites {
		rsites[i] = NewSite(rcfg, root.Split())
	}
	tr.Root = proto.Protocol{Coord: rootCoord, Sites: rsites}
	return tr, rootCoord
}
