package rank

import (
	"math"
	"sort"
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// oracle tracks exact ranks over the inserted values.
type oracle struct {
	vals []float64
}

func (o *oracle) add(v float64) { o.vals = append(o.vals, v) }

func (o *oracle) rank(x float64) float64 {
	r := 0
	for _, v := range o.vals {
		if v < x {
			r++
		}
	}
	return float64(r)
}

func TestExactWhilePIsOne(t *testing.T) {
	// With p = 1 all residual samples arrive, so ranks are exact (summaries
	// of single-element blocks are exact too).
	cfg := Config{K: 4, Eps: 0.2, Rescale: 1}
	p, coord := NewProtocol(cfg, 1)
	h := sim.New(p)
	o := &oracle{}
	vals := []float64{5, 3, 8, 1, 9, 2, 7, 4}
	for i, v := range vals {
		o.add(v)
		h.Arrive(i%4, 0, v)
		for _, q := range []float64{0, 2.5, 5.5, 10} {
			if got := coord.Rank(q); got != o.rank(q) {
				t.Fatalf("p=1 phase: Rank(%v) = %v, want %v after %d arrivals",
					q, got, o.rank(q), i+1)
			}
		}
	}
}

func TestEndToEndUnbiased(t *testing.T) {
	// Mean of the rank estimate at a fixed instant over independent runs
	// approaches the true rank, across round restarts and chunk churn.
	const k = 9
	const n = 8000
	cfg := Config{K: k, Eps: 0.1, Rescale: 1}
	valueOf := workload.PermValues(n, stats.New(808))
	const q = float64(n) / 3
	const trials = 120
	ests := make([]float64, trials)
	var truth float64
	for i := 0; i < n; i++ {
		if valueOf(i) < q {
			truth++
		}
	}
	for tr := 0; tr < trials; tr++ {
		p, coord := NewProtocol(cfg, uint64(4000+tr))
		h := sim.New(p)
		for i := 0; i < n; i++ {
			h.Arrive(i%k, 0, valueOf(i))
		}
		ests[tr] = coord.Rank(q)
	}
	mean := stats.Mean(ests)
	se := stats.StdDev(ests)/math.Sqrt(trials) + 1e-9
	if math.Abs(mean-truth) > 5*se+1 {
		t.Fatalf("Rank mean %v, want %v (se %v)", mean, truth, se)
	}
	if sd := stats.StdDev(ests); sd > cfg.Eps*n {
		t.Fatalf("std-dev %v above eps*n = %v", sd, cfg.Eps*n)
	}
}

func TestCoverageAllInstants(t *testing.T) {
	const k = 16
	const eps = 0.1
	const n = 20000
	cfg := Config{K: k, Eps: eps}
	valueOf := workload.PermValues(n, stats.New(809))
	p, coord := NewProtocol(cfg, 61)
	h := sim.New(p)
	o := &oracle{}
	queries := []float64{float64(n) * 0.1, float64(n) * 0.25, float64(n) * 0.5, float64(n) * 0.9}
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		v := valueOf(i)
		o.add(v)
		h.Arrive(i%k, 0, v)
		if i%89 != 0 {
			continue
		}
		for _, q := range queries {
			checks++
			if math.Abs(coord.Rank(q)-o.rank(q)) > eps*float64(i+1) {
				bad++
			}
		}
	}
	frac := float64(bad) / float64(checks)
	if frac > 0.10 {
		t.Fatalf("%.1f%% of rank checks outside eps band (budget 10%%)", 100*frac)
	}
}

func TestSkewedPlacementStaysAccurate(t *testing.T) {
	// Everything at one site: chunks roll over every n̄/k arrivals; accuracy
	// must survive the chunk churn.
	const k = 8
	const eps = 0.15
	const n = 15000
	cfg := Config{K: k, Eps: eps}
	valueOf := workload.PermValues(n, stats.New(811))
	p, coord := NewProtocol(cfg, 67)
	h := sim.New(p)
	o := &oracle{}
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		v := valueOf(i)
		o.add(v)
		h.Arrive(0, 0, v)
		if i%97 != 0 {
			continue
		}
		checks++
		q := float64(n) / 2
		if math.Abs(coord.Rank(q)-o.rank(q)) > eps*float64(i+1) {
			bad++
		}
	}
	if frac := float64(bad) / float64(checks); frac > 0.10 {
		t.Fatalf("skewed placement: %.1f%% checks failed", 100*frac)
	}
}

func TestQuantileBisection(t *testing.T) {
	const k = 4
	const eps = 0.1
	const n = 10000
	cfg := Config{K: k, Eps: eps}
	valueOf := workload.PermValues(n, stats.New(821))
	p, coord := NewProtocol(cfg, 71)
	h := sim.New(p)
	for i := 0; i < n; i++ {
		h.Arrive(i%k, 0, valueOf(i))
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		v := coord.Quantile(q, 0, n)
		// The returned value's true rank must be within ~2eps of q*n.
		if math.Abs(v-q*n) > 3*eps*n {
			t.Fatalf("Quantile(%v) = %v, want ~%v", q, v, q*n)
		}
	}
}

func TestDeterministicAlwaysWithinEps(t *testing.T) {
	const k = 8
	const eps = 0.1
	const n = 20000
	p, coord := NewDetProtocol(k, eps)
	h := sim.New(p)
	valueOf := workload.PermValues(n, stats.New(823))
	o := &oracle{}
	for i := 0; i < n; i++ {
		v := valueOf(i)
		o.add(v)
		h.Arrive(i%k, 0, v)
		if i%53 != 0 {
			continue
		}
		for _, q := range []float64{float64(n) * 0.2, float64(n) * 0.5, float64(n) * 0.8} {
			if err := math.Abs(coord.Rank(q) - o.rank(q)); err > eps*float64(i+1)+float64(k) {
				t.Fatalf("det error %v > εn at instant %d", err, i+1)
			}
		}
	}
}

func TestRandomizedCheaperThanDeterministicLargeK(t *testing.T) {
	const k = 64
	const eps = 0.05
	const n = 60000
	valueOf := workload.PermValues(n, stats.New(829))
	events := make([]workload.Event, n)
	for i := range events {
		events[i] = workload.Event{Site: i % k, Value: valueOf(i)}
	}
	p, _ := NewProtocol(Config{K: k, Eps: eps, Rescale: 1}, 73)
	h := sim.New(p)
	h.Run(events, nil)
	randWords := h.Metrics().Words()

	dp, _ := NewDetProtocol(k, eps)
	dh := sim.New(dp)
	dh.Run(events, nil)
	detWords := dh.Metrics().Words()

	if randWords >= detWords {
		t.Fatalf("randomized words %d not below deterministic %d", randWords, detWords)
	}
}

func TestSiteSpaceSublinear(t *testing.T) {
	// Site space should be far below the number of elements it processed
	// (paper: O(1/(ε√k)·polylog)).
	const k = 16
	const eps = 0.05
	const n = 50000
	cfg := Config{K: k, Eps: eps, Rescale: 1}
	p, _ := NewProtocol(cfg, 79)
	h := sim.New(p)
	h.SpaceProbeEvery = 64
	valueOf := workload.UniformValues(stats.New(831))
	for i := 0; i < n; i++ {
		h.Arrive(0, 0, valueOf(i)) // single hot site: worst case
	}
	sp := h.Metrics().MaxSiteSpace
	perSite := n // everything went to one site
	if sp > perSite/20 {
		t.Fatalf("site space %d not sublinear in local stream %d", sp, perSite)
	}
}

func TestChunkDecompositionInternals(t *testing.T) {
	// Feed exactly 6 blocks worth of data into one chunk and verify the
	// coordinator's decomposition covers 6 = 4+2 blocks via a level-2 and a
	// level-1 node.
	cfg := Config{K: 1, Eps: 0.5, Rescale: 1}
	site := NewSite(cfg, stats.New(83))
	// Pin n̄ so the chunk has b >= 2 and capacity >= 12: use a large fake
	// broadcast.
	site.rs.Deliver(rounds.BroadcastMsg{NBar: 400})
	site.p = 0.5
	var msgs []SummaryMsg
	for i := 0; i < 1200; i++ {
		site.Arrive(0, float64(i), func(m proto.Message) {
			if sm, ok := m.(SummaryMsg); ok {
				msgs = append(msgs, sm)
			}
		})
	}
	if len(msgs) == 0 {
		t.Fatal("no summaries shipped")
	}
	// Every level-0 node must appear exactly once per block.
	leafCount := 0
	posSeen := map[int]bool{}
	for _, m := range msgs {
		if m.Chunk != 0 {
			continue
		}
		if m.Level == 0 {
			leafCount++
			if posSeen[m.Pos] {
				t.Fatalf("duplicate leaf pos %d", m.Pos)
			}
			posSeen[m.Pos] = true
		}
	}
	if leafCount == 0 {
		t.Fatal("no leaf summaries")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Eps: 0.1},
		{K: 3, Eps: 0},
		{K: 3, Eps: 1},
		{K: 3, Eps: 0.1, Rescale: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestSortedAdversarialInput(t *testing.T) {
	// Sorted arrivals are adversarial for many summaries; coverage must
	// hold regardless.
	const k = 8
	const eps = 0.15
	const n = 12000
	cfg := Config{K: k, Eps: eps}
	p, coord := NewProtocol(cfg, 89)
	h := sim.New(p)
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		h.Arrive(i%k, 0, float64(i))
		if i%79 != 0 || i == 0 {
			continue
		}
		checks++
		q := float64(i) / 2
		// True rank of q among 0..i is ceil(q).
		want := math.Ceil(q)
		if math.Abs(coord.Rank(q)-want) > eps*float64(i+1) {
			bad++
		}
	}
	if frac := float64(bad) / float64(checks); frac > 0.10 {
		t.Fatalf("sorted input: %.1f%% checks failed", 100*frac)
	}
}

func TestRankMonotoneInQuery(t *testing.T) {
	const n = 5000
	cfg := Config{K: 4, Eps: 0.1}
	valueOf := workload.PermValues(n, stats.New(97))
	p, coord := NewProtocol(cfg, 101)
	h := sim.New(p)
	for i := 0; i < n; i++ {
		h.Arrive(i%4, 0, valueOf(i))
	}
	qs := []float64{0, n * 0.25, n * 0.5, n * 0.75, n}
	prev := math.Inf(-1)
	for _, q := range qs {
		r := coord.Rank(q)
		if r < prev-1e-9 {
			t.Fatalf("rank not monotone: Rank(%v)=%v < %v", q, r, prev)
		}
		prev = r
	}
}

func TestDetSnapshotWordsMatchSummary(t *testing.T) {
	s := NewDetSite(2, 0.1)
	var words []int
	for i := 0; i < 100; i++ {
		s.Arrive(0, float64(i), func(m proto.Message) {
			if sm, ok := m.(*DetSnapshotMsg); ok {
				words = append(words, sm.Words())
			}
		})
	}
	if len(words) == 0 {
		t.Fatal("no snapshots sent")
	}
	sort.Ints(words)
	if words[0] <= 0 {
		t.Fatal("snapshot with non-positive words")
	}
}
