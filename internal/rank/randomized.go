// Package rank implements the rank/quantile-tracking protocols of Section 4
// of the paper: the randomized algorithm built from per-chunk dyadic trees
// of unbiased rank summaries ("algorithm C" over "algorithm A") with
// residual sampling, and the deterministic baseline of Cormode et al. [6]
// (periodic Greenwald–Khanna snapshots).
package rank

import (
	"math"
	"slices"
	"sort"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
	"disttrack/internal/summary/merge"
)

// SummaryMsg ships the summary of a full tree node. Its payload is the
// snapshot plus level and node-position tags.
type SummaryMsg struct {
	Chunk int64 // per-site chunk sequence number
	Level int
	Pos   int // node index within its level
	Snap  merge.Snapshot
}

// Words implements proto.Message.
func (m SummaryMsg) Words() int { return m.Snap.Words() + 3 }

// SampleMsg forwards one sampled element with its index within the chunk
// (value + index + chunk tag).
type SampleMsg struct {
	Chunk int64
	Index int64 // 1-based position within the chunk
	Value float64
}

// Words implements proto.Message.
func (SampleMsg) Words() int { return 3 }

// Config carries the shared parameters of the randomized rank tracker.
type Config struct {
	K   int
	Eps float64
	// Rescale divides Eps internally; zero means 3 (constant-factor
	// rescaling for the 0.9 success probability).
	Rescale float64
}

func (c Config) effEps() float64 {
	r := c.Rescale
	if r == 0 {
		r = 3
	}
	return c.Eps / r
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("rank: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("rank: Eps out of (0,1)")
	}
	if c.Rescale < 0 {
		panic("rank: negative Rescale")
	}
}

// chunk is a site's in-progress instance of algorithm C.
type chunk struct {
	id      int64
	cap     int64 // maximum number of elements (n̄/k at creation)
	b       int64 // block size εn̄/√k
	h       int   // tree height: levels 0..h
	arrived int64
	active  []*merge.Summary // one active node per level (nil = none)
}

// Site is the per-site state machine of the randomized rank tracker. The
// residual sampling coin is skip-sampled (one geometric gap draw per
// forwarded sample instead of one Bernoulli draw per arrival), tree nodes
// draw their memory from a per-site merge.Pool, and ArriveBatch ingests runs
// of identical values through merge.InsertRun, jumping in closed form to the
// next summary-emission, residual-sample, or doubling-report boundary.
type Site struct {
	cfg  Config
	rs   *rounds.Site
	rng  *stats.RNG
	pool *merge.Pool

	p      float64
	skip   int64 // silent arrivals remaining before the next residual sample
	nextID int64
	cur    *chunk
}

// NewSite returns a fresh site.
func NewSite(cfg Config, rng *stats.RNG) *Site {
	cfg.validate()
	return &Site{cfg: cfg, rs: rounds.NewSite(), rng: rng, pool: merge.NewPool(), p: 1}
}

// newChunk starts a fresh instance of algorithm C sized by the current n̄,
// releasing the previous chunk's still-active nodes back to the pool (their
// partial blocks stay covered by the already-forwarded residual samples).
func (s *Site) newChunk() *chunk {
	s.releaseChunk()
	nBar := s.rs.NBar()
	capacity := nBar / int64(s.cfg.K)
	if capacity < 1 {
		capacity = 1
	}
	b := int64(s.cfg.effEps() * float64(nBar) / math.Sqrt(float64(s.cfg.K)))
	if b < 1 {
		b = 1
	}
	numBlocks := (capacity + b - 1) / b
	h := 0
	for (int64(1) << uint(h)) < numBlocks {
		h++
	}
	c := &chunk{
		id:     s.nextID,
		cap:    capacity,
		b:      b,
		h:      h,
		active: make([]*merge.Summary, h+1),
	}
	s.nextID++
	return c
}

// releaseChunk returns the current chunk's active summaries to the pool.
func (s *Site) releaseChunk() {
	if s.cur == nil {
		return
	}
	for i, a := range s.cur.active {
		if a != nil {
			a.Release()
			s.cur.active[i] = nil
		}
	}
	s.cur = nil
}

// bufSize returns the buffer size for a level-ℓ node: ⌈2^ℓ·√h⌉, which gives
// the node's rank estimator a standard deviation of at most b/(2√h) over its
// 2^ℓ·b elements (the paper's per-level error parameter 2^−ℓ/√h).
func (c *chunk) bufSize(level int) int {
	h := float64(c.h)
	if h < 1 {
		h = 1
	}
	s := int(math.Ceil(float64(int64(1)<<uint(level)) * math.Sqrt(h)))
	if s < 1 {
		s = 1
	}
	return s
}

// Arrive implements proto.Site.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	if s.cur == nil || s.cur.arrived >= s.cur.cap {
		s.cur = s.newChunk()
	}
	c := s.cur
	c.arrived++

	// Feed every active node on the path (one per level), creating nodes
	// lazily, and ship summaries of nodes that just became full.
	for level := 0; level <= c.h; level++ {
		if c.active[level] == nil {
			c.active[level] = s.pool.NewSummary(c.bufSize(level), s.rng)
		}
		c.active[level].Insert(value)
		span := c.b << uint(level) // elements covered by a level-ℓ node
		if c.arrived%span == 0 {
			pos := int((c.arrived - 1) / span)
			out(SummaryMsg{Chunk: c.id, Level: level, Pos: pos, Snap: c.active[level].Snapshot()})
			c.active[level].Release()
			c.active[level] = nil
		}
	}

	// Residual sampling at rate p, skip-sampled.
	if s.skip > 0 {
		s.skip--
	} else {
		out(SampleMsg{Chunk: c.id, Index: c.arrived, Value: value})
		s.skip = s.rng.SkipGeometric(s.p)
	}

	s.rs.Arrive(out)
}

// ArriveBatch implements proto.BatchSite. A run of identical values is
// ingested in two strides per iteration: the arrivals strictly before the
// next possible message — the next summary emission (multiples of the block
// size b), the next residual sample (s.skip), and the next doubling report
// (rounds gap), all known in closed form — enter the active tree nodes as
// one InsertRun per level, then the boundary arrival takes the full serial
// path so any message lands exactly where element-at-a-time delivery would
// put it. The result is bit-identical to count Arrive calls: InsertRun
// matches Insert's buffer contents and RNG draws, nodes are created in the
// same level order, and the site RNG is consulted at the same arrivals.
func (s *Site) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	var done int64
	emitted := false
	wrap := func(m proto.Message) { emitted = true; out(m) }
	for done < count && !emitted {
		if s.cur == nil || s.cur.arrived >= s.cur.cap {
			s.cur = s.newChunk()
		}
		c := s.cur
		// quiet = arrivals guaranteed message-free, keeping one arrival in
		// reserve for the boundary element below.
		quiet := count - done - 1
		if g := c.b - 1 - c.arrived%c.b; g < quiet {
			quiet = g // next summary emission (all levels emit at multiples of b)
		}
		if g := c.cap - 1 - c.arrived; g < quiet {
			quiet = g // stay inside this chunk; Arrive handles the rollover
		}
		if s.skip < quiet {
			quiet = s.skip // next residual sample
		}
		if g := s.rs.Gap(); g < quiet {
			quiet = g // next doubling report
		}
		if quiet > 0 {
			for level := 0; level <= c.h; level++ {
				if c.active[level] == nil {
					c.active[level] = s.pool.NewSummary(c.bufSize(level), s.rng)
				}
				c.active[level].InsertRun(value, quiet)
			}
			c.arrived += quiet
			s.skip -= quiet
			s.rs.Skip(quiet)
			done += quiet
		}
		s.Arrive(item, value, wrap)
		done++
	}
	return done
}

// Receive implements proto.Site: a round broadcast abandons the current
// chunk (its residual stays covered by the already-forwarded samples) and
// updates p.
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	if !s.rs.Deliver(m) {
		return
	}
	s.p = rounds.P(s.rs.NBar(), s.cfg.K, s.cfg.effEps())
	// Fresh geometric gap at the new p (memoryless, distribution-preserving).
	if s.p < 1 {
		s.skip = s.rng.SkipGeometric(s.p)
	}
	s.releaseChunk()
}

// SpaceWords implements proto.Site.
func (s *Site) SpaceWords() int {
	w := s.rs.SpaceWords() + 3
	if s.cur != nil {
		for _, a := range s.cur.active {
			if a != nil {
				w += a.SpaceWords()
			}
		}
		w += 5
	}
	return w
}

// P exposes the site's sampling probability (tests).
func (s *Site) P() float64 { return s.p }

// chunkView is the coordinator's record of one chunk: node summaries
// indexed by [level][pos], samples tail-partitioned around the covered
// prefix, and a lazily rebuilt flattened index for O(log) rank queries.
type chunkView struct {
	p       float64
	b       int64
	leaves  int                // number of completed blocks (level-0 summaries seen)
	levels  [][]merge.Snapshot // levels[l][pos]; a zero-N snapshot marks absence
	samples []sample           // in index order (sites send them in order)
	tail    int                // samples[tail:] have index > leaves*b (the residual)

	// The flattened index: every (value, weight) pair of the covered
	// prefix's binary decomposition plus the residual samples at weight 1/p,
	// sorted by value with cumulative weights. rank(x) is then one binary
	// search; Quantile's bisection re-uses it for all 64 probes.
	dirty   bool
	entries []indexEntry
	values  []float64
	cum     []float64 // cum[i] = Σ weights of values[:i]; len = len(values)+1
}

type indexEntry struct {
	value  float64
	weight float64
}

type sample struct {
	index int64
	value float64
}

// node returns the snapshot at (level, pos) and whether it is present.
func (v *chunkView) node(level, pos int) (merge.Snapshot, bool) {
	if level >= len(v.levels) || pos >= len(v.levels[level]) {
		return merge.Snapshot{}, false
	}
	sn := v.levels[level][pos]
	return sn, sn.N > 0
}

// setNode stores a snapshot, growing the level-indexed slices as needed.
func (v *chunkView) setNode(level, pos int, sn merge.Snapshot) {
	for level >= len(v.levels) {
		v.levels = append(v.levels, nil)
	}
	for pos >= len(v.levels[level]) {
		v.levels[level] = append(v.levels[level], merge.Snapshot{})
	}
	v.levels[level][pos] = sn
}

// advanceTail moves the sample partition point up to the covered prefix.
func (v *chunkView) advanceTail() {
	covered := int64(v.leaves) * v.b
	for v.tail < len(v.samples) && v.samples[v.tail].index <= covered {
		v.tail++
	}
}

// rebuild flattens the chunk's current decomposition and residual samples
// into the sorted (value, cumulative-weight) index.
func (v *chunkView) rebuild() {
	v.entries = v.entries[:0]
	// Binary decomposition of the q = v.leaves completed blocks.
	q := v.leaves
	start := 0
	for level := 62; level >= 0; level-- {
		bit := 1 << uint(level)
		if q&bit == 0 {
			continue
		}
		if sn, ok := v.node(level, start>>uint(level)); ok {
			for _, b := range sn.Buffers {
				w := float64(b.Weight)
				for _, val := range b.Values {
					v.entries = append(v.entries, indexEntry{value: val, weight: w})
				}
			}
		}
		start += bit
	}
	// Residual: samples with index beyond the covered prefix, at weight 1/p.
	w := 1 / v.p
	for _, sm := range v.samples[v.tail:] {
		v.entries = append(v.entries, indexEntry{value: sm.value, weight: w})
	}
	slices.SortFunc(v.entries, func(a, b indexEntry) int {
		switch {
		case a.value < b.value:
			return -1
		case a.value > b.value:
			return 1
		}
		return 0
	})
	v.values = v.values[:0]
	v.cum = append(v.cum[:0], 0)
	total := 0.0
	for _, e := range v.entries {
		v.values = append(v.values, e.value)
		total += e.weight
		v.cum = append(v.cum, total)
	}
	v.dirty = false
}

// rank answers |{elements < x}| for this chunk from the flattened index.
func (v *chunkView) rank(x float64) float64 {
	if v.dirty {
		v.rebuild()
	}
	return v.cum[sort.SearchFloat64s(v.values, x)]
}

// Coordinator accumulates chunk summaries and samples and answers rank
// queries at any quiescent instant. Chunk records are indexed by site and
// sequential chunk id, so queries walk flat slices instead of maps.
type Coordinator struct {
	cfg    Config
	rc     *rounds.Coordinator
	p      float64
	chunks [][]*chunkView // per site, indexed by chunk id
}

// NewCoordinator returns the coordinator for the randomized rank tracker.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	return &Coordinator{
		cfg:    cfg,
		rc:     rounds.NewCoordinator(cfg.K),
		p:      1,
		chunks: make([][]*chunkView, cfg.K),
	}
}

// view returns (creating if needed) the record for a site's chunk.
func (c *Coordinator) view(site int, id int64) *chunkView {
	for id >= int64(len(c.chunks[site])) {
		c.chunks[site] = append(c.chunks[site], nil)
	}
	if v := c.chunks[site][id]; v != nil {
		return v
	}
	nBar := c.rc.NBar()
	b := int64(c.cfg.effEps() * float64(nBar) / math.Sqrt(float64(c.cfg.K)))
	if b < 1 {
		b = 1
	}
	v := &chunkView{p: c.p, b: b, dirty: true}
	c.chunks[site][id] = v
	return v
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		return
	}
	switch msg := m.(type) {
	case SummaryMsg:
		v := c.view(from, msg.Chunk)
		v.setNode(msg.Level, msg.Pos, msg.Snap)
		if msg.Level == 0 && msg.Pos+1 > v.leaves {
			v.leaves = msg.Pos + 1
			v.advanceTail()
		}
		v.dirty = true
	case SampleMsg:
		v := c.view(from, msg.Chunk)
		v.samples = append(v.samples, sample{index: msg.Index, value: msg.Value})
		// Samples arrive in increasing index order; one landing inside the
		// covered prefix belongs to the head partition.
		if msg.Index <= int64(v.leaves)*v.b {
			v.tail = len(v.samples)
		}
		v.dirty = true
	}
}

// Rank returns the estimate of |{elements < x}| over everything received so
// far: for each chunk, the binary decomposition of its completed-block
// prefix and the residual samples at rate p, all pre-flattened into a
// sorted index so each chunk costs one binary search.
func (c *Coordinator) Rank(x float64) float64 {
	est := 0.0
	for _, siteChunks := range c.chunks {
		for _, v := range siteChunks {
			if v != nil {
				est += v.rank(x)
			}
		}
	}
	return est
}

// Quantile returns a value whose estimated rank is closest to q·n̂ (n̂ =
// Rank(+inf)), located by bisection over [lo, hi]. Each of the up-to-64
// probes re-uses the chunks' flattened indexes built by the first. On an
// empty coordinator (n̂ = 0) it returns NaN — bisecting towards rank 0
// would silently converge to lo.
func (c *Coordinator) Quantile(q float64, lo, hi float64) float64 {
	total := c.Rank(math.Inf(1))
	if total == 0 {
		return math.NaN()
	}
	target := q * total
	for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if c.Rank(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Round returns the number of round transitions so far.
func (c *Coordinator) Round() int { return c.rc.Round() }

// Resync implements proto.Resyncer: a rejoining site is brought straight
// to the current round (chunk size and sampling probability) by replaying
// the round broadcast.
func (c *Coordinator) Resync(emit func(proto.Message)) { c.rc.Resync(emit) }

// stateChunk opens one chunk record in a snapshot (the range 1..9 belongs
// to the embedded rounds component): from = site, A = chunk id, B = the
// block size b the chunk was created with, F = its sampling probability.
// b and p are captured at chunk creation from the then-current round, so
// they must be persisted — they are not derivable from the restored round
// state.
const stateChunk = 20

// SnapshotState implements proto.Snapshotter: the round component's
// records, then every chunk — its creation-time parameters, its node
// summaries, and its samples in index order (the protocol's own message
// types carry them).
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	c.rc.SnapshotState(emit)
	for site, siteChunks := range c.chunks {
		for id, v := range siteChunks {
			if v == nil {
				continue
			}
			emit(site, proto.StateMsg{Key: stateChunk, A: int64(id), B: v.b, F: v.p})
			for level, lvl := range v.levels {
				for pos, sn := range lvl {
					if sn.N > 0 {
						emit(site, SummaryMsg{Chunk: int64(id), Level: level, Pos: pos, Snap: sn})
					}
				}
			}
			for _, sm := range v.samples {
				emit(site, SampleMsg{Chunk: int64(id), Index: sm.index, Value: sm.value})
			}
		}
	}
}

// RestoreState implements proto.Snapshotter. A chunk record re-creates the
// view with its captured b and p (never through view(), which would use
// the current round's); the summary and sample records that follow replay
// through the same partition logic as Receive, which converges to the
// identical leaves/tail state because summaries precede samples.
func (c *Coordinator) RestoreState(from int, m proto.Message) {
	if c.rc.RestoreState(from, m) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		return
	}
	if from < 0 || from >= len(c.chunks) {
		return
	}
	restored := func(id int64) *chunkView {
		if id < 0 || id >= int64(len(c.chunks[from])) {
			return nil
		}
		return c.chunks[from][id]
	}
	switch msg := m.(type) {
	case proto.StateMsg:
		if msg.Key != stateChunk || msg.A < 0 {
			return
		}
		for msg.A >= int64(len(c.chunks[from])) {
			c.chunks[from] = append(c.chunks[from], nil)
		}
		c.chunks[from][msg.A] = &chunkView{p: msg.F, b: msg.B, dirty: true}
	case SummaryMsg:
		v := restored(msg.Chunk)
		if v == nil || msg.Level < 0 || msg.Pos < 0 {
			return
		}
		v.setNode(msg.Level, msg.Pos, msg.Snap)
		if msg.Level == 0 && msg.Pos+1 > v.leaves {
			v.leaves = msg.Pos + 1
			v.advanceTail()
		}
	case SampleMsg:
		v := restored(msg.Chunk)
		if v == nil {
			return
		}
		v.samples = append(v.samples, sample{index: msg.Index, value: msg.Value})
		if msg.Index <= int64(v.leaves)*v.b {
			v.tail = len(v.samples)
		}
	}
}

// P returns the current sampling probability.
func (c *Coordinator) P() float64 { return c.p }

// SpaceWords implements proto.Coordinator. The flattened query index is a
// cache of the protocol state, not part of it, so it is not charged.
func (c *Coordinator) SpaceWords() int {
	w := c.rc.SpaceWords() + 1
	for _, siteChunks := range c.chunks {
		for _, v := range siteChunks {
			if v == nil {
				continue
			}
			w += 3 + 2*len(v.samples)
			for _, lvl := range v.levels {
				for _, sn := range lvl {
					if sn.N > 0 {
						w += sn.Words()
					}
				}
			}
		}
	}
	return w
}

// NewProtocol assembles the randomized rank tracker.
func NewProtocol(cfg Config, seed uint64) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewSite(cfg, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
