// Package rank implements the rank/quantile-tracking protocols of Section 4
// of the paper: the randomized algorithm built from per-chunk dyadic trees
// of unbiased rank summaries ("algorithm C" over "algorithm A") with
// residual sampling, and the deterministic baseline of Cormode et al. [6]
// (periodic Greenwald–Khanna snapshots).
package rank

import (
	"math"
	"sort"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
	"disttrack/internal/summary/merge"
)

// SummaryMsg ships the summary of a full tree node. Its payload is the
// snapshot plus level and node-position tags.
type SummaryMsg struct {
	Chunk int64 // per-site chunk sequence number
	Level int
	Pos   int // node index within its level
	Snap  merge.Snapshot
}

// Words implements proto.Message.
func (m SummaryMsg) Words() int { return m.Snap.Words() + 3 }

// SampleMsg forwards one sampled element with its index within the chunk
// (value + index + chunk tag).
type SampleMsg struct {
	Chunk int64
	Index int64 // 1-based position within the chunk
	Value float64
}

// Words implements proto.Message.
func (SampleMsg) Words() int { return 3 }

// Config carries the shared parameters of the randomized rank tracker.
type Config struct {
	K   int
	Eps float64
	// Rescale divides Eps internally; zero means 3 (constant-factor
	// rescaling for the 0.9 success probability).
	Rescale float64
}

func (c Config) effEps() float64 {
	r := c.Rescale
	if r == 0 {
		r = 3
	}
	return c.Eps / r
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("rank: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("rank: Eps out of (0,1)")
	}
	if c.Rescale < 0 {
		panic("rank: negative Rescale")
	}
}

// chunk is a site's in-progress instance of algorithm C.
type chunk struct {
	id      int64
	cap     int64 // maximum number of elements (n̄/k at creation)
	b       int64 // block size εn̄/√k
	h       int   // tree height: levels 0..h
	arrived int64
	active  []*merge.Summary // one active node per level (nil = none)
}

// Site is the per-site state machine of the randomized rank tracker. The
// residual sampling coin is skip-sampled (one geometric gap draw per
// forwarded sample instead of one Bernoulli draw per arrival); the dyadic
// tree still ingests every value, so rank batching saves RNG and runtime
// overhead but not summary-insert work.
type Site struct {
	cfg Config
	rs  *rounds.Site
	rng *stats.RNG

	p      float64
	skip   int64 // silent arrivals remaining before the next residual sample
	nextID int64
	cur    *chunk
}

// NewSite returns a fresh site.
func NewSite(cfg Config, rng *stats.RNG) *Site {
	cfg.validate()
	return &Site{cfg: cfg, rs: rounds.NewSite(), rng: rng, p: 1}
}

// newChunk starts a fresh instance of algorithm C sized by the current n̄.
func (s *Site) newChunk() *chunk {
	nBar := s.rs.NBar()
	capacity := nBar / int64(s.cfg.K)
	if capacity < 1 {
		capacity = 1
	}
	b := int64(s.cfg.effEps() * float64(nBar) / math.Sqrt(float64(s.cfg.K)))
	if b < 1 {
		b = 1
	}
	numBlocks := (capacity + b - 1) / b
	h := 0
	for (int64(1) << uint(h)) < numBlocks {
		h++
	}
	c := &chunk{
		id:     s.nextID,
		cap:    capacity,
		b:      b,
		h:      h,
		active: make([]*merge.Summary, h+1),
	}
	s.nextID++
	return c
}

// bufSize returns the buffer size for a level-ℓ node: ⌈2^ℓ·√h⌉, which gives
// the node's rank estimator a standard deviation of at most b/(2√h) over its
// 2^ℓ·b elements (the paper's per-level error parameter 2^−ℓ/√h).
func (c *chunk) bufSize(level int) int {
	h := float64(c.h)
	if h < 1 {
		h = 1
	}
	s := int(math.Ceil(float64(int64(1)<<uint(level)) * math.Sqrt(h)))
	if s < 1 {
		s = 1
	}
	return s
}

// Arrive implements proto.Site.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	if s.cur == nil || s.cur.arrived >= s.cur.cap {
		s.cur = s.newChunk()
	}
	c := s.cur
	c.arrived++

	// Feed every active node on the path (one per level), creating nodes
	// lazily, and ship summaries of nodes that just became full.
	for level := 0; level <= c.h; level++ {
		if c.active[level] == nil {
			c.active[level] = merge.New(c.bufSize(level), s.rng.Split())
		}
		c.active[level].Insert(value)
		span := c.b << uint(level) // elements covered by a level-ℓ node
		if c.arrived%span == 0 {
			pos := int((c.arrived - 1) / span)
			out(SummaryMsg{Chunk: c.id, Level: level, Pos: pos, Snap: c.active[level].Snapshot()})
			c.active[level] = nil
		}
	}

	// Residual sampling at rate p, skip-sampled.
	if s.skip > 0 {
		s.skip--
	} else {
		out(SampleMsg{Chunk: c.id, Index: c.arrived, Value: value})
		s.skip = s.rng.SkipGeometric(s.p)
	}

	s.rs.Arrive(out)
}

// ArriveBatch implements proto.BatchSite. Every value must still enter the
// active summary nodes, so the batch is consumed element by element
// (proto.ArriveSerial), preserving the stop-at-first-message contract.
func (s *Site) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	return proto.ArriveSerial(s.Arrive, item, value, count, out)
}

// Receive implements proto.Site: a round broadcast abandons the current
// chunk (its residual stays covered by the already-forwarded samples) and
// updates p.
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	if !s.rs.Deliver(m) {
		return
	}
	s.p = rounds.P(s.rs.NBar(), s.cfg.K, s.cfg.effEps())
	// Fresh geometric gap at the new p (memoryless, distribution-preserving).
	if s.p < 1 {
		s.skip = s.rng.SkipGeometric(s.p)
	}
	s.cur = nil
}

// SpaceWords implements proto.Site.
func (s *Site) SpaceWords() int {
	w := s.rs.SpaceWords() + 3
	if s.cur != nil {
		for _, a := range s.cur.active {
			if a != nil {
				w += a.SpaceWords()
			}
		}
		w += 5
	}
	return w
}

// P exposes the site's sampling probability (tests).
func (s *Site) P() float64 { return s.p }

// chunkView is the coordinator's record of one chunk.
type chunkView struct {
	p         float64
	b         int64
	leaves    int // number of completed blocks (level-0 summaries seen)
	summaries map[nodeKey]merge.Snapshot
	samples   []sample // in index order (sites send them in order)
}

type nodeKey struct {
	level int
	pos   int
}

type sample struct {
	index int64
	value float64
}

// Coordinator accumulates chunk summaries and samples and answers rank
// queries at any quiescent instant.
type Coordinator struct {
	cfg    Config
	rc     *rounds.Coordinator
	p      float64
	chunks []map[int64]*chunkView // per site: chunk id -> view
}

// NewCoordinator returns the coordinator for the randomized rank tracker.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	c := &Coordinator{
		cfg:    cfg,
		rc:     rounds.NewCoordinator(cfg.K),
		p:      1,
		chunks: make([]map[int64]*chunkView, cfg.K),
	}
	for i := range c.chunks {
		c.chunks[i] = make(map[int64]*chunkView)
	}
	return c
}

// view returns (creating if needed) the record for a site's chunk.
func (c *Coordinator) view(site int, id int64) *chunkView {
	if v, ok := c.chunks[site][id]; ok {
		return v
	}
	nBar := c.rc.NBar()
	b := int64(c.cfg.effEps() * float64(nBar) / math.Sqrt(float64(c.cfg.K)))
	if b < 1 {
		b = 1
	}
	v := &chunkView{p: c.p, b: b, summaries: make(map[nodeKey]merge.Snapshot)}
	c.chunks[site][id] = v
	return v
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.effEps())
		return
	}
	switch msg := m.(type) {
	case SummaryMsg:
		v := c.view(from, msg.Chunk)
		v.summaries[nodeKey{level: msg.Level, pos: msg.Pos}] = msg.Snap
		if msg.Level == 0 && msg.Pos+1 > v.leaves {
			v.leaves = msg.Pos + 1
		}
	case SampleMsg:
		v := c.view(from, msg.Chunk)
		v.samples = append(v.samples, sample{index: msg.Index, value: msg.Value})
	}
}

// Rank returns the estimate of |{elements < x}| over everything received so
// far: for each chunk, the binary decomposition of its completed-block
// prefix is summed from node summaries and the residual tail is estimated
// from forwarded samples at rate p.
func (c *Coordinator) Rank(x float64) float64 {
	est := 0.0
	for _, siteChunks := range c.chunks {
		for _, v := range siteChunks {
			est += v.rank(x)
		}
	}
	return est
}

func (v *chunkView) rank(x float64) float64 {
	est := 0.0
	// Binary decomposition of the q = v.leaves completed blocks.
	q := v.leaves
	start := 0
	for level := 62; level >= 0; level-- {
		bit := 1 << uint(level)
		if q&bit == 0 {
			continue
		}
		key := nodeKey{level: level, pos: start >> uint(level)}
		if sn, ok := v.summaries[key]; ok {
			est += float64(sn.Rank(x))
		}
		start += bit
	}
	// Residual: samples with index beyond the covered prefix.
	covered := int64(v.leaves) * v.b
	idx := sort.Search(len(v.samples), func(i int) bool { return v.samples[i].index > covered })
	count := 0
	for _, sm := range v.samples[idx:] {
		if sm.value < x {
			count++
		}
	}
	est += float64(count) / v.p
	return est
}

// Quantile returns a value whose estimated rank is closest to q·n̂ (n̂ =
// Rank(+inf)), located by bisection over [lo, hi].
func (c *Coordinator) Quantile(q float64, lo, hi float64) float64 {
	total := c.Rank(math.Inf(1))
	target := q * total
	for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if c.Rank(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Round returns the number of round transitions so far.
func (c *Coordinator) Round() int { return c.rc.Round() }

// P returns the current sampling probability.
func (c *Coordinator) P() float64 { return c.p }

// SpaceWords implements proto.Coordinator.
func (c *Coordinator) SpaceWords() int {
	w := c.rc.SpaceWords() + 1
	for _, siteChunks := range c.chunks {
		for _, v := range siteChunks {
			w += 3 + 2*len(v.samples)
			for _, sn := range v.summaries {
				w += sn.Words()
			}
		}
	}
	return w
}

// NewProtocol assembles the randomized rank tracker.
func NewProtocol(cfg Config, seed uint64) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		sites[i] = NewSite(cfg, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
