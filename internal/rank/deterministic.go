package rank

import (
	"math"
	"sync"

	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/summary/gk"
)

// DetSnapshotMsg ships a site's full GK summary snapshot. It travels as a
// pooled pointer message (boxing the three-word value into proto.Message
// allocates per snapshot): draw with NewDetSnapshot, and the coordinator
// recycles the shell after taking ownership of the tuple storage.
type DetSnapshotMsg struct {
	Snap gk.Snapshot
}

// Words implements proto.Message (value receiver, so both the pooled
// pointer form and plain values satisfy the interface).
func (m DetSnapshotMsg) Words() int { return m.Snap.Words() }

// detSnapshotPool recycles message shells (the gk tuple storage inside has
// its own pool, gk.SnapshotPool). Mutex-guarded stack rather than
// sync.Pool, which would allocate the pointer box on Put.
var detSnapshotPool struct {
	mu   sync.Mutex
	free []*DetSnapshotMsg
}

// NewDetSnapshot draws a snapshot message shell from the pool (the wire
// decoder uses it too, so decoded frames recycle the same shells).
func NewDetSnapshot(snap gk.Snapshot) *DetSnapshotMsg {
	detSnapshotPool.mu.Lock()
	var m *DetSnapshotMsg
	if n := len(detSnapshotPool.free); n > 0 {
		m = detSnapshotPool.free[n-1]
		detSnapshotPool.free = detSnapshotPool.free[:n-1]
		detSnapshotPool.mu.Unlock()
	} else {
		detSnapshotPool.mu.Unlock()
		m = new(DetSnapshotMsg)
	}
	m.Snap = snap
	return m
}

// RecycleDetSnapshot returns a delivered message's shell to the pool,
// dropping its reference to the tuple storage (whose ownership moved to
// the consumer). Only the final consumer may call it, exactly once.
func RecycleDetSnapshot(m *DetSnapshotMsg) {
	m.Snap = gk.Snapshot{}
	detSnapshotPool.mu.Lock()
	detSnapshotPool.free = append(detSnapshotPool.free, m)
	detSnapshotPool.mu.Unlock()
}

// DetSite is the per-site half of the deterministic rank-tracking baseline
// (Cormode et al. [6] style): a Greenwald–Khanna summary over the site's
// whole stream, snapshotted to the coordinator every T = max(1, ⌊εn̄/(4k)⌋)
// arrivals. Communication O(k/ε²·logN) words; error at most
// εn/8 (GK) + k·T ≤ 3εn/8 at all times.
//
// The paper's own deterministic baseline [29] improves this to
// O(k/ε·logN·log²(1/ε)); the experiment harness plots that analytic curve
// alongside this implementation (experiments.AnalyticWords).
type DetSite struct {
	k   int
	eps float64
	rs  *rounds.Site
	g   *gk.Summary
	// pool recycles snapshot tuple slices with the coordinator that retires
	// them (nil = allocate per snapshot); NewDetProtocol wires a shared one.
	pool *gk.SnapshotPool

	sinceReport int64
}

// NewDetSite returns a deterministic site.
func NewDetSite(k int, eps float64) *DetSite {
	if k <= 0 {
		panic("rank: K must be positive")
	}
	if eps <= 0 || eps >= 1 {
		panic("rank: eps out of (0,1)")
	}
	return &DetSite{k: k, eps: eps, rs: rounds.NewSite(), g: gk.New(eps / 8)}
}

// threshold returns the snapshot period T.
func (s *DetSite) threshold() int64 {
	t := int64(s.eps * float64(s.rs.NBar()) / (4 * float64(s.k)))
	if t < 1 {
		t = 1
	}
	return t
}

// Arrive implements proto.Site.
func (s *DetSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.g.Insert(value)
	s.sinceReport++
	if s.sinceReport >= s.threshold() {
		out(NewDetSnapshot(s.g.SnapshotInto(s.pool)))
		s.sinceReport = 0
	}
	s.rs.Arrive(out)
}

// ArriveBatch implements proto.BatchSite. Every value must enter the GK
// summary, so the batch is consumed element by element (proto.ArriveSerial).
func (s *DetSite) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	return proto.ArriveSerial(s.Arrive, item, value, count, out)
}

// Receive implements proto.Site.
func (s *DetSite) Receive(m proto.Message, out func(proto.Message)) {
	s.rs.Deliver(m)
}

// SpaceWords implements proto.Site.
func (s *DetSite) SpaceWords() int {
	return s.rs.SpaceWords() + s.g.SpaceWords() + 1
}

// DetCoordinator keeps each site's latest snapshot and sums rank estimates.
type DetCoordinator struct {
	rc    *rounds.Coordinator
	snaps []gk.Snapshot
	// pool receives the tuple storage of superseded snapshots so the sites
	// can reuse it (nil = leave them to the GC).
	pool *gk.SnapshotPool
}

// NewDetCoordinator returns the deterministic coordinator.
func NewDetCoordinator(k int) *DetCoordinator {
	return &DetCoordinator{rc: rounds.NewCoordinator(k), snaps: make([]gk.Snapshot, k)}
}

// Receive implements proto.Coordinator.
func (c *DetCoordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		return
	}
	if sm, ok := m.(*DetSnapshotMsg); ok {
		old := c.snaps[from]
		c.snaps[from] = sm.Snap
		old.Release(c.pool)
		RecycleDetSnapshot(sm)
	}
}

// Rank returns the deterministic estimate of |{elements < x}|.
func (c *DetCoordinator) Rank(x float64) float64 {
	var est int64
	for _, sn := range c.snaps {
		est += sn.Rank(x)
	}
	return float64(est)
}

// Quantile locates a value of estimated rank q·n̂ by bisection over [lo, hi].
// On an empty coordinator (n̂ = 0) it returns NaN — bisecting towards rank 0
// would silently converge to lo.
func (c *DetCoordinator) Quantile(q float64, lo, hi float64) float64 {
	total := c.Rank(math.Inf(1))
	if total == 0 {
		return math.NaN()
	}
	target := q * total
	for i := 0; i < 64 && hi-lo > 1e-9*(1+math.Abs(hi)); i++ {
		mid := (lo + hi) / 2
		if c.Rank(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SpaceWords implements proto.Coordinator.
func (c *DetCoordinator) SpaceWords() int {
	w := c.rc.SpaceWords()
	for _, sn := range c.snaps {
		w += sn.Words()
	}
	return w
}

// NewDetProtocol assembles the deterministic rank tracker. Sites and the
// coordinator share one snapshot pool: the coordinator retires each
// superseded snapshot's storage and the next site snapshot reuses it.
func NewDetProtocol(k int, eps float64) (proto.Protocol, *DetCoordinator) {
	pool := &gk.SnapshotPool{}
	coord := NewDetCoordinator(k)
	coord.pool = pool
	sites := make([]proto.Site, k)
	for i := range sites {
		ds := NewDetSite(k, eps)
		ds.pool = pool
		sites[i] = ds
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
