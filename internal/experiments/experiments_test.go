package experiments

import (
	"math"
	"testing"
)

func TestRunEveryCell(t *testing.T) {
	for _, p := range []Problem{Count, Freq, Rank} {
		for _, a := range []Alg{Randomized, Deterministic, Sampling} {
			rc := RowConfig{Problem: p, Alg: a, K: 8, Eps: 0.1, N: 5000, Seed: 1, Rescale: 1}
			res := Run(rc)
			if res.Words <= 0 || res.Messages <= 0 {
				t.Errorf("%s: no communication recorded", rc.Describe())
			}
			if res.Checks == 0 {
				t.Errorf("%s: no accuracy checks", rc.Describe())
			}
			// At Rescale 1 the ε-band is ~1σ (and the sampler's guarantee
			// is constant-probability), so substantial miss rates are in
			// spec; near-total failure would indicate a broken protocol.
			if res.BadFrac > 0.65 {
				t.Errorf("%s: %.0f%% checks failed", rc.Describe(), 100*res.BadFrac)
			}
			if a == Deterministic && res.Bad != 0 {
				t.Errorf("%s: deterministic row failed %d checks", rc.Describe(), res.Bad)
			}
		}
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	rc := RowConfig{Problem: Freq, Alg: Randomized, K: 4, Eps: 0.1, N: 4000, Seed: 9, Rescale: 1}
	a := Run(rc)
	b := Run(rc)
	if a != b {
		t.Fatalf("same config produced different results:\n%+v\n%+v", a, b)
	}
}

func TestIdenticalStreamsAcrossAlgorithms(t *testing.T) {
	// The deterministic and randomized rows of the same (problem, seed)
	// must see identical streams: their check counts agree and arrivals
	// match by construction. Verify via equal Checks.
	d := Run(RowConfig{Problem: Rank, Alg: Deterministic, K: 4, Eps: 0.1, N: 3000, Seed: 5})
	r := Run(RowConfig{Problem: Rank, Alg: Randomized, K: 4, Eps: 0.1, N: 3000, Seed: 5, Rescale: 1})
	if d.Checks != r.Checks {
		t.Fatalf("check counts differ: %d vs %d", d.Checks, r.Checks)
	}
}

func TestAnalyticFormulas(t *testing.T) {
	for _, p := range []Problem{Count, Freq, Rank} {
		for _, a := range []Alg{Randomized, Deterministic, Sampling} {
			rc := RowConfig{Problem: p, Alg: a, K: 16, Eps: 0.05, N: 100000}
			if w := AnalyticWords(rc); w <= 0 || math.IsNaN(w) {
				t.Errorf("AnalyticWords(%s/%s) = %v", p, a, w)
			}
			if s := AnalyticSpace(rc); s <= 0 || math.IsNaN(s) {
				t.Errorf("AnalyticSpace(%s/%s) = %v", p, a, s)
			}
		}
	}
	// Deterministic formulas must dominate randomized ones at large k.
	det := AnalyticWords(RowConfig{Problem: Count, Alg: Deterministic, K: 256, Eps: 0.05, N: 100000})
	rnd := AnalyticWords(RowConfig{Problem: Count, Alg: Randomized, K: 256, Eps: 0.05, N: 100000})
	if det <= rnd {
		t.Fatal("analytic deterministic bound not above randomized at k=256")
	}
}

func TestRunMuSmall(t *testing.T) {
	mu := RunMu(16, 0.1, 20000, 4)
	if mu.Draws != 4 {
		t.Fatalf("draws = %d", mu.Draws)
	}
	if mu.AvgDetMsgs <= 0 || mu.AvgRandMsgs <= 0 {
		t.Fatal("no messages recorded under µ")
	}
}

func TestTrackingVsOneShotAllProblems(t *testing.T) {
	for _, p := range []Problem{Count, Freq, Rank} {
		c := TrackingVsOneShot(p, 16, 0.1, 20000, 1)
		if c.TrackingWords <= 0 || c.OneShotWords <= 0 {
			t.Errorf("%s: missing costs: %+v", p, c)
		}
		if c.Ratio <= 1 {
			t.Errorf("%s: tracking (%d words) not more expensive than one-shot (%d)",
				p, c.TrackingWords, c.OneShotWords)
		}
	}
	// Count's one-shot is exactly k words.
	c := TrackingVsOneShot(Count, 16, 0.1, 20000, 1)
	if c.OneShotWords != 16 {
		t.Fatalf("count one-shot words = %d, want k", c.OneShotWords)
	}
}

func TestBiasAblationDirection(t *testing.T) {
	biased, unbiased := BiasAblation(16, 8000, 50, 40, 0.1)
	if math.Abs(unbiased) >= math.Abs(biased) {
		t.Fatalf("unbiased |%v| not below biased |%v|", unbiased, biased)
	}
	if biased <= 0 {
		t.Fatalf("equation (2) bias should be positive, got %v", biased)
	}
}

func TestAdjustmentAblationDirection(t *testing.T) {
	with, without := AdjustmentAblation(9, 8000, 60, 0.02)
	if math.Abs(with) >= math.Abs(without) {
		t.Fatalf("adjusted |%v| not below unadjusted |%v|", with, without)
	}
	if without <= 0 {
		t.Fatalf("skipping adjustment should bias upward, got %v", without)
	}
}

func TestRunPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown problem did not panic")
		}
	}()
	Run(RowConfig{Problem: "bogus", Alg: Randomized, K: 2, Eps: 0.1, N: 10})
}

func TestRunBatchedEveryCell(t *testing.T) {
	// The batched driver must hit the same paper bounds as the element-wise
	// one: placement does not enter the communication bounds, so words stay
	// within a small constant factor, and accuracy checks keep passing.
	for _, p := range []Problem{Count, Freq, Rank} {
		for _, a := range []Alg{Randomized, Deterministic, Sampling} {
			rc := RowConfig{Problem: p, Alg: a, K: 8, Eps: 0.1, N: 5000, Seed: 1, Rescale: 1}
			seq := Run(rc)
			bat := RunBatched(rc, 50)
			if bat.Checks != seq.Checks {
				t.Errorf("%s: batched %d checks, element-wise %d", rc.Describe(), bat.Checks, seq.Checks)
			}
			if bat.Words <= 0 || bat.Messages <= 0 {
				t.Errorf("%s: batched run recorded no communication", rc.Describe())
			}
			ratio := float64(bat.Words) / float64(seq.Words)
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("%s: batched words %d vs element-wise %d (ratio %.2f)",
					rc.Describe(), bat.Words, seq.Words, ratio)
			}
			if bat.BadFrac > 0.65 {
				t.Errorf("%s: batched run failed %.0f%% checks", rc.Describe(), 100*bat.BadFrac)
			}
			if a == Deterministic && bat.Bad != 0 {
				t.Errorf("%s: deterministic batched row failed %d checks", rc.Describe(), bat.Bad)
			}
		}
	}
}

func TestRunBatchedDeterministicInSeed(t *testing.T) {
	rc := RowConfig{Problem: Freq, Alg: Randomized, K: 4, Eps: 0.1, N: 4000, Seed: 9, Rescale: 1}
	a := RunBatched(rc, 64)
	b := RunBatched(rc, 64)
	if a != b {
		t.Fatalf("same batched config produced different results:\n%+v\n%+v", a, b)
	}
}
