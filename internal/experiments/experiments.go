// Package experiments contains the drivers that regenerate the paper's
// evaluation artifacts — Table 1's rows and scaling shapes, the lower-bound
// experiments behind Figure 1 and Theorems 2.2-2.4, and the estimator and
// adjustment ablations (the experiment index E1–E14 is documented in the
// root README.md). The cmd/table1, cmd/lowerbounds and cmd/experiments
// binaries and the root bench harness all call into this package so every
// number is produced by exactly one code path.
package experiments

import (
	"fmt"
	"math"

	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/lowerbound"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/sample"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// Problem identifies a tracking problem.
type Problem string

// Alg identifies an algorithm family.
type Alg string

// Enumerations for RunRow.
const (
	Count Problem = "count"
	Freq  Problem = "freq"
	Rank  Problem = "rank"

	Randomized    Alg = "randomized"
	Deterministic Alg = "deterministic"
	Sampling      Alg = "sampling"
)

// RowConfig parameterizes one protocol run.
type RowConfig struct {
	Problem Problem
	Alg     Alg
	K       int
	Eps     float64
	N       int
	Seed    uint64
	// Rescale is passed to randomized protocols (0 = paper default 3).
	// Table 1 comparisons use 1 so both families run at the same nominal ε.
	Rescale float64
}

// RowResult is the measured cost and accuracy of one run.
type RowResult struct {
	RowConfig
	Messages  int64
	Words     int64
	SiteSpace int // high-water per-site space in words
	Checks    int // number of accuracy checkpoints
	Bad       int // checkpoints outside the ε-band
	BadFrac   float64
}

// Run executes one row: the protocol on the standard workload for its
// problem (round-robin placement; Zipf(1.1) items for freq; a random value
// permutation for rank), checking accuracy at ~200 evenly spaced instants.
func Run(rc RowConfig) RowResult {
	return runRow(rc, 0)
}

// RunBatched executes one row on the block-structured variant of its
// workload — sites take turns receiving `block` consecutive arrivals, and
// (for count and freq) each block carries a single item — ingested through
// the runtimes' batch fast path, with the same ~200 accuracy checkpoints.
// It measures the batch path at experiment scale: protocol costs follow the
// same paper bounds (placement does not enter them), while wall-clock is
// proportional to messages instead of stream length.
func RunBatched(rc RowConfig, block int) RowResult {
	if block <= 0 {
		panic("experiments: RunBatched with non-positive block")
	}
	return runRow(rc, block)
}

func runRow(rc RowConfig, block int) RowResult {
	checkEvery := rc.N / 200
	if checkEvery < 1 {
		checkEvery = 1
	}
	res := RowResult{RowConfig: rc}

	var p proto.Protocol
	var check func(arrived int64) float64 // returns |err| allowance-normalized

	// Two independent copies of the input generators (same seed): one
	// feeds the harness, one replays ground truth inside the checks.
	feedItem, feedValue := rowInputs(rc, block)
	switch rc.Problem {
	case Count:
		p, check = buildCount(rc)
	case Freq:
		checkItem, _ := rowInputs(rc, block)
		p, check = buildFreq(rc, checkItem)
	case Rank:
		_, checkValue := rowInputs(rc, block)
		p, check = buildRank(rc, checkValue)
	default:
		panic("experiments: unknown problem " + string(rc.Problem))
	}

	h := sim.New(p)
	h.SpaceProbeEvery = 256
	if block > 0 {
		placement := workload.BlockPlacement(rc.K, block)
		for i := 0; i < rc.N; {
			// A run ends at the block boundary, the next checkpoint, or
			// the end of the stream, whichever comes first; rank values
			// vary per arrival, so rank runs are single elements.
			end := (i/block + 1) * block
			if c := (i/checkEvery + 1) * checkEvery; c < end {
				end = c
			}
			if end > rc.N {
				end = rc.N
			}
			site := placement(i)
			for i < end {
				j := end
				if rc.Problem == Rank {
					j = i + 1
				}
				h.ArriveBatch(site, feedItem(i), feedValue(i), int64(j-i))
				i = j
			}
			if i%checkEvery == 0 {
				res.Checks++
				if check(int64(i)) > 1 {
					res.Bad++
				}
			}
		}
	} else {
		placement := workload.RoundRobin(rc.K)
		for i := 0; i < rc.N; i++ {
			h.Arrive(placement(i), feedItem(i), feedValue(i))
			if (i+1)%checkEvery == 0 {
				res.Checks++
				if check(int64(i+1)) > 1 {
					res.Bad++
				}
			}
		}
	}
	h.Probe()
	m := h.Metrics()
	res.Messages = m.Messages()
	res.Words = m.Words()
	res.SiteSpace = m.MaxSiteSpace
	if res.Checks > 0 {
		res.BadFrac = float64(res.Bad) / float64(res.Checks)
	}
	return res
}

// rowInputs returns the item and value generators for a config. They are
// deterministic in the seed so that all algorithms see identical streams.
// With block > 0 the generators are reshaped for batching: freq draws one
// Zipf item per block (a hot flow per gateway turn) and the value channel,
// which count and freq ignore, is held constant so runs coalesce; rank
// keeps its distinct permutation values. Generators may be stateful, so
// callers must invoke them with non-decreasing indices.
func rowInputs(rc RowConfig, block int) (workload.ItemFunc, workload.ValueFunc) {
	switch rc.Problem {
	case Freq:
		items := workload.ZipfItems(1000, 1.1, stats.New(rc.Seed+77))
		if block > 0 {
			items = perBlock(items, block)
			return items, func(int) float64 { return 0 }
		}
		return items, workload.SortedValues()
	case Rank:
		return workload.SameItem(0), workload.PermValues(rc.N, stats.New(rc.Seed+78))
	default:
		if block > 0 {
			return workload.SameItem(0), func(int) float64 { return 0 }
		}
		return workload.SameItem(0), workload.SortedValues()
	}
}

// perBlock derives an ItemFunc drawing one item from f per block of
// consecutive indices, repeating it within the block. The wrapped generator
// is consulted once per block in index order, so stateful generators stay
// aligned between the feed and check copies.
func perBlock(f workload.ItemFunc, block int) workload.ItemFunc {
	curBlock := -1
	var curItem int64
	return func(i int) int64 {
		if b := i / block; b != curBlock {
			curBlock = b
			curItem = f(i)
		}
		return curItem
	}
}

func buildCount(rc RowConfig) (proto.Protocol, func(int64) float64) {
	switch rc.Alg {
	case Randomized:
		p, coord := count.NewProtocol(count.Config{K: rc.K, Eps: rc.Eps, Rescale: rc.Rescale}, rc.Seed)
		return p, func(n int64) float64 {
			return stats.RelErr(coord.Estimate(), float64(n)) / rc.Eps
		}
	case Deterministic:
		p, coord := count.NewDetProtocol(rc.K, rc.Eps)
		return p, func(n int64) float64 {
			return stats.RelErr(coord.Estimate(), float64(n)) / rc.Eps
		}
	case Sampling:
		p, coord := sample.NewProtocol(sample.Config{K: rc.K, Eps: rc.Eps}, rc.Seed)
		return p, func(n int64) float64 {
			return stats.RelErr(coord.Count(), float64(n)) / rc.Eps
		}
	}
	panic("experiments: unknown alg " + string(rc.Alg))
}

func buildFreq(rc RowConfig, items workload.ItemFunc) (proto.Protocol, func(int64) float64) {
	// Track the exact frequency of the hottest item (id 0 under Zipf).
	var truth int64
	idx := 0
	advance := func(n int64) int64 {
		for ; int64(idx) < n; idx++ {
			if items(idx) == 0 {
				truth++
			}
		}
		return truth
	}
	switch rc.Alg {
	case Randomized:
		p, coord := freq.NewProtocol(freq.Config{K: rc.K, Eps: rc.Eps, Rescale: rc.Rescale}, rc.Seed)
		return p, func(n int64) float64 {
			return math.Abs(coord.Estimate(0)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	case Deterministic:
		p, coord := freq.NewDetProtocol(rc.K, rc.Eps)
		return p, func(n int64) float64 {
			return math.Abs(coord.Estimate(0)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	case Sampling:
		p, coord := sample.NewProtocol(sample.Config{K: rc.K, Eps: rc.Eps}, rc.Seed)
		return p, func(n int64) float64 {
			return math.Abs(coord.Freq(0)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	}
	panic("experiments: unknown alg " + string(rc.Alg))
}

func buildRank(rc RowConfig, values workload.ValueFunc) (proto.Protocol, func(int64) float64) {
	q := float64(rc.N) / 2
	var below int64
	idx := 0
	advance := func(n int64) int64 {
		for ; int64(idx) < n; idx++ {
			if values(idx) < q {
				below++
			}
		}
		return below
	}
	switch rc.Alg {
	case Randomized:
		p, coord := rank.NewProtocol(rank.Config{K: rc.K, Eps: rc.Eps, Rescale: rc.Rescale}, rc.Seed)
		return p, func(n int64) float64 {
			return math.Abs(coord.Rank(q)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	case Deterministic:
		p, coord := rank.NewDetProtocol(rc.K, rc.Eps)
		return p, func(n int64) float64 {
			return math.Abs(coord.Rank(q)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	case Sampling:
		p, coord := sample.NewProtocol(sample.Config{K: rc.K, Eps: rc.Eps}, rc.Seed)
		return p, func(n int64) float64 {
			return math.Abs(coord.Rank(q)-float64(advance(n))) / (rc.Eps * float64(n))
		}
	}
	panic("experiments: unknown alg " + string(rc.Alg))
}

// AnalyticWords returns the paper's asymptotic communication formula
// (without constants) for a row, used to print predicted vs measured shapes.
func AnalyticWords(rc RowConfig) float64 {
	k := float64(rc.K)
	logN := math.Log2(float64(rc.N) + 2)
	switch {
	case rc.Problem == Count && rc.Alg == Deterministic:
		return k / rc.Eps * logN
	case rc.Problem == Count && rc.Alg == Randomized:
		return math.Sqrt(k) / rc.Eps * logN
	case rc.Problem == Freq && rc.Alg == Deterministic:
		return k / rc.Eps * logN
	case rc.Problem == Freq && rc.Alg == Randomized:
		return math.Sqrt(k) / rc.Eps * logN
	case rc.Problem == Rank && rc.Alg == Deterministic:
		return k / (rc.Eps * rc.Eps) * logN // the [6] baseline we implement
	case rc.Problem == Rank && rc.Alg == Randomized:
		l := math.Log2(1/(rc.Eps*math.Sqrt(k))) + 1
		if l < 1 {
			l = 1
		}
		return math.Sqrt(k) / rc.Eps * logN * math.Pow(l, 1.5)
	case rc.Alg == Sampling:
		return (1/(rc.Eps*rc.Eps) + k) * logN
	}
	return 0
}

// AnalyticSpace returns the paper's per-site space formula for a row.
func AnalyticSpace(rc RowConfig) float64 {
	k := float64(rc.K)
	switch {
	case rc.Problem == Count:
		return 1
	case rc.Problem == Freq && rc.Alg == Deterministic:
		return 1 / rc.Eps
	case rc.Problem == Freq && rc.Alg == Randomized:
		return 1 / (rc.Eps * math.Sqrt(k))
	case rc.Problem == Rank && rc.Alg == Deterministic:
		return 1 / rc.Eps * math.Log2(rc.Eps*float64(rc.N)+2)
	case rc.Problem == Rank && rc.Alg == Randomized:
		l := math.Log2(1/(rc.Eps*math.Sqrt(k))) + 1
		if l < 1 {
			l = 1
		}
		return 1 / (rc.Eps * math.Sqrt(k)) * math.Sqrt(l)
	case rc.Alg == Sampling:
		return 1
	}
	return 0
}

// Describe renders a row config compactly.
func (rc RowConfig) Describe() string {
	return fmt.Sprintf("%s/%s k=%d eps=%g n=%d", rc.Problem, rc.Alg, rc.K, rc.Eps, rc.N)
}

// MuSummary aggregates CompareUnderMu over several seeds.
type MuSummary struct {
	Draws          int
	SingleBranches int
	AvgDetMsgs     float64
	AvgRandMsgs    float64
	// RobinDetMsgs / RobinRandMsgs average only round-robin draws, the
	// branch where Theorem 2.2's separation shows.
	RobinDetMsgs  float64
	RobinRandMsgs float64
}

// RunMu runs the Theorem 2.2 comparison over draws seeds.
func RunMu(k int, eps float64, n, draws int) MuSummary {
	var s MuSummary
	robins := 0
	for seed := 0; seed < draws; seed++ {
		r := lowerbound.CompareUnderMu(k, eps, n, uint64(seed))
		s.Draws++
		s.AvgDetMsgs += float64(r.DetMessages)
		s.AvgRandMsgs += float64(r.RandMessages)
		if r.SingleSiteBranch {
			s.SingleBranches++
		} else {
			robins++
			s.RobinDetMsgs += float64(r.DetMessages)
			s.RobinRandMsgs += float64(r.RandMessages)
		}
	}
	s.AvgDetMsgs /= float64(s.Draws)
	s.AvgRandMsgs /= float64(s.Draws)
	if robins > 0 {
		s.RobinDetMsgs /= float64(robins)
		s.RobinRandMsgs /= float64(robins)
	}
	return s
}

// BiasAblation measures the mean signed error of the frequency estimators
// (2) vs (4) for an item appearing once every `period` arrivals, averaged
// over trials runs. Returns (biasedErr, unbiasedErr).
func BiasAblation(k, n, period, trials int, eps float64) (biased, unbiased float64) {
	const item = int64(424242)
	itemOf := func(i int) int64 {
		if i%period == 0 {
			return item
		}
		return int64(i)
	}
	run := func(useBiased bool, seed uint64) float64 {
		cfg := freq.Config{K: k, Eps: eps, Rescale: 1, BiasedEstimator: useBiased}
		p, coord := freq.NewProtocol(cfg, seed)
		h := sim.New(p)
		for i := 0; i < n; i++ {
			h.Arrive(i%k, itemOf(i), 0)
		}
		return coord.Estimate(item) - float64((n+period-1)/period)
	}
	for tr := 0; tr < trials; tr++ {
		biased += run(true, uint64(8000+tr))
		unbiased += run(false, uint64(8000+tr))
	}
	return biased / float64(trials), unbiased / float64(trials)
}

// AdjustmentAblation measures the mean signed error of the count estimate
// at the instants where it matters: immediately after every round boundary
// that halved p, with and without the paper's re-randomization step.
// Without the adjustment, every site's stale n̄_i is paired with the new,
// doubled 1/p in estimator (1), inflating the estimate by roughly
// k·(1/p_new − 1/p_old) until fresh updates arrive. Errors are normalized
// by the current n and averaged over all halving instants and trials.
// Returns (withAdjustment, withoutAdjustment) mean relative errors.
func AdjustmentAblation(k, n, trials int, eps float64) (with, without float64) {
	run := func(disable bool, seed uint64) float64 {
		cfg := count.Config{K: k, Eps: eps, Rescale: 1, DisableAdjustment: disable}
		p, coord := count.NewProtocol(cfg, seed)
		h := sim.New(p)
		lastP := coord.P()
		sum, hits := 0.0, 0
		for i := 0; i < n; i++ {
			h.Arrive(i%k, 0, 0)
			if cp := coord.P(); cp < lastP {
				lastP = cp
				sum += (coord.Estimate() - float64(i+1)) / float64(i+1)
				hits++
			}
		}
		if hits == 0 {
			return 0
		}
		return sum / float64(hits)
	}
	for tr := 0; tr < trials; tr++ {
		with += run(false, uint64(9000+tr))
		without += run(true, uint64(9000+tr))
	}
	return with / float64(trials), without / float64(trials)
}
