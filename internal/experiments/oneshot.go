package experiments

import (
	"math"

	"disttrack/internal/oneshot"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// OneShotComparison records experiment E13: the cost of tracking a function
// continuously versus computing it once at the end, on the same data. The
// paper (§1.3): for frequencies and ranks, tracking is only a Θ(logN)
// factor more expensive than the one-shot O(√k/ε) protocols of [13, 14];
// for count, the one-shot version is trivial (k words) so the ratio is
// unbounded — count tracking is "much harder than its one-shot version".
type OneShotComparison struct {
	Problem       Problem
	K             int
	Eps           float64
	N             int
	TrackingWords int64
	OneShotWords  int64
	Ratio         float64
	LogN          float64
	RatioPerLogN  float64
}

// TrackingVsOneShot runs the randomized tracker and the randomized one-shot
// protocol on identical data and compares their word costs.
func TrackingVsOneShot(problem Problem, k int, eps float64, n int, seed uint64) OneShotComparison {
	track := Run(RowConfig{Problem: problem, Alg: Randomized, K: k, Eps: eps,
		N: n, Seed: seed, Rescale: 1})

	var osWords int64
	rng := stats.New(seed + 1000)
	switch problem {
	case Count:
		counts := make([]int64, k)
		for i := 0; i < n; i++ {
			counts[i%k]++
		}
		_, res := oneshot.Count(counts)
		osWords = res.Words
	case Freq:
		itemF := workload.ZipfItems(1000, 1.1, stats.New(seed+77))
		streams := make([][]int64, k)
		for i := 0; i < n; i++ {
			streams[i%k] = append(streams[i%k], itemF(i))
		}
		_, res := oneshot.FreqRand(streams, eps, rng)
		osWords = res.Words
	case Rank:
		valueF := workload.PermValues(n, stats.New(seed+78))
		streams := make([][]float64, k)
		for i := 0; i < n; i++ {
			streams[i%k] = append(streams[i%k], valueF(i))
		}
		_, res := oneshot.RankRand(streams, eps, rng)
		osWords = res.Words
	default:
		panic("experiments: unknown problem " + string(problem))
	}

	c := OneShotComparison{
		Problem:       problem,
		K:             k,
		Eps:           eps,
		N:             n,
		TrackingWords: track.Words,
		OneShotWords:  osWords,
		LogN:          math.Log2(float64(n)),
	}
	if osWords > 0 {
		c.Ratio = float64(track.Words) / float64(osWords)
		c.RatioPerLogN = c.Ratio / c.LogN
	}
	return c
}
