// Package trace provides the small reporting helpers the experiment
// binaries share: fixed-width text tables (the paper-table reproductions)
// and CSV output for downstream plotting.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic("trace: row has more cells than headers")
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: callers only
// emit numbers and simple identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
