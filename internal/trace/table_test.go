package trace

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	// Columns must align: "value" column starts at the same offset.
	idx0 := strings.Index(lines[0], "value")
	idx2 := strings.Index(lines[2], "1")
	if idx0 != idx2 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestAddRowfSplitsOnPipe(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRowf("%d|%s|%0.2f", 7, "x", 1.5)
	if got := tb.rows[0][2]; got != "1.50" {
		t.Fatalf("AddRowf cell = %q", got)
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	if tb.rows[0][1] != "" {
		t.Fatal("missing cell not padded")
	}
}

func TestTooManyCellsPanics(t *testing.T) {
	tb := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row did not panic")
		}
	}()
	tb.AddRow("1", "2")
}

func TestCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	want := "x,y\n1,2\n3,4\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
