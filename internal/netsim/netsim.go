// Package netsim runs a tracking protocol as a genuinely concurrent system:
// one goroutine per site plus one for the coordinator, connected by
// unbounded mailboxes. It preserves the paper's instant-communication model
// by counting in-flight work: an element is only injected after the previous
// cascade has fully quiesced.
//
// The protocols themselves are the same passive state machines that
// internal/sim drives sequentially; netsim exists to demonstrate (and test,
// under -race) that they are real distributed protocols with no hidden
// shared state.
package netsim

import (
	"sync"
	"sync/atomic"

	"disttrack/internal/proto"
)

// Metrics mirrors sim.Metrics for the concurrent runtime (atomics inside).
type Metrics struct {
	MessagesUp   int64
	MessagesDown int64
	WordsUp      int64
	WordsDown    int64
	Broadcasts   int64
	Arrivals     int64
}

// Messages returns total messages exchanged.
func (m Metrics) Messages() int64 { return m.MessagesUp + m.MessagesDown }

// Words returns total words exchanged.
func (m Metrics) Words() int64 { return m.WordsUp + m.WordsDown }

// mailbox is an unbounded FIFO usable from multiple producers with one
// consumer loop.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []any
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(v any) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, v)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// get blocks until a value is available or the mailbox is closed.
func (mb *mailbox) get() (any, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, false
	}
	v := mb.queue[0]
	mb.queue = mb.queue[1:]
	return v, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

type arrival struct {
	item  int64
	value float64
}

// arrivalChunk asks a site to absorb up to count identical arrivals via the
// proto.BatchSite fast path, reporting how many it consumed on done.
type arrivalChunk struct {
	item  int64
	value float64
	count int64
	done  chan int64
}

type coordMsg struct {
	from int
	msg  proto.Message
}

// Cluster hosts one protocol concurrently. Create with Start, feed with
// Arrive, synchronize with Quiesce, and Stop when done.
type Cluster struct {
	p proto.Protocol

	siteBoxes []*mailbox
	coordBox  *mailbox

	inflight sync.WaitGroup
	wg       sync.WaitGroup

	messagesUp, messagesDown int64
	wordsUp, wordsDown       int64
	broadcasts, arrivals     int64
}

// Start launches the goroutines for the protocol and returns the running
// cluster.
func Start(p proto.Protocol) *Cluster {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("netsim: protocol needs a coordinator and at least one site")
	}
	c := &Cluster{
		p:         p,
		siteBoxes: make([]*mailbox, len(p.Sites)),
		coordBox:  newMailbox(),
	}
	for i := range c.siteBoxes {
		c.siteBoxes[i] = newMailbox()
	}
	for i := range p.Sites {
		c.wg.Add(1)
		go c.siteLoop(i)
	}
	c.wg.Add(1)
	go c.coordLoop()
	return c
}

// sendToCoord enqueues a site->coordinator message; inflight accounting
// brackets the send so Quiesce cannot return while it is pending.
func (c *Cluster) sendToCoord(from int, m proto.Message) {
	c.inflight.Add(1)
	atomic.AddInt64(&c.messagesUp, 1)
	atomic.AddInt64(&c.wordsUp, int64(m.Words()))
	c.coordBox.put(coordMsg{from: from, msg: m})
}

func (c *Cluster) sendToSite(to int, m proto.Message) {
	c.inflight.Add(1)
	atomic.AddInt64(&c.messagesDown, 1)
	atomic.AddInt64(&c.wordsDown, int64(m.Words()))
	c.siteBoxes[to].put(m)
}

func (c *Cluster) siteLoop(i int) {
	defer c.wg.Done()
	site := c.p.Sites[i]
	box := c.siteBoxes[i]
	out := func(m proto.Message) { c.sendToCoord(i, m) }
	for {
		v, ok := box.get()
		if !ok {
			return
		}
		switch msg := v.(type) {
		case arrival:
			site.Arrive(msg.item, msg.value, out)
		case arrivalChunk:
			msg.done <- proto.ArriveChunk(site, msg.item, msg.value, msg.count, out)
		case proto.Message:
			site.Receive(msg, out)
		}
		c.inflight.Done()
	}
}

func (c *Cluster) coordLoop() {
	defer c.wg.Done()
	send := func(to int, m proto.Message) { c.sendToSite(to, m) }
	broadcast := func(m proto.Message) {
		atomic.AddInt64(&c.broadcasts, 1)
		for s := range c.p.Sites {
			c.sendToSite(s, m)
		}
	}
	for {
		v, ok := c.coordBox.get()
		if !ok {
			return
		}
		cm := v.(coordMsg)
		c.p.Coord.Receive(cm.from, cm.msg, send, broadcast)
		c.inflight.Done()
	}
}

// Arrive injects one element at site and blocks until the whole system is
// quiescent again, matching the paper's model where no element arrives while
// messages are outstanding.
func (c *Cluster) Arrive(site int, item int64, value float64) {
	atomic.AddInt64(&c.arrivals, 1)
	c.inflight.Add(1)
	c.siteBoxes[site].put(arrival{item: item, value: value})
	c.inflight.Wait()
}

// ArriveBatch injects count identical elements at site, equivalent to count
// Arrive calls: each chunk is absorbed up to the site's next message via the
// proto.BatchSite fast path, then the resulting cascade is run to
// quiescence before the rest of the run is fed — so round broadcasts land
// between arrivals exactly as they would element-at-a-time. Like Arrive, it
// must not be called concurrently with other injections.
func (c *Cluster) ArriveBatch(site int, item int64, value float64, count int64) {
	done := make(chan int64, 1)
	for count > 0 {
		c.inflight.Add(1)
		c.siteBoxes[site].put(arrivalChunk{item: item, value: value, count: count, done: done})
		consumed := <-done
		c.inflight.Wait()
		atomic.AddInt64(&c.arrivals, consumed)
		count -= consumed
	}
}

// Quiesce blocks until no work is in flight. (Arrive already quiesces; this
// is exposed for callers injecting at multiple sites.)
func (c *Cluster) Quiesce() { c.inflight.Wait() }

// Metrics returns a snapshot of the cost counters. Call after Quiesce for a
// consistent view.
func (c *Cluster) Metrics() Metrics {
	return Metrics{
		MessagesUp:   atomic.LoadInt64(&c.messagesUp),
		MessagesDown: atomic.LoadInt64(&c.messagesDown),
		WordsUp:      atomic.LoadInt64(&c.wordsUp),
		WordsDown:    atomic.LoadInt64(&c.wordsDown),
		Broadcasts:   atomic.LoadInt64(&c.broadcasts),
		Arrivals:     atomic.LoadInt64(&c.arrivals),
	}
}

// Stop shuts down all goroutines. The cluster must be quiescent.
func (c *Cluster) Stop() {
	for _, mb := range c.siteBoxes {
		mb.close()
	}
	c.coordBox.close()
	c.wg.Wait()
}
