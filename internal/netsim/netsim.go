// Package netsim runs a tracking protocol as a genuinely concurrent system:
// one goroutine per site plus one for the coordinator, connected by
// unbounded mailboxes. It preserves the paper's instant-communication model
// by counting in-flight work: an element is only injected after the previous
// cascade has fully quiesced. Cluster implements the runtime.Transport seam
// (the goroutine transport behind disttrack.TransportGoroutine); the
// injection, quiescence, accounting, and space-probing machinery is the
// shared runtime.Fabric, so this package only supplies the goroutine
// message delivery.
//
// The protocols themselves are the same passive state machines that
// internal/sim drives sequentially; netsim exists to demonstrate (and test,
// under -race) that they are real distributed protocols with no hidden
// shared state.
package netsim

import (
	"sync"

	"disttrack/internal/proto"
	"disttrack/internal/runtime"
)

// Metrics is the shared cost ledger of the runtime seam.
type Metrics = runtime.Metrics

// Cluster hosts one protocol concurrently. Create with Start, feed with
// Arrive, synchronize with Quiesce, and Stop when done. The embedded
// Fabric provides Arrive/ArriveBatch/Quiesce/Probe/SetTap/Metrics.
type Cluster struct {
	*runtime.Fabric
	wg sync.WaitGroup
}

// Start launches the goroutines for the protocol and returns the running
// cluster.
func Start(p proto.Protocol) *Cluster {
	c := &Cluster{Fabric: runtime.NewFabric(p)}
	for i := range p.Sites {
		i := i
		// Site delivery enqueues on the coordinator mailbox; no flush hook —
		// a mailbox put is already visible, there is nothing to coalesce.
		c.BindSite(i, func(m proto.Message) {
			c.CoordBox.Put(runtime.FromMsg{From: i, Msg: m})
		}, nil)
	}
	c.BindCoord(func(to int, m proto.Message) {
		c.SiteBoxes[to].Put(m)
	}, nil)
	for i := range p.Sites {
		c.wg.Add(1)
		go c.siteLoop(i)
	}
	c.wg.Add(1)
	go c.coordLoop()
	return c
}

// siteLoop runs site i's delivery loop (drains coordinator messages in
// batches; arrivals themselves are injected inline by Fabric.Arrive).
func (c *Cluster) siteLoop(i int) {
	defer c.wg.Done()
	c.RunSiteLoop(i)
}

// coordLoop runs the coordinator machine.
func (c *Cluster) coordLoop() {
	defer c.wg.Done()
	c.RunCoordLoop()
}

// Stop shuts down all goroutines. The cluster must be quiescent.
func (c *Cluster) Stop() {
	c.CloseBoxes()
	c.wg.Wait()
}

// Close implements runtime.Transport.
func (c *Cluster) Close() { c.Stop() }
