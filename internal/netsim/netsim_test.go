package netsim

import (
	"testing"

	"disttrack/internal/proto"
)

type wordMsg int

func (w wordMsg) Words() int { return int(w) }

// countingSite forwards arrivals and counts broadcasts; all state is guarded
// by the runtime's single-goroutine-per-site guarantee, checked by -race.
type countingSite struct {
	arrivals int
	received int
}

func (s *countingSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.arrivals++
	out(wordMsg(1))
}
func (s *countingSite) Receive(m proto.Message, out func(proto.Message)) { s.received++ }
func (s *countingSite) SpaceWords() int                                  { return 1 }

type pulseCoord struct {
	every    int
	received int
}

func (c *pulseCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	c.received++
	if c.every > 0 && c.received%c.every == 0 {
		broadcast(wordMsg(2))
	}
}
func (c *pulseCoord) SpaceWords() int { return 1 }

func startToy(k, every int) (*Cluster, []*countingSite, *pulseCoord) {
	sites := make([]*countingSite, k)
	ps := make([]proto.Site, k)
	for i := range sites {
		sites[i] = &countingSite{}
		ps[i] = sites[i]
	}
	coord := &pulseCoord{every: every}
	return Start(proto.Protocol{Coord: coord, Sites: ps}), sites, coord
}

func TestConcurrentAccountingMatchesSequentialSemantics(t *testing.T) {
	c, sites, coord := startToy(4, 10)
	for i := 0; i < 100; i++ {
		c.Arrive(i%4, 0, 0)
	}
	c.Quiesce()
	m := c.Metrics()
	c.Stop()
	if m.Arrivals != 100 || m.MessagesUp != 100 || m.WordsUp != 100 {
		t.Fatalf("up accounting: %+v", m)
	}
	if m.Broadcasts != 10 || m.MessagesDown != 40 || m.WordsDown != 80 {
		t.Fatalf("down accounting: %+v", m)
	}
	if coord.received != 100 {
		t.Fatalf("coordinator received %d", coord.received)
	}
	for i, s := range sites {
		if s.arrivals != 25 || s.received != 10 {
			t.Fatalf("site %d: arrivals=%d received=%d", i, s.arrivals, s.received)
		}
	}
}

func TestQuiescenceAfterEveryArrival(t *testing.T) {
	// After Arrive returns, the effects of the full cascade must be visible:
	// with every=1, each arrival yields exactly one broadcast to all sites.
	c, sites, _ := startToy(3, 1)
	for i := 0; i < 20; i++ {
		c.Arrive(0, 0, 0)
		total := 0
		for _, s := range sites {
			total += s.received
		}
		if total != 3*(i+1) {
			t.Fatalf("after arrival %d: %d broadcast deliveries, want %d", i, total, 3*(i+1))
		}
	}
	c.Stop()
}

func TestMultiHopCascadeQuiesces(t *testing.T) {
	// Site acks broadcasts; coordinator broadcasts once on the first
	// message. Arrive must not return before the ack lands.
	coord := &onceCoord{}
	site := &ackSite{}
	c := Start(proto.Protocol{Coord: coord, Sites: []proto.Site{site}})
	c.Arrive(0, 0, 0)
	m := c.Metrics()
	if m.MessagesUp != 2 || m.MessagesDown != 1 {
		t.Fatalf("cascade metrics: %+v", m)
	}
	c.Stop()
	if coord.acks != 1 {
		t.Fatalf("acks = %d", coord.acks)
	}
}

type ackSite struct{}

func (s *ackSite) Arrive(item int64, value float64, out func(proto.Message)) { out(wordMsg(1)) }
func (s *ackSite) Receive(m proto.Message, out func(proto.Message))          { out(wordMsg(1)) }
func (s *ackSite) SpaceWords() int                                           { return 0 }

type onceCoord struct {
	sent bool
	acks int
}

func (c *onceCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if !c.sent {
		c.sent = true
		broadcast(wordMsg(1))
	} else {
		c.acks++
	}
}
func (c *onceCoord) SpaceWords() int { return 0 }

func TestDirectedSend(t *testing.T) {
	// Coordinator replies only to the sender.
	coord := &replyCoord{}
	s0, s1 := &countingSite{}, &countingSite{}
	c := Start(proto.Protocol{Coord: coord, Sites: []proto.Site{s0, s1}})
	c.Arrive(1, 0, 0)
	c.Stop()
	if s0.received != 0 || s1.received != 1 {
		t.Fatalf("directed send misrouted: s0=%d s1=%d", s0.received, s1.received)
	}
}

type replyCoord struct{}

func (c *replyCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	send(from, wordMsg(1))
}
func (c *replyCoord) SpaceWords() int { return 0 }

func TestStartValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty protocol did not panic")
		}
	}()
	Start(proto.Protocol{})
}
