// Package boost provides generic probability amplification for tracking
// protocols: it multiplexes c independent copies of a protocol into a single
// protocol, so a caller can take the median of the copies' estimates.
//
// This is the paper's Section 1.2 boosting argument in reusable form: each
// copy is correct at any one instant with constant probability, so the
// median of 2t+1 copies is correct except with probability exp(−Ω(t)), and
// O(log(logN/(δε))) copies make the tracker correct at ALL of the
// O(1/ε·logN) effective time instants with probability 1−δ.
//
// The copy index on each message is routing information (a port number);
// Words charges only the inner message, matching the paper's accounting of
// boosting as a multiplicative factor on communication.
package boost

import "disttrack/internal/proto"

// Msg wraps an inner protocol message with its copy index.
type Msg struct {
	Copy  int
	Inner proto.Message
}

// Words implements proto.Message.
func (m Msg) Words() int { return m.Inner.Words() }

// site multiplexes one site of every copy. The per-copy wrappers are built
// once (writing through cur) so the hot path allocates no closures.
type site struct {
	copies []proto.Site
	outs   []func(proto.Message)
	cur    func(proto.Message)
}

func newSite(copies []proto.Site) *site {
	s := &site{copies: copies, outs: make([]func(proto.Message), len(copies))}
	for i := range copies {
		s.outs[i] = func(m proto.Message) { s.cur(Msg{Copy: i, Inner: m}) }
	}
	return s
}

// Arrive implements proto.Site.
func (s *site) Arrive(item int64, value float64, out func(proto.Message)) {
	s.cur = out
	for i, cp := range s.copies {
		cp.Arrive(item, value, s.outs[i])
	}
	s.cur = nil
}

// Receive implements proto.Site. A copy index outside the configured range
// (possible only on a wire transport fed corrupt frames) is dropped like
// any other unexpected message.
func (s *site) Receive(m proto.Message, out func(proto.Message)) {
	bm, ok := m.(Msg)
	if !ok || bm.Copy < 0 || bm.Copy >= len(s.copies) {
		return
	}
	s.cur = out
	s.copies[bm.Copy].Receive(bm.Inner, s.outs[bm.Copy])
	s.cur = nil
}

// SpaceWords implements proto.Site.
func (s *site) SpaceWords() int {
	w := 0
	for _, cp := range s.copies {
		w += cp.SpaceWords()
	}
	return w
}

// coordinator multiplexes the copies' coordinators.
type coordinator struct {
	copies []proto.Coordinator
}

// Receive implements proto.Coordinator. Out-of-range copy indices are
// dropped (see site.Receive).
func (c *coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	bm, ok := m.(Msg)
	if !ok || bm.Copy < 0 || bm.Copy >= len(c.copies) {
		return
	}
	idx := bm.Copy
	c.copies[idx].Receive(from, bm.Inner,
		func(to int, inner proto.Message) { send(to, Msg{Copy: idx, Inner: inner}) },
		func(inner proto.Message) { broadcast(Msg{Copy: idx, Inner: inner}) })
}

// Resync implements proto.Resyncer: each copy's resync messages are
// replayed under its copy index, so a rejoining site's copies each land in
// their coordinator's current round.
func (c *coordinator) Resync(emit func(proto.Message)) {
	for idx, cp := range c.copies {
		if rs, ok := cp.(proto.Resyncer); ok {
			rs.Resync(func(inner proto.Message) { emit(Msg{Copy: idx, Inner: inner}) })
		}
	}
}

// SnapshotState implements proto.Snapshotter: each copy's records, wrapped
// with its copy index exactly like live traffic. Copies that cannot
// snapshot contribute nothing — in practice every boosted coordinator
// implements proto.Snapshotter, so nothing is lost.
func (c *coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	for idx, cp := range c.copies {
		if sn, ok := cp.(proto.Snapshotter); ok {
			sn.SnapshotState(func(from int, inner proto.Message) {
				emit(from, Msg{Copy: idx, Inner: inner})
			})
		}
	}
}

// RestoreState implements proto.Snapshotter.
func (c *coordinator) RestoreState(from int, m proto.Message) {
	bm, ok := m.(Msg)
	if !ok || bm.Copy < 0 || bm.Copy >= len(c.copies) {
		return
	}
	if sn, ok := c.copies[bm.Copy].(proto.Snapshotter); ok {
		sn.RestoreState(from, bm.Inner)
	}
}

// SpaceWords implements proto.Coordinator.
func (c *coordinator) SpaceWords() int {
	w := 0
	for _, cp := range c.copies {
		w += cp.SpaceWords()
	}
	return w
}

// Wrap fuses c >= 1 protocol copies (same k) into one protocol. The caller
// keeps the copies' concrete coordinators to combine their estimates
// (typically via stats.Median).
func Wrap(copies []proto.Protocol) proto.Protocol {
	if len(copies) == 0 {
		panic("boost: need at least one copy")
	}
	k := copies[0].K()
	for _, p := range copies {
		if p.K() != k {
			panic("boost: copies disagree on k")
		}
	}
	sites := make([]proto.Site, k)
	for i := 0; i < k; i++ {
		cs := make([]proto.Site, len(copies))
		for ci, p := range copies {
			cs[ci] = p.Sites[i]
		}
		sites[i] = newSite(cs)
	}
	mc := &coordinator{copies: make([]proto.Coordinator, len(copies))}
	for ci, p := range copies {
		mc.copies[ci] = p.Coord
	}
	return proto.Protocol{Coord: mc, Sites: sites}
}

// WrapCoordinators fuses just the copies' coordinators — the coordinator
// half of Wrap, for rebuilding a crashed boosted coordinator over the
// surviving site machines (durable crash-restart recovery).
func WrapCoordinators(coords []proto.Coordinator) proto.Coordinator {
	if len(coords) == 0 {
		panic("boost: need at least one copy")
	}
	return &coordinator{copies: coords}
}
