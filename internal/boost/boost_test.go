package boost

import (
	"math"
	"testing"

	"disttrack/internal/freq"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestWrapValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty Wrap did not panic")
			}
		}()
		Wrap(nil)
	}()
	p1, _ := freq.NewProtocol(freq.Config{K: 2, Eps: 0.1}, 1)
	p2, _ := freq.NewProtocol(freq.Config{K: 3, Eps: 0.1}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched k did not panic")
		}
	}()
	Wrap([]proto.Protocol{p1, p2})
}

func TestMsgWordsChargeInnerOnly(t *testing.T) {
	m := Msg{Copy: 5, Inner: freq.CounterMsg{Item: 1, Count: 2}}
	if m.Words() != 2 {
		t.Fatalf("Msg.Words = %d, want 2", m.Words())
	}
}

func TestBoostedFrequencyMedianCoverage(t *testing.T) {
	// 7 copies of the randomized frequency tracker at Rescale 1; the median
	// estimate must stay inside the ε-band at every checkpoint even though
	// single copies at Rescale 1 only give ~1σ per instant.
	const k = 8
	const eps = 0.1
	const n = 20000
	const copies = 7
	root := stats.New(555)
	ps := make([]proto.Protocol, copies)
	coords := make([]*freq.Coordinator, copies)
	for i := range ps {
		ps[i], coords[i] = freq.NewProtocol(freq.Config{K: k, Eps: eps, Rescale: 1}, root.Uint64())
	}
	h := sim.New(Wrap(ps))
	itemF := workload.ZipfItems(200, 1.1, stats.New(556))
	truth := map[int64]int64{}
	median := func(j int64) float64 {
		ests := make([]float64, copies)
		for i, c := range coords {
			ests[i] = c.Estimate(j)
		}
		return stats.Median(ests)
	}
	bad, checks := 0, 0
	for i := 0; i < n; i++ {
		j := itemF(i)
		truth[j]++
		h.Arrive(i%k, j, 0)
		if i%101 != 0 || i == 0 {
			continue
		}
		for _, q := range []int64{0, 1, 5} {
			checks++
			if math.Abs(median(q)-float64(truth[q])) > eps*float64(i+1) {
				bad++
			}
		}
	}
	if bad > 0 {
		t.Fatalf("boosted median failed %d/%d checks", bad, checks)
	}
}

func TestBoostedCostScalesWithCopies(t *testing.T) {
	const k = 4
	const eps = 0.1
	const n = 10000
	run := func(copies int) int64 {
		root := stats.New(77)
		ps := make([]proto.Protocol, copies)
		for i := range ps {
			ps[i], _ = rank.NewProtocol(rank.Config{K: k, Eps: eps, Rescale: 1}, root.Uint64())
		}
		h := sim.New(Wrap(ps))
		valueF := workload.PermValues(n, stats.New(78))
		for i := 0; i < n; i++ {
			h.Arrive(i%k, 0, valueF(i))
		}
		return h.Metrics().Words()
	}
	w1 := run(1)
	w5 := run(5)
	ratio := float64(w5) / float64(w1)
	if ratio < 3.5 || ratio > 7 {
		t.Fatalf("5-copy words ratio %v, want ~5", ratio)
	}
}

func TestCopiesAreIndependent(t *testing.T) {
	// Two copies with different seeds should produce different randomized
	// estimates at Rescale 1 mid-stream (same estimates would indicate
	// shared RNG state).
	const k = 4
	root := stats.New(91)
	p1, c1 := freq.NewProtocol(freq.Config{K: k, Eps: 0.05, Rescale: 1}, root.Uint64())
	p2, c2 := freq.NewProtocol(freq.Config{K: k, Eps: 0.05, Rescale: 1}, root.Uint64())
	h := sim.New(Wrap([]proto.Protocol{p1, p2}))
	for i := 0; i < 30000; i++ {
		h.Arrive(i%k, int64(i%7), 0)
	}
	same := 0
	for j := int64(0); j < 7; j++ {
		if c1.Estimate(j) == c2.Estimate(j) {
			same++
		}
	}
	if same == 7 {
		t.Fatal("both copies produced identical estimates for all items")
	}
}

func TestUnknownMessageIgnored(t *testing.T) {
	p1, _ := freq.NewProtocol(freq.Config{K: 1, Eps: 0.5}, 3)
	w := Wrap([]proto.Protocol{p1})
	// Deliver a non-boost message directly; must not panic.
	w.Sites[0].Receive(freq.SampleMsg{Item: 1}, func(proto.Message) {})
	w.Coord.Receive(0, freq.SampleMsg{Item: 1},
		func(int, proto.Message) {}, func(proto.Message) {})
}
