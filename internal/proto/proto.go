// Package proto defines the contracts between tracking protocols and the
// runtimes that host them.
//
// A protocol is written as two passive state machines — a per-site machine
// and a coordinator machine — that exchange Messages. The same protocol code
// runs unchanged on the sequential exact-accounting simulator
// (internal/sim) and on the concurrent goroutine runtime (internal/netsim);
// both enforce the paper's "communication is instant" semantics by running
// every message cascade to quiescence before the next element arrives.
package proto

import "math"

// Message is one unit of communication. Words reports its size in the
// paper's word-based accounting: any integer less than N, an element, a
// counter value, or a level tag is one word. The envelope (sender identity)
// is free. A broadcast costs k times the message.
type Message interface {
	Words() int
}

// Site is the per-site half of a protocol. Runtimes guarantee that calls on
// one Site value are never concurrent.
type Site interface {
	// Arrive processes one element landing at this site: item is the
	// identity used by frequency tracking, value the ordered key used by
	// rank tracking (count tracking ignores both). out enqueues a message
	// to the coordinator.
	Arrive(item int64, value float64, out func(Message))

	// Receive processes one message from the coordinator.
	Receive(m Message, out func(Message))

	// SpaceWords reports the site's current working space in words.
	SpaceWords() int
}

// BatchSite is an optional fast path for sites that can absorb a run of
// identical arrivals in closed form — skip-sampling the gap to their next
// report instead of flipping one coin per arrival, or ingesting the run
// into a summary wholesale (merge.InsertRun) instead of value by value.
type BatchSite interface {
	Site

	// ArriveBatch processes up to count consecutive arrivals of the same
	// (item, value) pair, stopping early after the first arrival that
	// emitted at least one message. It returns the number of arrivals
	// consumed, at least 1 when count >= 1. Stopping at message boundaries
	// lets the hosting runtime deliver the messages — and any coordinator
	// response, such as a round broadcast that changes the site's sampling
	// probability — before the rest of the run is fed, so a batched run is
	// indistinguishable from element-at-a-time delivery.
	ArriveBatch(item int64, value float64, count int64, out func(Message)) int64
}

// ArriveChunk feeds up to count identical arrivals to s, using the BatchSite
// fast path when s implements it and falling back to a single Arrive (one
// element consumed) otherwise. It returns the number of arrivals consumed.
func ArriveChunk(s Site, item int64, value float64, count int64, out func(Message)) int64 {
	if count <= 0 {
		return 0
	}
	if bs, ok := s.(BatchSite); ok {
		return bs.ArriveBatch(item, value, count, out)
	}
	s.Arrive(item, value, out)
	return 1
}

// ArriveSerial implements the BatchSite contract for sites whose per-element
// work cannot be skipped (e.g. every value must enter a summary): it feeds
// elements one at a time through arrive, stopping after the first element
// that emitted a message, and returns the number consumed. Protocol sites
// embed it as their ArriveBatch body.
func ArriveSerial(arrive func(item int64, value float64, out func(Message)),
	item int64, value float64, count int64, out func(Message)) int64 {
	emitted := false
	wrap := func(m Message) { emitted = true; out(m) }
	var done int64
	for done < count && !emitted {
		arrive(item, value, wrap)
		done++
	}
	return done
}

// Coordinator is the central half of a protocol. Runtimes guarantee that
// calls are never concurrent.
type Coordinator interface {
	// Receive processes a message from site from. send transmits to a single
	// site; broadcast transmits to all k sites at k times the cost.
	Receive(from int, m Message, send func(to int, m Message), broadcast func(Message))

	// SpaceWords reports the coordinator's current state size in words.
	SpaceWords() int
}

// Resyncer is an optional Coordinator capability used by the distributed
// mode's crash/rejoin recovery: Resync emits the messages that bring a
// freshly created site machine up to the coordinator's current round or
// level — the same round broadcast (or level announcement) a live site
// would have received, replayed for the newcomer. Coordinators whose sites
// carry no coordinator-fed state (the deterministic baselines) simply
// don't implement it.
type Resyncer interface {
	Resync(emit func(Message))
}

// Snapshotter is an optional Coordinator capability used by the durability
// layer (internal/persist): SnapshotState serializes the coordinator's
// entire state as a stream of (from, message) records, and RestoreState
// rebuilds that state record by record into a freshly constructed
// coordinator. The records reuse the protocol's own message types (plus
// StateMsg for pieces no protocol message carries), so they ride the
// existing wire codecs; from is the site a record is attributed to, or -1
// for global records. RestoreState must be a pure state write — it never
// emits messages and never triggers round transitions, compactions, or any
// other Receive-path side effect — and a SnapshotState/RestoreState round
// trip through a fresh coordinator must reproduce the original state
// exactly. Records must be replayed in emission order. RestoreState
// ignores records it does not recognize and bounds-checks from before
// indexing per-site state, so a corrupt log degrades to an error or a
// partial restore, never a panic.
//
// Coordinators that don't implement Snapshotter (the deterministic
// baselines) still recover — the persistence layer falls back to replaying
// the full write-ahead log from an empty coordinator, it just cannot
// compact the log with snapshots.
type Snapshotter interface {
	SnapshotState(emit func(from int, m Message))
	RestoreState(from int, m Message)
}

// StateMsg is a generic snapshot record for coordinator state that no
// protocol message carries (round indices, per-round probabilities,
// per-site thresholds). Key identifies the field — each coordinator
// package owns a disjoint key range, because records from an embedded
// rounds.Coordinator flow through the embedding coordinator's
// RestoreState — and A, B, F carry the value. StateMsg never crosses the
// site/coordinator links; it exists only inside snapshots and write-ahead
// logs, but implements Message so it can ride the wire codec registry.
type StateMsg struct {
	Key  int64
	A, B int64
	F    float64
}

// Words implements Message.
func (StateMsg) Words() int { return 4 }

// Protocol bundles a coordinator with its k sites, ready to be mounted on a
// runtime.
type Protocol struct {
	Coord Coordinator
	Sites []Site
}

// K returns the number of sites.
func (p Protocol) K() int { return len(p.Sites) }

// Aggregator is the coordinator half of an interior tree node: it runs the
// coordinator-side protocol against its children (the embedded Coordinator
// contract, including the optional Resyncer/Snapshotter capabilities) and
// re-expresses the absorbed child reports as virtual arrivals for the
// site-side protocol it plays against its parent.
//
// DrainFeed is called by the hosting topology at quiescent instants — after
// an arrival's (or batch's) cascade has fully settled — never mid-cascade.
// That timing is what keeps a tree deterministic across transports: the
// aggregator's state at a quiescent instant is a pure function of the set
// of messages delivered, independent of their interleaving across child
// links, so the feed decisions (and with them every message above this
// node) replay bit-identically on every fabric. feed(item, value, count)
// injects count identical virtual arrivals into the parent-facing site;
// implementations must only ever add mass (arrivals cannot be retracted),
// so estimate-driven feeds clamp to their running maximum.
type Aggregator interface {
	Coordinator
	DrainFeed(feed func(item int64, value float64, count int64))
}

// Tree is a two-level protocol assembly ready to be mounted on a tree
// topology: the leaf sites are sharded into Groups (each an independent
// protocol instance whose Coord must implement Aggregator), and Root is an
// ordinary protocol with one site per group — the aggregators' parent-facing
// halves — whose coordinator answers queries for the whole tree.
type Tree struct {
	// Groups holds one child-facing protocol per aggregator; leaf sites are
	// assigned contiguously, Fanout per group (the last group may be
	// smaller).
	Groups []Protocol
	// Root is the top-level protocol: K() == len(Groups) sites fed by the
	// aggregators' virtual arrivals.
	Root Protocol
	// Fanout is the number of leaf sites per group.
	Fanout int
}

// Leaves returns the total number of leaf sites.
func (t Tree) Leaves() int {
	n := 0
	for _, g := range t.Groups {
		n += g.K()
	}
	return n
}

// GroupOf maps a global leaf index to its (group, within-group site) pair.
func (t Tree) GroupOf(leaf int) (group, idx int) {
	return leaf / t.Fanout, leaf % t.Fanout
}

// SplitEps divides a tracker's error budget ε across the levels of a tree
// so the compounded error stays within ε: each level runs at
// x = (1+ε)^(1/levels) − 1, which makes the worst-case multiplicative
// blow-up Π(1+x) = 1+ε exactly, and (since x ≤ ε/levels by concavity) keeps
// the additive sum Σx ≤ ε for the underestimate side.
func SplitEps(eps float64, levels int) float64 {
	if levels <= 1 {
		return eps
	}
	return math.Pow(1+eps, 1/float64(levels)) - 1
}
