package proto

import "testing"

type nopSite struct{}

func (nopSite) Arrive(item int64, value float64, out func(Message)) {}
func (nopSite) Receive(m Message, out func(Message))                {}
func (nopSite) SpaceWords() int                                     { return 0 }

type nopCoord struct{}

func (nopCoord) Receive(from int, m Message, send func(int, Message), broadcast func(Message)) {}
func (nopCoord) SpaceWords() int                                                               { return 0 }

func TestProtocolK(t *testing.T) {
	p := Protocol{Coord: nopCoord{}, Sites: []Site{nopSite{}, nopSite{}, nopSite{}}}
	if p.K() != 3 {
		t.Fatalf("K = %d, want 3", p.K())
	}
	if (Protocol{}).K() != 0 {
		t.Fatal("empty protocol K != 0")
	}
}

// countingSite counts arrivals; batchSite additionally absorbs whole chunks
// silently, emitting one message every `every` arrivals.
type countingSite struct{ arrivals int64 }

func (s *countingSite) Arrive(item int64, value float64, out func(Message)) { s.arrivals++ }
func (s *countingSite) Receive(m Message, out func(Message))                {}
func (s *countingSite) SpaceWords() int                                     { return 0 }

type oneWord struct{}

func (oneWord) Words() int { return 1 }

type batchSite struct {
	countingSite
	every int64
}

func (s *batchSite) ArriveBatch(item int64, value float64, count int64, out func(Message)) int64 {
	quiet := s.every - 1 - s.arrivals%s.every
	if quiet >= count {
		s.arrivals += count
		return count
	}
	s.arrivals += quiet + 1
	out(oneWord{})
	return quiet + 1
}

func TestArriveChunkFallsBackPerElement(t *testing.T) {
	s := &countingSite{}
	if got := ArriveChunk(s, 0, 0, 10, func(Message) {}); got != 1 {
		t.Fatalf("plain Site consumed %d, want 1", got)
	}
	if s.arrivals != 1 {
		t.Fatalf("arrivals = %d, want 1", s.arrivals)
	}
	if got := ArriveChunk(s, 0, 0, 0, func(Message) {}); got != 0 {
		t.Fatalf("empty chunk consumed %d, want 0", got)
	}
}

func TestArriveChunkUsesBatchFastPath(t *testing.T) {
	s := &batchSite{every: 5}
	msgs := 0
	out := func(Message) { msgs++ }
	total := int64(0)
	for total < 23 {
		total += ArriveChunk(s, 0, 0, 23-total, out)
	}
	if s.arrivals != 23 {
		t.Fatalf("arrivals = %d, want 23", s.arrivals)
	}
	if msgs != 4 { // arrivals 5, 10, 15, 20
		t.Fatalf("messages = %d, want 4", msgs)
	}
}

// Compile-time checks that the nop types satisfy the interfaces (and
// document the expected shapes).
var (
	_ Site        = nopSite{}
	_ Coordinator = nopCoord{}
	_ BatchSite   = (*batchSite)(nil)
)
