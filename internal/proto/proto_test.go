package proto

import "testing"

type nopSite struct{}

func (nopSite) Arrive(item int64, value float64, out func(Message)) {}
func (nopSite) Receive(m Message, out func(Message))                {}
func (nopSite) SpaceWords() int                                     { return 0 }

type nopCoord struct{}

func (nopCoord) Receive(from int, m Message, send func(int, Message), broadcast func(Message)) {}
func (nopCoord) SpaceWords() int                                                               { return 0 }

func TestProtocolK(t *testing.T) {
	p := Protocol{Coord: nopCoord{}, Sites: []Site{nopSite{}, nopSite{}, nopSite{}}}
	if p.K() != 3 {
		t.Fatalf("K = %d, want 3", p.K())
	}
	if (Protocol{}).K() != 0 {
		t.Fatal("empty protocol K != 0")
	}
}

// Compile-time checks that the nop types satisfy the interfaces (and
// document the expected shapes).
var (
	_ Site        = nopSite{}
	_ Coordinator = nopCoord{}
)
