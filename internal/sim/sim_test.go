package sim

import (
	"testing"

	"disttrack/internal/proto"
	"disttrack/internal/workload"
)

// --- toy protocol for accounting tests ---

type wordMsg int

func (w wordMsg) Words() int { return int(w) }

// echoSite forwards every arrival as a 1-word message; it replies to any
// coordinator message with nothing.
type echoSite struct {
	arrivals int
	received int
}

func (s *echoSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.arrivals++
	out(wordMsg(1))
}

func (s *echoSite) Receive(m proto.Message, out func(proto.Message)) { s.received++ }

func (s *echoSite) SpaceWords() int { return s.arrivals }

// pulseCoord broadcasts a 2-word message every n-th upward message.
type pulseCoord struct {
	every    int
	received int
}

func (c *pulseCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	c.received++
	if c.every > 0 && c.received%c.every == 0 {
		broadcast(wordMsg(2))
	}
}

func (c *pulseCoord) SpaceWords() int { return 1 }

func toy(k, every int) (proto.Protocol, []*echoSite, *pulseCoord) {
	sites := make([]*echoSite, k)
	ps := make([]proto.Site, k)
	for i := range sites {
		sites[i] = &echoSite{}
		ps[i] = sites[i]
	}
	coord := &pulseCoord{every: every}
	return proto.Protocol{Coord: coord, Sites: ps}, sites, coord
}

func TestAccountingExact(t *testing.T) {
	p, sites, coord := toy(4, 10)
	h := New(p)
	for i := 0; i < 100; i++ {
		h.Arrive(i%4, 0, 0)
	}
	m := h.Metrics()
	if m.Arrivals != 100 {
		t.Fatalf("arrivals %d", m.Arrivals)
	}
	if m.MessagesUp != 100 || m.WordsUp != 100 {
		t.Fatalf("up: %d msgs %d words, want 100/100", m.MessagesUp, m.WordsUp)
	}
	// 10 broadcasts x 4 sites, 2 words each.
	if m.Broadcasts != 10 || m.MessagesDown != 40 || m.WordsDown != 80 {
		t.Fatalf("down: bc=%d msgs=%d words=%d", m.Broadcasts, m.MessagesDown, m.WordsDown)
	}
	if m.Messages() != 140 || m.Words() != 180 {
		t.Fatalf("totals: %d msgs %d words", m.Messages(), m.Words())
	}
	if coord.received != 100 {
		t.Fatalf("coordinator received %d", coord.received)
	}
	for i, s := range sites {
		if s.arrivals != 25 {
			t.Fatalf("site %d arrivals %d", i, s.arrivals)
		}
		if s.received != 10 {
			t.Fatalf("site %d received %d broadcasts", i, s.received)
		}
	}
}

func TestSpaceProbing(t *testing.T) {
	p, _, _ := toy(2, 0)
	h := New(p)
	h.SpaceProbeEvery = 1
	for i := 0; i < 10; i++ {
		h.Arrive(0, 0, 0)
	}
	m := h.Metrics()
	if m.MaxSiteSpace != 10 {
		t.Fatalf("MaxSiteSpace = %d, want 10", m.MaxSiteSpace)
	}
	if m.MaxCoordSpace != 1 {
		t.Fatalf("MaxCoordSpace = %d, want 1", m.MaxCoordSpace)
	}
}

func TestRunAndCheckCallback(t *testing.T) {
	p, _, _ := toy(3, 0)
	h := New(p)
	events := workload.Config{N: 30, Placement: workload.RoundRobin(3)}.Events()
	var seen []int64
	h.Run(events, func(arrived int64) { seen = append(seen, arrived) })
	if len(seen) != 30 || seen[0] != 1 || seen[29] != 30 {
		t.Fatalf("check callback sequence wrong: len=%d", len(seen))
	}
}

func TestRunConfigStreams(t *testing.T) {
	p, sites, _ := toy(2, 0)
	h := New(p)
	h.RunConfig(workload.Config{N: 7, Placement: workload.SingleSite(1)}, nil)
	if sites[1].arrivals != 7 || sites[0].arrivals != 0 {
		t.Fatal("RunConfig misrouted events")
	}
}

func TestCascadeMessages(t *testing.T) {
	// A site that replies to a broadcast with an ack; verifies multi-hop
	// cascades drain fully within one Arrive call.
	ack := &ackSite{}
	coord := &broadcastOnceCoord{}
	h := New(proto.Protocol{Coord: coord, Sites: []proto.Site{ack}})
	h.Arrive(0, 0, 0)
	m := h.Metrics()
	// arrival msg up (1) -> broadcast down (1) -> ack up (1).
	if m.MessagesUp != 2 || m.MessagesDown != 1 {
		t.Fatalf("cascade: up=%d down=%d", m.MessagesUp, m.MessagesDown)
	}
	if coord.acks != 1 {
		t.Fatalf("coordinator saw %d acks", coord.acks)
	}
}

type ackSite struct{}

func (s *ackSite) Arrive(item int64, value float64, out func(proto.Message)) { out(wordMsg(1)) }
func (s *ackSite) Receive(m proto.Message, out func(proto.Message))          { out(wordMsg(1)) }
func (s *ackSite) SpaceWords() int                                           { return 0 }

type broadcastOnceCoord struct {
	sent bool
	acks int
}

func (c *broadcastOnceCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if !c.sent {
		c.sent = true
		broadcast(wordMsg(1))
	} else {
		c.acks++
	}
}

func (c *broadcastOnceCoord) SpaceWords() int { return 0 }

// thresholdSite is a BatchSite emitting one 1-word message every `every`
// arrivals, absorbing the quiet stretches in closed form.
type thresholdSite struct {
	arrivals int64
	every    int64
}

func (s *thresholdSite) Arrive(item int64, value float64, out func(proto.Message)) {
	s.arrivals++
	if s.arrivals%s.every == 0 {
		out(wordMsg(1))
	}
}

func (s *thresholdSite) Receive(m proto.Message, out func(proto.Message)) {}
func (s *thresholdSite) SpaceWords() int                                  { return int(s.arrivals) }

func (s *thresholdSite) ArriveBatch(item int64, value float64, count int64, out func(proto.Message)) int64 {
	quiet := s.every - 1 - s.arrivals%s.every
	if quiet >= count {
		s.arrivals += count
		return count
	}
	s.arrivals += quiet
	s.Arrive(item, value, out)
	return quiet + 1
}

func TestArriveBatchAccounting(t *testing.T) {
	mk := func() *Harness {
		sites := []proto.Site{&thresholdSite{every: 7}, &thresholdSite{every: 7}}
		h := New(proto.Protocol{Coord: &pulseCoord{every: 3}, Sites: sites})
		h.SpaceProbeEvery = 100
		return h
	}
	seq, bat := mk(), mk()
	feed := []struct {
		site  int
		count int64
	}{{0, 500}, {1, 13}, {0, 1}, {1, 700}, {0, 86}}
	for _, f := range feed {
		for i := int64(0); i < f.count; i++ {
			seq.Arrive(f.site, 0, 0)
		}
		bat.ArriveBatch(f.site, 0, 0, f.count)
	}
	seq.Probe()
	bat.Probe()
	if seq.Metrics() != bat.Metrics() {
		t.Fatalf("metrics diverged:\n sequential %+v\n batched    %+v", seq.Metrics(), bat.Metrics())
	}
	if bat.Metrics().Arrivals != 1300 {
		t.Fatalf("arrivals = %d, want 1300", bat.Metrics().Arrivals)
	}
}

func TestArriveBatchFallsBackForPlainSites(t *testing.T) {
	p, sites, _ := toy(2, 0)
	h := New(p)
	h.ArriveBatch(0, 0, 0, 9)
	if sites[0].arrivals != 9 {
		t.Fatalf("site 0 saw %d arrivals, want 9", sites[0].arrivals)
	}
	if h.Metrics().MessagesUp != 9 {
		t.Fatalf("messages = %d, want 9 (echo per element)", h.Metrics().MessagesUp)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty protocol did not panic")
		}
	}()
	New(proto.Protocol{})
}

func TestRunConfigBatchedMatchesRunConfig(t *testing.T) {
	cfg := workload.Config{
		N:         260,
		Placement: workload.BlockPlacement(2, 13),
		Value:     func(int) float64 { return 0 }, // constant so runs coalesce
	}
	mk := func() *Harness {
		sites := []proto.Site{&thresholdSite{every: 7}, &thresholdSite{every: 7}}
		h := New(proto.Protocol{Coord: &pulseCoord{every: 3}, Sites: sites})
		h.SpaceProbeEvery = 50
		return h
	}
	seq, bat := mk(), mk()
	seq.RunConfig(cfg, nil)
	var checkpoints []int64
	bat.RunConfigBatched(cfg, func(arrived int64) { checkpoints = append(checkpoints, arrived) })
	if seq.Metrics() != bat.Metrics() {
		t.Fatalf("metrics diverged:\n sequential %+v\n batched    %+v", seq.Metrics(), bat.Metrics())
	}
	if len(checkpoints) != 20 || checkpoints[19] != 260 {
		t.Fatalf("expected 20 per-run checkpoints ending at 260, got %v", checkpoints)
	}
}
