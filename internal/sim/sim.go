// Package sim is the sequential reference runtime: it delivers elements to
// protocol sites one at a time, runs every resulting message cascade to
// quiescence (the paper's instant-communication assumption), and keeps exact
// message/word/space accounting.
//
// All experiment and benchmark numbers in this repository come from this
// runtime, so they are deterministic given the protocol's RNG seeds.
package sim

import (
	"disttrack/internal/proto"
	"disttrack/internal/workload"
)

// Metrics is the cost ledger of one run, in the paper's units.
type Metrics struct {
	MessagesUp   int64 // site -> coordinator messages
	MessagesDown int64 // coordinator -> site messages (a broadcast counts k)
	WordsUp      int64
	WordsDown    int64
	Broadcasts   int64 // number of broadcast operations (before the k factor)
	Arrivals     int64

	// MaxSiteSpace is the high-water mark of the maximum per-site space
	// observed at probe instants; MaxCoordSpace likewise for the
	// coordinator. Probing happens every SpaceProbeEvery arrivals and at
	// the end of the run.
	MaxSiteSpace  int
	MaxCoordSpace int
}

// Messages returns the total message count.
func (m Metrics) Messages() int64 { return m.MessagesUp + m.MessagesDown }

// Words returns the total word count.
func (m Metrics) Words() int64 { return m.WordsUp + m.WordsDown }

// Harness hosts one protocol instance.
type Harness struct {
	p proto.Protocol
	// SpaceProbeEvery controls how often per-site space is sampled; 0
	// disables periodic probing (a final probe still happens via Probe).
	SpaceProbeEvery int

	metrics Metrics
	queue   []envelope
}

type envelope struct {
	toCoord bool
	from    int // valid when toCoord
	to      int // valid when !toCoord
	msg     proto.Message
}

// New returns a harness for the protocol. SpaceProbeEvery defaults to 1024.
func New(p proto.Protocol) *Harness {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("sim: protocol needs a coordinator and at least one site")
	}
	return &Harness{p: p, SpaceProbeEvery: 1024}
}

// K returns the number of sites.
func (h *Harness) K() int { return h.p.K() }

// Metrics returns a copy of the current cost ledger.
func (h *Harness) Metrics() Metrics { return h.metrics }

// Arrive delivers one element to site and runs the protocol to quiescence.
func (h *Harness) Arrive(site int, item int64, value float64) {
	h.metrics.Arrivals++
	h.p.Sites[site].Arrive(item, value, func(m proto.Message) {
		h.queue = append(h.queue, envelope{toCoord: true, from: site, msg: m})
	})
	h.drain()
	if h.SpaceProbeEvery > 0 && h.metrics.Arrivals%int64(h.SpaceProbeEvery) == 0 {
		h.Probe()
	}
}

// drain processes queued messages (and any messages they trigger) in FIFO
// order until none remain.
func (h *Harness) drain() {
	for len(h.queue) > 0 {
		env := h.queue[0]
		h.queue = h.queue[1:]
		if env.toCoord {
			h.metrics.MessagesUp++
			h.metrics.WordsUp += int64(env.msg.Words())
			h.p.Coord.Receive(env.from, env.msg,
				func(to int, m proto.Message) {
					h.queue = append(h.queue, envelope{to: to, msg: m})
				},
				func(m proto.Message) {
					h.metrics.Broadcasts++
					for s := range h.p.Sites {
						h.queue = append(h.queue, envelope{to: s, msg: m})
					}
				})
		} else {
			h.metrics.MessagesDown++
			h.metrics.WordsDown += int64(env.msg.Words())
			h.p.Sites[env.to].Receive(env.msg, func(m proto.Message) {
				h.queue = append(h.queue, envelope{toCoord: true, from: env.to, msg: m})
			})
		}
	}
}

// Probe samples current space usage into the high-water marks.
func (h *Harness) Probe() {
	for _, s := range h.p.Sites {
		if w := s.SpaceWords(); w > h.metrics.MaxSiteSpace {
			h.metrics.MaxSiteSpace = w
		}
	}
	if w := h.p.Coord.SpaceWords(); w > h.metrics.MaxCoordSpace {
		h.metrics.MaxCoordSpace = w
	}
}

// Run feeds a whole event sequence; check, if non-nil, is invoked after
// every arrival with the number of arrivals so far (1-based) — protocols'
// concrete query methods are reached through the closure environment.
func (h *Harness) Run(events []workload.Event, check func(arrived int64)) {
	for _, e := range events {
		h.Arrive(e.Site, e.Item, e.Value)
		if check != nil {
			check(h.metrics.Arrivals)
		}
	}
	h.Probe()
}

// RunConfig feeds the events described by a workload.Config without
// materializing them.
func (h *Harness) RunConfig(cfg workload.Config, check func(arrived int64)) {
	cfg.Each(func(e workload.Event) {
		h.Arrive(e.Site, e.Item, e.Value)
		if check != nil {
			check(h.metrics.Arrivals)
		}
	})
	h.Probe()
}
