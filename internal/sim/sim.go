// Package sim is the sequential reference transport: it delivers elements
// to protocol sites one at a time, runs every resulting message cascade to
// quiescence (the paper's instant-communication assumption), and keeps
// exact message/word/space accounting. Harness implements the
// runtime.Transport seam; it is the fabric disttrack mounts by default.
//
// All experiment and benchmark numbers in this repository come from this
// transport, so they are deterministic given the protocol's RNG seeds.
//
// Two ingestion paths exist. Arrive feeds one element; ArriveBatch feeds a
// run of identical elements through the proto.BatchSite fast path, splitting
// the run at every message (so coordinator replies land exactly where they
// would element-at-a-time) and at every space-probe boundary (so probes
// sample the same instants). A batched run is therefore bit-identical to the
// equivalent sequence of Arrive calls, in protocol state and in Metrics,
// while costing O(messages) instead of O(arrivals).
package sim

import (
	"disttrack/internal/proto"
	"disttrack/internal/runtime"
	"disttrack/internal/workload"
)

// Metrics is the cost ledger of one run, in the paper's units, shared with
// the other transports through the runtime seam.
type Metrics = runtime.Metrics

// Harness hosts one protocol instance.
type Harness struct {
	p proto.Protocol
	// SpaceProbeEvery controls how often per-site space is sampled; 0
	// disables periodic probing (a final probe still happens via Probe).
	SpaceProbeEvery int

	metrics Metrics

	// The message queue is a head-indexed FIFO: popping advances head
	// instead of re-slicing (which would strand the backing array's prefix
	// and re-allocate on every append/pop cycle). The queue is compacted
	// when the dead prefix dominates and reset to offset zero whenever it
	// drains.
	queue []envelope
	head  int

	// Per-site and coordinator-side enqueue closures are built once at New:
	// the hot path hands the same closure to every Arrive/Receive call
	// instead of allocating a fresh capture per arrival.
	siteOuts  []func(proto.Message)
	coordSend func(to int, m proto.Message)
	coordCast func(m proto.Message)

	// batch[i] is non-nil when site i implements the proto.BatchSite fast
	// path (resolved once so ArriveBatch avoids a type assertion per chunk).
	batch []proto.BatchSite

	// tap, when set, observes every delivered message (runtime.Tap).
	tap runtime.Tap

	// coordLog, when set, observes every coordinator-bound message just
	// before the coordinator applies it (the durability layer's
	// write-ahead hook; see runtime.Fabric.SetCoordLog).
	coordLog func(from int, m proto.Message)
}

type envelope struct {
	toCoord bool
	from    int // valid when toCoord
	to      int // valid when !toCoord
	msg     proto.Message
}

// New returns a harness for the protocol. SpaceProbeEvery defaults to 1024.
func New(p proto.Protocol) *Harness {
	if p.Coord == nil || len(p.Sites) == 0 {
		panic("sim: protocol needs a coordinator and at least one site")
	}
	h := &Harness{p: p, SpaceProbeEvery: 1024}
	h.metrics.LiveSites = len(p.Sites) // the sequential fabric never faults
	h.siteOuts = make([]func(proto.Message), len(p.Sites))
	h.batch = make([]proto.BatchSite, len(p.Sites))
	for i := range p.Sites {
		h.siteOuts[i] = func(m proto.Message) {
			h.queue = append(h.queue, envelope{toCoord: true, from: i, msg: m})
		}
		if bs, ok := p.Sites[i].(proto.BatchSite); ok {
			h.batch[i] = bs
		}
	}
	h.coordSend = func(to int, m proto.Message) {
		h.queue = append(h.queue, envelope{to: to, msg: m})
	}
	h.coordCast = func(m proto.Message) {
		h.metrics.Broadcasts++
		for s := range h.p.Sites {
			h.queue = append(h.queue, envelope{to: s, msg: m})
		}
	}
	return h
}

// K returns the number of sites.
func (h *Harness) K() int { return h.p.K() }

// Metrics returns a copy of the current cost ledger.
func (h *Harness) Metrics() Metrics { return h.metrics }

// Quiesce implements runtime.Transport; the sequential transport is
// quiescent whenever control returns to the caller.
func (h *Harness) Quiesce() {}

// SetTap implements runtime.Transport: tap observes every delivered
// message. Install before the first arrival.
func (h *Harness) SetTap(t runtime.Tap) { h.tap = t }

// Close implements runtime.Transport (nothing to release).
func (h *Harness) Close() {}

// SetCoordLog installs the durability layer's write-ahead hook (see
// runtime.Fabric.SetCoordLog). Install before the first arrival; a nil fn
// removes it.
func (h *Harness) SetCoordLog(fn func(from int, m proto.Message)) { h.coordLog = fn }

// SeedLedger pre-loads the cost ledger, so a harness mounted over a
// recovered coordinator reports Metrics spanning the whole logical run.
// Call before the first arrival.
func (h *Harness) SeedLedger(m Metrics) {
	live := h.metrics.LiveSites
	h.metrics = m
	h.metrics.LiveSites = live
}

// Arrive delivers one element to site and runs the protocol to quiescence.
func (h *Harness) Arrive(site int, item int64, value float64) {
	h.metrics.Arrivals++
	h.p.Sites[site].Arrive(item, value, h.siteOuts[site])
	if h.head < len(h.queue) {
		h.drain()
	}
	if h.SpaceProbeEvery > 0 && h.metrics.Arrivals%int64(h.SpaceProbeEvery) == 0 {
		h.Probe()
	}
}

// ArriveBatch delivers count identical elements to site, equivalent to count
// Arrive calls but with work proportional to the messages exchanged. Sites
// without the proto.BatchSite fast path degrade to element-at-a-time
// delivery.
func (h *Harness) ArriveBatch(site int, item int64, value float64, count int64) {
	for count > 0 {
		chunk := count
		if h.SpaceProbeEvery > 0 {
			// Split at probe boundaries so space is sampled at the same
			// arrival counts as the per-element path.
			every := int64(h.SpaceProbeEvery)
			if until := every - h.metrics.Arrivals%every; until < chunk {
				chunk = until
			}
		}
		var done int64
		if bs := h.batch[site]; bs != nil {
			done = bs.ArriveBatch(item, value, chunk, h.siteOuts[site])
		} else {
			h.p.Sites[site].Arrive(item, value, h.siteOuts[site])
			done = 1
		}
		h.metrics.Arrivals += done
		count -= done
		if h.head < len(h.queue) {
			h.drain()
		}
		if h.SpaceProbeEvery > 0 && h.metrics.Arrivals%int64(h.SpaceProbeEvery) == 0 {
			h.Probe()
		}
	}
}

// drain processes queued messages (and any messages they trigger) in FIFO
// order until none remain.
func (h *Harness) drain() {
	for h.head < len(h.queue) {
		// Compact when the dead prefix dominates a long cascade, keeping
		// memory proportional to the live queue.
		if h.head >= 1024 && h.head*2 >= len(h.queue) {
			n := copy(h.queue, h.queue[h.head:])
			h.queue = h.queue[:n]
			h.head = 0
		}
		env := h.queue[h.head]
		h.head++
		if env.toCoord {
			h.metrics.MessagesUp++
			h.metrics.WordsUp += int64(env.msg.Words())
			if h.tap != nil {
				h.tap.Up(env.from, env.msg)
			}
			if h.coordLog != nil {
				h.coordLog(env.from, env.msg)
			}
			h.p.Coord.Receive(env.from, env.msg, h.coordSend, h.coordCast)
		} else {
			h.metrics.MessagesDown++
			h.metrics.WordsDown += int64(env.msg.Words())
			if h.tap != nil {
				h.tap.Down(env.to, env.msg)
			}
			h.p.Sites[env.to].Receive(env.msg, h.siteOuts[env.to])
		}
	}
	// Fully drained: reuse the backing array from offset zero.
	h.queue = h.queue[:0]
	h.head = 0
}

// Probe samples current space usage into the high-water marks.
func (h *Harness) Probe() {
	for _, s := range h.p.Sites {
		if w := s.SpaceWords(); w > h.metrics.MaxSiteSpace {
			h.metrics.MaxSiteSpace = w
		}
	}
	if w := h.p.Coord.SpaceWords(); w > h.metrics.MaxCoordSpace {
		h.metrics.MaxCoordSpace = w
	}
}

// Run feeds a whole event sequence; check, if non-nil, is invoked after
// every arrival with the number of arrivals so far (1-based) — protocols'
// concrete query methods are reached through the closure environment.
func (h *Harness) Run(events []workload.Event, check func(arrived int64)) {
	for _, e := range events {
		h.Arrive(e.Site, e.Item, e.Value)
		if check != nil {
			check(h.metrics.Arrivals)
		}
	}
	h.Probe()
}

// RunConfig feeds the events described by a workload.Config without
// materializing them.
func (h *Harness) RunConfig(cfg workload.Config, check func(arrived int64)) {
	cfg.Each(func(e workload.Event) {
		h.Arrive(e.Site, e.Item, e.Value)
		if check != nil {
			check(h.metrics.Arrivals)
		}
	})
	h.Probe()
}

// RunConfigBatched feeds the events described by a workload.Config through
// the batch fast path, coalescing maximal runs of identical consecutive
// events. check, if non-nil, is invoked after each run (not after each
// arrival) with the number of arrivals so far. Protocol state and Metrics
// are identical to RunConfig's; only the check cadence differs.
func (h *Harness) RunConfigBatched(cfg workload.Config, check func(arrived int64)) {
	cfg.EachRun(func(r workload.Batch) {
		h.ArriveBatch(r.Site, r.Item, r.Value, r.Count)
		if check != nil {
			check(h.metrics.Arrivals)
		}
	})
	h.Probe()
}
