// Package integration runs cross-module end-to-end tests: every protocol on
// every workload on both runtimes, with exact oracles, conservation
// invariants, and runtime-equivalence checks. Run with -race to exercise
// the concurrent runtime's synchronization.
package integration

import (
	"math"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/netsim"
	"disttrack/internal/proto"
	"disttrack/internal/rank"
	"disttrack/internal/sample"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

const (
	k   = 8
	eps = 0.1
	n   = 8000
)

// protocols returns one instance of every protocol under test plus a probe
// into its count-style estimate (for freq/rank we query a fixed target so
// all protocols can share oracle machinery).
type instance struct {
	name  string
	p     proto.Protocol
	query func() float64 // current estimate for the instance's fixed target
}

// buildAll constructs fresh protocol instances. The rank target is the
// median of the value permutation; the freq target is item 0.
func buildAll(seed uint64, values workload.ValueFunc) []instance {
	var out []instance

	cp, cc := count.NewProtocol(count.Config{K: k, Eps: eps}, seed)
	out = append(out, instance{"count/randomized", cp, cc.Estimate})

	dp, dc := count.NewDetProtocol(k, eps)
	out = append(out, instance{"count/deterministic", dp, dc.Estimate})

	fp, fc := freq.NewProtocol(freq.Config{K: k, Eps: eps}, seed)
	out = append(out, instance{"freq/randomized", fp, func() float64 { return fc.Estimate(0) }})

	fdp, fdc := freq.NewDetProtocol(k, eps)
	out = append(out, instance{"freq/deterministic", fdp, func() float64 { return fdc.Estimate(0) }})

	rq := float64(n) / 2
	rp, rc := rank.NewProtocol(rank.Config{K: k, Eps: eps}, seed)
	out = append(out, instance{"rank/randomized", rp, func() float64 { return rc.Rank(rq) }})

	rdp, rdc := rank.NewDetProtocol(k, eps)
	out = append(out, instance{"rank/deterministic", rdp, func() float64 { return rdc.Rank(rq) }})

	sp, sc := sample.NewProtocol(sample.Config{K: k, Eps: eps}, seed)
	out = append(out, instance{"sampling/count", sp, sc.Count})

	_ = values
	return out
}

// oracles tracks the truth for each instance's fixed target.
type oracles struct {
	n     int64
	freq0 int64
	below int64
	rq    float64
}

func (o *oracles) observe(item int64, value float64) {
	o.n++
	if item == 0 {
		o.freq0++
	}
	if value < o.rq {
		o.below++
	}
}

func (o *oracles) truth(name string) float64 {
	switch name {
	case "count/randomized", "count/deterministic", "sampling/count":
		return float64(o.n)
	case "freq/randomized", "freq/deterministic":
		return float64(o.freq0)
	default:
		return float64(o.below)
	}
}

// allowance returns the absolute error budget for an instance: εn for
// everything (count estimates are relative but n is the truth there).
func allowance(o *oracles) float64 { return 3 * eps * float64(o.n) }

func placements(rng *stats.RNG) map[string]workload.Placement {
	return map[string]workload.Placement{
		"roundrobin": workload.RoundRobin(k),
		"single":     workload.SingleSite(2),
		"uniform":    workload.UniformPlacement(k, rng),
		"zipf":       workload.ZipfPlacement(k, 1.0, rng.Split()),
	}
}

func TestAllProtocolsAllWorkloadsSequential(t *testing.T) {
	rng := stats.New(11111)
	items := workload.ZipfItems(50, 1.0, rng.Split())
	values := workload.PermValues(n, rng.Split())
	for plName, pl := range placements(rng) {
		insts := buildAll(7, values)
		harnesses := make([]*sim.Harness, len(insts))
		for i, inst := range insts {
			harnesses[i] = sim.New(inst.p)
		}
		o := &oracles{rq: float64(n) / 2}
		bad := make([]int, len(insts))
		checks := 0
		for i := 0; i < n; i++ {
			site, item, value := pl(i), items(i), values(i)
			o.observe(item, value)
			for hi, h := range harnesses {
				h.Arrive(site, item, value)
				_ = hi
			}
			if i%211 == 0 && i > 0 {
				checks++
				for ii, inst := range insts {
					if math.Abs(inst.query()-o.truth(inst.name)) > allowance(o) {
						bad[ii]++
					}
				}
			}
		}
		for ii, inst := range insts {
			// Deterministic instances must never fail; randomized ones get
			// a 15% budget at the 3ε allowance.
			budget := 0
			if inst.name != "count/deterministic" && inst.name != "freq/deterministic" &&
				inst.name != "rank/deterministic" {
				budget = checks * 15 / 100
			}
			if bad[ii] > budget {
				t.Errorf("%s on %s: %d/%d checks failed (budget %d)",
					inst.name, plName, bad[ii], checks, budget)
			}
		}
		// Conservation: every harness saw every arrival.
		for ii, h := range harnesses {
			if h.Metrics().Arrivals != int64(n) {
				t.Fatalf("%s lost arrivals: %d", insts[ii].name, h.Metrics().Arrivals)
			}
		}
	}
}

func TestConcurrentRuntimeAgreesWithSequential(t *testing.T) {
	// The same protocol instance semantics on netsim: since per-site RNG
	// streams and arrival orders are identical, deterministic protocols
	// must produce byte-identical metrics, and randomized ones identical
	// estimates (message order within one arrival's cascade may differ,
	// but state transitions commute for our protocols' message sets).
	rng := stats.New(22222)
	values := workload.PermValues(n, rng.Split())
	items := workload.ZipfItems(50, 1.0, rng.Split())

	seqInsts := buildAll(13, values)
	conInsts := buildAll(13, values)

	seqH := make([]*sim.Harness, len(seqInsts))
	for i, inst := range seqInsts {
		seqH[i] = sim.New(inst.p)
	}
	conC := make([]*netsim.Cluster, len(conInsts))
	for i, inst := range conInsts {
		conC[i] = netsim.Start(inst.p)
	}
	defer func() {
		for _, c := range conC {
			c.Stop()
		}
	}()

	pl := workload.RoundRobin(k)
	for i := 0; i < n; i++ {
		site, item, value := pl(i), items(i), values(i)
		for _, h := range seqH {
			h.Arrive(site, item, value)
		}
		for _, c := range conC {
			c.Arrive(site, item, value)
		}
	}
	for i := range seqInsts {
		seqEst := seqInsts[i].query()
		conEst := conInsts[i].query()
		if seqEst != conEst {
			t.Errorf("%s: sequential estimate %v != concurrent %v",
				seqInsts[i].name, seqEst, conEst)
		}
		sm := seqH[i].Metrics()
		cm := conC[i].Metrics()
		if sm.MessagesUp != cm.MessagesUp || sm.WordsUp != cm.WordsUp {
			t.Errorf("%s: upward traffic differs: sim %d/%d vs netsim %d/%d",
				seqInsts[i].name, sm.MessagesUp, sm.WordsUp, cm.MessagesUp, cm.WordsUp)
		}
	}
}

func TestAdversarialHardInstanceAllTrackers(t *testing.T) {
	// The Theorem 2.4 instance is a count workload; feed it to the
	// randomized and deterministic count trackers and the sampler.
	rng := stats.New(33333)
	inst := workload.NewHardCountInstance(16, 0.1, 20000, rng)

	cp, cc := count.NewProtocol(count.Config{K: 16, Eps: 0.1}, 3)
	dp, dc := count.NewDetProtocol(16, 0.1)
	sp, sc := sample.NewProtocol(sample.Config{K: 16, Eps: 0.1}, 3)
	hs := []*sim.Harness{sim.New(cp), sim.New(dp), sim.New(sp)}
	queries := []func() float64{cc.Estimate, dc.Estimate, sc.Count}
	names := []string{"count/randomized", "count/deterministic", "sampling"}
	bad := make([]int, 3)
	checks := 0
	for i, e := range inst.Events {
		for _, h := range hs {
			h.Arrive(e.Site, e.Item, e.Value)
		}
		if i%101 == 0 && i > 0 {
			checks++
			for qi, q := range queries {
				if stats.RelErr(q(), float64(i+1)) > 0.3 {
					bad[qi]++
				}
			}
		}
	}
	for i := range names {
		if float64(bad[i]) > 0.15*float64(checks) {
			t.Errorf("%s failed %d/%d checks on the hard instance", names[i], bad[i], checks)
		}
	}
}

func TestSpaceInvariantsUnderHotSpot(t *testing.T) {
	// One site receives everything: per-site space bounds must hold for
	// every protocol (this exercises freq virtual sites and rank chunk
	// rollover simultaneously).
	rng := stats.New(44444)
	values := workload.PermValues(n, rng.Split())
	insts := buildAll(17, values)
	budgets := map[string]int{
		"count/randomized":    12,
		"count/deterministic": 8,
		"freq/randomized":     400,  // O(1/(ε√k)) + constants
		"freq/deterministic":  400,  // O(1/ε)
		"rank/randomized":     1200, // O(1/(ε√k)·polylog)
		"rank/deterministic":  2500, // O(1/ε·log εn)
		"sampling/count":      4,
	}
	for _, inst := range insts {
		h := sim.New(inst.p)
		h.SpaceProbeEvery = 64
		items := workload.ZipfItems(50, 1.0, stats.New(55))
		for i := 0; i < n; i++ {
			h.Arrive(0, items(i), values(i))
		}
		if sp := h.Metrics().MaxSiteSpace; sp > budgets[inst.name] {
			t.Errorf("%s: hot-spot site space %d exceeds budget %d",
				inst.name, sp, budgets[inst.name])
		}
	}
}
