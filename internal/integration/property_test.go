package integration

import (
	"math"
	"testing"
	"testing/quick"

	"disttrack/internal/count"
	"disttrack/internal/freq"
	"disttrack/internal/rounds"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// TestPropertyDetCountAlwaysWithinEps: the deterministic count tracker's
// guarantee holds for arbitrary (k, ε, placement-seed) combinations at
// every single instant.
func TestPropertyDetCountAlwaysWithinEps(t *testing.T) {
	f := func(seed uint64, kRaw, epsRaw uint8) bool {
		kk := int(kRaw)%12 + 1
		ee := 0.02 + float64(epsRaw%25)/100
		nn := 3000
		rng := stats.New(seed)
		p, coord := count.NewDetProtocol(kk, ee)
		h := sim.New(p)
		pl := workload.UniformPlacement(kk, rng)
		for i := 0; i < nn; i++ {
			h.Arrive(pl(i), 0, 0)
			if stats.RelErr(coord.Estimate(), float64(i+1)) > ee {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDetFreqAlwaysWithinEps: deterministic frequency guarantee on
// random streams, checked for a random set of items at random instants.
func TestPropertyDetFreqAlwaysWithinEps(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		kk := int(kRaw)%8 + 2
		const ee = 0.1
		const nn = 4000
		rng := stats.New(seed)
		itemF := workload.UniformItems(30, rng)
		p, coord := freq.NewDetProtocol(kk, ee)
		h := sim.New(p)
		truth := map[int64]int64{}
		for i := 0; i < nn; i++ {
			j := itemF(i)
			truth[j]++
			h.Arrive(rng.Intn(kk), j, 0)
			if i%37 == 0 {
				q := int64(rng.Intn(30))
				if math.Abs(coord.Estimate(q)-float64(truth[q])) > ee*float64(i+1)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPSchedule: for arbitrary (n̄, k, ε), the sampling probability
// is in (0,1], has a power-of-two inverse, and respects the paper's formula
// p·⌊εn̄/√k⌋₂ = 1 whenever p < 1.
func TestPropertyPSchedule(t *testing.T) {
	f := func(nBarRaw uint32, kRaw uint8, epsRaw uint8) bool {
		nBar := int64(nBarRaw % 10_000_000)
		kk := int(kRaw)%100 + 1
		ee := 0.005 + float64(epsRaw%30)/100
		p := rounds.P(nBar, kk, ee)
		if p <= 0 || p > 1 {
			return false
		}
		inv := 1 / p
		if math.Abs(inv-math.Round(inv)) > 1e-9 {
			return false
		}
		ri := int64(math.Round(inv))
		if ri&(ri-1) != 0 {
			return false
		}
		if p < 1 {
			want := 1 / stats.FloorPow2(ee*float64(nBar)/math.Sqrt(float64(kk)))
			if math.Abs(p-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWordAccountingConsistent: for random protocols, the harness's
// word total equals the sum of the words of every delivered message —
// verified by re-deriving words from a counting wrapper.
func TestPropertyWordAccountingConsistent(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		kk := int(kRaw)%6 + 2
		p, _ := freq.NewProtocol(freq.Config{K: kk, Eps: 0.2}, seed)
		h := sim.New(p)
		rng := stats.New(seed)
		for i := 0; i < 2000; i++ {
			h.Arrive(rng.Intn(kk), int64(rng.Intn(20)), 0)
		}
		m := h.Metrics()
		// Invariants that must hold for any run of this protocol family:
		if m.Words() < m.Messages() { // every message carries >= 1 word
			return false
		}
		if m.WordsDown != m.MessagesDown { // round broadcasts are 1 word each
			return false
		}
		if m.Broadcasts*int64(kk) != m.MessagesDown {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
