package persist

import (
	"path/filepath"
	"testing"

	"disttrack/internal/proto"
	_ "disttrack/internal/wire" // codec registry for StateMsg/Logged/SnapMeta
)

// sumCoord is a minimal snapshottable coordinator: it accumulates the Key
// field of every StateMsg it receives, per site. Its state is a pure
// function of the delivered (from, msg) sequence — exactly the property
// the WAL/snapshot design leans on — so equality of sums is equality of
// state.
type sumCoord struct {
	sums []int64
}

func newSumCoord(k int) *sumCoord { return &sumCoord{sums: make([]int64, k)} }

func (c *sumCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if s, ok := m.(proto.StateMsg); ok {
		c.sums[from] += s.Key
	}
}

func (c *sumCoord) SpaceWords() int { return len(c.sums) }

func (c *sumCoord) SnapshotState(emit func(from int, m proto.Message)) {
	for i, s := range c.sums {
		emit(i, proto.StateMsg{Key: s})
	}
}

func (c *sumCoord) RestoreState(from int, m proto.Message) {
	if s, ok := m.(proto.StateMsg); ok {
		c.sums[from] = s.Key
	}
}

// walOnlyCoord is sumCoord without the Snapshotter capability, standing in
// for the deterministic baselines: the Logger must run WAL-only and
// Recover must replay the full log.
type walOnlyCoord struct{ inner *sumCoord }

func (c *walOnlyCoord) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	c.inner.Receive(from, m, send, broadcast)
}
func (c *walOnlyCoord) SpaceWords() int { return c.inner.SpaceWords() }

const testK = 3

// feed logs and applies n frames, mimicking the hosts' log-before-apply
// ordering.
func feed(t *testing.T, l *Logger, c proto.Coordinator, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		from := i % testK
		m := proto.StateMsg{Key: int64(i)}
		if err := l.Log(from, m); err != nil {
			t.Fatalf("log frame %d: %v", i, err)
		}
		c.Receive(from, m, nil, nil)
	}
}

func TestMemRoundTrip(t *testing.T) {
	const n, every = 100, 16
	store := NewMem()
	live := newSumCoord(testK)
	l := NewLogger(store, live, every, nil)
	feed(t, l, live, 0, n)

	// Log snapshots lazily, BEFORE the frame that crosses the cadence, so
	// with n=100/every=16 the log has taken floor((n-1)/every) snapshots.
	if want := int64((n - 1) / every); l.Snapshots() != want {
		t.Fatalf("snapshots = %d, want %d", l.Snapshots(), want)
	}

	fresh := newSumCoord(testK)
	res, err := Recover(store, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSnapshot {
		t.Fatal("no snapshot restored")
	}
	if res.Meta.Snapshots != l.Snapshots() {
		t.Fatalf("meta snapshots = %d, want %d", res.Meta.Snapshots, l.Snapshots())
	}
	if res.TornTail {
		t.Fatal("intact store reported a torn tail")
	}
	// The WAL holds exactly the frames logged since the last snapshot —
	// the snapshot fired just before frame every*Snapshots was appended.
	if want := int64(n) - int64(every)*l.Snapshots(); res.ReplayedFrames != want {
		t.Fatalf("replayed %d frames, want %d", res.ReplayedFrames, want)
	}
	for i := range live.sums {
		if fresh.sums[i] != live.sums[i] {
			t.Fatalf("site %d sum = %d, want %d", i, fresh.sums[i], live.sums[i])
		}
	}
}

func TestWALOnlyMode(t *testing.T) {
	const n = 50
	store := NewMem()
	live := &walOnlyCoord{inner: newSumCoord(testK)}
	l := NewLogger(store, live, 8, nil)
	feed(t, l, live, 0, n)
	if l.Snapshots() != 0 {
		t.Fatalf("WAL-only logger took %d snapshots", l.Snapshots())
	}
	if err := l.Snapshot(); err != nil {
		t.Fatalf("explicit snapshot on WAL-only logger: %v", err)
	}

	fresh := &walOnlyCoord{inner: newSumCoord(testK)}
	res, err := Recover(store, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasSnapshot {
		t.Fatal("WAL-only store produced a snapshot")
	}
	if res.ReplayedFrames != n {
		t.Fatalf("replayed %d frames, want %d", res.ReplayedFrames, n)
	}
	for i := range live.inner.sums {
		if fresh.inner.sums[i] != live.inner.sums[i] {
			t.Fatalf("site %d sum = %d, want %d", i, fresh.inner.sums[i], live.inner.sums[i])
		}
	}
}

func TestTornTailDropped(t *testing.T) {
	const n = 20
	store := NewMem()
	live := &walOnlyCoord{inner: newSumCoord(testK)}
	l := NewLogger(store, live, 0, nil)
	feed(t, l, live, 0, n)

	// A crash mid-append leaves a partial record at the end of the log.
	if err := store.AppendWAL([]byte{0x07, 0x01}); err != nil {
		t.Fatal(err)
	}
	fresh := &walOnlyCoord{inner: newSumCoord(testK)}
	res, err := Recover(store, fresh, nil)
	if err != nil {
		t.Fatalf("torn recover: %v", err)
	}
	if !res.TornTail {
		t.Fatal("partial trailing record not reported as torn")
	}
	if res.ReplayedFrames != n {
		t.Fatalf("replayed %d frames, want %d", res.ReplayedFrames, n)
	}
}

func TestRecoverReplayHook(t *testing.T) {
	const n = 10
	store := NewMem()
	live := &walOnlyCoord{inner: newSumCoord(testK)}
	l := NewLogger(store, live, 0, nil)
	feed(t, l, live, 0, n)

	// A custom replay sees every frame in logged order with its site.
	fresh := &walOnlyCoord{inner: newSumCoord(testK)}
	var order []int
	res, err := Recover(store, fresh, func(from int, m proto.Message) {
		order = append(order, from)
		fresh.Receive(from, m, nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayedFrames != n || len(order) != n {
		t.Fatalf("replayed %d frames (%d hook calls), want %d", res.ReplayedFrames, len(order), n)
	}
	for i, from := range order {
		if from != i%testK {
			t.Fatalf("frame %d came from site %d, want %d", i, from, i%testK)
		}
	}
}

func TestDiskGenerationsAndReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n, every = 60, 8
	live := newSumCoord(testK)
	l := NewLogger(store, live, every, nil)
	feed(t, l, live, 0, n)
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Superseded generations are garbage-collected: exactly one snapshot
	// and one WAL file remain.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("dir holds %d snapshots and %d WALs, want 1 and 1", len(snaps), len(wals))
	}

	reopened, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	fresh := newSumCoord(testK)
	res, err := Recover(reopened, fresh, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasSnapshot {
		t.Fatal("reopened store lost its snapshot")
	}
	if res.ReplayedFrames != 0 {
		t.Fatalf("sealed store replayed %d frames, want 0", res.ReplayedFrames)
	}
	for i := range live.sums {
		if fresh.sums[i] != live.sums[i] {
			t.Fatalf("site %d sum = %d, want %d", i, fresh.sums[i], live.sums[i])
		}
	}

	// A resumed logger keeps appending to the recovered generation.
	l2 := NewLogger(reopened, fresh, every, nil)
	l2.SeedSnapshots(res.Meta.Snapshots)
	if l2.Snapshots() != res.Meta.Snapshots {
		t.Fatalf("seeded snapshots = %d, want %d", l2.Snapshots(), res.Meta.Snapshots)
	}
	feed(t, l2, fresh, n, n+5)
	final := newSumCoord(testK)
	if _, err := Recover(reopened, final, nil); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.sums {
		if final.sums[i] != fresh.sums[i] {
			t.Fatalf("site %d sum = %d, want %d after resume", i, final.sums[i], fresh.sums[i])
		}
	}
}
