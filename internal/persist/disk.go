package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Disk is the directory-backed Store. Each snapshot starts a new
// generation: generation g is the pair snap-<g>.snap / wal-<g>.log, and
// the highest complete generation is the recovery point. Snapshots are
// installed atomically — written to a temp file, fsynced, then renamed —
// so a crash at any instant leaves either the old generation or the new
// one intact, never a half-written recovery point. Log appends use plain
// writes (they survive a killed process); Sync fsyncs the log for
// machine-crash durability, and the Logger syncs on every snapshot and on
// graceful shutdown.
type Disk struct {
	dir string
	gen uint64
	wal *os.File
}

// OpenDisk opens (creating if needed) a directory-backed store and
// recovers its current generation: stale temp files and generations older
// than the newest are removed. It fails with a clear error when dir cannot
// be created or written.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: WAL dir %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: WAL dir %s: %w", dir, err)
	}
	s := &Disk{dir: dir}
	var stale []string
	for _, e := range entries {
		name := e.Name()
		var g uint64
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name)
		case parseGen(name, "snap-%d.snap", &g):
			if g > s.gen {
				s.gen = g
			}
		case parseGen(name, "wal-%d.log", &g):
			if g > s.gen {
				s.gen = g
			}
		}
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		if (parseGen(name, "snap-%d.snap", &g) || parseGen(name, "wal-%d.log", &g)) && g < s.gen {
			stale = append(stale, name)
		}
	}
	for _, name := range stale {
		os.Remove(filepath.Join(dir, name))
	}
	wal, err := os.OpenFile(s.walPath(s.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: WAL dir %s is not writable: %w", dir, err)
	}
	s.wal = wal
	return s, nil
}

// parseGen matches name against a generation-file pattern; the round trip
// through Sprintf rejects partial matches and non-canonical numbers.
func parseGen(name, pattern string, g *uint64) bool {
	if n, _ := fmt.Sscanf(name, pattern, g); n != 1 {
		return false
	}
	return fmt.Sprintf(pattern, *g) == name
}

func (s *Disk) walPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%d.log", g))
}

func (s *Disk) snapPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%d.snap", g))
}

// AppendWAL implements Store.
func (s *Disk) AppendWAL(frame []byte) error {
	if s.wal == nil {
		return errors.New("persist: store is closed")
	}
	_, err := s.wal.Write(frame)
	return err
}

// WriteSnapshot implements Store: temp write, fsync, atomic rename, fresh
// log, then the previous generation is deleted.
func (s *Disk) WriteSnapshot(snap []byte) error {
	if s.wal == nil {
		return errors.New("persist: store is closed")
	}
	next := s.gen + 1
	tmp := s.snapPath(next) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.snapPath(next)); err != nil {
		os.Remove(tmp)
		return err
	}
	s.syncDir()
	// The new generation is installed; everything after this point is
	// cleanup that a crash can redo at the next OpenDisk.
	wal, err := os.OpenFile(s.walPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.wal.Close()
	os.Remove(s.walPath(s.gen))
	os.Remove(s.snapPath(s.gen))
	s.wal = wal
	s.gen = next
	return nil
}

// syncDir fsyncs the directory so renames and file creations are durable.
func (s *Disk) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Load implements Store.
func (s *Disk) Load() (snap, wal []byte, err error) {
	snap, err = os.ReadFile(s.snapPath(s.gen))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		snap = nil
	}
	wal, err = os.ReadFile(s.walPath(s.gen))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		wal = nil
	}
	return snap, wal, nil
}

// Sync implements Store.
func (s *Disk) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close implements Store. The directory remains loadable by reopening it.
func (s *Disk) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
