// Package persist makes a coordinator restartable: it durably logs every
// coordinator-bound protocol frame before the coordinator applies it
// (write-ahead logging) and periodically compacts the log into a snapshot
// of the coordinator's state, so a crashed coordinator process rebuilds
// exactly the state it lost by loading the latest snapshot and replaying
// the log tail.
//
// The design leans on the same property that powers the distributed mode's
// site Resync (PR 5): the paper's protocols are round-structured with
// absolute-state messages, and all randomness lives site-side, so the
// coordinator's state is a pure deterministic function of the sequence of
// (from, message) deliveries. Logging that sequence — and nothing else —
// is therefore a complete recovery story, and replay is idempotent in the
// sense that matters: the rebuilt coordinator is bit-identical to the one
// that crashed, at the instant of the last logged frame.
//
// Three pieces:
//
//   - Store is the durability seam: an append-only write-ahead log plus an
//     atomically installed snapshot blob. Mem keeps both in memory (tests,
//     in-process crash drills); Disk keeps them in a directory with
//     generation-numbered files and atomic snapshot installation.
//   - Logger hangs off a transport's coordinator-delivery hook: Log appends
//     each frame to the WAL before the coordinator applies it, and every
//     Every frames serializes the coordinator's state (proto.Snapshotter)
//     into a fresh snapshot, truncating the log.
//   - Recover loads a store into a freshly constructed coordinator:
//     snapshot records stream through RestoreState, then the WAL tail
//     replays through Receive with sends suppressed (the hosting transport
//     re-counts or carries over the cost ledger as appropriate). A torn
//     final record — the crash landed mid-write — is detected and dropped;
//     recovery stops at the last complete frame.
//
// Coordinators that don't implement proto.Snapshotter (the deterministic
// baselines) degrade gracefully: the Logger never snapshots, and Recover
// replays the full log from an empty coordinator.
package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"disttrack/internal/proto"
	"disttrack/internal/wire"
)

// Store is the pluggable durability backend: one append-only write-ahead
// log of wire frames plus at most one snapshot blob. WriteSnapshot
// atomically replaces the snapshot AND empties the log — the two are one
// recovery point, never observed half-updated. Load returns the current
// snapshot (nil if none) and the log bytes. Sync flushes buffered state to
// stable storage (a no-op for memory stores). Implementations are not safe
// for concurrent use; the hosting transport's coordinator loop is the only
// writer. The byte slices passed to AppendWAL and WriteSnapshot are valid
// only for the duration of the call (the Logger reuses its build buffer);
// implementations copy what they retain.
type Store interface {
	// AppendWAL appends one length-prefixed frame to the write-ahead log.
	AppendWAL(frame []byte) error

	// WriteSnapshot atomically installs snap as the recovery baseline and
	// starts a fresh, empty write-ahead log.
	WriteSnapshot(snap []byte) error

	// Load returns the installed snapshot (nil if none) and the write-ahead
	// log contents. The returned slices are the caller's to keep.
	Load() (snap, wal []byte, err error)

	// Sync flushes buffered state to stable storage.
	Sync() error

	// Close releases the store's resources. The store must not be used
	// afterwards; the underlying state remains loadable by reopening it.
	Close() error
}

// DefaultEvery is the snapshot cadence when the host doesn't choose one:
// a snapshot every 4096 logged frames keeps replay short while amortizing
// serialization to noise (coordinator-bound frames are already a
// vanishing fraction of arrivals in these protocols).
const DefaultEvery = 4096

// Logger write-ahead-logs coordinator-bound frames into a Store and
// periodically compacts the log into a snapshot. One Logger serves one
// coordinator; calls are made from the transport's coordinator loop, never
// concurrently.
type Logger struct {
	store Store
	coord proto.Coordinator
	snap  proto.Snapshotter // nil when coord can't snapshot (WAL-only mode)
	every int64
	since int64 // frames appended since the last snapshot
	// count is the number of snapshots taken over the store's lifetime
	// (seeded on resume). Atomic: Snapshots() is read from serving/query
	// goroutines while the owning loop is mid-Snapshot.
	count atomic.Int64
	// meta, when set, supplies the host's cost ledger for snapshot headers
	// (the distributed server resumes its Resync bookkeeping from it).
	meta func() wire.SnapMeta
	buf  []byte // reused frame/snapshot build buffer
}

// NewLogger builds a logger for coord over store. every is the snapshot
// cadence in logged frames (0 means DefaultEvery); meta, if non-nil,
// supplies the host's ledger for each snapshot's header. If coord does not
// implement proto.Snapshotter the logger runs in WAL-only mode: frames are
// still durably logged, the log just never compacts.
func NewLogger(store Store, coord proto.Coordinator, every int64, meta func() wire.SnapMeta) *Logger {
	if every <= 0 {
		every = DefaultEvery
	}
	l := &Logger{store: store, coord: coord, every: every, meta: meta}
	l.snap, _ = coord.(proto.Snapshotter)
	return l
}

// SeedSnapshots primes the lifetime snapshot counter after a resume, so
// Snapshots() continues the pre-crash count.
func (l *Logger) SeedSnapshots(n int64) { l.count.Store(n) }

// Snapshots returns the number of snapshots taken over the store's
// lifetime, including any taken before a resume. Safe to call from any
// goroutine.
func (l *Logger) Snapshots() int64 { return l.count.Load() }

// Log durably appends one coordinator-bound frame, snapshotting first when
// the cadence is due. It must be called BEFORE the coordinator applies the
// frame: the snapshot then captures exactly the frames logged before this
// one, and the fresh log opens with this frame — no delivery is ever in
// neither place.
func (l *Logger) Log(from int, m proto.Message) error {
	if l.since >= l.every && l.snap != nil {
		if err := l.Snapshot(); err != nil {
			return err
		}
	}
	frame, err := wire.AppendFrame(l.buf[:0], wire.Logged{From: from, Msg: m})
	l.buf = frame
	if err != nil {
		return fmt.Errorf("persist: encode frame: %w", err)
	}
	if err := l.store.AppendWAL(frame); err != nil {
		return fmt.Errorf("persist: append WAL: %w", err)
	}
	l.since++
	return nil
}

// Snapshot serializes the coordinator's state into the store now,
// truncating the write-ahead log. It is a no-op (without error) when the
// coordinator cannot snapshot. The host calls it for graceful shutdown;
// Log calls it on cadence.
func (l *Logger) Snapshot() error {
	if l.snap == nil {
		return nil
	}
	var meta wire.SnapMeta
	if l.meta != nil {
		meta = l.meta()
	}
	meta.Snapshots = l.count.Load() + 1
	blob, err := wire.AppendFrame(l.buf[:0], meta)
	if err != nil {
		return fmt.Errorf("persist: encode snapshot header: %w", err)
	}
	l.snap.SnapshotState(func(from int, m proto.Message) {
		if err != nil {
			return
		}
		blob, err = wire.AppendFrame(blob, wire.Logged{From: from, Msg: m})
	})
	l.buf = blob[:0]
	if err != nil {
		return fmt.Errorf("persist: encode snapshot record: %w", err)
	}
	if err := l.store.WriteSnapshot(blob); err != nil {
		return fmt.Errorf("persist: install snapshot: %w", err)
	}
	l.count.Add(1)
	l.since = 0
	return nil
}

// Sync flushes the store to stable storage.
func (l *Logger) Sync() error { return l.store.Sync() }

// Result reports what Recover rebuilt.
type Result struct {
	// Meta is the snapshot header (zero when the store held no snapshot).
	Meta wire.SnapMeta
	// HasSnapshot reports whether a snapshot was restored.
	HasSnapshot bool
	// SnapshotRecords is the number of state records restored from it.
	SnapshotRecords int64
	// ReplayedFrames is the number of complete WAL frames replayed.
	ReplayedFrames int64
	// TornTail reports that the log ended mid-record (the crash landed
	// mid-write); the partial record was dropped and recovery stopped at
	// the last complete frame.
	TornTail bool
}

// Recover rebuilds coord from store: the snapshot's records stream through
// coord's RestoreState, then the write-ahead log tail replays through
// replay in logged order. replay may be nil, in which case frames feed
// coord.Receive with sends and broadcasts suppressed (hosts that must
// re-count the suppressed traffic pass their own replay). coord must be
// freshly constructed — exactly as at the start of the crashed run.
//
// A log ending mid-record is the expected shape of a crash and is not an
// error: recovery stops at the last complete frame and reports TornTail.
// A corrupt snapshot IS an error — snapshots are installed atomically, so
// a damaged one means real corruption, and replaying the log over a
// half-restored state would silently diverge.
func Recover(store Store, coord proto.Coordinator, replay func(from int, m proto.Message)) (Result, error) {
	var res Result
	snap, wal, err := store.Load()
	if err != nil {
		return res, fmt.Errorf("persist: load store: %w", err)
	}
	if replay == nil {
		noSend := func(int, proto.Message) {}
		noCast := func(proto.Message) {}
		replay = func(from int, m proto.Message) { coord.Receive(from, m, noSend, noCast) }
	}
	if len(snap) > 0 {
		rs, ok := coord.(proto.Snapshotter)
		if !ok {
			return res, fmt.Errorf("persist: store holds a snapshot but %T cannot restore one", coord)
		}
		rd := bytes.NewReader(snap)
		var buf []byte
		first := true
		for {
			m, b, err := wire.ReadFrame(rd, buf)
			buf = b
			if err == io.EOF {
				break
			}
			if err != nil {
				return res, fmt.Errorf("persist: corrupt snapshot: %w", err)
			}
			if first {
				meta, ok := m.(wire.SnapMeta)
				if !ok {
					return res, fmt.Errorf("persist: snapshot opens with %T, want header", m)
				}
				res.Meta, res.HasSnapshot = meta, true
				first = false
				continue
			}
			rec, ok := m.(wire.Logged)
			if !ok {
				return res, fmt.Errorf("persist: snapshot record is %T, want logged record", m)
			}
			rs.RestoreState(rec.From, rec.Msg)
			res.SnapshotRecords++
		}
		if first && len(snap) > 0 {
			return res, errors.New("persist: snapshot holds no header")
		}
	}
	rd := bytes.NewReader(wal)
	var buf []byte
	for {
		m, b, err := wire.ReadFrame(rd, buf)
		buf = b
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// The crash landed mid-write: everything before this point is
			// complete and applied; the partial record never happened.
			res.TornTail = true
			break
		}
		if err != nil {
			return res, fmt.Errorf("persist: corrupt WAL frame %d: %w", res.ReplayedFrames, err)
		}
		rec, ok := m.(wire.Logged)
		if !ok {
			return res, fmt.Errorf("persist: WAL frame %d is %T, want logged record", res.ReplayedFrames, m)
		}
		replay(rec.From, rec.Msg)
		res.ReplayedFrames++
	}
	return res, nil
}
