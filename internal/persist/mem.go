package persist

import "errors"

// Mem is the in-memory Store: same semantics as the disk store — atomic
// snapshot installation, append-only log — with byte slices for media. It
// survives a simulated coordinator crash (the in-process chaos drills drop
// the coordinator and keep the store) but not the process. The zero value
// is ready to use.
//
// Unlike the other Store methods, Load on a Mem store may be called from a
// different goroutine than the writer as long as the writer has stopped —
// the crash-drill shape.
type Mem struct {
	snap   []byte
	wal    []byte
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// AppendWAL implements Store.
func (s *Mem) AppendWAL(frame []byte) error {
	if s.closed {
		return errors.New("persist: store is closed")
	}
	s.wal = append(s.wal, frame...)
	return nil
}

// WriteSnapshot implements Store.
func (s *Mem) WriteSnapshot(snap []byte) error {
	if s.closed {
		return errors.New("persist: store is closed")
	}
	s.snap = append(s.snap[:0], snap...)
	s.wal = s.wal[:0]
	return nil
}

// Load implements Store.
func (s *Mem) Load() (snap, wal []byte, err error) {
	if len(s.snap) > 0 {
		snap = append([]byte(nil), s.snap...)
	}
	wal = append([]byte(nil), s.wal...)
	return snap, wal, nil
}

// Sync implements Store (memory is as stable as it gets).
func (s *Mem) Sync() error { return nil }

// Close implements Store. The contents remain loadable: a reopened run
// passes the same *Mem to resume from it.
func (s *Mem) Close() error {
	s.closed = true
	return nil
}

// Reopen makes a closed store writable again, as reopening a disk store's
// directory would.
func (s *Mem) Reopen() { s.closed = false }

// TruncateWAL chops the log to n bytes — the crash-mid-write simulation
// the torn-tail tests use.
func (s *Mem) TruncateWAL(n int) {
	if n < len(s.wal) {
		s.wal = s.wal[:n]
	}
}

// WALSize returns the current log length in bytes.
func (s *Mem) WALSize() int { return len(s.wal) }
