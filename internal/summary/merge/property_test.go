package merge

import (
	"math"
	"testing"
	"testing/quick"

	"disttrack/internal/stats"
)

// TestPropertyWeightConservation: for any buffer size, stream length, and
// seed, the total weight always equals the number of insertions, and the
// snapshot agrees with the live summary on every query.
func TestPropertyWeightConservation(t *testing.T) {
	f := func(seed uint64, sizeRaw uint16, bufRaw uint8) bool {
		n := int(sizeRaw)%4000 + 1
		bufSize := int(bufRaw)%64 + 1
		rng := stats.New(seed)
		s := New(bufSize, rng.Split())
		for i := 0; i < n; i++ {
			s.Insert(rng.Float64())
		}
		if s.Rank(math.Inf(1)) != int64(n) {
			return false
		}
		if s.Rank(math.Inf(-1)) != 0 {
			return false
		}
		sn := s.Snapshot()
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if sn.Rank(q) != s.Rank(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRankMonotone: rank estimates are monotone in the query point
// for any realization of the merge randomness.
func TestPropertyRankMonotone(t *testing.T) {
	f := func(seed uint64, bufRaw uint8) bool {
		bufSize := int(bufRaw)%32 + 1
		rng := stats.New(seed)
		s := New(bufSize, rng.Split())
		for i := 0; i < 2000; i++ {
			s.Insert(rng.Float64())
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			r := s.Rank(q)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
