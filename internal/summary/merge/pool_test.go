package merge

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"disttrack/internal/stats"
)

// TestInsertRunBitIdenticalToSerial: interleaving single Inserts with
// InsertRun must leave the summary in exactly the state that per-element
// Inserts produce — same buffer contents (via Snapshot) and same RNG draw
// sequence (checked by continuing both summaries afterwards).
func TestInsertRunBitIdenticalToSerial(t *testing.T) {
	f := func(seed uint64, bufRaw uint8, runsRaw []uint16) bool {
		bufSize := int(bufRaw)%32 + 1
		root := stats.New(seed)
		serial := New(bufSize, root.Split())
		root = stats.New(seed)
		batched := New(bufSize, root.Split())

		vrng := stats.New(seed ^ 0xabcdef)
		for _, r := range runsRaw {
			run := int64(r % 300)
			v := vrng.Float64()
			for i := int64(0); i < run; i++ {
				serial.Insert(v)
			}
			batched.InsertRun(v, run)
			// A single distinct value between runs exercises mixed buffers.
			w := vrng.Float64()
			serial.Insert(w)
			batched.Insert(w)
		}
		if serial.N() != batched.N() || serial.Len() != batched.Len() {
			return false
		}
		if !reflect.DeepEqual(serial.Snapshot(), batched.Snapshot()) {
			return false
		}
		// The RNG streams must agree too: more shared input keeps them equal.
		for i := 0; i < 100; i++ {
			serial.Insert(float64(i))
			batched.Insert(float64(i))
		}
		return reflect.DeepEqual(serial.Snapshot(), batched.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPooledMatchesUnpooled: a summary drawn from a Pool behaves bit-
// identically to one built with New from the same parent RNG, including
// after Release/reuse cycles recycle its storage.
func TestPooledMatchesUnpooled(t *testing.T) {
	pool := NewPool()
	for cycle := 0; cycle < 5; cycle++ {
		seed := uint64(1000 + cycle)
		parentA, parentB := stats.New(seed), stats.New(seed)
		plain := New(7, parentA.Split())
		pooled := pool.NewSummary(7, parentB)
		vals := stats.New(seed ^ 99)
		for i := 0; i < 2000; i++ {
			v := vals.Float64()
			plain.Insert(v)
			pooled.Insert(v)
		}
		if !reflect.DeepEqual(plain.Snapshot(), pooled.Snapshot()) {
			t.Fatalf("cycle %d: pooled summary diverged from plain", cycle)
		}
		pooled.Release()
	}
}

// TestRecycledBuffersNotAliasedBySnapshots: releasing a summary back to the
// pool and reusing its storage for new data must not mutate snapshots taken
// before the release.
func TestRecycledBuffersNotAliasedBySnapshots(t *testing.T) {
	pool := NewPool()
	rng := stats.New(31)
	s := pool.NewSummary(8, rng)
	for i := 0; i < 500; i++ {
		s.Insert(float64(i))
	}
	sn := s.Snapshot()
	// Deep-copy the snapshot's contents for later comparison.
	want := make([][]float64, len(sn.Buffers))
	for i, b := range sn.Buffers {
		want[i] = append([]float64(nil), b.Values...)
	}
	wantRanks := map[float64]int64{}
	for _, q := range []float64{0, 100.5, 250, 499.5, 1000} {
		wantRanks[q] = sn.Rank(q)
	}

	s.Release()
	// Scribble over the pool's storage with different sizes and values.
	for cycle := 0; cycle < 4; cycle++ {
		s2 := pool.NewSummary(8+cycle, rng)
		for i := 0; i < 1000; i++ {
			s2.Insert(-1e9 * float64(cycle+1))
		}
		s2.Release()
	}

	for i, b := range sn.Buffers {
		if !reflect.DeepEqual(want[i], b.Values) {
			t.Fatalf("snapshot buffer %d mutated by pool reuse", i)
		}
	}
	for q, r := range wantRanks {
		if sn.Rank(q) != r {
			t.Fatalf("snapshot Rank(%v) changed from %d to %d after pool reuse", q, r, sn.Rank(q))
		}
	}
}

// TestResetConservesWeightAcrossReuse: Reset must return the summary to a
// pristine state; reusing it keeps exact weight conservation.
func TestResetConservesWeightAcrossReuse(t *testing.T) {
	s := New(5, stats.New(41))
	for round := 0; round < 6; round++ {
		n := 100*round + 37
		for i := 0; i < n; i++ {
			s.Insert(float64(i % 13))
		}
		if got := s.Rank(math.Inf(1)); got != int64(n) {
			t.Fatalf("round %d: total weight %d, want %d", round, got, n)
		}
		s.Reset()
		if s.N() != 0 || s.Len() != 0 || s.Rank(math.Inf(1)) != 0 {
			t.Fatalf("round %d: Reset left residue (n=%d len=%d)", round, s.N(), s.Len())
		}
	}
}

// TestInsertRunUnbiasedVariance: streams ingested as runs of duplicates keep
// the unbiasedness of Rank and the m/(2s) standard-deviation bound.
func TestInsertRunUnbiasedVariance(t *testing.T) {
	const runLen = 64
	const runs = 64 // m = 4096
	const m = runLen * runs
	const bufSize = 16
	const trials = 300
	rng := stats.New(53)
	const q = 0.5
	var truth float64
	{
		vals := stats.New(4242)
		for i := 0; i < runs; i++ {
			if vals.Float64() < q {
				truth += runLen
			}
		}
	}
	samples := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		s := New(bufSize, rng.Split())
		vals := stats.New(4242) // same stream every trial
		for i := 0; i < runs; i++ {
			s.InsertRun(vals.Float64(), runLen)
		}
		if s.N() != m {
			t.Fatalf("N = %d, want %d", s.N(), m)
		}
		samples[tr] = float64(s.Rank(q))
	}
	mean := stats.Mean(samples)
	bound := float64(m) / (2 * bufSize)
	se := bound/math.Sqrt(trials) + 1e-9
	if math.Abs(mean-truth) > 5*se {
		t.Fatalf("Rank mean %v, want %v (se bound %v)", mean, truth, se)
	}
	if sd := stats.StdDev(samples); sd > 1.5*bound {
		t.Fatalf("empirical std-dev %v exceeds bound %v", sd, bound)
	}
}

// TestPooledSteadyStateAllocFree: after warm-up, a full node lifecycle
// (draw from pool, ingest, snapshot-free release) performs no allocations.
func TestPooledSteadyStateAllocFree(t *testing.T) {
	pool := NewPool()
	rng := stats.New(61)
	cycle := func() {
		s := pool.NewSummary(16, rng)
		s.InsertRun(1.5, 100)
		for i := 0; i < 400; i++ {
			s.Insert(float64(i % 7))
		}
		s.Release()
	}
	cycle() // warm up the pool's buffers and level slices
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Fatalf("steady-state node lifecycle allocates %.1f times", allocs)
	}
}
