// Package merge implements a randomized quantile summary based on the
// classical random-offset buffer-merging hierarchy (Munro–Paterson layout
// with the randomized alternation of Suri–Tóth–Zhou [24] / Agarwal et
// al. [1]). It is the repository's realization of the paper's "algorithm A"
// black box (Section 4): an insertion-only summary producing, for every x,
// an UNBIASED estimator of rank(x) = |{elements < x}| with
//
//	Var[Rank(x)] <= (m / (2·s))²
//
// over a stream of m elements with buffer size s, using O(s·log(m/s)) space.
// Setting s = ⌈1/ε⌉ gives standard deviation at most εm/2.
//
// Mechanics: elements fill a level-0 buffer of size s. Two full buffers at
// level ℓ merge into one at level ℓ+1 by sorting their union (2s values,
// each of weight 2^ℓ) and keeping alternate values starting from a uniformly
// random offset in {0,1}; kept values get weight 2^(ℓ+1). Each merge
// perturbs any fixed rank by at most 2^ℓ with zero mean, independently of
// all other merges, which yields the unbiasedness and the variance bound
// (sum of (4^ℓ)/4 over the m/(s·2^(ℓ+1)) merges at each level ℓ).
package merge

import (
	"sort"

	"disttrack/internal/stats"
)

// Summary is the streaming structure. Construct with New.
type Summary struct {
	s      int // buffer size
	rng    *stats.RNG
	cur    []float64   // partial level-0 buffer, unsorted, weight 1
	levels [][]float64 // levels[l]: nil or a sorted buffer of weight 2^l
	n      int64
}

// New returns a summary with buffer size s (s >= 1) drawing merge offsets
// from rng. It panics on invalid arguments.
func New(s int, rng *stats.RNG) *Summary {
	if s < 1 {
		panic("merge: buffer size must be >= 1")
	}
	if rng == nil {
		panic("merge: nil rng")
	}
	return &Summary{s: s, rng: rng}
}

// NewEps returns a summary whose rank estimates have standard deviation at
// most eps·m over any stream of m elements (buffer size ⌈2/eps⌉... the
// conservative ⌈1/eps⌉ already gives eps·m/2; we use that).
func NewEps(eps float64, rng *stats.RNG) *Summary {
	if eps <= 0 || eps > 1 {
		panic("merge: eps out of (0,1]")
	}
	s := int(1/eps) + 1
	return New(s, rng)
}

// Insert adds one value.
func (m *Summary) Insert(v float64) {
	m.n++
	m.cur = append(m.cur, v)
	if len(m.cur) < m.s {
		return
	}
	buf := m.cur
	m.cur = make([]float64, 0, m.s)
	sort.Float64s(buf)
	m.carry(0, buf)
}

// carry inserts a full sorted buffer at the given level, merging upward
// binary-counter style while the level is occupied.
func (m *Summary) carry(level int, buf []float64) {
	for {
		for level >= len(m.levels) {
			m.levels = append(m.levels, nil)
		}
		if m.levels[level] == nil {
			m.levels[level] = buf
			return
		}
		buf = m.mergeBuffers(m.levels[level], buf)
		m.levels[level] = nil
		level++
	}
}

// mergeBuffers merges two sorted buffers of equal size and keeps alternate
// elements starting at a random offset.
func (m *Summary) mergeBuffers(a, b []float64) []float64 {
	combined := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			combined = append(combined, a[i])
			i++
		} else {
			combined = append(combined, b[j])
			j++
		}
	}
	combined = append(combined, a[i:]...)
	combined = append(combined, b[j:]...)

	offset := 0
	if m.rng.Bernoulli(0.5) {
		offset = 1
	}
	out := make([]float64, 0, (len(combined)+1)/2)
	for k := offset; k < len(combined); k += 2 {
		out = append(out, combined[k])
	}
	return out
}

// Rank returns the unbiased estimate of |{inserted values < x}|.
func (m *Summary) Rank(x float64) int64 {
	var r int64
	for _, v := range m.cur {
		if v < x {
			r++
		}
	}
	weight := int64(1)
	for _, buf := range m.levels {
		if buf != nil {
			r += weight * int64(sort.SearchFloat64s(buf, x))
		}
		weight <<= 1
	}
	return r
}

// N returns the number of inserted values.
func (m *Summary) N() int64 { return m.n }

// BufferSize returns the configured buffer size s.
func (m *Summary) BufferSize() int { return m.s }

// StdDevBound returns the analytic upper bound m.n/(2s) on the standard
// deviation of any rank estimate.
func (m *Summary) StdDevBound() float64 {
	return float64(m.n) / (2 * float64(m.s))
}

// Len returns the number of stored values across all buffers.
func (m *Summary) Len() int {
	total := len(m.cur)
	for _, buf := range m.levels {
		total += len(buf)
	}
	return total
}

// SpaceWords returns the in-memory size in words (one word per stored value
// plus one level tag per allocated level).
func (m *Summary) SpaceWords() int { return m.Len() + len(m.levels) }

// Snapshot freezes the summary into an immutable, shippable form. The
// partial level-0 buffer is included exactly (weight 1), so a snapshot's
// Rank has the same distribution as the live summary's.
func (m *Summary) Snapshot() Snapshot {
	var bufs []WeightedBuffer
	if len(m.cur) > 0 {
		vals := make([]float64, len(m.cur))
		copy(vals, m.cur)
		sort.Float64s(vals)
		bufs = append(bufs, WeightedBuffer{Weight: 1, Values: vals})
	}
	weight := int64(1)
	for _, buf := range m.levels {
		if buf != nil {
			vals := make([]float64, len(buf))
			copy(vals, buf)
			bufs = append(bufs, WeightedBuffer{Weight: weight, Values: vals})
		}
		weight <<= 1
	}
	return Snapshot{N: m.n, Buffers: bufs}
}

// WeightedBuffer is a sorted run of values sharing one weight.
type WeightedBuffer struct {
	Weight int64
	Values []float64
}

// Snapshot is the immutable wire form of a Summary.
type Snapshot struct {
	N       int64
	Buffers []WeightedBuffer
}

// Rank estimates |{values < x}| in the snapshotted stream (unbiased).
func (sn Snapshot) Rank(x float64) int64 {
	var r int64
	for _, b := range sn.Buffers {
		r += b.Weight * int64(sort.SearchFloat64s(b.Values, x))
	}
	return r
}

// Words returns the transfer size in words: one per value plus two per
// buffer (weight, length) plus one for N.
func (sn Snapshot) Words() int {
	w := 1
	for _, b := range sn.Buffers {
		w += 2 + len(b.Values)
	}
	return w
}
