// Package merge implements a randomized quantile summary based on the
// classical random-offset buffer-merging hierarchy (Munro–Paterson layout
// with the randomized alternation of Suri–Tóth–Zhou [24] / Agarwal et
// al. [1]). It is the repository's realization of the paper's "algorithm A"
// black box (Section 4): an insertion-only summary producing, for every x,
// an UNBIASED estimator of rank(x) = |{elements < x}| with
//
//	Var[Rank(x)] <= (m / (2·s))²
//
// over a stream of m elements with buffer size s, using O(s·log(m/s)) space.
// Setting s = ⌈1/ε⌉ gives standard deviation at most εm/2.
//
// Mechanics: elements fill a level-0 buffer of size s. Two full buffers at
// level ℓ merge into one at level ℓ+1 by sorting their union (2s values,
// each of weight 2^ℓ) and keeping alternate values starting from a uniformly
// random offset in {0,1}; kept values get weight 2^(ℓ+1). Each merge
// perturbs any fixed rank by at most 2^ℓ with zero mean, independently of
// all other merges, which yields the unbiasedness and the variance bound
// (sum of (4^ℓ)/4 over the m/(s·2^(ℓ+1)) merges at each level ℓ).
//
// The package is allocation-free in steady state: merges write through a
// reusable scratch slice and retire buffers to a free list instead of the
// GC, InsertRun ingests a run of identical values with closed-form merge
// work, and a Pool recycles whole summaries (struct, buffers, and scratch)
// across the short-lived tree nodes of the rank tracker.
package merge

import (
	"sort"

	"disttrack/internal/stats"
)

// Pool recycles retired Summary structs and their buffers. It is not safe
// for concurrent use; the rank tracker keeps one pool per site, matching the
// runtimes' one-goroutine-per-site guarantee.
type Pool struct {
	summaries []*Summary
	// buckets holds free buffers keyed by capacity, for buffers whose owner
	// was re-sized and for cross-summary reuse.
	buckets map[int][][]float64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// getBuf returns an empty slice with capacity exactly c.
func (p *Pool) getBuf(c int) []float64 {
	if bs := p.buckets[c]; len(bs) > 0 {
		b := bs[len(bs)-1]
		p.buckets[c] = bs[:len(bs)-1]
		return b
	}
	return make([]float64, 0, c)
}

// putBuf retires a buffer into its capacity bucket.
func (p *Pool) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	if p.buckets == nil {
		p.buckets = make(map[int][][]float64)
	}
	p.buckets[cap(b)] = append(p.buckets[cap(b)], b[:0])
}

// NewSummary returns a summary with buffer size s drawing its memory from
// the pool, with its RNG seeded as a split of parent (the draw sequence is
// identical to New(s, parent.Split())). Release returns the summary to the
// pool when its lifetime ends.
func (p *Pool) NewSummary(s int, parent *stats.RNG) *Summary {
	if s < 1 {
		panic("merge: buffer size must be >= 1")
	}
	var m *Summary
	if n := len(p.summaries); n > 0 {
		// Released summaries are already Reset; only a size change needs
		// their storage re-bucketed.
		m = p.summaries[n-1]
		p.summaries = p.summaries[:n-1]
		if m.s != s {
			m.flushStorage()
			m.s = s
		}
	} else {
		m = &Summary{s: s, pool: p}
	}
	parent.SplitInto(&m.rng)
	if m.cur == nil {
		m.cur = m.getBuf()
	}
	return m
}

// Summary is the streaming structure. Construct with New or Pool.NewSummary.
type Summary struct {
	s      int // buffer size
	rng    stats.RNG
	pool   *Pool
	cur    []float64   // partial level-0 buffer, unsorted, weight 1
	levels [][]float64 // levels[l]: nil or a sorted buffer of weight 2^l
	// free is the per-summary free list: retired capacity-s buffers, ready
	// for reuse by the next carry without touching the allocator.
	free    [][]float64
	scratch []float64 // capacity-2s merge area
	n       int64
}

// New returns a summary with buffer size s (s >= 1) drawing merge offsets
// from rng (the *RNG is copied; the summary owns its stream from then on).
// It panics on invalid arguments.
func New(s int, rng *stats.RNG) *Summary {
	if s < 1 {
		panic("merge: buffer size must be >= 1")
	}
	if rng == nil {
		panic("merge: nil rng")
	}
	m := &Summary{s: s, rng: *rng}
	m.cur = m.getBuf()
	return m
}

// NewEps returns a summary with buffer size s = ⌊1/eps⌋ + 1 ≥ 1/eps, so the
// standard deviation of any rank estimate is at most m/(2s) ≤ eps·m/2 over a
// stream of m elements.
func NewEps(eps float64, rng *stats.RNG) *Summary {
	if eps <= 0 || eps > 1 {
		panic("merge: eps out of (0,1]")
	}
	s := int(1/eps) + 1
	return New(s, rng)
}

// getBuf returns an empty capacity-s buffer, preferring the summary's own
// free list, then the shared pool, then the allocator.
func (m *Summary) getBuf() []float64 {
	if n := len(m.free); n > 0 {
		b := m.free[n-1]
		m.free = m.free[:n-1]
		return b
	}
	if m.pool != nil {
		return m.pool.getBuf(m.s)
	}
	return make([]float64, 0, m.s)
}

// putBuf retires a capacity-s buffer to the free list.
func (m *Summary) putBuf(b []float64) {
	m.free = append(m.free, b[:0])
}

// flushStorage moves every buffer the summary holds to the shared pool's
// capacity buckets (used when a pooled summary is re-sized).
func (m *Summary) flushStorage() {
	for _, b := range m.free {
		m.pool.putBuf(b)
	}
	m.free = m.free[:0]
	if m.cur != nil {
		m.pool.putBuf(m.cur)
		m.cur = nil
	}
	for i, b := range m.levels {
		if b != nil {
			m.pool.putBuf(b)
			m.levels[i] = nil
		}
	}
	m.levels = m.levels[:0]
	if m.scratch != nil {
		m.pool.putBuf(m.scratch)
		m.scratch = nil
	}
}

// Reset empties the summary for reuse with the same buffer size, retiring
// every full buffer to the free list instead of the GC.
func (m *Summary) Reset() {
	for i, b := range m.levels {
		if b != nil {
			m.putBuf(b)
			m.levels[i] = nil
		}
	}
	m.levels = m.levels[:0]
	if m.cur == nil {
		m.cur = m.getBuf()
	} else {
		m.cur = m.cur[:0]
	}
	m.n = 0
}

// Release resets the summary and returns it (struct, buffers, and scratch)
// to the pool it was drawn from. It is a no-op beyond Reset for summaries
// built with New. The summary must not be used after Release until it is
// handed out again by Pool.NewSummary.
func (m *Summary) Release() {
	m.Reset()
	if m.pool == nil {
		return
	}
	m.pool.summaries = append(m.pool.summaries, m)
}

// Insert adds one value.
func (m *Summary) Insert(v float64) {
	m.n++
	m.cur = append(m.cur, v)
	if len(m.cur) < m.s {
		return
	}
	buf := m.cur
	m.cur = m.getBuf()
	sort.Float64s(buf)
	m.carry(0, buf)
}

// InsertRun adds count copies of v. It is bit-identical to count successive
// Insert(v) calls — same buffer contents, same RNG draw sequence — but full
// buffers of the run are already sorted, so they skip the sort, and merges
// of two single-value buffers skip the element work entirely (the alternate
// selection of 2s equal values is those s values, whatever the offset).
func (m *Summary) InsertRun(v float64, count int64) {
	for count > 0 {
		if len(m.cur) > 0 || count < int64(m.s) {
			// Fill the partial level-0 buffer; a full buffer carries as in
			// Insert (the sort also orders any pre-run prefix).
			take := int64(m.s - len(m.cur))
			if take > count {
				take = count
			}
			for i := int64(0); i < take; i++ {
				m.cur = append(m.cur, v)
			}
			m.n += take
			count -= take
			if len(m.cur) == m.s {
				buf := m.cur
				m.cur = m.getBuf()
				sort.Float64s(buf)
				m.carry(0, buf)
			}
			continue
		}
		// cur is empty and a whole buffer of the run remains: carry a
		// pre-sorted single-value buffer without touching cur.
		buf := m.getBuf()[:m.s]
		for i := range buf {
			buf[i] = v
		}
		m.n += int64(m.s)
		count -= int64(m.s)
		m.carry(0, buf)
	}
}

// carry inserts a full sorted buffer at the given level, merging upward
// binary-counter style while the level is occupied.
func (m *Summary) carry(level int, buf []float64) {
	for {
		for level >= len(m.levels) {
			m.levels = append(m.levels, nil)
		}
		if m.levels[level] == nil {
			m.levels[level] = buf
			return
		}
		buf = m.mergeBuffers(m.levels[level], buf)
		m.levels[level] = nil
		level++
	}
}

// mergeBuffers merges two sorted buffers of equal size and keeps alternate
// elements starting at a random offset. The result is written back into a's
// storage and b is retired to the free list, so steady-state merging
// allocates nothing.
func (m *Summary) mergeBuffers(a, b []float64) []float64 {
	// Two buffers of the same single value keep that value at every
	// alternate position regardless of the offset; draw the offset anyway so
	// the RNG stream matches the general path bit for bit.
	if a[0] == a[len(a)-1] && a[0] == b[0] && b[0] == b[len(b)-1] {
		m.rng.Bernoulli(0.5)
		m.putBuf(b)
		return a
	}
	if need := len(a) + len(b); cap(m.scratch) < need {
		m.scratch = make([]float64, 0, need)
	}
	combined := m.scratch[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			combined = append(combined, a[i])
			i++
		} else {
			combined = append(combined, b[j])
			j++
		}
	}
	combined = append(combined, a[i:]...)
	combined = append(combined, b[j:]...)

	offset := 0
	if m.rng.Bernoulli(0.5) {
		offset = 1
	}
	out := a[:0]
	for k := offset; k < len(combined); k += 2 {
		out = append(out, combined[k])
	}
	m.putBuf(b)
	return out
}

// Rank returns the unbiased estimate of |{inserted values < x}|.
func (m *Summary) Rank(x float64) int64 {
	var r int64
	for _, v := range m.cur {
		if v < x {
			r++
		}
	}
	weight := int64(1)
	for _, buf := range m.levels {
		if buf != nil {
			r += weight * int64(sort.SearchFloat64s(buf, x))
		}
		weight <<= 1
	}
	return r
}

// N returns the number of inserted values.
func (m *Summary) N() int64 { return m.n }

// BufferSize returns the configured buffer size s.
func (m *Summary) BufferSize() int { return m.s }

// StdDevBound returns the analytic upper bound m.n/(2s) on the standard
// deviation of any rank estimate.
func (m *Summary) StdDevBound() float64 {
	return float64(m.n) / (2 * float64(m.s))
}

// Len returns the number of stored values across all buffers.
func (m *Summary) Len() int {
	total := len(m.cur)
	for _, buf := range m.levels {
		total += len(buf)
	}
	return total
}

// SpaceWords returns the in-memory size in words (one word per stored value
// plus one level tag per allocated level).
func (m *Summary) SpaceWords() int { return m.Len() + len(m.levels) }

// Snapshot freezes the summary into an immutable, shippable form. The
// partial level-0 buffer is included exactly (weight 1), so a snapshot's
// Rank has the same distribution as the live summary's. The snapshot owns
// its memory (one backing array for all buffers), so the live summary — and
// any pool it recycles through — can keep mutating freely.
func (m *Summary) Snapshot() Snapshot {
	nb, nv := 0, 0
	if len(m.cur) > 0 {
		nb, nv = 1, len(m.cur)
	}
	for _, buf := range m.levels {
		if buf != nil {
			nb++
			nv += len(buf)
		}
	}
	if nb == 0 {
		return Snapshot{N: m.n}
	}
	bufs := make([]WeightedBuffer, 0, nb)
	backing := make([]float64, nv)
	used := 0
	if len(m.cur) > 0 {
		vals := backing[used : used+len(m.cur) : used+len(m.cur)]
		copy(vals, m.cur)
		used += len(m.cur)
		sort.Float64s(vals)
		bufs = append(bufs, WeightedBuffer{Weight: 1, Values: vals})
	}
	weight := int64(1)
	for _, buf := range m.levels {
		if buf != nil {
			vals := backing[used : used+len(buf) : used+len(buf)]
			copy(vals, buf)
			used += len(buf)
			bufs = append(bufs, WeightedBuffer{Weight: weight, Values: vals})
		}
		weight <<= 1
	}
	return Snapshot{N: m.n, Buffers: bufs}
}

// WeightedBuffer is a sorted run of values sharing one weight.
type WeightedBuffer struct {
	Weight int64
	Values []float64
}

// Snapshot is the immutable wire form of a Summary.
type Snapshot struct {
	N       int64
	Buffers []WeightedBuffer
}

// Rank estimates |{values < x}| in the snapshotted stream (unbiased).
func (sn Snapshot) Rank(x float64) int64 {
	var r int64
	for _, b := range sn.Buffers {
		r += b.Weight * int64(sort.SearchFloat64s(b.Values, x))
	}
	return r
}

// Words returns the transfer size in words: one per value plus two per
// buffer (weight, length) plus one for N.
func (sn Snapshot) Words() int {
	w := 1
	for _, b := range sn.Buffers {
		w += 2 + len(b.Values)
	}
	return w
}
