package merge

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

func TestExactWhileBufferPartial(t *testing.T) {
	s := New(100, stats.New(1))
	for i := 0; i < 50; i++ {
		s.Insert(float64(i))
	}
	// No merge has happened; ranks are exact.
	for _, q := range []float64{0, 10, 25.5, 50, 100} {
		want := int64(math.Min(math.Ceil(q), 50))
		if q > 50 {
			want = 50
		}
		if got := s.Rank(q); got != want {
			t.Fatalf("Rank(%v) = %d, want %d", q, got, want)
		}
	}
}

func TestWeightConservation(t *testing.T) {
	// Total weight (= Rank(+inf)) must always equal n exactly: merges keep
	// exactly half of 2s elements at double weight.
	s := New(8, stats.New(3))
	for i := 1; i <= 10000; i++ {
		s.Insert(float64(i % 97))
		if i%997 == 0 || i <= 64 {
			if got := s.Rank(math.Inf(1)); got != int64(i) {
				t.Fatalf("after %d inserts total weight = %d", i, got)
			}
		}
	}
}

func TestUnbiasedness(t *testing.T) {
	// Mean of Rank over many independent summaries approaches the true rank.
	const m = 4096
	const bufSize = 16 // heavy merging
	const trials = 400
	rng := stats.New(5)
	queries := []float64{0.1, 0.33, 0.5, 0.9}
	sums := make([]float64, len(queries))
	for tr := 0; tr < trials; tr++ {
		s := New(bufSize, rng.Split())
		elemRng := stats.New(12345) // same data every trial
		for i := 0; i < m; i++ {
			s.Insert(elemRng.Float64())
		}
		for qi, q := range queries {
			sums[qi] += float64(s.Rank(q))
		}
	}
	// True ranks for the fixed data.
	elemRng := stats.New(12345)
	data := make([]float64, m)
	for i := range data {
		data[i] = elemRng.Float64()
	}
	for qi, q := range queries {
		var truth float64
		for _, v := range data {
			if v < q {
				truth++
			}
		}
		mean := sums[qi] / trials
		// Std-dev of the mean is sigma/sqrt(trials) <= (m/2s)/sqrt(trials).
		tol := 4 * (float64(m) / (2 * bufSize)) / math.Sqrt(trials)
		if math.Abs(mean-truth) > tol {
			t.Fatalf("Rank(%v): mean %v vs truth %v (tol %v)", q, mean, truth, tol)
		}
	}
}

func TestVarianceBound(t *testing.T) {
	const m = 4096
	const bufSize = 32
	const trials = 300
	rng := stats.New(7)
	const q = 0.5
	samples := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		s := New(bufSize, rng.Split())
		elemRng := stats.New(999)
		for i := 0; i < m; i++ {
			s.Insert(elemRng.Float64())
		}
		samples[tr] = float64(s.Rank(q))
	}
	sd := stats.StdDev(samples)
	bound := float64(m) / (2 * bufSize)
	if sd > 1.5*bound {
		t.Fatalf("empirical std-dev %v exceeds bound %v", sd, bound)
	}
}

func TestStdDevBoundAccessor(t *testing.T) {
	s := New(10, stats.New(11))
	for i := 0; i < 1000; i++ {
		s.Insert(float64(i))
	}
	if got := s.StdDevBound(); got != 1000.0/20 {
		t.Fatalf("StdDevBound = %v, want 50", got)
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	const bufSize = 64
	s := New(bufSize, stats.New(13))
	const m = 1 << 17
	for i := 0; i < m; i++ {
		s.Insert(float64(i))
	}
	// Space should be O(s log(m/s)): one buffer per level.
	maxLevels := int(math.Log2(float64(m)/bufSize)) + 2
	if s.Len() > bufSize*(maxLevels+1) {
		t.Fatalf("space %d values exceeds %d", s.Len(), bufSize*(maxLevels+1))
	}
	if s.SpaceWords() < s.Len() {
		t.Fatal("SpaceWords < Len")
	}
}

func TestSnapshotDistributionMatchesLive(t *testing.T) {
	rng := stats.New(17)
	s := New(8, rng.Split())
	for i := 0; i < 1000; i++ {
		s.Insert(rng.Float64())
	}
	sn := s.Snapshot()
	if sn.N != s.N() {
		t.Fatal("snapshot N mismatch")
	}
	for _, q := range []float64{0, 0.2, 0.5, 0.8, 1} {
		if sn.Rank(q) != s.Rank(q) {
			t.Fatalf("snapshot Rank(%v) = %d, live %d", q, sn.Rank(q), s.Rank(q))
		}
	}
	if sn.Words() <= 0 {
		t.Fatal("snapshot Words not positive")
	}
}

func TestSnapshotIncludesPartialBuffer(t *testing.T) {
	s := New(100, stats.New(19))
	s.Insert(1)
	s.Insert(2)
	sn := s.Snapshot()
	if got := sn.Rank(3); got != 2 {
		t.Fatalf("partial-buffer snapshot Rank(3) = %d, want 2", got)
	}
}

func TestBufferSizeOne(t *testing.T) {
	// Degenerate buffer size must still conserve weight and stay unbiased
	// in expectation (sanity: total weight).
	s := New(1, stats.New(23))
	for i := 0; i < 257; i++ {
		s.Insert(float64(i))
	}
	if got := s.Rank(math.Inf(1)); got != 257 {
		t.Fatalf("total weight %d, want 257", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(){
		func() { New(0, stats.New(1)) },
		func() { New(5, nil) },
		func() { NewEps(0, stats.New(1)) },
		func() { NewEps(1.5, stats.New(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewEpsVariance(t *testing.T) {
	// NewEps(eps) must give std-dev <= eps*m.
	const eps = 0.05
	const m = 2000
	const trials = 200
	rng := stats.New(29)
	samples := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		s := NewEps(eps, rng.Split())
		elemRng := stats.New(777)
		for i := 0; i < m; i++ {
			s.Insert(elemRng.Float64())
		}
		samples[tr] = float64(s.Rank(0.5))
	}
	if sd := stats.StdDev(samples); sd > eps*m {
		t.Fatalf("std-dev %v exceeds eps*m = %v", sd, eps*m)
	}
}
