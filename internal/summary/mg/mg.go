// Package mg implements the Misra–Gries frequent-items summary [Misra &
// Gries 1982], the classical deterministic heavy-hitters algorithm with the
// optimal O(1/ε) space. It is one of the streaming substrates the paper's
// frequency-tracking discussion builds on (reference [20]).
//
// A summary with m counters processed over a stream of n items guarantees,
// for every item j with true frequency f_j:
//
//	f_j - n/(m+1) <= Estimate(j) <= f_j
//
// so m = ⌈1/ε⌉ counters give absolute error at most εn.
package mg

// Summary is a Misra–Gries sketch. The zero value is not usable; construct
// with New.
type Summary struct {
	capacity int
	counters map[int64]int64
	n        int64
}

// New returns a summary with m counters. It panics if m <= 0.
func New(m int) *Summary {
	if m <= 0 {
		panic("mg: New with non-positive capacity")
	}
	return &Summary{
		capacity: m,
		counters: make(map[int64]int64, m+1),
	}
}

// Add processes one occurrence of item j.
func (s *Summary) Add(j int64) {
	s.n++
	if _, ok := s.counters[j]; ok {
		s.counters[j]++
		return
	}
	if len(s.counters) < s.capacity {
		s.counters[j] = 1
		return
	}
	// Decrement every counter; drop the ones that reach zero. This is the
	// classic MG step: the new item and one unit of every tracked item are
	// discarded together.
	for key, c := range s.counters {
		if c == 1 {
			delete(s.counters, key)
		} else {
			s.counters[key] = c - 1
		}
	}
}

// Estimate returns the summary's lower-bound estimate of item j's frequency
// (0 if j is not tracked).
func (s *Summary) Estimate(j int64) int64 {
	return s.counters[j]
}

// N returns the number of items processed.
func (s *Summary) N() int64 { return s.n }

// ErrorBound returns the maximum possible underestimate, n/(m+1).
func (s *Summary) ErrorBound() int64 {
	return s.n / int64(s.capacity+1)
}

// Counters returns a copy of the tracked (item, count) pairs.
func (s *Summary) Counters() map[int64]int64 {
	out := make(map[int64]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Len returns the number of live counters (always <= capacity).
func (s *Summary) Len() int { return len(s.counters) }

// SpaceWords returns the summary's current size in words (two words per
// counter: item and count).
func (s *Summary) SpaceWords() int { return 2 * len(s.counters) }

// Merge folds other into s. The merged summary has the combined stream's
// guarantee with the same capacity: it adds counter maps, then reduces back
// to the capacity by subtracting the (capacity+1)-th largest count from all
// counters (Agarwal et al.'s mergeability result for MG).
func (s *Summary) Merge(other *Summary) {
	for k, v := range other.counters {
		s.counters[k] += v
	}
	s.n += other.n
	if len(s.counters) <= s.capacity {
		return
	}
	// Find the (capacity+1)-th largest counter value.
	vals := make([]int64, 0, len(s.counters))
	for _, v := range s.counters {
		vals = append(vals, v)
	}
	pivot := kthLargest(vals, s.capacity+1)
	for k, v := range s.counters {
		if v <= pivot {
			delete(s.counters, k)
		} else {
			s.counters[k] = v - pivot
		}
	}
}

// kthLargest returns the k-th largest value of vs (1-based) using an
// in-place quickselect. It panics if k is out of range.
func kthLargest(vs []int64, k int) int64 {
	if k < 1 || k > len(vs) {
		panic("mg: kthLargest out of range")
	}
	lo, hi := 0, len(vs)-1
	target := k - 1 // index in descending order
	for {
		if lo == hi {
			return vs[lo]
		}
		// Median-of-three pivot for robustness on sorted inputs.
		mid := lo + (hi-lo)/2
		if vs[mid] > vs[lo] {
			vs[mid], vs[lo] = vs[lo], vs[mid]
		}
		if vs[hi] > vs[lo] {
			vs[hi], vs[lo] = vs[lo], vs[hi]
		}
		if vs[mid] > vs[hi] {
			vs[mid], vs[hi] = vs[hi], vs[mid]
		}
		pivot := vs[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if vs[j] > pivot { // descending partition
				vs[i], vs[j] = vs[j], vs[i]
				i++
			}
		}
		vs[i], vs[hi] = vs[hi], vs[i]
		switch {
		case target == i:
			return vs[i]
		case target < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}
