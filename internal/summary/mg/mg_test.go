package mg

import (
	"testing"
	"testing/quick"

	"disttrack/internal/stats"
)

func TestExactWhenUnderCapacity(t *testing.T) {
	s := New(10)
	for i := 0; i < 5; i++ {
		s.Add(int64(i))
		s.Add(int64(i))
	}
	for i := int64(0); i < 5; i++ {
		if got := s.Estimate(i); got != 2 {
			t.Fatalf("Estimate(%d) = %d, want 2", i, got)
		}
	}
	if s.N() != 10 {
		t.Fatalf("N = %d, want 10", s.N())
	}
}

func TestErrorBoundHolds(t *testing.T) {
	const m = 9 // error <= n/10
	s := New(m)
	rng := stats.New(101)
	z := stats.NewZipf(rng, 1000, 1.0)
	truth := map[int64]int64{}
	const n = 50000
	for i := 0; i < n; i++ {
		j := int64(z.Draw())
		truth[j]++
		s.Add(j)
	}
	bound := s.ErrorBound()
	if bound > n/(m+1) {
		t.Fatalf("ErrorBound %d exceeds n/(m+1)", bound)
	}
	for j, f := range truth {
		est := s.Estimate(j)
		if est > f {
			t.Fatalf("MG overestimated item %d: est %d > true %d", j, est, f)
		}
		if f-est > bound {
			t.Fatalf("MG error for item %d: %d > bound %d", j, f-est, bound)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	s := New(5)
	rng := stats.New(103)
	for i := 0; i < 10000; i++ {
		s.Add(int64(rng.Intn(500)))
		if s.Len() > 5 {
			t.Fatalf("capacity exceeded: %d counters", s.Len())
		}
	}
	if s.SpaceWords() > 10 {
		t.Fatalf("space %d words > 2*capacity", s.SpaceWords())
	}
}

func TestHeavyHitterAlwaysTracked(t *testing.T) {
	// An item with frequency > n/(m+1) must survive.
	s := New(4) // threshold n/5
	const n = 1000
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			s.Add(42) // ~n/3 > n/5
		} else {
			s.Add(int64(1000 + i)) // all distinct
		}
	}
	if s.Estimate(42) == 0 {
		t.Fatal("heavy hitter lost from summary")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestMergeGuarantee(t *testing.T) {
	const m = 9
	a, b := New(m), New(m)
	rng := stats.New(107)
	z := stats.NewZipf(rng, 300, 1.1)
	truth := map[int64]int64{}
	const n = 20000
	for i := 0; i < n; i++ {
		j := int64(z.Draw())
		truth[j]++
		if i%2 == 0 {
			a.Add(j)
		} else {
			b.Add(j)
		}
	}
	a.Merge(b)
	if a.N() != n {
		t.Fatalf("merged N = %d, want %d", a.N(), n)
	}
	if a.Len() > m {
		t.Fatalf("merged summary has %d > %d counters", a.Len(), m)
	}
	bound := int64(n / (m + 1))
	for j, f := range truth {
		est := a.Estimate(j)
		if est > f {
			t.Fatalf("merged overestimate for %d: %d > %d", j, est, f)
		}
		if f-est > bound {
			t.Fatalf("merged error for %d: %d > %d", j, f-est, bound)
		}
	}
}

func TestCountersCopyIsDetached(t *testing.T) {
	s := New(3)
	s.Add(1)
	c := s.Counters()
	c[1] = 99
	if s.Estimate(1) != 1 {
		t.Fatal("Counters() returned a live reference")
	}
}

func TestKthLargest(t *testing.T) {
	f := func(raw []int64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw)%len(raw) + 1
		cp := make([]int64, len(raw))
		copy(cp, raw)
		got := kthLargest(cp, k)
		// Verify against a sort.
		cp2 := make([]int64, len(raw))
		copy(cp2, raw)
		for i := 0; i < len(cp2); i++ {
			for j := i + 1; j < len(cp2); j++ {
				if cp2[j] > cp2[i] {
					cp2[i], cp2[j] = cp2[j], cp2[i]
				}
			}
		}
		return got == cp2[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateUnknownItem(t *testing.T) {
	s := New(3)
	s.Add(7)
	if got := s.Estimate(8); got != 0 {
		t.Fatalf("Estimate of untracked item = %d, want 0", got)
	}
}
