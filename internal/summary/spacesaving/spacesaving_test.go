package spacesaving

import (
	"testing"

	"disttrack/internal/stats"
)

func TestExactUnderCapacity(t *testing.T) {
	s := New(8)
	for i := 0; i < 4; i++ {
		for r := 0; r <= i; r++ {
			s.Add(int64(i))
		}
	}
	for i := int64(0); i < 4; i++ {
		if got := s.Estimate(i); got != i+1 {
			t.Fatalf("Estimate(%d) = %d, want %d", i, got, i+1)
		}
		if gc := s.GuaranteedCount(i); gc != i+1 {
			t.Fatalf("GuaranteedCount(%d) = %d, want %d", i, gc, i+1)
		}
	}
}

func TestOverestimateOnlyAndBounded(t *testing.T) {
	const m = 10
	s := New(m)
	rng := stats.New(211)
	z := stats.NewZipf(rng, 500, 1.0)
	truth := map[int64]int64{}
	const n = 30000
	for i := 0; i < n; i++ {
		j := int64(z.Draw())
		truth[j]++
		s.Add(j)
	}
	bound := s.ErrorBound()
	for j, f := range truth {
		est := s.Estimate(j)
		if est == 0 {
			// Untracked: true frequency must be small.
			if f > bound {
				t.Fatalf("untracked item %d has frequency %d > bound %d", j, f, bound)
			}
			continue
		}
		if est < f {
			t.Fatalf("SpaceSaving underestimated %d: %d < %d", j, est, f)
		}
		if est-f > bound {
			t.Fatalf("overestimate for %d: %d > bound %d", j, est-f, bound)
		}
		if gc := s.GuaranteedCount(j); gc > f {
			t.Fatalf("GuaranteedCount(%d) = %d exceeds true %d", j, gc, f)
		}
	}
}

func TestCountersAreMonotone(t *testing.T) {
	s := New(4)
	rng := stats.New(223)
	last := map[int]int64{}
	for i := 0; i < 20000; i++ {
		c := s.Add(int64(rng.Intn(100)))
		if prev, ok := last[c.Slot]; ok && c.Count < prev {
			t.Fatalf("slot %d count decreased: %d -> %d", c.Slot, prev, c.Count)
		}
		last[c.Slot] = c.Count
	}
}

func TestSlotIdentityStable(t *testing.T) {
	s := New(2)
	s.Add(1)
	s.Add(2)
	c := s.Add(3) // evicts the minimum slot
	if c.Slot != 0 && c.Slot != 1 {
		t.Fatalf("unexpected slot id %d", c.Slot)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	slots := s.Slots()
	if len(slots) != 2 {
		t.Fatalf("Slots() returned %d", len(slots))
	}
	seen := map[int]bool{}
	for _, sl := range slots {
		if seen[sl.Slot] {
			t.Fatalf("duplicate slot id %d", sl.Slot)
		}
		seen[sl.Slot] = true
	}
}

func TestEvictionInheritsMinPlusOne(t *testing.T) {
	s := New(2)
	s.Add(10)
	s.Add(10)
	s.Add(10) // item 10: 3
	s.Add(20) // item 20: 1
	c := s.Add(30)
	if c.Item != 30 || c.Count != 2 || c.Err != 1 {
		t.Fatalf("eviction produced %+v, want item 30 count 2 err 1", c)
	}
	if s.Estimate(20) != 0 {
		t.Fatal("evicted item still tracked")
	}
}

func TestHeavyHitterNeverEvicted(t *testing.T) {
	s := New(5)
	const n = 5000
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s.Add(99)
		} else {
			s.Add(int64(1000 + i))
		}
	}
	if s.Estimate(99) < n/2 {
		t.Fatalf("heavy hitter estimate %d below true count %d", s.Estimate(99), n/2)
	}
}

func TestSpaceWords(t *testing.T) {
	s := New(7)
	if s.SpaceWords() != 0 {
		t.Fatal("fresh summary should use 0 words")
	}
	for i := 0; i < 100; i++ {
		s.Add(int64(i))
	}
	if s.SpaceWords() != 3*7 {
		t.Fatalf("SpaceWords = %d, want 21", s.SpaceWords())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}
