// Package spacesaving implements the SpaceSaving frequent-items summary
// [Metwally, Agrawal & El Abbadi 2006] (paper reference [19]).
//
// Unlike Misra–Gries, SpaceSaving counters are monotone non-decreasing, which
// is what the deterministic frequency-tracking baseline exploits: a site can
// report a counter every time it crosses a rounding threshold and the
// coordinator's view is always a recent lower-approximation.
//
// With m counters over a stream of n items the guarantees are, for any item j:
//
//	f_j <= Estimate(j) <= f_j + n/m   (if j is tracked; otherwise f_j <= n/m)
package spacesaving

import "container/heap"

// Counter is one monotone slot of the summary. Slot identities are stable:
// the i-th counter keeps its index for the lifetime of the summary even as
// its label changes, which lets a remote reader apply (slot, item, count)
// updates idempotently.
type Counter struct {
	Slot  int
	Item  int64
	Count int64
	// Err is the classical SpaceSaving overestimation bound for this slot's
	// current label (the count the slot had when the label last changed).
	Err int64
	// heap bookkeeping
	index int
}

// Summary is a SpaceSaving sketch with a fixed number of slots.
type Summary struct {
	capacity int
	byItem   map[int64]*Counter
	block    []Counter  // backing storage: all m counters in one allocation
	slots    []*Counter // all allocated counters, by slot id
	h        minHeap    // live counters ordered by Count
	n        int64
}

// New returns a summary with m slots. It panics if m <= 0. All m counters
// and both slot indexes are allocated up front in a handful of blocks, so
// filling the summary performs no per-slot allocation.
func New(m int) *Summary {
	if m <= 0 {
		panic("spacesaving: New with non-positive capacity")
	}
	return &Summary{
		capacity: m,
		byItem:   make(map[int64]*Counter, m),
		block:    make([]Counter, m),
		slots:    make([]*Counter, 0, m),
		h:        make(minHeap, 0, m),
	}
}

// Add processes one occurrence of item j and returns the counter that was
// updated (its fields reflect the post-update state).
func (s *Summary) Add(j int64) *Counter {
	s.n++
	if c, ok := s.byItem[j]; ok {
		c.Count++
		heap.Fix(&s.h, c.index)
		return c
	}
	if len(s.slots) < s.capacity {
		c := &s.block[len(s.slots)]
		c.Slot, c.Item, c.Count = len(s.slots), j, 1
		s.slots = append(s.slots, c)
		s.byItem[j] = c
		heap.Push(&s.h, c)
		return c
	}
	// Evict the minimum counter: the new item inherits its count + 1.
	c := s.h[0]
	delete(s.byItem, c.Item)
	c.Err = c.Count
	c.Item = j
	c.Count++
	s.byItem[j] = c
	heap.Fix(&s.h, 0)
	return c
}

// Estimate returns the (over-)estimate for item j, 0 if untracked.
func (s *Summary) Estimate(j int64) int64 {
	if c, ok := s.byItem[j]; ok {
		return c.Count
	}
	return 0
}

// GuaranteedCount returns a lower bound on item j's true frequency
// (Count - Err for a tracked item, else 0).
func (s *Summary) GuaranteedCount(j int64) int64 {
	if c, ok := s.byItem[j]; ok {
		return c.Count - c.Err
	}
	return 0
}

// N returns the number of items processed.
func (s *Summary) N() int64 { return s.n }

// ErrorBound returns n/m, the maximum overestimation (and the maximum count
// of any untracked item).
func (s *Summary) ErrorBound() int64 { return s.n / int64(s.capacity) }

// Len returns the number of live slots.
func (s *Summary) Len() int { return len(s.slots) }

// SpaceWords returns the size in words (three words per slot: item, count,
// err; slot ids are implicit).
func (s *Summary) SpaceWords() int { return 3 * len(s.slots) }

// Slots returns the live counters in slot order. The returned counters are
// snapshots (copies), safe to retain.
func (s *Summary) Slots() []Counter {
	out := make([]Counter, len(s.slots))
	for i, c := range s.slots {
		out[i] = *c
	}
	return out
}

// minHeap orders counters by Count ascending.
type minHeap []*Counter

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].Count < h[j].Count }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *minHeap) Push(x interface{}) { c := x.(*Counter); c.index = len(*h); *h = append(*h, c) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}
