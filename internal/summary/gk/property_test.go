package gk

import (
	"testing"
	"testing/quick"

	"disttrack/internal/stats"
)

// TestPropertyRankWithinEps: for random stream sizes, error parameters, and
// input orders, every rank query stays within εn.
func TestPropertyRankWithinEps(t *testing.T) {
	f := func(seed uint64, sizeRaw uint16, epsRaw uint8) bool {
		n := int(sizeRaw)%3000 + 10
		eps := 0.01 + float64(epsRaw%20)/100 // 0.01 .. 0.20
		rng := stats.New(seed)
		s := New(eps)
		xs := make([]float64, n)
		switch seed % 3 {
		case 0: // random
			for i := range xs {
				xs[i] = rng.Float64()
			}
		case 1: // sorted
			for i := range xs {
				xs[i] = float64(i)
			}
		default: // organ pipe
			for i := range xs {
				if i%2 == 0 {
					xs[i] = float64(i)
				} else {
					xs[i] = float64(n - i)
				}
			}
		}
		for _, v := range xs {
			s.Insert(v)
		}
		// Probe a handful of random queries plus the extremes.
		queries := []float64{xs[0], xs[n/2], xs[n-1] + 1, -1e18, 1e18}
		for i := 0; i < 5; i++ {
			queries = append(queries, xs[rng.Intn(n)])
		}
		for _, q := range queries {
			var truth int64
			for _, v := range xs {
				if v < q {
					truth++
				}
			}
			got := s.Rank(q)
			diff := got - truth
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > eps*float64(n)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
