// Package gk implements the Greenwald–Khanna quantile summary [SIGMOD 2001]
// (paper reference [12]): a deterministic structure that answers rank queries
// over a stream of n values with absolute error at most εn.
//
// The implementation is the standard tuple list (v_i, g_i, Δ_i) with the
// invariant g_i + Δ_i <= ⌊2εn⌋ maintained by periodic compression. It omits
// the "bands" refinement of the original paper; the size stays
// O(1/ε·log(εn)) in practice, which is what the deterministic rank-tracking
// baseline needs.
package gk

import (
	"math"
	"sort"
	"sync"
)

// tuple is one summary entry: value v covers g positions, with Δ slack.
// If rmin(i) = Σ_{j<=i} g_j, the true (1-based) rank of v_i among the
// inserted values lies in [rmin(i), rmin(i)+Δ_i].
type tuple struct {
	v float64
	g int64
	d int64
}

// Summary is a GK quantile summary. Construct with New.
type Summary struct {
	eps     float64
	tuples  []tuple
	n       int64
	pending int // inserts since the last compress
}

// New returns a summary with error parameter eps in (0, 1).
func New(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("gk: eps out of (0,1)")
	}
	return &Summary{eps: eps}
}

// Insert adds one value to the summary.
func (s *Summary) Insert(v float64) {
	s.n++
	idx := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i].v >= v })
	var d int64
	if idx == 0 || idx == len(s.tuples) {
		d = 0 // new minimum or maximum: exact rank
	} else {
		d = s.threshold() - 1
		if d < 0 {
			d = 0
		}
	}
	s.tuples = append(s.tuples, tuple{})
	copy(s.tuples[idx+1:], s.tuples[idx:])
	s.tuples[idx] = tuple{v: v, g: 1, d: d}

	s.pending++
	if s.pending >= int(1/(2*s.eps))+1 {
		s.compress()
		s.pending = 0
	}
}

// threshold returns ⌊2εn⌋, the invariant bound on g+Δ.
func (s *Summary) threshold() int64 {
	return int64(2 * s.eps * float64(s.n))
}

// compress merges adjacent tuples while preserving the invariant.
func (s *Summary) compress() {
	if len(s.tuples) < 3 {
		return
	}
	thr := s.threshold()
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	// Walk left to right, greedily merging each tuple into its successor
	// when allowed; the first and last tuples are never removed.
	for i := 1; i < len(s.tuples); i++ {
		cur := s.tuples[i]
		if i+1 < len(s.tuples) {
			next := s.tuples[i+1]
			if cur.g+next.g+next.d <= thr {
				// Merge cur into next.
				s.tuples[i+1].g += cur.g
				continue
			}
		}
		out = append(out, cur)
	}
	s.tuples = out
}

// Rank returns the summary's estimate of the number of inserted values
// strictly smaller than x. The error is at most εn.
func (s *Summary) Rank(x float64) int64 {
	if len(s.tuples) == 0 {
		return 0
	}
	// rmin of the last tuple with v < x, combined with the following
	// tuple's rmax, brackets the true rank.
	var rmin int64
	i := 0
	for ; i < len(s.tuples) && s.tuples[i].v < x; i++ {
		rmin += s.tuples[i].g
	}
	if i == 0 {
		return 0
	}
	if i == len(s.tuples) {
		return s.n
	}
	// True #values < x lies in [rmin, rmin + g_i + d_i - 1].
	hi := rmin + s.tuples[i].g + s.tuples[i].d - 1
	if hi < rmin {
		hi = rmin
	}
	return (rmin + hi) / 2
}

// Quantile returns a value whose rank is within εn of ⌊q·n⌋.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.tuples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := float64(q) * float64(s.n)
	var rmin int64
	best := s.tuples[0].v
	bestDist := math.Inf(1)
	for _, t := range s.tuples {
		rmin += t.g
		mid := float64(rmin) + float64(t.d)/2
		if d := math.Abs(mid - target); d < bestDist {
			bestDist = d
			best = t.v
		}
	}
	return best
}

// N returns the number of inserted values.
func (s *Summary) N() int64 { return s.n }

// Len returns the number of tuples.
func (s *Summary) Len() int { return len(s.tuples) }

// SpaceWords returns the size in words (three per tuple).
func (s *Summary) SpaceWords() int { return 3 * len(s.tuples) }

// Eps returns the summary's error parameter.
func (s *Summary) Eps() float64 { return s.eps }

// Snapshot serializes the summary into a Snapshot that can be shipped to the
// coordinator and queried remotely.
func (s *Summary) Snapshot() Snapshot {
	return s.SnapshotInto(nil)
}

// SnapshotInto is Snapshot drawing the tuple slice from pool (nil pool means
// a fresh allocation). The caller chain owns the returned snapshot and
// returns it to the pool via Snapshot.Release when it is superseded.
func (s *Summary) SnapshotInto(pool *SnapshotPool) Snapshot {
	ts := pool.get(len(s.tuples))
	for i, t := range s.tuples {
		ts[i] = SnapshotTuple{V: t.v, G: t.g, D: t.d}
	}
	return Snapshot{N: s.n, Eps: s.eps, Tuples: ts}
}

// SnapshotPool recycles snapshot tuple slices between producers and the
// consumer that retires them. It is safe for concurrent use (the sites and
// the coordinator run on different goroutines under the concurrent runtime);
// the zero value is ready to use. A mutex-guarded stack is used instead of
// sync.Pool because Put-ting a slice header into a sync.Pool allocates the
// very box the pool was meant to avoid.
type SnapshotPool struct {
	mu   sync.Mutex
	free [][]SnapshotTuple
}

// get returns a length-n tuple slice, reusing a retired one when large
// enough (a too-small retired slice is dropped to the GC). Fresh
// allocations take the next power of two of capacity: snapshot sizes grow
// monotonically as a summary fills, so exact-size storage would be too
// small for the very next snapshot and every get would miss — the headroom
// keeps a retired slice reusable until sizes double.
func (sp *SnapshotPool) get(n int) []SnapshotTuple {
	if sp != nil {
		sp.mu.Lock()
		for len(sp.free) > 0 {
			ts := sp.free[len(sp.free)-1]
			sp.free = sp.free[:len(sp.free)-1]
			if cap(ts) >= n {
				sp.mu.Unlock()
				return ts[:n]
			}
		}
		sp.mu.Unlock()
	}
	c := 8
	for c < n {
		c *= 2
	}
	return make([]SnapshotTuple, n, c)
}

// Release retires the snapshot's tuple storage into pool. The snapshot must
// not be used afterwards; a nil pool (or an empty snapshot) is a no-op.
func (sn Snapshot) Release(pool *SnapshotPool) {
	if pool == nil || cap(sn.Tuples) == 0 {
		return
	}
	pool.mu.Lock()
	pool.free = append(pool.free, sn.Tuples[:0])
	pool.mu.Unlock()
}

// SnapshotTuple is the wire form of one GK tuple.
type SnapshotTuple struct {
	V float64
	G int64
	D int64
}

// Snapshot is an immutable, queryable copy of a summary, as shipped by the
// deterministic rank-tracking baseline.
type Snapshot struct {
	N      int64
	Eps    float64
	Tuples []SnapshotTuple
}

// Rank estimates the number of values < x in the snapshotted stream.
func (sn Snapshot) Rank(x float64) int64 {
	var rmin int64
	i := 0
	for ; i < len(sn.Tuples) && sn.Tuples[i].V < x; i++ {
		rmin += sn.Tuples[i].G
	}
	if i == 0 {
		return 0
	}
	if i == len(sn.Tuples) {
		return sn.N
	}
	hi := rmin + sn.Tuples[i].G + sn.Tuples[i].D - 1
	if hi < rmin {
		hi = rmin
	}
	return (rmin + hi) / 2
}

// Words returns the snapshot's transfer size in words (three per tuple plus
// one for N).
func (sn Snapshot) Words() int { return 3*len(sn.Tuples) + 1 }
