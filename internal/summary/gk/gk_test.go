package gk

import (
	"math"
	"sort"
	"testing"

	"disttrack/internal/stats"
)

// trueRank counts values in xs strictly smaller than x.
func trueRank(xs []float64, x float64) int64 {
	var r int64
	for _, v := range xs {
		if v < x {
			r++
		}
	}
	return r
}

func checkAllRanks(t *testing.T, s *Summary, xs []float64, eps float64) {
	t.Helper()
	n := float64(len(xs))
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	// Query at every stored value and between values.
	queries := append([]float64{sorted[0] - 1, sorted[len(sorted)-1] + 1}, sorted...)
	for _, q := range queries {
		got := s.Rank(q)
		want := trueRank(xs, q)
		if math.Abs(float64(got-want)) > eps*n+1 {
			t.Fatalf("Rank(%v) = %d, true %d, allowed error %v (n=%d)",
				q, got, want, eps*n, len(xs))
		}
	}
}

func TestRankErrorSortedInput(t *testing.T) {
	const eps = 0.05
	const n = 5000
	s := New(eps)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		s.Insert(float64(i))
	}
	checkAllRanks(t, s, xs, eps)
}

func TestRankErrorReverseSorted(t *testing.T) {
	const eps = 0.05
	const n = 5000
	s := New(eps)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(n - i)
		xs[i] = v
		s.Insert(v)
	}
	checkAllRanks(t, s, xs, eps)
}

func TestRankErrorRandomInput(t *testing.T) {
	const eps = 0.02
	const n = 20000
	rng := stats.New(401)
	s := New(eps)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		xs[i] = v
		s.Insert(v)
	}
	checkAllRanks(t, s, xs, eps)
}

func TestRankErrorAdversarialZigzag(t *testing.T) {
	const eps = 0.05
	const n = 4000
	s := New(eps)
	xs := make([]float64, 0, n)
	for i := 0; i < n/2; i++ {
		lo, hi := float64(i), float64(n-i)
		s.Insert(lo)
		s.Insert(hi)
		xs = append(xs, lo, hi)
	}
	checkAllRanks(t, s, xs, eps)
}

func TestSpaceSublinear(t *testing.T) {
	const eps = 0.01
	const n = 100000
	rng := stats.New(409)
	s := New(eps)
	for i := 0; i < n; i++ {
		s.Insert(rng.Float64())
	}
	// O(1/eps * log(eps n)) with a generous constant.
	limit := int(40 / eps * math.Log2(eps*n+2))
	if s.Len() > limit {
		t.Fatalf("summary has %d tuples, budget %d", s.Len(), limit)
	}
	if s.SpaceWords() != 3*s.Len() {
		t.Fatal("SpaceWords inconsistent with Len")
	}
}

func TestQuantile(t *testing.T) {
	const eps = 0.02
	const n = 10000
	rng := stats.New(419)
	s := New(eps)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		xs[i] = v
		s.Insert(v)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := s.Quantile(q)
		r := trueRank(xs, v)
		if math.Abs(float64(r)-q*n) > 2*eps*n+1 {
			t.Fatalf("Quantile(%v) = %v has rank %d, want %v±%v", q, v, r, q*n, 2*eps*n)
		}
	}
	// Clamping.
	if s.Quantile(-1) > s.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestEmptySummary(t *testing.T) {
	s := New(0.1)
	if s.Rank(5) != 0 {
		t.Fatal("empty Rank != 0")
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty Quantile != 0")
	}
	if s.N() != 0 || s.Len() != 0 {
		t.Fatal("empty summary has state")
	}
}

func TestSingleElement(t *testing.T) {
	s := New(0.1)
	s.Insert(7)
	if s.Rank(7) != 0 {
		t.Fatalf("Rank(7) = %d, want 0 (strictly smaller)", s.Rank(7))
	}
	if s.Rank(8) != 1 {
		t.Fatalf("Rank(8) = %d, want 1", s.Rank(8))
	}
	if s.Rank(6) != 0 {
		t.Fatalf("Rank(6) = %d, want 0", s.Rank(6))
	}
}

func TestDuplicateValues(t *testing.T) {
	const eps = 0.05
	s := New(eps)
	xs := make([]float64, 0, 3000)
	for i := 0; i < 1000; i++ {
		for _, v := range []float64{1, 2, 3} {
			s.Insert(v)
			xs = append(xs, v)
		}
	}
	checkAllRanks(t, s, xs, eps)
}

func TestSnapshotMatchesSummary(t *testing.T) {
	const eps = 0.02
	rng := stats.New(431)
	s := New(eps)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
		s.Insert(xs[i])
	}
	sn := s.Snapshot()
	if sn.N != s.N() {
		t.Fatal("snapshot N mismatch")
	}
	if sn.Words() != 3*s.Len()+1 {
		t.Fatal("snapshot Words mismatch")
	}
	for _, q := range []float64{0.1, 0.37, 0.5, 0.93} {
		x := stats.Quantile(xs, q)
		if sn.Rank(x) != s.Rank(x) {
			t.Fatalf("snapshot Rank(%v) = %d, summary %d", x, sn.Rank(x), s.Rank(x))
		}
	}
}

func TestSnapshotEdgeQueries(t *testing.T) {
	s := New(0.1)
	for i := 0; i < 100; i++ {
		s.Insert(float64(i))
	}
	sn := s.Snapshot()
	if sn.Rank(-5) != 0 {
		t.Fatal("snapshot rank below min != 0")
	}
	if sn.Rank(1e9) != 100 {
		t.Fatalf("snapshot rank above max = %d, want 100", sn.Rank(1e9))
	}
}

func TestNewValidation(t *testing.T) {
	for _, e := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", e)
				}
			}()
			New(e)
		}()
	}
}

func TestInvariantAfterManyInserts(t *testing.T) {
	const eps = 0.05
	rng := stats.New(433)
	s := New(eps)
	for i := 0; i < 20000; i++ {
		s.Insert(rng.Float64())
	}
	thr := s.threshold()
	for i, tp := range s.tuples {
		if i == 0 {
			continue
		}
		if tp.g+tp.d > thr {
			t.Fatalf("tuple %d violates invariant: g+d = %d > %d", i, tp.g+tp.d, thr)
		}
	}
}
