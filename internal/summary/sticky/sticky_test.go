package sticky

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

func TestDeterministicWhenPIsOne(t *testing.T) {
	l := New(1, stats.New(1))
	for i := 0; i < 100; i++ {
		l.Add(7)
	}
	if l.Count(7) != 100 {
		t.Fatalf("p=1 count = %d, want 100", l.Count(7))
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestExpectedSize(t *testing.T) {
	const p = 0.01
	const n = 100000
	l := New(p, stats.New(307))
	for i := 0; i < n; i++ {
		l.Add(int64(i)) // all distinct: every arrival is an insertion trial
	}
	want := p * n
	got := float64(l.Len())
	if math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("list size %v, want ~%v", got, want)
	}
	if l.N() != n {
		t.Fatalf("N = %d, want %d", l.N(), n)
	}
}

func TestCounterCountsFromFirstSampledCopy(t *testing.T) {
	// Once inserted, every subsequent copy increments deterministically.
	l := New(0.5, stats.New(311))
	var insertedAt int
	total := 200
	for i := 1; i <= total; i++ {
		c, ins := l.Add(42)
		if ins {
			if insertedAt != 0 {
				t.Fatal("inserted twice")
			}
			insertedAt = i
			if c != 1 {
				t.Fatalf("insertion count = %d, want 1", c)
			}
		}
	}
	if insertedAt == 0 {
		t.Fatal("item never sampled at p=0.5 over 200 trials")
	}
	want := int64(total - insertedAt + 1)
	if l.Count(42) != want {
		t.Fatalf("final count %d, want %d (inserted at %d)", l.Count(42), want, insertedAt)
	}
}

func TestInsertionProbability(t *testing.T) {
	// Over many independent lists, the first arrival is sampled w.p. p.
	const p = 0.25
	const trials = 20000
	rng := stats.New(313)
	hits := 0
	for i := 0; i < trials; i++ {
		l := New(p, rng.Split())
		if _, ins := l.Add(1); ins {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.015 {
		t.Fatalf("insertion rate %v, want ~%v", rate, p)
	}
}

func TestGeometricMissesBeforeInsertion(t *testing.T) {
	// The number of copies before the first sampled one is Geometric(p);
	// verify its mean (1-p)/p.
	const p = 0.1
	const trials = 5000
	rng := stats.New(317)
	sum := 0.0
	for i := 0; i < trials; i++ {
		l := New(p, rng.Split())
		misses := 0
		for {
			_, ins := l.Add(5)
			if ins {
				break
			}
			misses++
			if misses > 1e6 {
				t.Fatal("never inserted")
			}
		}
		sum += float64(misses)
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.5 {
		t.Fatalf("mean misses %v, want ~%v", mean, want)
	}
}

func TestReset(t *testing.T) {
	l := New(1, stats.New(331))
	l.Add(1)
	l.Add(2)
	l.Reset()
	if l.Len() != 0 || l.N() != 0 || l.Has(1) {
		t.Fatal("Reset did not clear state")
	}
	if l.P() != 1 {
		t.Fatal("Reset changed p")
	}
}

func TestSpaceWords(t *testing.T) {
	l := New(1, stats.New(337))
	l.Add(1)
	l.Add(2)
	l.Add(2)
	if l.SpaceWords() != 4 {
		t.Fatalf("SpaceWords = %d, want 4", l.SpaceWords())
	}
	if len(l.Items()) != 2 {
		t.Fatalf("Items len = %d, want 2", len(l.Items()))
	}
}

func TestNewValidation(t *testing.T) {
	for _, p := range []float64{0, -1, 1.0001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", p)
				}
			}()
			New(p, stats.New(1))
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng did not panic")
		}
	}()
	New(0.5, nil)
}
