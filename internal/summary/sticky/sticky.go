// Package sticky implements the probabilistic counter list of Manku &
// Motwani's sticky sampling [VLDB 2002] (paper reference [18]), in the form
// the randomized frequency-tracking algorithm of Section 3.1 uses it:
//
// A list L of counters c_j. When item j arrives: if a counter for j exists it
// is incremented; otherwise the arrival is sampled with probability p and, if
// sampled, a counter c_j = 1 is inserted. The expected list size after
// processing n items is at most p·n.
//
// The counter for item j therefore counts j's occurrences from the first
// *sampled* copy onward — exactly the quantity the unbiased estimator (3)/(4)
// of the paper is built from.
package sticky

import "disttrack/internal/stats"

// List is a sticky-sampling counter list with a fixed sampling probability.
type List struct {
	p        float64
	rng      *stats.RNG
	counters map[int64]int64
	n        int64
}

// New returns an empty list sampling new items with probability p, using rng
// for coin flips. It panics if p is outside (0, 1] or rng is nil.
func New(p float64, rng *stats.RNG) *List {
	if p <= 0 || p > 1 {
		panic("sticky: sampling probability out of (0,1]")
	}
	if rng == nil {
		panic("sticky: nil rng")
	}
	return &List{p: p, rng: rng, counters: make(map[int64]int64)}
}

// Add processes one occurrence of item j, flipping the list's own
// Bernoulli(p) coin for untracked items — the classical sticky-sampling
// update. It returns the counter's value after the arrival and whether the
// counter was just inserted (first sampled copy). count == 0 means the
// arrival was not sampled and j has no counter.
//
// Protocol sites that skip-sample the coin stream themselves must NOT mix
// Add with Bump/Insert: Add consumes the list's internal coins, which would
// break the single-coin-per-arrival invariant internal/freq relies on.
func (l *List) Add(j int64) (count int64, inserted bool) {
	l.n++
	if c, ok := l.counters[j]; ok {
		l.counters[j] = c + 1
		return c + 1, false
	}
	if l.rng.Bernoulli(l.p) {
		l.counters[j] = 1
		return 1, true
	}
	return 0, false
}

// Bump counts one occurrence of item j, incrementing its counter when one
// exists, and returns the post-arrival counter value (0 when j is
// untracked). Unlike Add it never flips the sampling coin: callers that
// skip-sample the coin stream themselves (internal/freq) pair Bump with
// Insert on the arrivals their own geometric gap marks as sampled.
func (l *List) Bump(j int64) int64 {
	l.n++
	if c, ok := l.counters[j]; ok {
		l.counters[j] = c + 1
		return c + 1
	}
	return 0
}

// BumpRun counts q occurrences of item j at once, incrementing its counter
// by q when one exists. Equivalent to q Bump calls; used to absorb a run of
// arrivals none of which were sampled.
func (l *List) BumpRun(j int64, q int64) {
	l.n += q
	if c, ok := l.counters[j]; ok {
		l.counters[j] = c + q
	}
}

// Insert force-creates the counter for j with value 1. The caller has
// already decided the arrival was sampled (the arrival itself must have been
// counted via Bump); it panics if a counter already exists.
func (l *List) Insert(j int64) {
	if _, ok := l.counters[j]; ok {
		panic("sticky: Insert over an existing counter")
	}
	l.counters[j] = 1
}

// Count returns the current counter for j (0 if absent).
func (l *List) Count(j int64) int64 { return l.counters[j] }

// Has reports whether a counter for j exists.
func (l *List) Has(j int64) bool {
	_, ok := l.counters[j]
	return ok
}

// N returns the number of arrivals processed.
func (l *List) N() int64 { return l.n }

// P returns the sampling probability.
func (l *List) P() float64 { return l.p }

// Len returns the number of live counters.
func (l *List) Len() int { return len(l.counters) }

// SpaceWords returns the current size in words (two per counter).
func (l *List) SpaceWords() int { return 2 * len(l.counters) }

// Items returns the tracked items (order unspecified).
func (l *List) Items() []int64 {
	out := make([]int64, 0, len(l.counters))
	for j := range l.counters {
		out = append(out, j)
	}
	return out
}

// Reset clears all counters and the arrival count, keeping p and the rng.
// Used when a site starts a fresh round or becomes a new virtual site.
func (l *List) Reset() {
	l.counters = make(map[int64]int64)
	l.n = 0
}
