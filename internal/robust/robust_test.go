package robust

import (
	"math"
	"testing"

	"disttrack/internal/count"
	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/sim"
	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

func TestRobustTracksObliviousStream(t *testing.T) {
	// On an oblivious stream the robust mode must keep the base protocol's
	// coverage: the released answer within the ε band at ~90% of instants
	// (default rescale). The release gate and the report noise both live
	// inside the ε_eff budget, so coverage should not degrade.
	const k = 16
	const eps = 0.1
	const n = 40000
	cfg := Config{K: k, Eps: eps, Seed: 42}
	events := workload.Config{N: n, Placement: workload.RoundRobin(k)}.Events()
	p, coord := NewProtocol(cfg)
	h := sim.New(p)
	bad := 0
	h.Run(events, func(arrived int64) {
		if stats.RelErr(coord.Estimate(), float64(arrived)) > eps {
			bad++
		}
	})
	if frac := float64(bad) / n; frac > 0.10 {
		t.Errorf("%.1f%% of instants outside eps-band (budget 10%%)", 100*frac)
	}
}

func TestReportsCarryNoise(t *testing.T) {
	// Once p < 1, a robust site's reports must differ from the base
	// protocol's: same sampling RNG, same arrivals, same broadcast — the
	// only divergence is the calibrated two-sided geometric perturbation.
	cfg := Config{K: 4, Eps: 0.1, Rescale: 1, Seed: 9}
	rs := NewSite(cfg, stats.New(77), stats.New(88))
	bs := count.NewSite(cfg.count(), stats.New(77))

	// Drive both into the p < 1 regime with the same round broadcast.
	bcast := rounds.BroadcastMsg{NBar: 10000} // p = 1/⌊ε_s·10000/2⌋₂ = 1/8
	var robustOut, baseOut []int64
	rs.Receive(bcast, func(m proto.Message) {
		if r, ok := m.(ReportMsg); ok {
			robustOut = append(robustOut, r.N)
		}
	})
	bs.Receive(bcast, func(m proto.Message) {
		if u, ok := m.(count.UpdateMsg); ok {
			baseOut = append(baseOut, u.N)
		}
	})
	if rs.P() >= 1 || rs.P() != bs.P() {
		t.Fatalf("site p = %v (base %v), want equal and < 1", rs.P(), bs.P())
	}
	for i := 0; i < 200000; i++ {
		rs.Arrive(0, 0, func(m proto.Message) {
			if r, ok := m.(ReportMsg); ok {
				robustOut = append(robustOut, r.N)
			}
		})
		bs.Arrive(0, 0, func(m proto.Message) {
			if u, ok := m.(count.UpdateMsg); ok {
				baseOut = append(baseOut, u.N)
			}
		})
	}
	if len(robustOut) != len(baseOut) {
		t.Fatalf("report cadence diverged: %d robust vs %d base reports", len(robustOut), len(baseOut))
	}
	if len(robustOut) == 0 {
		t.Fatal("no reports emitted; test not exercising the noise path")
	}
	perturbed := 0
	var noiseSum float64
	for i := range robustOut {
		d := robustOut[i] - baseOut[i]
		if d != 0 {
			perturbed++
		}
		noiseSum += float64(d)
	}
	if perturbed == 0 {
		t.Fatal("no report was perturbed; noise is not being applied")
	}
	// Noise is mean-zero: the average perturbation over many reports must
	// be small relative to its scale (1/p − 1)/2.
	scale := noiseScale(rs.P())
	if mean := noiseSum / float64(len(robustOut)); math.Abs(mean) > scale {
		t.Errorf("mean perturbation %v too large for scale %v", mean, scale)
	}
}

func TestReleaseStalenessBounded(t *testing.T) {
	// The released answer may trail the raw noised estimator, but never by
	// more than one release gap (the gate is clamped to [gap/4, gap]).
	const k = 8
	cfg := Config{K: k, Eps: 0.1, Seed: 3}
	events := workload.Config{N: 30000, Placement: workload.RoundRobin(k)}.Events()
	p, coord := NewProtocol(cfg)
	h := sim.New(p)
	h.Run(events, func(arrived int64) {
		lag := math.Abs(coord.Raw() - coord.Estimate())
		if gap := coord.gap(); lag > gap+1e-9 {
			t.Fatalf("at n=%d release lag %v exceeds gap %v", arrived, lag, gap)
		}
	})
}

func TestEstimateIsPureRead(t *testing.T) {
	// Queries must not consume randomness or mutate state: a run queried at
	// every arrival ends bit-identical to one queried only at the end.
	const k = 6
	cfg := Config{K: k, Eps: 0.05, Seed: 17}
	events := workload.Config{N: 20000, Placement: workload.RoundRobin(k)}.Events()

	pa, ca := NewProtocol(cfg)
	ha := sim.New(pa)
	ha.Run(events, func(int64) { _ = ca.Estimate(); _ = ca.Estimate() })

	pb, cb := NewProtocol(cfg)
	hb := sim.New(pb)
	hb.Run(events, nil)

	if ca.Estimate() != cb.Estimate() {
		t.Errorf("query-heavy run diverged: %v vs %v", ca.Estimate(), cb.Estimate())
	}
	if ca.rng.State() != cb.rng.State() {
		t.Error("query-heavy run advanced the release RNG")
	}
	if am, bm := ha.Metrics(), hb.Metrics(); am != bm {
		t.Errorf("metrics diverged: %+v vs %+v", am, bm)
	}
}

// noop send/broadcast for hand-fed coordinator messages.
func noSend(int, proto.Message) {}
func noCast(proto.Message)      {}

func TestSnapshotRoundTrip(t *testing.T) {
	// Snapshot/restore must reproduce the coordinator exactly — including
	// the release RNG position — so the restored coordinator's future
	// releases replay bit-identically.
	const k = 5
	cfg := Config{K: k, Eps: 0.1, Seed: 23}
	events := workload.Config{N: 15000, Placement: workload.RoundRobin(k)}.Events()
	p, coord := NewProtocol(cfg)
	h := sim.New(p)
	h.Run(events, nil)

	restored := NewCoordinator(cfg)
	// Scramble the fresh coordinator's RNG so the test fails if the
	// snapshot does not carry the stream position.
	restored.rng.Uint64()
	coord.SnapshotState(func(from int, m proto.Message) {
		restored.RestoreState(from, m)
	})

	if restored.Estimate() != coord.Estimate() {
		t.Fatalf("restored estimate %v != %v", restored.Estimate(), coord.Estimate())
	}
	if restored.Raw() != coord.Raw() {
		t.Fatalf("restored raw %v != %v", restored.Raw(), coord.Raw())
	}
	if restored.P() != coord.P() || restored.Round() != coord.Round() {
		t.Fatalf("restored round state (p=%v round=%d) != (p=%v round=%d)",
			restored.P(), restored.Round(), coord.P(), coord.Round())
	}
	if restored.gate != coord.gate || restored.rng.State() != coord.rng.State() {
		t.Fatal("restored release state (gate/RNG) differs")
	}

	// Feed both coordinators the same future messages (reports that force
	// releases, plus a round report) and require identical answers — the
	// restored release noise stream must match draw for draw.
	base := coord.vals[0]
	for i := 1; i <= 50; i++ {
		m := ReportMsg{N: base + int64(i*500)}
		coord.Receive(0, m, noSend, noCast)
		restored.Receive(0, m, noSend, noCast)
		if coord.Estimate() != restored.Estimate() {
			t.Fatalf("step %d: restored coordinator diverged: %v vs %v",
				i, restored.Estimate(), coord.Estimate())
		}
	}
}

func TestAdjustCancellationClearsSite(t *testing.T) {
	// An inner AdjustMsg with NBar = 0 ("no surviving update") must pass
	// through unnoised and clear the coordinator's per-site state, exactly
	// like the base protocol treats it.
	cfg := Config{K: 3, Eps: 0.1, Seed: 1}
	c := NewCoordinator(cfg)
	c.Receive(1, ReportMsg{N: 100}, noSend, noCast)
	if c.nSeen != 1 || c.sum != 100 {
		t.Fatalf("after report: nSeen=%d sum=%d", c.nSeen, c.sum)
	}
	c.Receive(1, AdjustMsg{}, noSend, noCast)
	if c.nSeen != 0 || c.sum != 0 || c.seen[1] {
		t.Fatalf("after zero adjust: nSeen=%d sum=%d seen=%v", c.nSeen, c.sum, c.seen[1])
	}
	// Out-of-range senders are dropped, not indexed.
	c.Receive(-1, ReportMsg{N: 5}, noSend, noCast)
	c.Receive(99, ReportMsg{N: 5}, noSend, noCast)
	if c.nSeen != 0 {
		t.Fatal("out-of-range report mutated state")
	}
}

func TestConfigValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero K":      {K: 0, Eps: 0.1},
		"eps zero":    {K: 2, Eps: 0},
		"eps one":     {K: 2, Eps: 1},
		"neg rescale": {K: 2, Eps: 0.1, Rescale: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewCoordinator did not panic", name)
				}
			}()
			NewCoordinator(cfg)
		}()
	}
}
