// Package robust implements an adversarially robust mode for the
// randomized count-tracking protocol, after Xiong, Zhu, Huang & Yi,
// "Adversarially Robust Distributed Count Tracking via Partial
// Differential Privacy" (arXiv 2311.00346).
//
// The threat model: an adaptive adversary chooses each arrival's site
// after observing the coordinator's answers. Against the plain randomized
// protocol (internal/count) this is fatal — any change in the answer
// reveals that a site just reported, so the adversary can park every site
// exactly at its last-reported value (n_i = n̄_i), turning the unbiased
// −1 + 1/p correction into a systematic Θ(k/p) = Θ(√k·ε·n̄) overestimate
// that holds at *every* instant, not with probability δ.
//
// The defense keeps the paper's unbiased skip-sampling core (which carries
// the √k/ε·logN communication bound) and protects the part of the sites'
// randomness that answers would otherwise expose:
//
//   - every communicated counter is perturbed site-side with two-sided
//     geometric noise calibrated to the sampling probability (scale
//     (1/p − 1)/2, the magnitude of the information an exposed report
//     leaks), drawn from a dedicated seeded per-site RNG — so observing
//     the answer no longer pins a site's true counter to its report;
//   - the coordinator answers through a sparse-vector-style released
//     estimate: the raw noised estimator is compared against a noised
//     release gate, and the published answer moves only when the raw
//     value has drifted past the gate — so answer *timing* carries only
//     coarse, noise-masked information about which site reported when.
//
// Queries are pure reads of the released value: they draw no randomness
// and mutate nothing, so the coordinator remains a deterministic function
// of its delivered message sequence (the WAL/snapshot durability
// contract) and the adversary gains nothing by querying more often.
//
// Communication is unchanged in cadence and word count — noise rides the
// reports the base protocol was sending anyway — so the robust mode costs
// a constant factor over the oblivious bound.
package robust

import (
	"math"

	"disttrack/internal/count"
	"disttrack/internal/proto"
	"disttrack/internal/rounds"
	"disttrack/internal/stats"
)

// ReportMsg is a site's noised counter report: the base protocol's
// UpdateMsg value plus calibrated two-sided geometric noise (1 word).
type ReportMsg struct {
	N int64
}

// Words implements proto.Message.
func (ReportMsg) Words() int { return 1 }

// AdjustMsg is a site's noised re-randomized n̄_i after a round boundary
// (1 word). Zero keeps the base protocol's "no surviving update" meaning
// and is therefore never noised.
type AdjustMsg struct {
	NBar int64
}

// Words implements proto.Message.
func (AdjustMsg) Words() int { return 1 }

// Config carries the robust protocol's parameters. K, Eps, and Rescale
// have the base protocol's meaning (count.Config); Seed additionally
// derives the coordinator's release-noise stream, so a coordinator
// rebuilt from the same Config (crash-restart recovery) replays noise
// bit-identically.
type Config struct {
	K       int
	Eps     float64
	Rescale float64
	Seed    uint64
}

func (c Config) validate() {
	if c.K <= 0 {
		panic("robust: K must be positive")
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic("robust: Eps out of (0,1)")
	}
	if c.Rescale < 0 {
		panic("robust: negative Rescale")
	}
}

func (c Config) count() count.Config {
	// The inner machine runs the base skip-sampling at the boosted rate;
	// its built-in round-boundary adjustment is disabled because the
	// robust site replaces it with a full re-randomization (see
	// Site.Receive) — the thinning adjustment preserves adversary-planted
	// report state in expectation, a full redraw forgets it.
	return count.Config{K: c.K, Eps: c.sampleEps(), Rescale: 1, DisableAdjustment: true}
}

// effEps mirrors count.Config: the internal (rescaled) error parameter.
func (c Config) effEps() float64 {
	r := c.Rescale
	if r == 0 {
		r = 3
	}
	return c.Eps / r
}

// sampleEps returns the sampling-schedule error parameter: the base
// protocol's ε_eff, tightened by min(1, ε·√k/12) in the small-√k·ε regime.
// The tightening caps the adaptive adversary's remaining leverage: each
// answer release lets it park at most one site at its report boundary
// (bias ≈ 1/p per park, with ≈ 1/ε_eff parks available per round), so the
// accumulated parking bias is ≈ (ε_s/ε_eff)·n̄/√k — the boost keeps that
// below the ε band. Communication rises by the same constant factor (the
// reports stay O(√k/ε_s) per round, preserving the logN shape).
func (c Config) sampleEps() float64 {
	e := c.effEps()
	if boost := c.Eps * math.Sqrt(float64(c.K)) / 12; boost < 1 {
		return e * boost
	}
	return e
}

// coordSeed keeps the coordinator's noise stream distinct from the site
// RNG tree rooted at Seed.
func (c Config) coordSeed() uint64 {
	return c.Seed ^ 0x726f62757374 // "robust"
}

// noiseScale is the per-report noise calibration: (1/p − 1)/2, half the
// expected gap a report's −1 + 1/p correction spans. At p = 1 every
// arrival is reported exactly and there is no hidden randomness to
// protect, so reports stay exact.
func noiseScale(p float64) float64 {
	if p >= 1 {
		return 0
	}
	return (1/p - 1) / 2
}

// Site wraps the base protocol's site machine (internal/count.Site),
// perturbing every outbound counter with calibrated noise from a
// dedicated seeded RNG. Round traffic (doubling reports, broadcasts)
// passes through untouched — it carries only the constant-factor n̄
// tracking, which the robustness analysis treats as public.
type Site struct {
	cfg   Config
	inner *count.Site
	noise *stats.RNG
	live  bool                // whether the coordinator holds a report of ours
	cur   func(proto.Message) // the out of the call in progress
	fwd   func(proto.Message) // prebuilt interceptor, no per-call closure
}

// NewSite returns a robust site: rng drives the base protocol's
// skip-sampling, noise the report perturbation.
func NewSite(cfg Config, rng, noise *stats.RNG) *Site {
	cfg.validate()
	s := &Site{cfg: cfg, inner: count.NewSite(cfg.count(), rng), noise: noise}
	s.fwd = func(m proto.Message) {
		switch msg := m.(type) {
		case count.UpdateMsg:
			s.live = true
			s.cur(ReportMsg{N: msg.N + s.draw()})
		case count.AdjustMsg:
			if msg.NBar == 0 {
				// "Treat as if no update was ever sent" must survive
				// exactly; a noised zero would re-create a phantom update.
				s.live = false
				s.cur(AdjustMsg{})
				return
			}
			s.live = true
			s.cur(AdjustMsg{NBar: msg.NBar + s.draw()})
		default:
			s.cur(m)
		}
	}
	return s
}

func (s *Site) draw() int64 {
	return s.noise.TwoSidedGeometric(noiseScale(s.inner.P()))
}

// Arrive implements proto.Site.
func (s *Site) Arrive(item int64, value float64, out func(proto.Message)) {
	s.cur = out
	s.inner.Arrive(item, value, s.fwd)
	s.cur = nil
}

// ArriveBatch implements proto.BatchSite via the inner site's closed-form
// gap skipping.
func (s *Site) ArriveBatch(item int64, value float64, n int64, out func(proto.Message)) int64 {
	s.cur = out
	done := s.inner.ArriveBatch(item, value, n, s.fwd)
	s.cur = nil
	return done
}

// Receive implements proto.Site. When a round broadcast halves p, the
// site performs a full re-randomization instead of the base protocol's
// thinning adjustment: it redraws its report completely at the new p,
// independent of the old one. The marginal law is the same ("as if it had
// always been running at the new p": the last success among n_i fresh
// Bernoulli(p) trials), but an adaptive adversary that parked this site
// at a report boundary loses its plant — the thinning adjustment would
// have preserved the planted bias in expectation across rounds.
func (s *Site) Receive(m proto.Message, out func(proto.Message)) {
	pOld := s.inner.P()
	s.cur = out
	s.inner.Receive(m, s.fwd)
	if s.inner.P() < pOld {
		s.rerandomize(out)
	}
	s.cur = nil
}

// rerandomize redraws the site's report at the current p: the new n̄_i is
// n_i minus a fresh Geometric(p) trailing-failure gap, or no report at
// all when every one of the n_i positions fails (v ≤ 0 ⟺ gap ≥ n_i, the
// exact truncation). One message per site per halving — the same order as
// the round broadcast that triggered it, so a constant-factor cost.
func (s *Site) rerandomize(out func(proto.Message)) {
	n := s.inner.LocalN()
	v := int64(0)
	if n > 0 {
		v = n - s.noise.SkipGeometric(s.inner.P())
	}
	if v <= 0 {
		if s.live {
			s.live = false
			out(AdjustMsg{})
		}
		return
	}
	s.live = true
	out(AdjustMsg{NBar: v + s.draw()})
}

// SpaceWords implements proto.Site: the inner machine plus the noise RNG.
func (s *Site) SpaceWords() int { return s.inner.SpaceWords() + 1 }

// P exposes the current sampling probability (tests).
func (s *Site) P() float64 { return s.inner.P() }

// LocalN returns the site's true local count (test oracle).
func (s *Site) LocalN() int64 { return s.inner.LocalN() }

// Snapshot-record keys; 40+ is this package's reserved range (rounds owns
// 1–2, freq 10+, rank 20+, sample 30+).
const (
	stateMeta = 40 // A = release-RNG state word, F = released answer
	stateGate = 41 // F = current noised release gate
)

// Coordinator is the robust central machine: the base estimator over
// noised per-site values, published through a sparse-vector-style
// released answer. All release randomness is drawn inside Receive, never
// on the query path.
type Coordinator struct {
	cfg   Config
	rc    *rounds.Coordinator
	vals  []int64 // last (noised) reported value per site
	seen  []bool  // whether site i has a live report
	sum   int64   // Σ vals over seen sites, maintained incrementally
	nSeen int
	p     float64
	rng   *stats.RNG // release/gate noise; advanced only in Receive
	// released is the answer Estimate serves; it trails the raw estimator
	// by at most one release gate (≤ ε_eff·n̄/2 + release noise).
	released float64
	gate     float64 // current noised release threshold on |raw − released|
}

// NewCoordinator returns the robust coordinator. Equal Configs produce
// coordinators with bit-identical noise streams.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.validate()
	c := &Coordinator{
		cfg:  cfg,
		rc:   rounds.NewCoordinator(cfg.K),
		vals: make([]int64, cfg.K),
		seen: make([]bool, cfg.K),
		p:    1,
		rng:  stats.New(cfg.coordSeed()),
	}
	c.gate = c.drawGate()
	return c
}

// gap is the release granularity: half the per-instant error budget at
// the current n̄, floored at 1 so the exact early regime still releases.
func (c *Coordinator) gap() float64 {
	g := c.cfg.effEps() * float64(c.rc.NBar()) / 2
	if g < 1 {
		g = 1
	}
	return g
}

// drawGate draws the next noised release threshold: centered at half the
// gap, Laplace-perturbed so the adversary cannot learn the exact trigger
// point, and clamped to [gap/4, gap] so the released answer's staleness
// stays deterministically bounded by one gap.
func (c *Coordinator) drawGate() float64 {
	g := c.gap()
	t := g/2 + c.rng.Laplace(g/8)
	if t < g/4 {
		t = g / 4
	}
	if t > g {
		t = g
	}
	return t
}

// raw is the base estimator over the noised reports:
// Σ_{seen}(vals_i − 1 + 1/p).
func (c *Coordinator) raw() float64 {
	return float64(c.sum) + float64(c.nSeen)*(1/c.p-1)
}

func (c *Coordinator) set(from int, v int64) {
	if from < 0 || from >= len(c.vals) {
		return
	}
	if c.seen[from] {
		c.sum -= c.vals[from]
	} else {
		c.seen[from] = true
		c.nSeen++
	}
	c.vals[from] = v
	c.sum += v
}

func (c *Coordinator) clear(from int) {
	if from < 0 || from >= len(c.vals) || !c.seen[from] {
		return
	}
	c.sum -= c.vals[from]
	c.vals[from] = 0
	c.seen[from] = false
	c.nSeen--
}

// Receive implements proto.Coordinator.
func (c *Coordinator) Receive(from int, m proto.Message, send func(int, proto.Message), broadcast func(proto.Message)) {
	if c.rc.Deliver(from, m, broadcast) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.sampleEps())
		c.maybeRelease()
		return
	}
	switch msg := m.(type) {
	case ReportMsg:
		c.set(from, msg.N)
	case AdjustMsg:
		if msg.NBar == 0 {
			c.clear(from)
		} else {
			c.set(from, msg.NBar)
		}
	default:
		return // round traffic already consumed, or foreign message
	}
	c.maybeRelease()
}

// maybeRelease is the sparse-vector step: publish a fresh answer only
// when the raw estimator has drifted past the current noised gate, then
// redraw the gate. The published value itself carries clamped Laplace
// noise so a release does not expose the raw estimator exactly.
func (c *Coordinator) maybeRelease() {
	raw := c.raw()
	d := raw - c.released
	if d < 0 {
		d = -d
	}
	if d <= c.gate {
		return
	}
	g := c.gap()
	noise := c.rng.Laplace(g / 8)
	if noise > g/2 {
		noise = g / 2
	}
	if noise < -g/2 {
		noise = -g / 2
	}
	c.released = raw + noise
	c.gate = c.drawGate()
}

// Estimate returns the released answer: a pure read, no randomness
// consumed, nothing mutated.
func (c *Coordinator) Estimate() float64 { return c.released }

// Raw exposes the unreleased noised estimator (test oracle).
func (c *Coordinator) Raw() float64 { return c.raw() }

// P exposes the coordinator's current sampling probability.
func (c *Coordinator) P() float64 { return c.p }

// Round returns the current round number.
func (c *Coordinator) Round() int { return c.rc.Round() }

// Resync implements proto.Resyncer: a rejoining site learns the current
// round (and with it the sampling probability) immediately.
func (c *Coordinator) Resync(emit func(proto.Message)) { c.rc.Resync(emit) }

// SnapshotState implements proto.Snapshotter: the round component's
// records, the release state (answer, gate, RNG position), then each live
// report as the protocol's own ReportMsg.
func (c *Coordinator) SnapshotState(emit func(from int, m proto.Message)) {
	c.rc.SnapshotState(emit)
	emit(-1, proto.StateMsg{Key: stateMeta, A: int64(c.rng.State()), F: c.released})
	emit(-1, proto.StateMsg{Key: stateGate, F: c.gate})
	for i, v := range c.vals {
		if c.seen[i] {
			emit(i, ReportMsg{N: v})
		}
	}
}

// RestoreState implements proto.Snapshotter: a pure state write — no
// releases fire and no noise is drawn during restore, so recovery replays
// bit-identically.
func (c *Coordinator) RestoreState(from int, m proto.Message) {
	if c.rc.RestoreState(from, m) {
		c.p = rounds.P(c.rc.NBar(), c.cfg.K, c.cfg.sampleEps())
		return
	}
	switch msg := m.(type) {
	case proto.StateMsg:
		switch msg.Key {
		case stateMeta:
			c.rng.Restore(uint64(msg.A))
			c.released = msg.F
		case stateGate:
			c.gate = msg.F
		}
	case ReportMsg:
		c.set(from, msg.N)
	}
}

// SpaceWords implements proto.Coordinator: O(k) words.
func (c *Coordinator) SpaceWords() int {
	return c.rc.SpaceWords() + 2*len(c.vals) + 5
}

// NewProtocol assembles the robust protocol: per-site sampling and noise
// RNGs split from cfg.Seed, the coordinator's release stream derived from
// it independently.
func NewProtocol(cfg Config) (proto.Protocol, *Coordinator) {
	cfg.validate()
	root := stats.New(cfg.Seed)
	coord := NewCoordinator(cfg)
	sites := make([]proto.Site, cfg.K)
	for i := range sites {
		rng := root.Split()
		sites[i] = NewSite(cfg, rng, root.Split())
	}
	return proto.Protocol{Coord: coord, Sites: sites}, coord
}
