package workload

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

func TestHardInstanceStructure(t *testing.T) {
	rng := stats.New(601)
	const k = 16
	const eps = 0.1
	h := NewHardCountInstance(k, eps, 20000, rng)
	if h.N() == 0 {
		t.Fatal("empty instance")
	}
	if h.Subrounds != int(math.Ceil(1/(2*eps*math.Sqrt(k)))) {
		t.Fatalf("subrounds = %d", h.Subrounds)
	}
	// Sites must be within range.
	for _, e := range h.Events {
		if e.Site < 0 || e.Site >= k {
			t.Fatalf("site out of range: %d", e.Site)
		}
	}
	// Subround ends must be increasing and end at N.
	prev := 0
	for _, end := range h.SubroundEnds {
		if end <= prev {
			t.Fatalf("subround ends not increasing: %d after %d", end, prev)
		}
		prev = end
	}
	if prev != h.N() {
		t.Fatalf("last subround end %d != N %d", prev, h.N())
	}
}

func TestHardInstanceSubroundComposition(t *testing.T) {
	// Within each full subround of round i, each touched site receives
	// exactly 2^i elements, and the number of touched sites is k/2 ± √k.
	rng := stats.New(607)
	const k = 64
	const eps = 0.05
	h := NewHardCountInstance(k, eps, 0, rng) // uncapped: stops after rounds
	sq := int(math.Sqrt(float64(k)))
	start := 0
	for si, end := range h.SubroundEnds {
		round := si / h.Subrounds
		batch := 1 << uint(round)
		counts := map[int]int{}
		for _, e := range h.Events[start:end] {
			counts[e.Site]++
		}
		s := len(counts)
		if s != k/2+sq && s != k/2-sq {
			t.Fatalf("subround %d touched %d sites, want %d±%d", si, s, k/2, sq)
		}
		for site, c := range counts {
			if c != batch {
				t.Fatalf("subround %d site %d got %d, want %d", si, site, c, batch)
			}
		}
		start = end
		if si > 50 {
			break // enough structure verified
		}
	}
}

func TestHardInstanceValidation(t *testing.T) {
	rng := stats.New(611)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k=2 did not panic")
			}
		}()
		NewHardCountInstance(2, 0.1, 100, rng)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("eps=0 did not panic")
			}
		}()
		NewHardCountInstance(16, 0, 100, rng)
	}()
}

func TestHardInstanceCapRespected(t *testing.T) {
	rng := stats.New(613)
	h := NewHardCountInstance(16, 0.1, 500, rng)
	if h.N() > 500+16 { // may exceed by less than one site sweep
		t.Fatalf("cap exceeded: %d", h.N())
	}
}
