package workload

import (
	"math"
	"testing"

	"disttrack/internal/stats"
)

func TestRoundRobinCoversAllSites(t *testing.T) {
	p := RoundRobin(5)
	counts := make([]int, 5)
	for i := 0; i < 100; i++ {
		counts[p(i)]++
	}
	for s, c := range counts {
		if c != 20 {
			t.Fatalf("site %d got %d, want 20", s, c)
		}
	}
}

func TestSingleSite(t *testing.T) {
	p := SingleSite(3)
	for i := 0; i < 10; i++ {
		if p(i) != 3 {
			t.Fatal("SingleSite wandered")
		}
	}
}

func TestUniformPlacementBalance(t *testing.T) {
	rng := stats.New(501)
	p := UniformPlacement(8, rng)
	const n = 80000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		counts[p(i)]++
	}
	want := float64(n) / 8
	for s, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("site %d count %d too far from %v", s, c, want)
		}
	}
}

func TestZipfPlacementSkew(t *testing.T) {
	rng := stats.New(503)
	p := ZipfPlacement(10, 1.5, rng)
	const n = 50000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[p(i)]++
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum != n {
		t.Fatalf("placement lost events: %d", sum)
	}
	if float64(max)/float64(n) < 0.4 {
		t.Fatalf("zipf placement not skewed: max share %v", float64(max)/float64(n))
	}
}

func TestHardMuBothBranches(t *testing.T) {
	// Over many constructions, both the single-site and round-robin branches
	// must appear roughly half the time.
	rng := stats.New(509)
	single := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := HardMu(4, rng.Split())
		if p(0) == p(1) && p(1) == p(2) && p(2) == p(3) && p(3) == p(4) {
			single++
		}
	}
	rate := float64(single) / trials
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("single-site branch rate %v, want ~0.5", rate)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{N: 3}
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("Events len %d", len(evs))
	}
	for i, e := range evs {
		if e.Site != 0 || e.Item != 0 || e.Value != float64(i) {
			t.Fatalf("default event %d = %+v", i, e)
		}
	}
}

func TestConfigEachOrder(t *testing.T) {
	c := Config{N: 10, Placement: RoundRobin(3), Item: DistinctItems()}
	i := 0
	c.Each(func(e Event) {
		if e.Site != i%3 || e.Item != int64(i) {
			t.Fatalf("event %d = %+v", i, e)
		}
		i++
	})
	if i != 10 {
		t.Fatalf("Each visited %d events", i)
	}
}

func TestPermValuesDistinct(t *testing.T) {
	rng := stats.New(521)
	const n = 1000
	v := PermValues(n, rng)
	seen := map[float64]bool{}
	for i := 0; i < n; i++ {
		x := v(i)
		if seen[x] {
			t.Fatalf("duplicate value %v", x)
		}
		seen[x] = true
		if x < 0 || x >= n {
			t.Fatalf("value out of range: %v", x)
		}
	}
}

func TestSortedAndReverseValues(t *testing.T) {
	sv := SortedValues()
	rv := ReverseSortedValues(100)
	for i := 1; i < 100; i++ {
		if sv(i) <= sv(i-1) {
			t.Fatal("SortedValues not increasing")
		}
		if rv(i) >= rv(i-1) {
			t.Fatal("ReverseSortedValues not decreasing")
		}
	}
}

func TestZipfItemsDomain(t *testing.T) {
	rng := stats.New(523)
	f := ZipfItems(50, 1.0, rng)
	for i := 0; i < 1000; i++ {
		j := f(i)
		if j < 0 || j >= 50 {
			t.Fatalf("item out of domain: %d", j)
		}
	}
}

func TestSameAndDistinctItems(t *testing.T) {
	s := SameItem(9)
	d := DistinctItems()
	for i := 0; i < 5; i++ {
		if s(i) != 9 {
			t.Fatal("SameItem changed")
		}
		if d(i) != int64(i) {
			t.Fatal("DistinctItems wrong")
		}
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { RoundRobin(0) },
		func() { UniformPlacement(0, stats.New(1)) },
		func() { UniformItems(0, stats.New(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEachRunCoalescesBlocks(t *testing.T) {
	cfg := Config{
		N:         100,
		Placement: BlockPlacement(4, 10),
		Item:      BlockItems(10),
		Value:     func(i int) float64 { return float64(i / 10) },
	}
	var runs []Batch
	cfg.EachRun(func(r Batch) { runs = append(runs, r) })
	if len(runs) != 10 {
		t.Fatalf("got %d runs, want 10", len(runs))
	}
	total := int64(0)
	for i, r := range runs {
		if r.Count != 10 {
			t.Fatalf("run %d count %d, want 10", i, r.Count)
		}
		if r.Site != i%4 || r.Item != int64(i) {
			t.Fatalf("run %d routed to site %d item %d", i, r.Site, r.Item)
		}
		total += r.Count
	}
	if total != 100 {
		t.Fatalf("runs cover %d events, want 100", total)
	}
}

func TestEachRunMatchesEach(t *testing.T) {
	// Runs must replay to exactly the element sequence, for a stream with
	// no repetition at all (every run has length 1).
	cfg := Config{N: 50, Placement: RoundRobin(3), Item: DistinctItems()}
	var fromEach []Event
	cfg.Each(func(e Event) { fromEach = append(fromEach, e) })
	var fromRuns []Event
	cfg.EachRun(func(r Batch) {
		for j := int64(0); j < r.Count; j++ {
			fromRuns = append(fromRuns, Event{Site: r.Site, Item: r.Item, Value: r.Value})
		}
	})
	if len(fromEach) != len(fromRuns) {
		t.Fatalf("lengths differ: %d vs %d", len(fromEach), len(fromRuns))
	}
	for i := range fromEach {
		if fromEach[i] != fromRuns[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, fromEach[i], fromRuns[i])
		}
	}
}

func TestEachRunEmpty(t *testing.T) {
	called := false
	Config{N: 0}.EachRun(func(Batch) { called = true })
	if called {
		t.Fatal("EachRun on empty config invoked callback")
	}
}
