package workload

import (
	"math"

	"disttrack/internal/stats"
)

// HardCountInstance builds the adversarial input from the proof of
// Theorem 2.4. The input consists of ℓ = log₂(εN/k) rounds; round i (0-based)
// is divided into r = ⌈1/(2ε√k)⌉ subrounds; each subround picks
// s = k/2 + √k or s = k/2 − √k with equal probability, chooses s sites
// uniformly at random, and delivers 2^i elements to each chosen site.
//
// The generated stream forces any correct tracking algorithm to solve an
// instance of the 1-bit problem (Definition 2.1) in every subround, which is
// where the Ω(√k/ε·logN) message lower bound comes from. Subrounds also
// record their boundaries so experiments can interrogate the tracker exactly
// at the decision points the proof uses.
type HardCountInstance struct {
	K      int
	Eps    float64
	Events []Event
	// SubroundEnds[j] is the index into Events one past the end of the j-th
	// subround; the proof's 1-bit decision happens at these instants.
	SubroundEnds []int
	// Rounds is ℓ, Subrounds is r.
	Rounds, Subrounds int
}

// NewHardCountInstance constructs the instance, truncating to at most
// maxEvents events (0 means no cap). k must be at least 4 so k/2 ± √k stays
// within [1, k].
func NewHardCountInstance(k int, eps float64, maxEvents int, rng *stats.RNG) *HardCountInstance {
	if k < 4 {
		panic("workload: hard instance needs k >= 4")
	}
	if eps <= 0 || eps >= 1 {
		panic("workload: hard instance eps out of (0,1)")
	}
	sq := int(math.Sqrt(float64(k)))
	r := int(math.Ceil(1 / (2 * eps * math.Sqrt(float64(k)))))
	if r < 1 {
		r = 1
	}
	inst := &HardCountInstance{K: k, Eps: eps, Subrounds: r}
	for round := 0; ; round++ {
		batch := 1 << uint(round)
		for sub := 0; sub < r; sub++ {
			s := k/2 + sq
			if rng.Bernoulli(0.5) {
				s = k/2 - sq
			}
			if s < 1 {
				s = 1
			}
			if s > k {
				s = k
			}
			sites := rng.SampleK(k, s)
			// Interleave deliveries across the chosen sites so no site is
			// "done" before the others (the proof allows any order).
			for rep := 0; rep < batch; rep++ {
				for _, site := range sites {
					inst.Events = append(inst.Events, Event{Site: site})
					if maxEvents > 0 && len(inst.Events) >= maxEvents {
						inst.SubroundEnds = append(inst.SubroundEnds, len(inst.Events))
						inst.Rounds = round + 1
						return inst
					}
				}
			}
			inst.SubroundEnds = append(inst.SubroundEnds, len(inst.Events))
		}
		inst.Rounds = round + 1
		if maxEvents > 0 && len(inst.Events) >= maxEvents/2 && round >= 1 {
			return inst
		}
		if maxEvents == 0 && round >= 10 {
			return inst
		}
	}
}

// N returns the number of generated events.
func (h *HardCountInstance) N() int { return len(h.Events) }
