// Package workload generates the input streams used by experiments and
// tests: placements of arrivals onto sites (who gets the next element),
// item-id distributions (for frequency tracking), value distributions (for
// rank tracking), and the adversarial instances from the paper's lower-bound
// proofs (Sections 2.2.1 and 2.2.2).
package workload

import (
	"disttrack/internal/stats"
)

// Event is one arrival: an element landing at a site. Item carries the
// identity used by frequency tracking; Value carries the totally ordered key
// used by rank tracking. Count tracking ignores both.
type Event struct {
	Site  int
	Item  int64
	Value float64
}

// Placement maps the arrival index i (0-based) to a site.
type Placement func(i int) int

// ItemFunc maps the arrival index to an item identifier.
type ItemFunc func(i int) int64

// ValueFunc maps the arrival index to a totally ordered value.
type ValueFunc func(i int) float64

// Config assembles a stream of N events from its component generators. Nil
// components default to site 0, item 0, value float64(i).
type Config struct {
	N         int
	Placement Placement
	Item      ItemFunc
	Value     ValueFunc
}

// Each invokes f for every event in order.
func (c Config) Each(f func(Event)) {
	for i := 0; i < c.N; i++ {
		f(c.At(i))
	}
}

// Batch is a maximal run of consecutive identical events: Count arrivals of
// the same (Site, Item, Value), ready for the runtimes' batch fast path.
type Batch struct {
	Site  int
	Item  int64
	Value float64
	Count int64
}

// EachRun invokes f for every maximal run of consecutive identical events,
// in order. Streams with no repetition (e.g. round-robin placement or
// distinct values) degrade to runs of length 1; block placements with
// repeated items yield long runs. Note the nil-Value default assigns
// float64(i), which never repeats — set an explicit ValueFunc (constant for
// count/frequency workloads, which ignore values) to let runs coalesce.
func (c Config) EachRun(f func(Batch)) {
	if c.N <= 0 {
		return
	}
	cur := c.At(0)
	run := Batch{Site: cur.Site, Item: cur.Item, Value: cur.Value, Count: 1}
	for i := 1; i < c.N; i++ {
		e := c.At(i)
		if e.Site == run.Site && e.Item == run.Item && e.Value == run.Value {
			run.Count++
			continue
		}
		f(run)
		run = Batch{Site: e.Site, Item: e.Item, Value: e.Value, Count: 1}
	}
	f(run)
}

// At materializes the i-th event.
func (c Config) At(i int) Event {
	e := Event{Value: float64(i)}
	if c.Placement != nil {
		e.Site = c.Placement(i)
	}
	if c.Item != nil {
		e.Item = c.Item(i)
	}
	if c.Value != nil {
		e.Value = c.Value(i)
	}
	return e
}

// Events materializes the whole stream.
func (c Config) Events() []Event {
	out := make([]Event, c.N)
	for i := range out {
		out[i] = c.At(i)
	}
	return out
}

// RoundRobin distributes arrivals over k sites in turn: 0,1,...,k-1,0,...
func RoundRobin(k int) Placement {
	if k <= 0 {
		panic("workload: RoundRobin with k <= 0")
	}
	return func(i int) int { return i % k }
}

// SingleSite sends every arrival to site j.
func SingleSite(j int) Placement {
	return func(int) int { return j }
}

// BlockPlacement distributes arrivals over k sites in contiguous blocks of
// the given size: sites take turns receiving `block` consecutive arrivals.
// This models bursty gateways (one client streams at one edge for a while)
// and is the canonical batch-friendly placement: EachRun coalesces each
// block into a single Batch.
func BlockPlacement(k int, block int) Placement {
	if k <= 0 {
		panic("workload: BlockPlacement with k <= 0")
	}
	if block <= 0 {
		panic("workload: BlockPlacement with block <= 0")
	}
	return func(i int) int { return (i / block) % k }
}

// BlockItems repeats each item id for `block` consecutive arrivals
// (item = i/block), modelling runs of identical keys — a hot flow at a
// gateway — that the frequency tracker's batch path absorbs in closed form.
func BlockItems(block int) ItemFunc {
	if block <= 0 {
		panic("workload: BlockItems with block <= 0")
	}
	return func(i int) int64 { return int64(i / block) }
}

// UniformPlacement sends each arrival to an independently uniform site.
func UniformPlacement(k int, rng *stats.RNG) Placement {
	if k <= 0 {
		panic("workload: UniformPlacement with k <= 0")
	}
	return func(int) int { return rng.Intn(k) }
}

// ZipfPlacement skews arrivals across sites with a Zipf(alpha) law, modelling
// hot gateways. Site identities are randomly permuted so site 0 is not
// always the hottest.
func ZipfPlacement(k int, alpha float64, rng *stats.RNG) Placement {
	z := stats.NewZipf(rng, k, alpha)
	perm := rng.Perm(k)
	return func(int) int { return perm[z.Draw()] }
}

// HardMu is the hard input distribution µ from the proof of Theorem 2.2:
// with probability 1/2 all elements arrive at one uniformly random site,
// otherwise they arrive round-robin. The choice is made once, at
// construction.
func HardMu(k int, rng *stats.RNG) Placement {
	if rng.Bernoulli(0.5) {
		return SingleSite(rng.Intn(k))
	}
	return RoundRobin(k)
}

// SameItem makes every arrival the same item.
func SameItem(j int64) ItemFunc {
	return func(int) int64 { return j }
}

// DistinctItems makes every arrival a fresh item (item id = arrival index).
func DistinctItems() ItemFunc {
	return func(i int) int64 { return int64(i) }
}

// ZipfItems draws item ids from a Zipf(alpha) law over domain items.
func ZipfItems(domain int, alpha float64, rng *stats.RNG) ItemFunc {
	z := stats.NewZipf(rng, domain, alpha)
	return func(int) int64 { return int64(z.Draw()) }
}

// UniformItems draws item ids uniformly from [0, domain).
func UniformItems(domain int, rng *stats.RNG) ItemFunc {
	if domain <= 0 {
		panic("workload: UniformItems with domain <= 0")
	}
	return func(int) int64 { return int64(rng.Intn(domain)) }
}

// PermValues assigns the i-th arrival the value perm[i] for a uniformly
// random permutation of [0, n): all values distinct, arrival order random —
// the canonical rank-tracking input (the paper assumes no duplicates).
func PermValues(n int, rng *stats.RNG) ValueFunc {
	perm := rng.Perm(n)
	return func(i int) float64 { return float64(perm[i%n]) }
}

// SortedValues assigns increasing values (adversarial for summaries that
// compress prefixes).
func SortedValues() ValueFunc {
	return func(i int) float64 { return float64(i) }
}

// ReverseSortedValues assigns decreasing values.
func ReverseSortedValues(n int) ValueFunc {
	return func(i int) float64 { return float64(n - i) }
}

// UniformValues assigns independent uniform [0,1) values.
func UniformValues(rng *stats.RNG) ValueFunc {
	return func(int) float64 { return rng.Float64() }
}
