package oneshot

import (
	"math"
	"testing"

	"disttrack/internal/stats"
	"disttrack/internal/workload"
)

// makeFreqStreams builds k streams of Zipf items plus the true counts.
func makeFreqStreams(k, n int, seed uint64) ([][]int64, map[int64]int64) {
	rng := stats.New(seed)
	itemF := workload.ZipfItems(300, 1.1, rng)
	streams := make([][]int64, k)
	truth := map[int64]int64{}
	for i := 0; i < n; i++ {
		j := itemF(i)
		truth[j]++
		streams[i%k] = append(streams[i%k], j)
	}
	return streams, truth
}

func makeRankStreams(k, n int, seed uint64) ([][]float64, []float64) {
	rng := stats.New(seed)
	valueF := workload.PermValues(n, rng)
	streams := make([][]float64, k)
	all := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := valueF(i)
		all = append(all, v)
		streams[i%k] = append(streams[i%k], v)
	}
	return streams, all
}

func trueRank(all []float64, x float64) float64 {
	r := 0.0
	for _, v := range all {
		if v < x {
			r++
		}
	}
	return r
}

func TestCount(t *testing.T) {
	total, res := Count([]int64{3, 0, 7, 5})
	if total != 15 {
		t.Fatalf("total = %d", total)
	}
	if res.Words != 4 {
		t.Fatalf("words = %d, want k=4", res.Words)
	}
}

func TestFreqDetWithinEps(t *testing.T) {
	const k, n = 8, 40000
	const eps = 0.05
	streams, truth := makeFreqStreams(k, n, 1)
	est, res := FreqDet(streams, eps)
	for j, f := range truth {
		if e := est(j); math.Abs(float64(e)-float64(f)) > eps*float64(n) {
			t.Fatalf("FreqDet item %d: est %d true %d", j, e, f)
		}
	}
	// Words should be O(k/eps).
	if res.Words > int64(8*float64(k)/eps) {
		t.Fatalf("FreqDet words %d exceed O(k/eps) budget", res.Words)
	}
}

func TestFreqRandUnbiasedAndCheap(t *testing.T) {
	const k, n = 16, 30000
	const eps = 0.05
	streams, truth := makeFreqStreams(k, n, 2)
	root := stats.New(99)
	const item = int64(3) // mid-weight item
	const trials = 300
	sum := 0.0
	var words int64
	for tr := 0; tr < trials; tr++ {
		est, res := FreqRand(streams, eps, root.Split())
		sum += est(item)
		words += res.Words
	}
	mean := sum / trials
	want := float64(truth[item])
	if math.Abs(mean-want) > 0.05*want+2 {
		t.Fatalf("FreqRand mean %v, want %v", mean, want)
	}
	// Expected words ~ 2√k/ε = 160; heavy items are always sent so allow
	// a constant factor.
	avgWords := float64(words) / trials
	if avgWords > 10*2*math.Sqrt(k)/eps {
		t.Fatalf("FreqRand avg words %v too high", avgWords)
	}
}

func TestFreqRandCheaperThanDet(t *testing.T) {
	const k, n = 64, 60000
	const eps = 0.02
	streams, _ := makeFreqStreams(k, n, 3)
	_, det := FreqDet(streams, eps)
	_, rnd := FreqRand(streams, eps, stats.New(5))
	if rnd.Words >= det.Words {
		t.Fatalf("randomized one-shot (%d words) not cheaper than deterministic (%d)",
			rnd.Words, det.Words)
	}
}

func TestRankDetWithinEps(t *testing.T) {
	const k, n = 8, 20000
	const eps = 0.05
	streams, all := makeRankStreams(k, n, 4)
	rank, _ := RankDet(streams, eps)
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := q * float64(n)
		if err := math.Abs(float64(rank(x)) - trueRank(all, x)); err > eps*float64(n) {
			t.Fatalf("RankDet at %v: error %v > %v", x, err, eps*float64(n))
		}
	}
}

func TestRankRandUnbiasedWithinVariance(t *testing.T) {
	const k, n = 16, 20000
	const eps = 0.05
	streams, all := makeRankStreams(k, n, 6)
	root := stats.New(7)
	x := float64(n) * 0.4
	want := trueRank(all, x)
	const trials = 400
	ests := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		rank, _ := RankRand(streams, eps, root.Split())
		ests[tr] = rank(x)
	}
	mean := stats.Mean(ests)
	se := stats.StdDev(ests)/math.Sqrt(trials) + 1e-9
	if math.Abs(mean-want) > 5*se+1 {
		t.Fatalf("RankRand mean %v, want %v (se %v)", mean, want, se)
	}
	// σ ≤ √k·τ/2 ≤ εn/2.
	if sd := stats.StdDev(ests); sd > eps*float64(n)/2*1.2 {
		t.Fatalf("RankRand std-dev %v above bound %v", sd, eps*float64(n)/2)
	}
}

func TestRankRandWordsBound(t *testing.T) {
	const k, n = 64, 60000
	const eps = 0.02
	streams, _ := makeRankStreams(k, n, 8)
	_, res := RankRand(streams, eps, stats.New(9))
	// 2k + ~√k/ε + k (partial strides) with slack.
	budget := int64(2*k + 3*int(math.Sqrt(k)/eps))
	if res.Words > budget {
		t.Fatalf("RankRand words %d exceed budget %d", res.Words, budget)
	}
	_, det := RankDet(streams, eps)
	if res.Words >= det.Words {
		t.Fatalf("randomized one-shot rank (%d) not cheaper than deterministic (%d)",
			res.Words, det.Words)
	}
}

func TestEmptyInputs(t *testing.T) {
	if total, _ := Count(nil); total != 0 {
		t.Fatal("empty Count")
	}
	est, res := FreqRand([][]int64{{}, {}}, 0.1, stats.New(1))
	if est(5) != 0 || res.Words != 0 {
		t.Fatal("empty FreqRand")
	}
	rank, res2 := RankRand([][]float64{{}, {}}, 0.1, stats.New(1))
	if rank(5) != 0 || res2.Words != 4 {
		t.Fatalf("empty RankRand: words %d", res2.Words)
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { FreqDet(nil, 0) },
		func() { FreqRand(nil, 1, stats.New(1)) },
		func() { RankDet(nil, -1) },
		func() { RankRand(nil, 2, stats.New(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
